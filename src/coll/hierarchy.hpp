// Two-level hierarchical collectives over a topology-grouped communicator.
//
// When CHASE_TOPO groups a team into nodes (contiguous runs of equal node
// ids, comm/topology.hpp), the flat chunk algorithms waste the slow inter
// links: a flat ordered ring pushes the whole payload across *every* link of
// the chain, so the rank at a node boundary serializes 2N bytes through one
// emulated cable. The routines here follow the classic NCCL/MPI two-level
// shape instead — do the bulk of the work over the fast intra links and
// cross the node boundary exactly once per payload block:
//
//  - HierAllReduce: ordered chain reduce 0 -> 1 -> ... -> P-1 (the exact
//    naive summation order, so the result stays bitwise identical), then the
//    finished chunks hop *down the leader chain* (node M-1's leader -> ... ->
//    node 0's leader, one payload per inter link) while each leader streams
//    them into its node over a chunk-pipelined binomial tree. The busiest
//    inter sender carries N bytes instead of the flat ring's 2N.
//  - HierBroadcast: one "entry" rank per node (the root for the root's node,
//    the node leader otherwise) receives the payload over a binomial tree
//    spanning the entries (inter links, log2 M depth), and each entry
//    re-broadcasts over an intra binomial tree.
//  - hier_all_gather_v(): a composite over the grouped sub-communicators
//    (HierGroup): ring allgather inside each node (fast links, writing
//    directly into the global receive buffer), ring allgather of whole node
//    blocks among the leaders (one block crossing per inter link), then two
//    intra broadcasts that fan the foreign prefix/suffix spans out to the
//    non-leaders. Pure data movement — trivially bitwise-identical. Requires
//    the canonical contiguous layout (displ[r+1] == displ[r] + count[r]);
//    the dispatcher falls back to a flat routine otherwise.
//
// Both ChannelOps support reset() and therefore persistent plans
// (coll/plan.hpp). The composite allgather draws fresh sequence numbers from
// the sub-communicators per run; every intra member draws the same number of
// intra seqs and only leaders draw leader seqs, so the per-comm lockstep
// contract holds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coll/algorithms.hpp"
#include "coll/engine.hpp"
#include "comm/reduction.hpp"
#include "common/check.hpp"
#include "la/matrix.hpp"

namespace chase::coll {

namespace detail {

/// Node structure of a grouped communicator, recovered from the
/// rank-identical node_of assignment: contiguous member runs, one leader
/// (last member) per node.
struct NodeLayout {
  std::vector<int> first;    // parent rank of each node's first member
  std::vector<int> last;     // parent rank of each node's leader
  int my_node = 0;

  NodeLayout(const std::vector<int>& node_of, int rank) {
    CHASE_CHECK_MSG(!node_of.empty(), "hierarchical op on a flat communicator");
    first.push_back(0);
    for (int r = 1; r < int(node_of.size()); ++r) {
      if (node_of[std::size_t(r)] != node_of[std::size_t(r - 1)]) {
        last.push_back(r - 1);
        first.push_back(r);
        if (r <= rank) ++my_node;
      }
    }
    last.push_back(int(node_of.size()) - 1);
  }

  int nodes() const { return int(first.size()); }
  int node_first() const { return first[std::size_t(my_node)]; }
  int node_last() const { return last[std::size_t(my_node)]; }
  int node_size() const { return node_last() - node_first() + 1; }
};

/// Parent/children of `local` in a binomial tree over `n` local indices
/// rooted at `root_local`, expressed in local indices.
struct BinomialShape {
  int parent = -1;           // local index; -1 at the root
  std::vector<int> children;

  BinomialShape(int local, int n, int root_local) {
    const int v = (local - root_local + n) % n;
    unsigned mask = 1;
    while (int(mask) < n && (v & int(mask)) == 0) mask <<= 1;
    if (v != 0) parent = ((v - int(mask)) + root_local) % n;
    for (unsigned m = mask >> 1; m > 0; m >>= 1) {
      if (v + int(m) < n) children.push_back(((v + int(m)) + root_local) % n);
    }
  }
};

}  // namespace detail

/// Deterministic two-level allreduce (see file comment). Tag phases:
/// 0 = ordered reduce chain, 1 = leader chain, 2 = intra broadcast.
template <typename Comm, typename T>
class HierAllReduce final : public ChannelOp<Comm> {
 public:
  HierAllReduce(const Comm& comm, T* data, Index count, comm::Reduction op,
                Index chunk_elems, std::uint64_t seq)
      : ChannelOp<Comm>(comm, "coll.hier_allreduce"),
        data_(data),
        count_(count),
        op_(op),
        chunk_(std::max<Index>(1, chunk_elems)),
        seq_(seq),
        rank_(comm.rank()),
        size_(comm.size()),
        nc_(detail::div_up(count, chunk_)),
        layout_(comm.node_ids(), comm.rank()),
        intra_(rank_ - layout_.node_first(), layout_.node_size(),
               layout_.node_size() - 1) {
    CHASE_CHECK_MSG(nc_ <= 0xFFFF, "allreduce payload needs too many chunks");
    scratch_.resize(std::size_t(std::min<Index>(count_, chunk_)));
    is_leader_ = rank_ == layout_.node_last();
    // Leader chain neighbours: finished chunks originate at the top node's
    // leader (rank P-1) and hop downwards one node at a time.
    if (is_leader_) {
      if (layout_.my_node + 1 < layout_.nodes()) {
        up_leader_ = layout_.last[std::size_t(layout_.my_node + 1)];
      }
      if (layout_.my_node > 0) {
        down_leader_ = layout_.last[std::size_t(layout_.my_node - 1)];
      }
    }
    bc_sent_.assign(intra_.children.size(), 0);
  }

  bool progress() override {
    if (complete()) return true;
    // Phase 0: chunk c accumulates contributions in rank order while hopping
    // 0 -> 1 -> ... -> P-1 (identical fold order to the naive reference).
    while (red_done_ < nc_) {
      const Index b = red_done_ * chunk_;
      const Index len = std::min(chunk_, count_ - b);
      const std::size_t bytes = std::size_t(len) * sizeof(T);
      if (rank_ == 0) {
        this->send(1, tag(0, red_done_), data_ + b, bytes);
      } else {
        if (!this->comm_.try_recv_chunk(rank_ - 1, tag(0, red_done_),
                                        scratch_.data(), bytes)) {
          break;
        }
        this->note_recv(bytes);
        for (Index i = 0; i < len; ++i) {
          comm::detail::reduce_assign(op_, scratch_[std::size_t(i)],
                                      data_[b + i]);
        }
        if (rank_ + 1 < size_) {
          this->send(rank_ + 1, tag(0, red_done_), scratch_.data(), bytes);
        } else {
          std::copy_n(scratch_.data(), len, data_ + b);
        }
      }
      ++red_done_;
    }
    // Phase 1: finished chunks hop down the leader chain. The top leader's
    // "arrival" is its own reduce pass finishing the chunk.
    if (is_leader_) {
      while (chain_got_ < nc_) {
        const Index b = chain_got_ * chunk_;
        const Index len = std::min(chunk_, count_ - b);
        const std::size_t bytes = std::size_t(len) * sizeof(T);
        if (up_leader_ < 0) {
          if (chain_got_ >= red_done_) break;
        } else {
          if (!this->comm_.try_recv_chunk(up_leader_, tag(1, chain_got_),
                                          data_ + b, bytes)) {
            break;
          }
          this->note_recv(bytes);
        }
        if (down_leader_ >= 0) {
          this->send(down_leader_, tag(1, chain_got_), data_ + b, bytes);
        }
        ++chain_got_;
      }
    } else {
      // Phase 2 receive: non-leaders collect finished chunks from their
      // intra binomial parent.
      while (bc_recvd_ < nc_) {
        const Index b = bc_recvd_ * chunk_;
        const Index len = std::min(chunk_, count_ - b);
        const std::size_t bytes = std::size_t(len) * sizeof(T);
        const int parent = layout_.node_first() + intra_.parent;
        if (!this->comm_.try_recv_chunk(parent, tag(2, bc_recvd_), data_ + b,
                                        bytes)) {
          break;
        }
        this->note_recv(bytes);
        ++bc_recvd_;
      }
    }
    // Phase 2 send: stream every locally-final chunk down the intra tree.
    const Index avail = is_leader_ ? chain_got_ : bc_recvd_;
    for (std::size_t i = 0; i < intra_.children.size(); ++i) {
      while (bc_sent_[i] < avail) {
        const Index b = bc_sent_[i] * chunk_;
        const Index len = std::min(chunk_, count_ - b);
        this->send(layout_.node_first() + intra_.children[i], tag(2, bc_sent_[i]),
                   data_ + b, std::size_t(len) * sizeof(T));
        ++bc_sent_[i];
      }
    }
    if (!complete()) return false;
    this->finish();
    return true;
  }

  void reset(std::uint64_t seq) override {
    seq_ = seq;
    red_done_ = 0;
    chain_got_ = 0;
    bc_recvd_ = 0;
    bc_sent_.assign(intra_.children.size(), 0);
    this->reset_counters();
  }

 private:
  bool complete() const {
    if (red_done_ < nc_) return false;
    if (is_leader_ ? chain_got_ < nc_ : bc_recvd_ < nc_) return false;
    for (const Index s : bc_sent_) {
      if (s < nc_) return false;
    }
    return true;
  }

  std::uint64_t tag(unsigned phase, Index chunk) const {
    return detail::make_tag(seq_, phase, 0, unsigned(chunk));
  }

  T* data_;
  Index count_;
  comm::Reduction op_;
  Index chunk_;
  std::uint64_t seq_;
  int rank_;
  int size_;
  Index nc_;
  detail::NodeLayout layout_;
  detail::BinomialShape intra_;
  bool is_leader_ = false;
  int up_leader_ = -1;    // leader of the node above me in the chain
  int down_leader_ = -1;  // leader of the node below
  Index red_done_ = 0;    // chunks through the reduce chain at me
  Index chain_got_ = 0;   // finished chunks present at me (leaders)
  Index bc_recvd_ = 0;    // finished chunks present at me (non-leaders)
  std::vector<Index> bc_sent_;
  std::vector<T> scratch_;
};

/// Two-level broadcast: binomial over per-node entry ranks (inter links),
/// then binomial within each node (intra links). Tag phases: 0 = entry tree,
/// 1 = intra tree.
template <typename Comm, typename T>
class HierBroadcast final : public ChannelOp<Comm> {
 public:
  HierBroadcast(const Comm& comm, T* data, Index count, int root,
                Index chunk_elems, std::uint64_t seq)
      : ChannelOp<Comm>(comm, "coll.hier_broadcast"),
        data_(data),
        count_(count),
        chunk_(std::max<Index>(1, chunk_elems)),
        seq_(seq),
        rank_(comm.rank()),
        nc_(detail::div_up(count, chunk_)),
        layout_(comm.node_ids(), comm.rank()) {
    CHASE_CHECK_MSG(nc_ <= 0xFFFF, "broadcast payload needs too many chunks");
    // Entry rank of node i: the root inside the root's node (it already has
    // the payload), the leader elsewhere.
    const auto& node_of = comm.node_ids();
    const int root_node = [&] {
      int n = 0;
      for (int r = 1; r <= root; ++r) {
        if (node_of[std::size_t(r)] != node_of[std::size_t(r - 1)]) ++n;
      }
      return n;
    }();
    entries_.resize(std::size_t(layout_.nodes()));
    for (int i = 0; i < layout_.nodes(); ++i) {
      entries_[std::size_t(i)] = i == root_node ? root : layout_.last[std::size_t(i)];
    }
    is_entry_ = rank_ == entries_[std::size_t(layout_.my_node)];
    if (is_entry_) {
      const detail::BinomialShape inter(layout_.my_node, layout_.nodes(),
                                        root_node);
      inter_parent_ =
          inter.parent < 0 ? -1 : entries_[std::size_t(inter.parent)];
      for (const int c : inter.children) {
        inter_children_.push_back(entries_[std::size_t(c)]);
      }
    }
    // Intra tree over my node, rooted at the entry's local index.
    const int entry_local =
        entries_[std::size_t(layout_.my_node)] - layout_.node_first();
    intra_ = detail::BinomialShape(rank_ - layout_.node_first(),
                                   layout_.node_size(), entry_local);
    root_has_all_ = rank_ == root;
    recvd_ = root_has_all_ ? nc_ : 0;
    inter_sent_.assign(inter_children_.size(), 0);
    intra_sent_.assign(intra_.children.size(), 0);
  }

  bool progress() override {
    if (complete()) return true;
    // Receive: entries pull from the entry tree, everyone else from the
    // intra tree.
    while (recvd_ < nc_) {
      const Index b = recvd_ * chunk_;
      const Index len = std::min(chunk_, count_ - b);
      const std::size_t bytes = std::size_t(len) * sizeof(T);
      const int src = is_entry_ ? inter_parent_
                                : layout_.node_first() + intra_.parent;
      const unsigned phase = is_entry_ ? 0u : 1u;
      if (src < 0 ||
          !this->comm_.try_recv_chunk(src, tag(phase, recvd_), data_ + b,
                                      bytes)) {
        break;
      }
      this->note_recv(bytes);
      ++recvd_;
    }
    for (std::size_t i = 0; i < inter_children_.size(); ++i) {
      while (inter_sent_[i] < recvd_) {
        const Index b = inter_sent_[i] * chunk_;
        const Index len = std::min(chunk_, count_ - b);
        this->send(inter_children_[i], tag(0, inter_sent_[i]), data_ + b,
                   std::size_t(len) * sizeof(T));
        ++inter_sent_[i];
      }
    }
    for (std::size_t i = 0; i < intra_.children.size(); ++i) {
      while (intra_sent_[i] < recvd_) {
        const Index b = intra_sent_[i] * chunk_;
        const Index len = std::min(chunk_, count_ - b);
        this->send(layout_.node_first() + intra_.children[i],
                   tag(1, intra_sent_[i]), data_ + b,
                   std::size_t(len) * sizeof(T));
        ++intra_sent_[i];
      }
    }
    if (!complete()) return false;
    this->finish();
    return true;
  }

  void reset(std::uint64_t seq) override {
    seq_ = seq;
    recvd_ = root_has_all_ ? nc_ : 0;
    inter_sent_.assign(inter_children_.size(), 0);
    intra_sent_.assign(intra_.children.size(), 0);
    this->reset_counters();
  }

 private:
  bool complete() const {
    if (recvd_ < nc_) return false;
    for (const Index s : inter_sent_) {
      if (s < nc_) return false;
    }
    for (const Index s : intra_sent_) {
      if (s < nc_) return false;
    }
    return true;
  }

  std::uint64_t tag(unsigned phase, Index chunk) const {
    return detail::make_tag(seq_, phase, 0, unsigned(chunk));
  }

  T* data_;
  Index count_;
  Index chunk_;
  std::uint64_t seq_;
  int rank_;
  Index nc_;
  detail::NodeLayout layout_;
  detail::BinomialShape intra_{0, 1, 0};
  std::vector<int> entries_;
  bool is_entry_ = false;
  bool root_has_all_ = false;
  int inter_parent_ = -1;
  std::vector<int> inter_children_;
  Index recvd_ = 0;
  std::vector<Index> inter_sent_;
  std::vector<Index> intra_sent_;
};

/// True when (counts, displs) is the canonical contiguous layout the
/// composite hierarchical allgather requires: block r starts exactly where
/// block r-1 ended, starting at offset 0.
inline bool canonical_gather_layout(const std::vector<Index>& counts,
                                    const std::vector<Index>& displs) {
  Index off = 0;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    if (displs[r] != off) return false;
    off += counts[r];
  }
  return true;
}

/// Composite two-level allgather over the grouped sub-communicators (see
/// file comment). Blocking; draws its own sequence numbers from the
/// sub-communicators. `Group` is comm::detail::HierGroup (templated to keep
/// this header free of comm/communicator.hpp).
template <typename Comm, typename Group, typename T>
void hier_all_gather_v(const Comm& parent, const Group& group, const T* send,
                       T* recv, const std::vector<Index>& counts,
                       const std::vector<Index>& displs, Index chunk_elems) {
  const auto& node_of = parent.node_ids();
  const detail::NodeLayout layout(node_of, parent.rank());
  const int first = layout.node_first();
  const int nsize = layout.node_size();

  // Phase 1: assemble my node's block over the fast links, writing straight
  // into the global receive buffer (displs are global offsets).
  if (nsize > 1) {
    std::vector<Index> c(counts.begin() + first, counts.begin() + first + nsize);
    std::vector<Index> d(displs.begin() + first, displs.begin() + first + nsize);
    RingAllGather<Comm, T> op(group.intra, send, recv, std::move(c),
                              std::move(d), chunk_elems,
                              group.intra.next_collective_seq());
    op.wait();
  } else if (counts[std::size_t(parent.rank())] > 0) {
    std::copy_n(send, counts[std::size_t(parent.rank())],
                recv + displs[std::size_t(parent.rank())]);
  }

  // Phase 2: leaders exchange whole node blocks — each block crosses each
  // inter link once.
  const Index my_start = displs[std::size_t(first)];
  Index my_elems = 0;
  for (int r = first; r <= layout.node_last(); ++r) {
    my_elems += counts[std::size_t(r)];
  }
  if (group.is_leader && layout.nodes() > 1) {
    std::vector<Index> c(std::size_t(layout.nodes()));
    std::vector<Index> d(std::size_t(layout.nodes()));
    for (int i = 0; i < layout.nodes(); ++i) {
      Index elems = 0;
      for (int r = layout.first[std::size_t(i)];
           r <= layout.last[std::size_t(i)]; ++r) {
        elems += counts[std::size_t(r)];
      }
      c[std::size_t(i)] = elems;
      d[std::size_t(i)] = displs[std::size_t(layout.first[std::size_t(i)])];
    }
    // The leader's contribution is its already-assembled node block inside
    // `recv`; the self-copy in the ctor is an exact-overlap copy_n (no-op).
    RingAllGather<Comm, T> op(group.leaders, recv + my_start, recv,
                              std::move(c), std::move(d), chunk_elems,
                              group.leaders.next_collective_seq());
    op.wait();
  }

  // Phase 3: the leader fans the foreign spans (everything before and after
  // my node's block) out over the fast links. Two contiguous broadcasts;
  // span extents are rank-identical within the node, so every member draws
  // the same intra seqs.
  if (nsize > 1 && layout.nodes() > 1) {
    Index total = 0;
    for (const Index cnt : counts) total += cnt;
    const int root_local = nsize - 1;
    if (my_start > 0) {
      BinomialBroadcast<Comm, T> op(group.intra, recv, my_start, root_local,
                                    chunk_elems,
                                    group.intra.next_collective_seq());
      op.wait();
    }
    const Index end = my_start + my_elems;
    if (total > end) {
      BinomialBroadcast<Comm, T> op(group.intra, recv + end, total - end,
                                    root_local, chunk_elems,
                                    group.intra.next_collective_seq());
      op.wait();
    }
  }
}

}  // namespace chase::coll
