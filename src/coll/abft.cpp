#include "coll/abft.hpp"

#include <atomic>
#include <cstdlib>

namespace chase::coll {

namespace {

// -1: defer to the CHASE_ABFT environment default; 0/1: explicit override.
std::atomic<int>& abft_override_slot() {
  static std::atomic<int> slot{-1};
  return slot;
}

bool abft_env_default() {
  static const bool on = [] {
    const char* env = std::getenv("CHASE_ABFT");
    if (env == nullptr) return false;
    const std::string_view v(env);
    return !(v.empty() || v == "0" || v == "off" || v == "false");
  }();
  return on;
}

}  // namespace

bool abft_enabled() {
  const int o = abft_override_slot().load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return abft_env_default();
}

void set_abft(int on) {
  abft_override_slot().store(on < 0 ? -1 : (on != 0 ? 1 : 0),
                             std::memory_order_relaxed);
}

}  // namespace chase::coll
