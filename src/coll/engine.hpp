// Algorithm policy for the collective engine.
//
// Mirrors the paper's MPI -> NCCL switch: the naive publish-and-sync path
// stands in for the single-shot MPI collective, while the chunked channel
// algorithms (ring / Rabenseifner / bruck / binomial, src/coll) reproduce
// the algorithmic side of NCCL. The policy is process-global:
//
//   CHASE_COLL_ALGO = naive | ring | tree | auto   (default: naive, or the
//       CMake cache variable CHASE_DEFAULT_COLL_ALGO baked into the build)
//   CHASE_COLL_CHUNK_BYTES = pipelining granularity (default 64 KiB)
//
// `auto` picks per call by minimizing the extended alpha-beta-gamma cost
// model (perf::coll_algo_seconds) over the available routines — the
// in-process analogue of NCCL's protocol/algorithm autotuner — and is also
// the switch that arms the nonblocking overlap path in dist/core.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "perf/backend.hpp"
#include "perf/tracker.hpp"

namespace chase::coll {

enum class Algorithm : int { kNaive = 0, kRing, kTree, kAuto };

/// Concrete routine the dispatcher runs for one call.
enum class Routine : int {
  kNaive = 0,
  kRingAllReduce,
  kRabenseifnerAllReduce,
  kRingAllGather,
  kBruckAllGather,
  kBinomialBroadcast,
};

std::string_view algorithm_name(Algorithm a);
std::string_view routine_name(Routine r);
std::optional<Algorithm> parse_algorithm(std::string_view name);

/// Process-global policy; initialized from CHASE_COLL_ALGO (falling back to
/// the build-time default) on first use.
Algorithm algorithm();
void set_algorithm(Algorithm a);

/// Pipelining granularity in bytes (>= 1); from CHASE_COLL_CHUNK_BYTES.
std::size_t chunk_bytes();
void set_chunk_bytes(std::size_t bytes);

/// True when the nonblocking overlap pipeline (dist_matrix::apply_impl
/// splitting the HEMM into column blocks and overlapping block k+1's compute
/// with block k's reduction) should run: policy auto.
bool overlap_enabled();

/// Pick the routine for one collective call. `bytes` follows the Tracker
/// convention (per-rank payload for reduce/broadcast, total gathered buffer
/// for allgather).
Routine select(perf::CollKind kind, std::size_t bytes, int nranks,
               perf::Backend backend);

/// RAII policy override for tests and benches.
class ScopedAlgorithm {
 public:
  explicit ScopedAlgorithm(Algorithm a) : prev_(algorithm()) {
    set_algorithm(a);
  }
  ~ScopedAlgorithm() { set_algorithm(prev_); }
  ScopedAlgorithm(const ScopedAlgorithm&) = delete;
  ScopedAlgorithm& operator=(const ScopedAlgorithm&) = delete;

 private:
  Algorithm prev_;
};

class ScopedChunkBytes {
 public:
  explicit ScopedChunkBytes(std::size_t bytes) : prev_(chunk_bytes()) {
    set_chunk_bytes(bytes);
  }
  ~ScopedChunkBytes() { set_chunk_bytes(prev_); }
  ScopedChunkBytes(const ScopedChunkBytes&) = delete;
  ScopedChunkBytes& operator=(const ScopedChunkBytes&) = delete;

 private:
  std::size_t prev_;
};

}  // namespace chase::coll
