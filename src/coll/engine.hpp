// Algorithm policy for the collective engine.
//
// Mirrors the paper's MPI -> NCCL switch: the naive publish-and-sync path
// stands in for the single-shot MPI collective, while the chunked channel
// algorithms (ring / Rabenseifner / bruck / binomial / hierarchical,
// src/coll) reproduce the algorithmic side of NCCL. The policy is
// process-global:
//
//   CHASE_COLL_ALGO = naive | ring | tree | hier | auto   (default: naive,
//       or the CMake cache variable CHASE_DEFAULT_COLL_ALGO baked into the
//       build; an unknown value throws env::ConfigError at first use)
//   CHASE_COLL_CHUNK_BYTES = pipelining granularity (default 64 KiB)
//
// `auto` picks per call by minimizing the extended alpha-beta-gamma cost
// model (perf::coll_algo_seconds) over the available routines — the
// in-process analogue of NCCL's protocol/algorithm autotuner — and is also
// the switch that arms the nonblocking overlap path in dist/core. With a
// grouped topology (CHASE_TOPO, src/comm/topology.hpp) the selection runs
// the per-link-class overload, so `auto` chooses the two-level hierarchical
// routines exactly when the slow cross-group links make them win.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "perf/backend.hpp"
#include "perf/cost_model.hpp"
#include "perf/tracker.hpp"

namespace chase::coll {

enum class Algorithm : int { kNaive = 0, kRing, kTree, kHier, kAuto };

/// Concrete routine the dispatcher runs for one call.
enum class Routine : int {
  kNaive = 0,
  kRingAllReduce,
  kRabenseifnerAllReduce,
  kRingAllGather,
  kBruckAllGather,
  kBinomialBroadcast,
  kHierAllReduce,
  kHierAllGather,
  kHierBroadcast,
};

std::string_view algorithm_name(Algorithm a);
std::string_view routine_name(Routine r);
std::optional<Algorithm> parse_algorithm(std::string_view name);

/// True for the two-level routines (dispatched over grouped
/// sub-communicators).
bool is_hierarchical(Routine r);

/// Effective process-wide policy: the explicit override when one is set
/// (CHASE_COLL_ALGO at first use — a set-but-unknown value throws
/// env::ConfigError — or set_algorithm), else the build-time default.
/// Size-oblivious; the dispatcher uses algorithm_for().
Algorithm algorithm();

/// Pin an explicit override. Overrides beat any loaded machine profile
/// (the autotuner contract, DESIGN.md §15).
void set_algorithm(Algorithm a);

/// True when an explicit override (env or set_algorithm) is pinned.
bool algorithm_overridden();

/// Raw override slot for exact save/restore (-1 = no override).
int raw_algorithm_override();
void set_raw_algorithm_override(int raw);

/// Size-aware policy for one collective call: override > per-(kind,
/// message-size-class) machine-profile entry (perf::tuned_tables()) >
/// built-in default. `bytes` follows the Tracker convention.
Algorithm algorithm_for(perf::CollKind kind, std::size_t bytes);

/// Pipelining granularity in bytes (>= 1): explicit override
/// (CHASE_COLL_CHUNK_BYTES or set_chunk_bytes) > machine-profile
/// chunk_bytes > built-in 64 KiB default.
std::size_t chunk_bytes();
void set_chunk_bytes(std::size_t bytes);

/// Raw chunk override for exact save/restore (-1 = no override).
long long raw_chunk_override();
void set_raw_chunk_override(long long raw);

/// True when the nonblocking overlap pipeline (dist_matrix::apply_impl
/// splitting the HEMM into column blocks and overlapping block k+1's compute
/// with block k's reduction) should run: policy auto.
bool overlap_enabled();

/// Pick the routine for one collective call. `bytes` follows the Tracker
/// convention (per-rank payload for reduce/broadcast, total gathered buffer
/// for allgather).
Routine select(perf::CollKind kind, std::size_t bytes, int nranks,
               perf::Backend backend);

/// Topology-aware variant: considers the hierarchical routines and prices
/// every candidate with the per-link-class cost model. With a flat `topo`
/// this is exactly the overload above. All inputs are rank-identical across
/// a communicator, so every rank of an SPMD region picks the same routine.
Routine select(perf::CollKind kind, std::size_t bytes, int nranks,
               perf::Backend backend, const perf::TopoInfo& topo);

/// One phase of a multi-phase (hierarchical) routine, in Tracker event
/// terms: what ran, how many bytes it carried, over how many ranks.
struct CollPhase {
  perf::CollKind kind;
  std::size_t bytes;
  int nranks;
};

/// The per-phase event decomposition of a hierarchical routine on a
/// `nranks`-rank communicator spanning `topo.nodes` groups of at most
/// `topo.max_per_node` ranks. Both the real dispatcher and the analytic
/// model (chase_model) emit events from this one function, so the
/// byte/step accounting of the projections matches the runtime exactly.
/// `bytes` follows the Tracker convention for `kind`.
std::vector<CollPhase> hier_phases(perf::CollKind kind, std::size_t bytes,
                                   int nranks, const perf::TopoInfo& topo);

/// Record `phases` on `t` (no-op when null). When `bracketed`, the first
/// phase closes the begin_collective() bracket the caller opened
/// (end_collective); the remaining phases are plain record_collective()
/// events. On the STD backend each phase additionally stages its payload
/// over PCIe (D2H before, H2D after), mirroring what a host-staged
/// multi-phase collective really moves.
void account_phases(perf::Tracker* t, perf::Backend backend,
                    const std::vector<CollPhase>& phases, bool bracketed);

/// RAII policy override for tests and benches. Restores the previous raw
/// override state (including "none") on exit.
class ScopedAlgorithm {
 public:
  explicit ScopedAlgorithm(Algorithm a) : prev_(raw_algorithm_override()) {
    set_algorithm(a);
  }
  ~ScopedAlgorithm() { set_raw_algorithm_override(prev_); }
  ScopedAlgorithm(const ScopedAlgorithm&) = delete;
  ScopedAlgorithm& operator=(const ScopedAlgorithm&) = delete;

 private:
  int prev_;
};

class ScopedChunkBytes {
 public:
  explicit ScopedChunkBytes(std::size_t bytes) : prev_(raw_chunk_override()) {
    set_chunk_bytes(bytes);
  }
  ~ScopedChunkBytes() { set_raw_chunk_override(prev_); }
  ScopedChunkBytes(const ScopedChunkBytes&) = delete;
  ScopedChunkBytes& operator=(const ScopedChunkBytes&) = delete;

 private:
  long long prev_;
};

}  // namespace chase::coll
