#include "coll/engine.hpp"

#include <atomic>
#include <cstdlib>
#include <initializer_list>
#include <limits>
#include <string>

#include "common/env.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"

// Build-time default policy, plumbed through the CMake cache variable
// CHASE_DEFAULT_COLL_ALGO (CMakePresets.json).
#ifndef CHASE_COLL_DEFAULT_ALGO
#define CHASE_COLL_DEFAULT_ALGO "naive"
#endif

namespace chase::coll {

namespace {

constexpr std::size_t kDefaultChunkBytes = std::size_t(64) << 10;

std::atomic<int>& algo_slot() {
  static std::atomic<int> slot = [] {
    Algorithm a = parse_algorithm(CHASE_COLL_DEFAULT_ALGO)
                      .value_or(Algorithm::kNaive);
    if (const char* env = std::getenv("CHASE_COLL_ALGO")) {
      if (auto parsed = parse_algorithm(env)) a = *parsed;
    }
    return std::atomic<int>(int(a));
  }();
  return slot;
}

std::atomic<std::size_t>& chunk_slot() {
  static std::atomic<std::size_t> slot = [] {
    std::size_t bytes = kDefaultChunkBytes;
    if (auto v = env::positive_env("CHASE_COLL_CHUNK_BYTES")) {
      bytes = std::size_t(*v);
    }
    return std::atomic<std::size_t>(bytes);
  }();
  return slot;
}

perf::CollAlgo routine_algo(Routine r) {
  switch (r) {
    case Routine::kRingAllReduce:
      return perf::CollAlgo::kRingAlgo;
    case Routine::kRabenseifnerAllReduce:
      return perf::CollAlgo::kRabenseifner;
    case Routine::kRingAllGather:
      return perf::CollAlgo::kRingAlgo;
    case Routine::kBruckAllGather:
      return perf::CollAlgo::kBruck;
    case Routine::kBinomialBroadcast:
      return perf::CollAlgo::kBinomial;
    case Routine::kNaive:
    default:
      return perf::CollAlgo::kNaiveAlgo;
  }
}

Routine cheapest(perf::CollKind kind, std::size_t bytes, int nranks,
                 perf::Backend backend,
                 std::initializer_list<Routine> candidates) {
  static const perf::MachineModel model;
  const std::size_t chunk = chunk_bytes();
  Routine best = Routine::kNaive;
  double best_cost = std::numeric_limits<double>::infinity();
  for (Routine r : candidates) {
    const double cost = perf::coll_algo_seconds(model, backend, kind,
                                                routine_algo(r), bytes,
                                                nranks, chunk);
    if (cost < best_cost) {
      best_cost = cost;
      best = r;
    }
  }
  return best;
}

}  // namespace

std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kRing:
      return "ring";
    case Algorithm::kTree:
      return "tree";
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kNaive:
    default:
      return "naive";
  }
}

std::string_view routine_name(Routine r) {
  switch (r) {
    case Routine::kRingAllReduce:
      return "ring_allreduce";
    case Routine::kRabenseifnerAllReduce:
      return "rabenseifner_allreduce";
    case Routine::kRingAllGather:
      return "ring_allgather";
    case Routine::kBruckAllGather:
      return "bruck_allgather";
    case Routine::kBinomialBroadcast:
      return "binomial_broadcast";
    case Routine::kNaive:
    default:
      return "naive";
  }
}

std::optional<Algorithm> parse_algorithm(std::string_view name) {
  if (name == "naive") return Algorithm::kNaive;
  if (name == "ring") return Algorithm::kRing;
  if (name == "tree") return Algorithm::kTree;
  if (name == "auto") return Algorithm::kAuto;
  return std::nullopt;
}

Algorithm algorithm() {
  return Algorithm(algo_slot().load(std::memory_order_relaxed));
}

void set_algorithm(Algorithm a) {
  algo_slot().store(int(a), std::memory_order_relaxed);
}

std::size_t chunk_bytes() {
  return chunk_slot().load(std::memory_order_relaxed);
}

void set_chunk_bytes(std::size_t bytes) {
  chunk_slot().store(bytes == 0 ? 1 : bytes, std::memory_order_relaxed);
}

bool overlap_enabled() { return algorithm() == Algorithm::kAuto; }

Routine select(perf::CollKind kind, std::size_t bytes, int nranks,
               perf::Backend backend) {
  if (nranks <= 1) return Routine::kNaive;
  switch (algorithm()) {
    case Algorithm::kNaive:
      return Routine::kNaive;
    case Algorithm::kRing:
      switch (kind) {
        case perf::CollKind::kAllReduce:
          return Routine::kRingAllReduce;
        case perf::CollKind::kAllGather:
          return Routine::kRingAllGather;
        case perf::CollKind::kBroadcast:
        default:
          return Routine::kBinomialBroadcast;
      }
    case Algorithm::kTree:
      switch (kind) {
        case perf::CollKind::kAllReduce:
          return Routine::kRabenseifnerAllReduce;
        case perf::CollKind::kAllGather:
          return Routine::kBruckAllGather;
        case perf::CollKind::kBroadcast:
        default:
          return Routine::kBinomialBroadcast;
      }
    case Algorithm::kAuto:
    default:
      switch (kind) {
        case perf::CollKind::kAllReduce:
          return cheapest(kind, bytes, nranks, backend,
                          {Routine::kNaive, Routine::kRingAllReduce,
                           Routine::kRabenseifnerAllReduce});
        case perf::CollKind::kAllGather:
          return cheapest(kind, bytes, nranks, backend,
                          {Routine::kNaive, Routine::kRingAllGather,
                           Routine::kBruckAllGather});
        case perf::CollKind::kBroadcast:
        default:
          return cheapest(kind, bytes, nranks, backend,
                          {Routine::kNaive, Routine::kBinomialBroadcast});
      }
  }
}

}  // namespace chase::coll
