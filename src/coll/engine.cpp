#include "coll/engine.hpp"

#include <atomic>
#include <cstdlib>
#include <initializer_list>
#include <limits>
#include <string>

#include "common/env.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"
#include "perf/tuned.hpp"

// Build-time default policy, plumbed through the CMake cache variable
// CHASE_DEFAULT_COLL_ALGO (CMakePresets.json).
#ifndef CHASE_COLL_DEFAULT_ALGO
#define CHASE_COLL_DEFAULT_ALGO "naive"
#endif

namespace chase::coll {

namespace {

constexpr std::size_t kDefaultChunkBytes = std::size_t(64) << 10;
constexpr int kNoOverride = -1;

Algorithm build_default_algorithm() {
  return parse_algorithm(CHASE_COLL_DEFAULT_ALGO).value_or(Algorithm::kNaive);
}

// Explicit override slot: kNoOverride until the CHASE_COLL_ALGO env var
// (read once, at first use) or set_algorithm() pins a policy.
std::atomic<int>& algo_slot() {
  static std::atomic<int> slot = [] {
    int raw = kNoOverride;
    if (const auto env = env::text_env("CHASE_COLL_ALGO")) {
      const auto parsed = parse_algorithm(*env);
      if (!parsed) {
        env::reject("CHASE_COLL_ALGO", *env, "unknown policy",
                    "naive | ring | tree | hier | auto");
      }
      raw = int(*parsed);
    }
    return std::atomic<int>(raw);
  }();
  return slot;
}

// Explicit chunk-size override (-1 = none): CHASE_COLL_CHUNK_BYTES or
// set_chunk_bytes().
std::atomic<long long>& chunk_slot() {
  static std::atomic<long long> slot = [] {
    long long raw = kNoOverride;
    if (auto v = env::positive_env("CHASE_COLL_CHUNK_BYTES")) {
      raw = *v;
    }
    return std::atomic<long long>(raw);
  }();
  return slot;
}

perf::CollAlgo routine_algo(Routine r) {
  switch (r) {
    case Routine::kRingAllReduce:
      return perf::CollAlgo::kRingAlgo;
    case Routine::kRabenseifnerAllReduce:
      return perf::CollAlgo::kRabenseifner;
    case Routine::kRingAllGather:
      return perf::CollAlgo::kRingAlgo;
    case Routine::kBruckAllGather:
      return perf::CollAlgo::kBruck;
    case Routine::kBinomialBroadcast:
      return perf::CollAlgo::kBinomial;
    case Routine::kHierAllReduce:
    case Routine::kHierAllGather:
    case Routine::kHierBroadcast:
      return perf::CollAlgo::kHierAlgo;
    case Routine::kNaive:
    default:
      return perf::CollAlgo::kNaiveAlgo;
  }
}

Routine cheapest(perf::CollKind kind, std::size_t bytes, int nranks,
                 perf::Backend backend, const perf::TopoInfo& topo,
                 std::initializer_list<Routine> candidates) {
  // Priced with the process-global selection model so a loaded machine
  // profile (tune::install_profile) recalibrates the auto policy too.
  const perf::MachineModel model = perf::selection_model();
  const std::size_t chunk = chunk_bytes();
  Routine best = Routine::kNaive;
  double best_cost = std::numeric_limits<double>::infinity();
  for (Routine r : candidates) {
    const double cost =
        perf::coll_algo_seconds(model, backend, kind, routine_algo(r), bytes,
                                nranks, chunk, topo);
    if (cost < best_cost) {
      best_cost = cost;
      best = r;
    }
  }
  return best;
}

Routine hier_routine(perf::CollKind kind) {
  switch (kind) {
    case perf::CollKind::kAllReduce:
      return Routine::kHierAllReduce;
    case perf::CollKind::kAllGather:
      return Routine::kHierAllGather;
    case perf::CollKind::kBroadcast:
    default:
      return Routine::kHierBroadcast;
  }
}

}  // namespace

std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kRing:
      return "ring";
    case Algorithm::kTree:
      return "tree";
    case Algorithm::kHier:
      return "hier";
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kNaive:
    default:
      return "naive";
  }
}

std::string_view routine_name(Routine r) {
  switch (r) {
    case Routine::kRingAllReduce:
      return "ring_allreduce";
    case Routine::kRabenseifnerAllReduce:
      return "rabenseifner_allreduce";
    case Routine::kRingAllGather:
      return "ring_allgather";
    case Routine::kBruckAllGather:
      return "bruck_allgather";
    case Routine::kBinomialBroadcast:
      return "binomial_broadcast";
    case Routine::kHierAllReduce:
      return "hier_allreduce";
    case Routine::kHierAllGather:
      return "hier_allgather";
    case Routine::kHierBroadcast:
      return "hier_broadcast";
    case Routine::kNaive:
    default:
      return "naive";
  }
}

std::optional<Algorithm> parse_algorithm(std::string_view name) {
  if (name == "naive") return Algorithm::kNaive;
  if (name == "ring") return Algorithm::kRing;
  if (name == "tree") return Algorithm::kTree;
  if (name == "hier") return Algorithm::kHier;
  if (name == "auto") return Algorithm::kAuto;
  return std::nullopt;
}

bool is_hierarchical(Routine r) {
  return r == Routine::kHierAllReduce || r == Routine::kHierAllGather ||
         r == Routine::kHierBroadcast;
}

Algorithm algorithm() {
  const int raw = algo_slot().load(std::memory_order_relaxed);
  return raw == kNoOverride ? build_default_algorithm() : Algorithm(raw);
}

void set_algorithm(Algorithm a) {
  algo_slot().store(int(a), std::memory_order_relaxed);
}

bool algorithm_overridden() {
  return algo_slot().load(std::memory_order_relaxed) != kNoOverride;
}

int raw_algorithm_override() {
  return algo_slot().load(std::memory_order_relaxed);
}

void set_raw_algorithm_override(int raw) {
  algo_slot().store(raw, std::memory_order_relaxed);
}

Algorithm algorithm_for(perf::CollKind kind, std::size_t bytes) {
  const int raw = algo_slot().load(std::memory_order_relaxed);
  if (raw != kNoOverride) return Algorithm(raw);
  if (const perf::TunedTables* t = perf::tuned_tables()) {
    const int tuned = t->coll_algo[int(kind)][int(perf::msg_class(bytes))];
    if (tuned >= 0) return Algorithm(tuned);
  }
  return build_default_algorithm();
}

std::size_t chunk_bytes() {
  const long long raw = chunk_slot().load(std::memory_order_relaxed);
  if (raw > 0) return std::size_t(raw);
  if (const perf::TunedTables* t = perf::tuned_tables()) {
    if (t->chunk_bytes > 0) return std::size_t(t->chunk_bytes);
  }
  return kDefaultChunkBytes;
}

void set_chunk_bytes(std::size_t bytes) {
  chunk_slot().store(bytes == 0 ? 1 : (long long)bytes,
                     std::memory_order_relaxed);
}

long long raw_chunk_override() {
  return chunk_slot().load(std::memory_order_relaxed);
}

void set_raw_chunk_override(long long raw) {
  chunk_slot().store(raw, std::memory_order_relaxed);
}

bool overlap_enabled() { return algorithm() == Algorithm::kAuto; }

Routine select(perf::CollKind kind, std::size_t bytes, int nranks,
               perf::Backend backend) {
  return select(kind, bytes, nranks, backend, perf::TopoInfo{});
}

Routine select(perf::CollKind kind, std::size_t bytes, int nranks,
               perf::Backend backend, const perf::TopoInfo& topo) {
  if (nranks <= 1) return Routine::kNaive;
  const bool grouped = topo.grouped();
  switch (algorithm_for(kind, bytes)) {
    case Algorithm::kNaive:
      return Routine::kNaive;
    case Algorithm::kRing:
      switch (kind) {
        case perf::CollKind::kAllReduce:
          return Routine::kRingAllReduce;
        case perf::CollKind::kAllGather:
          return Routine::kRingAllGather;
        case perf::CollKind::kBroadcast:
        default:
          return Routine::kBinomialBroadcast;
      }
    case Algorithm::kTree:
      switch (kind) {
        case perf::CollKind::kAllReduce:
          return Routine::kRabenseifnerAllReduce;
        case perf::CollKind::kAllGather:
          return Routine::kBruckAllGather;
        case perf::CollKind::kBroadcast:
        default:
          return Routine::kBinomialBroadcast;
      }
    case Algorithm::kHier:
      // Explicit two-level policy; degrades to the flat ring family when the
      // communicator spans a single group (or a non-contiguous one).
      if (grouped) return hier_routine(kind);
      switch (kind) {
        case perf::CollKind::kAllReduce:
          return Routine::kRingAllReduce;
        case perf::CollKind::kAllGather:
          return Routine::kRingAllGather;
        case perf::CollKind::kBroadcast:
        default:
          return Routine::kBinomialBroadcast;
      }
    case Algorithm::kAuto:
    default:
      switch (kind) {
        case perf::CollKind::kAllReduce:
          return grouped
                     ? cheapest(kind, bytes, nranks, backend, topo,
                                {Routine::kNaive, Routine::kRingAllReduce,
                                 Routine::kRabenseifnerAllReduce,
                                 Routine::kHierAllReduce})
                     : cheapest(kind, bytes, nranks, backend, topo,
                                {Routine::kNaive, Routine::kRingAllReduce,
                                 Routine::kRabenseifnerAllReduce});
        case perf::CollKind::kAllGather:
          return grouped
                     ? cheapest(kind, bytes, nranks, backend, topo,
                                {Routine::kNaive, Routine::kRingAllGather,
                                 Routine::kBruckAllGather,
                                 Routine::kHierAllGather})
                     : cheapest(kind, bytes, nranks, backend, topo,
                                {Routine::kNaive, Routine::kRingAllGather,
                                 Routine::kBruckAllGather});
        case perf::CollKind::kBroadcast:
        default:
          return grouped
                     ? cheapest(kind, bytes, nranks, backend, topo,
                                {Routine::kNaive, Routine::kBinomialBroadcast,
                                 Routine::kHierBroadcast})
                     : cheapest(kind, bytes, nranks, backend, topo,
                                {Routine::kNaive,
                                 Routine::kBinomialBroadcast});
      }
  }
}

std::vector<CollPhase> hier_phases(perf::CollKind kind, std::size_t bytes,
                                   int nranks, const perf::TopoInfo& topo) {
  std::vector<CollPhase> out;
  const int M = topo.nodes;
  const int per = topo.max_per_node;
  switch (kind) {
    case perf::CollKind::kAllReduce:
      // Two-level decomposition: fold within the fast group, exchange the
      // folded block among leaders, fan the result back out.
      if (per > 1) out.push_back({perf::CollKind::kAllReduce, bytes, per});
      if (M > 1) out.push_back({perf::CollKind::kAllReduce, bytes, M});
      if (per > 1) out.push_back({perf::CollKind::kBroadcast, bytes, per});
      break;
    case perf::CollKind::kAllGather: {
      // `bytes` is the total gathered payload; one node's block is the
      // per-group share the intra phase assembles.
      const std::size_t node_bytes =
          nranks > 0 ? bytes / std::size_t(nranks) * std::size_t(per) : bytes;
      if (per > 1) out.push_back({perf::CollKind::kAllGather, node_bytes, per});
      if (M > 1) out.push_back({perf::CollKind::kAllGather, bytes, M});
      if (per > 1 && M > 1 && bytes > node_bytes) {
        out.push_back(
            {perf::CollKind::kBroadcast, bytes - node_bytes, per});
      }
      break;
    }
    case perf::CollKind::kBroadcast:
    default:
      if (M > 1) out.push_back({perf::CollKind::kBroadcast, bytes, M});
      if (per > 1) out.push_back({perf::CollKind::kBroadcast, bytes, per});
      break;
  }
  return out;
}

void account_phases(perf::Tracker* t, perf::Backend backend,
                    const std::vector<CollPhase>& phases, bool bracketed) {
  if (t == nullptr) return;
  bool close_bracket = bracketed;
  for (const auto& p : phases) {
    if (p.nranks <= 1) continue;
    const std::size_t local = p.kind == perf::CollKind::kAllGather
                                  ? p.bytes / std::size_t(p.nranks)
                                  : p.bytes;
    if (backend == perf::Backend::kStdGpu) t->record_memcpy(local, false);
    if (close_bracket) {
      t->end_collective(p.kind, p.bytes, p.nranks);
      close_bracket = false;
    } else {
      t->record_collective(p.kind, p.bytes, p.nranks);
    }
    if (backend == perf::Backend::kStdGpu) t->record_memcpy(p.bytes, true);
  }
}

}  // namespace chase::coll
