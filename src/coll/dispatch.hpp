// Dispatch glue: defines Communicator's collective member templates on top
// of the src/coll engine. Included at the end of comm/communicator.hpp
// (which owns the class definition and the naive publish-and-sync bodies);
// everything here routes one call to either the naive reference or a chunk
// channel algorithm, wrapped in the same perf accounting and fault-injection
// hooks either way.
#pragma once

#ifndef CHASE_COMM_COMMUNICATOR_INCLUDED
#error "coll/dispatch.hpp is glue for comm/communicator.hpp; include that"
#endif

#include <sstream>

#include "coll/algorithms.hpp"
#include "coll/engine.hpp"
#include "coll/hierarchy.hpp"

namespace chase::comm {

namespace detail {

inline Index coll_chunk_elems(std::size_t elem_size) {
  return std::max<Index>(1, Index(coll::chunk_bytes() / elem_size));
}

}  // namespace detail

template <typename T>
void Communicator::all_reduce(T* data, Index count, Reduction op) const {
  if (size() == 1) {
    detail::corrupt_reduced(data, count);
    return;
  }
  const std::size_t bytes = std::size_t(std::max<Index>(count, 0)) * sizeof(T);
  const coll::Routine r = coll::select(perf::CollKind::kAllReduce, bytes,
                                       size(), backend_, topo_info());
  if (r == coll::Routine::kNaive) {
    naive_all_reduce(data, count, op);
    return;
  }
  fault::check("rank.die");
  account_begin();
  const std::uint64_t seq = next_collective_seq();
  if (count > 0) {
    const Index ce = detail::coll_chunk_elems(sizeof(T));
    if (r == coll::Routine::kHierAllReduce) {
      coll::HierAllReduce<Communicator, T> alg(*this, data, count, op, ce,
                                               seq);
      alg.wait();
    } else if (r == coll::Routine::kRingAllReduce) {
      coll::OrderedRingAllReduce<Communicator, T> alg(*this, data, count, op,
                                                      ce, seq);
      alg.wait();
    } else {
      coll::RabenseifnerAllReduce<Communicator, T> alg(*this, data, count, op,
                                                       ce, seq);
      alg.wait();
    }
  }
  detail::corrupt_reduced(data, count);
  if (r == coll::Routine::kHierAllReduce) {
    // Multi-phase routine: one Tracker event per phase, attributed to the
    // communicator each phase actually ran over.
    coll::account_phases(
        perf::thread_tracker(), backend_,
        coll::hier_phases(perf::CollKind::kAllReduce, bytes, size(),
                          topo_info()),
        /*bracketed=*/true);
  } else {
    account_end(perf::CollKind::kAllReduce, bytes, bytes);
  }
}

template <typename T>
void Communicator::broadcast(T* data, Index count, int root) const {
  if (size() == 1) return;
  CHASE_CHECK_MSG(root >= 0 && root < size(), "broadcast root out of range");
  const std::size_t bytes = std::size_t(std::max<Index>(count, 0)) * sizeof(T);
  const coll::Routine r = coll::select(perf::CollKind::kBroadcast, bytes,
                                       size(), backend_, topo_info());
  if (r == coll::Routine::kNaive) {
    naive_broadcast(data, count, root);
    return;
  }
  fault::check("rank.die");
  account_begin();
  const std::uint64_t seq = next_collective_seq();
  if (count > 0) {
    const Index ce = detail::coll_chunk_elems(sizeof(T));
    if (r == coll::Routine::kHierBroadcast) {
      coll::HierBroadcast<Communicator, T> alg(*this, data, count, root, ce,
                                               seq);
      alg.wait();
    } else {
      coll::BinomialBroadcast<Communicator, T> alg(*this, data, count, root,
                                                   ce, seq);
      alg.wait();
    }
  }
  if (r == coll::Routine::kHierBroadcast) {
    coll::account_phases(
        perf::thread_tracker(), backend_,
        coll::hier_phases(perf::CollKind::kBroadcast, bytes, size(),
                          topo_info()),
        /*bracketed=*/true);
  } else {
    account_end(perf::CollKind::kBroadcast, bytes, bytes);
  }
}

template <typename T>
void Communicator::all_gather(const T* send, Index count, T* recv) const {
  const std::size_t local_bytes = std::size_t(std::max<Index>(count, 0)) *
                                  sizeof(T);
  const std::size_t total_bytes = std::size_t(size()) * local_bytes;
  const coll::Routine r = coll::select(perf::CollKind::kAllGather, total_bytes,
                                       size(), backend_, topo_info());
  if (size() == 1 || r == coll::Routine::kNaive) {
    naive_all_gather(send, count, recv);
    return;
  }
  fault::check("rank.die");
  if (r == coll::Routine::kHierAllGather) {
    // Collective group construction (two split() calls) stays outside the
    // perf bracket; it happens once per communicator.
    const auto& group = hier_group();
    account_begin();
    if (count > 0) {
      std::vector<Index> counts(std::size_t(size()), count);
      std::vector<Index> displs(counts.size());
      for (int i = 0; i < size(); ++i) {
        displs[std::size_t(i)] = Index(i) * count;
      }
      coll::hier_all_gather_v(*this, group, send, recv, counts, displs,
                              detail::coll_chunk_elems(sizeof(T)));
    }
    coll::account_phases(
        perf::thread_tracker(), backend_,
        coll::hier_phases(perf::CollKind::kAllGather, total_bytes, size(),
                          topo_info()),
        /*bracketed=*/true);
    return;
  }
  account_begin();
  const std::uint64_t seq = next_collective_seq();
  if (count > 0) {
    const Index ce = detail::coll_chunk_elems(sizeof(T));
    if (r == coll::Routine::kBruckAllGather) {
      coll::BruckAllGather<Communicator, T> alg(*this, send, recv, count, ce,
                                                seq);
      alg.wait();
    } else {
      std::vector<Index> counts(std::size_t(size()), count);
      std::vector<Index> displs(counts.size());
      for (int i = 0; i < size(); ++i) displs[std::size_t(i)] = Index(i) * count;
      coll::RingAllGather<Communicator, T> alg(*this, send, recv,
                                               std::move(counts),
                                               std::move(displs), ce, seq);
      alg.wait();
    }
  }
  account_end(perf::CollKind::kAllGather, total_bytes, local_bytes);
}

template <typename T>
void Communicator::all_gather_v(const T* send, Index count, T* recv,
                                const std::vector<Index>& counts,
                                const std::vector<Index>& displs) const {
  CHASE_CHECK_MSG(int(counts.size()) == size() && int(displs.size()) == size(),
                  "all_gather_v: counts/displs size mismatch");
  CHASE_CHECK_MSG(counts[std::size_t(rank_)] == count,
                  "all_gather_v: local count disagrees with counts[rank]");
  validate_gather_layout(counts, displs);
  const std::size_t local_bytes = std::size_t(std::max<Index>(count, 0)) *
                                  sizeof(T);
  std::size_t total_bytes = 0;
  for (const Index c : counts) total_bytes += std::size_t(c) * sizeof(T);
  const coll::Routine r = coll::select(perf::CollKind::kAllGather, total_bytes,
                                       size(), backend_, topo_info());
  if (size() == 1 || r == coll::Routine::kNaive) {
    naive_all_gather_v(send, count, recv, counts, displs);
    return;
  }
  fault::check("rank.die");
  // The composite hierarchical allgather requires the canonical contiguous
  // layout; scattered receive ranges ride the flat ring instead. The layout
  // is rank-identical, so every rank takes the same branch.
  if (r == coll::Routine::kHierAllGather &&
      coll::canonical_gather_layout(counts, displs)) {
    const auto& group = hier_group();
    account_begin();
    coll::hier_all_gather_v(*this, group, send, recv, counts, displs,
                            detail::coll_chunk_elems(sizeof(T)));
    coll::account_phases(
        perf::thread_tracker(), backend_,
        coll::hier_phases(perf::CollKind::kAllGather, total_bytes, size(),
                          topo_info()),
        /*bracketed=*/true);
    return;
  }
  account_begin();
  const std::uint64_t seq = next_collective_seq();
  // Bruck needs uniform blocks; the variable-count case rides the ring.
  coll::RingAllGather<Communicator, T> alg(*this, send, recv, counts, displs,
                                           detail::coll_chunk_elems(sizeof(T)),
                                           seq);
  alg.wait();
  account_end(perf::CollKind::kAllGather, total_bytes, local_bytes);
}

template <typename T>
coll::CollRequest Communicator::i_all_reduce(T* data, Index count,
                                             Reduction op) const {
  const std::size_t bytes = std::size_t(std::max<Index>(count, 0)) * sizeof(T);
  const coll::Routine r =
      size() == 1 || count <= 0
          ? coll::Routine::kNaive
          : coll::select(perf::CollKind::kAllReduce, bytes, size(), backend_,
                         topo_info());
  if (r == coll::Routine::kNaive) {
    // No channel algorithm to run asynchronously — complete eagerly (the
    // naive path is one blocking publish-and-sync anyway).
    all_reduce(data, count, op);
    return {};
  }
  fault::check("rank.die");
  const std::uint64_t seq = next_collective_seq();
  const Index ce = detail::coll_chunk_elems(sizeof(T));
  std::unique_ptr<coll::CollOp> alg;
  if (r == coll::Routine::kHierAllReduce) {
    alg = std::make_unique<coll::HierAllReduce<Communicator, T>>(
        *this, data, count, op, ce, seq);
  } else if (r == coll::Routine::kRingAllReduce) {
    alg = std::make_unique<coll::OrderedRingAllReduce<Communicator, T>>(
        *this, data, count, op, ce, seq);
  } else {
    alg = std::make_unique<coll::RabenseifnerAllReduce<Communicator, T>>(
        *this, data, count, op, ce, seq);
  }
  const bool hier = r == coll::Routine::kHierAllReduce;
  auto on_done = [this, data, count, bytes, hier] {
    detail::corrupt_reduced(data, count);
    if (hier) {
      coll::account_phases(
          perf::thread_tracker(), backend_,
          coll::hier_phases(perf::CollKind::kAllReduce, bytes, size(),
                            topo_info()),
          /*bracketed=*/false);
    } else {
      account_async(perf::CollKind::kAllReduce, bytes, bytes);
    }
  };
  return coll::CollRequest(
      std::make_unique<coll::WithCompletion<decltype(on_done)>>(
          std::move(alg), std::move(on_done)));
}

template <typename T>
coll::CollRequest Communicator::i_all_gather(const T* send, Index count,
                                             T* recv) const {
  const std::size_t local_bytes = std::size_t(std::max<Index>(count, 0)) *
                                  sizeof(T);
  const std::size_t total_bytes = std::size_t(size()) * local_bytes;
  // Flat selection on purpose: the hierarchical allgather is a blocking
  // composite over sub-communicators, not a single poll-driven CollOp, so
  // the nonblocking path keeps the flat candidates.
  const coll::Routine r =
      size() == 1 || count <= 0
          ? coll::Routine::kNaive
          : coll::select(perf::CollKind::kAllGather, total_bytes, size(),
                         backend_);
  if (r == coll::Routine::kNaive) {
    all_gather(send, count, recv);
    return {};
  }
  fault::check("rank.die");
  const std::uint64_t seq = next_collective_seq();
  const Index ce = detail::coll_chunk_elems(sizeof(T));
  std::unique_ptr<coll::CollOp> alg;
  if (r == coll::Routine::kBruckAllGather) {
    alg = std::make_unique<coll::BruckAllGather<Communicator, T>>(
        *this, send, recv, count, ce, seq);
  } else {
    std::vector<Index> counts(std::size_t(size()), count);
    std::vector<Index> displs(counts.size());
    for (int i = 0; i < size(); ++i) displs[std::size_t(i)] = Index(i) * count;
    alg = std::make_unique<coll::RingAllGather<Communicator, T>>(
        *this, send, recv, std::move(counts), std::move(displs), ce, seq);
  }
  auto on_done = [this, total_bytes, local_bytes] {
    account_async(perf::CollKind::kAllGather, total_bytes, local_bytes);
  };
  return coll::CollRequest(
      std::make_unique<coll::WithCompletion<decltype(on_done)>>(
          std::move(alg), std::move(on_done)));
}

}  // namespace chase::comm
