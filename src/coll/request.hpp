// Nonblocking collective requests.
//
// A CollOp is a poll-driven state machine over the chunk channels: progress()
// advances it as far as the already-arrived chunks allow and reports
// completion; wait() blocks (with the team's poisoned-error/watchdog
// semantics) until done. Completion is purely local — every expected chunk
// received and every outgoing chunk pushed — so a finished rank never needs
// to keep progressing on behalf of its peers.
//
// CollRequest is the movable handle Communicator::i_all_reduce/i_all_gather
// return. A default-constructed request is already complete (the blocking
// fallback for naive policy, single-rank teams and empty payloads).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/check.hpp"

namespace chase::coll {

class CollOp {
 public:
  virtual ~CollOp() = default;

  /// Advance as far as possible without blocking; true once complete.
  /// Idempotent after completion.
  virtual bool progress() = 0;

  /// Block until complete (poison-aware; may throw TeamAborted).
  virtual void wait() = 0;

  /// Re-arm a *completed* op for an identical replay under a fresh
  /// collective sequence number — the persistent-plan path (coll/plan.hpp)
  /// registers buffers and routing once and replays every iteration. All
  /// channel algorithms support it; ops that cannot replay keep the refusing
  /// default.
  virtual void reset(std::uint64_t /*seq*/) {
    CHASE_CHECK_MSG(false, "collective op does not support plan replay");
  }
};

/// Runs `fn` exactly once when the wrapped op completes — the dispatch layer
/// uses it to apply completion-time effects (allreduce.corrupt injection,
/// perf accounting) regardless of whether the caller finishes the request
/// via test() or wait().
template <typename Fn>
class WithCompletion final : public CollOp {
 public:
  WithCompletion(std::unique_ptr<CollOp> op, Fn fn)
      : op_(std::move(op)), fn_(std::move(fn)) {}

  bool progress() override {
    if (!op_->progress()) return false;
    finish();
    return true;
  }

  void wait() override {
    op_->wait();
    finish();
  }

  void reset(std::uint64_t seq) override {
    op_->reset(seq);
    finished_ = false;  // the completion effect re-fires per replay
  }

 private:
  void finish() {
    if (finished_) return;
    finished_ = true;
    fn_();
  }

  std::unique_ptr<CollOp> op_;
  Fn fn_;
  bool finished_ = false;
};

class CollRequest {
 public:
  CollRequest() = default;
  explicit CollRequest(std::unique_ptr<CollOp> op) : op_(std::move(op)) {}

  CollRequest(CollRequest&&) noexcept = default;
  CollRequest& operator=(CollRequest&& o) {
    if (this != &o) {
      wait();  // never silently drop an in-flight operation
      op_ = std::move(o.op_);
    }
    return *this;
  }
  CollRequest(const CollRequest&) = delete;
  CollRequest& operator=(const CollRequest&) = delete;

  /// Nonblocking completion probe (MPI_Test).
  bool test() {
    if (op_ == nullptr) return true;
    if (!op_->progress()) return false;
    op_.reset();
    return true;
  }

  /// Block until complete (MPI_Wait).
  void wait() {
    if (op_ == nullptr) return;
    op_->wait();
    op_.reset();
  }

  /// True if the operation has been observed complete (via test()/wait()).
  bool done() const { return op_ == nullptr; }

  ~CollRequest() {
    // A request abandoned during unwind must not leave peers with a silent
    // partner; drain it, swallowing the TeamAborted the unwind is likely
    // already carrying.
    if (op_ == nullptr) return;
    try {
      op_->wait();
    } catch (...) {
    }
  }

 private:
  std::unique_ptr<CollOp> op_;
};

}  // namespace chase::coll
