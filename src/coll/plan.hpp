// Persistent communication plans (CommBench's add/measure idiom).
//
// The filter loop runs the *same* collectives — same buffers, same counts,
// same communicator — hundreds of times per solve. Dispatching each call
// pays routine selection, algorithm-object construction (offset tables,
// scratch buffers, tree shapes) and, for the hierarchical routines, the
// grouped sub-communicator lookup, every single iteration. A CollPlan does
// that work once: add_*() freezes the routine choice and builds the channel
// state machine at registration time, and run()/start() replay it under a
// fresh collective sequence number with everything else reused (CollOp::
// reset()).
//
// Glue over comm/communicator.hpp like coll/dispatch.hpp: a plan is
// registered against live comm::Communicator handles and replays with the
// exact accounting and fault-injection hooks of the ad-hoc dispatch path, so
// planned and unplanned execution are observationally identical (bitwise
// results, Tracker events, coll.* counters) — the only difference is the
// coll.plan.* counters and the saved planning work.
//
// Contract: the registered buffers must stay valid and the policy
// (algorithm, chunk size, topology) must not change between add and replay —
// callers key their plan caches on a policy fingerprint and rebuild on
// mismatch (see dist/dist_matrix.hpp). Replays of one plan are collective in
// registration order across the communicator's ranks.
//
// Counters: coll.plan.builds (+1 per registered entry), coll.plan.replays
// (+1 per entry replay, blocking or nonblocking).
#pragma once

#ifndef CHASE_COMM_COMMUNICATOR_INCLUDED
#error "coll/plan.hpp is glue over comm/communicator.hpp; include that first"
#endif

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "coll/algorithms.hpp"
#include "coll/engine.hpp"
#include "coll/hierarchy.hpp"
#include "coll/request.hpp"
#include "common/faultinject.hpp"
#include "perf/tracker.hpp"

namespace chase::coll {

namespace detail {

/// Non-owning CollOp view handed out by CollPlan::start(): forwards
/// progress/wait to the plan-owned op and fires the completion-time effects
/// (corruption injection, accounting) exactly once.
class BorrowedOp final : public CollOp {
 public:
  BorrowedOp(CollOp* op, std::function<void()> on_done)
      : op_(op), on_done_(std::move(on_done)) {}

  bool progress() override {
    if (!op_->progress()) return false;
    fire();
    return true;
  }

  void wait() override {
    op_->wait();
    fire();
  }

 private:
  void fire() {
    if (fired_) return;
    fired_ = true;
    if (on_done_) on_done_();
  }

  CollOp* op_;
  std::function<void()> on_done_;
  bool fired_ = false;
};

inline void plan_bump(const char* name) {
  if (perf::thread_tracker() != nullptr) perf::bump_counter(name, 1.0);
}

}  // namespace detail

class CollPlan {
 public:
  CollPlan() = default;
  CollPlan(CollPlan&&) noexcept = default;
  CollPlan& operator=(CollPlan&&) noexcept = default;

  /// Register an in-place allreduce of (data, count) on `comm`. The routine
  /// is selected and its state machine built here, once.
  template <typename T>
  void add_all_reduce(const comm::Communicator& comm, T* data, la::Index count,
                      comm::Reduction op = comm::Reduction::kSum) {
    using la::Index;
    const std::size_t bytes =
        std::size_t(std::max<Index>(count, 0)) * sizeof(T);
    const Routine r =
        comm.size() <= 1 || count <= 0
            ? Routine::kNaive
            : select(perf::CollKind::kAllReduce, bytes, comm.size(),
                     comm.backend(), comm.topo_info());
    Entry e;
    e.next_seq = [comm] { return comm.next_collective_seq(); };
    if (r == Routine::kNaive) {
      e.run_blocking = [comm, data, count, op] {
        comm.all_reduce(data, count, op);
      };
    } else {
      const Index ce = comm::detail::coll_chunk_elems(sizeof(T));
      if (r == Routine::kHierAllReduce) {
        e.op = std::make_unique<HierAllReduce<comm::Communicator, T>>(
            comm, data, count, op, ce, /*seq=*/0);
      } else if (r == Routine::kRingAllReduce) {
        e.op = std::make_unique<OrderedRingAllReduce<comm::Communicator, T>>(
            comm, data, count, op, ce, /*seq=*/0);
      } else {
        e.op = std::make_unique<RabenseifnerAllReduce<comm::Communicator, T>>(
            comm, data, count, op, ce, /*seq=*/0);
      }
      const auto phases =
          r == Routine::kHierAllReduce
              ? hier_phases(perf::CollKind::kAllReduce, bytes, comm.size(),
                            comm.topo_info())
              : std::vector<CollPhase>{
                    {perf::CollKind::kAllReduce, bytes, comm.size()}};
      const perf::Backend backend = comm.backend();
      e.complete = [data, count, backend, phases](bool bracketed) {
        comm::detail::corrupt_reduced(data, count);
        account_phases(perf::thread_tracker(), backend, phases, bracketed);
      };
    }
    finish_entry(std::move(e));
  }

  /// Register an equal-count allgather on `comm`.
  template <typename T>
  void add_all_gather(const comm::Communicator& comm, const T* send,
                      la::Index count, T* recv) {
    using la::Index;
    const std::size_t local_bytes =
        std::size_t(std::max<Index>(count, 0)) * sizeof(T);
    const std::size_t total_bytes = std::size_t(comm.size()) * local_bytes;
    const Routine r =
        comm.size() <= 1 || count <= 0
            ? Routine::kNaive
            : select(perf::CollKind::kAllGather, total_bytes, comm.size(),
                     comm.backend(), comm.topo_info());
    Entry e;
    e.next_seq = [comm] { return comm.next_collective_seq(); };
    if (r == Routine::kNaive) {
      e.run_blocking = [comm, send, count, recv] {
        comm.all_gather(send, count, recv);
      };
    } else if (r == Routine::kHierAllGather) {
      // Blocking composite over the grouped sub-communicators; the group is
      // built here (collective) and reused by every replay.
      (void)comm.hier_group();
      const Index ce = comm::detail::coll_chunk_elems(sizeof(T));
      std::vector<Index> counts(std::size_t(comm.size()), count);
      std::vector<Index> displs(counts.size());
      for (int i = 0; i < comm.size(); ++i) {
        displs[std::size_t(i)] = Index(i) * count;
      }
      const auto phases = hier_phases(perf::CollKind::kAllGather, total_bytes,
                                      comm.size(), comm.topo_info());
      const perf::Backend backend = comm.backend();
      e.run_blocking = [comm, send, recv, counts, displs, ce, backend,
                        phases] {
        fault::check("rank.die");
        if (auto* t = perf::thread_tracker()) t->begin_collective();
        hier_all_gather_v(comm, comm.hier_group(), send, recv, counts, displs,
                          ce);
        account_phases(perf::thread_tracker(), backend, phases,
                       /*bracketed=*/true);
      };
    } else {
      const Index ce = comm::detail::coll_chunk_elems(sizeof(T));
      if (r == Routine::kBruckAllGather) {
        e.op = std::make_unique<BruckAllGather<comm::Communicator, T>>(
            comm, send, recv, count, ce, /*seq=*/0);
      } else {
        std::vector<Index> counts(std::size_t(comm.size()), count);
        std::vector<Index> displs(counts.size());
        for (int i = 0; i < comm.size(); ++i) {
          displs[std::size_t(i)] = Index(i) * count;
        }
        e.op = std::make_unique<RingAllGather<comm::Communicator, T>>(
            comm, send, recv, std::move(counts), std::move(displs), ce,
            /*seq=*/0);
      }
      const std::vector<CollPhase> phases{
          {perf::CollKind::kAllGather, total_bytes, comm.size()}};
      const perf::Backend backend = comm.backend();
      e.complete = [backend, phases](bool bracketed) {
        account_phases(perf::thread_tracker(), backend, phases, bracketed);
      };
    }
    finish_entry(std::move(e));
  }

  /// Register a broadcast from `root` on `comm`.
  template <typename T>
  void add_broadcast(const comm::Communicator& comm, T* data, la::Index count,
                     int root) {
    using la::Index;
    const std::size_t bytes =
        std::size_t(std::max<Index>(count, 0)) * sizeof(T);
    const Routine r =
        comm.size() <= 1 || count <= 0
            ? Routine::kNaive
            : select(perf::CollKind::kBroadcast, bytes, comm.size(),
                     comm.backend(), comm.topo_info());
    Entry e;
    e.next_seq = [comm] { return comm.next_collective_seq(); };
    if (r == Routine::kNaive) {
      e.run_blocking = [comm, data, count, root] {
        comm.broadcast(data, count, root);
      };
    } else {
      const Index ce = comm::detail::coll_chunk_elems(sizeof(T));
      if (r == Routine::kHierBroadcast) {
        e.op = std::make_unique<HierBroadcast<comm::Communicator, T>>(
            comm, data, count, root, ce, /*seq=*/0);
      } else {
        e.op = std::make_unique<BinomialBroadcast<comm::Communicator, T>>(
            comm, data, count, root, ce, /*seq=*/0);
      }
      const auto phases =
          r == Routine::kHierBroadcast
              ? hier_phases(perf::CollKind::kBroadcast, bytes, comm.size(),
                            comm.topo_info())
              : std::vector<CollPhase>{
                    {perf::CollKind::kBroadcast, bytes, comm.size()}};
      const perf::Backend backend = comm.backend();
      e.complete = [backend, phases](bool bracketed) {
        account_phases(perf::thread_tracker(), backend, phases, bracketed);
      };
    }
    finish_entry(std::move(e));
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Blocking replay of entry `i` (collective across the registered comm).
  void run(std::size_t i) {
    Entry& e = entries_[i];
    detail::plan_bump("coll.plan.replays");
    if (!e.op) {
      e.run_blocking();
      return;
    }
    fault::check("rank.die");
    if (auto* t = perf::thread_tracker()) t->begin_collective();
    e.op->reset(e.next_seq());
    e.op->wait();
    e.complete(/*bracketed=*/true);
  }

  /// Replay every entry, in registration order.
  void execute() {
    for (std::size_t i = 0; i < entries_.size(); ++i) run(i);
  }

  /// Nonblocking replay of entry `i`. Only channel-op entries support it
  /// (the dispatch layer never plans naive/composite routines for the
  /// overlap path); check with async_capable().
  coll::CollRequest start(std::size_t i) {
    Entry& e = entries_[i];
    CHASE_CHECK_MSG(e.op != nullptr,
                    "plan entry cannot replay asynchronously");
    detail::plan_bump("coll.plan.replays");
    fault::check("rank.die");
    e.op->reset(e.next_seq());
    auto* complete = &e.complete;
    return coll::CollRequest(std::make_unique<detail::BorrowedOp>(
        e.op.get(), [complete] { (*complete)(/*bracketed=*/false); }));
  }

  bool async_capable(std::size_t i) const {
    return entries_[i].op != nullptr;
  }

 private:
  struct Entry {
    std::unique_ptr<CollOp> op;               // resettable channel op
    std::function<std::uint64_t()> next_seq;  // fresh seq from the comm
    std::function<void()> run_blocking;       // used when op == nullptr
    std::function<void(bool bracketed)> complete;
  };

  void finish_entry(Entry e) {
    detail::plan_bump("coll.plan.builds");
    entries_.push_back(std::move(e));
  }

  std::vector<Entry> entries_;
};

}  // namespace chase::coll
