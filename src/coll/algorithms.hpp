// Chunk-pipelined collective algorithms over the point-to-point channels.
//
// Every algorithm is a CollOp state machine templated on the communicator
// type (so this header never needs comm/communicator.hpp — the dispatch
// glue in coll/dispatch.hpp instantiates them with comm::Communicator). The
// required Comm surface: rank(), size(), send_chunk(), try_recv_chunk(),
// inbox_arrivals(), wait_new_arrival().
//
// Determinism contract: the naive reference folds contributions in rank
// order 0..P-1, and the filter/QR stacks rely on every rank seeing the
// *bitwise identical* reduced value. Both allreduce algorithms here keep
// that exact summation order:
//
//  - OrderedRingAllReduce: a chunk is accumulated along the chain
//    0 -> 1 -> ... -> P-1 (rank order by construction) and the finished
//    values flow on around the ring P-1 -> 0 -> ... -> P-2. Classic NCCL
//    rings rotate the starting segment per rank, which reorders the sums;
//    the ordered chain pays one extra latency factor for determinism while
//    keeping the chunk-pipelined structure (2(P-1)+k-1 hop times for k
//    chunks in flight).
//  - RabenseifnerAllReduce: reduce-scatter + allgather with the classic
//    2N(P-1)/P per-rank bandwidth, but the reduce-scatter is a direct
//    pairwise exchange whose segment owners fold contributions in rank
//    order, instead of recursive halving (which would build a different
//    summation tree). The latency term grows from 2 log2 P to ~2(P-1);
//    the cost model knows.
//
// Data movement collectives (allgather, broadcast) are pure copies, so ring,
// bruck and binomial shapes are trivially bitwise-safe.
//
// Tag layout (see comm/chunk_channel.hpp): seq(32) | phase(4) | step(12) |
// chunk(16).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "coll/request.hpp"
#include "comm/reduction.hpp"
#include "common/check.hpp"
#include "la/matrix.hpp"
#include "perf/tracker.hpp"

namespace chase::coll {

using la::Index;

namespace detail {

inline Index div_up(Index a, Index b) { return (a + b - 1) / b; }

inline std::uint64_t make_tag(std::uint64_t seq, unsigned phase, unsigned step,
                              unsigned chunk) {
  return (seq << 32) | (std::uint64_t(phase & 0xFu) << 28) |
         (std::uint64_t(step & 0xFFFu) << 16) | std::uint64_t(chunk & 0xFFFFu);
}

}  // namespace detail

/// Common machinery: blocking wait over progress(), and per-algorithm
/// bytes/steps accounting flushed to the thread tracker on completion.
template <typename Comm>
class ChannelOp : public CollOp {
 public:
  explicit ChannelOp(const Comm& comm, const char* counter_prefix)
      : comm_(comm), prefix_(counter_prefix) {}

  void wait() final {
    for (;;) {
      // Read the arrival counter *before* progressing: a chunk landing
      // between progress() and the wait bumps it past `seen`, so
      // wait_new_arrival returns immediately instead of losing the wakeup.
      const std::uint64_t seen = comm_.inbox_arrivals();
      if (progress()) return;
      comm_.wait_new_arrival(seen);
    }
  }

 protected:
  void send(int dst, std::uint64_t tag, const void* data, std::size_t bytes) {
    comm_.send_chunk(dst, tag, data, bytes);
    ++steps_;
    bytes_ += bytes;
  }

  void note_recv(std::size_t bytes) {
    ++steps_;
    bytes_ += bytes;
  }

  /// Flush the per-algorithm counters exactly once, on completion.
  void finish() {
    if (finished_) return;
    finished_ = true;
    if (perf::thread_tracker() == nullptr) return;
    const std::string p(prefix_);
    perf::bump_counter(p + ".calls", 1.0);
    perf::bump_counter(p + ".steps", double(steps_));
    perf::bump_counter(p + ".bytes", double(bytes_));
  }

  /// Plan replay: start a fresh counting epoch so every replay flushes its
  /// own .calls/.steps/.bytes bump.
  void reset_counters() {
    finished_ = false;
    steps_ = 0;
    bytes_ = 0;
  }

  const Comm& comm_;

 private:
  const char* prefix_;
  std::size_t steps_ = 0;   // chunk sends + receives this rank performed
  std::size_t bytes_ = 0;   // bytes moved through this rank's channels
  bool finished_ = false;
};

/// Deterministic chunk-pipelined ring allreduce (see file comment).
template <typename Comm, typename T>
class OrderedRingAllReduce final : public ChannelOp<Comm> {
 public:
  OrderedRingAllReduce(const Comm& comm, T* data, Index count,
                       comm::Reduction op, Index chunk_elems,
                       std::uint64_t seq)
      : ChannelOp<Comm>(comm, "coll.ring_allreduce"),
        data_(data),
        count_(count),
        op_(op),
        chunk_(std::max<Index>(1, chunk_elems)),
        seq_(seq),
        rank_(comm.rank()),
        size_(comm.size()),
        nc_(detail::div_up(count, chunk_)) {
    CHASE_CHECK_MSG(nc_ <= 0xFFFF, "allreduce payload needs too many chunks");
    scratch_.resize(std::size_t(std::min<Index>(count_, chunk_)));
    // The last rank finishes each chunk itself during the reduce pass and
    // only *feeds* the distribute ring.
    if (rank_ == size_ - 1) dist_done_ = nc_;
  }

  bool progress() override {
    if (complete()) return true;
    // Reduce pass: chunk c accumulates contributions in rank order while
    // hopping 0 -> 1 -> ... -> P-1.
    while (red_done_ < nc_) {
      const Index b = red_done_ * chunk_;
      const Index len = std::min(chunk_, count_ - b);
      const std::size_t bytes = std::size_t(len) * sizeof(T);
      if (rank_ == 0) {
        this->send(1, tag(0, red_done_), data_ + b, bytes);
      } else {
        if (!this->comm_.try_recv_chunk(rank_ - 1, tag(0, red_done_),
                                        scratch_.data(), bytes)) {
          break;
        }
        this->note_recv(bytes);
        for (Index i = 0; i < len; ++i) {
          comm::detail::reduce_assign(op_, scratch_[std::size_t(i)],
                                      data_[b + i]);
        }
        if (rank_ + 1 < size_) {
          this->send(rank_ + 1, tag(0, red_done_), scratch_.data(), bytes);
        } else {
          std::copy_n(scratch_.data(), len, data_ + b);
          this->send(0, tag(1, red_done_), data_ + b, bytes);
        }
      }
      ++red_done_;
    }
    // Distribute pass: finished chunks flow P-1 -> 0 -> 1 -> ... -> P-2.
    while (dist_done_ < nc_) {
      const Index b = dist_done_ * chunk_;
      const Index len = std::min(chunk_, count_ - b);
      const std::size_t bytes = std::size_t(len) * sizeof(T);
      const int prev = rank_ == 0 ? size_ - 1 : rank_ - 1;
      if (!this->comm_.try_recv_chunk(prev, tag(1, dist_done_), data_ + b,
                                      bytes)) {
        break;
      }
      this->note_recv(bytes);
      if (rank_ != size_ - 2) {
        this->send(rank_ + 1, tag(1, dist_done_), data_ + b, bytes);
      }
      ++dist_done_;
    }
    if (!complete()) return false;
    this->finish();
    return true;
  }

  void reset(std::uint64_t seq) override {
    seq_ = seq;
    red_done_ = 0;
    dist_done_ = rank_ == size_ - 1 ? nc_ : 0;
    this->reset_counters();
  }

 private:
  bool complete() const { return red_done_ == nc_ && dist_done_ == nc_; }

  std::uint64_t tag(unsigned phase, Index chunk) const {
    return detail::make_tag(seq_, phase, 0, unsigned(chunk));
  }

  T* data_;
  Index count_;
  comm::Reduction op_;
  Index chunk_;
  std::uint64_t seq_;
  int rank_;
  int size_;
  Index nc_;
  Index red_done_ = 0;
  Index dist_done_ = 0;
  std::vector<T> scratch_;
};

/// Rabenseifner-flavored allreduce: order-preserving reduce-scatter + direct
/// allgather of the owned segments (see file comment).
template <typename Comm, typename T>
class RabenseifnerAllReduce final : public ChannelOp<Comm> {
 public:
  RabenseifnerAllReduce(const Comm& comm, T* data, Index count,
                        comm::Reduction op, Index chunk_elems,
                        std::uint64_t seq)
      : ChannelOp<Comm>(comm, "coll.rabenseifner_allreduce"),
        data_(data),
        count_(count),
        op_(op),
        chunk_(std::max<Index>(1, chunk_elems)),
        seq_(seq),
        rank_(comm.rank()),
        size_(comm.size()) {
    // Segment s (owned by rank s) is the near-equal slice [off_[s],
    // off_[s] + len_[s]) of the payload.
    off_.resize(std::size_t(size_));
    len_.resize(std::size_t(size_));
    const Index base = count_ / size_;
    const Index rem = count_ % size_;
    Index off = 0;
    for (int s = 0; s < size_; ++s) {
      off_[std::size_t(s)] = off;
      len_[std::size_t(s)] = base + (Index(s) < rem ? 1 : 0);
      off += len_[std::size_t(s)];
    }
    CHASE_CHECK_MSG(detail::div_up(chunk_ > 0 ? len_max() : 0, chunk_) <= 0xFFFF,
                    "allreduce segment needs too many chunks");
    nsub_own_ = detail::div_up(own_len(), chunk_);
    scratch_.resize(std::size_t(std::min<Index>(chunk_, std::max<Index>(
                                                            own_len(), 1))));
    tmp_.resize(scratch_.size());
    ag_done_.assign(std::size_t(size_), 0);
  }

  bool progress() override {
    if (complete()) return true;
    // Phase 0 sends: my contribution to every foreign segment, chunked.
    if (!sent_rs_) {
      for (int s = 0; s < size_; ++s) {
        if (s == rank_ || len_[std::size_t(s)] == 0) continue;
        send_segment(s, /*phase=*/0, off_[std::size_t(s)],
                     len_[std::size_t(s)]);
      }
      sent_rs_ = true;
    }
    // Phase 0 fold: finalize my own segment, sub-chunk by sub-chunk, folding
    // the P contributions in rank order.
    while (sub_ < nsub_own_) {
      const Index b = own_off() + sub_ * chunk_;
      const Index len = std::min(chunk_, own_off() + own_len() - b);
      const std::size_t bytes = std::size_t(len) * sizeof(T);
      bool stalled = false;
      while (src_ < size_) {
        if (src_ == rank_) {
          fold(scratch_.data(), data_ + b, len, src_ == 0);
          ++src_;
          continue;
        }
        if (!this->comm_.try_recv_chunk(src_, tag(0, src_, sub_), tmp_.data(),
                                        bytes)) {
          stalled = true;
          break;
        }
        this->note_recv(bytes);
        fold(scratch_.data(), tmp_.data(), len, src_ == 0);
        ++src_;
      }
      if (stalled) break;
      std::copy_n(scratch_.data(), len, data_ + b);
      ++sub_;
      src_ = 0;
    }
    // Phase 1 sends: once my segment is final, hand it to every peer.
    if (sub_ == nsub_own_ && !sent_ag_) {
      for (int s = 0; s < size_; ++s) {
        if (s == rank_ || own_len() == 0) continue;
        send_segment(s, /*phase=*/1, own_off(), own_len());
      }
      sent_ag_ = true;
    }
    // Phase 1 receives: collect every foreign segment (streams from distinct
    // sources are independent, so progress here even while phase 0 stalls).
    for (int s = 0; s < size_; ++s) {
      if (s == rank_ || len_[std::size_t(s)] == 0) continue;
      const Index nsub = detail::div_up(len_[std::size_t(s)], chunk_);
      Index& got = ag_done_[std::size_t(s)];
      while (got < nsub) {
        const Index b = off_[std::size_t(s)] + got * chunk_;
        const Index len =
            std::min(chunk_, off_[std::size_t(s)] + len_[std::size_t(s)] - b);
        const std::size_t bytes = std::size_t(len) * sizeof(T);
        if (!this->comm_.try_recv_chunk(s, tag(1, s, got), data_ + b, bytes)) {
          break;
        }
        this->note_recv(bytes);
        ++got;
      }
    }
    if (!complete()) return false;
    this->finish();
    return true;
  }

  void reset(std::uint64_t seq) override {
    seq_ = seq;
    sub_ = 0;
    src_ = 0;
    sent_rs_ = false;
    sent_ag_ = false;
    ag_done_.assign(std::size_t(size_), 0);
    this->reset_counters();
  }

 private:
  Index own_off() const { return off_[std::size_t(rank_)]; }
  Index own_len() const { return len_[std::size_t(rank_)]; }

  Index len_max() const {
    Index m = 0;
    for (const Index l : len_) m = std::max(m, l);
    return m;
  }

  bool complete() const {
    if (!sent_rs_ || !sent_ag_ || sub_ < nsub_own_) return false;
    for (int s = 0; s < size_; ++s) {
      if (s == rank_) continue;
      if (ag_done_[std::size_t(s)] < detail::div_up(len_[std::size_t(s)],
                                                    chunk_)) {
        return false;
      }
    }
    return true;
  }

  void fold(T* acc, const T* x, Index len, bool first) {
    if (first) {
      std::copy_n(x, len, acc);
      return;
    }
    for (Index i = 0; i < len; ++i) {
      comm::detail::reduce_assign(op_, acc[std::size_t(i)], x[i]);
    }
  }

  void send_segment(int dst, unsigned phase, Index off, Index len) {
    const Index nsub = detail::div_up(len, chunk_);
    for (Index c = 0; c < nsub; ++c) {
      const Index b = off + c * chunk_;
      const Index l = std::min(chunk_, off + len - b);
      this->send(dst, tag(phase, rank_, c), data_ + b,
                 std::size_t(l) * sizeof(T));
    }
  }

  /// `step` carries the segment owner's view of the stream: phase 0 chunks
  /// are keyed by the *sender* (so the owner can fold in rank order), phase
  /// 1 chunks by the segment owner. Both coincide with the source rank,
  /// which the mailbox already separates, but keeping it in the tag makes
  /// tags globally unique and mismatches loud.
  std::uint64_t tag(unsigned phase, int step_rank, Index chunk) const {
    return detail::make_tag(seq_, phase, unsigned(step_rank), unsigned(chunk));
  }

  T* data_;
  Index count_;
  comm::Reduction op_;
  Index chunk_;
  std::uint64_t seq_;
  int rank_;
  int size_;
  std::vector<Index> off_;
  std::vector<Index> len_;
  Index nsub_own_ = 0;
  Index sub_ = 0;   // next sub-chunk of my segment to finalize
  int src_ = 0;     // next source to fold into the current sub-chunk
  bool sent_rs_ = false;
  bool sent_ag_ = false;
  std::vector<Index> ag_done_;  // phase-1 chunks received per segment
  std::vector<T> scratch_;
  std::vector<T> tmp_;
};

/// Ring allgather over per-rank (count, displ) blocks: step t forwards the
/// block received at step t-1, chunk by chunk, so a slow predecessor only
/// stalls its own stream. Handles the variable-count case directly; the
/// equal-count allgather passes uniform counts.
template <typename Comm, typename T>
class RingAllGather final : public ChannelOp<Comm> {
 public:
  RingAllGather(const Comm& comm, const T* send, T* recv,
                std::vector<Index> counts, std::vector<Index> displs,
                Index chunk_elems, std::uint64_t seq)
      : ChannelOp<Comm>(comm, "coll.ring_allgather"),
        send_(send),
        recv_(recv),
        counts_(std::move(counts)),
        displs_(std::move(displs)),
        chunk_(std::max<Index>(1, chunk_elems)),
        seq_(seq),
        rank_(comm.rank()),
        size_(comm.size()) {
    CHASE_CHECK_MSG(size_ <= 0xFFF, "team too large for the ring tag space");
    for (const Index c : counts_) {
      CHASE_CHECK_MSG(detail::div_up(c, chunk_) <= 0xFFFF,
                      "allgather block needs too many chunks");
    }
    if (counts_[std::size_t(rank_)] > 0) {
      std::copy_n(send, counts_[std::size_t(rank_)],
                  recv_ + displs_[std::size_t(rank_)]);
    }
    sent_.assign(std::size_t(size_), 0);
    recvd_.assign(std::size_t(size_), 0);
  }

  bool progress() override {
    if (complete()) return true;
    const int next = (rank_ + 1) % size_;
    const int prev = (rank_ + size_ - 1) % size_;
    for (int t = 1; t < size_; ++t) {
      // At step t I forward block (rank - t + 1) mod P and receive block
      // (rank - t) mod P from my predecessor.
      const int sb = (rank_ - t + 1 + size_) % size_;
      const int rb = (rank_ - t + size_) % size_;
      const Index send_chunks = detail::div_up(counts_[std::size_t(sb)], chunk_);
      // Block sb is my own contribution at t == 1 and otherwise exactly the
      // block step t-1 received — only its already-arrived chunks can go out.
      const Index avail = t == 1 ? send_chunks : recvd_[std::size_t(t - 1)];
      Index& sent = sent_[std::size_t(t)];
      while (sent < avail) {
        const Index b = displs_[std::size_t(sb)] + sent * chunk_;
        const Index len =
            std::min(chunk_, displs_[std::size_t(sb)] +
                                 counts_[std::size_t(sb)] - b);
        this->send(next, tag(t, sent), recv_ + b, std::size_t(len) * sizeof(T));
        ++sent;
      }
      const Index recv_chunks = detail::div_up(counts_[std::size_t(rb)], chunk_);
      Index& got = recvd_[std::size_t(t)];
      while (got < recv_chunks) {
        const Index b = displs_[std::size_t(rb)] + got * chunk_;
        const Index len =
            std::min(chunk_, displs_[std::size_t(rb)] +
                                 counts_[std::size_t(rb)] - b);
        const std::size_t bytes = std::size_t(len) * sizeof(T);
        if (!this->comm_.try_recv_chunk(prev, tag(t, got), recv_ + b, bytes)) {
          break;
        }
        this->note_recv(bytes);
        ++got;
      }
    }
    if (!complete()) return false;
    this->finish();
    return true;
  }

  void reset(std::uint64_t seq) override {
    seq_ = seq;
    sent_.assign(std::size_t(size_), 0);
    recvd_.assign(std::size_t(size_), 0);
    // The caller refilled the registered send buffer; re-seed my own block.
    if (counts_[std::size_t(rank_)] > 0) {
      std::copy_n(send_, counts_[std::size_t(rank_)],
                  recv_ + displs_[std::size_t(rank_)]);
    }
    this->reset_counters();
  }

 private:
  bool complete() const {
    for (int t = 1; t < size_; ++t) {
      const int sb = (rank_ - t + 1 + size_) % size_;
      const int rb = (rank_ - t + size_) % size_;
      if (sent_[std::size_t(t)] < detail::div_up(counts_[std::size_t(sb)],
                                                 chunk_) ||
          recvd_[std::size_t(t)] < detail::div_up(counts_[std::size_t(rb)],
                                                  chunk_)) {
        return false;
      }
    }
    return true;
  }

  std::uint64_t tag(int step, Index chunk) const {
    return detail::make_tag(seq_, 0, unsigned(step), unsigned(chunk));
  }

  const T* send_;
  T* recv_;
  std::vector<Index> counts_;
  std::vector<Index> displs_;
  Index chunk_;
  std::uint64_t seq_;
  int rank_;
  int size_;
  std::vector<Index> sent_;   // chunks forwarded, per ring step
  std::vector<Index> recvd_;  // chunks received, per ring step
};

/// Bruck allgather (equal counts): ceil(log2 P) doubling rounds over a
/// rotated work buffer, un-rotated into the receive buffer at the end.
template <typename Comm, typename T>
class BruckAllGather final : public ChannelOp<Comm> {
 public:
  BruckAllGather(const Comm& comm, const T* send, T* recv, Index count,
                 Index chunk_elems, std::uint64_t seq)
      : ChannelOp<Comm>(comm, "coll.bruck_allgather"),
        send_(send),
        recv_(recv),
        count_(count),
        chunk_(std::max<Index>(1, chunk_elems)),
        seq_(seq),
        rank_(comm.rank()),
        size_(comm.size()),
        work_(std::size_t(count) * std::size_t(size_)) {
    CHASE_CHECK_MSG(
        detail::div_up(count_ * Index(size_), chunk_) <= 0xFFFF,
        "allgather payload needs too many chunks");
    if (count_ > 0) std::copy_n(send, count_, work_.data());
  }

  bool progress() override {
    if (complete()) return true;
    if (count_ == 0) {
      done_ = true;
      this->finish();
      return true;
    }
    while (dist_ < size_) {
      // Round r: send my first min(dist, P-dist) blocks dist ranks back,
      // receive the same from dist ranks ahead, appending at block dist.
      const int m = std::min(dist_, size_ - dist_);
      const Index elems = Index(m) * count_;
      const Index nch = detail::div_up(elems, chunk_);
      if (!sent_round_) {
        const int dst = (rank_ - dist_ + size_) % size_;
        for (Index c = 0; c < nch; ++c) {
          const Index b = c * chunk_;
          const Index len = std::min(chunk_, elems - b);
          this->send(dst, tag(round_, c), work_.data() + b,
                     std::size_t(len) * sizeof(T));
        }
        sent_round_ = true;
      }
      const int src = (rank_ + dist_) % size_;
      while (rc_ < nch) {
        const Index b = rc_ * chunk_;
        const Index len = std::min(chunk_, elems - b);
        const std::size_t bytes = std::size_t(len) * sizeof(T);
        if (!this->comm_.try_recv_chunk(
                src, tag(round_, rc_),
                work_.data() + Index(dist_) * count_ + b, bytes)) {
          return false;
        }
        this->note_recv(bytes);
        ++rc_;
      }
      dist_ *= 2;
      ++round_;
      rc_ = 0;
      sent_round_ = false;
    }
    // Un-rotate: work block i holds global block (rank + i) mod P.
    for (int i = 0; i < size_; ++i) {
      std::copy_n(work_.data() + Index(i) * count_, count_,
                  recv_ + Index((rank_ + i) % size_) * count_);
    }
    done_ = true;
    this->finish();
    return true;
  }

  void reset(std::uint64_t seq) override {
    seq_ = seq;
    dist_ = 1;
    round_ = 0;
    rc_ = 0;
    sent_round_ = false;
    done_ = false;
    if (count_ > 0) std::copy_n(send_, count_, work_.data());
    this->reset_counters();
  }

 private:
  bool complete() const { return done_; }

  std::uint64_t tag(int round, Index chunk) const {
    return detail::make_tag(seq_, 0, unsigned(round), unsigned(chunk));
  }

  const T* send_;
  T* recv_;
  Index count_;
  Index chunk_;
  std::uint64_t seq_;
  int rank_;
  int size_;
  std::vector<T> work_;
  int dist_ = 1;
  int round_ = 0;
  Index rc_ = 0;
  bool sent_round_ = false;
  bool done_ = false;
};

/// Chunk-pipelined binomial-tree broadcast: chunks stream down the tree as
/// they arrive from the parent, so depth costs add once, not per chunk.
template <typename Comm, typename T>
class BinomialBroadcast final : public ChannelOp<Comm> {
 public:
  BinomialBroadcast(const Comm& comm, T* data, Index count, int root,
                    Index chunk_elems, std::uint64_t seq)
      : ChannelOp<Comm>(comm, "coll.binomial_broadcast"),
        data_(data),
        count_(count),
        chunk_(std::max<Index>(1, chunk_elems)),
        seq_(seq),
        rank_(comm.rank()),
        size_(comm.size()),
        nc_(detail::div_up(count, chunk_)) {
    CHASE_CHECK_MSG(nc_ <= 0xFFFF, "broadcast payload needs too many chunks");
    // Virtual rank v = (rank - root) mod P turns rank `root` into the tree
    // root; the parent strips v's lowest set bit, children add bits below.
    const int v = (rank_ - root + size_) % size_;
    unsigned mask = 1;
    while (int(mask) < size_ && (v & int(mask)) == 0) mask <<= 1;
    parent_ = v == 0 ? -1 : ((v - int(mask)) + root) % size_;
    for (unsigned m = mask >> 1; m > 0; m >>= 1) {
      if (v + int(m) < size_) children_.push_back(((v + int(m)) + root) % size_);
    }
    recvd_ = parent_ < 0 ? nc_ : 0;
    sent_.assign(children_.size(), 0);
  }

  bool progress() override {
    if (complete()) return true;
    while (recvd_ < nc_) {
      const Index b = recvd_ * chunk_;
      const Index len = std::min(chunk_, count_ - b);
      const std::size_t bytes = std::size_t(len) * sizeof(T);
      if (!this->comm_.try_recv_chunk(parent_, tag(recvd_), data_ + b, bytes)) {
        break;
      }
      this->note_recv(bytes);
      ++recvd_;
    }
    for (std::size_t i = 0; i < children_.size(); ++i) {
      while (sent_[i] < recvd_) {
        const Index b = sent_[i] * chunk_;
        const Index len = std::min(chunk_, count_ - b);
        this->send(children_[i], tag(sent_[i]), data_ + b,
                   std::size_t(len) * sizeof(T));
        ++sent_[i];
      }
    }
    if (!complete()) return false;
    this->finish();
    return true;
  }

  void reset(std::uint64_t seq) override {
    seq_ = seq;
    recvd_ = parent_ < 0 ? nc_ : 0;
    sent_.assign(children_.size(), 0);
    this->reset_counters();
  }

 private:
  bool complete() const {
    if (recvd_ < nc_) return false;
    for (const Index s : sent_) {
      if (s < nc_) return false;
    }
    return true;
  }

  std::uint64_t tag(Index chunk) const {
    return detail::make_tag(seq_, 0, 0, unsigned(chunk));
  }

  T* data_;
  Index count_;
  Index chunk_;
  std::uint64_t seq_;
  int rank_;
  int size_;
  Index nc_;
  int parent_ = -1;
  std::vector<int> children_;
  Index recvd_ = 0;
  std::vector<Index> sent_;
};

}  // namespace chase::coll
