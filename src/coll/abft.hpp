// ABFT sentinels on the hot collective path (Huang-Abraham style
// algorithm-based fault tolerance, the checksum technique DBCSR-class
// distributed GEMM stacks run inline on their dominant kernel).
//
// Two layers, both off by default (CHASE_ABFT=1 arms them):
//
//  * checked_all_reduce — a Fletcher-checksummed variant of the coll
//    engine's allreduce. After the reduction every rank hashes its result
//    buffer (Fletcher-64, one cheap pass) and the team compares hashes over
//    the trusted control-plane agree() primitive; finiteness of the result
//    is folded into the same verification word. Detection of either
//    `p2p.corrupt` (ranks diverge -> hash mismatch) or `allreduce.corrupt`
//    (collective NaN from finite inputs) triggers a *localized replay*: the
//    saved input block is restored and the reduction re-runs — instead of
//    the corruption propagating into the basis and costing a filter-guard
//    re-randomization (or worse, a silently wrong eigenpair). Bounded
//    replays; persistent corruption poisons the team with site
//    "abft.allreduce".
//
//  * checked_block_reduce — checksum columns on the distributed HEMM.
//    The column sums of the local partial products are reduced as an extra
//    lane next to the payload; sum-then-reduce must equal reduce-then-sum,
//    so a corrupted element that slipped past the transport checks breaks
//    the per-column invariant:  sum_i (Σ_r P_r)(i,j)  ==  Σ_r sum_i P_r(i,j)
//    (up to a rounding envelope). A mismatch replays the block from the
//    saved partials; because floating rounding makes this lane a heuristic,
//    a *persistent* mismatch is counted (abft.hemm.unresolved) but not
//    fatal — the Fletcher agreement above is the hard guarantee.
//
// Detection is collective-consistent by construction: every verdict the
// ranks branch on is either derived from bitwise-agreed data or exchanged
// through agree(), so replay decisions can never split the team.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "ckpt/checksum.hpp"
#include "comm/reduction.hpp"
#include "common/check.hpp"
#include "common/scalar.hpp"
#include "la/matrix.hpp"
#include "perf/tracker.hpp"

namespace chase::coll {

using la::Index;

/// CHASE_ABFT env knob (default off), shadowed by set_abft/ScopedAbft.
bool abft_enabled();

/// Programmatic override: 1 on, 0 off, -1 back to the environment value.
void set_abft(int on);

class ScopedAbft {
 public:
  explicit ScopedAbft(bool on) { set_abft(on ? 1 : 0); }
  ~ScopedAbft() { set_abft(-1); }
  ScopedAbft(const ScopedAbft&) = delete;
  ScopedAbft& operator=(const ScopedAbft&) = delete;
};

/// Replay budget per protected collective before escalating.
inline constexpr int kAbftMaxReplays = 2;

/// Every element finite (complex: both parts). Integral buffers are always
/// "finite" — the finiteness sentinel only applies to floating payloads.
template <typename T>
bool buffer_finite(const T* data, Index count) {
  if constexpr (kIsComplex<T>) {
    for (Index i = 0; i < count; ++i) {
      if (!std::isfinite(data[i].real()) || !std::isfinite(data[i].imag())) {
        return false;
      }
    }
  } else if constexpr (std::is_floating_point_v<T>) {
    for (Index i = 0; i < count; ++i) {
      if (!std::isfinite(data[i])) return false;
    }
  }
  return true;
}

/// Column-sum checksums of a local block: chk[j] = sum_i m(i, j).
template <typename T>
void column_checksums(la::ConstMatrixView<T> m, std::vector<T>& chk) {
  chk.assign(std::size_t(m.cols()), T(0));
  for (Index j = 0; j < m.cols(); ++j) {
    const T* col = m.col(j);
    T acc(0);
    for (Index i = 0; i < m.rows(); ++i) acc += col[i];
    chk[std::size_t(j)] = acc;
  }
}

/// First column of the reduced block whose column sum disagrees with the
/// independently reduced checksum lane beyond a rounding envelope; -1 if
/// the invariant holds everywhere. NaN on either side counts as a mismatch.
template <typename T>
Index column_mismatch(la::ConstMatrixView<T> reduced,
                      const std::vector<T>& chk) {
  using R = RealType<T>;
  const R eps = std::numeric_limits<R>::epsilon();
  for (Index j = 0; j < reduced.cols(); ++j) {
    const T* col = reduced.col(j);
    T sum(0);
    R absacc(0);
    for (Index i = 0; i < reduced.rows(); ++i) {
      sum += col[i];
      absacc += std::abs(col[i]);
    }
    const R diff = std::abs(sum - chk[std::size_t(j)]);
    // Generous envelope: sum-then-reduce and reduce-then-sum accumulate in
    // different orders, with error growing with the term count.
    const R envelope = eps * (R(100) + R(reduced.rows())) *
                       (absacc + std::abs(chk[std::size_t(j)]) + R(1));
    if (!(diff <= envelope)) return j;  // NaN-safe: !(NaN <= x) is true
  }
  return -1;
}

/// Fletcher-checksummed allreduce: reduce, verify (cross-rank hash
/// agreement + finiteness) over the control plane, replay from the saved
/// input on detection. Falls through to the plain allreduce when ABFT is
/// off or the communicator is trivial.
template <typename Comm, typename T>
void checked_all_reduce(const Comm& comm, T* data, Index count,
                        comm::Reduction op = comm::Reduction::kSum) {
  if (!abft_enabled() || comm.size() <= 1 || count <= 0) {
    comm.all_reduce(data, count, op);
    return;
  }
  thread_local std::vector<T> saved;
  saved.assign(data, data + count);
  const bool input_finite = buffer_finite(saved.data(), count);
  int replays = 0;
  for (;;) {
    comm.all_reduce(data, count, op);
    const std::uint64_t hash =
        ckpt::fletcher64(data, std::size_t(count) * sizeof(T));
    // One agreement word decides for every rank at once: if the packed
    // values are uniform the results are bitwise identical everywhere (so
    // the `suspicious` bit is identical too); if they differ — whether by
    // hash or by verdict — every rank sees non-uniform and replays. Either
    // way the branch below is collective-consistent.
    const bool suspicious = input_finite && !buffer_finite(data, count);
    const std::uint64_t packed = (hash << 1) | (suspicious ? 1u : 0u);
    const bool uniform = comm.agree(packed);
    if (uniform && !suspicious) {
      if (replays > 0) perf::bump_counter("abft.allreduce.repaired");
      return;
    }
    perf::bump_counter("abft.allreduce.detected");
    if (replays >= kAbftMaxReplays) {
      comm.raise_error("abft.allreduce",
                       "allreduce payload corruption persisted after " +
                           std::to_string(replays) + " replays");
    }
    ++replays;
    std::copy(saved.begin(), saved.end(), data);
    perf::bump_counter("abft.allreduce.replay");
  }
}

/// Checksum-column-guarded block reduction for the distributed HEMM.
/// `block` must be contiguous (ld == rows); the payload and its checksum
/// lane go through checked_all_reduce, then the column invariant is
/// verified and, on mismatch, the whole block replays from the saved
/// partials (budgeted; a persistent mismatch is recorded, not fatal).
template <typename Comm, typename T>
void checked_block_reduce(const Comm& comm, la::MatrixView<T> block) {
  CHASE_CHECK_MSG(block.ld() == block.rows(),
                  "abft: block reduction needs a contiguous payload");
  const Index count = block.rows() * block.cols();
  thread_local std::vector<T> saved;
  thread_local std::vector<T> chk;
  saved.assign(block.data(), block.data() + count);
  column_checksums(block.as_const(), chk);
  int replays = 0;
  for (;;) {
    checked_all_reduce(comm, block.data(), count);
    checked_all_reduce(comm, chk.data(), Index(chk.size()));
    // Post-allreduce both lanes are bitwise identical on every rank (hash-
    // verified above), so the mismatch verdict is identical too.
    const Index bad = column_mismatch(block.as_const(), chk);
    if (bad < 0) {
      if (replays > 0) perf::bump_counter("abft.hemm.repaired");
      return;
    }
    perf::bump_counter("abft.hemm.detected");
    if (replays >= kAbftMaxReplays) {
      // Heuristic lane: rounding could conceivably breach the envelope, so
      // persistence is surfaced through counters instead of killing runs.
      perf::bump_counter("abft.hemm.unresolved");
      return;
    }
    ++replays;
    std::copy(saved.begin(), saved.end(), block.data());
    column_checksums(block.as_const(), chk);
    perf::bump_counter("abft.hemm.replay");
  }
}

}  // namespace chase::coll
