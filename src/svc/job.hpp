// Job model of the solver service (src/svc).
//
// A job is one independent Hermitian eigenproblem admitted into the service
// queue: the caller's matrix (borrowed, column-major), a ChaseConfig, and
// scheduling hints (tenant, priority, deadline). Jobs move through a small
// lifecycle (queued -> running -> done/failed, or queued -> cancelled), and
// every admission/lifecycle failure is a typed SvcError — the service never
// reports UB or an untyped crash for a full queue, an unknown id, or an
// invalid problem.
#pragma once

#include <complex>
#include <string>
#include <string_view>

#include "core/config.hpp"
#include "core/types.hpp"

namespace chase::svc {

using la::Index;

/// Job identifier: unique per service instance, never reused.
using JobId = long;

/// Scalar type of a job's problem (the d/z split of the C API).
enum class ScalarTag : int { kDouble = 0, kComplexDouble = 1 };

template <typename T>
constexpr ScalarTag scalar_tag();
template <>
constexpr ScalarTag scalar_tag<double>() { return ScalarTag::kDouble; }
template <>
constexpr ScalarTag scalar_tag<std::complex<double>>() {
  return ScalarTag::kComplexDouble;
}

enum class JobState : int {
  kUnknown = 0,  // no such job
  kQueued,
  kRunning,
  kDone,
  kFailed,     // solver threw; JobInfo::error == kSolveFailed
  kCancelled,  // cancelled while still queued
};

std::string_view job_state_name(JobState s);

/// Typed service errors — admission control and lifecycle misuse reject with
/// one of these instead of blocking, crashing, or silently succeeding.
enum class SvcError : int {
  kNone = 0,
  kQueueFull,       // bounded queue at max_queue_depth; resubmit later
  kInvalidJob,      // malformed problem (null/empty matrix, bad nev/nex/...)
  kShutdown,        // service no longer accepting work
  kUnknownJob,      // id never existed on this service
  kNotCancellable,  // job already dispatched or finished
  kSolveFailed,     // solver raised chase::Error; message in JobInfo
};

std::string_view svc_error_name(SvcError e);

/// Scheduling hints attached at submission.
struct JobOptions {
  /// Tenant the job is charged to for weighted-fair scheduling.
  std::string tenant = "default";
  /// Higher priority dispatches earlier within the tenant.
  int priority = 0;
  /// Soft deadline in seconds from submission; 0 = none. Among equal
  /// priorities, tighter deadlines dispatch first.
  double deadline_seconds = 0;
  /// Per-job observer (matching the job's scalar type); called from the
  /// worker thread running the job.
  core::ChaseObserver<double>* observer_d = nullptr;
  core::ChaseObserver<std::complex<double>>* observer_z = nullptr;
};

/// Admission outcome: a valid id, or a typed rejection.
struct Submission {
  JobId id = -1;
  SvcError error = SvcError::kNone;
  bool ok() const { return error == SvcError::kNone; }
};

/// Snapshot of one job's lifecycle and timing, readable at any time.
struct JobInfo {
  JobState state = JobState::kUnknown;
  SvcError error = SvcError::kNone;
  std::string message;  // solver error text when state == kFailed
  ScalarTag tag = ScalarTag::kDouble;
  std::string tenant;
  Index n = 0;
  Index nev = 0;
  bool converged = false;
  int iterations = 0;
  /// Dispatch order across the whole service (-1 while queued) — the
  /// observable the fairness tests assert on.
  long dispatch_seq = -1;
  /// Number of jobs coalesced into the dispatch this job ran in.
  int batch_width = 0;
  double queue_seconds = 0;  // submit -> dispatch (or terminal state)
  double solve_seconds = 0;  // dispatch -> finish
};

}  // namespace chase::svc
