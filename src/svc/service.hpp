// SolverService — the batched multi-tenant solver-as-a-service layer.
//
// The serving shape is queue -> batcher -> worker pool -> metrics:
//
//   submit()  admission control: typed rejection when the bounded queue is
//             full, the problem is malformed, or the service is shutting
//             down; admitted jobs enter their tenant's pending list ordered
//             by (priority desc, deadline asc, submission order).
//   dispatch  a worker picks the tenant with the least served/weight ratio
//             (weighted fair queuing; ties break on tenant name), takes its
//             head job, and coalesces up to max_batch pending jobs of the
//             same (scalar, n, subspace) bucket — each charged to its own
//             tenant — into one dispatch over one pooled arena.
//   run       the batch runs back-to-back on a warm SolveArena from the
//             ArenaPool: zero steady-state allocation, warm per-thread GEMM
//             pack pools, one workspace setup amortized over the batch.
//             Per-job RNG streams (ChaseConfig::seed) and per-job observers
//             are preserved, so every batched solve is bitwise-equal to its
//             solo core::solve_sequential run — asserted by the svc tests.
//   metrics   one shared thread-safe perf::Tracker: svc.jobs.*, per-tenant
//             svc.tenant.<name>.*, svc.batch.*, svc.pool.*, queue-wait and
//             solve seconds (names in DESIGN.md §12).
//
// Results are returned as shared_ptrs so poll/wait stays cheap and callers
// of different jobs never contend on a copy.
#pragma once

#include <complex>
#include <memory>
#include <string>

#include "la/matrix.hpp"
#include "perf/tracker.hpp"
#include "svc/job.hpp"

namespace chase::svc {

struct ServiceConfig {
  /// Worker threads running solves.
  int workers = 2;
  /// Max jobs coalesced into one same-bucket dispatch (1 = no batching).
  int max_batch = 8;
  /// Bounded queue depth; submissions beyond it reject with kQueueFull.
  long max_queue_depth = 256;
  /// Admit but do not dispatch until resume() — lets tests and benches
  /// build a deterministic backlog.
  bool start_paused = false;
};

class SolverService {
 public:
  explicit SolverService(ServiceConfig cfg = {});
  ~SolverService();  // implies shutdown()

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Admit one eigenproblem. The matrix view is borrowed: it must stay
  /// valid until the job reaches a terminal state. Returns the job id or a
  /// typed rejection (kQueueFull / kInvalidJob / kShutdown).
  Submission submit(la::ConstMatrixView<double> h,
                    const core::ChaseConfig& cfg, JobOptions opts = {});
  Submission submit(la::ConstMatrixView<std::complex<double>> h,
                    const core::ChaseConfig& cfg, JobOptions opts = {});

  /// Current lifecycle state (kUnknown for an id this service never issued).
  JobState poll(JobId id) const;
  /// Full lifecycle snapshot.
  JobInfo info(JobId id) const;
  /// Block until the job reaches a terminal state; returns its final info.
  /// An unknown id returns immediately with state == kUnknown.
  JobInfo wait(JobId id);
  /// Cancel a still-queued job. kNone on success, kUnknownJob /
  /// kNotCancellable otherwise (a dispatched job runs to completion).
  SvcError cancel(JobId id);

  /// Block until no job is pending or running.
  void drain();
  /// Stop/resume dispatching (submissions are still admitted while paused).
  void pause();
  void resume();
  /// Stop admitting, cancel all queued jobs, finish running ones, join the
  /// workers. Idempotent.
  void shutdown();

  /// Weighted-fair share for a tenant (default 1.0; larger = more slots).
  void set_tenant_weight(const std::string& tenant, double weight);

  /// The completed job's result (empty pointer unless state == kDone and T
  /// matches the job's scalar type).
  template <typename T>
  std::shared_ptr<const core::ChaseResult<T>> result(JobId id) const {
    return std::static_pointer_cast<const core::ChaseResult<T>>(
        result_any(id, scalar_tag<T>()));
  }

  /// Value of one service metric counter (see header comment for names).
  double counter(std::string_view name) const;
  /// The shared metrics tracker (thread-safe counter surface).
  perf::Tracker& metrics();

  /// Pool statistics backing the zero-steady-state-allocation gate.
  long pool_entries() const;
  long pool_high_water() const;
  long pool_steady_growth() const;

 private:
  std::shared_ptr<void> result_any(JobId id, ScalarTag tag) const;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace chase::svc
