#include "svc/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/chase.hpp"
#include "svc/pool.hpp"

namespace chase::svc {

std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kUnknown:
    default:
      return "unknown";
  }
}

std::string_view svc_error_name(SvcError e) {
  switch (e) {
    case SvcError::kNone:
      return "none";
    case SvcError::kQueueFull:
      return "queue_full";
    case SvcError::kInvalidJob:
      return "invalid_job";
    case SvcError::kShutdown:
      return "shutdown";
    case SvcError::kUnknownJob:
      return "unknown_job";
    case SvcError::kNotCancellable:
      return "not_cancellable";
    case SvcError::kSolveFailed:
    default:
      return "solve_failed";
  }
}

namespace {

struct JobRecord {
  JobId id = -1;
  ScalarTag tag = ScalarTag::kDouble;
  const void* h = nullptr;  // caller-owned column-major storage
  Index n = 0;
  Index ld = 0;
  Index ne = 0;  // cfg.subspace(): part of the batching bucket key
  core::ChaseConfig cfg;
  JobOptions opts;
  std::uint64_t seq = 0;  // admission order, the final scheduling tiebreak
  JobState state = JobState::kQueued;
  SvcError error = SvcError::kNone;
  std::string message;
  bool converged = false;
  int iterations = 0;
  long dispatch_seq = -1;
  int batch_width = 0;
  double submit_s = 0;
  double dispatch_s = 0;
  double finish_s = 0;
  std::shared_ptr<void> result;  // ChaseResult<T> for the record's tag
};

struct TenantState {
  double weight = 1.0;
  double served = 0;  // jobs dispatched, the fair-share numerator
  std::deque<JobRecord*> pending;  // kept in sched_before order
};

/// Within-tenant dispatch order: priority desc, then deadline asc (absolute,
/// no deadline = infinitely late), then admission order.
bool sched_before(const JobRecord& a, const JobRecord& b) {
  if (a.opts.priority != b.opts.priority) {
    return a.opts.priority > b.opts.priority;
  }
  const double inf = std::numeric_limits<double>::infinity();
  const double da =
      a.opts.deadline_seconds > 0 ? a.submit_s + a.opts.deadline_seconds : inf;
  const double db =
      b.opts.deadline_seconds > 0 ? b.submit_s + b.opts.deadline_seconds : inf;
  if (da != db) return da < db;
  return a.seq < b.seq;
}

bool same_bucket(const JobRecord& a, const JobRecord& b) {
  return a.tag == b.tag && a.n == b.n && a.ne == b.ne;
}

bool terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

template <typename T>
core::ChaseObserver<T>* observer_for(const JobOptions& opts);
template <>
core::ChaseObserver<double>* observer_for<double>(const JobOptions& opts) {
  return opts.observer_d;
}
template <>
core::ChaseObserver<std::complex<double>>*
observer_for<std::complex<double>>(const JobOptions& opts) {
  return opts.observer_z;
}

}  // namespace

struct SolverService::Impl {
  explicit Impl(ServiceConfig c) : cfg(c) {
    cfg.workers = std::max(1, cfg.workers);
    cfg.max_batch = std::max(1, cfg.max_batch);
    cfg.max_queue_depth = std::max<long>(1, cfg.max_queue_depth);
    paused = cfg.start_paused;
    workers.reserve(std::size_t(cfg.workers));
    for (int i = 0; i < cfg.workers; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  // ---- state (guarded by mu unless noted) ----
  ServiceConfig cfg;
  WallTimer epoch;            // service-relative clock, immutable
  perf::Tracker metrics;      // internally thread-safe counter surface
  ArenaPool pool;             // internally locked
  mutable std::mutex mu;
  std::condition_variable work_cv;  // workers: work available / stopping
  std::condition_variable done_cv;  // waiters: a job reached terminal state
  bool accepting = true;
  bool paused = false;
  bool stopping = false;
  JobId next_id = 1;
  std::uint64_t next_seq = 1;
  long next_dispatch = 0;
  long pending_count = 0;
  int running = 0;
  std::map<JobId, std::unique_ptr<JobRecord>> jobs;
  std::map<std::string, TenantState> tenants;
  std::vector<std::thread> workers;

  void tenant_bump(const std::string& tenant, const char* what,
                   double amount = 1.0) {
    metrics.bump(std::string("svc.tenant.") + tenant + "." + what, amount);
  }

  Submission admit(ScalarTag tag, const void* h, Index n, Index ld,
                   const core::ChaseConfig& jcfg, JobOptions opts) {
    if (h == nullptr || n <= 0 || ld < n || jcfg.nev <= 0 ||
        jcfg.subspace() > n || jcfg.initial_degree < 2) {
      metrics.bump("svc.jobs.rejected");
      metrics.bump("svc.jobs.rejected.invalid");
      return {-1, SvcError::kInvalidJob};
    }
    std::unique_lock<std::mutex> lock(mu);
    if (!accepting) {
      metrics.bump("svc.jobs.rejected");
      metrics.bump("svc.jobs.rejected.shutdown");
      return {-1, SvcError::kShutdown};
    }
    if (pending_count >= cfg.max_queue_depth) {
      metrics.bump("svc.jobs.rejected");
      metrics.bump("svc.jobs.rejected.queue_full");
      tenant_bump(opts.tenant, "rejected");
      return {-1, SvcError::kQueueFull};
    }
    auto rec = std::make_unique<JobRecord>();
    rec->id = next_id++;
    rec->tag = tag;
    rec->h = h;
    rec->n = n;
    rec->ld = ld;
    rec->ne = jcfg.subspace();
    rec->cfg = jcfg;
    rec->opts = std::move(opts);
    rec->seq = next_seq++;
    rec->submit_s = epoch.seconds();
    JobRecord* raw = rec.get();
    TenantState& tenant = tenants[raw->opts.tenant];
    auto pos = std::upper_bound(
        tenant.pending.begin(), tenant.pending.end(), raw,
        [](const JobRecord* a, const JobRecord* b) {
          return sched_before(*a, *b);
        });
    tenant.pending.insert(pos, raw);
    ++pending_count;
    jobs.emplace(raw->id, std::move(rec));
    metrics.bump("svc.jobs.admitted");
    tenant_bump(raw->opts.tenant, "admitted");
    lock.unlock();
    work_cv.notify_one();
    return {raw->id, SvcError::kNone};
  }

  /// Weighted-fair head pick + same-bucket batch fill. mu held,
  /// pending_count > 0 on entry.
  std::vector<JobRecord*> pick_batch() {
    TenantState* best = nullptr;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (auto& [name, tenant] : tenants) {  // map order = name tiebreak
      if (tenant.pending.empty()) continue;
      const double ratio = tenant.served / std::max(tenant.weight, 1e-9);
      if (best == nullptr || ratio < best_ratio) {
        best = &tenant;
        best_ratio = ratio;
      }
    }
    std::vector<JobRecord*> batch;
    JobRecord* head = best->pending.front();
    best->pending.pop_front();
    batch.push_back(head);
    if (cfg.max_batch > 1) {
      // Same-bucket fill across every tenant, in global scheduling order.
      std::vector<std::pair<std::string, JobRecord*>> candidates;
      for (auto& [name, tenant] : tenants) {
        for (JobRecord* job : tenant.pending) {
          if (same_bucket(*job, *head)) candidates.emplace_back(name, job);
        }
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) {
                  return sched_before(*a.second, *b.second);
                });
      for (auto& [name, job] : candidates) {
        if (int(batch.size()) >= cfg.max_batch) break;
        auto& pending = tenants[name].pending;
        pending.erase(std::find(pending.begin(), pending.end(), job));
        batch.push_back(job);
      }
    }
    const double now = epoch.seconds();
    for (JobRecord* job : batch) {
      tenants[job->opts.tenant].served += 1;
      job->state = JobState::kRunning;
      job->dispatch_seq = next_dispatch++;
      job->batch_width = int(batch.size());
      job->dispatch_s = now;
      metrics.bump("svc.queue.wait_seconds", now - job->submit_s);
    }
    pending_count -= long(batch.size());
    running += int(batch.size());
    metrics.bump("svc.batch.count");
    metrics.bump("svc.batch.jobs", double(batch.size()));
    return batch;
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      work_cv.wait(lock, [this] {
        return stopping || (!paused && pending_count > 0);
      });
      if (stopping) return;
      std::vector<JobRecord*> batch = pick_batch();
      lock.unlock();
      if (batch.front()->tag == ScalarTag::kDouble) {
        run_batch<double>(batch);
      } else {
        run_batch<std::complex<double>>(batch);
      }
      lock.lock();
      running -= int(batch.size());
      done_cv.notify_all();
    }
  }

  /// Run a same-bucket batch back-to-back over one pooled arena. Per-job
  /// config (RNG seed included) and observer keep each solve bitwise-equal
  /// to its solo run; the shared arena is value-cleared between jobs.
  template <typename T>
  void run_batch(std::vector<JobRecord*>& batch) {
    perf::Tracker local;  // collect the solver's counters off the hot path
    perf::Tracker* prev = perf::thread_tracker();
    perf::set_thread_tracker(&local);
    const Index n = batch.front()->n;
    const Index ne = batch.front()->ne;
    auto arena = pool.typed<T>().acquire(n, ne, &metrics);
    for (JobRecord* job : batch) {
      auto result = std::make_shared<core::ChaseResult<T>>();
      SvcError error = SvcError::kNone;
      std::string message;
      try {
        arena->ws.clear_values();
        la::ConstMatrixView<T> hv(static_cast<const T*>(job->h), job->n,
                                  job->n, job->ld);
        arena->h.fill_from_global(hv);
        *result = core::solve(arena->h, job->cfg, observer_for<T>(job->opts),
                              la::ConstMatrixView<T>{}, {}, &arena->ws);
      } catch (const Error& e) {
        error = SvcError::kSolveFailed;
        message = e.what();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        job->state =
            error == SvcError::kNone ? JobState::kDone : JobState::kFailed;
        job->error = error;
        job->message = std::move(message);
        job->converged = result->converged;
        job->iterations = result->iterations;
        job->finish_s = epoch.seconds();
        job->result = std::move(result);
        metrics.bump("svc.solve.seconds", job->finish_s - job->dispatch_s);
        if (error == SvcError::kNone) {
          metrics.bump("svc.jobs.completed");
          tenant_bump(job->opts.tenant, "completed");
        } else {
          metrics.bump("svc.jobs.failed");
          tenant_bump(job->opts.tenant, "failed");
        }
      }
      done_cv.notify_all();
    }
    pool.typed<T>().release(std::move(arena), &metrics);
    perf::set_thread_tracker(prev);
    for (const auto& [name, value] : local.counters()) {
      metrics.bump(name, value);
    }
  }

  JobInfo info_locked(JobId id) const {  // mu held
    JobInfo out;
    const auto it = jobs.find(id);
    if (it == jobs.end()) {
      out.error = SvcError::kUnknownJob;
      return out;
    }
    const JobRecord& job = *it->second;
    const double now = epoch.seconds();
    out.state = job.state;
    out.error = job.error;
    out.message = job.message;
    out.tag = job.tag;
    out.tenant = job.opts.tenant;
    out.n = job.n;
    out.nev = job.cfg.nev;
    out.converged = job.converged;
    out.iterations = job.iterations;
    out.dispatch_seq = job.dispatch_seq;
    out.batch_width = job.batch_width;
    switch (job.state) {
      case JobState::kQueued:
        out.queue_seconds = now - job.submit_s;
        break;
      case JobState::kRunning:
        out.queue_seconds = job.dispatch_s - job.submit_s;
        out.solve_seconds = now - job.dispatch_s;
        break;
      case JobState::kCancelled:
        out.queue_seconds = job.finish_s - job.submit_s;
        break;
      default:
        out.queue_seconds = job.dispatch_s - job.submit_s;
        out.solve_seconds = job.finish_s - job.dispatch_s;
        break;
    }
    return out;
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (stopping) return;
      accepting = false;
      for (auto& [name, tenant] : tenants) {
        for (JobRecord* job : tenant.pending) {
          job->state = JobState::kCancelled;
          job->error = SvcError::kShutdown;
          job->finish_s = epoch.seconds();
          metrics.bump("svc.jobs.cancelled");
          tenant_bump(job->opts.tenant, "cancelled");
        }
        tenant.pending.clear();
      }
      pending_count = 0;
      stopping = true;
    }
    work_cv.notify_all();
    for (std::thread& worker : workers) worker.join();
    workers.clear();
    done_cv.notify_all();
  }
};

SolverService::SolverService(ServiceConfig cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

SolverService::~SolverService() { impl_->shutdown(); }

Submission SolverService::submit(la::ConstMatrixView<double> h,
                                 const core::ChaseConfig& cfg,
                                 JobOptions opts) {
  if (h.rows() != h.cols()) return {-1, SvcError::kInvalidJob};
  return impl_->admit(ScalarTag::kDouble, h.data(), h.rows(), h.ld(), cfg,
                      std::move(opts));
}

Submission SolverService::submit(la::ConstMatrixView<std::complex<double>> h,
                                 const core::ChaseConfig& cfg,
                                 JobOptions opts) {
  if (h.rows() != h.cols()) return {-1, SvcError::kInvalidJob};
  return impl_->admit(ScalarTag::kComplexDouble, h.data(), h.rows(), h.ld(),
                      cfg, std::move(opts));
}

JobState SolverService::poll(JobId id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  return it == impl_->jobs.end() ? JobState::kUnknown : it->second->state;
}

JobInfo SolverService::info(JobId id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->info_locked(id);
}

JobInfo SolverService::wait(JobId id) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->done_cv.wait(lock, [this, id] {
    const auto it = impl_->jobs.find(id);
    return it == impl_->jobs.end() || terminal(it->second->state);
  });
  return impl_->info_locked(id);
}

SvcError SolverService::cancel(JobId id) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return SvcError::kUnknownJob;
  JobRecord& job = *it->second;
  if (job.state != JobState::kQueued) return SvcError::kNotCancellable;
  auto& pending = impl_->tenants[job.opts.tenant].pending;
  pending.erase(std::find(pending.begin(), pending.end(), &job));
  --impl_->pending_count;
  job.state = JobState::kCancelled;
  job.finish_s = impl_->epoch.seconds();
  impl_->metrics.bump("svc.jobs.cancelled");
  impl_->tenant_bump(job.opts.tenant, "cancelled");
  lock.unlock();
  impl_->done_cv.notify_all();
  return SvcError::kNone;
}

void SolverService::drain() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->done_cv.wait(lock, [this] {
    return impl_->pending_count == 0 && impl_->running == 0;
  });
}

void SolverService::pause() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->paused = true;
}

void SolverService::resume() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->paused = false;
  }
  impl_->work_cv.notify_all();
}

void SolverService::shutdown() { impl_->shutdown(); }

void SolverService::set_tenant_weight(const std::string& tenant,
                                      double weight) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->tenants[tenant].weight = std::max(weight, 1e-9);
}

double SolverService::counter(std::string_view name) const {
  return impl_->metrics.counter(name);
}

perf::Tracker& SolverService::metrics() { return impl_->metrics; }

long SolverService::pool_entries() const { return impl_->pool.entries(); }
long SolverService::pool_high_water() const {
  return impl_->pool.high_water();
}
long SolverService::pool_steady_growth() const {
  return impl_->pool.steady_growth();
}

std::shared_ptr<void> SolverService::result_any(JobId id,
                                                ScalarTag tag) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return nullptr;
  const JobRecord& job = *it->second;
  if (job.tag != tag || job.state != JobState::kDone) return nullptr;
  return job.result;
}

}  // namespace chase::svc
