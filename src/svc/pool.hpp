// Size-bucketed solve-arena pool.
//
// Every job the service runs needs the same per-solve state the sequential
// driver builds from scratch: a self communicator, a 1x1 grid, the
// distributed operator storage, and the SolverWorkspace arena. A SolveArena
// bundles all of it; the pool keys arenas by (n, subspace) bucket and hands
// warm arenas back out, so after the first job of each bucket the fleet runs
// at zero steady-state allocation — the PR-4 per-solve contract lifted to
// the whole service.
//
// Reuse is value-safe by construction: DistHermitianMatrix::fill_from_global
// rewrites the operator and resets its diagonal-shift state, and
// SolverWorkspace::clear_values returns the arena to the exact state a
// freshly sized arena has (resize value-initializes), so a solve over a
// pooled arena is bitwise-equal to a solo solve. The pool verifies the
// zero-allocation claim with a per-arena watermark over
// SolverWorkspace::alloc_events(): any growth on a warm arena lands in the
// "svc.pool.steady_arena_growth" counter the bench gate asserts is zero.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "core/engine/workspace.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/index_map.hpp"
#include "perf/tracker.hpp"

namespace chase::svc {

/// Everything one worker needs to run jobs of one (n, ne) bucket: the
/// degenerate single-rank runtime, the operator storage, and the workspace
/// arena. Sized lazily by the first solve; warm thereafter.
template <typename T>
struct SolveArena {
  comm::Communicator self;  // default = self communicator (1x1 grid)
  comm::Grid2d grid;
  dist::DistHermitianMatrix<T> h;
  core::engine::SolverWorkspace<T> ws;
  la::Index n = 0;
  la::Index ne = 0;
  long alloc_watermark = 0;  // ws.alloc_events() at last release
  bool warm = false;         // has completed at least one job

  SolveArena(la::Index n_in, la::Index ne_in)
      : grid(self, 1, 1),
        h(grid, dist::IndexMap::block(n_in, 1), dist::IndexMap::block(n_in, 1)),
        n(n_in),
        ne(ne_in) {}
};

/// Free-list pool for one scalar type, keyed by (n, ne). `metrics` (the
/// service's shared tracker) receives the pool counters:
///   svc.pool.hits / svc.pool.misses   — acquire outcomes
///   svc.pool.entries                  — arenas ever created
///   svc.pool.high_water               — peak arenas alive at once
///   svc.pool.steady_arena_growth      — alloc events on warm arenas (bug!)
template <typename T>
class TypedArenaPool {
 public:
  std::unique_ptr<SolveArena<T>> acquire(la::Index n, la::Index ne,
                                         perf::Tracker* metrics) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = free_.find({n, ne});
      if (it != free_.end() && !it->second.empty()) {
        auto arena = std::move(it->second.back());
        it->second.pop_back();
        ++in_use_;
        if (metrics != nullptr) metrics->bump("svc.pool.hits");
        return arena;
      }
      ++entries_;
      ++in_use_;
      if (in_use_ + live_free() > high_water_) {
        high_water_ = in_use_ + live_free();
      }
    }
    if (metrics != nullptr) {
      metrics->bump("svc.pool.misses");
      metrics->bump("svc.pool.entries");
    }
    return std::make_unique<SolveArena<T>>(n, ne);
  }

  void release(std::unique_ptr<SolveArena<T>> arena, perf::Tracker* metrics) {
    const long events = arena->ws.alloc_events();
    long growth = 0;
    if (arena->warm) growth = events - arena->alloc_watermark;
    arena->alloc_watermark = events;
    arena->warm = true;
    if (metrics != nullptr && growth != 0) {
      metrics->bump("svc.pool.steady_arena_growth", double(growth));
    }
    std::lock_guard<std::mutex> lock(mu_);
    steady_growth_ += growth;
    --in_use_;
    free_[{arena->n, arena->ne}].push_back(std::move(arena));
  }

  long entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }
  long high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }
  /// Total alloc events observed on warm (already-used) arenas; the
  /// fleet-wide zero-steady-state-allocation invariant is this == 0.
  long steady_growth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return steady_growth_;
  }

 private:
  long live_free() const {  // mu_ held
    long count = 0;
    for (const auto& [key, list] : free_) count += long(list.size());
    return count;
  }

  mutable std::mutex mu_;
  std::map<std::pair<la::Index, la::Index>,
           std::vector<std::unique_ptr<SolveArena<T>>>>
      free_;
  long entries_ = 0;
  long in_use_ = 0;
  long high_water_ = 0;
  long steady_growth_ = 0;
};

/// The service-wide pool: one TypedArenaPool per scalar type.
class ArenaPool {
 public:
  template <typename T>
  TypedArenaPool<T>& typed();

  long entries() const { return d_.entries() + z_.entries(); }
  long high_water() const { return d_.high_water() + z_.high_water(); }
  long steady_growth() const { return d_.steady_growth() + z_.steady_growth(); }

 private:
  TypedArenaPool<double> d_;
  TypedArenaPool<std::complex<double>> z_;
};

template <>
inline TypedArenaPool<double>& ArenaPool::typed<double>() { return d_; }
template <>
inline TypedArenaPool<std::complex<double>>&
ArenaPool::typed<std::complex<double>>() { return z_; }

}  // namespace chase::svc
