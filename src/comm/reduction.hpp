// Elementwise reduction operators shared by the naive publish-and-sync
// collectives (comm/communicator.hpp) and the algorithmic engine (src/coll).
//
// Every collective in this codebase promises a *deterministic* reduction
// order — contributions are folded in rank order 0..P-1 — so the algorithmic
// paths can be validated bitwise against the naive reference. reduce_assign
// is the single accumulation primitive both share.
#pragma once

#include <algorithm>

#include "common/check.hpp"
#include "common/scalar.hpp"

namespace chase::comm {

enum class Reduction { kSum, kMax, kMin };

namespace detail {

template <typename T>
void reduce_assign(Reduction op, T& acc, const T& x) {
  switch (op) {
    case Reduction::kSum:
      acc += x;
      break;
    case Reduction::kMax:
      if constexpr (kIsComplex<T>) {
        CHASE_CHECK_MSG(false, "max reduction on complex type");
      } else {
        acc = std::max(acc, x);
      }
      break;
    case Reduction::kMin:
      if constexpr (kIsComplex<T>) {
        CHASE_CHECK_MSG(false, "min reduction on complex type");
      } else {
        acc = std::min(acc, x);
      }
      break;
  }
}

}  // namespace detail

}  // namespace chase::comm
