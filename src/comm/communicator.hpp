// In-process SPMD runtime standing in for MPI + NCCL.
//
// A Team launches one thread per rank and hands each a Communicator whose
// collectives have MPI semantics: all_reduce (elementwise reduction,
// deterministic order, identical result on every rank), broadcast,
// all_gather(_v), barrier and split. The distributed ChASE drivers are
// written exactly as the MPI/NCCL code of the paper would be; the only
// difference is that the transport is shared memory.
//
// The Backend tag reproduces the paper's three communication variants:
//  - kHostMpi: buffers live on the host, plain MPI collectives
//    (the CPU build of ChASE);
//  - kStdGpu: ChASE(STD) — buffers live on the device, so every collective
//    pays an explicit device-to-host staging copy, an MPI collective, and a
//    host-to-device copy back (Section 3.3);
//  - kNcclGpu: ChASE(NCCL) — device-direct collectives, no staging.
// The data path is identical for all three; the difference is recorded in
// the thread-local perf::Tracker (staging MemcpyEvents + which collective
// cost model applies), which is what the Figure 2/3 benches consume.
#pragma once

#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "la/matrix.hpp"
#include "perf/backend.hpp"
#include "perf/tracker.hpp"

namespace chase::comm {

using la::Index;
using perf::Backend;
using perf::backend_name;

enum class Reduction { kSum, kMax, kMin };

namespace detail {

/// Shared state of one communicator: a barrier plus per-rank publication
/// slots used by the collectives.
struct CommState {
  explicit CommState(int size);

  int size;
  std::barrier<> barrier;

  struct Slot {
    const void* ptr = nullptr;
    std::size_t bytes = 0;
    int tag = 0;  // collective kind + dtype, for SPMD-mismatch detection
  };
  std::vector<Slot> slots;

  // split() coordination.
  std::vector<std::pair<int, int>> split_requests;  // (color, key) per rank
  std::map<int, std::shared_ptr<CommState>> split_children;
  std::mutex split_mutex;
};

}  // namespace detail

class Communicator {
 public:
  Communicator() = default;

  int rank() const { return rank_; }
  int size() const { return state_ ? state_->size : 1; }
  Backend backend() const { return backend_; }

  void barrier() const;

  /// In-place elementwise reduction; every rank ends with the identical
  /// result, accumulated in rank order (deterministic, like a fixed-topology
  /// MPI_Allreduce).
  template <typename T>
  void all_reduce(T* data, Index count, Reduction op = Reduction::kSum) const;

  /// Root's buffer is copied to every rank.
  template <typename T>
  void broadcast(T* data, Index count, int root) const;

  /// Equal-count allgather: recv must hold size()*count elements; rank r's
  /// contribution lands at offset r*count.
  template <typename T>
  void all_gather(const T* send, Index count, T* recv) const;

  /// Variable-count allgather with explicit receive offsets.
  template <typename T>
  void all_gather_v(const T* send, Index count, T* recv,
                    const std::vector<Index>& counts,
                    const std::vector<Index>& displs) const;

  /// Collective: partitions ranks by color; ranks sharing a color form a new
  /// communicator ordered by (key, old rank). Every rank must call.
  Communicator split(int color, int key) const;

 private:
  friend class Team;
  Communicator(std::shared_ptr<detail::CommState> state, int rank,
               Backend backend)
      : state_(std::move(state)), rank_(rank), backend_(backend) {}

  void publish_and_sync(const void* ptr, std::size_t bytes, int tag) const;
  const void* peer_ptr(int r) const { return state_->slots[std::size_t(r)].ptr; }

  // Perf accounting around a collective body, including the STD backend's
  // staging copies (Section 3.3): D2H before, H2D after.
  void account_begin() const;
  void account_end(perf::CollKind kind, std::size_t bytes) const;

  std::shared_ptr<detail::CommState> state_;
  int rank_ = 0;
  Backend backend_ = Backend::kHostMpi;
};

/// SPMD launcher: runs fn(comm) on `nranks` threads, each with its own
/// world Communicator. Rethrows the first rank exception after all threads
/// joined (ranks must not throw between matching collectives; see check.hpp).
class Team {
 public:
  explicit Team(int nranks, Backend backend = Backend::kHostMpi);

  int size() const { return nranks_; }
  Backend backend() const { return backend_; }

  /// Runs the SPMD region. If `trackers` is non-null it must have nranks
  /// entries; tracker[r] is installed thread-locally on rank r.
  void run(const std::function<void(Communicator&)>& fn,
           std::vector<perf::Tracker>* trackers = nullptr);

 private:
  int nranks_;
  Backend backend_;
};

/// 2D process grid with row and column communicators (Section 2.2): ranks
/// are laid out row-major, the column communicator links ranks with the same
/// grid column (it distributes C), the row communicator links ranks with the
/// same grid row (it distributes B).
class Grid2d {
 public:
  Grid2d(const Communicator& world, int nprow, int npcol);

  int nprow() const { return nprow_; }
  int npcol() const { return npcol_; }
  int my_row() const { return my_row_; }
  int my_col() const { return my_col_; }

  const Communicator& world() const { return world_; }
  /// Ranks with the same grid column; my rank inside it equals my_row().
  const Communicator& col_comm() const { return col_; }
  /// Ranks with the same grid row; my rank inside it equals my_col().
  const Communicator& row_comm() const { return row_; }

  /// Factor `p` into the most square nprow x npcol grid with nprow <= npcol.
  static std::pair<int, int> nearly_square(int p);

 private:
  Communicator world_;
  Communicator row_;
  Communicator col_;
  int nprow_;
  int npcol_;
  int my_row_;
  int my_col_;
};

// ---- template implementations ----

namespace detail {

template <typename T>
void reduce_assign(Reduction op, T& acc, const T& x) {
  switch (op) {
    case Reduction::kSum:
      acc += x;
      break;
    case Reduction::kMax:
      if constexpr (kIsComplex<T>) {
        CHASE_ABORT_IF(true, "max reduction on complex type");
      } else {
        acc = std::max(acc, x);
      }
      break;
    case Reduction::kMin:
      if constexpr (kIsComplex<T>) {
        CHASE_ABORT_IF(true, "min reduction on complex type");
      } else {
        acc = std::min(acc, x);
      }
      break;
  }
}

}  // namespace detail

template <typename T>
void Communicator::all_reduce(T* data, Index count, Reduction op) const {
  if (size() == 1) return;
  account_begin();
  const std::size_t bytes = std::size_t(count) * sizeof(T);
  publish_and_sync(data, bytes, 100 + int(op));
  std::vector<T> acc(static_cast<std::size_t>(count));
  std::copy_n(static_cast<const T*>(peer_ptr(0)), count, acc.data());
  for (int r = 1; r < size(); ++r) {
    const T* src = static_cast<const T*>(peer_ptr(r));
    for (Index i = 0; i < count; ++i) {
      detail::reduce_assign(op, acc[std::size_t(i)], src[i]);
    }
  }
  state_->barrier.arrive_and_wait();  // all ranks done reading
  std::copy_n(acc.data(), count, data);
  account_end(perf::CollKind::kAllReduce, bytes);
}

template <typename T>
void Communicator::broadcast(T* data, Index count, int root) const {
  if (size() == 1) return;
  CHASE_ABORT_IF(root < 0 || root >= size(), "broadcast root out of range");
  account_begin();
  const std::size_t bytes = std::size_t(count) * sizeof(T);
  publish_and_sync(data, bytes, 200 + root);
  if (rank_ != root) {
    std::copy_n(static_cast<const T*>(peer_ptr(root)), count, data);
  }
  state_->barrier.arrive_and_wait();  // root's buffer free again
  account_end(perf::CollKind::kBroadcast, bytes);
}

template <typename T>
void Communicator::all_gather(const T* send, Index count, T* recv) const {
  account_begin();
  const std::size_t bytes = std::size_t(count) * sizeof(T);
  if (size() == 1) {
    std::copy_n(send, count, recv);
  } else {
    publish_and_sync(send, bytes, 300);
    for (int r = 0; r < size(); ++r) {
      std::copy_n(static_cast<const T*>(peer_ptr(r)), count,
                  recv + Index(r) * count);
    }
    state_->barrier.arrive_and_wait();
  }
  account_end(perf::CollKind::kAllGather, bytes);
}

template <typename T>
void Communicator::all_gather_v(const T* send, Index count, T* recv,
                                const std::vector<Index>& counts,
                                const std::vector<Index>& displs) const {
  CHASE_ABORT_IF(int(counts.size()) != size() || int(displs.size()) != size(),
                 "all_gather_v: counts/displs size mismatch");
  CHASE_ABORT_IF(counts[std::size_t(rank_)] != count,
                 "all_gather_v: local count disagrees with counts[rank]");
  account_begin();
  const std::size_t bytes = std::size_t(count) * sizeof(T);
  if (size() == 1) {
    std::copy_n(send, count, recv + displs[0]);
  } else {
    publish_and_sync(send, bytes, 400);
    for (int r = 0; r < size(); ++r) {
      std::copy_n(static_cast<const T*>(peer_ptr(r)), counts[std::size_t(r)],
                  recv + displs[std::size_t(r)]);
    }
    state_->barrier.arrive_and_wait();
  }
  account_end(perf::CollKind::kAllGather, bytes);
}

}  // namespace chase::comm
