// In-process SPMD runtime standing in for MPI + NCCL.
//
// A Team launches one thread per rank and hands each a Communicator whose
// collectives have MPI semantics: all_reduce (elementwise reduction,
// deterministic order, identical result on every rank), broadcast,
// all_gather(_v), barrier and split. The distributed ChASE drivers are
// written exactly as the MPI/NCCL code of the paper would be; the only
// difference is that the transport is shared memory.
//
// Two transports back the collectives:
//  - the naive publish-and-sync path (one barrier-bracketed shared-memory
//    copy), standing in for a single-shot MPI collective;
//  - the algorithmic engine of src/coll (ring / Rabenseifner / bruck /
//    binomial over chunked point-to-point channels, see chunk_channel.hpp),
//    standing in for NCCL's pipelined algorithms. The CHASE_COLL_ALGO policy
//    (coll/engine.hpp) picks per call; every algorithm is bitwise-identical
//    to the naive reference. Nonblocking i_all_reduce / i_all_gather return
//    a coll::CollRequest so callers can overlap communication with compute.
//
// The Backend tag reproduces the paper's three communication variants:
//  - kHostMpi: buffers live on the host, plain MPI collectives
//    (the CPU build of ChASE);
//  - kStdGpu: ChASE(STD) — buffers live on the device, so every collective
//    pays an explicit device-to-host staging copy, an MPI collective, and a
//    host-to-device copy back (Section 3.3);
//  - kNcclGpu: ChASE(NCCL) — device-direct collectives, no staging.
// The data path is identical for all three; the difference is recorded in
// the thread-local perf::Tracker (staging MemcpyEvents + which collective
// cost model applies), which is what the Figure 2/3 benches consume.
//
// Fault tolerance (rank_error.hpp): every synchronization point is a
// "poisoned barrier" — when one rank records a RankError, all siblings
// unblock at their next barrier arrival and raise TeamAborted instead of
// waiting forever, and barrier waits carry a watchdog timeout that detects
// ranks dying outside any collective. The chunk channels follow the same
// protocol (blocking receives watch the poison flag and diagnose a missing
// sender as "p2p.watchdog"). Team::run rethrows the originating rank's
// error after join, so an invariant violation inside an SPMD region may now
// simply throw (see check.hpp) instead of aborting the process.
#pragma once

#define CHASE_COMM_COMMUNICATOR_INCLUDED 1

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "coll/request.hpp"
#include "comm/chunk_channel.hpp"
#include "comm/rank_error.hpp"
#include "comm/reduction.hpp"
#include "common/check.hpp"
#include "common/faultinject.hpp"
#include "common/scalar.hpp"
#include "la/matrix.hpp"
#include "perf/backend.hpp"
#include "perf/cost_model.hpp"
#include "perf/tracker.hpp"

namespace chase::comm {

using la::Index;
using perf::Backend;
using perf::backend_name;

namespace detail {

struct HierGroup;  // grouped sub-communicators; defined after Communicator

/// Shared state of one communicator: a poisonable barrier, per-rank
/// publication slots used by the naive collectives, and per-rank chunk
/// mailboxes used by the src/coll algorithms. All CommStates of one team
/// (world + split children) share the team's ErrorState.
struct CommState {
  CommState(int size, std::shared_ptr<ErrorState> errors);
  ~CommState();

  int size;
  std::shared_ptr<ErrorState> errors;

  // Poisoned barrier: a classic generation-counting barrier whose waits also
  // watch the team's poison flag and a watchdog deadline (std::barrier has
  // neither an interruptible nor a timed wait, which is exactly what made
  // rank failure fatal before).
  std::mutex bar_mutex;
  std::condition_variable bar_cv;
  int bar_arrived = 0;
  std::uint64_t bar_generation = 0;

  /// Arrive and wait for the team. Throws TeamAborted if the team is (or
  /// becomes) poisoned; records a barrier.watchdog error and throws if
  /// siblings fail to arrive within the watchdog timeout.
  void barrier_wait(int rank);

  /// Quiescing variant for the *final* sync of a publish/read collective:
  /// siblings may still be reading this rank's published buffer, so poison
  /// must not release the wait early — unwinding here frees memory a reader
  /// is touching (the tsan-visible use-after-free of an aborting team). Once
  /// the publish barrier has completed, every participant finishes its
  /// bounded read phase and arrives here without throwing (no fault sites or
  /// nested collectives in between), so waiting out the generation is
  /// deadlock-free; poison is re-checked and raised only *after* it
  /// completes. The watchdog stays as the last-resort escape if that
  /// invariant is ever violated.
  void quiesce_wait(int rank);

  struct Slot {
    const void* ptr = nullptr;
    std::size_t bytes = 0;
    int tag = 0;  // collective kind + dtype, for SPMD-mismatch detection
  };
  std::vector<Slot> slots;

  // Point-to-point transport of the src/coll algorithms: one inbox per rank
  // (unique_ptr — Mailbox owns a mutex/cv and must not move), plus a
  // per-rank sequence counter that keeps chunk tags of consecutive
  // collectives distinct (channels are not drained between collectives).
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::vector<std::uint64_t> coll_seq;

  // split() coordination. Children are keyed by (generation, color): the
  // generation is bumped once per collective split() call, so a later
  // split() on the same parent with the same color can never observe or
  // hand back a child state from an earlier call (rank 0 prunes older
  // generations when it populates the new one).
  std::vector<std::pair<int, int>> split_requests;  // (color, key) per rank
  std::uint64_t split_generation = 0;
  std::map<std::pair<std::uint64_t, int>, std::shared_ptr<CommState>>
      split_children;

  // Two-level topology of this communicator (comm/topology.hpp): the node
  // id per rank (empty: flat), the emulated cross-node link class, and the
  // collapsed shape the collective engine's selector consumes. Team::run
  // seeds the world state from the process topology; split() children
  // inherit their members' assignments. Written only inside the split/run
  // barrier windows, read-only afterwards.
  std::vector<int> node_of;
  double inter_bw = 0;
  double inter_latency = 0;
  perf::TopoInfo topo;
  void set_nodes(std::vector<int> nodes, double bw, double latency);

  // Lazily built grouped sub-communicators (intra-node team + leader team)
  // for the hierarchical routines: one slot per rank, each rank builds and
  // reads only its own (Communicator::hier_group, a collective).
  std::vector<std::shared_ptr<HierGroup>> hier_groups;
};

}  // namespace detail

class Communicator {
 public:
  Communicator() = default;

  int rank() const { return rank_; }
  int size() const { return state_ ? state_->size : 1; }
  Backend backend() const { return backend_; }

  void barrier() const;

  /// Record a rank-local failure in the team's error slot and raise
  /// TeamAborted; sibling ranks unblock at their next synchronization point.
  [[noreturn]] void raise_error(std::string site, std::string message) const;

  /// In-place elementwise reduction; every rank ends with the identical
  /// result, accumulated in rank order (deterministic, like a fixed-topology
  /// MPI_Allreduce). Dispatches on the CHASE_COLL_ALGO policy; every
  /// algorithm reproduces the naive rank-ordered result bitwise.
  template <typename T>
  void all_reduce(T* data, Index count, Reduction op = Reduction::kSum) const;

  /// Root's buffer is copied to every rank.
  template <typename T>
  void broadcast(T* data, Index count, int root) const;

  /// Equal-count allgather: recv must hold size()*count elements; rank r's
  /// contribution lands at offset r*count.
  template <typename T>
  void all_gather(const T* send, Index count, T* recv) const;

  /// Variable-count allgather with explicit receive offsets. Zero-count
  /// ranks contribute (and copy) nothing; overlapping receive ranges poison
  /// the team with an "allgatherv.overlap" RankError.
  template <typename T>
  void all_gather_v(const T* send, Index count, T* recv,
                    const std::vector<Index>& counts,
                    const std::vector<Index>& displs) const;

  /// Nonblocking allreduce: returns immediately with a CollRequest; the
  /// reduction completes during test()/wait() calls (poll-driven progress
  /// over the chunk channels — there is no progress thread). Under the
  /// naive policy (or trivial teams/payloads) it completes eagerly.
  template <typename T>
  coll::CollRequest i_all_reduce(T* data, Index count,
                                 Reduction op = Reduction::kSum) const;

  /// Nonblocking equal-count allgather; same contract as i_all_reduce.
  template <typename T>
  coll::CollRequest i_all_gather(const T* send, Index count, T* recv) const;

  /// Collective: partitions ranks by color; ranks sharing a color form a new
  /// communicator ordered by (key, old rank). Every rank must call.
  Communicator split(int color, int key) const;

  // ---- point-to-point chunk channels (the primitive under src/coll) ----

  /// Deliver `bytes` of `data` to rank `dst`'s inbox under `tag`. Never
  /// blocks (unbounded queues). Fault hooks: p2p.corrupt flips the leading
  /// bytes of the payload in flight, p2p.stall parks the sender until the
  /// team poisons or ~2 watchdog periods elapse.
  void send_chunk(int dst, std::uint64_t tag, const void* data,
                  std::size_t bytes) const;

  /// Nonblocking receive: if a chunk from `src` tagged `tag` is in my inbox
  /// (matched anywhere in the per-source FIFO, so pipelined chunks may
  /// arrive out of order), copy it into `data` and return true. A matching
  /// chunk whose size differs from `bytes` poisons the team.
  bool try_recv_chunk(int src, std::uint64_t tag, void* data,
                      std::size_t bytes) const;

  /// Blocking receive with the poisoned-error/watchdog protocol: diagnoses a
  /// sender that never delivers as "p2p.watchdog" after barrier_timeout().
  void recv_chunk(int src, std::uint64_t tag, void* data,
                  std::size_t bytes) const;

  /// Monotone count of chunks ever delivered to my inbox.
  std::uint64_t inbox_arrivals() const;

  /// Block until the arrival count differs from `seen` (poison-aware,
  /// watchdog-diagnosed); returns the current count. `src`/`tag`, when
  /// known, name the awaited sender in the watchdog diagnosis.
  std::uint64_t wait_new_arrival(std::uint64_t seen, int src = -1,
                                 std::uint64_t tag = 0) const;

  /// Control-plane agreement: true iff every rank passed the same value.
  /// Runs on the trusted naive publication-slot transport (no chunk
  /// channels), so the ABFT sentinels can verify data-plane payloads over a
  /// path the injected transport corruptions cannot reach. Collective.
  bool agree(std::uint64_t value) const;

  /// Next per-rank collective sequence number (tag namespace of one
  /// collective call). Every rank of a communicator must consume these in
  /// lockstep — the dispatch layer draws one per collective.
  std::uint64_t next_collective_seq() const;

  // ---- two-level topology (comm/topology.hpp) ----

  /// Collapsed topology shape of this communicator for the collective
  /// engine's selector: group count, largest group, contiguity, emulated
  /// cross-group link class. Flat for teams without a CHASE_TOPO grouping.
  const perf::TopoInfo& topo_info() const;

  /// Node id per rank (empty when flat). Rank-identical.
  const std::vector<int>& node_ids() const;

  /// Grouped sub-communicators for the hierarchical routines: the intra-node
  /// team plus the cross-node leader team, built with two generation-keyed
  /// split() calls on first use and cached on the communicator state.
  /// Collective on first call; requires topo_info().grouped().
  const detail::HierGroup& hier_group() const;

 private:
  friend class Team;
  Communicator(std::shared_ptr<detail::CommState> state, int rank,
               Backend backend)
      : state_(std::move(state)), rank_(rank), backend_(backend) {}

  // Naive publish-and-sync reference implementations (the deterministic
  // baseline every src/coll algorithm must match bitwise).
  template <typename T>
  void naive_all_reduce(T* data, Index count, Reduction op) const;
  template <typename T>
  void naive_broadcast(T* data, Index count, int root) const;
  template <typename T>
  void naive_all_gather(const T* send, Index count, T* recv) const;
  template <typename T>
  void naive_all_gather_v(const T* send, Index count, T* recv,
                          const std::vector<Index>& counts,
                          const std::vector<Index>& displs) const;

  /// Shared all_gather_v validation: rejects negative counts/displs and
  /// overlapping receive ranges (diagnosed as a RankError, not silent
  /// corruption).
  void validate_gather_layout(const std::vector<Index>& counts,
                              const std::vector<Index>& displs) const;

  void publish_and_sync(const void* ptr, std::size_t bytes, int tag) const;
  const void* peer_ptr(int r) const { return state_->slots[std::size_t(r)].ptr; }
  void sync() const { state_->barrier_wait(rank_); }
  /// Final sync of a publish/read collective: published buffers may still be
  /// under a sibling's read, so this wait survives poison until everyone has
  /// arrived (see CommState::quiesce_wait).
  void sync_quiesce() const { state_->quiesce_wait(rank_); }

  // Perf accounting around a collective body, including the STD backend's
  // staging copies (Section 3.3): D2H before, H2D after. `bytes` is the
  // *total* payload the collective moves (per-rank payload for
  // reduce/broadcast, the full gathered buffer for allgather), matching the
  // cost model's conventions; `local_bytes` is what this rank stages.
  void account_begin() const;
  void account_end(perf::CollKind kind, std::size_t bytes,
                   std::size_t local_bytes) const;
  /// Completion-time accounting for nonblocking collectives: records the
  /// CollectiveEvent (and STD staging copies) without the begin/end CPU-time
  /// bracket — overlapped progress time deliberately stays in the compute
  /// bucket.
  void account_async(perf::CollKind kind, std::size_t bytes,
                     std::size_t local_bytes) const;

  /// Topology emulation for the naive transport: reading `bytes` from a
  /// peer on another node pays the same cross-node link delay send_chunk
  /// charges, so the flat/naive and hierarchical paths compete fairly under
  /// an emulated slow inter link. No-op on flat teams or same-node peers.
  void throttle_inter(int peer, std::size_t bytes) const;

  std::shared_ptr<detail::CommState> state_;
  int rank_ = 0;
  Backend backend_ = Backend::kHostMpi;
};

namespace detail {

/// The grouped sub-communicators behind one rank of a hierarchical
/// collective: the intra-node team (ranks sharing my node, ordered by parent
/// rank) and the leader team (the last rank of every node; non-leaders hold
/// the complement split, which they never use for data movement). Built once
/// per communicator via Communicator::hier_group().
struct HierGroup {
  Communicator intra;
  Communicator leaders;
  bool is_leader = false;
  int node = 0;        // my node's index in rank order
  int node_first = 0;  // parent rank of my node's first member
  int node_size = 1;
};

}  // namespace detail

/// SPMD launcher: runs fn(comm) on `nranks` threads, each with its own
/// world Communicator. A rank failure (exception or injected death) poisons
/// the team: siblings unblock with TeamAborted at their next collective, all
/// threads are joined, and the *originating* rank's error is rethrown as
/// TeamAborted (rank / site / message preserved). The process survives; a
/// subsequent Team runs on fresh state.
class Team {
 public:
  explicit Team(int nranks, Backend backend = Backend::kHostMpi);

  int size() const { return nranks_; }
  Backend backend() const { return backend_; }

  /// Runs the SPMD region. If `trackers` is non-null it must have nranks
  /// entries; tracker[r] is installed thread-locally on rank r.
  void run(const std::function<void(Communicator&)>& fn,
           std::vector<perf::Tracker>* trackers = nullptr);

 private:
  int nranks_;
  Backend backend_;
};

/// 2D process grid with row and column communicators (Section 2.2): ranks
/// are laid out row-major, the column communicator links ranks with the same
/// grid column (it distributes C), the row communicator links ranks with the
/// same grid row (it distributes B).
class Grid2d {
 public:
  Grid2d(const Communicator& world, int nprow, int npcol);

  int nprow() const { return nprow_; }
  int npcol() const { return npcol_; }
  int my_row() const { return my_row_; }
  int my_col() const { return my_col_; }

  const Communicator& world() const { return world_; }
  /// Ranks with the same grid column; my rank inside it equals my_row().
  const Communicator& col_comm() const { return col_; }
  /// Ranks with the same grid row; my rank inside it equals my_col().
  const Communicator& row_comm() const { return row_; }

  /// Factor `p` into the most square nprow x npcol grid with nprow <= npcol.
  static std::pair<int, int> nearly_square(int p);

 private:
  Communicator world_;
  Communicator row_;
  Communicator col_;
  int nprow_;
  int npcol_;
  int my_row_;
  int my_col_;
};

// ---- template implementations ----

namespace detail {

/// The allreduce.corrupt fault: overwrite one reduced element with the most
/// damaging representable value (NaN where available). Armed with rank -1
/// every rank corrupts its own copy identically, keeping SPMD state
/// consistent while exercising the downstream non-finite guards.
template <typename T>
void corrupt_reduced(T* data, Index count) {
  if (count <= 0 || !fault::fired("allreduce.corrupt")) return;
  if constexpr (kIsComplex<T>) {
    using R = RealType<T>;
    data[0] = T(std::numeric_limits<R>::quiet_NaN(),
                std::numeric_limits<R>::quiet_NaN());
  } else if constexpr (std::is_floating_point_v<T>) {
    data[0] = std::numeric_limits<T>::quiet_NaN();
  } else {
    data[0] = std::numeric_limits<T>::max();
  }
}

}  // namespace detail

template <typename T>
void Communicator::naive_all_reduce(T* data, Index count, Reduction op) const {
  account_begin();
  const std::size_t bytes = std::size_t(count) * sizeof(T);
  publish_and_sync(data, bytes, 100 + int(op));
  std::vector<T> acc(static_cast<std::size_t>(count));
  std::copy_n(static_cast<const T*>(peer_ptr(0)), count, acc.data());
  throttle_inter(0, bytes);
  for (int r = 1; r < size(); ++r) {
    throttle_inter(r, bytes);
    const T* src = static_cast<const T*>(peer_ptr(r));
    for (Index i = 0; i < count; ++i) {
      detail::reduce_assign(op, acc[std::size_t(i)], src[i]);
    }
  }
  sync_quiesce();  // all ranks done reading
  std::copy_n(acc.data(), count, data);
  detail::corrupt_reduced(data, count);
  account_end(perf::CollKind::kAllReduce, bytes, bytes);
}

template <typename T>
void Communicator::naive_broadcast(T* data, Index count, int root) const {
  account_begin();
  const std::size_t bytes = std::size_t(count) * sizeof(T);
  publish_and_sync(data, bytes, 200 + root);
  if (rank_ != root) {
    throttle_inter(root, bytes);
    std::copy_n(static_cast<const T*>(peer_ptr(root)), count, data);
  }
  sync_quiesce();  // root's buffer free again
  account_end(perf::CollKind::kBroadcast, bytes, bytes);
}

template <typename T>
void Communicator::naive_all_gather(const T* send, Index count, T* recv) const {
  account_begin();
  const std::size_t local_bytes = std::size_t(count) * sizeof(T);
  // The gathered payload every rank ends up holding — what the Figure 2/3
  // communication-volume model prices (a ring allgather moves total - local
  // bytes through every rank, not just the local contribution).
  const std::size_t total_bytes = std::size_t(size()) * local_bytes;
  if (size() == 1) {
    std::copy_n(send, count, recv);
  } else {
    publish_and_sync(send, local_bytes, 300);
    for (int r = 0; r < size(); ++r) {
      throttle_inter(r, local_bytes);
      std::copy_n(static_cast<const T*>(peer_ptr(r)), count,
                  recv + Index(r) * count);
    }
    sync_quiesce();
  }
  account_end(perf::CollKind::kAllGather, total_bytes, local_bytes);
}

template <typename T>
void Communicator::naive_all_gather_v(const T* send, Index count, T* recv,
                                      const std::vector<Index>& counts,
                                      const std::vector<Index>& displs) const {
  account_begin();
  const std::size_t local_bytes = std::size_t(count) * sizeof(T);
  std::size_t total_bytes = 0;
  for (const Index c : counts) total_bytes += std::size_t(c) * sizeof(T);
  if (size() == 1) {
    if (count > 0) std::copy_n(send, count, recv + displs[0]);
  } else {
    // A zero-count rank publishes no buffer (its `send` may legitimately be
    // null) and nobody copies from it.
    publish_and_sync(count > 0 ? send : nullptr, local_bytes, 400);
    for (int r = 0; r < size(); ++r) {
      if (counts[std::size_t(r)] == 0) continue;
      throttle_inter(r, std::size_t(counts[std::size_t(r)]) * sizeof(T));
      std::copy_n(static_cast<const T*>(peer_ptr(r)), counts[std::size_t(r)],
                  recv + displs[std::size_t(r)]);
    }
    sync_quiesce();
  }
  account_end(perf::CollKind::kAllGather, total_bytes, local_bytes);
}

}  // namespace chase::comm

// The public collective templates (declared above) dispatch between the
// naive bodies and the src/coll algorithms; the glue lives in coll/ so this
// header stays the single entry point.
#include "coll/dispatch.hpp"  // IWYU pragma: keep
