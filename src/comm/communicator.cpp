#include "comm/communicator.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace chase::comm {

namespace detail {

CommState::CommState(int sz)
    : size(sz),
      barrier(sz),
      slots(std::size_t(sz)),
      split_requests(std::size_t(sz)) {}

}  // namespace detail

void Communicator::barrier() const {
  if (size() == 1) return;
  state_->barrier.arrive_and_wait();
}

void Communicator::publish_and_sync(const void* ptr, std::size_t bytes,
                                    int tag) const {
  auto& slot = state_->slots[std::size_t(rank_)];
  slot.ptr = ptr;
  slot.bytes = bytes;
  slot.tag = tag;
  state_->barrier.arrive_and_wait();
  // SPMD-mismatch detection: every rank must be in the same collective.
  for (int r = 0; r < size(); ++r) {
    CHASE_ABORT_IF(state_->slots[std::size_t(r)].tag != tag,
                   "ranks disagree on the collective being executed");
  }
}

void Communicator::account_begin() const {
  if (auto* t = perf::thread_tracker()) t->begin_collective();
}

void Communicator::account_end(perf::CollKind kind, std::size_t bytes) const {
  auto* t = perf::thread_tracker();
  if (t == nullptr) return;
  // ChASE(STD): the payload lives on the device, so the MPI collective is
  // bracketed by explicit staging copies (Section 3.3). ChASE(NCCL) and the
  // CPU build communicate in place.
  if (backend_ == Backend::kStdGpu) {
    t->record_memcpy(bytes, /*to_device=*/false);
  }
  t->end_collective(kind, bytes, size());
  if (backend_ == Backend::kStdGpu) {
    t->record_memcpy(bytes, /*to_device=*/true);
  }
}

Communicator Communicator::split(int color, int key) const {
  if (size() == 1) {
    return Communicator(std::make_shared<detail::CommState>(1), 0, backend_);
  }
  auto& st = *state_;
  st.split_requests[std::size_t(rank_)] = {color, key};
  st.barrier.arrive_and_wait();

  // split_requests is stable only between the two barriers (a fast rank may
  // overwrite its slot for a subsequent split immediately after the second
  // one), so both the group construction and the membership scan happen here.
  if (rank_ == 0) {
    st.split_children.clear();
    std::map<int, int> group_sizes;
    for (const auto& [c, k] : st.split_requests) {
      (void)k;
      group_sizes[c] += 1;
    }
    for (const auto& [c, sz] : group_sizes) {
      st.split_children[c] = std::make_shared<detail::CommState>(sz);
    }
  }
  // My rank in the child: position of (key, old rank) among my color group.
  std::vector<std::pair<int, int>> members;
  for (int r = 0; r < size(); ++r) {
    const auto& [c, k] = st.split_requests[std::size_t(r)];
    if (c == color) members.emplace_back(k, r);
  }
  std::sort(members.begin(), members.end());
  int my_child_rank = 0;
  for (int i = 0; i < int(members.size()); ++i) {
    if (members[std::size_t(i)].second == rank_) {
      my_child_rank = i;
      break;
    }
  }
  st.barrier.arrive_and_wait();

  auto child = st.split_children.at(color);
  return Communicator(std::move(child), my_child_rank, backend_);
}

Team::Team(int nranks, Backend backend) : nranks_(nranks), backend_(backend) {
  CHASE_CHECK_MSG(nranks >= 1, "Team needs at least one rank");
}

void Team::run(const std::function<void(Communicator&)>& fn,
               std::vector<perf::Tracker>* trackers) {
  CHASE_CHECK(trackers == nullptr || int(trackers->size()) == nranks_);
  auto state = std::make_shared<detail::CommState>(nranks_);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  threads.reserve(std::size_t(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      perf::Tracker* tracker =
          trackers != nullptr ? &(*trackers)[std::size_t(r)] : nullptr;
      if (tracker != nullptr) perf::set_thread_tracker(tracker);
      try {
        Communicator comm(state, r, backend_);
        fn(comm);
      } catch (...) {
        // Throwing between matching collectives would deadlock siblings; the
        // SPMD code is written not to throw, so this only fires for
        // symmetric failures (e.g. a precondition all ranks violate).
        errors[std::size_t(r)] = std::current_exception();
      }
      if (tracker != nullptr) {
        tracker->flush();
        perf::set_thread_tracker(nullptr);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

Grid2d::Grid2d(const Communicator& world, int nprow, int npcol)
    : world_(world), nprow_(nprow), npcol_(npcol) {
  CHASE_CHECK_MSG(nprow * npcol == world.size(),
                  "grid shape does not match communicator size");
  my_row_ = world.rank() / npcol;
  my_col_ = world.rank() % npcol;
  // Column communicator: ranks sharing my grid column, ordered by row.
  col_ = world.split(/*color=*/my_col_, /*key=*/my_row_);
  // Row communicator: ranks sharing my grid row, ordered by column.
  row_ = world.split(/*color=*/my_row_, /*key=*/my_col_);
}

std::pair<int, int> Grid2d::nearly_square(int p) {
  CHASE_CHECK(p >= 1);
  int best = 1;
  for (int d = 1; d * d <= p; ++d) {
    if (p % d == 0) best = d;
  }
  return {best, p / best};
}

}  // namespace chase::comm
