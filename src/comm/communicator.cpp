#include "comm/communicator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "comm/topology.hpp"
#include "common/env.hpp"

namespace chase::comm {

namespace {

std::atomic<long>& timeout_ms() {
  static std::atomic<long> ms = [] {
    long v = 120000;  // generous: legitimate waits cover imbalanced compute
    // CHASE_WATCHDOG_MS is the documented knob; CHASE_BARRIER_TIMEOUT_MS is
    // the original name, kept as a fallback.
    auto parsed = env::positive_env("CHASE_WATCHDOG_MS");
    if (!parsed) parsed = env::positive_env("CHASE_BARRIER_TIMEOUT_MS");
    if (parsed) v = long(*parsed);
    return v;
  }();
  return ms;
}

/// Emulated cross-node link: stall the calling thread for `seconds`. Sleeps
/// the bulk and spins the tail — sleep_for alone overshoots by the OS
/// scheduling quantum, which would swamp sub-100us link latencies. Capped so
/// a misconfigured CHASE_TOPO cannot hang a collective past the watchdog.
void emulate_link_delay(double seconds) {
  if (seconds <= 0) return;
  seconds = std::min(seconds, 0.25);
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  const auto spin_margin = std::chrono::microseconds(200);
  const auto sleep_until = until - spin_margin;
  if (std::chrono::steady_clock::now() < sleep_until) {
    std::this_thread::sleep_until(sleep_until);
  }
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Seconds the emulated inter link charges for moving `bytes` between ranks
/// `a` and `b` of `st`; zero for flat states, same-node pairs, or a grouping
/// without link emulation.
double inter_delay_seconds(const detail::CommState& st, int a, int b,
                           std::size_t bytes) {
  if (st.node_of.empty() || a == b) return 0;
  if (st.node_of[std::size_t(a)] == st.node_of[std::size_t(b)]) return 0;
  double seconds = st.inter_latency;
  if (st.inter_bw > 0) seconds += double(bytes) / st.inter_bw;
  return seconds;
}

}  // namespace

std::chrono::milliseconds barrier_timeout() {
  return std::chrono::milliseconds(timeout_ms().load(std::memory_order_relaxed));
}

void set_barrier_timeout(std::chrono::milliseconds t) {
  timeout_ms().store(t.count(), std::memory_order_relaxed);
}

namespace detail {

CommState::CommState(int sz, std::shared_ptr<ErrorState> es)
    : size(sz),
      errors(es ? std::move(es) : std::make_shared<ErrorState>()),
      slots(std::size_t(sz)),
      coll_seq(std::size_t(sz), 0),
      split_requests(std::size_t(sz)),
      hier_groups(std::size_t(sz)) {
  errors->register_waiter(&bar_cv);
  mailboxes.reserve(std::size_t(sz));
  for (int r = 0; r < sz; ++r) {
    mailboxes.push_back(std::make_unique<Mailbox>(sz));
    // Chunk waiters must wake eagerly when the team poisons, exactly like
    // barrier waiters.
    errors->register_waiter(&mailboxes.back()->cv);
  }
}

CommState::~CommState() {
  for (const auto& mb : mailboxes) errors->unregister_waiter(&mb->cv);
  errors->unregister_waiter(&bar_cv);
}

void CommState::set_nodes(std::vector<int> nodes, double bw, double latency) {
  node_of = std::move(nodes);
  inter_bw = bw;
  inter_latency = latency;
  topo = topo_info_of(node_of, bw, latency);
}

void CommState::barrier_wait(int rank) {
  std::unique_lock<std::mutex> lock(bar_mutex);
  if (errors->poisoned()) errors->raise();
  const std::uint64_t gen = bar_generation;
  if (++bar_arrived == size) {
    bar_arrived = 0;
    ++bar_generation;
    bar_cv.notify_all();
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() + barrier_timeout();
  // Poll-bounded wait: ErrorState::record notifies this cv, but a
  // notification sent between our poison check and the wait would be lost,
  // so the poll interval bounds the detection latency instead of relying on
  // perfect wakeup ordering.
  while (bar_generation == gen) {
    bar_cv.wait_for(lock, std::chrono::milliseconds(50));
    if (bar_generation != gen) break;
    if (errors->poisoned()) {
      --bar_arrived;  // leave the count consistent for any later arrival
      errors->raise();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      --bar_arrived;
      std::ostringstream os;
      os << "watchdog on rank " << rank << ": no barrier progress within "
         << barrier_timeout().count() << " ms (" << bar_arrived + 1 << "/"
         << size
         << " ranks arrived; a sibling likely died outside any collective)";
      errors->record(RankError{rank, "barrier.watchdog", os.str()});
      errors->raise();
    }
  }
}

void CommState::quiesce_wait(int rank) {
  std::unique_lock<std::mutex> lock(bar_mutex);
  // No up-front poison check, and no poison exit from the wait loop: a
  // sibling may still be reading the buffer this rank published in the
  // current collective, and leaving early would free it mid-read. All
  // participants passed the publish barrier, so they arrive here after a
  // bounded read phase; only the watchdog breaks a (never-expected) hang.
  const std::uint64_t gen = bar_generation;
  if (++bar_arrived == size) {
    bar_arrived = 0;
    ++bar_generation;
    bar_cv.notify_all();
  } else {
    const auto deadline = std::chrono::steady_clock::now() + barrier_timeout();
    while (bar_generation == gen) {
      bar_cv.wait_for(lock, std::chrono::milliseconds(50));
      if (bar_generation != gen) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        --bar_arrived;
        std::ostringstream os;
        os << "watchdog on rank " << rank << ": collective quiesce made no "
           << "progress within " << barrier_timeout().count() << " ms ("
           << bar_arrived + 1 << "/" << size << " ranks arrived)";
        errors->record(RankError{rank, "barrier.watchdog", os.str()});
        errors->raise();
      }
    }
  }
  // No poison re-check after the generation completes: a rank that cleared
  // the collective keeps its result and aborts at the *next* entry check,
  // exactly like the pre-quiesce barrier. Raising here would race local
  // post-collective work (e.g. the checkpoint store on rank 0) against a
  // sibling that already died one collective ahead.
}

}  // namespace detail

void Communicator::barrier() const {
  fault::check("rank.die");
  if (size() == 1) return;
  state_->barrier_wait(rank_);
}

void Communicator::raise_error(std::string site, std::string message) const {
  RankError e{rank_, std::move(site), std::move(message)};
  if (state_ != nullptr) {
    state_->errors->record(e);
    state_->errors->raise();
  }
  throw TeamAborted(std::move(e));
}

void Communicator::publish_and_sync(const void* ptr, std::size_t bytes,
                                    int tag) const {
  fault::check("rank.die");
  auto& slot = state_->slots[std::size_t(rank_)];
  slot.ptr = ptr;
  slot.bytes = bytes;
  slot.tag = tag;
  state_->barrier_wait(rank_);
  // SPMD-mismatch detection: every rank must be in the same collective. A
  // mismatch poisons the team (diagnosable on every rank) instead of
  // aborting the process.
  for (int r = 0; r < size(); ++r) {
    if (state_->slots[std::size_t(r)].tag != tag) {
      std::ostringstream os;
      os << "ranks disagree on the collective being executed (rank " << rank_
         << " tag " << tag << ", rank " << r << " tag "
         << state_->slots[std::size_t(r)].tag << ")";
      raise_error("collective.mismatch", os.str());
    }
  }
}

void Communicator::send_chunk(int dst, std::uint64_t tag, const void* data,
                              std::size_t bytes) const {
  CHASE_CHECK_MSG(state_ != nullptr && dst >= 0 && dst < size() && dst != rank_,
                  "send_chunk: bad destination");
  auto& st = *state_;
  if (st.errors->poisoned()) st.errors->raise();
  if (fault::fired("p2p.stall")) {
    // Simulated network stall: park the sender for up to two watchdog
    // periods so a waiting receiver's p2p.watchdog fires first; once the
    // team poisons, die like any other waiter.
    const auto give_up = std::chrono::steady_clock::now() + 2 * barrier_timeout();
    while (std::chrono::steady_clock::now() < give_up) {
      if (st.errors->poisoned()) st.errors->raise();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  // Topology emulation: a chunk crossing the node boundary pays the slow
  // inter link before it lands in the destination mailbox. The delay is in
  // the *sender's* thread, exactly where a real rendezvous send serializes —
  // this is what makes a flat ring's boundary rank the bottleneck the
  // hierarchical routines exist to relieve.
  emulate_link_delay(inter_delay_seconds(st, rank_, dst, bytes));
  detail::Chunk chunk;
  chunk.tag = tag;
  const auto* p = static_cast<const unsigned char*>(data);
  chunk.bytes.assign(p, p + bytes);
  if (!chunk.bytes.empty() && fault::fired("p2p.corrupt")) {
    // All-ones leading bytes: a NaN pattern for floating payloads, the kind
    // of silent bit-flip the downstream non-finite guards must survive.
    std::fill_n(chunk.bytes.data(), std::min<std::size_t>(8, bytes),
                static_cast<unsigned char>(0xFF));
  }
  auto& box = *st.mailboxes[std::size_t(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.from[std::size_t(rank_)].push_back(std::move(chunk));
    ++box.arrivals;
  }
  box.cv.notify_all();
}

bool Communicator::try_recv_chunk(int src, std::uint64_t tag, void* data,
                                  std::size_t bytes) const {
  CHASE_CHECK_MSG(state_ != nullptr && src >= 0 && src < size() && src != rank_,
                  "try_recv_chunk: bad source");
  auto& box = *state_->mailboxes[std::size_t(rank_)];
  detail::Chunk got;
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    auto& q = box.from[std::size_t(src)];
    const auto it = std::find_if(q.begin(), q.end(), [tag](const auto& c) {
      return c.tag == tag;
    });
    if (it == q.end()) return false;
    got = std::move(*it);
    q.erase(it);
  }
  if (got.bytes.size() != bytes) {
    std::ostringstream os;
    os << "chunk size mismatch from rank " << src << " (tag " << tag
       << "): sent " << got.bytes.size() << " bytes, expected " << bytes;
    raise_error("p2p.mismatch", os.str());
  }
  std::copy(got.bytes.begin(), got.bytes.end(),
            static_cast<unsigned char*>(data));
  return true;
}

void Communicator::recv_chunk(int src, std::uint64_t tag, void* data,
                              std::size_t bytes) const {
  std::uint64_t seen = inbox_arrivals();
  while (!try_recv_chunk(src, tag, data, bytes)) {
    seen = wait_new_arrival(seen, src, tag);
  }
}

std::uint64_t Communicator::inbox_arrivals() const {
  auto& box = *state_->mailboxes[std::size_t(rank_)];
  std::lock_guard<std::mutex> lock(box.mutex);
  return box.arrivals;
}

std::uint64_t Communicator::wait_new_arrival(std::uint64_t seen, int src,
                                             std::uint64_t tag) const {
  auto& st = *state_;
  auto& box = *st.mailboxes[std::size_t(rank_)];
  const auto deadline = std::chrono::steady_clock::now() + barrier_timeout();
  std::unique_lock<std::mutex> lock(box.mutex);
  while (box.arrivals == seen) {
    if (st.errors->poisoned()) st.errors->raise();
    // Poll-bounded wait, same rationale as barrier_wait: a poison
    // notification between the check and the wait must not be lost forever.
    box.cv.wait_for(lock, std::chrono::milliseconds(50));
    if (box.arrivals != seen) break;
    if (st.errors->poisoned()) st.errors->raise();
    if (std::chrono::steady_clock::now() >= deadline) {
      std::ostringstream os;
      os << "watchdog on rank " << rank_ << ": no chunk arrived within "
         << barrier_timeout().count() << " ms";
      if (src >= 0) {
        os << " while waiting for rank " << src << " (tag " << tag << ")";
      }
      os << " (a peer of the collective likely died or stalled)";
      lock.unlock();
      st.errors->record(RankError{rank_, "p2p.watchdog", os.str()});
      st.errors->raise();
    }
  }
  return box.arrivals;
}

bool Communicator::agree(std::uint64_t value) const {
  if (size() <= 1) return true;
  // Trusted naive transport: publication slots + barriers only — no chunk
  // channels, so neither p2p.corrupt nor the algorithmic engine can touch
  // the verification word the ABFT sentinels exchange here.
  publish_and_sync(&value, sizeof(value), /*tag=*/500);
  bool same = true;
  for (int r = 0; r < size(); ++r) {
    std::uint64_t peer = 0;
    std::memcpy(&peer, peer_ptr(r), sizeof(peer));
    same = same && peer == value;
  }
  sync_quiesce();  // all ranks done reading the stack slot
  return same;
}

std::uint64_t Communicator::next_collective_seq() const {
  return ++state_->coll_seq[std::size_t(rank_)];
}

void Communicator::throttle_inter(int peer, std::size_t bytes) const {
  if (state_ == nullptr) return;
  emulate_link_delay(inter_delay_seconds(*state_, rank_, peer, bytes));
}

const perf::TopoInfo& Communicator::topo_info() const {
  static const perf::TopoInfo flat{};
  return state_ != nullptr ? state_->topo : flat;
}

const std::vector<int>& Communicator::node_ids() const {
  static const std::vector<int> empty;
  return state_ != nullptr ? state_->node_of : empty;
}

const detail::HierGroup& Communicator::hier_group() const {
  CHASE_CHECK_MSG(state_ != nullptr && state_->topo.grouped(),
                  "hier_group: communicator is not topology-grouped");
  auto& slot = state_->hier_groups[std::size_t(rank_)];
  if (slot != nullptr) return *slot;
  const auto& nodes = state_->node_of;
  auto group = std::make_shared<detail::HierGroup>();
  // A grouped assignment is contiguous, so my node is one run of equal ids:
  // its index is the number of run boundaries before me, its extent the run
  // around my rank. The last member acts as the node's leader.
  int node_idx = 0;
  for (int r = 1; r <= rank_; ++r) {
    if (nodes[std::size_t(r)] != nodes[std::size_t(r - 1)]) ++node_idx;
  }
  int first = rank_;
  while (first > 0 &&
         nodes[std::size_t(first - 1)] == nodes[std::size_t(rank_)]) {
    --first;
  }
  int last = rank_;
  while (last + 1 < size() &&
         nodes[std::size_t(last + 1)] == nodes[std::size_t(rank_)]) {
    ++last;
  }
  group->node = node_idx;
  group->node_first = first;
  group->node_size = last - first + 1;
  group->is_leader = rank_ == last;
  // Collective: node_of is rank-identical, so every rank reaches these two
  // split() calls with matching colors and they pair up across the team.
  group->intra = split(/*color=*/nodes[std::size_t(rank_)], /*key=*/rank_);
  group->leaders = split(/*color=*/group->is_leader ? 0 : 1, /*key=*/rank_);
  slot = std::move(group);
  return *slot;
}

void Communicator::validate_gather_layout(
    const std::vector<Index>& counts, const std::vector<Index>& displs) const {
  std::vector<std::pair<Index, int>> spans;  // (displ, rank), counts > 0
  for (int r = 0; r < size(); ++r) {
    const Index c = counts[std::size_t(r)];
    CHASE_CHECK_MSG(c >= 0, "all_gather_v: negative count");
    if (c == 0) continue;  // zero-count ranks own no receive range
    CHASE_CHECK_MSG(displs[std::size_t(r)] >= 0,
                    "all_gather_v: negative displacement");
    spans.emplace_back(displs[std::size_t(r)], r);
  }
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const int a = spans[i - 1].second;
    const int b = spans[i].second;
    if (spans[i - 1].first + counts[std::size_t(a)] > spans[i].first) {
      std::ostringstream os;
      os << "receive ranges overlap: rank " << a << " [" << spans[i - 1].first
         << ", " << spans[i - 1].first + counts[std::size_t(a)] << ") vs rank "
         << b << " [" << spans[i].first << ", "
         << spans[i].first + counts[std::size_t(b)] << ")";
      raise_error("allgatherv.overlap", os.str());
    }
  }
}

void Communicator::account_begin() const {
  if (auto* t = perf::thread_tracker()) t->begin_collective();
}

void Communicator::account_end(perf::CollKind kind, std::size_t bytes,
                               std::size_t local_bytes) const {
  auto* t = perf::thread_tracker();
  if (t == nullptr) return;
  // ChASE(STD): the payload lives on the device, so the MPI collective is
  // bracketed by explicit staging copies (Section 3.3) — D2H for what this
  // rank contributes, H2D for what it ends up holding. ChASE(NCCL) and the
  // CPU build communicate in place.
  if (backend_ == Backend::kStdGpu) {
    t->record_memcpy(local_bytes, /*to_device=*/false);
  }
  t->end_collective(kind, bytes, size());
  if (backend_ == Backend::kStdGpu) {
    t->record_memcpy(bytes, /*to_device=*/true);
  }
}

void Communicator::account_async(perf::CollKind kind, std::size_t bytes,
                                 std::size_t local_bytes) const {
  auto* t = perf::thread_tracker();
  if (t == nullptr) return;
  if (backend_ == Backend::kStdGpu) {
    t->record_memcpy(local_bytes, /*to_device=*/false);
  }
  t->record_collective(kind, bytes, size());
  if (backend_ == Backend::kStdGpu) {
    t->record_memcpy(bytes, /*to_device=*/true);
  }
}

Communicator Communicator::split(int color, int key) const {
  fault::check("rank.die");
  if (size() == 1) {
    auto errors = state_ != nullptr ? state_->errors : nullptr;
    return Communicator(
        std::make_shared<detail::CommState>(1, std::move(errors)), 0,
        backend_);
  }
  auto& st = *state_;
  st.split_requests[std::size_t(rank_)] = {color, key};
  st.barrier_wait(rank_);

  // split_requests is stable only between the two barriers (a fast rank may
  // overwrite its slot for a subsequent split immediately after the second
  // one), so both the group construction and the membership scan happen here.
  if (rank_ == 0) {
    ++st.split_generation;
    // Children of earlier split() calls have all been adopted (every rank
    // finished that call before arriving here), so only the new generation
    // must stay alive in the cache.
    st.split_children.clear();
    std::map<int, std::vector<std::pair<int, int>>> groups;  // color -> (key, rank)
    for (int r = 0; r < size(); ++r) {
      const auto& [c, k] = st.split_requests[std::size_t(r)];
      groups[c].emplace_back(k, r);
    }
    for (auto& [c, mem] : groups) {
      std::sort(mem.begin(), mem.end());
      auto child =
          std::make_shared<detail::CommState>(int(mem.size()), st.errors);
      // Children inherit the topology: each member keeps its parent node id
      // (in child rank order), so a split communicator spanning two nodes
      // still sees — and pays for — its cross-node links.
      if (!st.node_of.empty()) {
        std::vector<int> nodes(mem.size());
        for (std::size_t i = 0; i < mem.size(); ++i) {
          nodes[i] = st.node_of[std::size_t(mem[i].second)];
        }
        child->set_nodes(std::move(nodes), st.inter_bw, st.inter_latency);
      }
      st.split_children[{st.split_generation, c}] = std::move(child);
    }
  }
  // My rank in the child: position of (key, old rank) among my color group.
  std::vector<std::pair<int, int>> members;
  for (int r = 0; r < size(); ++r) {
    const auto& [c, k] = st.split_requests[std::size_t(r)];
    if (c == color) members.emplace_back(k, r);
  }
  std::sort(members.begin(), members.end());
  int my_child_rank = 0;
  for (int i = 0; i < int(members.size()); ++i) {
    if (members[std::size_t(i)].second == rank_) {
      my_child_rank = i;
      break;
    }
  }
  st.barrier_wait(rank_);

  // Safe to read after the second barrier: rank 0 can only bump the
  // generation again from inside a *later* split() call, whose first barrier
  // needs this rank too.
  auto child = st.split_children.at({st.split_generation, color});
  return Communicator(std::move(child), my_child_rank, backend_);
}

Team::Team(int nranks, Backend backend) : nranks_(nranks), backend_(backend) {
  CHASE_CHECK_MSG(nranks >= 1, "Team needs at least one rank");
}

void Team::run(const std::function<void(Communicator&)>& fn,
               std::vector<perf::Tracker>* trackers) {
  CHASE_CHECK(trackers == nullptr || int(trackers->size()) == nranks_);
  auto errors = std::make_shared<ErrorState>();
  auto state = std::make_shared<detail::CommState>(nranks_, errors);
  {
    // Seed the world communicator from the process topology (CHASE_TOPO or
    // a ScopedTopology override); specs for other team sizes leave it flat.
    const Topology topo = current_topology();
    auto nodes = node_assignment(topo, nranks_);
    if (!nodes.empty()) {
      state->set_nodes(std::move(nodes), topo.inter_bw, topo.inter_latency);
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      fault::set_thread_rank(r);
      perf::Tracker* tracker =
          trackers != nullptr ? &(*trackers)[std::size_t(r)] : nullptr;
      if (tracker != nullptr) perf::set_thread_tracker(tracker);
      try {
        Communicator comm(state, r, backend_);
        fn(comm);
      } catch (const TeamAborted&) {
        // Sibling notification: the originating rank's error is already in
        // the slot; recording ours would only race for first place.
      } catch (const fault::Injected& e) {
        errors->record(RankError{r, e.site(), e.what()});
      } catch (const Error& e) {
        errors->record(RankError{r, "rank.error", e.what()});
      } catch (const std::exception& e) {
        errors->record(RankError{r, "rank.exception", e.what()});
      } catch (...) {
        errors->record(RankError{r, "rank.exception", "unknown exception"});
      }
      fault::set_thread_rank(0);
      if (tracker != nullptr) {
        tracker->flush();
        perf::set_thread_tracker(nullptr);
      }
    });
  }
  for (auto& t : threads) t.join();
  // All threads are joined, so state is quiescent; rethrow the originating
  // rank's failure with full context. The Team (and the process) stays
  // usable: the next run() starts from fresh CommState + ErrorState.
  if (errors->poisoned()) throw TeamAborted(errors->error());
}

Grid2d::Grid2d(const Communicator& world, int nprow, int npcol)
    : world_(world), nprow_(nprow), npcol_(npcol) {
  CHASE_CHECK_MSG(nprow * npcol == world.size(),
                  "grid shape does not match communicator size");
  my_row_ = world.rank() / npcol;
  my_col_ = world.rank() % npcol;
  // Column communicator: ranks sharing my grid column, ordered by row.
  col_ = world.split(/*color=*/my_col_, /*key=*/my_row_);
  // Row communicator: ranks sharing my grid row, ordered by column.
  row_ = world.split(/*color=*/my_row_, /*key=*/my_col_);
}

std::pair<int, int> Grid2d::nearly_square(int p) {
  CHASE_CHECK(p >= 1);
  int best = 1;
  for (int d = 1; d * d <= p; ++d) {
    if (p % d == 0) best = d;
  }
  return {best, p / best};
}

}  // namespace chase::comm
