#include "comm/topology.hpp"

#include <algorithm>
#include <mutex>

#include "common/env.hpp"

namespace chase::comm {

namespace {

constexpr long long kMaxRanks = 4096;

std::mutex& topo_mutex() {
  static std::mutex m;
  return m;
}

Topology& topo_slot() {
  // Parsed from CHASE_TOPO on first use; a malformed spec throws on every
  // team construction until fixed (fail loudly, never fall back to flat).
  static Topology topo = [] {
    if (const auto spec = env::text_env("CHASE_TOPO")) {
      return parse_topology("CHASE_TOPO", *spec);
    }
    return Topology{};
  }();
  return topo;
}

}  // namespace

Topology parse_topology(const char* name, std::string_view spec) {
  Topology topo;
  const auto fields = env::split_list(spec, '@');
  const std::string_view base = fields.empty() ? std::string_view{}
                                               : std::string_view(fields[0]);
  if (base.empty()) {
    env::reject(name, spec, "empty topology spec",
                "flat | <nodes>x<per_node> | <id>,<id>,...");
  }
  if (base == "flat") {
    // keep the flat default; qualifiers may still set link parameters
  } else if (base.find(',') != std::string_view::npos) {
    // Explicit node id per rank.
    for (const std::string& tok : env::split_list(base, ',')) {
      topo.node_of.push_back(
          static_cast<int>(env::ranged_int(name, tok, 0, kMaxRanks - 1)));
    }
  } else if (const auto x = base.find('x'); x != std::string_view::npos) {
    topo.grid_nodes =
        static_cast<int>(env::ranged_int(name, base.substr(0, x), 1, kMaxRanks));
    topo.grid_per_node = static_cast<int>(
        env::ranged_int(name, base.substr(x + 1), 1, kMaxRanks));
    if (static_cast<long long>(topo.grid_nodes) * topo.grid_per_node >
        kMaxRanks) {
      env::reject(name, spec, "grid larger than the rank limit",
                  "nodes * per_node <= 4096");
    }
  } else {
    // A single bare number is a one-rank node list.
    topo.node_of.push_back(
        static_cast<int>(env::ranged_int(name, base, 0, kMaxRanks - 1)));
  }
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string_view q(fields[i]);
    const auto eq = q.find('=');
    const std::string_view key = q.substr(0, eq);
    const std::string_view val =
        eq == std::string_view::npos ? std::string_view{} : q.substr(eq + 1);
    if (key == "inter_mbps") {
      topo.inter_bw =
          1.0e6 * double(env::ranged_int(name, val, 0, 100000000));
    } else if (key == "inter_us") {
      topo.inter_latency =
          1.0e-6 * double(env::ranged_int(name, val, 0, 100000000));
    } else {
      env::reject(name, spec, "unknown qualifier \"" + std::string(q) + "\"",
                  "inter_mbps=<MB/s> or inter_us=<microseconds>");
    }
  }
  return topo;
}

Topology current_topology() {
  std::lock_guard<std::mutex> lock(topo_mutex());
  return topo_slot();
}

void set_topology(std::optional<Topology> topo) {
  std::lock_guard<std::mutex> lock(topo_mutex());
  if (topo) {
    topo_slot() = std::move(*topo);
  } else {
    topo_slot() = Topology{};
  }
}

std::vector<int> node_assignment(const Topology& topo, int team_size) {
  if (team_size <= 1) return {};
  if (!topo.node_of.empty()) {
    if (int(topo.node_of.size()) != team_size) return {};
    return topo.node_of;
  }
  if (topo.grid_nodes > 0) {
    if (topo.grid_nodes * topo.grid_per_node != team_size) return {};
    std::vector<int> nodes(std::size_t(team_size), 0);
    for (int r = 0; r < team_size; ++r) {
      nodes[std::size_t(r)] = r / topo.grid_per_node;
    }
    return nodes;
  }
  return {};
}

perf::TopoInfo topo_info_of(const std::vector<int>& node_of, double inter_bw,
                            double inter_latency) {
  perf::TopoInfo info;
  info.inter_bw = inter_bw;
  info.inter_latency = inter_latency;
  if (node_of.empty()) return info;
  // Count the runs of equal node ids; the assignment is hierarchical-capable
  // (contiguous) when no id recurs after its run ended.
  int runs = 1;
  int run_len = 1;
  int max_run = 1;
  bool contiguous = true;
  std::vector<int> seen = {node_of[0]};
  for (std::size_t r = 1; r < node_of.size(); ++r) {
    if (node_of[r] == node_of[r - 1]) {
      ++run_len;
    } else {
      if (std::find(seen.begin(), seen.end(), node_of[r]) != seen.end()) {
        contiguous = false;
      } else {
        seen.push_back(node_of[r]);
      }
      ++runs;
      run_len = 1;
    }
    max_run = std::max(max_run, run_len);
  }
  info.nodes = runs;
  info.max_per_node = max_run;
  info.contiguous = contiguous;
  if (!contiguous) {
    // Distinct group count is still meaningful for the naive/flat pricing.
    info.nodes = int(seen.size());
  }
  return info;
}

}  // namespace chase::comm
