// Collective-safe error propagation across the ranks of a Team.
//
// The problem: in an SPMD region an invariant violation on one rank used to
// be unrecoverable — throwing would leave sibling ranks blocked forever in a
// barrier, so every such site called std::abort() and killed the process.
//
// The mechanism here makes failure a first-class, recoverable event:
//
//   * every communicator tree (a Team's world plus all of its split
//     children) shares one ErrorState — the per-team error slot;
//   * the first rank to fail records a RankError (rank / site / message)
//     and *poisons* the state;
//   * every barrier arrival and wait checks the poison flag ("poisoned
//     barrier"): sibling ranks unblock at their next synchronization point
//     and raise TeamAborted locally instead of waiting for a peer that will
//     never arrive;
//   * barrier waits carry a watchdog timeout, so a rank that dies *outside*
//     any collective (and therefore never records anything) is still
//     detected: the longest-waiting sibling records a barrier.watchdog
//     error and poisons the team;
//   * Team::run joins all rank threads, then rethrows the *originating*
//     rank's error as TeamAborted with full context. The process survives
//     and a fresh Team can run afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace chase::comm {

/// What went wrong, where, and on which rank — the context Team::run
/// rethrows after joining the team.
struct RankError {
  int rank = -1;
  std::string site;     // e.g. "rank.die", "barrier.watchdog", "rank.exception"
  std::string message;  // human-readable detail (original what() for exceptions)
};

/// Raised on every rank of a poisoned team: on sibling ranks when they hit
/// their next synchronization point, and from Team::run after join. Derives
/// from Error so existing catch sites keep working.
class TeamAborted : public Error {
 public:
  explicit TeamAborted(RankError e) : Error(format(e)), error_(std::move(e)) {}
  const RankError& error() const { return error_; }

  static std::string format(const RankError& e) {
    std::ostringstream os;
    os << "team aborted: rank " << e.rank << " failed at '" << e.site << "'";
    if (!e.message.empty()) os << ": " << e.message;
    return os.str();
  }

 private:
  RankError error_;
};

/// Per-team error slot shared by a world communicator and all communicators
/// split from it. First recorded error wins; recording poisons the team and
/// wakes every barrier registered with the state.
class ErrorState {
 public:
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// Record `e` if no error is recorded yet (first failure wins), poison the
  /// team either way, and wake all registered barrier waiters. Returns true
  /// if this call installed the error.
  bool record(RankError e) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool installed = !error_.has_value();
    if (installed) error_ = std::move(e);
    poisoned_.store(true, std::memory_order_release);
    for (auto* cv : waiters_) cv->notify_all();
    return installed;
  }

  /// The originating error; only meaningful once poisoned.
  RankError error() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return error_.value_or(RankError{-1, "unknown", "team poisoned"});
  }

  /// Throw TeamAborted carrying the originating error.
  [[noreturn]] void raise() const { throw TeamAborted(error()); }

  /// Barriers register their condition variable so a poisoning rank can wake
  /// waiters on *any* communicator of the team immediately (waiters also
  /// poll, so a missed notification only costs one poll interval).
  void register_waiter(std::condition_variable* cv) {
    std::lock_guard<std::mutex> lock(mutex_);
    waiters_.push_back(cv);
  }
  void unregister_waiter(std::condition_variable* cv) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::erase(waiters_, cv);
  }

 private:
  mutable std::mutex mutex_;
  std::optional<RankError> error_;
  std::atomic<bool> poisoned_{false};
  std::vector<std::condition_variable*> waiters_;
};

/// Watchdog timeout for barrier waits. The default is deliberately generous
/// (legitimate waits cover whatever imbalanced compute siblings are doing);
/// fault-tolerance tests lower it via ScopedBarrierTimeout. Initialized from
/// CHASE_BARRIER_TIMEOUT_MS when set.
std::chrono::milliseconds barrier_timeout();
void set_barrier_timeout(std::chrono::milliseconds t);

class ScopedBarrierTimeout {
 public:
  explicit ScopedBarrierTimeout(std::chrono::milliseconds t)
      : previous_(barrier_timeout()) {
    set_barrier_timeout(t);
  }
  ~ScopedBarrierTimeout() { set_barrier_timeout(previous_); }
  ScopedBarrierTimeout(const ScopedBarrierTimeout&) = delete;
  ScopedBarrierTimeout& operator=(const ScopedBarrierTimeout&) = delete;

 private:
  std::chrono::milliseconds previous_;
};

}  // namespace chase::comm
