// Point-to-point chunk channels: the transport primitive under src/coll.
//
// Every rank owns one Mailbox holding a FIFO of in-flight chunks per source
// rank (a per-rank-pair SPSC queue: only the source pushes, only the owner
// pops). Sends never block — the queues are unbounded, so no send/recv
// ordering can deadlock — while receives match a chunk by tag *anywhere* in
// the per-source FIFO, which lets pipelined algorithms overlap chunks of
// different steps without agreeing on a global interleaving.
//
// Tags are built by the coll algorithms as
//   seq(32) | phase(4) | step(12) | chunk(16)
// where `seq` is the per-rank collective sequence number handed out by
// Communicator::next_collective_seq(); consecutive collectives on the same
// communicator therefore never alias tags even though channels are not
// drained between them.
//
// Blocking receives carry the same poisoned-error/watchdog semantics as the
// PR 1 barriers: waiters register the mailbox cv with the team's ErrorState,
// poll the poison flag, and diagnose a missing sender as "p2p.watchdog"
// after comm::barrier_timeout().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace chase::comm::detail {

struct Chunk {
  std::uint64_t tag = 0;
  std::vector<unsigned char> bytes;
};

struct Mailbox {
  explicit Mailbox(int nranks) : from(std::size_t(nranks)) {}

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::deque<Chunk>> from;  // indexed by source rank
  // Bumped on every push; Communicator::wait_new_arrival sleeps on it so
  // nonblocking requests can wait without busy-spinning.
  std::uint64_t arrivals = 0;
};

}  // namespace chase::comm::detail
