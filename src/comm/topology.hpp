// Two-level machine topology for the in-process SPMD runtime.
//
// A Topology assigns every rank of a team to a node group and carries the
// link classes between groups: ranks sharing a node communicate over the
// fast intra class (NVLink / shared memory), ranks on different nodes over
// the slow inter class (HDR IB). The runtime is still one process — the
// topology's job is (a) to let the collective engine select two-level
// algorithms the way NCCL does on a real multi-node machine, and (b) to
// *emulate* the slow links (a calibrated busy-wait per cross-node transfer)
// so benches and tests can observe the hierarchy winning without real
// hardware.
//
// The process-global topology comes from the validated CHASE_TOPO spec:
//
//   CHASE_TOPO = flat                      (default: all ranks on one node)
//              | <nodes>x<ranks_per_node>  e.g. 2x4
//              | <id>,<id>,...             explicit node id per rank
//   with optional qualifiers, e.g. 2x4@inter_mbps=800@inter_us=30
//
//   inter_mbps — emulated cross-node bandwidth in MB/s (0 disables the
//                emulation delay but keeps the grouping)
//   inter_us   — emulated per-transfer cross-node latency in microseconds
//
// A grid/list spec applies to teams of exactly matching size; teams of any
// other size run flat (one process hosts many team sizes — benches spawn
// 2-, 4- and 8-rank teams side by side — and a 2x4 spec says nothing about
// a 3-rank team). Malformed specs throw env::ConfigError naming CHASE_TOPO.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "perf/cost_model.hpp"

namespace chase::comm {

struct Topology {
  std::vector<int> node_of;   // node id per rank; empty: flat (grid unset)
  int grid_nodes = 0;         // NxM spec: N (0 when node_of/flat form)
  int grid_per_node = 0;      // NxM spec: M
  double inter_bw = 0;        // emulated cross-node bytes/s (0: no delay)
  double inter_latency = 0;   // emulated cross-node seconds per transfer

  bool flat() const { return node_of.empty() && grid_nodes == 0; }
};

/// Parse a CHASE_TOPO-style spec. Throws env::ConfigError (naming `name`)
/// on malformed input.
Topology parse_topology(const char* name, std::string_view spec);

/// The process-global topology: the CHASE_TOPO spec (parsed once, throwing
/// on garbage) unless overridden by set_topology.
Topology current_topology();

/// Override (or clear, with nullopt) the process-global topology. Intended
/// for benches/tests via ScopedTopology; takes effect for Teams created
/// afterwards.
void set_topology(std::optional<Topology> topo);

/// Node id per rank for a team of `team_size` ranks under `topo`: the
/// explicit list or expanded grid when the size matches exactly, else empty
/// (flat).
std::vector<int> node_assignment(const Topology& topo, int team_size);

/// Collapse a per-rank node assignment into the cost model's shape: group
/// count, largest group, contiguity, and the emulated link class. An empty
/// assignment is the flat single-group shape.
perf::TopoInfo topo_info_of(const std::vector<int>& node_of, double inter_bw,
                            double inter_latency);

/// RAII topology override for benches and tests.
class ScopedTopology {
 public:
  explicit ScopedTopology(Topology topo) : prev_(current_topology()) {
    set_topology(std::move(topo));
  }
  ~ScopedTopology() { set_topology(std::move(prev_)); }
  ScopedTopology(const ScopedTopology&) = delete;
  ScopedTopology& operator=(const ScopedTopology&) = delete;

 private:
  Topology prev_;
};

}  // namespace chase::comm
