// Result/observer types of the ChASE solver, shared by the driver front-ends
// (core/chase.hpp, core/legacy_lms.hpp) and the solver engine underneath
// (core/engine/, core/dla.hpp). Kept separate so the engine layers can be
// included without pulling in a driver.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "la/matrix.hpp"

namespace chase::core {

template <typename R>
struct SpectralBounds {
  R b_sup = 0;   // upper bound of the spectrum
  R mu_1 = 0;    // lowest Ritz value seen
  R mu_ne = 0;   // DoS estimate of the (nev+nex)-th eigenvalue
};

/// Hook for experiment instrumentation (e.g. the Figure 1 bench computes the
/// exact kappa_2 of the filtered block after every filter call).
template <typename T>
class ChaseObserver {
 public:
  virtual ~ChaseObserver() = default;
  /// Called after the filter, before the QR. `c_local` is the local C block
  /// (all subspace columns); columns [locked, ne) are the freshly filtered
  /// ones the Algorithm-5 estimate `est_cond` refers to.
  virtual void after_filter(int /*iteration*/, int /*locked*/,
                            la::ConstMatrixView<T> /*c_local*/,
                            double /*est_cond*/) {}
  /// Called once per recorded iteration — including iterations the engine
  /// retries after a filter-corruption recovery (their stats carry the
  /// re-randomization, and an observer watching convergence must see them).
  virtual void after_iteration(const IterationStats& /*stats*/) {}
};

template <typename T>
struct ChaseResult {
  std::vector<RealType<T>> eigenvalues;  // nev lowest, ascending
  la::Matrix<T> eigenvectors;            // local C-layout rows x nev
  bool converged = false;
  int iterations = 0;
  long matvecs = 0;
  SpectralBounds<RealType<T>> bounds;
  std::vector<IterationStats> stats;
};

}  // namespace chase::core
