// Spectral-bound estimation by repeated Lanczos runs with a stochastic
// Density-of-States quantile (Algorithm 2, line 1).
//
// ChASE needs three scalars before filtering:
//   b_sup  — an upper bound on the whole spectrum (the filter diverges if an
//            eigenvalue exceeds it);
//   mu_1   — an estimate of the lowest eigenvalue (used to normalize the
//            filter so the wanted end of the spectrum stays O(1));
//   mu_ne  — an estimate of the (nev+nex)-th eigenvalue: the lower edge of
//            the damped interval [mu_ne, b_sup].
// Each Lanczos run yields Ritz values theta_k with Gaussian-quadrature
// weights |e_1^T y_k|^2; averaging the resulting spectral measures over a few
// random starting vectors gives the DoS estimate whose ne/N quantile is
// mu_ne.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "comm/communicator.hpp"
#include "common/rng.hpp"
#include "core/types.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/multivector.hpp"
#include "la/blas1.hpp"
#include "la/heevd.hpp"
#include "perf/tracker.hpp"

namespace chase::core {

/// Deterministic Gaussian entry for global row g of Lanczos stream `stream`:
/// every rank generates identical global vectors regardless of the grid.
template <typename T>
T lanczos_entry(std::uint64_t seed, std::uint64_t stream, la::Index g) {
  Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (stream + 1)), std::uint64_t(g));
  return rng.gaussian<T>();
}

namespace detail {

/// Raw Lanczos quadrature data shared by the spectral-bound estimation and
/// the public DoS interface (core/dos.hpp).
template <typename R>
struct LanczosQuadrature {
  std::vector<std::pair<R, R>> dos;  // (ritz value, weight) per run
  R b_sup = 0;
  R mu_1 = 0;
};

template <typename HOp, typename T = typename HOp::Scalar>
LanczosQuadrature<RealType<T>> lanczos_quadrature(
    HOp& h, int steps, int nvec, std::uint64_t seed) {
  using R = RealType<T>;
  perf::RegionScope scope(perf::Region::kLanczos);
  const auto& grid = h.grid();
  const auto& rmap = h.row_map();
  const auto& cmap = h.col_map();
  const la::Index n = h.global_size();
  const la::Index mloc = rmap.local_size(grid.my_row());
  steps = int(std::min<la::Index>(steps, n));

  la::Matrix<T> v_prev(mloc, 1), v(mloc, 1), w(mloc, 1);
  la::Matrix<T> wb(cmap.local_size(grid.my_col()), 1);

  // Global inner products over C-layout vectors: local rows + allreduce over
  // the column communicator (identical on all grid columns by determinism).
  auto global_dotc = [&](const la::Matrix<T>& a, const la::Matrix<T>& b) {
    T acc = la::dotc(mloc, a.data(), b.data());
    grid.col_comm().all_reduce(&acc, 1);
    return acc;
  };

  std::vector<std::pair<R, R>> dos;  // (ritz value, weight)
  R b_sup = -std::numeric_limits<R>::infinity();
  R mu_1 = std::numeric_limits<R>::infinity();

  for (int run = 0; run < nvec; ++run) {
    // Non-finite recurrence coefficients (an Inf/NaN in H, or corruption in
    // transit) would silently poison the DoS estimate and hence every bound
    // derived from it. Since alpha/beta come out of allreduces they are
    // identical on all ranks, so every rank restarts the run with the same
    // salted random stream; persistent breakdown means H itself contains
    // non-finite entries and is reported as an error.
    std::vector<R> alpha, beta;
    bool run_ok = false;
    for (int attempt = 0; attempt < 3 && !run_ok; ++attempt) {
      const auto stream = std::uint64_t(run) + std::uint64_t(attempt) * 100003;
      // Random normalized start vector.
      for (const auto& r : rmap.runs(grid.my_row())) {
        for (la::Index k = 0; k < r.length; ++k) {
          v(r.local_begin + k, 0) =
              lanczos_entry<T>(seed, stream, r.global_begin + k);
        }
      }
      R nrm = std::sqrt(real_part(global_dotc(v, v)));
      la::scal(mloc, T(R(1) / nrm), v.data());
      v_prev.set_zero();

      alpha.clear();
      beta.clear();
      bool finite = std::isfinite(nrm) && nrm > R(0);
      for (int j = 0; finite && j < steps; ++j) {
        // w = H v (apply once: C -> B, then pure redistribution back to C).
        h.apply_c2b(T(1), v.cview(), T(0), wb.view());
        dist::redistribute_b2c<T>(grid, rmap, cmap, wb.cview(), w.view());
        if (j > 0) {
          la::axpy(mloc, T(-beta.back()), v_prev.data(), w.data());
        }
        const R a = real_part(global_dotc(v, w));
        if (!std::isfinite(a)) {
          finite = false;
          break;
        }
        alpha.push_back(a);
        la::axpy(mloc, T(-a), v.data(), w.data());
        const R b = std::sqrt(real_part(global_dotc(w, w)));
        if (!std::isfinite(b)) {
          finite = false;
          break;
        }
        if (j + 1 < steps) {
          beta.push_back(b);
          if (b == R(0)) break;  // invariant subspace found
          std::swap(v_prev, v);
          la::copy(w.cview(), v.view());
          la::scal(mloc, T(R(1) / b), v.data());
        } else {
          beta.push_back(b);  // trailing beta: residual of the last step
        }
      }
      run_ok = finite;
      if (!run_ok) perf::bump_counter("lanczos.restart");
    }
    CHASE_CHECK_MSG(run_ok,
                    "lanczos: non-finite recurrence coefficients persist "
                    "after re-randomized restarts (does H contain Inf/NaN?)");

    // Ritz values/weights of the tridiagonal (tiny, solved redundantly).
    const int m = int(alpha.size());
    la::Matrix<R> t(m, m), z(m, m);
    for (int i = 0; i < m; ++i) {
      t(i, i) = alpha[std::size_t(i)];
      if (i + 1 < m) {
        t(i, i + 1) = beta[std::size_t(i)];
        t(i + 1, i) = beta[std::size_t(i)];
      }
    }
    std::vector<R> theta;
    la::heevd(t.view(), theta, z.view());
    const R beta_last = beta.empty() ? R(0) : std::abs(beta.back());
    for (int k = 0; k < m; ++k) {
      const R weight = real_part(conjugate(z(0, k)) * z(0, k));
      dos.emplace_back(theta[std::size_t(k)], weight);
      // Upper bound: top Ritz value plus its residual bound.
      b_sup = std::max(b_sup,
                       theta[std::size_t(k)] +
                           beta_last * std::abs(real_part(z(m - 1, k))));
      mu_1 = std::min(mu_1, theta[std::size_t(k)]);
    }
  }
  return {std::move(dos), b_sup, mu_1};
}

}  // namespace detail

template <typename HOp, typename T = typename HOp::Scalar>
SpectralBounds<RealType<T>> lanczos_bounds(HOp& h,
                                           la::Index ne, int steps, int nvec,
                                           std::uint64_t seed) {
  using R = RealType<T>;
  const la::Index n = h.global_size();
  auto quad = detail::lanczos_quadrature(h, steps, nvec, seed);
  const R b_sup = quad.b_sup;
  const R mu_1 = quad.mu_1;

  // DoS quantile: smallest theta whose cumulative weight covers ne/N of the
  // spectral measure (each run contributes total weight 1, averaged).
  std::sort(quad.dos.begin(), quad.dos.end());
  const R target = R(ne) / R(n) * R(nvec);
  R cum = 0;
  R mu_ne = b_sup;
  for (const auto& [theta, wgt] : quad.dos) {
    cum += wgt;
    if (cum >= target) {
      mu_ne = theta;
      break;
    }
  }
  // Keep the damped interval non-degenerate.
  mu_ne = std::min(std::max(mu_ne, mu_1 + R(1e-8) * (b_sup - mu_1)),
                   b_sup - R(1e-8) * std::max(std::abs(b_sup), R(1)));
  return {b_sup, mu_1, mu_ne};
}

}  // namespace chase::core
