// Stochastic Density-of-States estimation via Lanczos quadrature.
//
// Each Lanczos run from a random vector yields Ritz values theta_k with
// Gaussian-quadrature weights |e_1^T y_k|^2; averaging the discrete measures
// over several runs approximates the spectral density phi(t) = (1/N) sum_i
// delta(t - lambda_i). ChASE uses the ne/N quantile of this measure to place
// the lower edge of the damped interval (core/lanczos.hpp); this header
// exposes the full estimate for applications (e.g. choosing nev so a physical
// energy window is covered), plus a histogram helper.
#pragma once

#include <algorithm>
#include <vector>

#include "core/lanczos.hpp"

namespace chase::core {

template <typename R>
struct DosEstimate {
  /// Quadrature nodes (Ritz values, ascending) and weights; each Lanczos run
  /// contributes total weight 1/nvec, so the weights sum to ~1.
  std::vector<R> nodes;
  std::vector<R> weights;
  R lower = 0;  // smallest Ritz value seen
  R upper = 0;  // safeguarded spectral upper bound

  /// Estimated number of eigenvalues <= tau (out of n).
  R cumulative_count(R tau, la::Index n) const {
    R acc = 0;
    for (std::size_t i = 0; i < nodes.size() && nodes[i] <= tau; ++i) {
      acc += weights[i];
    }
    return acc * R(n);
  }

  /// Smallest node whose cumulative spectral count reaches `count`.
  R quantile(R count, la::Index n) const {
    R acc = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      acc += weights[i] * R(n);
      if (acc >= count) return nodes[i];
    }
    return upper;
  }
};

/// Run the Lanczos quadrature on a distributed Hermitian matrix.
template <typename HOp, typename T = typename HOp::Scalar>
DosEstimate<RealType<T>> estimate_dos(HOp& h,
                                      int steps, int nvec,
                                      std::uint64_t seed) {
  using R = RealType<T>;
  auto raw = detail::lanczos_quadrature(h, steps, nvec, seed);
  DosEstimate<R> out;
  out.lower = raw.mu_1;
  out.upper = raw.b_sup;
  std::sort(raw.dos.begin(), raw.dos.end());
  out.nodes.reserve(raw.dos.size());
  out.weights.reserve(raw.dos.size());
  for (const auto& [theta, w] : raw.dos) {
    out.nodes.push_back(theta);
    out.weights.push_back(w / R(nvec));
  }
  return out;
}

/// Smooth the discrete estimate into `bins` equal-width histogram buckets
/// over [lower, upper]; returns per-bin spectral mass (sums to ~1).
template <typename R>
std::vector<R> dos_histogram(const DosEstimate<R>& dos, int bins) {
  CHASE_CHECK(bins >= 1);
  std::vector<R> hist(static_cast<std::size_t>(bins), R(0));
  const R lo = dos.lower;
  const R width = (dos.upper - dos.lower) / R(bins);
  if (!(width > R(0))) return hist;
  for (std::size_t i = 0; i < dos.nodes.size(); ++i) {
    int b = int((dos.nodes[i] - lo) / width);
    b = std::clamp(b, 0, bins - 1);
    hist[std::size_t(b)] += dos.weights[i];
  }
  return hist;
}

}  // namespace chase::core
