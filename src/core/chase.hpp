// The ChASE eigensolver driver — Algorithm 2 of the paper: the novel
// parallelization scheme with the distributed 1D-CAQR, the row/column-
// communicator Rayleigh-Ritz, distributed residuals, and deflation/locking.
//
// The driver is a thin front-end over the layered solver engine (the
// architecture of the real ChASE library): the subspace iteration is a
// stage list (core/engine/stages.hpp) driven by one pipeline
// (core/engine/pipeline.hpp) against an abstract DLA backend
// (core/dla.hpp), over a zero-allocation workspace arena
// (core/engine/workspace.hpp). This driver instantiates the v1.4 backend
// (DenseDlaBackend).
//
// The same driver covers every build of the library:
//   * sequential     — pass a DistHermitianMatrix on a 1x1 grid with a
//                      default-constructed (self) Communicator;
//   * distributed    — run inside a comm::Team on a p x q grid;
//   * STD vs NCCL    — choose the Team's Backend; the algorithm is
//                      identical, only the collective cost accounting (and
//                      the staging copies of the STD path) differ.
// The legacy v1.2 scheme lives separately in legacy_lms.hpp — same
// pipeline and stage bodies, different backend and guard policy.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "ckpt/engine.hpp"
#include "common/log.hpp"
#include "core/config.hpp"
#include "core/degrees.hpp"
#include "core/dla_dense.hpp"
#include "core/dla_mixed.hpp"
#include "core/precision.hpp"
#include "core/engine/pipeline.hpp"
#include "core/engine/stages.hpp"
#include "core/filter.hpp"
#include "core/lanczos.hpp"
#include "core/types.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/multivector.hpp"
#include "la/heevd.hpp"
#include "la/stedc.hpp"
#include "qr/condest.hpp"
#include "qr/qr_selector.hpp"
#include "tune/runtime.hpp"

namespace chase::core {

/// Solve for the nev lowest eigenpairs of the distributed Hermitian matrix.
///
/// On return, `eigenvectors` holds the local C-layout rows of the converged
/// Ritz vectors (use dist::gather_rows to assemble them, or keep them
/// distributed — DFT codes consume them in place).
///
/// `initial_subspace`, if non-empty, seeds the leading columns of the search
/// space with approximate eigenvectors (local C-layout rows, up to nev+nex
/// columns; the rest is filled randomly). This is the warm start that makes
/// ChASE effective on DFT self-consistency sequences (Section 1): correlated
/// consecutive Hamiltonians re-converge in a fraction of the MatVecs.
/// `ck` optionally wires in the checkpoint/restart engine (src/ckpt):
/// ck.engine captures snapshots at iteration boundaries under its cadence,
/// ck.resume restores a decoded snapshot instead of running the Lanczos
/// bounds pass and the random seeding — iteration numbering continues where
/// the snapshot left off, making the resumed solve bitwise-equal to an
/// uninterrupted one.
/// `ws_external`, if non-null, is the workspace arena to solve over instead
/// of a driver-local one — the solver-service pool (src/svc) passes cleared
/// pooled arenas here so back-to-back jobs allocate nothing. The arena must
/// be value-cleared (SolverWorkspace::clear_values) or fresh; setup() resizes
/// it to this problem's shape.
template <typename HOp, typename T = typename HOp::Scalar>
ChaseResult<T> solve(HOp& h, const ChaseConfig& cfg,
                     ChaseObserver<T>* observer = nullptr,
                     la::ConstMatrixView<T> initial_subspace = {},
                     const ckpt::SolveCkpt<T>& ck = {},
                     engine::SolverWorkspace<T>* ws_external = nullptr) {
  const Index ne = cfg.subspace();
  CHASE_CHECK_MSG(cfg.nev > 0 && ne <= h.global_size(), "invalid nev/nex");
  CHASE_CHECK_MSG(cfg.initial_degree >= 2, "invalid initial degree");

  // Resolve the autotuning profile (CHASE_PROFILE / CHASE_TUNE_REPLAY, once
  // per process) and record per-domain policy provenance for this solve.
  tune::resolve_at_solve_start();

  // Backend selection: the CHASE_PRECISION policy swaps in the
  // mixed-precision backend (fp32 filtering, fp64 everything else) when the
  // operator can be shadowed in low precision; matrix-free operators and
  // non-double scalars always solve in pure working precision.
  DenseDlaBackend<HOp> dla_plain(h);
  std::optional<MixedBackendFor<HOp, DenseDlaBackend<HOp>>> dla_mixed;
  DlaBackend<T>& dla = select_backend(h, dla_plain, dla_mixed);
  engine::SolverWorkspace<T> ws_local;
  engine::SolverWorkspace<T>& ws =
      ws_external != nullptr ? *ws_external : ws_local;
  dla.setup(ws, cfg);

  ChaseResult<T> result;
  engine::SolveContext<T> ctx{cfg, observer, result, ws};
  int first_iter = 1;
  if (ck.resume != nullptr) {
    ckpt::apply_resume(*ck.resume, ctx, dla);
    first_iter = int(ck.resume->iter) + 1;
  } else {
    result.bounds = dla.estimate_bounds(cfg);
    engine::seed_initial_subspace<T>(ws, dla, cfg, initial_subspace);
    ctx.init_from_bounds();
  }

  engine::PrepStage<T> prep;
  engine::FilterStage<T> filter(/*recover=*/true);
  engine::QrStage<T> qr;
  engine::RayleighRitzStage<T> rr;
  engine::ResidualStage<T> residual;
  engine::LockingStage<T> locking;
  ckpt::CheckpointStage<T> checkpoint(ck.engine);
  std::vector<engine::Stage<T>*> stages{&prep, &filter,   &qr,
                                        &rr,   &residual, &locking};
  if (ck.engine != nullptr && ck.engine->enabled()) {
    stages.push_back(&checkpoint);
  }
  engine::run_pipeline(ctx, dla, stages, first_iter);

  const Index mloc = dla.c_rows();
  result.eigenvalues.assign(ctx.ritz.begin(), ctx.ritz.begin() + cfg.nev);
  result.eigenvectors.resize(mloc, cfg.nev);
  la::copy(ws.c().block(0, 0, mloc, cfg.nev).as_const(),
           result.eigenvectors.view());
  return result;
}

}  // namespace chase::core
