// The ChASE eigensolver driver — Algorithm 2 of the paper: the novel
// parallelization scheme with the distributed 1D-CAQR, the row/column-
// communicator Rayleigh-Ritz, distributed residuals, and deflation/locking.
//
// The same driver covers every build of the library:
//   * sequential     — pass a DistHermitianMatrix on a 1x1 grid with a
//                      default-constructed (self) Communicator;
//   * distributed    — run inside a comm::Team on a p x q grid;
//   * STD vs NCCL    — choose the Team's Backend; the algorithm is
//                      identical, only the collective cost accounting (and
//                      the staging copies of the STD path) differ.
// The legacy v1.2 scheme lives separately in legacy_lms.hpp.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/log.hpp"
#include "core/config.hpp"
#include "core/degrees.hpp"
#include "core/filter.hpp"
#include "core/lanczos.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/multivector.hpp"
#include "la/heevd.hpp"
#include "la/stedc.hpp"
#include "qr/condest.hpp"
#include "qr/qr_selector.hpp"

namespace chase::core {

/// Hook for experiment instrumentation (e.g. the Figure 1 bench computes the
/// exact kappa_2 of the filtered block after every filter call).
template <typename T>
class ChaseObserver {
 public:
  virtual ~ChaseObserver() = default;
  /// Called after the filter, before the QR. `c_local` is the local C block
  /// (all subspace columns); columns [locked, ne) are the freshly filtered
  /// ones the Algorithm-5 estimate `est_cond` refers to.
  virtual void after_filter(int /*iteration*/, int /*locked*/,
                            la::ConstMatrixView<T> /*c_local*/,
                            double /*est_cond*/) {}
  virtual void after_iteration(const IterationStats& /*stats*/) {}
};

template <typename T>
struct ChaseResult {
  std::vector<RealType<T>> eigenvalues;  // nev lowest, ascending
  la::Matrix<T> eigenvectors;            // local C-layout rows x nev
  bool converged = false;
  int iterations = 0;
  long matvecs = 0;
  SpectralBounds<RealType<T>> bounds;
  std::vector<IterationStats> stats;
};

namespace detail {

/// Apply permutation `perm` (new position j takes old column perm[j]) to the
/// columns [first, first+count) of `m` and entries of the aligned arrays.
template <typename T, typename R>
void permute_active(la::MatrixView<T> m, Index first,
                    const std::vector<Index>& perm, std::vector<R>& ritz,
                    std::vector<R>& resid, std::vector<int>& degs,
                    la::Matrix<T>& scratch) {
  const Index count = Index(perm.size());
  scratch.resize(m.rows(), count);
  std::vector<R> ritz_old(ritz.begin() + first, ritz.begin() + first + count);
  std::vector<R> res_old(resid.begin() + first, resid.begin() + first + count);
  std::vector<int> deg_old(degs.begin() + first, degs.begin() + first + count);
  for (Index j = 0; j < count; ++j) {
    const Index src = perm[std::size_t(j)];
    std::copy(m.col(first + src), m.col(first + src) + m.rows(),
              scratch.col(j));
    ritz[std::size_t(first + j)] = ritz_old[std::size_t(src)];
    resid[std::size_t(first + j)] = res_old[std::size_t(src)];
    degs[std::size_t(first + j)] = deg_old[std::size_t(src)];
  }
  for (Index j = 0; j < count; ++j) {
    std::copy(scratch.col(j), scratch.col(j) + m.rows(), m.col(first + j));
  }
}

}  // namespace detail

/// Solve for the nev lowest eigenpairs of the distributed Hermitian matrix.
///
/// On return, `eigenvectors` holds the local C-layout rows of the converged
/// Ritz vectors (use dist::gather_rows to assemble them, or keep them
/// distributed — DFT codes consume them in place).
///
/// `initial_subspace`, if non-empty, seeds the leading columns of the search
/// space with approximate eigenvectors (local C-layout rows, up to nev+nex
/// columns; the rest is filled randomly). This is the warm start that makes
/// ChASE effective on DFT self-consistency sequences (Section 1): correlated
/// consecutive Hamiltonians re-converge in a fraction of the MatVecs.
template <typename HOp, typename T = typename HOp::Scalar>
ChaseResult<T> solve(HOp& h, const ChaseConfig& cfg,
                     ChaseObserver<T>* observer = nullptr,
                     la::ConstMatrixView<T> initial_subspace = {}) {
  using R = RealType<T>;
  const auto& grid = h.grid();
  const auto& rmap = h.row_map();
  const auto& cmap = h.col_map();
  const Index n = h.global_size();
  const Index ne = cfg.subspace();
  CHASE_CHECK_MSG(cfg.nev > 0 && ne <= n, "invalid nev/nex");
  CHASE_CHECK_MSG(cfg.initial_degree >= 2, "invalid initial degree");

  const Index mloc = rmap.local_size(grid.my_row());
  const Index bloc = cmap.local_size(grid.my_col());

  // Algorithm 2 buffers: C/C2 in the C layout, B/B2 in the B layout, plus
  // the redundant n_e x n_e Rayleigh quotient (allocated per iteration at
  // the exact active size so its storage is contiguous for the allreduce).
  // This is the Eq. (2) memory footprint.
  la::Matrix<T> c(mloc, ne), c2(mloc, ne), b(bloc, ne), b2(bloc, ne);
  la::Matrix<T> scratch;

  ChaseResult<T> result;
  if (cfg.use_custom_bounds) {
    CHASE_CHECK_MSG(cfg.custom_mu_1 < cfg.custom_mu_ne &&
                        cfg.custom_mu_ne < cfg.custom_b_sup,
                    "custom bounds must satisfy mu_1 < mu_ne < b_sup");
    result.bounds = {R(cfg.custom_b_sup), R(cfg.custom_mu_1),
                     R(cfg.custom_mu_ne)};
  } else {
    result.bounds = lanczos_bounds(h, ne, cfg.lanczos_steps,
                                   cfg.lanczos_vectors, cfg.seed);
  }
  const R b_sup = result.bounds.b_sup;
  R mu_1 = result.bounds.mu_1;
  R mu_ne = result.bounds.mu_ne;
  R center = (b_sup + mu_ne) / R(2);
  R half = (b_sup - mu_ne) / R(2);
  // Residuals are measured relative to the spectral-norm estimate.
  const R scale = std::max(std::abs(b_sup), std::abs(mu_1));
  const R tol = R(cfg.tol);

  // Initial subspace: user-provided approximate eigenvectors in the leading
  // columns (if any), the rest random — reproducible across grid shapes
  // (entry of global row g, column j depends only on (seed, j, g)).
  Index given = 0;
  if (!initial_subspace.empty()) {
    CHASE_CHECK_MSG(initial_subspace.rows() == mloc &&
                        initial_subspace.cols() <= ne,
                    "initial subspace: expected local C-layout rows and at "
                    "most nev+nex columns");
    given = initial_subspace.cols();
    la::copy(initial_subspace, c.block(0, 0, mloc, given));
  }
  for (const auto& run : rmap.runs(grid.my_row())) {
    for (Index j = given; j < ne; ++j) {
      for (Index k = 0; k < run.length; ++k) {
        c(run.local_begin + k, j) = lanczos_entry<T>(
            cfg.seed, std::uint64_t(1000 + j), run.global_begin + k);
      }
    }
  }

  // Ritz bookkeeping. Before the first Rayleigh-Ritz no Ritz values exist;
  // mu_1 is the natural stand-in (Algorithm 5's first-iteration estimate
  // only consumes the most extremal value; see Section 4.2's remark on the
  // first-iteration mismatch).
  std::vector<R> ritz(std::size_t(ne), mu_1);
  std::vector<R> resid(std::size_t(ne), R(1));
  std::vector<int> degs(std::size_t(ne), round_up_even(cfg.initial_degree));
  Index locked = 0;
  int nan_recoveries = 0;  // bounded per solve; see the filter guard below

  for (int iter = 1; iter <= cfg.max_iterations; ++iter) {
    IterationStats stats;
    stats.iteration = iter;
    stats.locked_before = int(locked);
    const Index act = ne - locked;

    if (iter > 1) {
      // updateBounds (Algorithm 2 lines 5-7).
      mu_1 = *std::min_element(ritz.begin(), ritz.end());
      mu_ne = *std::max_element(ritz.begin(), ritz.end());
      center = (b_sup + mu_ne) / R(2);
      half = (b_sup - mu_ne) / R(2);
      if (!(half > R(0)) || !std::isfinite(half) || !std::isfinite(mu_1)) {
        // Ritz values escaped above b_sup: the spectral upper bound was
        // wrong (possible with user-supplied bounds) and the filter cannot
        // proceed. Report non-convergence instead of aborting.
        CHASE_LOG_INFO(
            "damping interval collapsed (b_sup underestimated?); "
            "aborting solve");
        break;
      }
      if (cfg.optimize_degree) {
        optimize_degrees(ritz, resid, tol, center, half, int(locked),
                         cfg.max_degree, degs);
      } else {
        std::fill(degs.begin() + locked, degs.end(),
                  round_up_even(cfg.initial_degree));
      }
      // Sort the active columns by degree ascending (Algorithm 1 line 12):
      // the filter then processes a shrinking suffix.
      std::vector<Index> perm(static_cast<std::size_t>(act));
      std::iota(perm.begin(), perm.end(), Index(0));
      std::stable_sort(perm.begin(), perm.end(), [&](Index x, Index y) {
        return degs[std::size_t(locked + x)] < degs[std::size_t(locked + y)];
      });
      detail::permute_active(c.view(), locked, perm, ritz, resid, degs,
                             scratch);
    }

    // Filter the active columns (Algorithm 2 line 10).
    std::vector<int> act_degs(degs.begin() + locked, degs.end());
    stats.degrees = act_degs;
    stats.matvecs = chebyshev_filter(
        h, c.block(0, locked, mloc, act), b.block(0, locked, bloc, act),
        act_degs, center, half, mu_1);
    result.matvecs += stats.matvecs;

    // Filter divergence guard, by consensus so every rank takes the same
    // branch (C is identical across grid columns and the column-communicator
    // reduction covers the row distribution). Two distinct failure shapes:
    //  * every active column is non-finite — the recurrence itself blew up,
    //    i.e. b_sup underestimated the spectrum; no amount of re-randomizing
    //    can fix a wrong damping interval, so stop cleanly;
    //  * some columns are corrupt (a flipped bit, a transport corruption, an
    //    injected filter.nan) — re-randomize exactly those columns and rerun
    //    the iteration, bounded per solve so persistent corruption still
    //    terminates.
    {
      perf::RegionScope guard_scope(perf::Region::kFilter);
      std::vector<R> col_ok(std::size_t(act), R(1));
      for (Index j = 0; j < act; ++j) {
        for (Index i = 0; i < mloc; ++i) {
          const R mag = abs_value(c(i, locked + j));
          if (!std::isfinite(mag) || mag > R(1e140)) {
            col_ok[std::size_t(j)] = R(0);
            break;
          }
        }
      }
      grid.col_comm().all_reduce(col_ok.data(), act, comm::Reduction::kMin);
      const Index bad = act - Index(std::count(col_ok.begin(), col_ok.end(),
                                               R(1)));
      if (bad == act) {
        CHASE_LOG_INFO("filter diverged (b_sup too small?); aborting solve");
        result.iterations = iter;
        break;
      }
      if (bad > 0) {
        if (nan_recoveries >= 3) {
          CHASE_LOG_INFO(
              "filter output corrupt after repeated re-randomization; "
              "aborting solve");
          result.iterations = iter;
          break;
        }
        // Replace the corrupt columns with fresh deterministic random
        // vectors (a salted stream so retries never reuse a seed) and rerun
        // the iteration; the healthy columns keep their filtered state and
        // the next QR re-orthogonalizes everything.
        for (Index j = 0; j < act; ++j) {
          if (col_ok[std::size_t(j)] == R(1)) continue;
          const auto stream = std::uint64_t(500000 + nan_recoveries * ne +
                                            (locked + j));
          for (const auto& run : rmap.runs(grid.my_row())) {
            for (Index k = 0; k < run.length; ++k) {
              c(run.local_begin + k, locked + j) =
                  lanczos_entry<T>(cfg.seed, stream, run.global_begin + k);
            }
          }
          resid[std::size_t(locked + j)] = R(1);
        }
        ++nan_recoveries;
        perf::bump_counter("filter.nan_recovery", double(bad));
        CHASE_LOG_INFO("filter produced non-finite columns; re-randomized");
        result.stats.push_back(stats);
        result.iterations = iter;
        continue;
      }
    }

    // Condition estimate of the filtered block (Algorithm 2 line 11).
    stats.est_cond =
        double(qr::estimate_filtered_cond(ritz, center, half, degs,
                                          int(locked)));
    if (observer != nullptr) {
      observer->after_filter(iter, int(locked), c.view(), stats.est_cond);
    }

    // Distributed 1D-CAQR over the column communicator (line 12), on the
    // full subspace so the fresh vectors are orthogonalized against the
    // locked ones; then re-inject the locked columns from C2 (line 13).
    auto qr_report =
        qr::caqr_1d(c.view(), rmap, grid.col_comm(), stats.est_cond, cfg.qr);
    stats.qr_variant = qr_report.selected;
    stats.qr_used = qr_report.used;
    stats.qr_fallback = qr_report.hhqr_fallback;
    stats.qr_potrf_failures = qr_report.potrf_failures;
    if (locked > 0) {
      la::copy(c2.block(0, 0, mloc, locked).as_const(),
               c.block(0, 0, mloc, locked));
    }
    la::copy(c.block(0, locked, mloc, act).as_const(),
             c2.block(0, locked, mloc, act));

    // ---- Rayleigh-Ritz (lines 14-20) ----
    {
      perf::RegionScope rr(perf::Region::kRayleighRitz);
      auto c2_act = c2.block(0, locked, mloc, act);
      auto b2_act = b2.block(0, locked, bloc, act);
      dist::redistribute_c2b<T>(grid, rmap, cmap, c2_act.as_const(), b2_act);
      auto b_act = b.block(0, locked, bloc, act);
      h.apply_c2b(T(1), c.block(0, locked, mloc, act).as_const(), T(0), b_act);

      la::Matrix<T> a_act(act, act);
      la::gemm(T(1), la::Op::kConjTrans, b2_act.as_const(), la::Op::kNoTrans,
               b_act.as_const(), T(0), a_act.view());
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 8.0 : 2.0;
        t->add_flops(perf::FlopClass::kGemm,
                     z * double(bloc) * double(act) * double(act));
      }
      grid.row_comm().all_reduce(a_act.data(), act * act);

      // Redundant diagonalization of the Rayleigh quotient (line 18),
      // via implicit QL or Divide & Conquer (Section 2.1's reference [14]).
      std::vector<R> theta;
      la::Matrix<T> evec_act(act, act);
      if (cfg.rr_solver == RrSolver::kDivideConquer) {
        la::heevd_dc(a_act.view(), theta, evec_act.view());
      } else {
        la::heevd(a_act.view(), theta, evec_act.view());
      }
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 4.0 : 1.0;
        t->add_flops(perf::FlopClass::kSmall,
                     z * 9.0 * double(act) * double(act) * double(act));
      }
      std::copy(theta.begin(), theta.end(), ritz.begin() + locked);

      // Back-transform (line 19): C_act = C2_act * Y, then refresh C2.
      la::gemm(T(1), c2_act.as_const(), evec_act.cview(), T(0),
               c.block(0, locked, mloc, act));
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 8.0 : 2.0;
        t->add_flops(perf::FlopClass::kGemm,
                     z * double(mloc) * double(act) * double(act));
      }
      la::copy(c.block(0, locked, mloc, act).as_const(), c2_act);
    }

    // ---- Residuals (lines 21-26) ----
    {
      perf::RegionScope res(perf::Region::kResidual);
      auto c2_act = c2.block(0, locked, mloc, act);
      auto b2_act = b2.block(0, locked, bloc, act);
      dist::redistribute_c2b<T>(grid, rmap, cmap, c2_act.as_const(), b2_act);
      auto b_act = b.block(0, locked, bloc, act);
      h.apply_c2b(T(1), c.block(0, locked, mloc, act).as_const(), T(0), b_act);

      std::vector<R> nrm(std::size_t(act), R(0));
      for (Index j = 0; j < act; ++j) {
        const R lambda = ritz[std::size_t(locked + j)];
        T* bj = b_act.col(j);
        const T* b2j = b2_act.col(j);
        R acc(0);
        for (Index i = 0; i < bloc; ++i) {
          const T d = bj[i] - T(lambda) * b2j[i];
          acc += real_part(conjugate(d) * d);
        }
        nrm[std::size_t(j)] = acc;
      }
      if (auto* t = perf::thread_tracker()) {
        t->add_mem_bytes(3.0 * double(bloc) * double(act) * sizeof(T));
      }
      grid.row_comm().all_reduce(nrm.data(), act);
      for (Index j = 0; j < act; ++j) {
        resid[std::size_t(locked + j)] =
            std::sqrt(nrm[std::size_t(j)]) / scale;
      }
    }

    // ---- Deflation & locking (line 27) ----
    Index new_locked = 0;
    while (locked + new_locked < ne &&
           resid[std::size_t(locked + new_locked)] < tol) {
      ++new_locked;
    }
    locked += new_locked;
    stats.locked_after = int(locked);
    // Residual spread over this iteration's active set (empty if everything
    // locked at once).
    const auto res_begin = resid.begin() + (locked - new_locked);
    if (res_begin != resid.end()) {
      stats.min_residual = double(*std::min_element(res_begin, resid.end()));
      stats.max_residual = double(*std::max_element(res_begin, resid.end()));
    }
    result.stats.push_back(stats);
    result.iterations = iter;
    if (observer != nullptr) observer->after_iteration(stats);

    if (locked >= cfg.nev) {
      result.converged = true;
      break;
    }
  }

  result.eigenvalues.assign(ritz.begin(), ritz.begin() + cfg.nev);
  result.eigenvectors.resize(mloc, cfg.nev);
  la::copy(c.block(0, 0, mloc, cfg.nev).as_const(),
           result.eigenvectors.view());
  return result;
}

}  // namespace chase::core
