// Mixed-precision DLA backend: the Chebyshev filter runs in fp32 /
// complex<float> on a low-precision shadow of H, everything else — QR,
// Rayleigh-Ritz, residuals, locking — stays in the working fp64 types of the
// wrapped base backend. This is the mixed-precision scheme the production
// ChASE library ships (Wu et al., SC 2023): the filter dominates the flop
// and byte budget, low-precision filtering merely perturbs the subspace the
// fp64 Rayleigh-Ritz then corrects, and the residual framework detects when
// fp32 rounding starts limiting a column's convergence.
//
// Layering: MixedDlaBackend<HOp, Base> derives from either fp64 backend
// (DenseDlaBackend for the v1.4 scheme, RedundantDlaBackend for the legacy
// LMS scheme — the latter inherits the dense filter, so one override covers
// both) and replaces only
//   * filter_apply       — demote the active panel, filter on the fp32
//                          shadow (halved flops through the f/c micro
//                          kernels, halved allreduce payloads through the
//                          templated collectives), promote the result back;
//                          columns the promotion policy has flagged are
//                          packed separately and filtered in fp64;
//   * observe_residuals  — feed the replicated post-iteration residuals to
//                          the PromotionPolicy (per-column fp64 fallback on
//                          stall or on approaching the fp32 floor,
//                          whole-subspace fallback on stagnation);
//   * refine_locked      — one step of iterative refinement before pairs
//                          freeze: recompute the Rayleigh quotient of each
//                          candidate column in fp64 and re-evaluate its
//                          residual, so locked pairs are indistinguishable
//                          from a pure-fp64 run at the solver tolerance.
//
// Collective safety: the promotion mask is derived from allreduced
// residuals and the replicated locked count, so every rank partitions the
// active columns identically and the shadow filter's reductions stay
// aligned across the grid.
#pragma once

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "core/dla_dense.hpp"
#include "core/precision.hpp"
#include "dist/dist_matrix.hpp"
#include "la/convert.hpp"

namespace chase::core {

/// Operators the mixed backend can shadow in low precision: the working
/// scalar has a lower partner and the operator exposes the explicit local
/// block plus the grid/maps needed to build a DistHermitianMatrix shadow.
/// Matrix-free operators fail this and solve in pure fp64.
template <typename HOp>
concept MixedShadowCapable =
    la::kHasLowPrecision<typename HOp::Scalar> && requires(HOp& h) {
      { h.local() };
      { h.grid() };
      { h.row_map() };
      { h.col_map() };
    };

template <typename HOp, typename Base = DenseDlaBackend<HOp>>
  requires MixedShadowCapable<HOp>
class MixedDlaBackend : public Base {
 public:
  using T = typename HOp::Scalar;
  using L = la::LowPrecision<T>;
  using R = RealType<T>;
  using RL = RealType<L>;
  using Workspace = engine::SolverWorkspace<T>;
  using Index = la::Index;

  explicit MixedDlaBackend(HOp& h) : Base(h) {}

  void setup(Workspace& ws, const ChaseConfig& cfg) override {
    Base::setup(ws, cfg);
    ne_ = cfg.subspace();
    policy_ = engine::PromotionPolicy(promotion_config());
    policy_.reset(ne_);
    refresh_shadow();
    const Index mloc = this->c_rows();
    const Index bloc = this->b_rows();
    if (c_low_.rows() != mloc || c_low_.cols() != ne_) {
      c_low_.resize(mloc, ne_);
      b_low_.resize(bloc, ne_);
      c_hi_.resize(mloc, ne_);
      b_hi_.resize(bloc, ne_);
    }
    quot_.reserve(std::size_t(2 * ne_));
    lo_cols_.reserve(std::size_t(ne_));
    hi_cols_.reserve(std::size_t(ne_));
    lo_degs_.reserve(std::size_t(ne_));
    hi_degs_.reserve(std::size_t(ne_));
  }

  long filter_apply(Workspace& ws, Index locked, const std::vector<int>& degs,
                    R center, R half, R mu_1) override {
    const Index act = Index(degs.size());
    if (act == 0) return 0;
    // Whole-subspace fallback, or an interval too tight for fp32 rounding
    // (the narrowed bounds must survive the cast): pure fp64 filtering.
    if (policy_.subspace_fp64() || !(RL(mu_1) < RL(center)) ||
        !(RL(half) > RL(0))) {
      perf::bump_counter("precision.filter.cols.fp64", double(act));
      return Base::filter_apply(ws, locked, degs, center, half, mu_1);
    }

    // Partition the active columns by the promotion mask. Both groups keep
    // the PrepStage's degree-ascending order (a subsequence of a sorted
    // sequence), which the filter's shrinking-suffix loop requires.
    lo_cols_.clear();
    hi_cols_.clear();
    lo_degs_.clear();
    hi_degs_.clear();
    for (Index j = 0; j < act; ++j) {
      if (policy_.column_fp64(locked + j)) {
        hi_cols_.push_back(j);
        hi_degs_.push_back(degs[std::size_t(j)]);
      } else {
        lo_cols_.push_back(j);
        lo_degs_.push_back(degs[std::size_t(j)]);
      }
    }

    const Index mloc = this->c_rows();
    const Index bloc = this->b_rows();
    long matvecs = 0;

    if (!lo_cols_.empty()) {
      const Index nlo = Index(lo_cols_.size());
      {
        // The demote/promote boundary copies are part of the filter's cost.
        perf::RegionScope scope(perf::Region::kFilter);
        for (Index k = 0; k < nlo; ++k) {
          const Index src = locked + lo_cols_[std::size_t(k)];
          la::demote<T>(ws.c().block(0, src, mloc, 1).as_const(),
                        c_low_.block(0, k, mloc, 1));
        }
        if (auto* t = perf::thread_tracker()) {
          t->add_mem_bytes(double(mloc) * double(nlo) *
                           double(sizeof(T) + sizeof(L)));
        }
      }
      matvecs += chebyshev_filter(*h_low_, c_low_.block(0, 0, mloc, nlo),
                                  b_low_.block(0, 0, bloc, nlo), lo_degs_,
                                  RL(center), RL(half), RL(mu_1));
      {
        perf::RegionScope scope(perf::Region::kFilter);
        for (Index k = 0; k < nlo; ++k) {
          const Index dst = locked + lo_cols_[std::size_t(k)];
          la::promote<T>(c_low_.block(0, k, mloc, 1).as_const(),
                         ws.c().block(0, dst, mloc, 1));
        }
        if (auto* t = perf::thread_tracker()) {
          t->add_mem_bytes(double(mloc) * double(nlo) *
                           double(sizeof(T) + sizeof(L)));
        }
      }
      perf::bump_counter("precision.filter.cols.fp32", double(nlo));
    }

    if (!hi_cols_.empty()) {
      const Index nhi = Index(hi_cols_.size());
      {
        perf::RegionScope scope(perf::Region::kFilter);
        for (Index k = 0; k < nhi; ++k) {
          const Index src = locked + hi_cols_[std::size_t(k)];
          la::copy(ws.c().block(0, src, mloc, 1).as_const(),
                   c_hi_.block(0, k, mloc, 1));
        }
      }
      matvecs += chebyshev_filter(*this->h_, c_hi_.block(0, 0, mloc, nhi),
                                  b_hi_.block(0, 0, bloc, nhi), hi_degs_,
                                  center, half, mu_1);
      {
        perf::RegionScope scope(perf::Region::kFilter);
        for (Index k = 0; k < nhi; ++k) {
          const Index dst = locked + hi_cols_[std::size_t(k)];
          la::copy(c_hi_.block(0, k, mloc, 1).as_const(),
                   ws.c().block(0, dst, mloc, 1));
        }
      }
      perf::bump_counter("precision.filter.cols.fp64", double(nhi));
    }
    return matvecs;
  }

  void observe_residuals(Workspace& /*ws*/, Index locked, Index act,
                         const std::vector<R>& resid) override {
    const bool sub_before = policy_.subspace_fp64();
    const long cols_before = policy_.columns_promoted();
    policy_.observe(locked, act, resid);
    const long promoted = policy_.columns_promoted() - cols_before;
    if (promoted > 0) {
      perf::bump_counter("precision.promote.column", double(promoted));
    }
    if (!sub_before && policy_.subspace_fp64()) {
      perf::bump_counter("precision.promote.subspace");
    }
  }

  // One step of iterative refinement on the pairs about to lock: the fp64
  // Rayleigh quotient rho = v^H (H v) / v^H v of each candidate column
  // replaces its Ritz value (computed from the Residual stage's buffers, no
  // extra H apply), and the residuals are re-evaluated against the refined
  // values. The Locking stage recounts afterwards.
  void refine_locked(Workspace& ws, Index locked, Index cand,
                     std::vector<R>& ritz, R scale,
                     std::vector<R>& resid) override {
    perf::RegionScope scope(perf::Region::kResidual);
    ritz_quotients(ws, locked, cand);
    for (Index j = 0; j < cand; ++j) {
      const R q = quot_[std::size_t(j)];
      if (std::isfinite(q)) ritz[std::size_t(locked + j)] = q;
    }
    Base::residual_norms(ws, locked, cand, ritz, scale, resid);
    perf::bump_counter("precision.refine.pairs", double(cand));
  }

  /// Promotion-policy introspection for tests and benches.
  const engine::PromotionPolicy& promotion_policy() const { return policy_; }

 private:
  /// (Re)build the fp32 shadow of H from the operator's pristine local
  /// block. Called at setup, before any diagonal shift is applied.
  void refresh_shadow() {
    const HOp& src = *this->h_;
    if (!h_low_ || h_low_->local_rows() != src.local().rows() ||
        h_low_->local_cols() != src.local().cols()) {
      h_low_.emplace(src.grid(), src.row_map(), src.col_map());
    }
    la::demote<T>(src.local(), h_low_->local());
  }

  /// Fill quot_[0..cand) with the fp64 Rayleigh quotients of the candidate
  /// columns, using the buffers the Residual stage left behind: ws.b holds
  /// H*V in the B layout on every backend; the basis comes from ws.b2 (v1.4)
  /// or the replicated cfull (legacy — indexed by global row through the
  /// column map). Numerators/denominators are summed locally over the
  /// B-layout rows and completed with one 2*cand allreduce over the row
  /// communicator; the quotient of a Hermitian form is real.
  void ritz_quotients(Workspace& ws, Index locked, Index cand) {
    quot_.assign(std::size_t(2 * cand), R(0));
    auto b = ws.b().view();
    if constexpr (std::is_base_of_v<RedundantDlaBackend<HOp, T>, Base>) {
      const auto& cmap = this->h_->col_map();
      for (const auto& run : cmap.runs(this->grid().my_col())) {
        for (Index k = 0; k < run.length; ++k) {
          const Index i = run.local_begin + k;
          const Index g = run.global_begin + k;
          for (Index j = 0; j < cand; ++j) {
            const T v = ws.cfull()(g, locked + j);
            quot_[std::size_t(j)] += real_part(conjugate(v) * b(i, locked + j));
            quot_[std::size_t(cand + j)] += real_part(conjugate(v) * v);
          }
        }
      }
    } else {
      const Index bloc = this->b_rows();
      auto b2 = ws.b2().view();
      for (Index j = 0; j < cand; ++j) {
        R num(0), den(0);
        const T* wj = b.col(locked + j);
        const T* vj = b2.col(locked + j);
        for (Index i = 0; i < bloc; ++i) {
          num += real_part(conjugate(vj[i]) * wj[i]);
          den += real_part(conjugate(vj[i]) * vj[i]);
        }
        quot_[std::size_t(j)] = num;
        quot_[std::size_t(cand + j)] = den;
      }
    }
    coll::checked_all_reduce(this->grid().row_comm(), quot_.data(), 2 * cand);
    for (Index j = 0; j < cand; ++j) {
      const R den = quot_[std::size_t(cand + j)];
      quot_[std::size_t(j)] =
          den > R(0) ? quot_[std::size_t(j)] / den
                     : std::numeric_limits<R>::quiet_NaN();
    }
  }

  Index ne_ = 0;
  std::optional<dist::DistHermitianMatrix<L>> h_low_;  // fp32 shadow of H
  la::Matrix<L> c_low_, b_low_;  // packed low-precision filter panels
  la::Matrix<T> c_hi_, b_hi_;    // packed fp64 panels for promoted columns
  engine::PromotionPolicy policy_;
  std::vector<R> quot_;          // refinement scratch: numerators|denominators
  std::vector<Index> lo_cols_, hi_cols_;
  std::vector<int> lo_degs_, hi_degs_;
};

namespace detail {

template <typename HOp, typename Base, bool kCapable = MixedShadowCapable<HOp>>
struct MixedBackendSelect {
  using type = MixedDlaBackend<HOp, Base>;
};

/// Placeholder for operators that cannot be shadowed (matrix-free, or a
/// scalar with no lower partner): gives the driver's std::optional slot a
/// well-formed type; never constructed at runtime.
template <typename HOp, typename Base>
struct MixedBackendSelect<HOp, Base, false> {
  struct Unavailable {
    explicit Unavailable(HOp&) {}
  };
  using type = Unavailable;
};

}  // namespace detail

template <typename HOp, typename Base>
using MixedBackendFor = typename detail::MixedBackendSelect<HOp, Base>::type;

/// Pick the DLA backend for a solve under the current CHASE_PRECISION
/// policy: the mixed wrapper of `Base` when the policy asks for it and the
/// operator supports shadowing, else the already-constructed plain backend.
template <typename HOp, typename Base, typename T = typename HOp::Scalar>
DlaBackend<T>& select_backend(
    HOp& h, Base& plain, std::optional<MixedBackendFor<HOp, Base>>& mixed) {
  if constexpr (MixedShadowCapable<HOp>) {
    if (precision() == Precision::kMixed) {
      mixed.emplace(h);
      return *mixed;
    }
  }
  (void)h;
  return plain;
}

}  // namespace chase::core
