// Ready-made observer printing the per-iteration convergence table — the
// diagnostic output the examples and benches share.
#pragma once

#include <cstdio>

#include "core/chase.hpp"

namespace chase::core {

/// Prints one line per outer iteration: locking progress, MatVecs, the
/// Algorithm-5 condition estimate, the QR variant the selector picked and
/// the residual range. Attach via the observer argument of core::solve.
template <typename T>
class ProgressPrinter : public ChaseObserver<T> {
 public:
  /// Only `print_rank` emits output (pass the world rank in SPMD regions so
  /// a single copy of the table appears).
  explicit ProgressPrinter(int rank = 0, int print_rank = 0)
      : enabled_(rank == print_rank) {}

  void after_iteration(const IterationStats& s) override {
    if (!enabled_) return;
    if (s.iteration == 1) {
      std::printf("%5s %9s %9s %10s %10s %12s %12s\n", "iter", "locked",
                  "matvecs", "est.cond", "QR", "min resid", "max resid");
    }
    std::printf("%5d %4d->%-4d %9ld %10.2e %10s %12.2e %12.2e%s\n",
                s.iteration, s.locked_before, s.locked_after, s.matvecs,
                s.est_cond,
                std::string(qr::qr_variant_name(s.qr_variant)).c_str(),
                s.min_residual, s.max_residual,
                s.qr_fallback ? "  (HHQR fallback)" : "");
  }

 private:
  bool enabled_;
};

}  // namespace chase::core
