// User-facing configuration of the ChASE solver.
#pragma once

#include <cstdint>

#include "la/matrix.hpp"
#include "qr/qr_selector.hpp"

namespace chase::core {

using la::Index;

/// Dense solver used for the reduced Rayleigh-Ritz problem (Section 2.1
/// names Divide & Conquer as the standard choice; implicit QL is the
/// compact default).
enum class RrSolver { kQl, kDivideConquer };

struct ChaseConfig {
  /// Number of wanted (lowest) eigenpairs.
  Index nev = 0;
  /// Extra search directions; the subspace has nev + nex columns. The paper
  /// typically uses 10-40% of nev.
  Index nex = 0;
  /// Residual threshold ||H v - lambda v|| / |b_sup| for locking.
  double tol = 1e-10;
  /// Chebyshev degree of the first filter call (and of every call when
  /// degree optimization is off). Forced even.
  int initial_degree = 20;
  /// Per-vector degree optimization (Algorithm 1 line 11 / Section 4.2 opt).
  bool optimize_degree = true;
  /// Cap on optimized degrees, "to avoid the matrix of vectors becoming too
  /// ill-conditioned" (Section 4.2 uses 36).
  int max_degree = 36;
  /// Outer iteration cap.
  int max_iterations = 40;
  /// Lanczos parameters for the spectral-bound / DoS estimation.
  int lanczos_steps = 25;
  int lanczos_vectors = 4;
  /// Seed for the random initial subspace (reproducible across grids).
  std::uint64_t seed = 2023;
  /// QR options (e.g. force Householder QR for the Table 2 baseline).
  qr::QrOptions qr;
  /// Eigensolver for the reduced n_e x n_e Rayleigh-Ritz problem.
  RrSolver rr_solver = RrSolver::kQl;
  /// Expert override of the Lanczos spectral estimation (the real ChASE
  /// exposes the same knobs: DFT codes often know their spectral envelope).
  /// When enabled, the Lanczos/DoS pass is skipped entirely. The filter
  /// diverges if custom_b_sup underestimates lambda_max; the driver detects
  /// the blow-up and reports converged = false instead of propagating NaNs.
  bool use_custom_bounds = false;
  double custom_b_sup = 0;
  double custom_mu_1 = 0;
  double custom_mu_ne = 0;

  Index subspace() const { return nev + nex; }
};

/// Convergence/diagnostic record of one outer iteration.
struct IterationStats {
  int iteration = 0;
  int locked_before = 0;
  int locked_after = 0;
  long matvecs = 0;           // MatVec count of this iteration's filter
  double est_cond = 0;        // Algorithm 5 estimate for the filtered block
  qr::QrVariant qr_variant = qr::QrVariant::kCholQr2;  // heuristic pick
  qr::QrVariant qr_used = qr::QrVariant::kCholQr2;     // ladder outcome
  bool qr_fallback = false;
  int qr_potrf_failures = 0;  // POTRF breakdowns escalated this iteration
  double min_residual = 0;
  double max_residual = 0;
  /// Workspace-arena growth events during this iteration. Zero for every
  /// steady-state iteration (>= 2) by construction of the engine; asserted
  /// by the engine test suite.
  long workspace_allocs = 0;
  /// Filter degrees of the active columns (ascending). Used by the strong-
  /// scaling bench to replay the measured iteration structure at full scale.
  std::vector<int> degrees;
};

}  // namespace chase::core
