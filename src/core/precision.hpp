// Runtime precision policy for the solver pipeline.
//
// Mirrors the kernel policies (src/la/gemm_policy.hpp, src/coll/engine.hpp):
// the process picks one solve precision for every core::solve / solve_lms
// call,
//
//   CHASE_PRECISION = double | mixed   (default: the CMake cache variable
//       CHASE_DEFAULT_PRECISION baked into the build)
//
//   double — every kernel runs in the working scalar type; bitwise identical
//            to the pre-mixed-precision library.
//   mixed  — the Chebyshev filter runs in fp32/complex<float> on a shadow
//            copy of H (core/dla_mixed.hpp) while QR, Rayleigh-Ritz and
//            residuals stay in fp64; a residual-driven promotion policy
//            (core/engine/promotion.hpp) drops columns — or the whole
//            subspace — back to fp64 when fp32 rounding limits convergence,
//            and one step of iterative refinement polishes pairs before
//            they lock.
//
// The policy is process-global and cheap to read (one relaxed atomic load);
// ScopedPrecision lets benches and tests flip it per section. Single-
// precision instantiations (T = float / complex<float>) ignore the policy —
// there is nothing lower to demote into.
#pragma once

#include <optional>
#include <string_view>

#include "core/engine/promotion.hpp"

namespace chase::core {

enum class Precision : int { kDouble = 0, kMixed };

std::string_view precision_name(Precision p);
std::optional<Precision> parse_precision(std::string_view name);

/// Process-global policy; initialized from CHASE_PRECISION (falling back to
/// the build-time default) on first use.
Precision precision();
void set_precision(Precision p);

/// RAII policy override for benches and tests.
class ScopedPrecision {
 public:
  explicit ScopedPrecision(Precision p) : prev_(precision()) {
    set_precision(p);
  }
  ~ScopedPrecision() { set_precision(prev_); }
  ScopedPrecision(const ScopedPrecision&) = delete;
  ScopedPrecision& operator=(const ScopedPrecision&) = delete;

 private:
  Precision prev_;
};

/// Process-global promotion-policy tuning the mixed backend reads at setup;
/// tests pin aggressive configs through ScopedPromotionConfig to drive the
/// fallback paths deterministically.
engine::PromotionConfig promotion_config();
void set_promotion_config(const engine::PromotionConfig& cfg);

class ScopedPromotionConfig {
 public:
  explicit ScopedPromotionConfig(const engine::PromotionConfig& cfg)
      : prev_(promotion_config()) {
    set_promotion_config(cfg);
  }
  ~ScopedPromotionConfig() { set_promotion_config(prev_); }
  ScopedPromotionConfig(const ScopedPromotionConfig&) = delete;
  ScopedPromotionConfig& operator=(const ScopedPromotionConfig&) = delete;

 private:
  engine::PromotionConfig prev_;
};

}  // namespace chase::core
