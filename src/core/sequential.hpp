// Convenience entry point for shared-memory use: runs the Algorithm 2 driver
// on a 1x1 grid with a self communicator (every collective degenerates to a
// no-op), so the sequential and distributed paths share one implementation.
#pragma once

#include "core/chase.hpp"

namespace chase::core {

/// Solve for the nev lowest eigenpairs of a full Hermitian matrix held in
/// memory. The returned eigenvectors are the full n x nev block.
/// `initial_subspace` (n x k, k <= nev+nex) optionally warm-starts the
/// search space with approximate eigenvectors.
template <typename T>
ChaseResult<T> solve_sequential(la::ConstMatrixView<T> h_full,
                                const ChaseConfig& cfg,
                                ChaseObserver<T>* observer = nullptr,
                                la::ConstMatrixView<T> initial_subspace = {},
                                const ckpt::SolveCkpt<T>& ck = {}) {
  CHASE_CHECK(h_full.rows() == h_full.cols());
  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  const Index n = h_full.rows();
  dist::DistHermitianMatrix<T> h(grid, dist::IndexMap::block(n, 1),
                                 dist::IndexMap::block(n, 1));
  h.fill_from_global(h_full);
  return solve(h, cfg, observer, initial_subspace, ck);
}

}  // namespace chase::core
