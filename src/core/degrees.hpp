// Per-vector Chebyshev degree optimization (Algorithm 1, line 11).
//
// The residual of Ritz pair i contracts per filter step by roughly
// 1 / rho(t_i), with t_i the Ritz value mapped to the damped interval and
// rho the Chebyshev growth factor. The optimal degree is therefore the
// smallest d with res_i / rho^d <= tol — minimizing the total number of
// MatVecs, ChASE's dominant cost. Degrees are forced even (the filter must
// end in the C layout) and capped so the filtered block does not become too
// ill-conditioned for the QR (Section 4.2).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "qr/condest.hpp"

namespace chase::core {

/// Round up to the next even integer >= 2.
inline int round_up_even(int d) {
  d = std::max(d, 2);
  return d + (d % 2);
}

/// Optimized degree for one Ritz pair.
template <typename R>
int optimal_degree(R residual, R tol, R t, int max_degree) {
  const R rho = qr::chebyshev_growth(t);
  if (rho <= R(1) || residual <= tol) {
    // Inside the damped interval there is no contraction to exploit (or the
    // pair already converged): use the cheapest admissible even degree.
    return residual <= tol ? 2 : round_up_even(max_degree);
  }
  const R needed = std::log(residual / tol) / std::log(rho);
  const int d = int(std::ceil(needed));
  return std::min(round_up_even(d), round_up_even(max_degree));
}

/// Degrees for the active (non-locked) Ritz pairs.
template <typename R>
void optimize_degrees(const std::vector<R>& ritz, const std::vector<R>& resid,
                      R tol, R c, R e, int locked, int max_degree,
                      std::vector<int>& degs) {
  for (std::size_t i = std::size_t(locked); i < ritz.size(); ++i) {
    const R t = (ritz[i] - c) / e;
    degs[i] = optimal_degree(resid[i], tol, t, max_degree);
  }
}

}  // namespace chase::core
