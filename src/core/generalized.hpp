// Generalized Hermitian eigenproblems A x = lambda B x with B Hermitian
// positive definite — the form DFT codes produce (B is the FLAPW overlap
// matrix; Section 1's application context).
//
// Reduction to standard form via the Cholesky factor B = L L^H (L = R^H from
// the upper factorization B = R^H R):
//   (L^{-1} A L^{-H}) y = lambda y,   x = L^{-H} y = R^{-1} y.
// The transformed operator A-tilde = R^{-H} A R^{-1} is applied matrix-free
// (two triangular solves around the A product), so it is never formed; ChASE
// runs on it unchanged and the eigenvectors are back-substituted at the end.
// Because y is orthonormal, the returned x satisfy x_i^H B x_j = delta_ij
// (B-orthonormality).
//
// This sequential entry point covers the library-user workflow; distributed
// generalized solves reduce to the same pattern with a distributed Cholesky,
// which is outside this paper's scope.
#pragma once

#include "core/operator.hpp"
#include "core/sequential.hpp"
#include "la/potrf.hpp"
#include "la/trsm.hpp"

namespace chase::core {

namespace detail {

/// work <- R^{-1} work (left solve with the upper factor, back substitution).
template <typename T>
void left_solve_upper(la::ConstMatrixView<T> r, la::MatrixView<T> w) {
  const la::Index m = r.rows();
  for (la::Index j = 0; j < w.cols(); ++j) {
    T* col = w.col(j);
    for (la::Index i = m - 1; i >= 0; --i) {
      T acc = col[i];
      for (la::Index k = i + 1; k < m; ++k) acc -= r(i, k) * col[k];
      col[i] = acc / r(i, i);
    }
  }
}

/// Row functor for A-tilde = R^{-H} A R^{-1}; the whole transformed block is
/// computed once per apply via the begin_apply hook.
template <typename T>
struct GeneralizedOp {
  const la::Matrix<T>* a_full;
  const la::Matrix<T>* r_factor;
  mutable la::Matrix<T> cache;

  void begin_apply(la::ConstMatrixView<T> x) const {
    la::Matrix<T> work(x.rows(), x.cols());
    la::copy(x, work.view());
    left_solve_upper(r_factor->cview(), work.view());  // R^{-1} x
    cache.resize(x.rows(), x.cols());
    la::gemm(T(1), a_full->cview(), work.cview(), T(0), cache.view());
    la::trsm_left_upper_conj(r_factor->cview(), cache.view());  // R^{-H} (.)
  }

  T operator()(la::Index row, la::ConstMatrixView<T> /*x*/,
               la::Index col) const {
    return cache(row, col);
  }
};

}  // namespace detail

/// Solve A x = lambda B x for the nev lowest eigenvalues.
/// `a` Hermitian, `b` Hermitian positive definite (both full storage, only
/// read). The returned eigenvectors are B-orthonormal.
template <typename T>
ChaseResult<T> solve_generalized(la::ConstMatrixView<T> a,
                                 la::ConstMatrixView<T> b,
                                 const ChaseConfig& cfg,
                                 ChaseObserver<T>* observer = nullptr) {
  using la::Index;
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n && b.rows() == n && b.cols() == n);

  la::Matrix<T> r = la::clone(b);
  CHASE_CHECK_MSG(la::potrf_upper(r.view()) == 0,
                  "solve_generalized: B is not positive definite");

  la::Matrix<T> a_copy = la::clone(a);
  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  auto map = dist::IndexMap::block(n, 1);
  MatrixFreeOperator<T, detail::GeneralizedOp<T>> hop(
      grid, map, map, detail::GeneralizedOp<T>{&a_copy, &r, {}});

  auto result = solve(hop, cfg, observer);

  // Back-transform x = R^{-1} y; B-orthonormality is inherited from y.
  detail::left_solve_upper(r.cview(), result.eigenvectors.view());
  return result;
}

}  // namespace chase::core
