// The two DLA backends of the staged engine.
//
// DenseDlaBackend — the paper's v1.4 parallelization: distributed 1D-CAQR
// over the column communicator, Rayleigh-Ritz as a local Gram product plus
// a row-communicator allreduce, distributed residuals. It wraps today's
// la/qr/dist/comm substrate, so the PR-3 HEMM routing on diagonal ranks and
// the PR-2 nonblocking-collective overlap inside apply_c2b come along for
// free. Works for any operator with the DistHermitianMatrix duck type,
// including matrix-free operators (whose gather buffer it binds to the
// workspace arena).
//
// RedundantDlaBackend — the legacy v1.2 "LMS" scheme as a backend: QR,
// Rayleigh-Ritz and residuals run redundantly on every rank over gathered
// full N x n_e buffers, with the per-kernel host-device round trips of
// Section 2.3 recorded for the Figure-2 movement bars.
#pragma once

#include "coll/abft.hpp"
#include "core/dla.hpp"
#include "core/filter.hpp"
#include "core/lanczos.hpp"
#include "dist/multivector.hpp"
#include "la/gemm.hpp"
#include "la/heevd.hpp"
#include "la/householder.hpp"
#include "la/stedc.hpp"

namespace chase::core {

namespace detail {

/// v1.2 host-device round trip: the result of an offloaded kernel of
/// `bytes` is copied D2H and later re-uploaded.
inline void record_lms_roundtrip(std::size_t bytes) {
  if (auto* t = perf::thread_tracker()) {
    t->record_memcpy(bytes, /*to_device=*/false);
    t->record_memcpy(bytes, /*to_device=*/true);
  }
}

}  // namespace detail

template <typename HOp, typename T = typename HOp::Scalar>
class DenseDlaBackend : public DlaBackend<T> {
 public:
  using R = RealType<T>;
  using Workspace = engine::SolverWorkspace<T>;

  explicit DenseDlaBackend(HOp& h) : h_(&h) {}

  Index global_size() const override { return h_->global_size(); }
  Index c_rows() const override {
    return h_->row_map().local_size(h_->grid().my_row());
  }
  Index b_rows() const override {
    return h_->col_map().local_size(h_->grid().my_col());
  }
  const comm::Grid2d& grid() const override { return h_->grid(); }
  const dist::IndexMap& row_map() const override { return h_->row_map(); }

  void setup(Workspace& ws, const ChaseConfig& cfg) override {
    const Index ne = cfg.subspace();
    ws.reserve_basis(c_rows(), b_rows(), ne);
    ws.reserve_ritz(c_rows(), b_rows(), ne);
    maybe_bind_gather(ws, ne);
    maybe_warm_plans(ne);
  }

  SpectralBounds<R> estimate_bounds(const ChaseConfig& cfg) override {
    if (cfg.use_custom_bounds) {
      CHASE_CHECK_MSG(cfg.custom_mu_1 < cfg.custom_mu_ne &&
                          cfg.custom_mu_ne < cfg.custom_b_sup,
                      "custom bounds must satisfy mu_1 < mu_ne < b_sup");
      return {R(cfg.custom_b_sup), R(cfg.custom_mu_1), R(cfg.custom_mu_ne)};
    }
    return lanczos_bounds(*h_, cfg.subspace(), cfg.lanczos_steps,
                          cfg.lanczos_vectors, cfg.seed);
  }

  long filter_apply(Workspace& ws, Index locked, const std::vector<int>& degs,
                    R center, R half, R mu_1) override {
    const Index act = Index(degs.size());
    return chebyshev_filter(*h_, ws.c().block(0, locked, c_rows(), act),
                            ws.b().block(0, locked, b_rows(), act), degs,
                            center, half, mu_1);
  }

  void column_consensus(std::vector<R>& col_ok) override {
    coll::checked_all_reduce(grid().col_comm(), col_ok.data(),
                             Index(col_ok.size()), comm::Reduction::kMin);
  }

  // Distributed 1D-CAQR over the column communicator (Algorithm 2 line 12)
  // on the full subspace so the fresh vectors are orthogonalized against the
  // locked ones; then re-inject the locked columns from C2 (line 13) and
  // refresh C2's active part.
  qr::QrReport qr(Workspace& ws, Index locked, double est_cond,
                  const qr::QrOptions& opts) override {
    auto report = qr::caqr_1d(ws.c().view(), h_->row_map(), grid().col_comm(),
                              est_cond, opts);
    const Index mloc = c_rows();
    const Index act = ws.c().cols() - locked;
    if (locked > 0) {
      la::copy(ws.c2().block(0, 0, mloc, locked).as_const(),
               ws.c().block(0, 0, mloc, locked));
    }
    la::copy(ws.c().block(0, locked, mloc, act).as_const(),
             ws.c2().block(0, locked, mloc, act));
    return report;
  }

  void redistribute(Workspace& ws, Index locked, Index act) override {
    auto c2_act = ws.c2().block(0, locked, c_rows(), act);
    auto b2_act = ws.b2().block(0, locked, b_rows(), act);
    dist::redistribute_c2b<T>(grid(), h_->row_map(), h_->col_map(),
                              c2_act.as_const(), b2_act);
  }

  void apply_h(Workspace& ws, Index locked, Index act) override {
    auto b_act = ws.b().block(0, locked, b_rows(), act);
    h_->apply_c2b(T(1), ws.c().block(0, locked, c_rows(), act).as_const(),
                  T(0), b_act);
  }

  // A_act = B2_act^H B_act summed over the process columns: each rank's
  // Gram contribution covers its B-layout rows, one allreduce over the row
  // communicator completes the redundant act x act quotient.
  void gram(Workspace& ws, Index locked, Index act) override {
    const Index bloc = b_rows();
    auto a_act = ws.rr_view(act);
    la::gemm(T(1), la::Op::kConjTrans,
             ws.b2().block(0, locked, bloc, act).as_const(), la::Op::kNoTrans,
             ws.b().block(0, locked, bloc, act).as_const(), T(0), a_act);
    if (auto* t = perf::thread_tracker()) {
      const double z = kIsComplex<T> ? 8.0 : 2.0;
      t->add_flops(perf::FlopClass::kGemm,
                   z * double(bloc) * double(act) * double(act));
    }
    coll::checked_all_reduce(grid().row_comm(), a_act.data(), act * act);
  }

  // Redundant diagonalization of the Rayleigh quotient (line 18), via
  // implicit QL or Divide & Conquer (Section 2.1's reference [14]).
  void heevd(Workspace& ws, Index act, RrSolver solver) override {
    if (solver == RrSolver::kDivideConquer) {
      la::heevd_dc(ws.rr_view(act), ws.theta(), ws.evec_view(act));
    } else {
      la::heevd(ws.rr_view(act), ws.theta(), ws.evec_view(act));
    }
    if (auto* t = perf::thread_tracker()) {
      const double z = kIsComplex<T> ? 4.0 : 1.0;
      t->add_flops(perf::FlopClass::kSmall,
                   z * 9.0 * double(act) * double(act) * double(act));
    }
  }

  // Back-transform (line 19): C_act = C2_act * Y, then refresh C2.
  void back_transform(Workspace& ws, Index locked, Index act) override {
    const Index mloc = c_rows();
    auto c_act = ws.c().block(0, locked, mloc, act);
    auto c2_act = ws.c2().block(0, locked, mloc, act);
    la::gemm(T(1), c2_act.as_const(), ws.evec_view(act).as_const(), T(0),
             c_act);
    if (auto* t = perf::thread_tracker()) {
      const double z = kIsComplex<T> ? 8.0 : 2.0;
      t->add_flops(perf::FlopClass::kGemm,
                   z * double(mloc) * double(act) * double(act));
    }
    la::copy(c_act.as_const(), c2_act);
  }

  // At an iteration boundary C2 == C (qr copies active C into C2, the
  // back-transform refreshes it), so restoring C and mirroring it into C2
  // reproduces the exact post-iteration state.
  void restore_basis(Workspace& ws, la::ConstMatrixView<T> v_global) override {
    DlaBackend<T>::restore_basis(ws, v_global);
    la::copy(ws.c().view().as_const(), ws.c2().view());
  }

  void residual_norms(Workspace& ws, Index locked, Index act,
                      const std::vector<R>& ritz, R scale,
                      std::vector<R>& resid) override {
    const Index bloc = b_rows();
    auto b_act = ws.b().block(0, locked, bloc, act);
    auto b2_act = ws.b2().block(0, locked, bloc, act);
    auto& nrm = ws.norms();
    nrm.assign(std::size_t(act), R(0));
    for (Index j = 0; j < act; ++j) {
      const R lambda = ritz[std::size_t(locked + j)];
      T* bj = b_act.col(j);
      const T* b2j = b2_act.col(j);
      R acc(0);
      for (Index i = 0; i < bloc; ++i) {
        const T d = bj[i] - T(lambda) * b2j[i];
        acc += real_part(conjugate(d) * d);
      }
      nrm[std::size_t(j)] = acc;
    }
    if (auto* t = perf::thread_tracker()) {
      t->add_mem_bytes(3.0 * double(bloc) * double(act) * sizeof(T));
    }
    coll::checked_all_reduce(grid().row_comm(), nrm.data(), act);
    for (Index j = 0; j < act; ++j) {
      resid[std::size_t(locked + j)] = std::sqrt(nrm[std::size_t(j)]) / scale;
    }
  }

 protected:
  // Build the persistent communication plans for the filter's reductions up
  // front, so the first iteration replays instead of planning. Optional on
  // the operator type, like the gather-buffer binding below.
  void maybe_warm_plans(Index ne) {
    if constexpr (requires(HOp& op) { op.warm_plans(Index{}); }) {
      h_->warm_plans(ne);
    }
  }

  void maybe_bind_gather(Workspace& ws, Index ne) {
    if constexpr (requires(HOp& op, la::Matrix<T>* buf) {
                    op.bind_gather_buffer(buf);
                  }) {
      ws.reserve_gather(global_size(), ne);
      h_->bind_gather_buffer(&ws.gather());
    }
  }

  HOp* h_;
};

template <typename HOp, typename T = typename HOp::Scalar>
class RedundantDlaBackend : public DenseDlaBackend<HOp, T> {
 public:
  using R = RealType<T>;
  using Workspace = engine::SolverWorkspace<T>;
  using Base = DenseDlaBackend<HOp, T>;
  using Base::b_rows;
  using Base::c_rows;
  using Base::global_size;
  using Base::grid;

  explicit RedundantDlaBackend(HOp& h) : Base(h) {}

  void setup(Workspace& ws, const ChaseConfig& cfg) override {
    const Index ne = cfg.subspace();
    ws.reserve_basis(c_rows(), b_rows(), ne);
    ws.reserve_full(global_size(), ne);
    this->maybe_bind_gather(ws, ne);
    this->maybe_warm_plans(ne);
  }

  // v1.2 redundant QR: collect C into the full buffer with one broadcast per
  // task, factorize everywhere with Householder QR, scatter back. The locked
  // columns are re-injected from the previous full basis copy.
  qr::QrReport qr(Workspace& ws, Index locked, double est_cond,
                  const qr::QrOptions& /*opts*/) override {
    const Index n = global_size();
    const Index ne = ws.c().cols();
    {
      perf::RegionScope qr_scope(perf::Region::kQr);
      dist::gather_rows(grid().col_comm(), this->row_map(),
                        ws.c().view().as_const(), ws.cfull().view());
      la::householder_orthonormalize(ws.cfull().view());
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 4.0 : 1.0;
        t->add_flops(perf::FlopClass::kPanel,
                     4.0 * z * double(n) * double(ne) * double(ne));
      }
      detail::record_lms_roundtrip(std::size_t(n) * std::size_t(ne) *
                                   sizeof(T));
      if (locked > 0) {
        la::copy(ws.wfull().block(0, 0, n, locked).as_const(),
                 ws.cfull().block(0, 0, n, locked));
      }
      dist::scatter_rows(this->row_map(), grid().my_row(),
                         ws.cfull().view().as_const(), ws.c().view());
    }
    qr::QrReport report;
    report.selected = qr::QrVariant::kHouseholder;
    report.used = qr::QrVariant::kHouseholder;
    report.est_cond = est_cond;
    return report;
  }

  // The legacy scheme gathers instead of redistributing; the collection
  // happens inside gram()/residual_norms() right after the H-apply.
  void redistribute(Workspace& /*ws*/, Index /*locked*/,
                    Index /*act*/) override {}

  // Rectangular projection A = C^H W on the gathered full buffers, executed
  // redundantly on every rank (priced at the panel rate: a single device per
  // rank in v1.2, not the multi-GPU GEMM rate). The Hermitian work (W = H C)
  // already went through the distributed HEMM in apply_h.
  void gram(Workspace& ws, Index locked, Index act) override {
    const Index n = global_size();
    auto b_act = ws.b().block(0, locked, b_rows(), act);
    dist::gather_rows(grid().row_comm(), this->h_->col_map(),
                      b_act.as_const(), ws.wfull().block(0, locked, n, act));
    auto a_act = ws.a_full().block(0, 0, act, act);
    la::gemm(T(1), la::Op::kConjTrans,
             ws.cfull().block(0, locked, n, act).as_const(), la::Op::kNoTrans,
             ws.wfull().block(0, locked, n, act).as_const(), T(0), a_act);
    if (auto* t = perf::thread_tracker()) {
      const double z = kIsComplex<T> ? 8.0 : 2.0;
      t->add_flops(perf::FlopClass::kPanel,
                   z * double(n) * double(act) * double(act));
    }
  }

  // v1.2 always used implicit QL for the reduced problem, regardless of the
  // configured solver.
  void heevd(Workspace& ws, Index act, RrSolver /*solver*/) override {
    auto a_act = ws.a_full().block(0, 0, act, act);
    auto evec_act = ws.evec_full().block(0, 0, act, act);
    la::heevd(a_act, ws.theta(), evec_act);
    if (auto* t = perf::thread_tracker()) {
      const double z = kIsComplex<T> ? 4.0 : 1.0;
      t->add_flops(perf::FlopClass::kSmall,
                   z * 9.0 * double(act) * double(act) * double(act));
    }
  }

  // Redundant back-transform on the full buffer, then scatter to C.
  void back_transform(Workspace& ws, Index locked, Index act) override {
    const Index n = global_size();
    auto evec_act = ws.evec_full().block(0, 0, act, act);
    la::gemm(T(1), ws.cfull().block(0, locked, n, act).as_const(),
             evec_act.as_const(), T(0), ws.wfull().block(0, locked, n, act));
    la::copy(ws.wfull().block(0, locked, n, act).as_const(),
             ws.cfull().block(0, locked, n, act));
    if (auto* t = perf::thread_tracker()) {
      const double z = kIsComplex<T> ? 8.0 : 2.0;
      t->add_flops(perf::FlopClass::kPanel,
                   z * double(n) * double(act) * double(act));
    }
    detail::record_lms_roundtrip(std::size_t(n) * std::size_t(act) *
                                 sizeof(T));
    dist::scatter_rows(this->row_map(), grid().my_row(),
                       ws.cfull().view().as_const(), ws.c().view());
  }

  void residual_norms(Workspace& ws, Index locked, Index act,
                      const std::vector<R>& ritz, R scale,
                      std::vector<R>& resid) override {
    const Index n = global_size();
    auto b_act = ws.b().block(0, locked, b_rows(), act);
    dist::gather_rows(grid().row_comm(), this->h_->col_map(),
                      b_act.as_const(), ws.wfull().block(0, locked, n, act));
    detail::record_lms_roundtrip(std::size_t(n) * std::size_t(act) *
                                 sizeof(T));
    for (Index j = 0; j < act; ++j) {
      const R lambda = ritz[std::size_t(locked + j)];
      R acc(0);
      for (Index i = 0; i < n; ++i) {
        const T d =
            ws.wfull()(i, locked + j) - T(lambda) * ws.cfull()(i, locked + j);
        acc += real_part(conjugate(d) * d);
      }
      resid[std::size_t(locked + j)] = std::sqrt(acc) / scale;
    }
    if (auto* t = perf::thread_tracker()) {
      t->add_mem_bytes(3.0 * double(n) * double(act) * sizeof(T));
    }
  }

  // wfull keeps the current full Ritz basis for the next iteration's
  // locked-column re-injection.
  void end_iteration(Workspace& ws) override {
    la::copy(ws.cfull().view().as_const(), ws.wfull().view());
  }

  // The redundant scheme's boundary invariant is wfull == gather(C) (set by
  // end_iteration); the snapshot's V *is* that gathered basis, so the
  // restore refills both redundant full buffers directly — no collective.
  void restore_basis(Workspace& ws, la::ConstMatrixView<T> v_global) override {
    DlaBackend<T>::restore_basis(ws, v_global);
    la::copy(v_global, ws.cfull().view());
    la::copy(v_global, ws.wfull().view());
  }
};

}  // namespace chase::core
