// Abstract dense-linear-algebra backend of the staged solver engine — the
// reproduction of ChASE's `ChaseMpiDLAInterface` (Winkelmann et al., TOMS
// 2019; "ChASE — A Distributed Hybrid CPU-GPU Eigensolver", 2022): the
// Chebyshev subspace iteration is written once, against this interface, and
// backends decide how each numerical kernel is parallelized. The v1.4
// scheme (distributed 1D-CAQR, row/column-communicator Rayleigh-Ritz) and
// the legacy v1.2 "LMS" scheme (redundant kernels on gathered full buffers)
// are two backends of the same staged pipeline — not two drivers.
//
// Every operation works on views into the shared SolverWorkspace arena; a
// backend sizes the arena once in setup() and steady-state iterations
// allocate nothing.
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "core/config.hpp"
#include "core/engine/workspace.hpp"
#include "core/types.hpp"
#include "dist/index_map.hpp"
#include "dist/multivector.hpp"
#include "qr/qr_selector.hpp"

namespace chase::core {

template <typename T>
class DlaBackend {
 public:
  using R = RealType<T>;
  using Workspace = engine::SolverWorkspace<T>;

  virtual ~DlaBackend() = default;

  // ---- topology ----
  virtual Index global_size() const = 0;
  /// Local rows of the C (column-communicator) layout.
  virtual Index c_rows() const = 0;
  /// Local rows of the B (row-communicator) layout.
  virtual Index b_rows() const = 0;
  virtual const comm::Grid2d& grid() const = 0;
  virtual const dist::IndexMap& row_map() const = 0;

  /// Size the workspace arena for this problem (called once, before any
  /// stage runs).
  virtual void setup(Workspace& ws, const ChaseConfig& cfg) = 0;

  /// Spectral bounds: the Lanczos/DoS pass, or a pass-through of the user's
  /// custom envelope.
  virtual SpectralBounds<R> estimate_bounds(const ChaseConfig& cfg) = 0;

  /// Chebyshev filter of the active columns [locked, locked + degs.size());
  /// returns the MatVec count.
  virtual long filter_apply(Workspace& ws, Index locked,
                            const std::vector<int>& degs, R center, R half,
                            R mu_1) = 0;

  /// Consensus reduction (min) of the per-column health flags over the
  /// process rows, so every rank takes the same filter-guard branch.
  virtual void column_consensus(std::vector<R>& col_ok) = 0;

  /// Orthonormalize the full subspace in C, re-injecting the locked columns
  /// from the backend's locked-basis copy. Returns the QR report (variant
  /// selection, escalation ladder outcome, est_cond).
  virtual qr::QrReport qr(Workspace& ws, Index locked, double est_cond,
                          const qr::QrOptions& opts) = 0;

  /// Move the orthonormal basis into the B layout ahead of H-applies
  /// (v1.4: the column-communicator C2 -> B2 redistribution; redundant
  /// backends that gather instead implement this as a no-op).
  virtual void redistribute(Workspace& ws, Index locked, Index act) = 0;

  /// B_act = H C_act through the backend's distributed HEMM.
  virtual void apply_h(Workspace& ws, Index locked, Index act) = 0;

  /// Form the act x act Rayleigh quotient from the applied block.
  virtual void gram(Workspace& ws, Index locked, Index act) = 0;

  /// Redundant diagonalization of the Rayleigh quotient into
  /// (ws.theta(), eigenvector block).
  virtual void heevd(Workspace& ws, Index act, RrSolver solver) = 0;

  /// Back-transform the basis by the quotient's eigenvectors and refresh the
  /// backend's locked-basis copy.
  virtual void back_transform(Workspace& ws, Index locked, Index act) = 0;

  /// Residual norms of the active Ritz pairs, scaled by the spectral-norm
  /// estimate, written into resid[locked ... locked+act).
  virtual void residual_norms(Workspace& ws, Index locked, Index act,
                              const std::vector<R>& ritz, R scale,
                              std::vector<R>& resid) = 0;

  /// Hook called by the Residual stage right after residual_norms with the
  /// freshly reduced (hence replicated) residuals of the active columns.
  /// The mixed-precision backend updates its promotion policy here; the
  /// default backend ignores it, keeping pure-fp64 solves bitwise identical.
  virtual void observe_residuals(Workspace& /*ws*/, Index /*locked*/,
                                 Index /*act*/,
                                 const std::vector<R>& /*resid*/) {}

  /// Hook called by the Locking stage on the `cand` leading active columns
  /// whose residuals fell below tolerance, before they are frozen. The mixed
  /// backend runs one step of iterative refinement (recompute the Rayleigh
  /// quotients in fp64 and re-evaluate the residuals) so pairs filtered in
  /// low precision lock with fp64-quality values; residuals may rise back
  /// above tolerance, in which case the stage simply does not lock them yet.
  /// Default: nothing — pure-fp64 locking is unchanged.
  virtual void refine_locked(Workspace& /*ws*/, Index /*locked*/,
                             Index /*cand*/, std::vector<R>& /*ritz*/,
                             R /*scale*/, std::vector<R>& /*resid*/) {}

  /// Post-iteration bookkeeping (the legacy scheme refreshes its redundant
  /// full basis copy here); default: nothing.
  virtual void end_iteration(Workspace& /*ws*/) {}

  /// Gather the subspace into a replicated global matrix (collective over
  /// the column communicator) — the checkpoint capture primitive. Rare and
  /// off the hot path, so the v1.2 collection pattern is fine here.
  virtual void save_basis(Workspace& ws, la::MatrixView<T> v_global) {
    dist::gather_rows<T>(grid().col_comm(), row_map(),
                         ws.c().view().as_const(), v_global);
  }

  /// Restore the subspace from a replicated global matrix (pure-local
  /// scatter; every rank holds the same snapshot, so no collective is
  /// needed). Backends layer their redundant copies on top.
  virtual void restore_basis(Workspace& ws, la::ConstMatrixView<T> v_global) {
    dist::scatter_rows<T>(row_map(), grid().my_row(), v_global,
                          ws.c().view());
  }

  /// Apply permutation `perm` (new position j takes old column perm[j]) to
  /// the active columns of C and the aligned per-column arrays. Layout-local
  /// and identical for every backend, so the interface provides it.
  virtual void permute(Workspace& ws, Index first,
                       const std::vector<Index>& perm, std::vector<R>& ritz,
                       std::vector<R>& resid, std::vector<int>& degs) {
    const Index count = Index(perm.size());
    auto m = ws.c().view();
    auto scratch = ws.scratch().block(0, 0, m.rows(), count);
    auto& ritz_old = ws.ritz_tmp();
    auto& res_old = ws.res_tmp();
    auto& deg_old = ws.deg_tmp();
    ritz_old.assign(ritz.begin() + first, ritz.begin() + first + count);
    res_old.assign(resid.begin() + first, resid.begin() + first + count);
    deg_old.assign(degs.begin() + first, degs.begin() + first + count);
    for (Index j = 0; j < count; ++j) {
      const Index src = perm[std::size_t(j)];
      std::copy(m.col(first + src), m.col(first + src) + m.rows(),
                scratch.col(j));
      ritz[std::size_t(first + j)] = ritz_old[std::size_t(src)];
      resid[std::size_t(first + j)] = res_old[std::size_t(src)];
      degs[std::size_t(first + j)] = deg_old[std::size_t(src)];
    }
    for (Index j = 0; j < count; ++j) {
      std::copy(scratch.col(j), scratch.col(j) + m.rows(), m.col(first + j));
    }
  }
};

}  // namespace chase::core
