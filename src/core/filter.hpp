// The Chebyshev polynomial filter (Algorithm 2 line 10), implemented with
// the alternating distributed HEMM of Section 3.1.
//
// The scaled three-term recurrence (as in the ChASE library)
//   V_1     = (sigma_1 / e) (H - c I) V_0
//   V_{i+1} = (2 sigma_{i+1} / e) (H - c I) V_i - sigma_i sigma_{i+1} V_{i-1}
// with sigma_1 = e / (mu_1 - c), sigma_{i+1} = 1 / (2/sigma_1 - sigma_i)
// damps the components inside [mu_ne, b_sup] (mapped to [-1, 1] by c and e)
// while keeping the amplification of the wanted end of the spectrum bounded
// (the scaling normalizes the polynomial at mu_1).
//
// Odd steps write the B layout, even steps write back to the C layout; since
// all degrees are even the filtered vectors always end in C, and H never
// needs re-distribution (Section 2.2). Per-vector degrees are supported by
// sorting the active columns by degree ascending and shrinking the processed
// column range as degrees complete.
//
// Communication/compute overlap (the v1.4 scheme): under
// CHASE_COLL_ALGO=auto every apply_c2b/apply_b2c below splits its HEMM into
// column blocks and overlaps the nonblocking allreduce of block k with the
// multiply of block k+1 (dist_matrix.hpp apply_impl, i_all_reduce of
// src/coll). The result is bitwise-identical to the blocking path, so the
// filter needs no changes — the per-apply "coll.overlap.blocks" counter
// records how often the pipeline engaged.
//
// The local multiply inside every apply runs the CHASE_GEMM_KERNEL policy
// engine (src/la/gemm.hpp): diagonal ranks of the grid hold a Hermitian
// block and dispatch to the symmetry-aware la::hemm (one-triangle reads,
// packed-panel replay across column blocks), off-diagonal ranks run the
// register-tiled gemm. Both engines are column-split invariant, which is
// what keeps the overlap pipeline's result bitwise stable.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/faultinject.hpp"
#include "dist/dist_matrix.hpp"
#include "perf/tracker.hpp"

namespace chase::core {

/// Filter the columns [0, nact) of the C-layout block `c` in place.
///
/// `degs` (size nact) must be even, ascending; `b` is the B-layout scratch
/// block with at least nact columns. Returns the number of MatVec operations
/// (column-vector multiplications by H) performed.
/// `HOp` is any Hamiltonian operator exposing the DistHermitianMatrix
/// interface (Scalar, grid/row_map/col_map/global_size, apply_c2b/apply_b2c,
/// shift_diagonal) — including matrix-free operators (core/operator.hpp).
template <typename HOp, typename T = typename HOp::Scalar>
long chebyshev_filter(HOp& h, la::MatrixView<T> c,
                      la::MatrixView<T> b, const std::vector<int>& degs,
                      RealType<T> center, RealType<T> half_width,
                      RealType<T> mu_1) {
  using R = RealType<T>;
  perf::RegionScope scope(perf::Region::kFilter);
  const la::Index nact = c.cols();
  CHASE_CHECK_MSG(la::Index(degs.size()) == nact, "filter: degree count");
  if (nact == 0) return 0;
  CHASE_CHECK_MSG(std::is_sorted(degs.begin(), degs.end()),
                  "filter: degrees must be sorted ascending");
  for (int d : degs) {
    CHASE_CHECK_MSG(d >= 2 && d % 2 == 0,
                    "filter: degrees must be even, >= 2");
  }
  const int max_deg = degs.back();
  const R e = half_width;
  CHASE_CHECK_MSG(e > R(0), "filter: empty damping interval");
  CHASE_CHECK_MSG(mu_1 < center, "filter: mu_1 must lie below the interval");

  // Shift the local diagonal once: every recurrence step applies (H - c I).
  h.shift_diagonal(-center);

  const R sigma_1 = e / (mu_1 - center);
  R sigma = sigma_1;
  long matvecs = 0;

  // Step 1: B = (sigma_1 / e) (H - cI) C over all active columns.
  h.apply_c2b(T(sigma_1 / e), c.as_const(), T(0), b);
  matvecs += nact;

  for (int step = 2; step <= max_deg; ++step) {
    // Columns whose degree is already satisfied drop out; degrees are even,
    // so completed columns were last written in the C layout.
    const auto first =
        std::lower_bound(degs.begin(), degs.end(), step) - degs.begin();
    const la::Index col0 = la::Index(first);
    const la::Index ncols = nact - col0;
    if (ncols == 0) break;

    const R sigma_new = R(1) / (R(2) / sigma_1 - sigma);
    const T alpha = T(R(2) * sigma_new / e);
    const T beta = T(-sigma * sigma_new);
    if (step % 2 == 0) {
      // C_act = alpha (H - cI) B_act + beta C_act.
      h.apply_b2c(alpha, b.block(0, col0, b.rows(), ncols).as_const(), beta,
                  c.block(0, col0, c.rows(), ncols));
    } else {
      h.apply_c2b(alpha, c.block(0, col0, c.rows(), ncols).as_const(), beta,
                  b.block(0, col0, b.rows(), ncols));
    }
    sigma = sigma_new;
    matvecs += ncols;
  }

  h.shift_diagonal(center);

  // filter.nan fault: corrupt one entry of the filtered output. Arm with
  // rank -1 so every replica of C is corrupted identically (C is replicated
  // across grid columns) and the solver's consensus guard sees one corrupt
  // column, not diverged replicas.
  if (c.rows() > 0 && fault::fired("filter.nan")) {
    c(0, 0) = T(std::numeric_limits<R>::quiet_NaN());
  }
  return matvecs;
}

}  // namespace chase::core
