// Residual-driven precision-promotion policy of the mixed backend.
//
// Filtering in fp32 is safe while a column's residual sits well above what
// fp32 rounding can deliver; once it approaches the fp32 floor — or stops
// improving — further low-precision filtering is wasted work. The policy
// watches the replicated post-iteration residuals and decides, per column,
// when to fall back to fp64 filtering, plus a whole-subspace fallback when
// convergence stagnates across iterations (the symptom of fp32 rounding
// polluting the shared subspace rather than a single direction).
//
// Inputs (residuals, locked counts) are identical on every rank — residual
// norms are allreduced and locking is replicated — so every rank derives the
// same promotion mask and the mixed filter's collectives stay aligned.
// The state machine is header-only and solver-free, so the trigger
// conditions are unit-testable in isolation (tests/core/test_precision.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace chase::core::engine {

struct PromotionConfig {
  /// Promote a column once its residual drops below this floor: fp32 unit
  /// roundoff is ~6e-8, but the filtered residual stagnates one to two
  /// decades above it (rounding noise is amplified by the polynomial), so
  /// the hand-off to fp64 filtering happens with margin.
  double resid_floor = 1e-5;
  /// A column "stalls" when an iteration shrinks its residual by less than
  /// this factor (1.0 would demand monotone progress; Chebyshev filtering in
  /// adequate precision contracts residuals by far more per iteration).
  double stall_ratio = 0.85;
  /// Consecutive stalled iterations before a column is promoted.
  int column_stall_limit = 2;
  /// Consecutive iterations in which nothing locked and the best active
  /// residual stalled before the whole subspace falls back to fp64
  /// (<= 0: fall back at the first observation — the deterministic-test
  /// hook).
  int subspace_stall_limit = 3;
};

class PromotionPolicy {
 public:
  using Index = la::Index;

  explicit PromotionPolicy(const PromotionConfig& cfg = {}) : cfg_(cfg) {}

  /// Arm the policy for a subspace of `ne` columns, all starting in low
  /// precision.
  void reset(Index ne) {
    col_fp64_.assign(std::size_t(ne), 0);
    prev_resid_.assign(std::size_t(ne), -1.0);
    col_stall_.assign(std::size_t(ne), 0);
    subspace_fp64_ = false;
    subspace_stall_ = 0;
    last_locked_ = -1;
    last_best_ = -1.0;
    columns_promoted_ = 0;
    subspace_promotions_ = 0;
  }

  /// Feed the post-iteration residuals of the active columns
  /// [locked, locked + act); `resid` is indexed globally like the solver's
  /// residual array. Updates the per-column mask and the subspace flag.
  void observe(Index locked, Index act, const std::vector<double>& resid) {
    double best = -1.0;
    for (Index j = 0; j < act; ++j) {
      const std::size_t g = std::size_t(locked + j);
      const double r = resid[g];
      if (best < 0 || r < best) best = r;
      if (col_fp64_[g]) continue;
      if (r < cfg_.resid_floor) {
        promote_column(g);
        continue;
      }
      const double prev = prev_resid_[g];
      if (prev >= 0 && r > cfg_.stall_ratio * prev) {
        if (++col_stall_[g] >= cfg_.column_stall_limit) promote_column(g);
      } else {
        col_stall_[g] = 0;
      }
      prev_resid_[g] = r;
    }

    if (!subspace_fp64_) {
      const bool no_lock_progress = last_locked_ >= 0 && locked <= last_locked_;
      const bool best_stalled =
          last_best_ >= 0 && best >= 0 && best > cfg_.stall_ratio * last_best_;
      if (cfg_.subspace_stall_limit <= 0 ||
          (no_lock_progress && best_stalled &&
           ++subspace_stall_ >= cfg_.subspace_stall_limit)) {
        subspace_fp64_ = true;
        ++subspace_promotions_;
      } else if (!(no_lock_progress && best_stalled)) {
        subspace_stall_ = 0;
      }
    }
    last_locked_ = locked;
    last_best_ = best;
  }

  /// True when global column `g` must be filtered in fp64.
  bool column_fp64(Index g) const {
    return subspace_fp64_ || col_fp64_[std::size_t(g)] != 0;
  }
  bool subspace_fp64() const { return subspace_fp64_; }

  long columns_promoted() const { return columns_promoted_; }
  long subspace_promotions() const { return subspace_promotions_; }

 private:
  void promote_column(std::size_t g) {
    col_fp64_[g] = 1;
    ++columns_promoted_;
  }

  PromotionConfig cfg_;
  std::vector<char> col_fp64_;
  std::vector<double> prev_resid_;
  std::vector<int> col_stall_;
  bool subspace_fp64_ = false;
  int subspace_stall_ = 0;
  Index last_locked_ = -1;
  double last_best_ = -1.0;
  long columns_promoted_ = 0;
  long subspace_promotions_ = 0;
};

}  // namespace chase::core::engine
