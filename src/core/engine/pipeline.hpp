// The staged iteration pipeline: one loop drives any stage list over any
// DLA backend. The pipeline owns the per-iteration bookkeeping the stages
// share — stats lifecycle, observer notification (on every recorded
// iteration, including filter-recovery retries), workspace-arena growth
// accounting, per-stage wall-clock counters — so a scheme is fully
// described by (backend, stage list).
#pragma once

#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/faultinject.hpp"
#include "common/timer.hpp"
#include "core/degrees.hpp"
#include "core/dla.hpp"
#include "core/lanczos.hpp"
#include "core/types.hpp"

namespace chase::core::engine {

/// What an iteration does after a stage returns:
///   kContinue  — run the next stage;
///   kRetry     — record this iteration and rerun from the first stage
///                (the filter guard's re-randomization path);
///   kAbort     — stop the solve without recording this iteration;
///   kConverged — record this iteration and stop, converged.
enum class StageOutcome { kContinue, kRetry, kAbort, kConverged };

template <typename T>
struct SolveContext {
  using R = RealType<T>;

  SolveContext(const ChaseConfig& cfg_in, ChaseObserver<T>* observer_in,
               ChaseResult<T>& result_in, SolverWorkspace<T>& ws_in)
      : cfg(cfg_in), observer(observer_in), result(result_in), ws(ws_in) {}

  const ChaseConfig& cfg;
  ChaseObserver<T>* observer;
  ChaseResult<T>& result;
  SolverWorkspace<T>& ws;

  Index ne = 0;
  R b_sup{}, mu_1{}, mu_ne{}, center{}, half{}, scale{}, tol{};
  std::vector<R> ritz, resid;
  std::vector<int> degs;
  Index locked = 0;
  int nan_recoveries = 0;  // bounded per solve; see the filter guard
  int iter = 0;
  IterationStats stats;  // the iteration being assembled

  /// Derive the filter interval and the Ritz bookkeeping from
  /// result.bounds. Before the first Rayleigh-Ritz no Ritz values exist;
  /// mu_1 is the natural stand-in (Algorithm 5's first-iteration estimate
  /// only consumes the most extremal value).
  void init_from_bounds() {
    ne = cfg.subspace();
    b_sup = result.bounds.b_sup;
    mu_1 = result.bounds.mu_1;
    mu_ne = result.bounds.mu_ne;
    center = (b_sup + mu_ne) / R(2);
    half = (b_sup - mu_ne) / R(2);
    // Residuals are measured relative to the spectral-norm estimate.
    scale = std::max(std::abs(b_sup), std::abs(mu_1));
    tol = R(cfg.tol);
    ritz.assign(std::size_t(ne), mu_1);
    resid.assign(std::size_t(ne), R(1));
    degs.assign(std::size_t(ne), round_up_even(cfg.initial_degree));
  }
};

/// One step of the outer iteration. Stages hold no per-solve state — all of
/// it lives in the SolveContext/Workspace — so a stage list is reusable.
template <typename T>
class Stage {
 public:
  virtual ~Stage() = default;
  virtual std::string_view name() const = 0;
  virtual StageOutcome run(SolveContext<T>& ctx, DlaBackend<T>& dla) = 0;
};

/// Fill C with the initial subspace: user-provided approximate eigenvectors
/// in the leading columns (if any), the rest random — reproducible across
/// grid shapes (entry of global row g, column j depends only on (seed, j,
/// g)).
template <typename T>
void seed_initial_subspace(SolverWorkspace<T>& ws, DlaBackend<T>& dla,
                           const ChaseConfig& cfg,
                           la::ConstMatrixView<T> initial_subspace) {
  const Index mloc = dla.c_rows();
  const Index ne = cfg.subspace();
  Index given = 0;
  if (!initial_subspace.empty()) {
    CHASE_CHECK_MSG(initial_subspace.rows() == mloc &&
                        initial_subspace.cols() <= ne,
                    "initial subspace: expected local C-layout rows and at "
                    "most nev+nex columns");
    given = initial_subspace.cols();
    la::copy(initial_subspace, ws.c().block(0, 0, mloc, given));
  }
  for (const auto& run : dla.row_map().runs(dla.grid().my_row())) {
    for (Index j = given; j < ne; ++j) {
      for (Index k = 0; k < run.length; ++k) {
        ws.c()(run.local_begin + k, j) = lanczos_entry<T>(
            cfg.seed, std::uint64_t(1000 + j), run.global_begin + k);
      }
    }
  }
}

/// Drive the stage list until convergence, abort, or the iteration cap.
/// `first_iter > 1` resumes a checkpointed solve: the iteration numbering
/// continues where the snapshot left off, so cadence policies, observers
/// and iteration-qualified fault sites see the same counter an
/// uninterrupted run would.
template <typename T>
void run_pipeline(SolveContext<T>& ctx, DlaBackend<T>& dla,
                  const std::vector<Stage<T>*>& stages, int first_iter = 1) {
  for (int iter = first_iter; iter <= ctx.cfg.max_iterations; ++iter) {
    ctx.iter = iter;
    // Iteration-qualified fault sites (site@iter=k) key off this counter.
    fault::set_iteration(iter);
    ctx.stats = IterationStats{};
    ctx.stats.iteration = iter;
    ctx.stats.locked_before = int(ctx.locked);
    // Iterations past the first executed one are steady state: the arena
    // must not grow in them (the first one sizes whatever setup could not).
    ctx.ws.set_steady_state(iter >= first_iter + 1);
    const long arena_before = ctx.ws.alloc_events();

    StageOutcome outcome = StageOutcome::kContinue;
    for (Stage<T>* stage : stages) {
      WallTimer timer;
      outcome = stage->run(ctx, dla);
      const std::string prefix =
          std::string("engine.stage.") + std::string(stage->name());
      perf::bump_counter(prefix + ".seconds", timer.seconds());
      perf::bump_counter(prefix + ".calls");
      if (outcome != StageOutcome::kContinue) break;
    }
    ctx.stats.workspace_allocs = ctx.ws.alloc_events() - arena_before;

    if (outcome == StageOutcome::kAbort) break;
    ctx.result.stats.push_back(ctx.stats);
    ctx.result.iterations = iter;
    if (ctx.observer != nullptr) ctx.observer->after_iteration(ctx.stats);
    if (outcome == StageOutcome::kConverged) {
      ctx.result.converged = true;
      break;
    }
  }
  fault::set_iteration(0);
  ctx.ws.set_steady_state(false);
}

}  // namespace chase::core::engine
