// SolverWorkspace — the one up-front arena behind the staged solver engine.
//
// Every buffer a ChASE iteration touches lives here: the Algorithm-2
// multivectors (C/C2 in the C layout, B/B2 in the B layout), the redundant
// Rayleigh quotient and its eigenvector block, the legacy scheme's full
// N x n_e buffers, the permute scratch, and the small per-column vectors
// (health flags, residual norms, permutations). A DLA backend sizes the
// arena once in `setup()`; after that, iterations only take views.
//
// The arena counts its own growth: `alloc_events()` increments whenever a
// reserve actually (re)allocates. The pipeline snapshots the counter around
// each iteration and records the delta in IterationStats::workspace_allocs —
// the measurable proof that steady-state iterations (iter >= 2) perform zero
// heap allocations from the arena. Growth in a steady-state iteration also
// bumps the "workspace.steady_growth" tracker counter so regressions are
// observable without parsing stats.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "la/matrix.hpp"
#include "perf/tracker.hpp"

namespace chase::core::engine {

using la::Index;

template <typename T>
class SolverWorkspace {
 public:
  using R = RealType<T>;

  // ---- arena growth accounting ----
  long alloc_events() const { return alloc_events_; }
  std::size_t alloc_bytes() const { return alloc_bytes_; }

  /// Buffers both schemes need: the filter input/output multivectors, the
  /// column-permute scratch, and the small per-column vectors.
  void reserve_basis(Index mloc, Index bloc, Index ne) {
    ensure(c_, mloc, ne);
    ensure(b_, bloc, ne);
    ensure(scratch_, mloc, ne);
    ensure_vec(theta_, std::size_t(ne));
    ensure_vec(col_ok_, std::size_t(ne));
    ensure_vec(norms_, std::size_t(ne));
    ensure_vec(perm_, std::size_t(ne));
    ensure_vec(ritz_tmp_, std::size_t(ne));
    ensure_vec(res_tmp_, std::size_t(ne));
    ensure_vec(deg_tmp_, std::size_t(ne));
  }

  /// v1.4 buffers: the locked-basis copies C2/B2 and flat n_e^2 storage for
  /// the Rayleigh quotient / eigenvector block (viewed at the active size).
  void reserve_ritz(Index mloc, Index bloc, Index ne) {
    ensure(c2_, mloc, ne);
    ensure(b2_, bloc, ne);
    ensure_vec(rr_, std::size_t(ne) * std::size_t(ne));
    ensure_vec(evec_, std::size_t(ne) * std::size_t(ne));
  }

  /// Legacy v1.2 buffers: the two redundant full N x n_e copies and the
  /// square factors the redundant Rayleigh-Ritz runs on (ld == n_e).
  void reserve_full(Index n, Index ne) {
    ensure(cfull_, n, ne);
    ensure(wfull_, n, ne);
    ensure(a_full_, ne, ne);
    ensure(evec_full_, ne, ne);
  }

  /// Gathered-input buffer a matrix-free operator binds to (operator.hpp),
  /// so its applies are steady-state-allocation-free too.
  void reserve_gather(Index n, Index ne) { ensure(gather_, n, ne); }

  /// Zero the values without releasing or reshaping any buffer, returning a
  /// pooled arena to the state a freshly sized one would be in (Matrix
  /// storage is value-initialized on resize, and the small vectors of a
  /// fresh arena are empty with reserved capacity). The solver-service pool
  /// calls this between jobs so a solve over a reused arena is bitwise-equal
  /// to one over a fresh arena. Records no allocation events.
  void clear_values() {
    for (la::Matrix<T>* m : {&c_, &c2_, &b_, &b2_, &scratch_, &cfull_,
                             &wfull_, &a_full_, &evec_full_, &gather_}) {
      m->set_zero();
    }
    std::fill(rr_.begin(), rr_.end(), T(0));
    std::fill(evec_.begin(), evec_.end(), T(0));
    theta_.clear();
    col_ok_.clear();
    norms_.clear();
    ritz_tmp_.clear();
    res_tmp_.clear();
    deg_tmp_.clear();
    perm_.clear();
  }

  la::Matrix<T>& c() { return c_; }
  la::Matrix<T>& c2() { return c2_; }
  la::Matrix<T>& b() { return b_; }
  la::Matrix<T>& b2() { return b2_; }
  la::Matrix<T>& scratch() { return scratch_; }
  la::Matrix<T>& cfull() { return cfull_; }
  la::Matrix<T>& wfull() { return wfull_; }
  la::Matrix<T>& a_full() { return a_full_; }
  la::Matrix<T>& evec_full() { return evec_full_; }
  la::Matrix<T>& gather() { return gather_; }

  /// act x act views with ld == act over the flat storage: the Rayleigh
  /// quotient stays contiguous at every active size, so the allreduce sends
  /// one flat act^2 payload (the layout the monolithic driver obtained by
  /// allocating a fresh act x act matrix each iteration).
  la::MatrixView<T> rr_view(Index act) {
    return la::MatrixView<T>(rr_.data(), act, act, act);
  }
  la::MatrixView<T> evec_view(Index act) {
    return la::MatrixView<T>(evec_.data(), act, act, act);
  }

  std::vector<R>& theta() { return theta_; }
  std::vector<R>& col_ok() { return col_ok_; }
  std::vector<R>& norms() { return norms_; }
  std::vector<Index>& perm() { return perm_; }
  std::vector<R>& ritz_tmp() { return ritz_tmp_; }
  std::vector<R>& res_tmp() { return res_tmp_; }
  std::vector<int>& deg_tmp() { return deg_tmp_; }

 private:
  void ensure(la::Matrix<T>& m, Index rows, Index cols) {
    if (m.rows() == rows && m.cols() == cols) return;
    m.resize(rows, cols);
    ++alloc_events_;
    alloc_bytes_ += std::size_t(rows) * std::size_t(cols) * sizeof(T);
    note_steady_growth();
  }

  template <typename V>
  void ensure_vec(std::vector<V>& v, std::size_t count) {
    if (v.capacity() >= count) return;
    v.reserve(count);
    ++alloc_events_;
    alloc_bytes_ += count * sizeof(V);
    note_steady_growth();
  }

  void note_steady_growth() {
    if (in_steady_state_) perf::bump_counter("workspace.steady_growth");
  }

 public:
  /// The pipeline marks iterations >= 2 as steady state; any arena growth
  /// inside them is a regression (and bumps "workspace.steady_growth").
  void set_steady_state(bool on) { in_steady_state_ = on; }

 private:
  la::Matrix<T> c_, c2_, b_, b2_, scratch_;
  la::Matrix<T> cfull_, wfull_, a_full_, evec_full_;
  la::Matrix<T> gather_;
  std::vector<T> rr_, evec_;
  std::vector<R> theta_, col_ok_, norms_, ritz_tmp_, res_tmp_;
  std::vector<Index> perm_;
  std::vector<int> deg_tmp_;
  long alloc_events_ = 0;
  std::size_t alloc_bytes_ = 0;
  bool in_steady_state_ = false;
};

}  // namespace chase::core::engine
