// The composable stages of the ChASE outer iteration. One stage list drives
// both the v1.4 scheme and the legacy v1.2 "LMS" scheme — the stage bodies
// are shared, the DLA backend decides how each kernel is parallelized, and
// the only differences between the schemes are the backend and two entries
// of the stage list (the LMS filter guard aborts instead of recovering, and
// LMS appends a basis-sync stage).
//
// Region attribution is unchanged from the monolithic drivers: the filter
// and QR kernels scope their own regions (inside chebyshev_filter /
// caqr_1d / the redundant backend), the Rayleigh-Ritz and Residual stages
// scope theirs around the backend calls, and the degree/permute bookkeeping
// stays outside any region — the model-replay fidelity tests pin this
// mapping event-for-event.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string_view>
#include <vector>

#include "common/log.hpp"
#include "core/degrees.hpp"
#include "core/dla.hpp"
#include "core/engine/pipeline.hpp"
#include "core/lanczos.hpp"
#include "qr/condest.hpp"

namespace chase::core::engine {

/// updateBounds + degree optimization + degree-ascending column permutation
/// (Algorithm 2 lines 5-7, Algorithm 1 lines 11-12). No-op on iteration 1.
template <typename T>
class PrepStage final : public Stage<T> {
 public:
  using R = RealType<T>;
  std::string_view name() const override { return "prep"; }

  StageOutcome run(SolveContext<T>& ctx, DlaBackend<T>& dla) override {
    if (ctx.iter <= 1) return StageOutcome::kContinue;
    ctx.mu_1 = *std::min_element(ctx.ritz.begin(), ctx.ritz.end());
    ctx.mu_ne = *std::max_element(ctx.ritz.begin(), ctx.ritz.end());
    ctx.center = (ctx.b_sup + ctx.mu_ne) / R(2);
    ctx.half = (ctx.b_sup - ctx.mu_ne) / R(2);
    if (!(ctx.half > R(0)) || !std::isfinite(ctx.half) ||
        !std::isfinite(ctx.mu_1)) {
      // Ritz values escaped above b_sup: the spectral upper bound was wrong
      // (possible with user-supplied bounds) and the filter cannot proceed.
      // Report non-convergence instead of aborting.
      CHASE_LOG_INFO(
          "damping interval collapsed (b_sup underestimated?); "
          "aborting solve");
      return StageOutcome::kAbort;
    }
    const Index act = ctx.ne - ctx.locked;
    if (ctx.cfg.optimize_degree) {
      optimize_degrees(ctx.ritz, ctx.resid, ctx.tol, ctx.center, ctx.half,
                       int(ctx.locked), ctx.cfg.max_degree, ctx.degs);
    } else {
      std::fill(ctx.degs.begin() + ctx.locked, ctx.degs.end(),
                round_up_even(ctx.cfg.initial_degree));
    }
    // Sort the active columns by degree ascending: the filter then
    // processes a shrinking suffix.
    auto& perm = ctx.ws.perm();
    perm.assign(std::size_t(act), Index(0));
    std::iota(perm.begin(), perm.end(), Index(0));
    std::stable_sort(perm.begin(), perm.end(), [&](Index x, Index y) {
      return ctx.degs[std::size_t(ctx.locked + x)] <
             ctx.degs[std::size_t(ctx.locked + y)];
    });
    dla.permute(ctx.ws, ctx.locked, perm, ctx.ritz, ctx.resid, ctx.degs);
    return StageOutcome::kContinue;
  }
};

/// Chebyshev filter of the active columns plus the consensus divergence
/// guard, then the Algorithm-5 condition estimate and the after_filter hook.
template <typename T>
class FilterStage final : public Stage<T> {
 public:
  using R = RealType<T>;

  /// `recover` selects the guard policy: the v1.4 engine re-randomizes
  /// corrupt columns and retries the iteration (bounded per solve); the
  /// legacy scheme aborts on any corruption.
  explicit FilterStage(bool recover) : recover_(recover) {}

  std::string_view name() const override { return "filter"; }

  StageOutcome run(SolveContext<T>& ctx, DlaBackend<T>& dla) override {
    const Index act = ctx.ne - ctx.locked;
    std::vector<int> act_degs(ctx.degs.begin() + ctx.locked, ctx.degs.end());
    ctx.stats.degrees = act_degs;
    ctx.stats.matvecs = dla.filter_apply(ctx.ws, ctx.locked, act_degs,
                                         ctx.center, ctx.half, ctx.mu_1);
    ctx.result.matvecs += ctx.stats.matvecs;

    // Filter divergence guard, by consensus so every rank takes the same
    // branch (C is identical across grid columns and the column-communicator
    // reduction covers the row distribution). Two distinct failure shapes:
    //  * every active column is non-finite — the recurrence itself blew up,
    //    i.e. b_sup underestimated the spectrum; no amount of re-randomizing
    //    can fix a wrong damping interval, so stop cleanly;
    //  * some columns are corrupt (a flipped bit, a transport corruption, an
    //    injected filter.nan) — re-randomize exactly those columns and rerun
    //    the iteration, bounded per solve so persistent corruption still
    //    terminates. The legacy policy aborts on any corruption instead.
    {
      perf::RegionScope guard_scope(perf::Region::kFilter);
      const Index mloc = dla.c_rows();
      auto& col_ok = ctx.ws.col_ok();
      col_ok.assign(std::size_t(act), R(1));
      for (Index j = 0; j < act; ++j) {
        for (Index i = 0; i < mloc; ++i) {
          const R mag = abs_value(ctx.ws.c()(i, ctx.locked + j));
          if (!std::isfinite(mag) || mag > R(1e140)) {
            col_ok[std::size_t(j)] = R(0);
            break;
          }
        }
      }
      dla.column_consensus(col_ok);
      const Index bad =
          act - Index(std::count(col_ok.begin(), col_ok.end(), R(1)));
      if (bad > 0 && (!recover_ || bad == act)) {
        CHASE_LOG_INFO("filter diverged (b_sup too small?); aborting solve");
        ctx.result.iterations = ctx.iter;
        return StageOutcome::kAbort;
      }
      if (bad > 0) {
        if (ctx.nan_recoveries >= 3) {
          CHASE_LOG_INFO(
              "filter output corrupt after repeated re-randomization; "
              "aborting solve");
          ctx.result.iterations = ctx.iter;
          return StageOutcome::kAbort;
        }
        // Replace the corrupt columns with fresh deterministic random
        // vectors (a salted stream so retries never reuse a seed) and rerun
        // the iteration; the healthy columns keep their filtered state and
        // the next QR re-orthogonalizes everything.
        const auto& rmap = dla.row_map();
        for (Index j = 0; j < act; ++j) {
          if (col_ok[std::size_t(j)] == R(1)) continue;
          const auto stream = std::uint64_t(
              500000 + ctx.nan_recoveries * ctx.ne + (ctx.locked + j));
          for (const auto& run : rmap.runs(dla.grid().my_row())) {
            for (Index k = 0; k < run.length; ++k) {
              ctx.ws.c()(run.local_begin + k, ctx.locked + j) =
                  lanczos_entry<T>(ctx.cfg.seed, stream, run.global_begin + k);
            }
          }
          ctx.resid[std::size_t(ctx.locked + j)] = R(1);
        }
        ++ctx.nan_recoveries;
        perf::bump_counter("filter.nan_recovery", double(bad));
        CHASE_LOG_INFO("filter produced non-finite columns; re-randomized");
        return StageOutcome::kRetry;
      }
    }

    // Condition estimate of the filtered block (Algorithm 2 line 11).
    ctx.stats.est_cond = double(qr::estimate_filtered_cond(
        ctx.ritz, ctx.center, ctx.half, ctx.degs, int(ctx.locked)));
    if (ctx.observer != nullptr) {
      ctx.observer->after_filter(ctx.iter, int(ctx.locked),
                                 ctx.ws.c().view(), ctx.stats.est_cond);
    }
    return StageOutcome::kContinue;
  }

 private:
  bool recover_;
};

/// Orthonormalization of the subspace through the backend (distributed
/// 1D-CAQR with the Algorithm-4 selector, or the legacy redundant HHQR).
template <typename T>
class QrStage final : public Stage<T> {
 public:
  std::string_view name() const override { return "qr"; }

  StageOutcome run(SolveContext<T>& ctx, DlaBackend<T>& dla) override {
    const auto report =
        dla.qr(ctx.ws, ctx.locked, ctx.stats.est_cond, ctx.cfg.qr);
    ctx.stats.qr_variant = report.selected;
    ctx.stats.qr_used = report.used;
    ctx.stats.qr_fallback = report.hhqr_fallback;
    ctx.stats.qr_potrf_failures = report.potrf_failures;
    return StageOutcome::kContinue;
  }
};

/// Rayleigh-Ritz (Algorithm 2 lines 14-20): project, diagonalize the
/// quotient redundantly, back-transform the basis.
template <typename T>
class RayleighRitzStage final : public Stage<T> {
 public:
  std::string_view name() const override { return "rayleigh_ritz"; }

  StageOutcome run(SolveContext<T>& ctx, DlaBackend<T>& dla) override {
    perf::RegionScope rr(perf::Region::kRayleighRitz);
    const Index act = ctx.ne - ctx.locked;
    dla.redistribute(ctx.ws, ctx.locked, act);
    dla.apply_h(ctx.ws, ctx.locked, act);
    dla.gram(ctx.ws, ctx.locked, act);
    dla.heevd(ctx.ws, act, ctx.cfg.rr_solver);
    std::copy(ctx.ws.theta().begin(), ctx.ws.theta().end(),
              ctx.ritz.begin() + ctx.locked);
    dla.back_transform(ctx.ws, ctx.locked, act);
    return StageOutcome::kContinue;
  }
};

/// Residuals of the active Ritz pairs (Algorithm 2 lines 21-26).
template <typename T>
class ResidualStage final : public Stage<T> {
 public:
  std::string_view name() const override { return "residual"; }

  StageOutcome run(SolveContext<T>& ctx, DlaBackend<T>& dla) override {
    perf::RegionScope res(perf::Region::kResidual);
    const Index act = ctx.ne - ctx.locked;
    dla.redistribute(ctx.ws, ctx.locked, act);
    dla.apply_h(ctx.ws, ctx.locked, act);
    dla.residual_norms(ctx.ws, ctx.locked, act, ctx.ritz, ctx.scale,
                       ctx.resid);
    // The residuals are reduced, hence replicated: the precision-promotion
    // policy of the mixed backend observes them here so every rank derives
    // the same promotion mask for the next filter. No-op on the default
    // backends.
    dla.observe_residuals(ctx.ws, ctx.locked, act, ctx.resid);
    return StageOutcome::kContinue;
  }
};

/// Backend post-iteration bookkeeping — the legacy scheme refreshes the
/// redundant full basis copy its next locked-column re-injection reads.
template <typename T>
class BasisSyncStage final : public Stage<T> {
 public:
  std::string_view name() const override { return "basis_sync"; }

  StageOutcome run(SolveContext<T>& ctx, DlaBackend<T>& dla) override {
    dla.end_iteration(ctx.ws);
    return StageOutcome::kContinue;
  }
};

/// Deflation & locking (Algorithm 2 line 27) plus the residual-spread stats.
template <typename T>
class LockingStage final : public Stage<T> {
 public:
  std::string_view name() const override { return "locking"; }

  StageOutcome run(SolveContext<T>& ctx, DlaBackend<T>& dla) override {
    Index new_locked = 0;
    while (ctx.locked + new_locked < ctx.ne &&
           ctx.resid[std::size_t(ctx.locked + new_locked)] < ctx.tol) {
      ++new_locked;
    }
    if (new_locked > 0) {
      // Candidates about to freeze get one refinement pass (mixed backend:
      // fp64 Rayleigh quotients + fresh residuals; default backends: no-op).
      // The count is replicated, so every rank enters the backend's
      // collectives together; the recount below accepts whatever still
      // clears tolerance after refinement.
      dla.refine_locked(ctx.ws, ctx.locked, new_locked, ctx.ritz, ctx.scale,
                        ctx.resid);
      new_locked = 0;
      while (ctx.locked + new_locked < ctx.ne &&
             ctx.resid[std::size_t(ctx.locked + new_locked)] < ctx.tol) {
        ++new_locked;
      }
    }
    ctx.locked += new_locked;
    ctx.stats.locked_after = int(ctx.locked);
    // Residual spread over this iteration's active set (empty if everything
    // locked at once).
    const auto res_begin = ctx.resid.begin() + (ctx.locked - new_locked);
    if (res_begin != ctx.resid.end()) {
      ctx.stats.min_residual =
          double(*std::min_element(res_begin, ctx.resid.end()));
      ctx.stats.max_residual =
          double(*std::max_element(res_begin, ctx.resid.end()));
    }
    return ctx.locked >= ctx.cfg.nev ? StageOutcome::kConverged
                                     : StageOutcome::kContinue;
  }
};

}  // namespace chase::core::engine
