// The legacy ChASE v1.2 scheme — "LMS" (Limited Memory and Scaling) in the
// paper's benchmarks (Section 2.2/2.3).
//
// The Filter uses the same distributed HEMM as the new scheme, but QR, the
// Rayleigh-Ritz projection and the Residuals are executed *redundantly* on
// every rank: the distributed multivector is collected into a full N x n_e
// buffer via one broadcast per task (the message count that doubles when the
// rank count quadruples), the kernel runs on the full buffer on every rank,
// and the result is scattered back. Two redundant N x n_e buffers dominate
// the memory footprint — the reason ChASE(LMS) cannot run beyond 144 nodes
// in Figure 3a.
//
// On GPUs, v1.2 also copied every offloaded result back to the host
// immediately (Section 2.3); solve_lms records those transfers so the
// Figure 2 movement bars can be priced.
#pragma once

#include "core/chase.hpp"

namespace chase::core {

namespace detail {

/// v1.2 host-device round trip: the result of an offloaded kernel of
/// `bytes` is copied D2H and later re-uploaded.
inline void record_lms_roundtrip(std::size_t bytes) {
  if (auto* t = perf::thread_tracker()) {
    t->record_memcpy(bytes, /*to_device=*/false);
    t->record_memcpy(bytes, /*to_device=*/true);
  }
}

}  // namespace detail

/// Solve with the v1.2 scheme. Numerically equivalent to core::solve (same
/// filter, same locking); only the parallelization of QR/RR/Residuals
/// differs. Always uses Householder QR, as v1.2 did.
template <typename HOp, typename T = typename HOp::Scalar>
ChaseResult<T> solve_lms(HOp& h,
                         const ChaseConfig& cfg,
                         ChaseObserver<T>* observer = nullptr) {
  using R = RealType<T>;
  const auto& grid = h.grid();
  const auto& rmap = h.row_map();
  const auto& cmap = h.col_map();
  const Index n = h.global_size();
  const Index ne = cfg.subspace();
  CHASE_CHECK_MSG(cfg.nev > 0 && ne <= n, "invalid nev/nex");

  const Index mloc = rmap.local_size(grid.my_row());
  const Index bloc = cmap.local_size(grid.my_col());

  // Distributed filter buffers plus the two *redundant* full buffers of the
  // v1.2 layout (Section 2.3: 2 x O(N n_e) per rank).
  la::Matrix<T> c(mloc, ne), b(bloc, ne);
  la::Matrix<T> cfull(n, ne), wfull(n, ne);
  la::Matrix<T> a(ne, ne), evec(ne, ne), scratch;

  ChaseResult<T> result;
  result.bounds = lanczos_bounds(h, ne, cfg.lanczos_steps,
                                 cfg.lanczos_vectors, cfg.seed);
  const R b_sup = result.bounds.b_sup;
  R mu_1 = result.bounds.mu_1;
  R mu_ne = result.bounds.mu_ne;
  R center = (b_sup + mu_ne) / R(2);
  R half = (b_sup - mu_ne) / R(2);
  const R scale = std::max(std::abs(b_sup), std::abs(mu_1));
  const R tol = R(cfg.tol);

  for (const auto& run : rmap.runs(grid.my_row())) {
    for (Index j = 0; j < ne; ++j) {
      for (Index k = 0; k < run.length; ++k) {
        c(run.local_begin + k, j) = lanczos_entry<T>(
            cfg.seed, std::uint64_t(1000 + j), run.global_begin + k);
      }
    }
  }

  std::vector<R> ritz(std::size_t(ne), mu_1);
  std::vector<R> resid(std::size_t(ne), R(1));
  std::vector<int> degs(std::size_t(ne), round_up_even(cfg.initial_degree));
  Index locked = 0;

  for (int iter = 1; iter <= cfg.max_iterations; ++iter) {
    IterationStats stats;
    stats.iteration = iter;
    stats.locked_before = int(locked);
    const Index act = ne - locked;

    if (iter > 1) {
      mu_1 = *std::min_element(ritz.begin(), ritz.end());
      mu_ne = *std::max_element(ritz.begin(), ritz.end());
      center = (b_sup + mu_ne) / R(2);
      half = (b_sup - mu_ne) / R(2);
      if (cfg.optimize_degree) {
        optimize_degrees(ritz, resid, tol, center, half, int(locked),
                         cfg.max_degree, degs);
      } else {
        std::fill(degs.begin() + locked, degs.end(),
                  round_up_even(cfg.initial_degree));
      }
      std::vector<Index> perm(static_cast<std::size_t>(act));
      std::iota(perm.begin(), perm.end(), Index(0));
      std::stable_sort(perm.begin(), perm.end(), [&](Index x, Index y) {
        return degs[std::size_t(locked + x)] < degs[std::size_t(locked + y)];
      });
      detail::permute_active(c.view(), locked, perm, ritz, resid, degs,
                             scratch);
    }

    // Filter: unchanged from the new scheme (Section 2.2's custom HEMM).
    std::vector<int> act_degs(degs.begin() + locked, degs.end());
    stats.degrees = act_degs;
    stats.matvecs = chebyshev_filter(
        h, c.block(0, locked, mloc, act), b.block(0, locked, bloc, act),
        act_degs, center, half, mu_1);
    result.matvecs += stats.matvecs;

    // Same per-column consensus guard as the new scheme (chase.hpp), but
    // with the v1.2 semantics: any corrupt column aborts the solve (no
    // re-randomization recovery in the legacy scheme).
    {
      perf::RegionScope guard_scope(perf::Region::kFilter);
      std::vector<R> col_ok(std::size_t(act), R(1));
      for (Index j = 0; j < act; ++j) {
        for (Index i = 0; i < mloc; ++i) {
          const R mag = abs_value(c(i, locked + j));
          if (!std::isfinite(mag) || mag > R(1e140)) {
            col_ok[std::size_t(j)] = R(0);
            break;
          }
        }
      }
      grid.col_comm().all_reduce(col_ok.data(), act, comm::Reduction::kMin);
      if (std::count(col_ok.begin(), col_ok.end(), R(1)) != act) {
        CHASE_LOG_INFO("filter diverged (b_sup too small?); aborting solve");
        result.iterations = iter;
        break;
      }
    }
    stats.est_cond = double(
        qr::estimate_filtered_cond(ritz, center, half, degs, int(locked)));
    if (observer != nullptr) {
      observer->after_filter(iter, int(locked), c.view(), stats.est_cond);
    }

    // ---- Redundant QR (v1.2): collect, factorize everywhere, scatter ----
    {
      perf::RegionScope qr_scope(perf::Region::kQr);
      dist::gather_rows(grid.col_comm(), rmap, c.view().as_const(),
                        cfull.view());
      la::householder_orthonormalize(cfull.view());
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 4.0 : 1.0;
        t->add_flops(perf::FlopClass::kPanel,
                     4.0 * z * double(n) * double(ne) * double(ne));
      }
      detail::record_lms_roundtrip(std::size_t(n) * std::size_t(ne) *
                                   sizeof(T));
      // Locked columns are re-injected from the previous full copy.
      if (locked > 0) {
        la::copy(wfull.block(0, 0, n, locked).as_const(),
                 cfull.block(0, 0, n, locked));
      }
      dist::scatter_rows(rmap, grid.my_row(), cfull.view().as_const(),
                         c.view());
    }
    stats.qr_variant = qr::QrVariant::kHouseholder;

    // ---- Redundant Rayleigh-Ritz ----
    {
      perf::RegionScope rr(perf::Region::kRayleighRitz);
      // W = H C via the distributed HEMM, then collected redundantly.
      auto b_act = b.block(0, locked, bloc, act);
      h.apply_c2b(T(1), c.block(0, locked, mloc, act).as_const(), T(0), b_act);
      dist::gather_rows(grid.row_comm(), cmap, b_act.as_const(),
                        wfull.block(0, locked, n, act));

      // Rectangular projection A = C^H W through the policy-selected kernel
      // engine; the Hermitian work (W = H C above) already went through
      // la::hemm on the diagonal ranks inside apply_c2b.
      auto a_act = a.block(0, 0, act, act);
      la::gemm(T(1), la::Op::kConjTrans,
               cfull.block(0, locked, n, act).as_const(), la::Op::kNoTrans,
               wfull.block(0, locked, n, act).as_const(), T(0), a_act);
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 8.0 : 2.0;
        // Redundant, executed on a single device per rank in v1.2: priced
        // at the panel rate, not the multi-GPU GEMM rate.
        t->add_flops(perf::FlopClass::kPanel,
                     z * double(n) * double(act) * double(act));
      }
      std::vector<R> theta;
      auto evec_act = evec.block(0, 0, act, act);
      la::heevd(a_act, theta, evec_act);
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 4.0 : 1.0;
        t->add_flops(perf::FlopClass::kSmall,
                     z * 9.0 * double(act) * double(act) * double(act));
      }
      std::copy(theta.begin(), theta.end(), ritz.begin() + locked);

      // Redundant back-transform on the full buffer.
      la::gemm(T(1), cfull.block(0, locked, n, act).as_const(),
               evec_act.as_const(), T(0), wfull.block(0, locked, n, act));
      la::copy(wfull.block(0, locked, n, act).as_const(),
               cfull.block(0, locked, n, act));
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 8.0 : 2.0;
        t->add_flops(perf::FlopClass::kPanel,
                     z * double(n) * double(act) * double(act));
      }
      detail::record_lms_roundtrip(std::size_t(n) * std::size_t(act) *
                                   sizeof(T));
      dist::scatter_rows(rmap, grid.my_row(), cfull.view().as_const(),
                         c.view());
    }

    // ---- Redundant residuals ----
    {
      perf::RegionScope res_scope(perf::Region::kResidual);
      auto b_act = b.block(0, locked, bloc, act);
      h.apply_c2b(T(1), c.block(0, locked, mloc, act).as_const(), T(0), b_act);
      dist::gather_rows(grid.row_comm(), cmap, b_act.as_const(),
                        wfull.block(0, locked, n, act));
      detail::record_lms_roundtrip(std::size_t(n) * std::size_t(act) *
                                   sizeof(T));
      for (Index j = 0; j < act; ++j) {
        const R lambda = ritz[std::size_t(locked + j)];
        R acc(0);
        for (Index i = 0; i < n; ++i) {
          const T d = wfull(i, locked + j) - T(lambda) * cfull(i, locked + j);
          acc += real_part(conjugate(d) * d);
        }
        resid[std::size_t(locked + j)] = std::sqrt(acc) / scale;
      }
      if (auto* t = perf::thread_tracker()) {
        t->add_mem_bytes(3.0 * double(n) * double(act) * sizeof(T));
      }
    }

    // wfull keeps the current full Ritz basis for the next iteration's
    // locked-column re-injection.
    la::copy(cfull.view().as_const(), wfull.view());

    Index new_locked = 0;
    while (locked + new_locked < ne &&
           resid[std::size_t(locked + new_locked)] < tol) {
      ++new_locked;
    }
    locked += new_locked;
    stats.locked_after = int(locked);
    const auto res_begin = resid.begin() + (locked - new_locked);
    if (res_begin != resid.end()) {
      stats.min_residual = double(*std::min_element(res_begin, resid.end()));
      stats.max_residual = double(*std::max_element(res_begin, resid.end()));
    }
    result.stats.push_back(stats);
    result.iterations = iter;
    if (observer != nullptr) observer->after_iteration(stats);

    if (locked >= cfg.nev) {
      result.converged = true;
      break;
    }
  }

  result.eigenvalues.assign(ritz.begin(), ritz.begin() + cfg.nev);
  result.eigenvectors.resize(mloc, cfg.nev);
  la::copy(c.block(0, 0, mloc, cfg.nev).as_const(),
           result.eigenvectors.view());
  return result;
}

}  // namespace chase::core
