// The legacy ChASE v1.2 scheme — "LMS" (Limited Memory and Scaling) in the
// paper's benchmarks (Section 2.2/2.3).
//
// The Filter uses the same distributed HEMM as the new scheme, but QR, the
// Rayleigh-Ritz projection and the Residuals are executed *redundantly* on
// every rank: the distributed multivector is collected into a full N x n_e
// buffer via one broadcast per task (the message count that doubles when the
// rank count quadruples), the kernel runs on the full buffer on every rank,
// and the result is scattered back. Two redundant N x n_e buffers dominate
// the memory footprint — the reason ChASE(LMS) cannot run beyond 144 nodes
// in Figure 3a.
//
// On GPUs, v1.2 also copied every offloaded result back to the host
// immediately (Section 2.3); the redundant backend records those transfers
// so the Figure 2 movement bars can be priced.
//
// Since the layered-engine refactor this file holds no duplicated filter /
// QR / Rayleigh-Ritz code: the scheme is the same staged pipeline as
// core::solve with the RedundantDlaBackend, the abort-on-corruption filter
// guard of v1.2, and one extra stage syncing the redundant full basis copy.
#pragma once

#include "core/chase.hpp"

namespace chase::core {

/// Solve with the v1.2 scheme. Numerically equivalent to core::solve (same
/// filter, same locking); only the parallelization of QR/RR/Residuals
/// differs. Always uses Householder QR, as v1.2 did.
/// `ck` wires in the checkpoint/restart engine exactly as in core::solve;
/// the redundant backend restores its full basis copies from the snapshot's
/// replicated V directly (no collective), see RedundantDlaBackend.
template <typename HOp, typename T = typename HOp::Scalar>
ChaseResult<T> solve_lms(HOp& h,
                         const ChaseConfig& cfg,
                         ChaseObserver<T>* observer = nullptr,
                         const ckpt::SolveCkpt<T>& ck = {}) {
  const Index ne = cfg.subspace();
  CHASE_CHECK_MSG(cfg.nev > 0 && ne <= h.global_size(), "invalid nev/nex");

  // Same solve-start autotuner resolution as core::solve.
  tune::resolve_at_solve_start();

  // Same precision-policy backend selection as core::solve: the mixed
  // wrapper derives from the redundant backend, so the legacy QR/RR path is
  // preserved while the filter runs on the fp32 shadow.
  RedundantDlaBackend<HOp> dla_plain(h);
  std::optional<MixedBackendFor<HOp, RedundantDlaBackend<HOp>>> dla_mixed;
  DlaBackend<T>& dla = select_backend(h, dla_plain, dla_mixed);
  engine::SolverWorkspace<T> ws;
  dla.setup(ws, cfg);

  ChaseResult<T> result;
  engine::SolveContext<T> ctx{cfg, observer, result, ws};
  int first_iter = 1;
  if (ck.resume != nullptr) {
    ckpt::apply_resume(*ck.resume, ctx, dla);
    first_iter = int(ck.resume->iter) + 1;
  } else {
    result.bounds = dla.estimate_bounds(cfg);
    engine::seed_initial_subspace<T>(ws, dla, cfg, {});
    ctx.init_from_bounds();
  }

  engine::PrepStage<T> prep;
  engine::FilterStage<T> filter(/*recover=*/false);
  engine::QrStage<T> qr;
  engine::RayleighRitzStage<T> rr;
  engine::ResidualStage<T> residual;
  engine::BasisSyncStage<T> basis_sync;
  engine::LockingStage<T> locking;
  ckpt::CheckpointStage<T> checkpoint(ck.engine);
  std::vector<engine::Stage<T>*> stages{
      &prep, &filter, &qr, &rr, &residual, &basis_sync, &locking};
  if (ck.engine != nullptr && ck.engine->enabled()) {
    stages.push_back(&checkpoint);
  }
  engine::run_pipeline(ctx, dla, stages, first_iter);

  const Index mloc = dla.c_rows();
  result.eigenvalues.assign(ctx.ritz.begin(), ctx.ritz.begin() + cfg.nev);
  result.eigenvectors.resize(mloc, cfg.nev);
  la::copy(ws.c().block(0, 0, mloc, cfg.nev).as_const(),
           result.eigenvectors.view());
  return result;
}

}  // namespace chase::core
