// Solver for sequences of correlated eigenproblems (the DFT use case).
//
// Density Functional Theory rebuilds the Hamiltonian at every
// self-consistency step; consecutive problems share eigenvectors to O(eps).
// ChaseSequence packages the warm-start workflow: the first solve starts
// from a random subspace, every later solve is seeded with the previous
// eigenvectors and a reduced first-iteration filter degree (the residuals
// already start small, so a full-strength first sweep would be wasted —
// exactly the "approximate solutions as input" rationale of Section 1).
#pragma once

#include "common/rng.hpp"
#include "core/chase.hpp"

namespace chase::core {

template <typename T>
class ChaseSequence {
 public:
  explicit ChaseSequence(ChaseConfig cfg, int warm_initial_degree = 10)
      : cfg_(std::move(cfg)), warm_degree_(warm_initial_degree) {}

  const ChaseConfig& config() const { return cfg_; }
  bool has_guess() const { return !previous_.empty(); }

  /// Position in the sequence's RNG stream: problem k draws its randomness
  /// from the derived seed mix(seed, k) (k = 0 keeps the base seed, so a
  /// one-problem sequence is bitwise-identical to a plain solve). The
  /// counter is checkpointed with every snapshot and restorable, which is
  /// what keeps a resumed sequence bitwise-comparable to an uninterrupted
  /// one — reseeding from the *global* seed after a resume would hand every
  /// problem the same randomness.
  std::uint64_t stream() const { return stream_; }
  void set_stream(std::uint64_t stream) { stream_ = stream; }

  /// Solve the next problem of the sequence; H may be any Hamiltonian
  /// operator (dense distributed or matrix-free) but must keep the same
  /// layout (grid + maps) across the sequence. `ck` threads the
  /// checkpoint/restart plumbing through to core::solve; resuming restores
  /// the stream counter from the snapshot before deriving the seed.
  template <typename HOp>
  ChaseResult<T> solve_next(HOp& h, ChaseObserver<T>* observer = nullptr,
                            const ckpt::SolveCkpt<T>& ck = {}) {
    ChaseConfig cfg = cfg_;
    if (ck.resume != nullptr) stream_ = ck.resume->rng_stream;
    cfg.seed = stream_ == 0 ? cfg_.seed : Rng::mix(cfg_.seed, stream_);
    if (ck.engine != nullptr) ck.engine->set_rng_stream(stream_);
    la::ConstMatrixView<T> guess;
    if (has_guess()) {
      cfg.initial_degree = warm_degree_;
      guess = previous_.cview();
    }
    auto result = core::solve(h, cfg, observer, guess, ck);
    ++stream_;
    if (result.converged) {
      previous_ = la::clone(result.eigenvectors.view().as_const());
    }
    return result;
  }

  /// Drop the stored guess (e.g. after a large change of the Hamiltonian).
  void reset() { previous_ = la::Matrix<T>(); }

 private:
  ChaseConfig cfg_;
  int warm_degree_;
  std::uint64_t stream_ = 0;  // index of the next problem's RNG stream
  la::Matrix<T> previous_;  // local C-layout eigenvectors of the last solve
};

}  // namespace chase::core
