// Solver for sequences of correlated eigenproblems (the DFT use case).
//
// Density Functional Theory rebuilds the Hamiltonian at every
// self-consistency step; consecutive problems share eigenvectors to O(eps).
// ChaseSequence packages the warm-start workflow: the first solve starts
// from a random subspace, every later solve is seeded with the previous
// eigenvectors and a reduced first-iteration filter degree (the residuals
// already start small, so a full-strength first sweep would be wasted —
// exactly the "approximate solutions as input" rationale of Section 1).
#pragma once

#include "core/chase.hpp"

namespace chase::core {

template <typename T>
class ChaseSequence {
 public:
  explicit ChaseSequence(ChaseConfig cfg, int warm_initial_degree = 10)
      : cfg_(std::move(cfg)), warm_degree_(warm_initial_degree) {}

  const ChaseConfig& config() const { return cfg_; }
  bool has_guess() const { return !previous_.empty(); }

  /// Solve the next problem of the sequence; H may be any Hamiltonian
  /// operator (dense distributed or matrix-free) but must keep the same
  /// layout (grid + maps) across the sequence.
  template <typename HOp>
  ChaseResult<T> solve_next(HOp& h, ChaseObserver<T>* observer = nullptr) {
    ChaseConfig cfg = cfg_;
    la::ConstMatrixView<T> guess;
    if (has_guess()) {
      cfg.initial_degree = warm_degree_;
      guess = previous_.cview();
    }
    auto result = core::solve(h, cfg, observer, guess);
    if (result.converged) {
      previous_ = la::clone(result.eigenvectors.view().as_const());
    }
    return result;
  }

  /// Drop the stored guess (e.g. after a large change of the Hamiltonian).
  void reset() { previous_ = la::Matrix<T>(); }

 private:
  ChaseConfig cfg_;
  int warm_degree_;
  la::Matrix<T> previous_;  // local C-layout eigenvectors of the last solve
};

}  // namespace chase::core
