#include "core/precision.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

// Build-time default policy, plumbed through the CMake cache variable
// CHASE_DEFAULT_PRECISION (CMakePresets.json).
#ifndef CHASE_DEFAULT_PRECISION_NAME
#define CHASE_DEFAULT_PRECISION_NAME "double"
#endif

namespace chase::core {

namespace {

std::atomic<int>& precision_slot() {
  static std::atomic<int> slot = [] {
    Precision p = parse_precision(CHASE_DEFAULT_PRECISION_NAME)
                      .value_or(Precision::kDouble);
    if (const char* env = std::getenv("CHASE_PRECISION")) {
      if (auto parsed = parse_precision(env)) p = *parsed;
    }
    return std::atomic<int>(int(p));
  }();
  return slot;
}

// The promotion config is a small aggregate, not an atomic word; guarded by
// a mutex (read once per solve at setup, never on the hot path).
struct PromotionSlot {
  std::mutex mu;
  engine::PromotionConfig cfg;
};

PromotionSlot& promotion_slot() {
  static PromotionSlot slot;
  return slot;
}

}  // namespace

std::string_view precision_name(Precision p) {
  switch (p) {
    case Precision::kMixed:
      return "mixed";
    case Precision::kDouble:
    default:
      return "double";
  }
}

std::optional<Precision> parse_precision(std::string_view name) {
  if (name == "double") return Precision::kDouble;
  if (name == "mixed") return Precision::kMixed;
  return std::nullopt;
}

Precision precision() {
  return Precision(precision_slot().load(std::memory_order_relaxed));
}

void set_precision(Precision p) {
  precision_slot().store(int(p), std::memory_order_relaxed);
}

engine::PromotionConfig promotion_config() {
  auto& slot = promotion_slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.cfg;
}

void set_promotion_config(const engine::PromotionConfig& cfg) {
  auto& slot = promotion_slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.cfg = cfg;
}

}  // namespace chase::core
