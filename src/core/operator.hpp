// Matrix-free Hamiltonian operators.
//
// ChASE's C++ interface abstracts the Hamiltonian application, so a user can
// plug in an operator that never materializes the dense matrix — stencils,
// tensor contractions, FFT-based Hamiltonians. MatrixFreeOperator adapts any
// "compute row i of H x" callable to the solver's distributed interface
// (the same duck type as dist::DistHermitianMatrix): the input multivector
// is collected once per application and each rank evaluates exactly the
// output rows its layout owns.
//
// The collection step costs one gather per apply — matrix-free operators
// trade the communication-avoiding HEMM for O(1) memory. For stencil-type
// operators a halo exchange would suffice; that specialization is left to
// the operator author (the adapter is correct for arbitrary H).
#pragma once

#include <functional>

#include "comm/communicator.hpp"
#include "dist/index_map.hpp"
#include "dist/multivector.hpp"
#include "la/matrix.hpp"

namespace chase::core {

/// Adapter: F is a callable `T f(Index row, ConstMatrixView<T> x_full,
/// Index col)` evaluating entry `row` of H * x_full[:, col]. The operator
/// must be Hermitian; `shift_diagonal` accumulates a scalar added to the
/// diagonal (the filter's center shift).
template <typename T, typename F>
class MatrixFreeOperator {
 public:
  using Scalar = T;

  MatrixFreeOperator(const comm::Grid2d& grid, dist::IndexMap row_map,
                     dist::IndexMap col_map, F apply_row)
      : grid_(&grid),
        row_map_(std::move(row_map)),
        col_map_(std::move(col_map)),
        apply_row_(std::move(apply_row)) {
    CHASE_CHECK(row_map_.global_size() == col_map_.global_size());
    CHASE_CHECK(row_map_.parts() == grid.nprow());
    CHASE_CHECK(col_map_.parts() == grid.npcol());
  }

  la::Index global_size() const { return row_map_.global_size(); }
  const dist::IndexMap& row_map() const { return row_map_; }
  const dist::IndexMap& col_map() const { return col_map_; }
  const comm::Grid2d& grid() const { return *grid_; }

  void shift_diagonal(RealType<T> s) { shift_ += s; }

  /// Bind the gathered-input buffer to externally owned storage — the
  /// solver engine points this at its SolverWorkspace arena so steady-state
  /// applies allocate nothing. Pass nullptr to return to the private
  /// grow-on-demand buffer (standalone use outside the engine).
  void bind_gather_buffer(la::Matrix<T>* buf) { bound_full_ = buf; }

  /// y_B = alpha * H x_C + beta * y_B (H Hermitian: H^H == H).
  void apply_c2b(T alpha, la::ConstMatrixView<T> x, T beta,
                 la::MatrixView<T> y) {
    apply_impl(alpha, x, beta, y, grid_->col_comm(), row_map_,
               grid_->my_row(), col_map_, grid_->my_col());
  }

  /// y_C = alpha * H x_B + beta * y_C.
  void apply_b2c(T alpha, la::ConstMatrixView<T> x, T beta,
                 la::MatrixView<T> y) {
    apply_impl(alpha, x, beta, y, grid_->row_comm(), col_map_,
               grid_->my_col(), row_map_, grid_->my_row());
  }

 private:
  void apply_impl(T alpha, la::ConstMatrixView<T> x, T beta,
                  la::MatrixView<T> y, const comm::Communicator& comm,
                  const dist::IndexMap& in_map, int in_part,
                  const dist::IndexMap& out_map, int out_part) {
    CHASE_CHECK_MSG(x.rows() == in_map.local_size(in_part),
                    "matrix-free apply: input rows mismatch");
    CHASE_CHECK_MSG(y.rows() == out_map.local_size(out_part) &&
                        y.cols() == x.cols(),
                    "matrix-free apply: output shape mismatch");
    const la::Index n = global_size();
    const la::Index ncols = x.cols();
    la::Matrix<T>& full = bound_full_ != nullptr ? *bound_full_ : full_;
    if (full.rows() != n || full.cols() < ncols) {
      full.resize(n, std::max(full.cols(), ncols));
    }
    auto xf = full.block(0, 0, n, ncols);
    dist::gather_rows(comm, in_map, x, xf);

    // Operators that precompute per-block state (e.g. the generalized-
    // eigenproblem transform) expose a begin_apply hook, called once per
    // gathered input block before the per-row evaluations.
    if constexpr (requires(F f) { f.begin_apply(xf.as_const()); }) {
      apply_row_.begin_apply(xf.as_const());
    }

    for (const auto& run : out_map.runs(out_part)) {
      for (la::Index k = 0; k < run.length; ++k) {
        const la::Index g = run.global_begin + k;
        const la::Index l = run.local_begin + k;
        for (la::Index j = 0; j < ncols; ++j) {
          const T hx = apply_row_(g, xf.as_const(), j) + T(shift_) * xf(g, j);
          y(l, j) = alpha * hx + (beta == T(0) ? T(0) : beta * y(l, j));
        }
      }
    }
  }

  const comm::Grid2d* grid_;
  dist::IndexMap row_map_;
  dist::IndexMap col_map_;
  F apply_row_;
  RealType<T> shift_ = 0;
  la::Matrix<T> full_;  // gathered input, grown on demand when unbound
  la::Matrix<T>* bound_full_ = nullptr;  // workspace-owned gather buffer
};

/// 7-point finite-difference Laplacian on an nx x ny x nz grid with
/// homogeneous Dirichlet boundaries (row-major index ((z*ny)+y)*nx+x).
/// Exact eigenvalues: 4 [ sin^2(pi i / 2(nx+1)) + sin^2(pi j / 2(ny+1)) +
/// sin^2(pi k / 2(nz+1)) ], i,j,k >= 1 — the classic matrix-free test
/// operator with a known spectrum.
template <typename T>
struct Laplacian3D {
  la::Index nx, ny, nz;

  la::Index size() const { return nx * ny * nz; }

  T operator()(la::Index row, la::ConstMatrixView<T> x, la::Index col) const {
    const la::Index plane = nx * ny;
    const la::Index z = row / plane;
    const la::Index y = (row % plane) / nx;
    const la::Index xx = row % nx;
    T acc = T(6) * x(row, col);
    if (xx > 0) acc -= x(row - 1, col);
    if (xx + 1 < nx) acc -= x(row + 1, col);
    if (y > 0) acc -= x(row - nx, col);
    if (y + 1 < ny) acc -= x(row + nx, col);
    if (z > 0) acc -= x(row - plane, col);
    if (z + 1 < nz) acc -= x(row + plane, col);
    return acc;
  }

  /// All exact eigenvalues, ascending.
  std::vector<RealType<T>> exact_eigenvalues() const {
    using R = RealType<T>;
    std::vector<R> out;
    out.reserve(std::size_t(size()));
    const R pi = R(3.14159265358979323846);
    auto s2 = [&](la::Index i, la::Index m) {
      const R v = std::sin(pi * R(i) / (R(2) * R(m + 1)));
      return v * v;
    };
    for (la::Index k = 1; k <= nz; ++k) {
      for (la::Index j = 1; j <= ny; ++j) {
        for (la::Index i = 1; i <= nx; ++i) {
          out.push_back(R(4) * (s2(i, nx) + s2(j, ny) + s2(k, nz)));
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

}  // namespace chase::core
