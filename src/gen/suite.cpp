#include "gen/suite.hpp"

namespace chase::gen {

const std::vector<SuiteProblem>& table1_suite() {
  static const std::vector<SuiteProblem> suite = {
      // name        paper_n  nev   nex   n     nev  nex  source      kind              seed
      {"NaCl-9k", 9273, 256, 60, 928, 26, 6, "FLEUR", SpectrumKind::kDft, 101},
      {"AuAg-13k", 13379, 972, 100, 1338, 97, 10, "FLEUR", SpectrumKind::kDft,
       102},
      {"TiO2-29k", 29528, 2560, 400, 1476, 128, 20, "FLEUR",
       SpectrumKind::kDft, 103},
      {"In2O3-76k", 76887, 100, 40, 1538, 20, 8, "BSE UIUC",
       SpectrumKind::kBse, 104},
      {"In2O3-115k", 115459, 100, 40, 2309, 20, 8, "BSE UIUC",
       SpectrumKind::kBse, 105},
      {"HfO2-76k", 76674, 100, 40, 1534, 20, 8, "BSE UIUC",
       SpectrumKind::kBse, 106},
  };
  return suite;
}

const std::vector<SuiteProblem>& table1_suite_medium() {
  static const std::vector<SuiteProblem> suite = {
      {"NaCl-9k", 9273, 256, 60, 464, 26, 6, "FLEUR", SpectrumKind::kDft, 101},
      {"AuAg-13k", 13379, 972, 100, 669, 48, 8, "FLEUR", SpectrumKind::kDft,
       102},
      {"TiO2-29k", 29528, 2560, 400, 738, 64, 12, "FLEUR", SpectrumKind::kDft,
       103},
      {"In2O3-76k", 76887, 100, 40, 769, 16, 6, "BSE UIUC",
       SpectrumKind::kBse, 104},
      {"In2O3-115k", 115459, 100, 40, 1154, 16, 6, "BSE UIUC",
       SpectrumKind::kBse, 105},
      {"HfO2-76k", 76674, 100, 40, 767, 16, 6, "BSE UIUC", SpectrumKind::kBse,
       106},
  };
  return suite;
}

const std::vector<SuiteProblem>& table1_suite_small() {
  static const std::vector<SuiteProblem> suite = {
      {"NaCl-9k", 9273, 256, 60, 160, 12, 4, "FLEUR", SpectrumKind::kDft, 101},
      {"AuAg-13k", 13379, 972, 100, 180, 14, 4, "FLEUR", SpectrumKind::kDft,
       102},
      {"TiO2-29k", 29528, 2560, 400, 200, 16, 4, "FLEUR", SpectrumKind::kDft,
       103},
      {"In2O3-76k", 76887, 100, 40, 190, 8, 4, "BSE UIUC", SpectrumKind::kBse,
       104},
      {"In2O3-115k", 115459, 100, 40, 210, 8, 4, "BSE UIUC",
       SpectrumKind::kBse, 105},
      {"HfO2-76k", 76674, 100, 40, 170, 8, 4, "BSE UIUC", SpectrumKind::kBse,
       106},
  };
  return suite;
}

}  // namespace chase::gen
