// Test-matrix generation with prescribed spectra (Section 4.1.2).
//
// The paper builds artificial matrices "inspired by the testing
// infrastructure in LAPACK": a diagonal D of prescribed eigenvalues
// conjugated by a random unitary. We use the xLATMS construction — a few
// random Householder similarity transforms applied to D — which preserves
// the spectrum exactly at O(n^2) cost per reflector, instead of the O(n^3)
// full Haar-QR conjugation.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/matrix.hpp"

namespace chase::gen {

using la::Index;

/// n eigenvalues uniformly spaced in [lo, hi] (the paper's Uniform type).
template <typename R>
std::vector<R> uniform_spectrum(Index n, R lo, R hi) {
  std::vector<R> eigs(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    eigs[std::size_t(i)] =
        n == 1 ? lo : lo + (hi - lo) * R(i) / R(n - 1);
  }
  return eigs;
}

/// DFT-like spectrum: a handful of semi-core states below a dense band that
/// grows super-linearly (the shape of FLEUR Hamiltonian spectra, whose low
/// end ChASE solves for).
///
/// The depth of the lowest states relative to the damped interval is chosen
/// so that the Chebyshev growth factor at lambda_min stays ~2: over the
/// maximal degree 36 this produces filtered condition numbers up to ~1e12,
/// the regime the paper's Figure 1 reports for its application matrices. A
/// much deeper outlier would push the filtered block beyond u^{-1}, where no
/// QR variant can recover the active subspace — outside the operating regime
/// of the method (and of the paper's test suite).
template <typename R>
std::vector<R> dft_like_spectrum(Index n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<R> eigs(static_cast<std::size_t>(n));
  const Index ncore = std::max<Index>(n / 50, 2);
  for (Index i = 0; i < ncore; ++i) {
    eigs[std::size_t(i)] =
        R(-9) + R(3) * R(i) / R(ncore) + rng.uniform(R(-0.1), R(0.1));
  }
  for (Index i = ncore; i < n; ++i) {
    const R x = R(i - ncore) / R(n - ncore);
    eigs[std::size_t(i)] =
        R(-1) + R(55) * std::pow(x, R(1.5)) + rng.uniform(R(0), R(0.01));
  }
  std::sort(eigs.begin(), eigs.end());
  return eigs;
}

/// BSE-like spectrum: positive excitation energies — discrete low-lying
/// excitonic states above the optical gap, then a quasi-continuum (the
/// Bethe-Salpeter problems of Table 1 solve for ~100 lowest states of such
/// spectra). The excitonic states are separated by O(10 meV)-style gaps, not
/// quasi-degenerate: the real BSE problems converge in a handful of ChASE
/// iterations, which requires this separation.
template <typename R>
std::vector<R> bse_like_spectrum(Index n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<R> eigs(static_cast<std::size_t>(n));
  const Index nlow = std::max<Index>(n / 60, 4);
  for (Index i = 0; i < nlow; ++i) {
    const R x = R(i) / R(nlow);
    eigs[std::size_t(i)] = R(2) + R(0.8) * std::pow(x, R(1.3)) +
                           rng.uniform(R(0), R(0.002));
  }
  for (Index i = nlow; i < n; ++i) {
    const R x = R(i - nlow) / R(n - nlow);
    eigs[std::size_t(i)] = R(2.8) + R(25) * std::pow(x, R(1.35)) +
                           rng.uniform(R(0), R(0.01));
  }
  std::sort(eigs.begin(), eigs.end());
  return eigs;
}

/// Dense Hermitian matrix with exactly the given eigenvalues: D conjugated
/// by `reflectors` random Householder similarity transforms (two suffice to
/// make every entry dense).
template <typename T>
la::Matrix<T> hermitian_with_spectrum(const std::vector<RealType<T>>& eigs,
                                      std::uint64_t seed, int reflectors = 2) {
  using R = RealType<T>;
  const Index n = Index(eigs.size());
  la::Matrix<T> a(n, n);
  for (Index j = 0; j < n; ++j) a(j, j) = T(eigs[std::size_t(j)]);

  Rng rng(seed);
  std::vector<T> u(static_cast<std::size_t>(n));
  std::vector<T> p(static_cast<std::size_t>(n));
  for (int r = 0; r < reflectors; ++r) {
    // Random unit vector u; H = I - 2 u u^H is unitary and Hermitian.
    for (Index i = 0; i < n; ++i) u[std::size_t(i)] = rng.gaussian<T>();
    const R nrm = la::nrm2(n, u.data());
    la::scal(n, T(R(1) / nrm), u.data());
    // A <- H A H = A - 2 (u w^H + w u^H), w = A u - (u^H A u) u.
    la::gemv(T(1), a.view().as_const(), u.data(), T(0), p.data());
    const T alpha = la::dotc(n, u.data(), p.data());
    la::axpy(n, -alpha, u.data(), p.data());
    std::vector<T> u2(u);
    la::scal(n, T(R(2)), u2.data());
    la::her2_minus(a.view(), u2.data(), p.data());
  }
  // Round-off symmetrization.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      const T avg = (a(i, j) + conjugate(a(j, i))) / R(2);
      a(i, j) = avg;
      a(j, i) = conjugate(avg);
    }
    a(j, j) = T(real_part(a(j, j)));
  }
  return a;
}

/// Uniform-type artificial matrix (the weak/strong scaling workload).
template <typename T>
la::Matrix<T> uniform_matrix(Index n, RealType<T> lo, RealType<T> hi,
                             std::uint64_t seed) {
  return hermitian_with_spectrum<T>(uniform_spectrum<RealType<T>>(n, lo, hi),
                                    seed);
}

}  // namespace chase::gen
