// The Table 1 problem suite, reproduced as synthetic analogues.
//
// The original problems are FLEUR (DFT) and BSE-UIUC (Bethe-Salpeter)
// application matrices that are not redistributable; each analogue keeps the
// original's nev/N and nex/nev ratios and a spectrum with the qualitative
// structure of its source (see gen/spectrum.hpp), at roughly 1/10 linear
// scale so a dense matrix fits this machine (documented in DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "gen/spectrum.hpp"

namespace chase::gen {

enum class SpectrumKind { kDft, kBse };

struct SuiteProblem {
  std::string name;      // paper name of the source problem
  Index paper_n;         // size in the paper
  Index paper_nev;
  Index paper_nex;
  Index n;               // scaled size used here
  Index nev;
  Index nex;
  std::string source;    // FLEUR / BSE UIUC
  SpectrumKind kind;
  std::uint64_t seed;
};

/// The six problems of Table 1 (scaled).
const std::vector<SuiteProblem>& table1_suite();

/// A reduced-size version of the suite for unit tests.
const std::vector<SuiteProblem>& table1_suite_small();

/// Mid-size version used by the Figure 1 bench, where the exact kappa_2 of
/// the filtered block is recomputed by Jacobi SVD at every iteration.
const std::vector<SuiteProblem>& table1_suite_medium();

/// Prescribed spectrum of a suite problem.
template <typename R>
std::vector<R> suite_spectrum(const SuiteProblem& p) {
  return p.kind == SpectrumKind::kDft ? dft_like_spectrum<R>(p.n, p.seed)
                                      : bse_like_spectrum<R>(p.n, p.seed);
}

/// Materialize the (complex Hermitian, as in the paper) matrix of a suite
/// problem.
template <typename T>
la::Matrix<T> suite_matrix(const SuiteProblem& p) {
  return hermitian_with_spectrum<T>(suite_spectrum<RealType<T>>(p), p.seed + 1);
}

}  // namespace chase::gen
