#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace chase::env {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

void reject(const char* name, std::string_view text, const std::string& why,
            const std::string& expected) {
  std::ostringstream os;
  os << name << "=\"" << text << "\": " << why << " (expected " << expected
     << ")";
  throw ConfigError(os.str());
}

long long positive_int(const char* name, const char* text) {
  const char* safe = text == nullptr ? "" : text;
  const long long parsed =
      ranged_int(name, safe, 1,
                 std::numeric_limits<long long>::max());
  return parsed;
}

std::optional<long long> positive_env(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return std::nullopt;
  return positive_int(name, text);
}

std::optional<std::string> text_env(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr) return std::nullopt;
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return std::nullopt;
  return std::string(trimmed);
}

std::vector<std::string> split_list(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    const std::string_view token =
        text.substr(start, pos == std::string_view::npos ? std::string_view::npos
                                                         : pos - start);
    out.emplace_back(trim(token));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

long long ranged_int(const char* name, std::string_view token, long long lo,
                     long long hi) {
  std::ostringstream range;
  range << "an integer in [" << lo << ", " << hi << "]";
  const std::string expected = range.str();
  const std::string text(trim(token));
  if (text.empty()) reject(name, token, "empty value", expected);
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str()) reject(name, text, "not a number", expected);
  if (*end != '\0') reject(name, text, "trailing junk", expected);
  if (errno == ERANGE) reject(name, text, "out of range", expected);
  if (parsed < lo || parsed > hi) {
    reject(name, text, "outside the accepted range", expected);
  }
  return parsed;
}

}  // namespace chase::env
