#include "common/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace chase::env {

namespace {

[[noreturn]] void reject(const char* name, const char* text,
                         const char* why) {
  std::ostringstream os;
  os << name << "=\"" << text << "\": " << why
     << " (expected a strictly positive integer)";
  throw ConfigError(os.str());
}

}  // namespace

long long positive_int(const char* name, const char* text) {
  if (text == nullptr || text[0] == '\0') {
    reject(name, text == nullptr ? "" : text, "empty value");
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text, &end, 10);
  if (end == text) reject(name, text, "not a number");
  while (*end == ' ' || *end == '\t') ++end;
  if (*end != '\0') reject(name, text, "trailing junk");
  if (errno == ERANGE) reject(name, text, "out of range");
  if (parsed <= 0) reject(name, text, "must be > 0");
  return parsed;
}

std::optional<long long> positive_env(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return std::nullopt;
  return positive_int(name, text);
}

}  // namespace chase::env
