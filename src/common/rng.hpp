// Deterministic random number generation.
//
// Every stochastic component (initial subspace vectors, Lanczos start
// vectors, Haar test matrices) draws from a Rng seeded from a user seed plus
// a stream id, so distributed runs are reproducible regardless of the number
// of ranks: rank r drawing stream (seed, r) sees the same values a sequential
// run assigns to that block.
#pragma once

#include <complex>
#include <cstdint>
#include <random>

#include "common/scalar.hpp"

namespace chase {

class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0)
      : engine_(mix(seed, stream)) {}

  /// Standard normal variate of scalar type T. For complex T both parts are
  /// N(0, 1/2) so that E|z|^2 = 1 (the convention used for random subspaces).
  template <typename T>
  T gaussian() {
    if constexpr (kIsComplex<T>) {
      using R = RealType<T>;
      std::normal_distribution<R> d(R(0), R(1) / std::sqrt(R(2)));
      return T(d(engine_), d(engine_));
    } else {
      std::normal_distribution<T> d(T(0), T(1));
      return d(engine_);
    }
  }

  /// Uniform variate in [lo, hi) of the real type.
  template <typename R>
  R uniform(R lo, R hi) {
    std::uniform_real_distribution<R> d(lo, hi);
    return d(engine_);
  }

  std::uint64_t next_u64() { return engine_(); }

  /// splitmix64-style mixing so (seed, stream) pairs give decorrelated
  /// engines. Public: stream-deriving drivers (ChaseSequence) use it to turn
  /// a base seed plus a restorable stream counter into per-problem seeds.
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace chase
