// Minimal leveled logging to stderr, controllable via CHASE_LOG_LEVEL
// (0 = silent, 1 = info, 2 = debug). Used sparingly: library code reports
// through return values; logging is for the drivers and benches.
#pragma once

#include <sstream>
#include <string>

namespace chase {

enum class LogLevel : int { kSilent = 0, kInfo = 1, kDebug = 2 };

/// Current level; initialized from the CHASE_LOG_LEVEL environment variable.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

}  // namespace chase

#define CHASE_LOG_INFO(expr)                                       \
  do {                                                             \
    if (::chase::log_level() >= ::chase::LogLevel::kInfo) {        \
      std::ostringstream chase_log_os_;                            \
      chase_log_os_ << expr;                                       \
      ::chase::detail::log_line(::chase::LogLevel::kInfo,          \
                                chase_log_os_.str());              \
    }                                                              \
  } while (0)

#define CHASE_LOG_DEBUG(expr)                                      \
  do {                                                             \
    if (::chase::log_level() >= ::chase::LogLevel::kDebug) {       \
      std::ostringstream chase_log_os_;                            \
      chase_log_os_ << expr;                                       \
      ::chase::detail::log_line(::chase::LogLevel::kDebug,         \
                                chase_log_os_.str());              \
    }                                                              \
  } while (0)
