// Error handling: precondition checks that throw, and a fatal abort for
// truly unrecoverable states.
//
// Throwing is collective-safe, including inside SPMD regions: comm::Team
// catches a rank's exception, records it in the team's shared ErrorState,
// and every sibling rank unblocks at its next synchronization point (the
// poisoned-barrier protocol of comm/rank_error.hpp) — so invariant checks in
// rank code use CHASE_CHECK/CHASE_CHECK_MSG like everywhere else.
// CHASE_ABORT_IF is reserved for states where even unwinding cannot be
// trusted (e.g. corrupted accounting bookkeeping in perf::Tracker).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace chase {

/// Exception thrown on user-facing precondition violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

[[noreturn]] inline void abort_failure(const char* cond, const char* file,
                                       int line, const char* msg) {
  std::fprintf(stderr, "%s:%d: fatal: %s — %s\n", file, line, cond, msg);
  std::abort();
}
}  // namespace detail

}  // namespace chase

#define CHASE_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond))                                                             \
      ::chase::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");   \
  } while (0)

#define CHASE_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream chase_check_os_;                                    \
      chase_check_os_ << msg;                                                \
      ::chase::detail::throw_check_failure(#cond, __FILE__, __LINE__,        \
                                           chase_check_os_.str());           \
    }                                                                        \
  } while (0)

// Last resort: for states where even unwinding cannot be trusted. Everything
// else — including invariants inside rank threads — should throw via
// CHASE_CHECK*; the poisoned-barrier protocol unblocks sibling ranks.
#define CHASE_ABORT_IF(cond, msg)                                            \
  do {                                                                       \
    if (cond) ::chase::detail::abort_failure(#cond, __FILE__, __LINE__, msg); \
  } while (0)
