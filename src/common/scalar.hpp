// Scalar traits shared by every numerical module.
//
// All kernels in this library are templated on the scalar type T, which may
// be float, double, std::complex<float> or std::complex<double> — mirroring
// the four precision/type instantiations of the ChASE library.
#pragma once

#include <cmath>
#include <complex>
#include <limits>
#include <type_traits>

namespace chase {

template <typename T>
struct ScalarTraits {
  using Real = T;
  static constexpr bool is_complex = false;
  static constexpr T conj(T x) noexcept { return x; }
  static constexpr T real(T x) noexcept { return x; }
  static constexpr T imag(T) noexcept { return T(0); }
  static T abs(T x) noexcept { return std::abs(x); }
};

template <typename R>
struct ScalarTraits<std::complex<R>> {
  using Real = R;
  static constexpr bool is_complex = true;
  static std::complex<R> conj(std::complex<R> x) noexcept { return std::conj(x); }
  static constexpr R real(std::complex<R> x) noexcept { return x.real(); }
  static constexpr R imag(std::complex<R> x) noexcept { return x.imag(); }
  static R abs(std::complex<R> x) noexcept { return std::abs(x); }
};

/// Real type underlying T (e.g. double for std::complex<double>).
template <typename T>
using RealType = typename ScalarTraits<T>::Real;

template <typename T>
inline constexpr bool kIsComplex = ScalarTraits<T>::is_complex;

/// Complex conjugate; identity for real scalars.
template <typename T>
inline T conjugate(T x) noexcept {
  return ScalarTraits<T>::conj(x);
}

template <typename T>
inline RealType<T> real_part(T x) noexcept {
  return ScalarTraits<T>::real(x);
}

template <typename T>
inline RealType<T> imag_part(T x) noexcept {
  return ScalarTraits<T>::imag(x);
}

template <typename T>
inline RealType<T> abs_value(T x) noexcept {
  return ScalarTraits<T>::abs(x);
}

/// Unit round-off u of the underlying real type (used by the shifted
/// CholeskyQR shift s = 11(mn + n(n+1)) u ||X||^2 and by the kappa thresholds
/// of Algorithm 4).
template <typename T>
inline constexpr RealType<T> unit_roundoff() noexcept {
  return std::numeric_limits<RealType<T>>::epsilon() / RealType<T>(2);
}

}  // namespace chase
