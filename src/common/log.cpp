#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace chase {
namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    if (const char* env = std::getenv("CHASE_LOG_LEVEL")) {
      return std::atoi(env);
    }
    return 0;
  }();
  return level;
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() { return LogLevel(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  level_storage().store(int(level), std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[chase:%s] %s\n",
               level == LogLevel::kDebug ? "debug" : "info", line.c_str());
}
}  // namespace detail

}  // namespace chase
