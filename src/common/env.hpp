// Validated parsing of the CHASE_* environment knobs.
//
// The runtime knobs (CHASE_COLL_CHUNK_BYTES, CHASE_CKPT_INTERVAL,
// CHASE_WATCHDOG_MS, ...) used to be read with atoll/atoi, which silently
// parse garbage to 0 and then fall back to the default — a misspelled value
// like "64kb" or an accidental "0" was indistinguishable from "unset". All
// numeric knobs now go through env::positive_env: a set-but-invalid value
// (non-numeric, trailing junk, zero, negative, overflow) throws ConfigError
// naming the variable and the offending text, so a misconfigured process
// fails loudly at the first use of the knob instead of quietly running with
// defaults.
//
// Structured knobs (CHASE_TOPO's "2x4@inter_mbps=800" spec,
// CHASE_FAULT_INJECT's "site@rank@iter=k:times,..." list) build on the same
// contract through split_list/ranged_int: every token of a set variable must
// parse, and every failure names the variable and the offending token.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace chase::env {

/// Typed configuration error: a CHASE_* variable is set to a value that
/// cannot mean what the operator intended. Derives from chase::Error so the
/// collective-safe propagation (poisoned barriers, TeamAborted) applies
/// unchanged when the first read happens inside a rank thread.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Throw ConfigError for variable `name` set to `text`, with `why` and the
/// expectation spelled out: NAME="text": why (expected <expected>).
[[noreturn]] void reject(const char* name, std::string_view text,
                         const std::string& why, const std::string& expected);

/// Parse `text` as a strictly positive integer. Throws ConfigError (naming
/// `name`) on empty text, non-numeric text, trailing junk ("64kb"), zero,
/// negative values, or overflow.
long long positive_int(const char* name, const char* text);

/// getenv(name) through positive_int. Unset returns nullopt; set-but-empty
/// counts as unset (the conventional way to neutralize an exported knob);
/// anything else must parse as a strictly positive integer or ConfigError
/// is thrown.
std::optional<long long> positive_env(const char* name);

/// getenv(name) as text. Unset and set-but-empty both return nullopt;
/// surrounding whitespace is trimmed.
std::optional<std::string> text_env(const char* name);

/// Split `text` on `sep`, trimming surrounding whitespace from each token.
/// Empty tokens are preserved (",," yields three empties) so spec parsers
/// can reject them with a message naming the variable instead of silently
/// skipping a malformed entry.
std::vector<std::string> split_list(std::string_view text, char sep = ',');

/// Parse `token` (one element of variable `name`) as an integer in
/// [lo, hi]. Throws ConfigError naming the variable, the token, and the
/// accepted range on empty/non-numeric/trailing-junk/overflow/out-of-range
/// input.
long long ranged_int(const char* name, std::string_view token, long long lo,
                     long long hi);

}  // namespace chase::env
