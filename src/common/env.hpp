// Validated parsing of the numeric CHASE_* environment knobs.
//
// The runtime knobs (CHASE_COLL_CHUNK_BYTES, CHASE_CKPT_INTERVAL,
// CHASE_WATCHDOG_MS, ...) used to be read with atoll/atoi, which silently
// parse garbage to 0 and then fall back to the default — a misspelled value
// like "64kb" or an accidental "0" was indistinguishable from "unset". All
// numeric knobs now go through env::positive_env: a set-but-invalid value
// (non-numeric, trailing junk, zero, negative, overflow) throws ConfigError
// naming the variable and the offending text, so a misconfigured process
// fails loudly at the first use of the knob instead of quietly running with
// defaults.
#pragma once

#include <optional>
#include <string>

#include "common/check.hpp"

namespace chase::env {

/// Typed configuration error: a CHASE_* variable is set to a value that
/// cannot mean what the operator intended. Derives from chase::Error so the
/// collective-safe propagation (poisoned barriers, TeamAborted) applies
/// unchanged when the first read happens inside a rank thread.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Parse `text` as a strictly positive integer. Throws ConfigError (naming
/// `name`) on empty text, non-numeric text, trailing junk ("64kb"), zero,
/// negative values, or overflow.
long long positive_int(const char* name, const char* text);

/// getenv(name) through positive_int. Unset returns nullopt; set-but-empty
/// counts as unset (the conventional way to neutralize an exported knob);
/// anything else must parse as a strictly positive integer or ConfigError
/// is thrown.
std::optional<long long> positive_env(const char* name);

}  // namespace chase::env
