// Wall-clock and per-thread CPU timers.
//
// The SPMD runtime multiplexes all ranks onto the host's cores, so per-rank
// computation is measured with the thread CPU clock: in a weak-scaling run the
// max over ranks approximates the parallel execution time even when ranks
// time-share a single core.
#pragma once

#include <chrono>
#include <ctime>

namespace chase {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU time consumed by the calling thread, in seconds.
inline double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
}

/// Stopwatch over the calling thread's CPU clock.
class CpuTimer {
 public:
  CpuTimer() : start_(thread_cpu_seconds()) {}
  void reset() { start_ = thread_cpu_seconds(); }
  double seconds() const { return thread_cpu_seconds() - start_; }

 private:
  double start_;
};

}  // namespace chase
