// Deterministic fault injection for robustness tests and the bench harness.
//
// Named sites are compiled into the code paths they perturb; checking a site
// costs one relaxed atomic load while nothing is armed, so the hooks stay in
// production builds. The registered sites:
//
//   potrf.breakdown   — CholeskyQR's POTRF reports a simulated breakdown,
//                       forcing the Algorithm 4 recovery ladder
//                       (src/qr/cholqr.hpp);
//   filter.nan        — the Chebyshev filter corrupts one output entry with
//                       a NaN, exercising the re-randomization guard
//                       (src/core/filter.hpp);
//   allreduce.corrupt — the local all_reduce result is overwritten with a
//                       NaN (max value for integral scalars), modelling an
//                       undetected transport corruption
//                       (src/comm/communicator.hpp);
//   rank.die          — the next collective the armed rank enters throws
//                       fault::Injected, simulating a rank dying mid-run
//                       (src/comm/communicator.cpp);
//   p2p.corrupt       — the next chunk the armed rank sends over the
//                       point-to-point channels has its leading bytes
//                       overwritten with 0xFF (a NaN pattern for floating
//                       payloads), modelling transport corruption on the
//                       src/coll path (Communicator::send_chunk);
//   p2p.stall         — the armed rank's next chunk send parks for ~2
//                       watchdog periods, so a receiving sibling diagnoses
//                       "p2p.watchdog" and poisons the team
//                       (Communicator::send_chunk).
//
// Sites are armed programmatically (arm / disarm_all) or through the
// environment:
//
//   CHASE_FAULT_INJECT=site[@rank][@iter=k][:times],...
//
// where rank -1 (default) matches every rank and times -1 fires on every
// hit (default 1). `@iter=k` restricts a site to the solver's k-th outer
// iteration (the pipeline publishes the counter via set_iteration), which
// is how a failure is planted at a precise point of a long run — e.g.
// CHASE_FAULT_INJECT=rank.die@1@iter=3 kills rank 1 at its first collective
// of iteration 3. Trigger budgets are tracked *per rank* so that arming a
// site with rank -1 fires identically on every rank of an SPMD region —
// collective-consistent injection, the only kind that keeps ranks in step.
//
// The special entry `list` arms nothing; it requests a dump_sites() report
// on stderr at process exit, so a test run can assert the injected site
// actually fired (and how often, per rank).
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/env.hpp"

namespace chase::fault {

/// Thrown by check() when a site fires; Team::run recognizes it and records
/// the site name as the failure context of the dying rank.
class Injected : public Error {
 public:
  explicit Injected(std::string_view site)
      : Error("fault injected: " + std::string(site)), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

namespace detail {

struct Site {
  std::string name;
  int rank = -1;   // -1: matches every rank
  int iter = -1;   // -1: any iteration; else only the solver's k-th one
  int times = 1;   // per-rank trigger budget; -1: unlimited
  int skip = 0;    // per-rank: let this many matching checks pass first
  std::map<int, int> remaining;  // per-rank budget left (seeded from times)
  std::map<int, int> to_skip;    // per-rank skips left (seeded from skip)
  std::map<int, long> hits;      // per-rank fire count (observability)
};

std::string dump_sites_locked(const std::vector<Site>& sites);

struct Registry {
  std::mutex mutex;
  std::vector<Site> sites;
  std::atomic<int> armed{0};
  bool dump_at_exit = false;  // CHASE_FAULT_INJECT contained "list"

  Registry() { load_env(); }

  ~Registry() {
    // Static destruction order is unpredictable, so the report only touches
    // this object and stderr.
    if (dump_at_exit) {
      std::fputs(dump_sites_locked(sites).c_str(), stderr);
    }
  }

  // CHASE_FAULT_INJECT=site[@rank][@iter=k][:times],... — every field of a
  // set variable must validate (env::ranged_int throws ConfigError naming
  // the variable and the token); garbage used to atoi() to 0 and arm a
  // nonsense site silently.
  void load_env() {
    static constexpr const char* kVar = "CHASE_FAULT_INJECT";
    const auto text = env::text_env(kVar);
    if (!text) return;
    for (const std::string& raw : env::split_list(*text)) {
      if (raw.empty()) continue;  // stray commas stay harmless
      if (raw == "list") {
        dump_at_exit = true;
        continue;
      }
      std::string_view entry(raw);
      Site site;
      const auto colon = entry.find(':');
      if (colon != std::string_view::npos) {
        // times: -1 = unlimited; 0 would arm a site that can never fire.
        site.times = static_cast<int>(
            env::ranged_int(kVar, entry.substr(colon + 1), -1, 1 << 20));
        if (site.times == 0) {
          env::reject(kVar, raw, "trigger budget 0",
                      "a positive count or -1 for unlimited");
        }
        entry = entry.substr(0, colon);
      }
      // Strip @qualifiers right to left: each pass consumes the last one.
      for (auto at = entry.rfind('@'); at != std::string_view::npos;
           at = entry.rfind('@')) {
        const std::string_view token = entry.substr(at + 1);
        if (token.substr(0, 5) == "iter=") {
          site.iter = static_cast<int>(
              env::ranged_int(kVar, token.substr(5), 1, 1 << 20));
        } else {
          // rank: -1 keeps the documented "every rank" wildcard spellable.
          site.rank = static_cast<int>(env::ranged_int(kVar, token, -1, 1 << 20));
        }
        entry = entry.substr(0, at);
      }
      if (entry.empty()) {
        env::reject(kVar, raw, "missing site name",
                    "site[@rank][@iter=k][:times]");
      }
      site.name = std::string(entry);
      sites.push_back(std::move(site));
      armed.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

inline Registry& registry() {
  static Registry reg;
  return reg;
}

/// SPMD rank of the calling thread (set by comm::Team::run; 0 outside any
/// team, which is what sequential drivers expect).
inline int& thread_rank() {
  thread_local int rank = 0;
  return rank;
}

/// Outer-iteration counter of the calling thread's solve (published by the
/// engine pipeline; 0 outside any solve). Iteration-qualified sites match
/// against this.
inline int& thread_iteration() {
  thread_local int iter = 0;
  return iter;
}

/// Human-readable site report: spec, per-rank hit counts, totals.
inline std::string dump_sites_locked(const std::vector<Site>& sites) {
  std::ostringstream os;
  os << "fault sites (" << sites.size() << " registered):\n";
  if (sites.empty()) os << "  (none)\n";
  for (const auto& s : sites) {
    os << "  " << s.name;
    if (s.rank >= 0) os << "@" << s.rank;
    if (s.iter >= 0) os << "@iter=" << s.iter;
    os << ":" << s.times;
    long total = 0;
    os << " hits={";
    bool first = true;
    for (const auto& [rank, hits] : s.hits) {
      if (!first) os << ", ";
      os << rank << ":" << hits;
      total += hits;
      first = false;
    }
    os << "} total=" << total << "\n";
  }
  return os.str();
}

}  // namespace detail

inline void set_thread_rank(int rank) { detail::thread_rank() = rank; }

/// Publish the solver's outer-iteration counter for @iter-qualified sites
/// (0: outside any iteration). Thread-local, like the rank.
inline void set_iteration(int iter) { detail::thread_iteration() = iter; }

/// Arm `site` to fire `times` times per matching rank (-1: every hit) on
/// `rank` (-1: every rank — the collective-consistent choice for SPMD code).
/// `skip` lets the first `skip` matching checks on each rank pass unharmed,
/// which places a failure deep inside a run (e.g. past the split() a test
/// needs to succeed before the death it stages).
/// `iter` (>= 1) restricts the site to the solver's iter-th outer iteration
/// (-1: any); see set_iteration.
inline void arm(std::string_view site, int rank = -1, int times = 1,
                int skip = 0, int iter = -1) {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  detail::Site s;
  s.name = std::string(site);
  s.rank = rank;
  s.iter = iter;
  s.times = times;
  s.skip = skip;
  reg.sites.push_back(std::move(s));
  reg.armed.fetch_add(1, std::memory_order_relaxed);
}

/// Report every registered site with its spec and per-rank hit counts —
/// what CHASE_FAULT_INJECT=list prints at exit, callable any time.
inline std::string dump_sites() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return detail::dump_sites_locked(reg.sites);
}

inline void disarm_all() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.sites.clear();
  reg.armed.store(0, std::memory_order_relaxed);
}

/// Total number of times `site` fired, summed over ranks.
inline long fire_count(std::string_view site) {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  long total = 0;
  for (const auto& s : reg.sites) {
    if (s.name != site) continue;
    for (const auto& [rank, hits] : s.hits) total += hits;
  }
  return total;
}

/// True (consuming one trigger) if `site` is armed for this thread's rank
/// and has budget left. One relaxed atomic load when nothing is armed.
inline bool fired(std::string_view site) {
  auto& reg = detail::registry();
  if (reg.armed.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(reg.mutex);
  const int me = detail::thread_rank();
  for (auto& s : reg.sites) {
    if (s.name != site) continue;
    if (s.rank >= 0 && s.rank != me) continue;
    if (s.iter >= 0 && s.iter != detail::thread_iteration()) continue;
    if (s.skip > 0) {
      auto [it, fresh] = s.to_skip.try_emplace(me, s.skip);
      if (it->second > 0) {
        --it->second;
        continue;
      }
    }
    if (s.times >= 0) {
      auto [it, fresh] = s.remaining.try_emplace(me, s.times);
      if (it->second == 0) continue;
      --it->second;
    }
    ++s.hits[me];
    return true;
  }
  return false;
}

/// Throw Injected if the site fires — for sites that simulate failures with
/// no in-band return value (rank death).
inline void check(std::string_view site) {
  if (fired(site)) throw Injected(site);
}

/// RAII arming for tests: disarms everything on scope exit.
class Scoped {
 public:
  Scoped(std::string_view site, int rank = -1, int times = 1, int skip = 0,
         int iter = -1) {
    arm(site, rank, times, skip, iter);
  }
  ~Scoped() { disarm_all(); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;
};

}  // namespace chase::fault
