#include "perf/tuned.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

namespace chase::perf {

namespace {

// Class boundaries. The tuner measures one representative size per class
// (96 / 384 / 1024 for GEMM, 128 / 256 / 1024 for factorizations) and the
// winner covers the whole class.
constexpr double kGemmSmallMax = 192;
constexpr double kGemmMediumMax = 640;
constexpr long long kFactorSmallMax = 128;
constexpr long long kFactorMediumMax = 512;
constexpr std::size_t kMsgSmallMax = std::size_t(64) << 10;   // 64 KiB
constexpr std::size_t kMsgMediumMax = std::size_t(1) << 20;   // 1 MiB

struct TableSlot {
  std::atomic<const TunedTables*> current{nullptr};
  std::mutex mu;  // serializes writers
  // Replaced tables are retired here instead of freed: a reader may still
  // hold the old pointer (the dispatchers are called from rank threads).
  std::vector<std::unique_ptr<const TunedTables>> retired;
};

TableSlot& slot() {
  static TableSlot s;
  return s;
}

}  // namespace

const char* scalar_tag_name(ScalarTag t) {
  switch (t) {
    case ScalarTag::kF32:
      return "f";
    case ScalarTag::kF64:
      return "d";
    case ScalarTag::kC32:
      return "c";
    case ScalarTag::kC64:
    default:
      return "z";
  }
}

const char* n_class_name(NClass c) {
  switch (c) {
    case NClass::kSmall:
      return "small";
    case NClass::kMedium:
      return "medium";
    case NClass::kLarge:
    default:
      return "large";
  }
}

NClass gemm_n_class(double m, double n, double k) {
  const double dim = std::cbrt(m * n * k);
  if (dim <= kGemmSmallMax) return NClass::kSmall;
  if (dim <= kGemmMediumMax) return NClass::kMedium;
  return NClass::kLarge;
}

NClass factor_n_class(long long n) {
  if (n <= kFactorSmallMax) return NClass::kSmall;
  if (n <= kFactorMediumMax) return NClass::kMedium;
  return NClass::kLarge;
}

const char* msg_class_name(MsgClass c) {
  switch (c) {
    case MsgClass::kSmallMsg:
      return "small";
    case MsgClass::kMediumMsg:
      return "medium";
    case MsgClass::kLargeMsg:
    default:
      return "large";
  }
}

MsgClass msg_class(std::size_t bytes) {
  if (bytes <= kMsgSmallMax) return MsgClass::kSmallMsg;
  if (bytes <= kMsgMediumMax) return MsgClass::kMediumMsg;
  return MsgClass::kLargeMsg;
}

const TunedTables* tuned_tables() {
  return slot().current.load(std::memory_order_acquire);
}

void set_tuned_tables(const TunedTables& t) {
  auto& s = slot();
  std::lock_guard<std::mutex> lock(s.mu);
  auto fresh = std::make_unique<const TunedTables>(t);
  const TunedTables* prev =
      s.current.exchange(fresh.get(), std::memory_order_acq_rel);
  s.retired.push_back(std::move(fresh));
  if (prev != nullptr) {
    // Already owned by `retired` from a previous install; nothing to do.
  }
}

void clear_tuned_tables() {
  auto& s = slot();
  std::lock_guard<std::mutex> lock(s.mu);
  s.current.store(nullptr, std::memory_order_release);
}

}  // namespace chase::perf
