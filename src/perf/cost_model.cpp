#include "perf/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace chase::perf {

CostBreakdown sum_costs(const KernelCosts& costs) {
  CostBreakdown total;
  for (const auto& c : costs) total += c;
  return total;
}

double price_collective(const MachineModel& m, Backend backend, CollKind kind,
                        std::size_t bytes, int nranks) {
  const bool nccl = backend == Backend::kNcclGpu;
  switch (kind) {
    case CollKind::kAllReduce:
      return nccl ? m.nccl_allreduce_seconds(bytes, nranks)
                  : m.mpi_allreduce_seconds(bytes, nranks);
    case CollKind::kBroadcast:
      return nccl ? m.nccl_broadcast_seconds(bytes, nranks)
                  : m.mpi_broadcast_seconds(bytes, nranks);
    case CollKind::kAllGather:
    default:
      return nccl ? m.nccl_allgather_seconds(bytes, nranks)
                  : m.mpi_allgather_seconds(bytes, nranks);
  }
}

double coll_algo_seconds(const MachineModel& m, Backend backend, CollKind kind,
                         CollAlgo algo, std::size_t bytes, int nranks,
                         std::size_t chunk_bytes) {
  if (nranks <= 1) return 0;
  const double N = double(bytes);
  const double P = double(nranks);
  const bool nccl = backend == Backend::kNcclGpu;
  const double L = nccl ? m.nccl_latency : m.mpi_latency;
  const double B = nccl ? m.nccl_bw(nranks) : m.mpi_bw;
  const double G = m.reduce_bw;
  const double C =
      std::max(1.0, std::min(N, double(std::max<std::size_t>(1, chunk_bytes))));
  const double k = std::max(1.0, std::ceil(N / C));  // chunks in the pipeline
  const double log2p = std::ceil(std::log2(P));
  switch (algo) {
    case CollAlgo::kNaiveAlgo:
      // Publish-and-sync: two centralized barriers (~P latency each), every
      // rank reads all P published buffers, and an allreduce additionally
      // folds P-1 of them elementwise.
      switch (kind) {
        case CollKind::kAllReduce:
          return 2 * P * L + P * N / B + (P - 1) * N / G;
        case CollKind::kAllGather:
        case CollKind::kBroadcast:
        default:
          return 2 * P * L + N / B;
      }
    case CollAlgo::kRingAlgo:
      if (kind == CollKind::kAllReduce) {
        // Ordered pipelined chain: a chunk traverses 2(P-1) hops (reduce
        // down the chain, distribute around the ring); with k chunks in
        // flight the pipeline drains in 2(P-1)+k-1 hop times. Each hop
        // moves C bytes and on average folds C/2 of them.
        return (2 * (P - 1) + k - 1) * (L + C / B + C / (2 * G));
      }
      // Ring allgather: P-1 steps, each forwarding one rank's share of the
      // total gathered payload N.
      return (P - 1) * (L + N / P / B);
    case CollAlgo::kRabenseifner:
      // Order-preserving reduce-scatter (pairwise exchange, P-1 latency
      // steps) + allgather of the scattered segments: 2N(P-1)/P bytes and
      // N(P-1)/P folded bytes per rank.
      return 2 * (P - 1) * L + 2 * N * (P - 1) / P / B + N * (P - 1) / P / G;
    case CollAlgo::kBruck:
      // log2(P) doubling rounds moving N(P-1)/P total.
      return log2p * L + N * (P - 1) / P / B;
    case CollAlgo::kHierAlgo:
      // On a flat (single-group) communicator the hierarchy degenerates to
      // the ordered chain plus the group bookkeeping it cannot amortize;
      // price it as slightly worse than the ring so auto never prefers it
      // without a grouped topology.
      return 1.05 * coll_algo_seconds(m, backend, kind, CollAlgo::kRingAlgo,
                                      bytes, nranks, chunk_bytes);
    case CollAlgo::kBinomial:
    default:
      // Chunk-pipelined binomial tree: depth ceil(log2 P), k chunks deep.
      return (log2p + k - 1) * (L + C / B);
  }
}

double coll_algo_seconds(const MachineModel& m, Backend backend, CollKind kind,
                         CollAlgo algo, std::size_t bytes, int nranks,
                         std::size_t chunk_bytes, const TopoInfo& topo) {
  if (nranks <= 1) return 0;
  if (!topo.grouped()) {
    return coll_algo_seconds(m, backend, kind, algo, bytes, nranks,
                             chunk_bytes);
  }
  const double N = double(bytes);
  const double P = double(nranks);
  const double M = double(topo.nodes);
  const double per = double(std::max(1, topo.max_per_node));
  const bool nccl = backend == Backend::kNcclGpu;
  // Link classes: alpha-beta per hop. Intra hops run at the fast-group
  // rate; inter hops at the cross-group rate (the emulated values when the
  // topology carries them, else the machine's calibrated link class).
  const double La = nccl ? m.nccl_latency : m.mpi_latency;
  const double Ba = nccl ? m.intra_bw : m.mpi_bw;
  const double Li = topo.inter_latency > 0 ? topo.inter_latency
                                           : m.inter_latency;
  const double Bi = topo.inter_bw > 0 ? topo.inter_bw : m.inter_bw;
  const double G = m.reduce_bw;
  const double C =
      std::max(1.0, std::min(N, double(std::max<std::size_t>(1, chunk_bytes))));
  const double k = std::max(1.0, std::ceil(N / C));
  const double log2p = std::ceil(std::log2(P));
  const double log2m = std::ceil(std::log2(M));
  const double log2per = std::ceil(std::log2(per));
  switch (algo) {
    case CollAlgo::kNaiveAlgo: {
      // Every rank reads all P published buffers; P-per of them live across
      // the slow links.
      const double reads = per * N / Ba + (P - per) * N / Bi;
      switch (kind) {
        case CollKind::kAllReduce:
          return 2 * P * La + reads + (P - 1) * N / G;
        case CollKind::kAllGather:
        case CollKind::kBroadcast:
        default:
          return 2 * P * La + N * per / P / Ba + N * (P - per) / P / Bi;
      }
    }
    case CollAlgo::kRingAlgo:
      if (kind == CollKind::kAllReduce) {
        // The flat chain's distribute pass walks every link again, so the
        // last rank of each node forwards each chunk across the slow link
        // twice (once reducing, once distributing) — 2k serialized inter
        // sends at the busiest boundary on top of the intra pipeline.
        return (2 * (P - 1) + k - 1) * (La + C / Ba + C / (2 * G)) +
               2 * k * (Li + C / Bi);
      }
      // Ring allgather: each of the P-1 steps forwards one rank's share
      // through the boundary sender's slow link.
      return (P - 1) * (Li + N / P / Bi);
    case CollAlgo::kRabenseifner:
      // Pairwise exchange: a (P-per)/P fraction of the 2N(P-1)/P volume
      // crosses groups.
      return 2 * (P - 1) * Li + 2 * N * (P - per) / P / Bi +
             2 * N * (per - 1) / P / Ba + N * (P - 1) / P / G;
    case CollAlgo::kBruck:
      // Doubling rounds: the large late rounds all cross groups.
      return log2p * Li + N * (P - 1) / P / Bi;
    case CollAlgo::kBinomial:
      // The root's fanout crosses groups up to ceil(log2 M) times per chunk.
      return (log2p + k - 1) * (La + C / Ba) + k * log2m * (Li + C / Bi);
    case CollAlgo::kHierAlgo:
    default:
      switch (kind) {
        case CollKind::kAllReduce:
          // Ordered chain reduce (bitwise-identical fold) + leader-chain
          // distribute + intra binomial fanout: every boundary sender moves
          // each chunk across the slow link exactly once — half the flat
          // ring's inter traffic at the bottleneck.
          return (2 * (P - 1) + k - 1) * (La + C / Ba + C / (2 * G)) +
                 (k + M - 2) * (Li + C / Bi);
        case CollKind::kAllGather:
          // Intra allgather of node blocks, leader ring of the M blocks,
          // intra broadcast of the foreign span.
          return (per - 1) * (La + N / P / Ba) +
                 (M - 1) * (Li + N / M / Bi) + log2per * La +
                 N * (M - 1) / M / Ba;
        case CollKind::kBroadcast:
        default:
          // Leader tree across groups, binomial fanout within each group.
          return (log2m + k - 1) * (Li + C / Bi) +
                 (log2per + k - 1) * (La + C / Ba);
      }
  }
}

double price_compute(const MachineModel& m, const RegionCosts& c) {
  const double fg = c.flops[std::size_t(int(FlopClass::kGemm))];
  const double fgs = c.flops[std::size_t(int(FlopClass::kGemmSingle))];
  const double fp = c.flops[std::size_t(int(FlopClass::kPanel))];
  const double fs = c.flops[std::size_t(int(FlopClass::kSmall))];
  const double ff = c.flops[std::size_t(int(FlopClass::kFactor))];
  return fg / m.gemm_flops + fgs / m.gemm_flops_single() +
         fp / m.panel_flops + fs / m.small_flops + ff / m.factor_flops +
         c.mem_bytes / m.hbm_bw;
}

KernelCosts price_tracker(const MachineModel& m, Backend backend,
                          const Tracker& t) {
  KernelCosts out{};
  for (int r = 0; r < kRegionCount; ++r) {
    out[std::size_t(r)].compute = price_compute(m, t.costs(Region(r)));
  }
  for (const auto& ev : t.collectives()) {
    out[std::size_t(int(ev.region))].comm +=
        price_collective(m, backend, ev.kind, ev.bytes, ev.nranks);
  }
  for (const auto& ev : t.memcpys()) {
    out[std::size_t(int(ev.region))].movement += m.memcpy_seconds(ev.bytes);
  }
  return out;
}

}  // namespace chase::perf
