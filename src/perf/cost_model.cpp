#include "perf/cost_model.hpp"

namespace chase::perf {

CostBreakdown sum_costs(const KernelCosts& costs) {
  CostBreakdown total;
  for (const auto& c : costs) total += c;
  return total;
}

double price_collective(const MachineModel& m, Backend backend, CollKind kind,
                        std::size_t bytes, int nranks) {
  const bool nccl = backend == Backend::kNcclGpu;
  switch (kind) {
    case CollKind::kAllReduce:
      return nccl ? m.nccl_allreduce_seconds(bytes, nranks)
                  : m.mpi_allreduce_seconds(bytes, nranks);
    case CollKind::kBroadcast:
      return nccl ? m.nccl_broadcast_seconds(bytes, nranks)
                  : m.mpi_broadcast_seconds(bytes, nranks);
    case CollKind::kAllGather:
    default:
      return nccl ? m.nccl_allgather_seconds(bytes, nranks)
                  : m.mpi_allgather_seconds(bytes, nranks);
  }
}

double price_compute(const MachineModel& m, const RegionCosts& c) {
  const double fg = c.flops[std::size_t(int(FlopClass::kGemm))];
  const double fp = c.flops[std::size_t(int(FlopClass::kPanel))];
  const double fs = c.flops[std::size_t(int(FlopClass::kSmall))];
  return fg / m.gemm_flops + fp / m.panel_flops + fs / m.small_flops +
         c.mem_bytes / m.hbm_bw;
}

KernelCosts price_tracker(const MachineModel& m, Backend backend,
                          const Tracker& t) {
  KernelCosts out{};
  for (int r = 0; r < kRegionCount; ++r) {
    out[std::size_t(r)].compute = price_compute(m, t.costs(Region(r)));
  }
  for (const auto& ev : t.collectives()) {
    out[std::size_t(int(ev.region))].comm +=
        price_collective(m, backend, ev.kind, ev.bytes, ev.nranks);
  }
  for (const auto& ev : t.memcpys()) {
    out[std::size_t(int(ev.region))].movement += m.memcpy_seconds(ev.bytes);
  }
  return out;
}

}  // namespace chase::perf
