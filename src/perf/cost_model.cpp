#include "perf/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace chase::perf {

CostBreakdown sum_costs(const KernelCosts& costs) {
  CostBreakdown total;
  for (const auto& c : costs) total += c;
  return total;
}

double price_collective(const MachineModel& m, Backend backend, CollKind kind,
                        std::size_t bytes, int nranks) {
  const bool nccl = backend == Backend::kNcclGpu;
  switch (kind) {
    case CollKind::kAllReduce:
      return nccl ? m.nccl_allreduce_seconds(bytes, nranks)
                  : m.mpi_allreduce_seconds(bytes, nranks);
    case CollKind::kBroadcast:
      return nccl ? m.nccl_broadcast_seconds(bytes, nranks)
                  : m.mpi_broadcast_seconds(bytes, nranks);
    case CollKind::kAllGather:
    default:
      return nccl ? m.nccl_allgather_seconds(bytes, nranks)
                  : m.mpi_allgather_seconds(bytes, nranks);
  }
}

double coll_algo_seconds(const MachineModel& m, Backend backend, CollKind kind,
                         CollAlgo algo, std::size_t bytes, int nranks,
                         std::size_t chunk_bytes) {
  if (nranks <= 1) return 0;
  const double N = double(bytes);
  const double P = double(nranks);
  const bool nccl = backend == Backend::kNcclGpu;
  const double L = nccl ? m.nccl_latency : m.mpi_latency;
  const double B = nccl ? m.nccl_bw(nranks) : m.mpi_bw;
  const double G = m.reduce_bw;
  const double C =
      std::max(1.0, std::min(N, double(std::max<std::size_t>(1, chunk_bytes))));
  const double k = std::max(1.0, std::ceil(N / C));  // chunks in the pipeline
  const double log2p = std::ceil(std::log2(P));
  switch (algo) {
    case CollAlgo::kNaiveAlgo:
      // Publish-and-sync: two centralized barriers (~P latency each), every
      // rank reads all P published buffers, and an allreduce additionally
      // folds P-1 of them elementwise.
      switch (kind) {
        case CollKind::kAllReduce:
          return 2 * P * L + P * N / B + (P - 1) * N / G;
        case CollKind::kAllGather:
        case CollKind::kBroadcast:
        default:
          return 2 * P * L + N / B;
      }
    case CollAlgo::kRingAlgo:
      if (kind == CollKind::kAllReduce) {
        // Ordered pipelined chain: a chunk traverses 2(P-1) hops (reduce
        // down the chain, distribute around the ring); with k chunks in
        // flight the pipeline drains in 2(P-1)+k-1 hop times. Each hop
        // moves C bytes and on average folds C/2 of them.
        return (2 * (P - 1) + k - 1) * (L + C / B + C / (2 * G));
      }
      // Ring allgather: P-1 steps, each forwarding one rank's share of the
      // total gathered payload N.
      return (P - 1) * (L + N / P / B);
    case CollAlgo::kRabenseifner:
      // Order-preserving reduce-scatter (pairwise exchange, P-1 latency
      // steps) + allgather of the scattered segments: 2N(P-1)/P bytes and
      // N(P-1)/P folded bytes per rank.
      return 2 * (P - 1) * L + 2 * N * (P - 1) / P / B + N * (P - 1) / P / G;
    case CollAlgo::kBruck:
      // log2(P) doubling rounds moving N(P-1)/P total.
      return log2p * L + N * (P - 1) / P / B;
    case CollAlgo::kBinomial:
    default:
      // Chunk-pipelined binomial tree: depth ceil(log2 P), k chunks deep.
      return (log2p + k - 1) * (L + C / B);
  }
}

double price_compute(const MachineModel& m, const RegionCosts& c) {
  const double fg = c.flops[std::size_t(int(FlopClass::kGemm))];
  const double fgs = c.flops[std::size_t(int(FlopClass::kGemmSingle))];
  const double fp = c.flops[std::size_t(int(FlopClass::kPanel))];
  const double fs = c.flops[std::size_t(int(FlopClass::kSmall))];
  const double ff = c.flops[std::size_t(int(FlopClass::kFactor))];
  return fg / m.gemm_flops + fgs / m.gemm_flops_single() +
         fp / m.panel_flops + fs / m.small_flops + ff / m.factor_flops +
         c.mem_bytes / m.hbm_bw;
}

KernelCosts price_tracker(const MachineModel& m, Backend backend,
                          const Tracker& t) {
  KernelCosts out{};
  for (int r = 0; r < kRegionCount; ++r) {
    out[std::size_t(r)].compute = price_compute(m, t.costs(Region(r)));
  }
  for (const auto& ev : t.collectives()) {
    out[std::size_t(int(ev.region))].comm +=
        price_collective(m, backend, ev.kind, ev.bytes, ev.nranks);
  }
  for (const auto& ev : t.memcpys()) {
    out[std::size_t(int(ev.region))].movement += m.memcpy_seconds(ev.bytes);
  }
  return out;
}

}  // namespace chase::perf
