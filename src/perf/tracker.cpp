#include "perf/tracker.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace chase::perf {

namespace {
thread_local Tracker* tls_tracker = nullptr;
}

std::string_view region_name(Region r) {
  switch (r) {
    case Region::kLanczos:
      return "Lanczos";
    case Region::kFilter:
      return "Filter";
    case Region::kQr:
      return "QR";
    case Region::kRayleighRitz:
      return "RR";
    case Region::kResidual:
      return "Resid";
    case Region::kOther:
    default:
      return "Other";
  }
}

Tracker::Tracker() : last_cpu_(thread_cpu_seconds()) {}

Tracker::Tracker(const Tracker& other) {
  std::lock_guard<std::mutex> lock(other.counters_mu_);
  region_ = other.region_;
  costs_ = other.costs_;
  colls_ = other.colls_;
  copies_ = other.copies_;
  counters_ = other.counters_;
  last_cpu_ = other.last_cpu_;
  in_collective_ = other.in_collective_;
}

Tracker& Tracker::operator=(const Tracker& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(counters_mu_, other.counters_mu_);
  region_ = other.region_;
  costs_ = other.costs_;
  colls_ = other.colls_;
  copies_ = other.copies_;
  counters_ = other.counters_;
  last_cpu_ = other.last_cpu_;
  in_collective_ = other.in_collective_;
  return *this;
}

void Tracker::attribute_elapsed(double* bucket) {
  const double now = thread_cpu_seconds();
  *bucket += now - last_cpu_;
  last_cpu_ = now;
}

Region Tracker::set_region(Region r) {
  auto& c = costs_[std::size_t(int(region_))];
  attribute_elapsed(in_collective_ ? &c.comm_cpu_seconds : &c.compute_seconds);
  const Region prev = region_;
  region_ = r;
  return prev;
}

void Tracker::add_flops(FlopClass cls, double flops) {
  costs_[std::size_t(int(region_))].flops[std::size_t(int(cls))] += flops;
}

void Tracker::add_mem_bytes(double bytes) {
  costs_[std::size_t(int(region_))].mem_bytes += bytes;
}

void Tracker::begin_collective() {
  CHASE_ABORT_IF(in_collective_, "nested collective accounting");
  auto& c = costs_[std::size_t(int(region_))];
  attribute_elapsed(&c.compute_seconds);
  in_collective_ = true;
}

void Tracker::end_collective(CollKind kind, std::size_t bytes, int nranks) {
  CHASE_ABORT_IF(!in_collective_, "end_collective without begin");
  auto& c = costs_[std::size_t(int(region_))];
  attribute_elapsed(&c.comm_cpu_seconds);
  in_collective_ = false;
  c.coll_count += 1;
  c.coll_bytes += bytes;
  colls_.push_back(CollectiveEvent{region_, kind, bytes, nranks});
}

void Tracker::record_collective(CollKind kind, std::size_t bytes, int nranks) {
  auto& c = costs_[std::size_t(int(region_))];
  c.coll_count += 1;
  c.coll_bytes += bytes;
  colls_.push_back(CollectiveEvent{region_, kind, bytes, nranks});
}

void Tracker::bump(std::string_view name, double amount) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), amount);
  } else {
    it->second += amount;
  }
}

double Tracker::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

std::map<std::string, double, std::less<>> Tracker::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

void Tracker::record_memcpy(std::size_t bytes, bool to_device) {
  auto& c = costs_[std::size_t(int(region_))];
  c.memcpy_count += 1;
  c.memcpy_bytes += bytes;
  copies_.push_back(MemcpyEvent{region_, bytes, to_device});
}

void Tracker::flush() {
  auto& c = costs_[std::size_t(int(region_))];
  attribute_elapsed(in_collective_ ? &c.comm_cpu_seconds : &c.compute_seconds);
}

void Tracker::merge_max_times(const Tracker& other) {
  for (int r = 0; r < kRegionCount; ++r) {
    auto& mine = costs_[std::size_t(r)];
    const auto& theirs = other.costs_[std::size_t(r)];
    mine.compute_seconds = std::max(mine.compute_seconds, theirs.compute_seconds);
    mine.comm_cpu_seconds =
        std::max(mine.comm_cpu_seconds, theirs.comm_cpu_seconds);
    mine.coll_count = std::max(mine.coll_count, theirs.coll_count);
    mine.coll_bytes = std::max(mine.coll_bytes, theirs.coll_bytes);
    mine.memcpy_count = std::max(mine.memcpy_count, theirs.memcpy_count);
    mine.memcpy_bytes = std::max(mine.memcpy_bytes, theirs.memcpy_bytes);
    for (int c = 0; c < kFlopClassCount; ++c) {
      mine.flops[std::size_t(c)] =
          std::max(mine.flops[std::size_t(c)], theirs.flops[std::size_t(c)]);
    }
    mine.mem_bytes = std::max(mine.mem_bytes, theirs.mem_bytes);
  }
  if (this != &other) {
    std::scoped_lock lock(counters_mu_, other.counters_mu_);
    for (const auto& [name, value] : other.counters_) {
      auto it = counters_.find(name);
      if (it == counters_.end()) {
        counters_.emplace(name, value);
      } else {
        it->second = std::max(it->second, value);
      }
    }
  }
  if (colls_.empty()) colls_ = other.colls_;
  if (copies_.empty()) copies_ = other.copies_;
}

void set_thread_tracker(Tracker* t) { tls_tracker = t; }

Tracker* thread_tracker() { return tls_tracker; }

void bump_counter(std::string_view name, double amount) {
  if (tls_tracker != nullptr) tls_tracker->bump(name, amount);
}

}  // namespace chase::perf
