// Per-stage timing breakdown of the solver engine — the paper's Table-3
// style view (time per ChASE stage), produced from the Tracker counters the
// staged pipeline maintains ("engine.stage.<name>.seconds" / ".calls").
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "perf/tracker.hpp"

namespace chase::perf {

struct StageTiming {
  std::string name;
  double seconds = 0;
  double calls = 0;
};

/// Extract the engine's stage timings from a tracker, in recorded order of
/// the counter map (alphabetical; stable across runs).
inline std::vector<StageTiming> engine_stage_timings(const Tracker& t) {
  constexpr std::string_view kPrefix = "engine.stage.";
  constexpr std::string_view kSeconds = ".seconds";
  std::vector<StageTiming> out;
  for (const auto& [key, value] : t.counters()) {
    if (key.size() <= kPrefix.size() + kSeconds.size()) continue;
    if (key.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (key.compare(key.size() - kSeconds.size(), kSeconds.size(),
                    kSeconds) != 0) {
      continue;
    }
    StageTiming s;
    s.name = key.substr(kPrefix.size(),
                        key.size() - kPrefix.size() - kSeconds.size());
    s.seconds = value;
    s.calls = t.counter(std::string(kPrefix) + s.name + ".calls");
    out.push_back(std::move(s));
  }
  return out;
}

/// Human-readable stage table (name, calls, total seconds, share).
inline std::string format_stage_table(const Tracker& t) {
  const auto stages = engine_stage_timings(t);
  double total = 0;
  for (const auto& s : stages) total += s.seconds;
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "%-16s %8s %12s %7s\n", "stage", "calls",
                "seconds", "share");
  out += line;
  for (const auto& s : stages) {
    std::snprintf(line, sizeof(line), "%-16s %8.0f %12.6f %6.1f%%\n",
                  s.name.c_str(), s.calls, s.seconds,
                  total > 0 ? 100.0 * s.seconds / total : 0.0);
    out += line;
  }
  return out;
}

}  // namespace chase::perf
