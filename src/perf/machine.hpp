// Analytic machine description used to price computation, collectives and
// host-device staging at cluster scale.
//
// The constants describe one JUWELS-Booster-like node (Section 4): 4x NVIDIA
// A100-40GB per node, 4x InfiniBand HDR adapters, PCIe gen4 staging, with one
// MPI rank per GPU for the STD/NCCL variants. They are *effective* rates (the
// fraction of peak a well-tuned kernel reaches), not peaks; the calibration
// test in tests/perf checks that the model reproduces the relative behaviour
// of the real small-scale runs, and EXPERIMENTS.md records where absolute
// numbers come from.
#pragma once

#include <cstddef>

namespace chase::perf {

class Tracker;
struct TunedTables;

struct MachineModel {
  // --- per-GPU computation (double precision, effective) ---
  double gemm_flops = 17.0e12;   // large HEMM/GEMM, near-peak tensor FP64
  double panel_flops = 0.5e12;   // BLAS-2-bound Householder panel kernels
  double small_flops = 0.5e12;   // redundant n_e x n_e kernels (EVD, POTRF)
  double factor_flops = 17.0e12; // level-3 factorization (HERK/TRSM/POTRF);
                                 // defaults to the GEMM rate — the blocked
                                 // engine lowers these onto GEMM — and is
                                 // replaced by calibrate_factor()
  double hbm_bw = 1.3e12;        // bytes/s, for BLAS-1 bound residual norms

  // --- single-precision speedup over the double-precision GEMM rate ---
  // On A100-class parts TF32/FP32 tensor throughput is ~2x the FP64 rate
  // (and the halved footprint doubles cache-resident tile sizes on CPUs);
  // replaced by calibrate_single() from measured kernel counters.
  double single_speedup = 2.0;
  /// Effective rate for FlopClass::kGemmSingle work.
  double gemm_flops_single() const { return gemm_flops * single_speedup; }

  // --- host <-> device staging (PCIe gen4 x16) ---
  double pcie_bw = 22.0e9;     // bytes/s
  double pcie_latency = 10e-6; // per transfer

  // --- MPI collectives (binary-tree allreduce / binomial bcast over IB) ---
  double mpi_latency = 6e-6;  // per hop
  double mpi_bw = 21.0e9;     // bytes/s per link (HDR200 effective)

  // --- in-node reduction rate (gamma term of the alpha-beta-gamma model) ---
  // Elementwise combine of received chunks during an allreduce; effectively
  // a streaming BLAS-1 kernel, so it runs well below gemm rates.
  double reduce_bw = 0.4e12;  // bytes/s folded

  // --- NCCL collectives (ring over NVLink intra-node + IB inter-node) ---
  double nccl_latency = 18e-6;       // per step; NCCL has higher setup cost
  double nccl_bw_intra = 200.0e9;    // bytes/s, NVLink ring within one node
  double nccl_bw_inter = 22.0e9;     // bytes/s, ring bottlenecked by HDR IB
  /// Ring bandwidth for a communicator of `nranks` ranks (4 GPUs per node:
  /// larger communicators necessarily cross InfiniBand).
  double nccl_bw(int nranks) const {
    return nranks <= 4 ? nccl_bw_intra : nccl_bw_inter;
  }

  // --- per-link-class alpha-beta terms for the two-level topology model ---
  // When a communicator carries a grouped topology (perf::TopoInfo), the
  // cost model prices each hop by the class of the link it crosses: fast
  // links inside a node group (NVLink / shared memory) vs the slow
  // inter-node class (HDR IB). These default to the NCCL ring rates above
  // and are replaced by calibrate_links() (or by a CHASE_TOPO emulation
  // spec, which overrides them per TopoInfo).
  double intra_bw = 200.0e9;      // bytes/s across a fast intra-group link
  double inter_bw = 22.0e9;       // bytes/s across a slow cross-group link
  double intra_latency = 18e-6;   // per hop inside the fast group
  double inter_latency = 25e-6;   // per hop crossing groups

  /// Replace the per-link-class rates with measured values (e.g. from the
  /// --topo sweep of bench/micro_collectives). Non-positive arguments leave
  /// the corresponding rate untouched.
  void calibrate_links(double intra_bytes_per_s, double inter_bytes_per_s,
                       double intra_lat_s = 0, double inter_lat_s = 0);

  /// Host-staged copy of `bytes` across PCIe.
  double memcpy_seconds(std::size_t bytes) const;

  /// Binary-tree MPI allreduce of `bytes` over `nranks` ranks. Reproduces
  /// the paper's power-of-two artifact: non-power-of-two rank counts pay an
  /// extra reduction round (Section 4.5.1).
  double mpi_allreduce_seconds(std::size_t bytes, int nranks) const;

  /// Binomial-tree MPI broadcast.
  double mpi_broadcast_seconds(std::size_t bytes, int nranks) const;

  /// Ring allgather (`bytes` is the *total* gathered payload, matching the
  /// Tracker's CollectiveEvent convention for kAllGather).
  double mpi_allgather_seconds(std::size_t bytes, int nranks) const;

  /// NCCL ring allreduce: 2 (P-1)/P * bytes of traffic per rank.
  double nccl_allreduce_seconds(std::size_t bytes, int nranks) const;

  /// NCCL ring broadcast.
  double nccl_broadcast_seconds(std::size_t bytes, int nranks) const;

  /// NCCL ring allgather (`bytes` is the total gathered payload).
  double nccl_allgather_seconds(std::size_t bytes, int nranks) const;

  /// Replace the effective GEMM rate with the rate the dense-kernel engine
  /// actually achieved on this host, read from the tracker's
  /// "la.gemm.flops" / "la.gemm.seconds" counters (src/la/gemm.hpp records
  /// them on every tracked call). Ignored when less than `min_seconds` of
  /// kernel time was tracked — tiny samples are all dispatch overhead and
  /// would mis-calibrate the model downward.
  void calibrate_gemm(const Tracker& t, double min_seconds = 1e-3);

  /// Same for the effective factorization rate: sums the flop/second
  /// counters of the level-3 factorization engine ("la.trsm.*", "la.trmm.*",
  /// "la.potrf.*", "la.herk.*", "la.hetrd.*", recorded by the dispatchers in
  /// src/la/trsm.hpp, potrf.hpp, gemm.hpp, heevd.hpp) and replaces
  /// factor_flops with the measured aggregate rate.
  void calibrate_factor(const Tracker& t, double min_seconds = 1e-3);

  /// Calibrate the single-precision speedup from the fp32 kernel counters
  /// ("la.gemm32.flops" / "la.gemm32.seconds", recorded by the same engine
  /// dispatchers when the scalar storage is 4 bytes wide). Requires a
  /// calibrated (or trusted) double rate; the speedup is clamped to >= 1 —
  /// a machine where fp32 runs slower than fp64 is a measurement artifact.
  void calibrate_single(const Tracker& t, double min_seconds = 1e-3);

  /// Replace the effective rates with the measured rates of a loaded machine
  /// profile (perf::TunedTables, installed by tune::install_profile): the
  /// double GEMM rate, the pooled factorization rate, and the fp32 speedup.
  /// Unset (zero) table rates leave the corresponding default untouched —
  /// the same contract as the counter-based calibrate_* routines.
  void calibrate_from_tables(const TunedTables& t);
};

/// The process-global MachineModel that prices runtime *selections*: the
/// coll::select auto policy and qr::modeled_qr_seconds both read it, so the
/// cost models and the loaded machine profile share one source of truth.
/// Defaults to the built-in A100 description; tune::install_profile refreshes
/// it via calibrate_from_tables. Returned by value (a couple dozen doubles)
/// from an atomically published slot — safe to call from rank threads.
MachineModel selection_model();

/// Install `m` as the process-global selection model.
void set_selection_model(const MachineModel& m);

/// Reset the selection model to the built-in defaults.
void reset_selection_model();

}  // namespace chase::perf
