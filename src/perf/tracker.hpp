// Per-rank performance accounting.
//
// The paper's Figure 2 decomposes each ChASE kernel (Filter, QR,
// Rayleigh-Ritz, Residuals) into computation, communication and host-device
// data movement, for three library variants (LMS / STD / NCCL). The Tracker
// collects exactly that decomposition from a running rank:
//
//  - computation is measured with the thread CPU clock (barrier waits do not
//    consume CPU time, so time-shared ranks still report their own work);
//  - every collective records a CollectiveEvent (kind, payload bytes,
//    communicator size) so the machine model can price it for MPI trees or
//    NCCL rings at any scale;
//  - host<->device staging records MemcpyEvents; the STD backend surrounds
//    every collective with them, the NCCL backend records none, and the
//    legacy LMS driver adds the per-kernel result copies of ChASE v1.2.
//
// A Tracker is installed thread-locally, so library code (src/comm, src/dist,
// src/core) reports to whatever tracker the surrounding driver set up without
// threading a handle through every call.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/timer.hpp"

namespace chase::perf {

/// ChASE kernel the current work is attributed to (Figure 2 categories,
/// plus Lanczos/Other for the parts outside the figure).
enum class Region : int {
  kOther = 0,
  kLanczos,
  kFilter,
  kQr,
  kRayleighRitz,
  kResidual,
  kCount_,
};

inline constexpr int kRegionCount = int(Region::kCount_);

std::string_view region_name(Region r);

enum class CollKind : int { kAllReduce = 0, kBroadcast, kAllGather, kCount_ };

inline constexpr int kCollKindCount = int(CollKind::kCount_);

struct CollectiveEvent {
  Region region;
  CollKind kind;
  std::size_t bytes;  // total payload moved: per-rank buffer for
                      // reduce/broadcast, the full gathered buffer for
                      // allgather
  int nranks;         // communicator size
};

struct MemcpyEvent {
  Region region;
  std::size_t bytes;
  bool to_device;
};

/// Kernel class a flop count is attributed to; the machine model prices each
/// class at a different effective rate (large GEMMs run near peak, panel
/// factorizations at a fraction, tiny redundant kernels far below; kFactor is
/// level-3 factorization work — HERK/TRSM/POTRF/HETRD — priced at the
/// measured rate of the blocked factorization engine).
enum class FlopClass : int {
  kGemm = 0,
  kGemmSingle,  // fp32/complex<float> HEMM/GEMM (mixed-precision filter)
  kPanel,
  kSmall,
  kFactor,
  kCount_
};

inline constexpr int kFlopClassCount = int(FlopClass::kCount_);

/// Accumulated cost decomposition for one region.
struct RegionCosts {
  double compute_seconds = 0;  // thread CPU time outside collectives
  double comm_cpu_seconds = 0; // thread CPU time inside collectives
  std::size_t coll_count = 0;
  std::size_t coll_bytes = 0;
  std::size_t memcpy_count = 0;
  std::size_t memcpy_bytes = 0;
  std::array<double, std::size_t(kFlopClassCount)> flops{};  // by FlopClass
  double mem_bytes = 0;  // bytes touched by memory-bound (BLAS-1) kernels
};

class Tracker {
 public:
  Tracker();

  // Copyable so trackers still live in std::vector (bench_common.hpp); the
  // copy takes the counter data, never the lock.
  Tracker(const Tracker& other);
  Tracker& operator=(const Tracker& other);

  /// Attribute subsequent work to `r`; returns the previous region.
  Region set_region(Region r);
  Region region() const { return region_; }

  void add_flops(FlopClass cls, double flops);
  void add_mem_bytes(double bytes);

  /// Bracket the body of a collective so its CPU time lands in the
  /// communication bucket instead of the compute bucket.
  void begin_collective();
  void end_collective(CollKind kind, std::size_t bytes, int nranks);

  /// Record a CollectiveEvent without the begin/end CPU-time bracketing —
  /// for nonblocking collectives, whose progress is interleaved with compute
  /// and may overlap other outstanding requests (begin_collective forbids
  /// nesting by design). Their CPU time stays in the compute bucket, which
  /// is exactly the overlap the v1.4 pipeline is after.
  void record_collective(CollKind kind, std::size_t bytes, int nranks);

  void record_memcpy(std::size_t bytes, bool to_device);

  /// Named event counters for rare, qualitative events the fixed cost
  /// decomposition cannot express — recovery-ladder escalations
  /// ("qr.potrf_breakdown", "qr.hhqr_fallback", "qr.variant.<name>"),
  /// numerical-breakdown recoveries ("filter.nan_recovery",
  /// "lanczos.restart"), and whatever future subsystems need observable.
  ///
  /// Counter mutation is mutex-guarded: the solver service (src/svc) bumps
  /// one shared metrics tracker from concurrent worker threads. The region
  /// cost decomposition stays single-thread (a Tracker is installed
  /// thread-locally for that use).
  void bump(std::string_view name, double amount = 1.0);
  /// Value of a named counter; 0 if never bumped.
  double counter(std::string_view name) const;
  /// Snapshot of all named counters (by value: the map may be concurrently
  /// mutated by other threads' bumps).
  std::map<std::string, double, std::less<>> counters() const;

  /// Flush the running CPU timer into the current region.
  void flush();

  const RegionCosts& costs(Region r) const {
    return costs_[std::size_t(int(r))];
  }
  const std::vector<CollectiveEvent>& collectives() const { return colls_; }
  const std::vector<MemcpyEvent>& memcpys() const { return copies_; }

  /// Merge another tracker's accumulators into this one (used to combine
  /// per-rank trackers after a Team run; times take the max across ranks,
  /// event streams are taken from rank 0 which is representative by SPMD).
  void merge_max_times(const Tracker& other);

 private:
  void attribute_elapsed(double* bucket);

  Region region_ = Region::kOther;
  std::array<RegionCosts, std::size_t(kRegionCount)> costs_{};
  std::vector<CollectiveEvent> colls_;
  std::vector<MemcpyEvent> copies_;
  std::map<std::string, double, std::less<>> counters_;
  mutable std::mutex counters_mu_;  // guards counters_ only
  double last_cpu_ = 0;
  bool in_collective_ = false;
};

/// Install / fetch the calling thread's tracker. Library code must tolerate
/// a null tracker (no accounting requested).
void set_thread_tracker(Tracker* t);
Tracker* thread_tracker();

/// Bump a named counter on the calling thread's tracker; no-op without one.
void bump_counter(std::string_view name, double amount = 1.0);

/// RAII region scope: sets the region on construction, restores on exit.
class RegionScope {
 public:
  explicit RegionScope(Region r) {
    if (Tracker* t = thread_tracker()) {
      tracker_ = t;
      prev_ = t->set_region(r);
    }
  }
  ~RegionScope() {
    if (tracker_ != nullptr) tracker_->set_region(prev_);
  }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

 private:
  Tracker* tracker_ = nullptr;
  Region prev_ = Region::kOther;
};

}  // namespace chase::perf
