// Tiny CSV writer used by the figure benches: alongside the human-readable
// tables on stdout, each experiment drops a machine-readable series (set
// CHASE_BENCH_CSV_DIR to choose the directory; unset disables writing).
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace chase::perf {

class CsvWriter {
 public:
  /// Opens `<dir>/<name>` if the CHASE_BENCH_CSV_DIR environment variable is
  /// set (or `dir_override` is non-empty); otherwise the writer is inert.
  explicit CsvWriter(const std::string& name,
                     const std::string& dir_override = "");

  bool enabled() const { return out_.is_open(); }
  const std::string& path() const { return path_; }

  void header(std::initializer_list<std::string> cols) { write_cells(cols); }

  template <typename... Ts>
  void row(const Ts&... cells) {
    if (!enabled()) return;
    std::ostringstream os;
    bool first = true;
    ((os << (first ? "" : ",") << cells, first = false), ...);
    out_ << os.str() << "\n";
  }

 private:
  void write_cells(std::initializer_list<std::string> cols);

  std::ofstream out_;
  std::string path_;
};

}  // namespace chase::perf
