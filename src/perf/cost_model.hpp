// Pricing of recorded or analytically generated event streams.
//
// A CostBreakdown carries the three Figure-2 stack components (computation,
// communication, host-device movement) for one ChASE kernel. price_tracker()
// converts what a real run recorded into modeled cluster time;
// price_collective()/price flops helpers are shared with the analytic
// replayers in chase_model.hpp.
#pragma once

#include <array>

#include "perf/backend.hpp"
#include "perf/machine.hpp"
#include "perf/tracker.hpp"

namespace chase::perf {

struct CostBreakdown {
  double compute = 0;
  double comm = 0;
  double movement = 0;
  double total() const { return compute + comm + movement; }

  CostBreakdown& operator+=(const CostBreakdown& o) {
    compute += o.compute;
    comm += o.comm;
    movement += o.movement;
    return *this;
  }
};

using KernelCosts = std::array<CostBreakdown, std::size_t(kRegionCount)>;

/// Total across all regions.
CostBreakdown sum_costs(const KernelCosts& costs);

/// Seconds for one collective of `kind` with per-rank payload `bytes` over
/// `nranks` ranks under the given backend (MPI tree vs NCCL ring).
double price_collective(const MachineModel& m, Backend backend, CollKind kind,
                        std::size_t bytes, int nranks);

/// Concrete collective algorithm of the src/coll engine, priced by the
/// extended alpha-beta-gamma model below (alpha: per-step latency, beta:
/// link bandwidth, gamma: elementwise-reduction rate).
enum class CollAlgo : int {
  kNaiveAlgo = 0,   // publish-and-sync: two barriers + every rank reads all
  kRingAlgo,        // ordered pipelined chain (allreduce) / ring (allgather)
  kRabenseifner,    // reduce-scatter + allgather, 2N(P-1)/P bytes per rank
  kBruck,           // log-round allgather
  kBinomial,        // binomial tree broadcast, chunk-pipelined
  kHierAlgo,        // two-level: fast-group phase + leader exchange + fanout
};

/// Two-level shape of a communicator: how its ranks group into nodes and
/// what the cross-node link class costs. The comm layer derives one per
/// communicator from the CHASE_TOPO assignment (src/comm/topology.hpp);
/// a default-constructed TopoInfo is the flat single-node shape and prices
/// exactly like the pre-topology model.
struct TopoInfo {
  int nodes = 1;          // node groups spanned by this communicator
  int max_per_node = 1;   // ranks in the largest group
  bool contiguous = true; // groups are contiguous rank ranges (hier-capable)
  double inter_bw = 0;    // emulated cross-group bytes/s (0: MachineModel's)
  double inter_latency = 0;  // emulated cross-group hop seconds (0: model's)

  /// True when hierarchical routing is meaningful: more than one group,
  /// each group a contiguous rank range.
  bool grouped() const { return nodes > 1 && contiguous; }
};

/// Seconds for one collective executed with `algo` and chunk-size
/// `chunk_bytes` pipelining; `bytes` follows the Tracker convention
/// (per-rank payload for reduce/broadcast, total gathered for allgather).
/// This is the objective CHASE_COLL_ALGO=auto minimizes.
double coll_algo_seconds(const MachineModel& m, Backend backend, CollKind kind,
                         CollAlgo algo, std::size_t bytes, int nranks,
                         std::size_t chunk_bytes);

/// Topology-aware variant: prices each hop by its link class. Flat
/// `topo` (default TopoInfo) reproduces the overload above exactly; a
/// grouped topology charges the hops that cross node groups at the
/// inter-node alpha-beta terms (topo's emulated values when set, else the
/// MachineModel's inter_bw/inter_latency) — in particular the flat ring
/// allreduce pays for squeezing 2x the payload through its busiest
/// cross-group sender, which is precisely what the hierarchical algorithm
/// avoids.
double coll_algo_seconds(const MachineModel& m, Backend backend, CollKind kind,
                         CollAlgo algo, std::size_t bytes, int nranks,
                         std::size_t chunk_bytes, const TopoInfo& topo);

/// Modeled compute seconds for a RegionCosts record (flops by class plus
/// memory-bound bytes).
double price_compute(const MachineModel& m, const RegionCosts& c);

/// Price everything a Tracker recorded: compute from the analytic flop
/// counters, communication from the collective events, movement from the
/// staging events. This is how a real small-scale run is replayed onto the
/// modeled A100 cluster.
KernelCosts price_tracker(const MachineModel& m, Backend backend,
                          const Tracker& t);

}  // namespace chase::perf
