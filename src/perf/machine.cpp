#include "perf/machine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

#include "perf/tracker.hpp"
#include "perf/tuned.hpp"

namespace chase::perf {

namespace {

// The selection model is read per collective-select call from rank threads
// and replaced rarely (profile load / recalibration); published through an
// atomic pointer with retired old copies, like the tuned tables.
struct SelectionSlot {
  std::atomic<const MachineModel*> current{nullptr};
  std::mutex mu;
  std::vector<std::unique_ptr<const MachineModel>> retired;
};

SelectionSlot& selection_slot() {
  static SelectionSlot s;
  return s;
}

int ceil_log2(int p) {
  int r = 0;
  int v = 1;
  while (v < p) {
    v *= 2;
    ++r;
  }
  return r;
}

bool is_pow2(int p) { return p > 0 && (p & (p - 1)) == 0; }

}  // namespace

void MachineModel::calibrate_gemm(const Tracker& t, double min_seconds) {
  const double flops = t.counter("la.gemm.flops");
  const double seconds = t.counter("la.gemm.seconds");
  if (flops > 0 && seconds >= min_seconds) gemm_flops = flops / seconds;
}

void MachineModel::calibrate_factor(const Tracker& t, double min_seconds) {
  static constexpr const char* kFamilies[] = {"la.trsm", "la.trmm", "la.potrf",
                                              "la.herk", "la.hetrd"};
  double flops = 0;
  double seconds = 0;
  for (const char* fam : kFamilies) {
    flops += t.counter(std::string(fam) + ".flops");
    seconds += t.counter(std::string(fam) + ".seconds");
  }
  if (flops > 0 && seconds >= min_seconds) factor_flops = flops / seconds;
}

void MachineModel::calibrate_links(double intra_bytes_per_s,
                                   double inter_bytes_per_s,
                                   double intra_lat_s, double inter_lat_s) {
  if (intra_bytes_per_s > 0) intra_bw = intra_bytes_per_s;
  if (inter_bytes_per_s > 0) inter_bw = inter_bytes_per_s;
  if (intra_lat_s > 0) intra_latency = intra_lat_s;
  if (inter_lat_s > 0) inter_latency = inter_lat_s;
}

void MachineModel::calibrate_single(const Tracker& t, double min_seconds) {
  const double flops = t.counter("la.gemm32.flops");
  const double seconds = t.counter("la.gemm32.seconds");
  if (flops > 0 && seconds >= min_seconds && gemm_flops > 0) {
    single_speedup = std::max(1.0, (flops / seconds) / gemm_flops);
  }
}

void MachineModel::calibrate_from_tables(const TunedTables& t) {
  if (t.gemm_flops > 0) gemm_flops = t.gemm_flops;
  if (t.factor_flops > 0) factor_flops = t.factor_flops;
  if (t.single_speedup > 0) single_speedup = std::max(1.0, t.single_speedup);
}

MachineModel selection_model() {
  if (const MachineModel* m =
          selection_slot().current.load(std::memory_order_acquire)) {
    return *m;
  }
  return MachineModel{};
}

void set_selection_model(const MachineModel& m) {
  auto& s = selection_slot();
  std::lock_guard<std::mutex> lock(s.mu);
  auto fresh = std::make_unique<const MachineModel>(m);
  s.current.store(fresh.get(), std::memory_order_release);
  s.retired.push_back(std::move(fresh));
}

void reset_selection_model() {
  auto& s = selection_slot();
  std::lock_guard<std::mutex> lock(s.mu);
  s.current.store(nullptr, std::memory_order_release);
}

double MachineModel::memcpy_seconds(std::size_t bytes) const {
  return pcie_latency + double(bytes) / pcie_bw;
}

double MachineModel::mpi_allreduce_seconds(std::size_t bytes, int nranks) const {
  if (nranks <= 1) return 0;
  // Reduce + broadcast phases over a binary tree: each of the ~2 log2(P)
  // rounds moves the full payload. Non-power-of-two counts pay an extra
  // round to fold the ragged leaves in (the dips of Figure 3a).
  int rounds = 2 * ceil_log2(nranks);
  if (!is_pow2(nranks)) rounds += 2;
  return rounds * (mpi_latency + double(bytes) / mpi_bw);
}

double MachineModel::mpi_broadcast_seconds(std::size_t bytes, int nranks) const {
  if (nranks <= 1) return 0;
  const int rounds = ceil_log2(nranks);
  return rounds * (mpi_latency + double(bytes) / mpi_bw);
}

double MachineModel::mpi_allgather_seconds(std::size_t bytes, int nranks) const {
  if (nranks <= 1) return 0;
  // Ring allgather: P-1 steps, each moving one rank's share of the total
  // gathered payload `bytes`.
  return (nranks - 1) * (mpi_latency + double(bytes) / nranks / mpi_bw);
}

double MachineModel::nccl_allreduce_seconds(std::size_t bytes, int nranks) const {
  if (nranks <= 1) return 0;
  const double traffic = 2.0 * double(nranks - 1) / double(nranks) * double(bytes);
  return 2 * (nranks - 1) * nccl_latency + traffic / nccl_bw(nranks);
}

double MachineModel::nccl_broadcast_seconds(std::size_t bytes, int nranks) const {
  if (nranks <= 1) return 0;
  const double traffic = double(nranks - 1) / double(nranks) * double(bytes);
  return (nranks - 1) * nccl_latency + traffic / nccl_bw(nranks);
}

double MachineModel::nccl_allgather_seconds(std::size_t bytes, int nranks) const {
  if (nranks <= 1) return 0;
  // `bytes` is the total gathered payload; each rank receives all but its
  // own 1/P share over the ring.
  const double traffic =
      double(nranks - 1) / double(nranks) * double(bytes);
  return (nranks - 1) * nccl_latency + traffic / nccl_bw(nranks);
}

}  // namespace chase::perf
