#include "perf/report.hpp"

#include <cstdlib>

namespace chase::perf {

CsvWriter::CsvWriter(const std::string& name,
                     const std::string& dir_override) {
  std::string dir = dir_override;
  if (dir.empty()) {
    if (const char* env = std::getenv("CHASE_BENCH_CSV_DIR")) dir = env;
  }
  if (dir.empty()) return;
  path_ = dir + "/" + name;
  out_.open(path_);
}

void CsvWriter::write_cells(std::initializer_list<std::string> cols) {
  if (!enabled()) return;
  bool first = true;
  for (const auto& c : cols) {
    out_ << (first ? "" : ",") << c;
    first = false;
  }
  out_ << "\n";
}

}  // namespace chase::perf
