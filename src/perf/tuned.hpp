// Tuned dispatch tables: the low-level, dependency-free representation of a
// loaded machine profile (src/tune).
//
// The autotuner benchmarks the registered kernels and collective algorithms
// and persists the winners per shape/size class (DBCSR-style: tune once per
// machine, dispatch from the table at runtime). The la and coll policy
// layers cannot depend on src/tune (tune drives them), so the *data* lives
// here in perf — plain ints keyed by the class enums below, with the
// translation to la::GemmKernel / la::FactorKernel / coll::Algorithm done by
// the consumers, and the installation done by tune::install_profile().
//
// Precedence contract (enforced by each consumer): an explicit override
// (CHASE_* env var or a Scoped* policy guard) always wins; otherwise a
// loaded profile's table entry; otherwise the built-in/build-time default.
// A process that never loads a profile sees every entry unset and behaves
// exactly as before the autotuner existed.
#pragma once

#include <atomic>
#include <cstddef>

#include "perf/tracker.hpp"

namespace chase::perf {

// --- shape and size classes the tuned tables are keyed by ---

/// Scalar storage type of a dense kernel call.
enum class ScalarTag : int { kF32 = 0, kF64, kC32, kC64, kCount_ };
inline constexpr int kScalarTagCount = int(ScalarTag::kCount_);

const char* scalar_tag_name(ScalarTag t);

/// Dense-kernel shape class, by the geometric-mean dimension of the
/// product (cbrt(m*n*k) for GEMM, the triangular n for factorizations).
/// Class boundaries match the tuner's representative sizes: it measures one
/// size per class and the winner covers the class.
enum class NClass : int { kSmall = 0, kMedium, kLarge, kCount_ };
inline constexpr int kNClassCount = int(NClass::kCount_);

const char* n_class_name(NClass c);

/// Class of a GEMM-shaped product m x n x k.
NClass gemm_n_class(double m, double n, double k);

/// Class of a factorization on a triangular dimension n.
NClass factor_n_class(long long n);

/// Collective message-size class (bytes follow the Tracker convention:
/// per-rank payload for reduce/broadcast, total gathered for allgather).
enum class MsgClass : int { kSmallMsg = 0, kMediumMsg, kLargeMsg, kCount_ };
inline constexpr int kMsgClassCount = int(MsgClass::kCount_);

const char* msg_class_name(MsgClass c);
MsgClass msg_class(std::size_t bytes);

// --- the tables themselves ---

/// One loaded profile's dispatch tables. Entries are the *int value* of the
/// consumer-side enum (la::GemmKernel, la::FactorKernel, coll::Algorithm);
/// -1 means "no tuned entry, fall through to the default". Rates are the
/// measured machine rates (0 = unset) that calibrate the selection
/// MachineModel.
struct TunedTables {
  int gemm_kernel[kScalarTagCount][kNClassCount];
  int factor_kernel[kNClassCount];
  int coll_algo[kCollKindCount][kMsgClassCount];
  long long chunk_bytes = 0;  // 0 = unset
  double gemm_flops = 0;      // measured double GEMM rate (flops/s)
  double factor_flops = 0;    // measured factorization-engine rate
  double single_speedup = 0;  // measured fp32/fp64 GEMM rate ratio

  TunedTables() {
    for (auto& row : gemm_kernel) {
      for (int& v : row) v = -1;
    }
    for (int& v : factor_kernel) v = -1;
    for (auto& row : coll_algo) {
      for (int& v : row) v = -1;
    }
  }
};

/// The process-global tuned tables, or null when no profile is installed.
/// One relaxed-ish atomic load — cheap enough for the per-call kernel
/// dispatchers. The returned pointer stays valid for the process lifetime
/// (replaced tables are retired, not freed).
const TunedTables* tuned_tables();

/// Install a copy of `t` as the process-global tables (published with
/// release semantics; the previous tables are retired, never freed, so
/// concurrent readers stay safe).
void set_tuned_tables(const TunedTables& t);

/// Remove the installed tables; consumers fall back to built-in defaults.
void clear_tuned_tables();

}  // namespace chase::perf
