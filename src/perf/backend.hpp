// Communication backend tag shared by the runtime (src/comm) and the cost
// models (src/perf). Mirrors the paper's three variants:
//   kHostMpi — CPU build, host buffers + MPI collectives;
//   kStdGpu  — ChASE(STD): device buffers, staged through the host around
//              every MPI collective;
//   kNcclGpu — ChASE(NCCL): device-direct NCCL collectives, no staging.
#pragma once

#include <string_view>

namespace chase::perf {

enum class Backend : int { kHostMpi = 0, kStdGpu, kNcclGpu };

inline std::string_view backend_name(Backend b) {
  switch (b) {
    case Backend::kStdGpu:
      return "STD";
    case Backend::kNcclGpu:
      return "NCCL";
    case Backend::kHostMpi:
    default:
      return "MPI";
  }
}

}  // namespace chase::perf
