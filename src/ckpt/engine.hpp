// The checkpoint engine: capture at iteration boundaries, restore before
// the first resumed iteration.
//
// Capture is collective (the basis is gathered over the column communicator
// into a replicated global V — the v1.2 collection primitive reused for a
// rare, off-hot-path operation); exactly one rank (world rank 0) encodes
// and stores the blob, so the CRC/serialization cost is not multiplied by
// the team size. Each rank constructs its own engine over a *shared* sink.
//
// Restore is the mirror image and deliberately skips the Lanczos bounds
// pass: the snapshot carries the original spectral bounds, and replaying
// them (rather than re-estimating) is what makes a resumed solve bitwise
// equal to the uninterrupted one.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/policy.hpp"
#include "ckpt/sink.hpp"
#include "ckpt/snapshot.hpp"
#include "common/timer.hpp"
#include "core/dla.hpp"
#include "core/engine/pipeline.hpp"
#include "perf/tracker.hpp"

namespace chase::ckpt {

template <typename T>
class CheckpointEngine {
 public:
  using R = RealType<T>;

  /// `interval < 0` defers to the CHASE_CKPT_INTERVAL policy.
  explicit CheckpointEngine(SnapshotSink* sink, int interval = -1)
      : sink_(sink),
        interval_(interval >= 0 ? interval : checkpoint_interval()) {}

  int interval() const { return interval_; }
  bool enabled() const { return sink_ != nullptr && interval_ > 0; }
  bool due(long iter) const { return enabled() && iter % interval_ == 0; }
  long captures() const { return captures_; }

  /// Sequence-driver stream counter carried into every snapshot (so a
  /// resumed ChaseSequence reseeds from the restored stream, not the global
  /// seed).
  void set_rng_stream(std::uint64_t stream) { rng_stream_ = stream; }

  /// Collective over the grid: gather the basis, encode on world rank 0,
  /// hand the blob to the sink.
  void capture(core::engine::SolveContext<T>& ctx, core::DlaBackend<T>& dla) {
    WallTimer timer;
    snap_.n = dla.global_size();
    snap_.ne = ctx.ne;
    snap_.iter = ctx.iter;
    snap_.locked = ctx.locked;
    snap_.nan_recoveries = ctx.nan_recoveries;
    snap_.matvecs = ctx.result.matvecs;
    snap_.seed = ctx.cfg.seed;
    snap_.rng_stream = rng_stream_;
    snap_.b_sup = double(ctx.result.bounds.b_sup);
    snap_.mu_1 = double(ctx.result.bounds.mu_1);
    snap_.mu_ne = double(ctx.result.bounds.mu_ne);
    snap_.ritz = ctx.ritz;
    snap_.resid = ctx.resid;
    snap_.degs = ctx.degs;
    snap_.v.resize(snap_.n, snap_.ne);
    dla.save_basis(ctx.ws, snap_.v.view());
    if (dla.grid().world().rank() == 0) {
      encode(snap_, blob_);
      sink_->store(blob_, ctx.iter);
      perf::bump_counter("ckpt.snapshot.bytes", double(blob_.size()));
    }
    ++captures_;
    perf::bump_counter("ckpt.capture.calls");
    perf::bump_counter("ckpt.capture.seconds", timer.seconds());
  }

 private:
  SnapshotSink* sink_;
  int interval_;
  long captures_ = 0;
  std::uint64_t rng_stream_ = 0;
  Snapshot<T> snap_;  // buffers reused across captures (no steady-state
  std::vector<unsigned char> blob_;  // allocation after the first one)
};

/// Pipeline stage placed after locking: captures when the cadence says so.
/// Runs only on iterations that continue (a converged iteration breaks the
/// stage loop at LockingStage — nothing left to protect).
template <typename T>
class CheckpointStage final : public core::engine::Stage<T> {
 public:
  explicit CheckpointStage(CheckpointEngine<T>* engine) : engine_(engine) {}

  std::string_view name() const override { return "checkpoint"; }

  core::engine::StageOutcome run(core::engine::SolveContext<T>& ctx,
                                 core::DlaBackend<T>& dla) override {
    if (engine_ != nullptr && engine_->due(ctx.iter)) {
      engine_->capture(ctx, dla);
    }
    return core::engine::StageOutcome::kContinue;
  }

 private:
  CheckpointEngine<T>* engine_;
};

/// Restore a decoded snapshot into a freshly set-up solve: bounds, Ritz
/// bookkeeping, locked count, recovery counter, and the distributed basis.
/// Collective-free (the snapshot is replicated), so every rank applies it
/// independently and consistently.
template <typename T>
void apply_resume(const Snapshot<T>& snap, core::engine::SolveContext<T>& ctx,
                  core::DlaBackend<T>& dla) {
  using R = RealType<T>;
  CHASE_CHECK_MSG(snap.n == dla.global_size() && snap.ne == ctx.cfg.subspace(),
                  "ckpt: snapshot shape does not match the problem");
  ctx.result.bounds = {R(snap.b_sup), R(snap.mu_1), R(snap.mu_ne)};
  ctx.init_from_bounds();
  ctx.ritz = snap.ritz;
  ctx.resid = snap.resid;
  ctx.degs = snap.degs;
  ctx.locked = snap.locked;
  ctx.nan_recoveries = snap.nan_recoveries;
  ctx.result.matvecs = snap.matvecs;
  dla.restore_basis(ctx.ws, snap.v.cview());
  perf::bump_counter("ckpt.resume.calls");
}

/// Checkpoint plumbing handed to the solve drivers; both fields optional.
template <typename T>
struct SolveCkpt {
  CheckpointEngine<T>* engine = nullptr;  // capture at iteration boundaries
  const Snapshot<T>* resume = nullptr;    // restore before the first iteration
};

/// Decode the newest snapshot in `sink` that passes validation (the
/// double-buffer fallback). Returns false if none survives.
template <typename T>
bool load_last_good(SnapshotSink& sink, Snapshot<T>& out) {
  for (const auto& blob : sink.load_all()) {
    if (decode(blob, out)) return true;
    perf::bump_counter("ckpt.load.rejected");
  }
  return false;
}

}  // namespace chase::ckpt
