#include "ckpt/sink.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/check.hpp"

namespace chase::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr const char* kPrefix = "chase_ckpt_";
constexpr const char* kSuffix = ".bin";

/// Iteration number encoded in a snapshot file name; -1 if the name is not
/// ours.
long iter_of(const fs::path& p) {
  const std::string name = p.filename().string();
  const std::size_t plen = std::string(kPrefix).size();
  const std::size_t slen = std::string(kSuffix).size();
  if (name.size() <= plen + slen || name.compare(0, plen, kPrefix) != 0 ||
      name.compare(name.size() - slen, slen, kSuffix) != 0) {
    return -1;
  }
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::atol(digits.c_str());
}

/// Snapshot files in `dir`, newest (highest iteration) first.
std::vector<fs::path> list_snapshots(const std::string& dir) {
  std::vector<std::pair<long, fs::path>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const long iter = iter_of(entry.path());
    if (iter >= 0) found.emplace_back(iter, entry.path());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<fs::path> out;
  out.reserve(found.size());
  for (auto& [iter, path] : found) out.push_back(std::move(path));
  return out;
}

}  // namespace

FileSink::FileSink(std::string dir) : dir_(std::move(dir)) {
  CHASE_CHECK_MSG(!dir_.empty(), "FileSink: empty directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  CHASE_CHECK_MSG(!ec, "FileSink: cannot create directory " + dir_);
}

void FileSink::store(const std::vector<unsigned char>& blob, long iter) {
  std::lock_guard<std::mutex> lock(mutex_);
  const fs::path final_path =
      fs::path(dir_) / (kPrefix + std::to_string(iter) + kSuffix);
  const fs::path tmp_path = fs::path(dir_) / (kPrefix + std::to_string(iter) +
                                              std::string(kSuffix) + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    CHASE_CHECK_MSG(out.good(),
                    "FileSink: cannot write " + tmp_path.string());
    out.write(reinterpret_cast<const char*>(blob.data()),
              std::streamsize(blob.size()));
    CHASE_CHECK_MSG(out.good(), "FileSink: short write to " +
                                    tmp_path.string());
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  CHASE_CHECK_MSG(!ec, "FileSink: rename failed for " + final_path.string());
  // Prune to the newest two generations (double buffering on disk).
  const auto snapshots = list_snapshots(dir_);
  for (std::size_t k = 2; k < snapshots.size(); ++k) {
    fs::remove(snapshots[k], ec);
  }
}

std::vector<std::vector<unsigned char>> FileSink::load_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::vector<unsigned char>> out;
  for (const auto& path : list_snapshots(dir_)) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.good()) continue;
    const std::streamsize bytes = in.tellg();
    in.seekg(0);
    std::vector<unsigned char> blob(static_cast<std::size_t>(bytes));
    in.read(reinterpret_cast<char*>(blob.data()), bytes);
    if (in.gcount() == bytes) out.push_back(std::move(blob));
    if (out.size() == 2) break;  // only two generations are retained
  }
  return out;
}

}  // namespace chase::ckpt
