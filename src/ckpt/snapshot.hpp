// Versioned, CRC-guarded snapshot of the full solver state at an iteration
// boundary.
//
// The staged pipeline is designed so that the state crossing an iteration
// boundary is exactly: the orthonormal subspace C (== C2 after the
// back-transform), the Ritz values / residuals / filter degrees per column,
// the locked count, the filter-recovery counter, the spectral bounds from
// the one-off Lanczos pass, and the RNG identifiers (config seed + the
// sequence driver's stream counter). Everything else (B, B2, the Rayleigh
// quotient, the QR workspace) is recomputed inside each iteration, so a
// solve restored from a snapshot replays the uninterrupted run bitwise.
//
// The wire format is a single byte blob:
//
//   u64 magic  "CHASEKPT"          u32 version (kSnapshotVersion)
//   u32 scalar tag                 i64 n, ne, iter, locked,
//   i64 nan_recoveries, matvecs    u64 seed, rng_stream
//   f64 b_sup, mu_1, mu_ne
//   R[ne] ritz   R[ne] resid   i32[ne] degs   T[n*ne] V (column-major)
//   u32 crc32 of everything above
//
// decode() validates magic, version, scalar tag, the declared shape against
// the blob length, and the trailing CRC; any mismatch rejects the blob (the
// sinks then fall back to the previous snapshot — the reason both sinks keep
// two generations).
#pragma once

#include <cstring>
#include <optional>
#include <vector>

#include "ckpt/checksum.hpp"
#include "common/scalar.hpp"
#include "la/matrix.hpp"

namespace chase::ckpt {

using la::Index;

inline constexpr std::uint64_t kSnapshotMagic = 0x54504B4553414843ull;  // "CHASEKPT"
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Scalar tag pinning T across a save/load pair.
template <typename T>
constexpr std::uint32_t scalar_tag() {
  if constexpr (kIsComplex<T>) {
    return sizeof(T) == 8 ? 3u : 4u;  // complex<float> / complex<double>
  } else {
    return sizeof(T) == 4 ? 1u : 2u;  // float / double
  }
}

template <typename T>
struct Snapshot {
  using R = RealType<T>;

  Index n = 0;   // global problem size
  Index ne = 0;  // subspace width (nev + nex)
  long iter = 0;
  Index locked = 0;
  int nan_recoveries = 0;
  long matvecs = 0;
  std::uint64_t seed = 0;
  std::uint64_t rng_stream = 0;  // sequence-driver stream counter
  double b_sup = 0, mu_1 = 0, mu_ne = 0;
  std::vector<R> ritz, resid;
  std::vector<int> degs;
  la::Matrix<T> v;  // global n x ne subspace, replicated
};

namespace detail {

template <typename V>
void put(std::vector<unsigned char>& out, const V& value) {
  const auto* p = reinterpret_cast<const unsigned char*>(&value);
  out.insert(out.end(), p, p + sizeof(V));
}

inline void put_bytes(std::vector<unsigned char>& out, const void* data,
                      std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  out.insert(out.end(), p, p + bytes);
}

/// Bounds-checked sequential reader over a blob.
struct Reader {
  const unsigned char* p;
  std::size_t left;

  template <typename V>
  bool get(V& value) {
    if (left < sizeof(V)) return false;
    std::memcpy(&value, p, sizeof(V));
    p += sizeof(V);
    left -= sizeof(V);
    return true;
  }

  bool get_bytes(void* data, std::size_t bytes) {
    if (left < bytes) return false;
    std::memcpy(data, p, bytes);
    p += bytes;
    left -= bytes;
    return true;
  }
};

}  // namespace detail

/// Serialize `snap` into `out` (replacing its contents).
template <typename T>
void encode(const Snapshot<T>& snap, std::vector<unsigned char>& out) {
  using R = RealType<T>;
  out.clear();
  const std::size_t ne = std::size_t(snap.ne);
  out.reserve(128 + ne * (2 * sizeof(R) + sizeof(int)) +
              std::size_t(snap.n) * ne * sizeof(T) + sizeof(std::uint32_t));
  detail::put(out, kSnapshotMagic);
  detail::put(out, kSnapshotVersion);
  detail::put(out, scalar_tag<T>());
  detail::put(out, std::int64_t(snap.n));
  detail::put(out, std::int64_t(snap.ne));
  detail::put(out, std::int64_t(snap.iter));
  detail::put(out, std::int64_t(snap.locked));
  detail::put(out, std::int64_t(snap.nan_recoveries));
  detail::put(out, std::int64_t(snap.matvecs));
  detail::put(out, snap.seed);
  detail::put(out, snap.rng_stream);
  detail::put(out, snap.b_sup);
  detail::put(out, snap.mu_1);
  detail::put(out, snap.mu_ne);
  detail::put_bytes(out, snap.ritz.data(), ne * sizeof(R));
  detail::put_bytes(out, snap.resid.data(), ne * sizeof(R));
  detail::put_bytes(out, snap.degs.data(), ne * sizeof(int));
  // V is tightly packed column by column (the matrix may carry ld > rows).
  for (Index j = 0; j < snap.ne; ++j) {
    detail::put_bytes(out, snap.v.view().col(j),
                      std::size_t(snap.n) * sizeof(T));
  }
  detail::put(out, crc32(out.data(), out.size()));
}

/// Deserialize a blob into `snap`. Returns false (leaving `snap`
/// unspecified) on any mismatch: magic, version, scalar type, declared
/// shape vs blob length, or CRC.
template <typename T>
bool decode(const std::vector<unsigned char>& blob, Snapshot<T>& snap) {
  using R = RealType<T>;
  if (blob.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, blob.data() + blob.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (crc32(blob.data(), blob.size() - sizeof(stored_crc)) != stored_crc) {
    return false;
  }
  detail::Reader r{blob.data(), blob.size() - sizeof(stored_crc)};
  std::uint64_t magic = 0;
  std::uint32_t version = 0, tag = 0;
  if (!r.get(magic) || magic != kSnapshotMagic) return false;
  if (!r.get(version) || version != kSnapshotVersion) return false;
  if (!r.get(tag) || tag != scalar_tag<T>()) return false;
  std::int64_t n = 0, ne = 0, iter = 0, locked = 0, nanrec = 0, matvecs = 0;
  if (!r.get(n) || !r.get(ne) || !r.get(iter) || !r.get(locked) ||
      !r.get(nanrec) || !r.get(matvecs)) {
    return false;
  }
  if (n < 0 || ne < 0 || ne > n || locked < 0 || locked > ne) return false;
  if (!r.get(snap.seed) || !r.get(snap.rng_stream)) return false;
  if (!r.get(snap.b_sup) || !r.get(snap.mu_1) || !r.get(snap.mu_ne)) {
    return false;
  }
  snap.n = Index(n);
  snap.ne = Index(ne);
  snap.iter = long(iter);
  snap.locked = Index(locked);
  snap.nan_recoveries = int(nanrec);
  snap.matvecs = long(matvecs);
  snap.ritz.resize(std::size_t(ne));
  snap.resid.resize(std::size_t(ne));
  snap.degs.resize(std::size_t(ne));
  if (!r.get_bytes(snap.ritz.data(), std::size_t(ne) * sizeof(R)) ||
      !r.get_bytes(snap.resid.data(), std::size_t(ne) * sizeof(R)) ||
      !r.get_bytes(snap.degs.data(), std::size_t(ne) * sizeof(int))) {
    return false;
  }
  snap.v.resize(Index(n), Index(ne));
  for (Index j = 0; j < snap.ne; ++j) {
    if (!r.get_bytes(snap.v.view().col(j), std::size_t(n) * sizeof(T))) {
      return false;
    }
  }
  return r.left == 0;  // trailing garbage is corruption too
}

}  // namespace chase::ckpt
