// Elastic restart driver: bounded-retry solve over a shrinking team.
//
// Each attempt launches the full-size Team (rank threads are cheap here; on
// a real machine this is the job's original allocation), then ranks known to
// be dead immediately leave through one side of a collective
// Communicator::split while the survivors re-form the working communicator
// on the other side — the MPI_Comm_shrink idiom of ULFM, expressed with the
// primitives this runtime has. The survivors build a fresh nearly-square
// grid, re-block the 1D index maps over it, refill their local H panels,
// restore the last good snapshot from the shared sink and resume the solve
// at the checkpointed iteration.
//
// Degradation ladder (the rung escalates when a failed attempt made no
// checkpoint progress, and drops back to 0 when one did):
//   rung 0 — resume from the last good snapshot;
//   rung 1 — discard the subspace and re-randomize with a salted seed (the
//            snapshot itself may be implicated in the failure);
//   rung 2 — give up on the team entirely and fall back to the sequential
//            driver, still resuming from a snapshot when one decodes.
// Attempts back off exponentially (transient-fault spacing), and the whole
// loop is bounded by max_attempts; exhausting it rethrows the last abort.
//
// Only a failure whose originating site is "rank.die" names the dead rank
// (the injected death propagates out of that rank's own thread, so the
// recorded rank is trustworthy). Watchdog sites name the *detecting* rank —
// shrinking on those would evict a healthy survivor, so they retry on the
// same team shape and rely on the ladder instead.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ckpt/engine.hpp"
#include "comm/communicator.hpp"
#include "core/sequential.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/multivector.hpp"

namespace chase::ckpt {

struct RestartOptions {
  int nranks = 1;                       // team size of the first attempt
  perf::Backend backend = perf::Backend::kHostMpi;
  int max_attempts = 5;                 // bounded retry
  int backoff_ms = 1;                   // base of the exponential backoff
  int ckpt_interval = 1;                // snapshot cadence (iterations)
  SnapshotSink* sink = nullptr;         // nullptr: private in-memory sink
  bool allow_sequential = true;         // permit the final rung
};

struct RestartReport {
  int attempts = 0;                 // team launches (sequential rung excluded)
  int shrinks = 0;                  // times the team re-formed smaller
  int rung = 0;                     // highest ladder rung reached
  bool resumed = false;             // some attempt restored a snapshot
  bool sequential_fallback = false;
  std::vector<comm::RankError> failures;  // one per failed attempt, in order
};

namespace detail {

/// Iteration stamp of the newest decodable snapshot; -1 if none.
template <typename T>
long newest_snapshot_iter(SnapshotSink& sink) {
  Snapshot<T> probe;
  return load_last_good(sink, probe) ? probe.iter : -1;
}

}  // namespace detail

/// Solve for cfg.nev eigenpairs of the n x n Hermitian matrix defined by
/// `element(i, j)` on an elastic team, riding out rank deaths via
/// checkpoint/restart. The returned eigenvectors are the FULL n x nev block
/// (gathered before the team disbands — the final grid shape is an
/// implementation detail the caller cannot predict).
template <typename T, typename F>
core::ChaseResult<T> solve_elastic(Index n, F&& element,
                                   const core::ChaseConfig& cfg,
                                   const RestartOptions& opts,
                                   RestartReport* report = nullptr) {
  CHASE_CHECK_MSG(opts.nranks >= 1 && opts.max_attempts >= 1,
                  "solve_elastic: invalid options");
  MemorySink private_sink;
  SnapshotSink& sink = opts.sink != nullptr ? *opts.sink : private_sink;

  RestartReport local_report;
  RestartReport& rep = report != nullptr ? *report : local_report;
  rep = RestartReport{};

  std::set<int> dead;           // world ranks known lost, across attempts
  int rung = 0;
  long last_snap_iter = -1;
  std::optional<comm::TeamAborted> last_abort;

  const auto run_sequential = [&]() -> core::ChaseResult<T> {
    rep.sequential_fallback = true;
    rep.rung = std::max(rep.rung, 2);
    perf::bump_counter("ckpt.restart.sequential");
    la::Matrix<T> hfull(n, n);
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < n; ++i) hfull(i, j) = element(i, j);
    }
    Snapshot<T> snap;
    SolveCkpt<T> ck;
    CheckpointEngine<T> engine(&sink, opts.ckpt_interval);
    ck.engine = &engine;
    if (load_last_good(sink, snap)) {
      ck.resume = &snap;
      rep.resumed = true;
    }
    return core::solve_sequential<T>(hfull.view().as_const(), cfg, nullptr, {},
                                     ck);
  };

  for (int attempt = 1; attempt <= opts.max_attempts; ++attempt) {
    if (rung >= 2) break;  // ladder bottomed out: sequential below
    if (int(dead.size()) >= opts.nranks) break;  // nobody left to run

    // Decode once on the driver thread; rank threads share it read-only.
    Snapshot<T> snap;
    const bool have_snap = rung == 0 && load_last_good(sink, snap);
    if (have_snap) last_snap_iter = snap.iter;

    core::ChaseConfig acfg = cfg;
    if (rung == 1) {
      // Salt, don't replace: distinct per attempt, reproducible per run.
      acfg.seed = cfg.seed ^ (0x9E3779B97F4A7C15ull * std::uint64_t(attempt));
      perf::bump_counter("ckpt.restart.rerandomize");
    }

    ++rep.attempts;
    core::ChaseResult<T> result;
    std::mutex result_mutex;
    bool have_result = false;  // guards a team that aborts post-solve

    try {
      comm::Team team(opts.nranks, opts.backend);
      team.run([&](comm::Communicator& world) {
        if (dead.count(world.rank()) != 0) {
          // Lost ranks still exist as threads here; leaving through the
          // other split color is how this runtime spells MPI_Comm_shrink.
          world.split(/*color=*/1, world.rank());
          return;
        }
        comm::Communicator comm = world.split(/*color=*/0, world.rank());
        const auto [nprow, npcol] = comm::Grid2d::nearly_square(comm.size());
        comm::Grid2d grid(comm, nprow, npcol);
        auto rmap = dist::IndexMap::block(n, nprow);
        auto cmap = dist::IndexMap::block(n, npcol);
        dist::DistHermitianMatrix<T> h(grid, rmap, cmap);
        h.fill(element);

        CheckpointEngine<T> engine(&sink, opts.ckpt_interval);
        SolveCkpt<T> ck;
        ck.engine = &engine;
        if (have_snap) ck.resume = &snap;

        core::ChaseResult<T> r = core::solve(
            h, acfg, static_cast<core::ChaseObserver<T>*>(nullptr),
            la::ConstMatrixView<T>{}, ck);
        // Gather the full eigenvector block while the team is still alive.
        la::Matrix<T> vfull(n, Index(acfg.nev));
        dist::gather_rows<T>(grid.col_comm(), rmap,
                             r.eigenvectors.view().as_const(), vfull.view());
        if (comm.rank() == 0) {
          std::lock_guard<std::mutex> lock(result_mutex);
          result = std::move(r);
          result.eigenvectors = std::move(vfull);
          have_result = true;
        }
      });
      CHASE_CHECK_MSG(have_result, "solve_elastic: team produced no result");
      if (have_snap) rep.resumed = true;
      rep.rung = std::max(rep.rung, rung);
      return result;
    } catch (const comm::TeamAborted& aborted) {
      last_abort = aborted;
      rep.failures.push_back(aborted.error());
      perf::bump_counter("ckpt.restart.aborts");
      const comm::RankError& err = aborted.error();
      if (err.site == "rank.die" && err.rank >= 0 &&
          err.rank < opts.nranks && dead.count(err.rank) == 0) {
        dead.insert(err.rank);
        ++rep.shrinks;
      }
      // Ladder: a failed attempt that still advanced the checkpoint keeps
      // (or regains) the resume rung; one that didn't escalates.
      const long newest = detail::newest_snapshot_iter<T>(sink);
      if (newest > last_snap_iter) {
        last_snap_iter = newest;
        rung = 0;
      } else {
        ++rung;
      }
      rep.rung = std::max(rep.rung, std::min(rung, 2));
      if (attempt < opts.max_attempts) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::int64_t(opts.backoff_ms) << (attempt - 1)));
      }
    }
  }

  if (opts.allow_sequential) return run_sequential();
  if (last_abort.has_value()) throw *last_abort;
  throw Error("solve_elastic: no attempt possible");
}

}  // namespace chase::ckpt
