// Snapshot sinks: where the encoded blobs live between a failure and the
// resume.
//
// Both sinks keep the last *two* generations — double buffering is what
// makes the store itself crash-safe: a failure (or corruption) during the
// write of generation k leaves generation k-1 intact, and load_all() hands
// candidates back newest-first so the restore path can fall through to the
// previous good snapshot when the newest one fails its CRC.
//
//   MemorySink — two in-memory slots, alternating. The elastic restart
//     driver's default: the process survives a rank death (ranks are
//     threads), so the blob only has to survive the Team, not the process.
//   FileSink   — one file per snapshot in a directory, written to a
//     temporary name and atomically renamed, pruned to the newest two.
//     Survives the process; the C API's checkpoint entry points use it.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace chase::ckpt {

class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;

  /// Store one encoded snapshot taken at iteration `iter`. Called by one
  /// rank per capture; must be safe against concurrent load_all().
  virtual void store(const std::vector<unsigned char>& blob, long iter) = 0;

  /// All retained blobs, newest first. Callers decode in order and keep the
  /// first one that validates.
  virtual std::vector<std::vector<unsigned char>> load_all() = 0;
};

/// Double-buffered in-memory sink (two slots, alternating writes).
class MemorySink final : public SnapshotSink {
 public:
  void store(const std::vector<unsigned char>& blob, long iter) override {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[next_].blob = blob;
    slots_[next_].iter = iter;
    slots_[next_].valid = true;
    next_ ^= 1;
  }

  std::vector<std::vector<unsigned char>> load_all() override {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::vector<unsigned char>> out;
    const int newest = slots_[0].valid && slots_[1].valid
                           ? (slots_[0].iter >= slots_[1].iter ? 0 : 1)
                           : (slots_[0].valid ? 0 : 1);
    for (int k = 0; k < 2; ++k) {
      const auto& slot = slots_[(newest + k) % 2];
      if (slot.valid) out.push_back(slot.blob);
    }
    return out;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[0] = Slot{};
    slots_[1] = Slot{};
    next_ = 0;
  }

 private:
  struct Slot {
    std::vector<unsigned char> blob;
    long iter = -1;
    bool valid = false;
  };
  std::mutex mutex_;
  Slot slots_[2];
  int next_ = 0;
};

/// File-backed sink: `dir/chase_ckpt_<iter>.bin`, written via a temporary
/// name + rename, pruned to the newest two snapshots. The directory is
/// created if missing.
class FileSink final : public SnapshotSink {
 public:
  explicit FileSink(std::string dir);

  void store(const std::vector<unsigned char>& blob, long iter) override;
  std::vector<std::vector<unsigned char>> load_all() override;

  const std::string& dir() const { return dir_; }

 private:
  std::mutex mutex_;
  std::string dir_;
};

}  // namespace chase::ckpt
