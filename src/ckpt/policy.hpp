// Checkpoint cadence policy.
//
// CHASE_CKPT_INTERVAL=k captures a snapshot every k-th iteration boundary
// (0 or unset: checkpointing disabled). Programmatic overrides
// (set_checkpoint_interval / ScopedCheckpointInterval) shadow the
// environment — tests and the elastic restart driver use them so cadence is
// never process-global state they cannot control.
#pragma once

namespace chase::ckpt {

/// Effective capture cadence: the programmatic override if one is set,
/// otherwise CHASE_CKPT_INTERVAL, otherwise 0 (disabled).
int checkpoint_interval();

/// Override the cadence (-1 clears the override, restoring the env value).
void set_checkpoint_interval(int interval);

class ScopedCheckpointInterval {
 public:
  explicit ScopedCheckpointInterval(int interval) {
    set_checkpoint_interval(interval);
  }
  ~ScopedCheckpointInterval() { set_checkpoint_interval(-1); }
  ScopedCheckpointInterval(const ScopedCheckpointInterval&) = delete;
  ScopedCheckpointInterval& operator=(const ScopedCheckpointInterval&) =
      delete;
};

}  // namespace chase::ckpt
