// Checksums guarding the fault-tolerance data paths.
//
// Two algorithms with two jobs:
//   * crc32 — guards checkpoint snapshots at rest. A snapshot is written
//     once and read rarely; the strong mixing of CRC-32 (IEEE 802.3
//     polynomial, table-driven) catches any byte-level corruption of the
//     blob, including reordered and truncated payloads.
//   * fletcher64 — guards collective payloads in flight. The ABFT sentinels
//     (coll/abft.hpp) checksum every rank's reduced buffer after the hot
//     allreduce; Fletcher's two running sums cost one pass of adds (no table
//     lookups, vectorizes) which is what keeps the sentinel affordable on
//     the per-iteration HEMM path, and position sensitivity is enough to
//     expose the 0xFF chunk overwrites of a transport corruption.
#pragma once

#include <cstddef>
#include <cstdint>

namespace chase::ckpt {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `bytes`. `seed` chains
/// incremental computations: pass the previous return value to extend.
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

/// Fletcher-64 over the bytes of a buffer: two modulo-2^32 running sums
/// folded into one 64-bit word. Position-sensitive (unlike a plain sum), one
/// pass, no tables.
inline std::uint64_t fletcher64(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t a = 0, b = 0;
  // Process in blocks small enough that the 32-bit sums cannot overflow the
  // 64-bit accumulators before folding (255 * 5803 * 2^8 < 2^32 headroom).
  while (bytes > 0) {
    std::size_t block = bytes < 5802 ? bytes : 5802;
    bytes -= block;
    while (block-- > 0) {
      a += *p++;
      b += a;
    }
    a %= 0xFFFFFFFFull;
    b %= 0xFFFFFFFFull;
  }
  return (b << 32) | a;
}

}  // namespace chase::ckpt
