#include "ckpt/policy.hpp"

#include <atomic>
#include <cstdlib>

#include "common/env.hpp"

namespace chase::ckpt {

namespace {

int env_interval() {
  static const int v = [] {
    if (auto parsed = env::positive_env("CHASE_CKPT_INTERVAL")) {
      return int(*parsed);
    }
    return 0;
  }();
  return v;
}

std::atomic<int>& override_interval() {
  static std::atomic<int> v{-1};
  return v;
}

}  // namespace

int checkpoint_interval() {
  const int o = override_interval().load(std::memory_order_relaxed);
  return o >= 0 ? o : env_interval();
}

void set_checkpoint_interval(int interval) {
  override_interval().store(interval < 0 ? -1 : interval,
                            std::memory_order_relaxed);
}

}  // namespace chase::ckpt
