#include "capi/chase_c.h"

#include <complex>
#include <cstring>
#include <memory>
#include <mutex>

#include "ckpt/restart.hpp"
#include "core/sequential.hpp"

namespace {

using namespace chase;

/* Process-global checkpoint policy for the C entry points: one shared
 * file-backed sink plus the capture cadence, guarded for concurrent
 * callers. */
struct CkptState {
  std::mutex mutex;
  std::unique_ptr<ckpt::FileSink> sink;
  int interval = 0;
};

CkptState& ckpt_state() {
  static CkptState state;
  return state;
}

template <typename T>
int solve_lowest(const T* h, long n, const chase_params* p,
                 RealType<T>* w, T* z) {
  if (h == nullptr || w == nullptr || p == nullptr || n <= 0 || p->nev <= 0 ||
      p->nev + p->nex > n) {
    return CHASE_INVALID_ARGUMENT;
  }
  core::ChaseConfig cfg;
  cfg.nev = p->nev;
  cfg.nex = p->nex > 0 ? p->nex : std::max<long>(p->nev / 4, 4);
  cfg.tol = p->tol > 0 ? p->tol : 1e-10;
  cfg.max_iterations = p->max_iterations > 0 ? p->max_iterations : 40;
  cfg.optimize_degree = p->optimize_degree != 0;
  cfg.initial_degree = p->initial_degree > 1 ? p->initial_degree : 20;
  cfg.max_degree = p->max_degree > 1 ? p->max_degree : 36;
  cfg.seed = p->seed != 0 ? p->seed : 2023;

  try {
    la::ConstMatrixView<T> hv(h, n, n, n);
    // Checkpoint plumbing: capture into the shared sink at the configured
    // cadence, and resume from the newest decodable snapshot whose shape and
    // scalar type match this problem (decode<T> rejects a tag mismatch).
    auto& cs = ckpt_state();
    std::lock_guard<std::mutex> ckpt_lock(cs.mutex);
    ckpt::SolveCkpt<T> ck;
    ckpt::Snapshot<T> snap;
    std::unique_ptr<ckpt::CheckpointEngine<T>> engine;
    if (cs.sink != nullptr) {
      engine = std::make_unique<ckpt::CheckpointEngine<T>>(cs.sink.get(),
                                                           cs.interval);
      ck.engine = engine.get();
      if (ckpt::load_last_good(*cs.sink, snap) && snap.n == n &&
          snap.ne == cfg.subspace()) {
        ck.resume = &snap;
      }
    }
    auto result = core::solve_sequential<T>(hv, cfg, nullptr, {}, ck);
    for (long j = 0; j < p->nev; ++j) {
      w[j] = result.eigenvalues[std::size_t(j)];
    }
    if (z != nullptr) {
      for (long j = 0; j < p->nev; ++j) {
        std::memcpy(z + std::size_t(j) * std::size_t(n),
                    result.eigenvectors.col(j), sizeof(T) * std::size_t(n));
      }
    }
    return result.converged ? CHASE_SUCCESS : CHASE_NOT_CONVERGED;
  } catch (const Error&) {
    return CHASE_INVALID_ARGUMENT;
  }
}

}  // namespace

extern "C" {

void chase_default_params(long nev, chase_params* p) {
  p->nev = nev;
  p->nex = nev / 4 > 4 ? nev / 4 : 4;
  p->tol = 1e-10;
  p->max_iterations = 40;
  p->optimize_degree = 1;
  p->initial_degree = 20;
  p->max_degree = 36;
  p->seed = 2023;
}

int chase_zheev_lowest(const double* h, long n, const chase_params* p,
                       double* w, double* z) {
  return solve_lowest(reinterpret_cast<const std::complex<double>*>(h), n, p,
                      w, reinterpret_cast<std::complex<double>*>(z));
}

int chase_dsyev_lowest(const double* h, long n, const chase_params* p,
                       double* w, double* z) {
  return solve_lowest(h, n, p, w, z);
}

int chase_checkpoint_enable(const char* dir, int interval) {
  if (dir == nullptr || dir[0] == '\0') return CHASE_INVALID_ARGUMENT;
  try {
    auto sink = std::make_unique<chase::ckpt::FileSink>(dir);
    auto& cs = ckpt_state();
    std::lock_guard<std::mutex> lock(cs.mutex);
    cs.sink = std::move(sink);
    cs.interval =
        interval > 0 ? interval : chase::ckpt::checkpoint_interval();
    return CHASE_SUCCESS;
  } catch (const chase::Error&) {
    return CHASE_INVALID_ARGUMENT;
  }
}

void chase_checkpoint_disable(void) {
  auto& cs = ckpt_state();
  std::lock_guard<std::mutex> lock(cs.mutex);
  cs.sink.reset();
  cs.interval = 0;
}

}  // extern "C"
