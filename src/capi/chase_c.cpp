#include "capi/chase_c.h"

#include <complex>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "ckpt/restart.hpp"
#include "core/precision.hpp"
#include "core/sequential.hpp"
#include "svc/service.hpp"
#include "tune/profile.hpp"

namespace {

using namespace chase;

/* Build the solver config from the C parameter block, applying the
 * documented defaults for unset (<= 0) fields. */
core::ChaseConfig config_from_params(const chase_params& p) {
  core::ChaseConfig cfg;
  cfg.nev = p.nev;
  cfg.nex = p.nex > 0 ? p.nex : std::max<long>(p.nev / 4, 4);
  cfg.tol = p.tol > 0 ? p.tol : 1e-10;
  cfg.max_iterations = p.max_iterations > 0 ? p.max_iterations : 40;
  cfg.optimize_degree = p.optimize_degree != 0;
  cfg.initial_degree = p.initial_degree > 1 ? p.initial_degree : 20;
  cfg.max_degree = p.max_degree > 1 ? p.max_degree : 36;
  cfg.seed = p.seed != 0 ? p.seed : 2023;
  return cfg;
}

/* Process-global checkpoint policy for the C entry points: one shared
 * file-backed sink plus the capture cadence, guarded for concurrent
 * callers. */
struct CkptState {
  std::mutex mutex;
  std::unique_ptr<ckpt::FileSink> sink;
  int interval = 0;
};

CkptState& ckpt_state() {
  static CkptState state;
  return state;
}

template <typename T>
int solve_lowest(const T* h, long n, const chase_params* p,
                 RealType<T>* w, T* z) {
  if (h == nullptr || w == nullptr || p == nullptr || n <= 0 || p->nev <= 0 ||
      p->nev + p->nex > n) {
    return CHASE_INVALID_ARGUMENT;
  }
  core::ChaseConfig cfg = config_from_params(*p);

  try {
    la::ConstMatrixView<T> hv(h, n, n, n);
    // Checkpoint plumbing: capture into the shared sink at the configured
    // cadence, and resume from the newest decodable snapshot whose shape and
    // scalar type match this problem (decode<T> rejects a tag mismatch).
    auto& cs = ckpt_state();
    std::lock_guard<std::mutex> ckpt_lock(cs.mutex);
    ckpt::SolveCkpt<T> ck;
    ckpt::Snapshot<T> snap;
    std::unique_ptr<ckpt::CheckpointEngine<T>> engine;
    if (cs.sink != nullptr) {
      engine = std::make_unique<ckpt::CheckpointEngine<T>>(cs.sink.get(),
                                                           cs.interval);
      ck.engine = engine.get();
      if (ckpt::load_last_good(*cs.sink, snap) && snap.n == n &&
          snap.ne == cfg.subspace()) {
        ck.resume = &snap;
      }
    }
    auto result = core::solve_sequential<T>(hv, cfg, nullptr, {}, ck);
    for (long j = 0; j < p->nev; ++j) {
      w[j] = result.eigenvalues[std::size_t(j)];
    }
    if (z != nullptr) {
      for (long j = 0; j < p->nev; ++j) {
        std::memcpy(z + std::size_t(j) * std::size_t(n),
                    result.eigenvectors.col(j), sizeof(T) * std::size_t(n));
      }
    }
    return result.converged ? CHASE_SUCCESS : CHASE_NOT_CONVERGED;
  } catch (const Error&) {
    return CHASE_INVALID_ARGUMENT;
  }
}

/* Caller output buffers of one service job, filled on the first observed
 * completion (poll/wait). */
struct JobOut {
  double* w = nullptr;
  double* z = nullptr;  // interleaved complex for _z jobs
  long n = 0;
  long nev = 0;
  bool copied = false;
};

/* Live-handle registry: every handle-taking entry point validates against
 * it, so NULL, double-destroyed, and never-created handles get
 * CHASE_INVALID_HANDLE instead of undefined behavior. */
struct HandleRegistry {
  std::mutex mutex;
  std::set<chase_service*> live;
};

HandleRegistry& handle_registry() {
  static HandleRegistry registry;
  return registry;
}

bool handle_live(chase_service* svc) {
  auto& registry = handle_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.live.count(svc) != 0;
}

int svc_error_code(svc::SvcError e) {
  switch (e) {
    case svc::SvcError::kNone:
      return CHASE_SUCCESS;
    case svc::SvcError::kQueueFull:
      return CHASE_QUEUE_FULL;
    case svc::SvcError::kInvalidJob:
      return CHASE_INVALID_ARGUMENT;
    case svc::SvcError::kShutdown:
      return CHASE_SHUTDOWN;
    case svc::SvcError::kUnknownJob:
      return CHASE_UNKNOWN_JOB;
    case svc::SvcError::kNotCancellable:
      return CHASE_NOT_CANCELLABLE;
    case svc::SvcError::kSolveFailed:
    default:
      return CHASE_SOLVE_FAILED;
  }
}

}  // namespace

/* The C handle: the service plus the registered output buffers. */
struct chase_service {
  explicit chase_service(const svc::ServiceConfig& cfg) : service(cfg) {}
  svc::SolverService service;
  std::mutex mutex;  // guards outs
  std::map<long, JobOut> outs;
};

namespace {

/* Copy a completed job's eigenpairs into the caller's buffers, once. */
template <typename T>
void copy_out_typed(chase_service* svc, long job, JobOut& out) {
  auto result = svc->service.result<T>(job);
  if (result == nullptr) return;
  for (long j = 0; j < out.nev; ++j) {
    out.w[j] = result->eigenvalues[std::size_t(j)];
  }
  if (out.z != nullptr) {
    std::memcpy(out.z, result->eigenvectors.data(),
                sizeof(T) * std::size_t(out.n) * std::size_t(out.nev));
  }
}

/* Map a terminal/live job state onto the C return code; fills the output
 * buffers on the first observed completion. */
int job_status_code(chase_service* svc, long job) {
  const svc::JobInfo info = svc->service.info(job);
  switch (info.state) {
    case svc::JobState::kUnknown:
      return CHASE_UNKNOWN_JOB;
    case svc::JobState::kQueued:
      return CHASE_JOB_QUEUED;
    case svc::JobState::kRunning:
      return CHASE_JOB_RUNNING;
    case svc::JobState::kCancelled:
      return CHASE_JOB_CANCELLED;
    case svc::JobState::kFailed:
      return CHASE_SOLVE_FAILED;
    case svc::JobState::kDone:
    default:
      break;
  }
  std::lock_guard<std::mutex> lock(svc->mutex);
  auto it = svc->outs.find(job);
  if (it != svc->outs.end() && !it->second.copied) {
    if (info.tag == svc::ScalarTag::kDouble) {
      copy_out_typed<double>(svc, job, it->second);
    } else {
      copy_out_typed<std::complex<double>>(svc, job, it->second);
    }
    it->second.copied = true;
  }
  return info.converged ? CHASE_SUCCESS : CHASE_NOT_CONVERGED;
}

template <typename T>
long service_submit(chase_service* svc, const double* h, long n,
                    const chase_params* p, const char* tenant, int priority,
                    double* w, double* z) {
  if (!handle_live(svc)) return CHASE_INVALID_HANDLE;
  if (h == nullptr || w == nullptr || p == nullptr || n <= 0 ||
      p->nev <= 0 || p->nev + p->nex > n) {
    return CHASE_INVALID_ARGUMENT;
  }
  svc::JobOptions opts;
  opts.tenant = tenant != nullptr && tenant[0] != '\0' ? tenant : "default";
  opts.priority = priority;
  la::ConstMatrixView<T> hv(reinterpret_cast<const T*>(h), n, n, n);
  const svc::Submission sub =
      svc->service.submit(hv, config_from_params(*p), std::move(opts));
  if (!sub.ok()) return svc_error_code(sub.error);
  std::lock_guard<std::mutex> lock(svc->mutex);
  svc->outs[sub.id] = JobOut{w, z, n, p->nev, false};
  return sub.id;
}

}  // namespace

extern "C" {

void chase_default_params(long nev, chase_params* p) {
  p->nev = nev;
  p->nex = nev / 4 > 4 ? nev / 4 : 4;
  p->tol = 1e-10;
  p->max_iterations = 40;
  p->optimize_degree = 1;
  p->initial_degree = 20;
  p->max_degree = 36;
  p->seed = 2023;
}

int chase_zheev_lowest(const double* h, long n, const chase_params* p,
                       double* w, double* z) {
  return solve_lowest(reinterpret_cast<const std::complex<double>*>(h), n, p,
                      w, reinterpret_cast<std::complex<double>*>(z));
}

int chase_dsyev_lowest(const double* h, long n, const chase_params* p,
                       double* w, double* z) {
  return solve_lowest(h, n, p, w, z);
}

int chase_checkpoint_enable(const char* dir, int interval) {
  if (dir == nullptr || dir[0] == '\0') return CHASE_INVALID_ARGUMENT;
  try {
    auto sink = std::make_unique<chase::ckpt::FileSink>(dir);
    auto& cs = ckpt_state();
    std::lock_guard<std::mutex> lock(cs.mutex);
    cs.sink = std::move(sink);
    cs.interval =
        interval > 0 ? interval : chase::ckpt::checkpoint_interval();
    return CHASE_SUCCESS;
  } catch (const chase::Error&) {
    return CHASE_INVALID_ARGUMENT;
  }
}

void chase_checkpoint_disable(void) {
  auto& cs = ckpt_state();
  std::lock_guard<std::mutex> lock(cs.mutex);
  cs.sink.reset();
  cs.interval = 0;
}

int chase_set_precision(const char* name) {
  if (name == nullptr) return CHASE_INVALID_ARGUMENT;
  auto parsed = chase::core::parse_precision(name);
  if (!parsed) return CHASE_INVALID_ARGUMENT;
  chase::core::set_precision(*parsed);
  return CHASE_SUCCESS;
}

const char* chase_get_precision(void) {
  return chase::core::precision_name(chase::core::precision()).data();
}

int chase_profile_load(const char* path) {
  if (path == nullptr || path[0] == '\0') return CHASE_INVALID_ARGUMENT;
  const auto profile = tune::load_profile(path);
  if (!profile || !tune::install_profile(*profile)) {
    return CHASE_PROFILE_REJECTED;
  }
  return CHASE_SUCCESS;
}

void chase_profile_unload(void) { tune::uninstall_profile(); }

void chase_service_default_params(chase_service_params* p) {
  p->workers = 2;
  p->max_batch = 8;
  p->max_queue_depth = 256;
}

chase_service* chase_service_create(const chase_service_params* p) {
  chase_service_params defaults;
  chase_service_default_params(&defaults);
  if (p == nullptr) p = &defaults;
  if (p->workers <= 0 || p->max_batch <= 0 || p->max_queue_depth <= 0) {
    return nullptr;
  }
  svc::ServiceConfig cfg;
  cfg.workers = p->workers;
  cfg.max_batch = p->max_batch;
  cfg.max_queue_depth = p->max_queue_depth;
  auto* svc = new chase_service(cfg);
  auto& registry = handle_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.live.insert(svc);
  return svc;
}

int chase_service_destroy(chase_service* svc) {
  {
    auto& registry = handle_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    if (registry.live.erase(svc) == 0) return CHASE_INVALID_HANDLE;
  }
  delete svc;
  return CHASE_SUCCESS;
}

long chase_service_submit_d(chase_service* svc, const double* h, long n,
                            const chase_params* p, const char* tenant,
                            int priority, double* w, double* z) {
  return service_submit<double>(svc, h, n, p, tenant, priority, w, z);
}

long chase_service_submit_z(chase_service* svc, const double* h, long n,
                            const chase_params* p, const char* tenant,
                            int priority, double* w, double* z) {
  return service_submit<std::complex<double>>(svc, h, n, p, tenant, priority,
                                              w, z);
}

int chase_service_poll(chase_service* svc, long job) {
  if (!handle_live(svc)) return CHASE_INVALID_HANDLE;
  return job_status_code(svc, job);
}

int chase_service_wait(chase_service* svc, long job) {
  if (!handle_live(svc)) return CHASE_INVALID_HANDLE;
  svc->service.wait(job);
  return job_status_code(svc, job);
}

int chase_service_cancel(chase_service* svc, long job) {
  if (!handle_live(svc)) return CHASE_INVALID_HANDLE;
  return svc_error_code(svc->service.cancel(job));
}

}  // extern "C"
