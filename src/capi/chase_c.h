/* C interface to the ChASE eigensolver.
 *
 * The real ChASE library ships C and Fortran bindings so electronic-
 * structure codes (FLEUR, the BSE drivers of Table 1) can call it without a
 * C++ toolchain; this header provides the same surface for this
 * reproduction. Matrices are dense column-major; complex scalars are
 * interleaved (re, im) doubles, binary-compatible with C99 `double complex`
 * and Fortran `complex*16`.
 */
#ifndef CHASE_REPRO_CAPI_CHASE_C_H_
#define CHASE_REPRO_CAPI_CHASE_C_H_

#ifdef __cplusplus
extern "C" {
#endif

typedef struct chase_params {
  long nev;             /* wanted lowest eigenpairs */
  long nex;             /* extra search directions (default: max(nev/4, 4)) */
  double tol;           /* relative residual threshold (default 1e-10) */
  int max_iterations;   /* outer iteration cap (default 40) */
  int optimize_degree;  /* per-vector filter degree optimization (default 1) */
  int initial_degree;   /* first-iteration Chebyshev degree (default 20) */
  int max_degree;       /* degree cap (default 36) */
  unsigned long seed;   /* random-subspace seed (default 2023) */
} chase_params;

/* Fill `p` with the library defaults for `nev` wanted pairs. */
void chase_default_params(long nev, chase_params* p);

/* Return codes. Non-negative codes are states, negative codes are errors.
 * Handle-taking entry points validate the handle against a live-handle
 * registry, so double-destroy and use-after-destroy report
 * CHASE_INVALID_HANDLE instead of undefined behavior. */
enum {
  CHASE_SUCCESS = 0,
  CHASE_NOT_CONVERGED = 1,
  CHASE_JOB_QUEUED = 2,       /* service job still waiting for dispatch */
  CHASE_JOB_RUNNING = 3,      /* service job currently solving */
  CHASE_JOB_CANCELLED = 4,    /* service job cancelled before dispatch */
  CHASE_INVALID_ARGUMENT = -1,
  CHASE_QUEUE_FULL = -2,      /* bounded service queue at capacity */
  CHASE_INVALID_HANDLE = -3,  /* NULL, destroyed, or foreign handle */
  CHASE_UNKNOWN_JOB = -4,     /* id was never issued by this service */
  CHASE_SHUTDOWN = -5,        /* service no longer accepting work */
  CHASE_NOT_CANCELLABLE = -6, /* job already dispatched or finished */
  CHASE_SOLVE_FAILED = -7,    /* solver raised an internal error */
  CHASE_PROFILE_REJECTED = -8, /* autotuner profile unreadable, corrupt,
                                  wrong version, or wrong machine */
};

/* Lowest eigenpairs of a complex Hermitian matrix.
 *   h: n x n column-major, interleaved complex double; only read.
 *   w: out, p->nev eigenvalues ascending.
 *   z: out, n x p->nev column-major complex eigenvectors; may be NULL.
 * Returns CHASE_SUCCESS, CHASE_NOT_CONVERGED (w/z hold the best available
 * approximations), or CHASE_INVALID_ARGUMENT.
 */
int chase_zheev_lowest(const double* h, long n, const chase_params* p,
                       double* w, double* z);

/* Lowest eigenpairs of a real symmetric matrix (column-major doubles). */
int chase_dsyev_lowest(const double* h, long n, const chase_params* p,
                       double* w, double* z);

/* Checkpoint/restart (src/ckpt) for the solves above.
 *
 * chase_checkpoint_enable arms file-backed checkpointing: every subsequent
 * solve writes a CRC-guarded snapshot of its full state into `dir` every
 * `interval` outer iterations (interval <= 0 defers to CHASE_CKPT_INTERVAL),
 * and — if `dir` already holds a snapshot matching the problem shape and
 * scalar type — resumes from it instead of starting over. A snapshot that
 * fails its CRC or does not match is skipped silently (the solve simply
 * starts fresh), so a stale directory is never fatal.
 * Returns CHASE_SUCCESS, or CHASE_INVALID_ARGUMENT if `dir` is NULL/empty
 * or cannot be created.
 */
int chase_checkpoint_enable(const char* dir, int interval);

/* Disarm checkpointing; solves neither write nor read snapshots. */
void chase_checkpoint_disable(void);

/* Select the solve precision policy for subsequent solves (process-global,
 * same slot the CHASE_PRECISION environment variable initializes):
 *   "double" — every kernel in working precision (the default);
 *   "mixed"  — the Chebyshev filter runs in fp32 on a low-precision shadow
 *              of H with residual-driven per-column fallback to fp64;
 *              QR, Rayleigh-Ritz, residuals and locking stay fp64, and
 *              locked pairs get one step of fp64 iterative refinement.
 * Returns CHASE_SUCCESS, or CHASE_INVALID_ARGUMENT for any other name. */
int chase_set_precision(const char* name);

/* Name of the currently active precision policy ("double" or "mixed");
 * static storage, do not free. */
const char* chase_get_precision(void);

/* ---- Runtime autotuner profiles (src/tune) ----
 *
 * chase_profile_load reads a `chase_tune` machine profile (versioned JSON)
 * from `path`, schema- and fingerprint-checks it, and installs its dispatch
 * tables process-wide: subsequent solves draw GEMM/factorization kernels,
 * collective algorithms and the pipelining chunk size from the tuned
 * per-class tables. Explicit CHASE_* env overrides still beat the profile
 * (env > profile > built-in default). Equivalent to exporting
 * CHASE_PROFILE=path before the first solve.
 * Returns CHASE_SUCCESS, CHASE_INVALID_ARGUMENT for a NULL/empty path, or
 * CHASE_PROFILE_REJECTED when the file is unreadable, fails schema/version
 * validation, or was measured on a different machine. */
int chase_profile_load(const char* path);

/* Remove any installed profile; subsequent solves fall back to the
 * built-in default policies. */
void chase_profile_unload(void);

/* ---- Batched multi-tenant solver service (src/svc) ----
 *
 * A service owns a worker pool, a bounded job queue with weighted-fair
 * tenant scheduling, and a size-bucketed arena pool; same-size jobs are
 * coalesced into one batched dispatch (each job's result stays bitwise
 * identical to its standalone chase_*_lowest solve). Typical use:
 *
 *   chase_service* s = chase_service_create(NULL);
 *   long job = chase_service_submit_d(s, h, n, &p, "tenant-a", 0, w, z);
 *   int rc = chase_service_wait(s, job);      // CHASE_SUCCESS: w/z filled
 *   chase_service_destroy(s);
 */

typedef struct chase_service chase_service;

typedef struct chase_service_params {
  int workers;          /* solver threads (default 2) */
  int max_batch;        /* same-size batching cap (default 8, 1 = off) */
  long max_queue_depth; /* queued-job cap before CHASE_QUEUE_FULL
                         * (default 256) */
} chase_service_params;

/* Fill `p` with the service defaults. */
void chase_service_default_params(chase_service_params* p);

/* Start a service (NULL `p` = defaults). Returns NULL on invalid params. */
chase_service* chase_service_create(const chase_service_params* p);

/* Stop the service: queued jobs are cancelled, running jobs finish, workers
 * join, the handle is invalidated. Returns CHASE_SUCCESS, or
 * CHASE_INVALID_HANDLE on NULL / double destroy. */
int chase_service_destroy(chase_service* svc);

/* Submit one eigenproblem; returns a non-negative job id, or a negative
 * return code (CHASE_QUEUE_FULL, CHASE_INVALID_ARGUMENT, CHASE_SHUTDOWN,
 * CHASE_INVALID_HANDLE). `h` is borrowed and must stay valid until the job
 * finishes. `w` (nev doubles) is required; `z` (n x nev column-major, NULL
 * to skip eigenvectors) is complex-interleaved for _z. Both are written when
 * the job completes and the caller observes it via poll/wait. `tenant`
 * (NULL = "default") and `priority` feed the weighted-fair scheduler. */
long chase_service_submit_d(chase_service* svc, const double* h, long n,
                            const chase_params* p, const char* tenant,
                            int priority, double* w, double* z);
long chase_service_submit_z(chase_service* svc, const double* h, long n,
                            const chase_params* p, const char* tenant,
                            int priority, double* w, double* z);

/* Nonblocking job status: CHASE_JOB_QUEUED / CHASE_JOB_RUNNING /
 * CHASE_JOB_CANCELLED / CHASE_SUCCESS / CHASE_NOT_CONVERGED /
 * CHASE_SOLVE_FAILED / CHASE_UNKNOWN_JOB / CHASE_INVALID_HANDLE. On the
 * first observed completion the job's w/z output buffers are filled. */
int chase_service_poll(chase_service* svc, long job);

/* Block until the job reaches a terminal state; same codes as poll. */
int chase_service_wait(chase_service* svc, long job);

/* Cancel a still-queued job: CHASE_SUCCESS, CHASE_NOT_CANCELLABLE,
 * CHASE_UNKNOWN_JOB, or CHASE_INVALID_HANDLE. */
int chase_service_cancel(chase_service* svc, long job);

#ifdef __cplusplus
}
#endif

#endif /* CHASE_REPRO_CAPI_CHASE_C_H_ */
