/* C interface to the ChASE eigensolver.
 *
 * The real ChASE library ships C and Fortran bindings so electronic-
 * structure codes (FLEUR, the BSE drivers of Table 1) can call it without a
 * C++ toolchain; this header provides the same surface for this
 * reproduction. Matrices are dense column-major; complex scalars are
 * interleaved (re, im) doubles, binary-compatible with C99 `double complex`
 * and Fortran `complex*16`.
 */
#ifndef CHASE_REPRO_CAPI_CHASE_C_H_
#define CHASE_REPRO_CAPI_CHASE_C_H_

#ifdef __cplusplus
extern "C" {
#endif

typedef struct chase_params {
  long nev;             /* wanted lowest eigenpairs */
  long nex;             /* extra search directions (default: max(nev/4, 4)) */
  double tol;           /* relative residual threshold (default 1e-10) */
  int max_iterations;   /* outer iteration cap (default 40) */
  int optimize_degree;  /* per-vector filter degree optimization (default 1) */
  int initial_degree;   /* first-iteration Chebyshev degree (default 20) */
  int max_degree;       /* degree cap (default 36) */
  unsigned long seed;   /* random-subspace seed (default 2023) */
} chase_params;

/* Fill `p` with the library defaults for `nev` wanted pairs. */
void chase_default_params(long nev, chase_params* p);

/* Return codes. */
enum {
  CHASE_SUCCESS = 0,
  CHASE_NOT_CONVERGED = 1,
  CHASE_INVALID_ARGUMENT = -1,
};

/* Lowest eigenpairs of a complex Hermitian matrix.
 *   h: n x n column-major, interleaved complex double; only read.
 *   w: out, p->nev eigenvalues ascending.
 *   z: out, n x p->nev column-major complex eigenvectors; may be NULL.
 * Returns CHASE_SUCCESS, CHASE_NOT_CONVERGED (w/z hold the best available
 * approximations), or CHASE_INVALID_ARGUMENT.
 */
int chase_zheev_lowest(const double* h, long n, const chase_params* p,
                       double* w, double* z);

/* Lowest eigenpairs of a real symmetric matrix (column-major doubles). */
int chase_dsyev_lowest(const double* h, long n, const chase_params* p,
                       double* w, double* z);

/* Checkpoint/restart (src/ckpt) for the solves above.
 *
 * chase_checkpoint_enable arms file-backed checkpointing: every subsequent
 * solve writes a CRC-guarded snapshot of its full state into `dir` every
 * `interval` outer iterations (interval <= 0 defers to CHASE_CKPT_INTERVAL),
 * and — if `dir` already holds a snapshot matching the problem shape and
 * scalar type — resumes from it instead of starting over. A snapshot that
 * fails its CRC or does not match is skipped silently (the solve simply
 * starts fresh), so a stale directory is never fatal.
 * Returns CHASE_SUCCESS, or CHASE_INVALID_ARGUMENT if `dir` is NULL/empty
 * or cannot be created.
 */
int chase_checkpoint_enable(const char* dir, int interval);

/* Disarm checkpointing; solves neither write nor read snapshots. */
void chase_checkpoint_disable(void);

#ifdef __cplusplus
}
#endif

#endif /* CHASE_REPRO_CAPI_CHASE_C_H_ */
