// Band -> tridiagonal reduction by Givens bulge chasing (the Schwarz /
// Kaufman scheme behind LAPACK zhbtrd and ELPA2's second stage).
//
// For each column k the band entries below the first subdiagonal are
// annihilated outermost-first with complex Givens rotations; every
// annihilation spawns a bulge one band-width further down, which is chased
// off the matrix with follow-up rotations. The rotation count is O(n^2)
// (times O(b) chase steps each), and — unlike a Householder reduction of the
// banded matrix — no dense fill is ever created, which is the property that
// makes the two-stage ELPA2 pipeline worthwhile.
//
// This reference implementation stores the matrix fully (rotations are
// applied to complete rows/columns); the banded-storage optimization does
// not change the arithmetic.
#pragma once

#include <cmath>

#include "la/matrix.hpp"

namespace chase::baseline {

namespace detail {

/// Complex Givens pair (c real, s complex) zeroing `bval` into `aval`:
/// [c, s; -conj(s), c] * [a; b] = [r; 0] with |r| = hypot(|a|, |b|).
template <typename T>
void givens(T aval, T bval, RealType<T>& c, T& s) {
  using R = RealType<T>;
  const R an = abs_value(aval);
  const R bn = abs_value(bval);
  if (bn == R(0)) {
    c = R(1);
    s = T(0);
    return;
  }
  if (an == R(0)) {
    c = R(0);
    s = conjugate(bval) / T(bn);
    return;
  }
  const R r = std::hypot(an, bn);
  c = an / r;
  s = (aval / T(an)) * conjugate(bval) / T(r);
}

/// Hermitian congruence A <- G A G^H with G = [c, s; -conj(s), c] acting on
/// rows/columns (i, j), plus Q <- Q G^H accumulation.
template <typename T>
void apply_rotation(la::MatrixView<T> a, la::MatrixView<T> q, la::Index i,
                    la::Index j, RealType<T> c, T s) {
  const la::Index n = a.rows();
  // Left: rows i, j of A.
  for (la::Index col = 0; col < n; ++col) {
    const T x = a(i, col);
    const T y = a(j, col);
    a(i, col) = T(c) * x + s * y;
    a(j, col) = -conjugate(s) * x + T(c) * y;
  }
  // Right: columns i, j of A (with G^H).
  for (la::Index row = 0; row < n; ++row) {
    const T x = a(row, i);
    const T y = a(row, j);
    a(row, i) = T(c) * x + conjugate(s) * y;
    a(row, j) = -s * x + T(c) * y;
  }
  // Q <- Q G^H (columns i, j).
  for (la::Index row = 0; row < q.rows(); ++row) {
    const T x = q(row, i);
    const T y = q(row, j);
    q(row, i) = T(c) * x + conjugate(s) * y;
    q(row, j) = -s * x + T(c) * y;
  }
}

}  // namespace detail

/// Reduce a Hermitian matrix of semibandwidth <= `band` to (complex-
/// subdiagonal) tridiagonal form in place, accumulating the unitary
/// transform into q (right-multiplied: pass identity to obtain Q with
/// A_in = Q T Q^H).
template <typename T>
void band_to_tridiag(la::MatrixView<T> a, la::Index band,
                     la::MatrixView<T> q) {
  using R = RealType<T>;
  const la::Index n = a.rows();
  CHASE_CHECK(a.cols() == n && band >= 1);
  CHASE_CHECK(q.rows() == n && q.cols() == n);
  if (band == 1 || n <= 2) return;

  for (la::Index k = 0; k + 2 < n; ++k) {
    const la::Index dmax = std::min<la::Index>(band, n - 1 - k);
    for (la::Index d = dmax; d >= 2; --d) {
      if (abs_value(a(k + d, k)) == R(0)) continue;
      // Annihilate A(k+d, k) against A(k+d-1, k), then chase the bulge.
      la::Index i = k + d - 1;  // upper row of the rotation pair
      la::Index bulge_col = k;
      while (true) {
        R c;
        T s;
        detail::givens(a(i, bulge_col), a(i + 1, bulge_col), c, s);
        detail::apply_rotation(a, q, i, i + 1, c, s);
        a(i + 1, bulge_col) = T(0);           // exact zero by construction
        a(bulge_col, i + 1) = T(0);
        // The rotation on (i, i+1) spills A(i+1+band, i) outside the band.
        const la::Index bulge_row = i + 1 + band;
        if (bulge_row >= n) break;
        bulge_col = i;
        i = bulge_row - 1;
      }
    }
  }
}

/// Extract the real tridiagonal (d, e) from a complex-subdiagonal
/// tridiagonal matrix by a diagonal phase similarity; the phases are folded
/// into q's columns so that A_in = Q T_real Q^H still holds.
template <typename T>
void tridiag_make_real(la::ConstMatrixView<T> a, la::MatrixView<T> q,
                       std::vector<RealType<T>>& d,
                       std::vector<RealType<T>>& e) {
  using R = RealType<T>;
  const la::Index n = a.rows();
  d.assign(static_cast<std::size_t>(n), R(0));
  e.assign(static_cast<std::size_t>(std::max<la::Index>(n - 1, 0)), R(0));
  T phase(1);
  for (la::Index i = 0; i < n; ++i) {
    d[std::size_t(i)] = real_part(a(i, i));
    if (i > 0) {
      // Scale column i of Q by the accumulated phase.
      for (la::Index r = 0; r < q.rows(); ++r) q(r, i) *= phase;
    }
    if (i + 1 < n) {
      const T sub = a(i + 1, i);
      const R mag = abs_value(sub);
      e[std::size_t(i)] = mag;
      // phi_{i+1} = phi_i * sgn(sub): T' = Phi^H T Phi has |sub| offdiag.
      phase = mag == R(0) ? phase : phase * (sub / T(mag));
    }
  }
}

}  // namespace chase::baseline
