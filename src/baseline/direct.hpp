// Direct dense Hermitian eigensolvers — the ELPA-style baselines.
//
// heev_one_stage is the classic path (full tridiagonalization + implicit QL
// + back-transform), the algorithm behind ELPA1. heev_two_stage goes through
// a banded intermediate first (ELPA2's structure): full -> band -> tridiag,
// with both unitary factors folded into the eigenvector back-transform.
// Both compute the complete spectrum; `nev`-truncated convenience wrappers
// mirror how the Figure 3b comparison only requests 1200 vectors.
#pragma once

#include "baseline/band_reduction.hpp"
#include "baseline/bulge_chasing.hpp"
#include "la/gemm.hpp"
#include "la/heevd.hpp"
#include "la/stebz.hpp"

namespace chase::baseline {

/// One-stage direct solve (destroys `a`): eigenvalues ascending in w,
/// eigenvectors in z.
template <typename T>
void heev_one_stage(la::MatrixView<T> a, std::vector<RealType<T>>& w,
                    la::MatrixView<T> z) {
  la::heevd(a, w, z);
}

/// Two-stage direct solve (destroys `a`): reduce to semibandwidth `band`
/// (GEMM-rich Householder stage), bulge-chase the band down to tridiagonal
/// (Givens stage, the ELPA2 structure), solve, and back-transform through
/// both stages.
template <typename T>
void heev_two_stage(la::MatrixView<T> a, Index band,
                    std::vector<RealType<T>>& w, la::MatrixView<T> z) {
  using R = RealType<T>;
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n && z.rows() == n && z.cols() == n && band >= 1);

  // Stage 1: full -> band, Q1 accumulated.
  la::Matrix<T> q1(n, n);
  la::set_identity(q1.view());
  reduce_to_band(a, band, q1.view());

  // Stage 2: band -> tridiagonal via bulge chasing; the Givens rotations
  // accumulate directly into Q1 (Q <- Q G^H), then a diagonal phase
  // similarity makes the subdiagonal real.
  band_to_tridiag(a, band, q1.view());
  std::vector<R> d, e;
  tridiag_make_real(a.as_const(), q1.view(), d, e);

  // Tridiagonal solve with the combined back-transform accumulated in place.
  la::copy(q1.view().as_const(), z);
  e.push_back(R(0));
  CHASE_CHECK_MSG(la::steql(d, e, z),
                  "two-stage: QL iteration failed to converge");
  w.assign(d.begin(), d.end());
  la::sort_eigenpairs(w, z);
}

/// Result of a truncated direct solve (what the ELPA runs of Figure 3b
/// return: the nev lowest pairs).
template <typename T>
struct DirectResult {
  std::vector<RealType<T>> eigenvalues;
  la::Matrix<T> eigenvectors;
};

/// Partial direct solve: only the nev lowest pairs are extracted from the
/// tridiagonal (bisection + inverse iteration) and only nev columns are
/// back-transformed — O(n^2 nev) instead of O(n^3) after the reduction,
/// the way production direct solvers serve partial-spectrum requests.
template <typename T>
DirectResult<T> solve_lowest(la::ConstMatrixView<T> a, Index nev,
                             int stages = 1, Index band = 16) {
  using R = RealType<T>;
  const Index n = a.rows();
  CHASE_CHECK(nev >= 1 && nev <= n);
  auto work = la::clone(a);

  // Reduce to a real tridiagonal with accumulated back-transform Q.
  std::vector<R> d, e;
  la::Matrix<T> q(n, n);
  if (stages == 2) {
    la::set_identity(q.view());
    reduce_to_band(work.view(), band, q.view());
    band_to_tridiag(work.view(), band, q.view());
    tridiag_make_real(work.view().as_const(), q.view(), d, e);
  } else {
    la::hetrd_lower(work.view(), d, e, q.view());
  }

  // Partial tridiagonal solve + truncated back-transform.
  std::vector<R> w;
  la::Matrix<R> zt(n, nev);
  la::tridiag_lowest_eigenpairs(d, e, nev, w, zt.view());
  la::Matrix<T> zt_promoted(n, nev);
  for (Index j = 0; j < nev; ++j) {
    for (Index i = 0; i < n; ++i) zt_promoted(i, j) = T(zt(i, j));
  }

  DirectResult<T> out;
  out.eigenvalues = std::move(w);
  out.eigenvectors.resize(n, nev);
  la::gemm(T(1), q.view().as_const(), zt_promoted.cview(), T(0),
           out.eigenvectors.view());
  return out;
}

}  // namespace chase::baseline
