// Householder reduction of a dense Hermitian matrix to banded form — the
// first stage of the ELPA2-style two-stage direct eigensolver the paper
// benchmarks ChASE against (Section 4.5.2).
//
// For each column k, a reflector acting on rows [k+band, n) annihilates the
// entries below the band; the similarity transform A <- H^H A H preserves
// the spectrum and previously created zeros (any earlier column c < k is
// already zero on all rows >= c + band >= the reflector's range). band == 1
// reproduces the classic full tridiagonalization.
//
// This is a correctness-first reference implementation on full storage; the
// two-GEMM-rich-stages efficiency argument of ELPA2 on clusters is captured
// by the analytic cost model in src/perf/elpa_model.hpp, not by this code.
#pragma once

#include <vector>

#include "la/householder.hpp"
#include "la/matrix.hpp"

namespace chase::baseline {

using la::Index;

/// Reduce the Hermitian matrix `a` in place to semibandwidth `band`,
/// accumulating the unitary transform into `q` (which must be initialized,
/// typically to the identity): A_in = Q A_band Q^H with Q = q_out * q_in^{-1}
/// ... i.e. q is right-multiplied by every reflector.
template <typename T>
void reduce_to_band(la::MatrixView<T> a, Index band, la::MatrixView<T> q) {
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n && band >= 1);
  CHASE_CHECK(q.rows() == n && q.cols() == n);

  std::vector<T> v(static_cast<std::size_t>(n));
  std::vector<T> work(static_cast<std::size_t>(n));

  for (Index k = 0; k + band + 1 < n; ++k) {
    const Index s = k + band;  // first row kept inside the band
    const Index m = n - s;     // reflector length
    T alpha = a(s, k);
    auto refl = la::larfg(alpha, m - 1, a.col(k) + s + 1);
    if (refl.tau == T(0)) {
      a(s, k) = alpha;
      continue;
    }
    // v = [1; tail] (copied out before the column is overwritten).
    v[0] = T(1);
    for (Index i = 1; i < m; ++i) v[std::size_t(i)] = a(s + i, k);

    // A <- H^H A H, exploiting that columns < k are zero on rows >= s:
    //   left-apply H^H to A(s:n, k+1:n),
    //   right-apply H to A(k:n, s:n).
    la::larf_left(conjugate(refl.tau), v.data() + 1, m,
                  a.block(s, k + 1, m, n - k - 1), work.data());
    la::larf_right(refl.tau, v.data() + 1, m, a.block(k, s, n - k, m),
                   work.data());

    // Column k and (by Hermitian symmetry) row k take their closed form.
    a(s, k) = T(refl.beta);
    for (Index i = s + 1; i < n; ++i) a(i, k) = T(0);
    a(k, s) = T(refl.beta);
    for (Index j = s + 1; j < n; ++j) a(k, j) = T(0);

    // Accumulate Q <- Q H.
    la::larf_right(refl.tau, v.data() + 1, m, q.block(0, s, n, m),
                   work.data());
  }
}

/// Semibandwidth of a Hermitian matrix (largest |i - j| with a_ij != 0,
/// up to `tol` in absolute value) — used by the tests.
template <typename T>
Index semibandwidth(la::ConstMatrixView<T> a, RealType<T> tol) {
  Index bw = 0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      if (abs_value(a(i, j)) > tol) {
        bw = std::max(bw, std::abs(i - j));
      }
    }
  }
  return bw;
}

}  // namespace chase::baseline
