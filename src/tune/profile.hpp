// Versioned, per-machine autotuning profile (DESIGN.md §15).
//
// A MachineProfile is what `chase_tune` persists and what CHASE_PROFILE
// loads at solve start: the machine fingerprint the measurements were taken
// on, the raw measurement log (every kernel/algorithm probed, so selections
// can be re-derived deterministically without re-benchmarking —
// CHASE_TUNE_REPLAY), and the derived dispatch tables in the low-level
// perf::TunedTables form the policy layers consume.
//
// The JSON wire format is schema- and version-checked:
//
//   {"schema": "chase.machine_profile", "version": 1,
//    "fingerprint": {"host": "...", "cpu": "...", "threads": N},
//    "measurements": [{"name": "gemm.d.n384.micro",
//                      "value": 1.23e9, "unit": "flop/s"}, ...],
//    "tables": {"gemm_kernel":   [{"type": "d", "nclass": "small",
//                                  "kernel": "micro"}, ...],
//               "factor_kernel": [{"nclass": "small",
//                                  "kernel": "blocked"}, ...],
//               "coll_algo":     [{"kind": "allreduce", "msgclass": "small",
//                                  "algo": "ring"}, ...],
//               "chunk_bytes": 65536,
//               "rates": {"gemm_flops": ..., "factor_flops": ...,
//                         "single_speedup": ...}}}
//
// decode_profile rejects unknown schemas, future versions, and malformed
// documents outright (the caller falls back to built-in defaults and bumps
// "tune.profile.rejected"); unknown *enum names* inside the tables merely
// leave that entry untuned, so a profile written by a newer build with more
// kernels still loads on an older one.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "perf/tuned.hpp"

namespace chase::tune {

inline constexpr const char* kProfileSchema = "chase.machine_profile";
inline constexpr int kProfileVersion = 1;

/// Identity of the machine a profile was measured on. Tuned tables are
/// meaningless on different hardware, so install is gated on a match.
struct Fingerprint {
  std::string host;
  std::string cpu;
  int threads = 0;

  bool matches(const Fingerprint& other) const {
    return host == other.host && cpu == other.cpu &&
           threads == other.threads;
  }
};

/// Fingerprint of the machine this process runs on (hostname, the
/// /proc/cpuinfo model name when readable, hardware_concurrency).
Fingerprint local_fingerprint();

/// One raw tuner measurement, e.g. {"gemm.d.n384.micro", 1.2e9, "flop/s"}.
struct RawMeasurement {
  std::string name;
  double value = 0;
  std::string unit;
};

struct MachineProfile {
  Fingerprint fingerprint;
  std::vector<RawMeasurement> measurements;
  perf::TunedTables tables;

  /// Lookup in the raw measurement log; 0 when absent.
  double measurement(std::string_view name) const;
};

/// Serialize to the versioned JSON document above.
std::string encode_profile(const MachineProfile& p);

/// Parse and schema-check one JSON document. On failure returns nullopt and
/// (when `error` is non-null) a one-line reason.
std::optional<MachineProfile> decode_profile(std::string_view text,
                                             std::string* error = nullptr);

/// File round-trip of encode/decode.
bool save_profile(const MachineProfile& p, const std::string& path,
                  std::string* error = nullptr);
std::optional<MachineProfile> load_profile(const std::string& path,
                                           std::string* error = nullptr);

/// Install `p` process-wide: publish the dispatch tables
/// (perf::set_tuned_tables) and recalibrate the selection MachineModel from
/// the measured rates. Skips (returns false, bumps "tune.profile.rejected")
/// when `check_fingerprint` and the profile was measured elsewhere.
bool install_profile(const MachineProfile& p, bool check_fingerprint = true);

/// Remove any installed profile: consumers fall back to built-in defaults.
void uninstall_profile();

}  // namespace chase::tune
