// Minimal JSON reader/writer for machine profiles.
//
// The repo writes its bench artifacts with fprintf and reads them from
// Python (scripts/compare_bench.py); the machine profile is the first JSON
// the C++ side must read back, so this header carries a small
// recursive-descent parser — objects, arrays, strings (with the standard
// escapes), doubles, bools, null — and an escaping string writer. It is not
// a general-purpose JSON library: numbers parse through strtod, duplicate
// object keys keep the last value, and depth is bounded to keep corrupt
// inputs from recursing the stack away.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace chase::tune::json {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

struct Value {
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::shared_ptr<Array> array;    // shared_ptr keeps Value copyable while
  std::shared_ptr<Object> object;  // the element types are still incomplete

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; null for non-objects and missing keys.
  const Value* get(const std::string& key) const {
    if (kind != Kind::kObject || !object) return nullptr;
    auto it = object->find(key);
    return it == object->end() ? nullptr : &it->second;
  }
  /// get() restricted to strings / numbers, as optionals.
  std::optional<std::string> get_string(const std::string& key) const {
    const Value* v = get(key);
    if (v == nullptr || v->kind != Kind::kString) return std::nullopt;
    return v->text;
  }
  std::optional<double> get_number(const std::string& key) const {
    const Value* v = get(key);
    if (v == nullptr || v->kind != Kind::kNumber) return std::nullopt;
    return v->number;
  }
};

namespace detail {

inline constexpr int kMaxDepth = 32;

struct Parser {
  std::string_view in;
  std::size_t pos = 0;
  bool ok = true;

  void skip_ws() {
    while (pos < in.size()) {
      const char c = in[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos < in.size() && in[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (in.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  Value parse_value(int depth) {
    Value v;
    if (!ok || depth > kMaxDepth) {
      ok = false;
      return v;
    }
    skip_ws();
    if (pos >= in.size()) {
      ok = false;
      return v;
    }
    const char c = in[pos];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return parse_string();
    if (c == 't') {
      ok = literal("true");
      v.kind = Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      ok = literal("false");
      v.kind = Kind::kBool;
      return v;
    }
    if (c == 'n') {
      ok = literal("null");
      return v;
    }
    return parse_number();
  }

  Value parse_object(int depth) {
    Value v;
    v.kind = Kind::kObject;
    v.object = std::make_shared<Object>();
    ++pos;  // '{'
    if (consume('}')) return v;
    while (ok) {
      skip_ws();
      if (pos >= in.size() || in[pos] != '"') {
        ok = false;
        break;
      }
      Value key = parse_string();
      if (!ok || !consume(':')) {
        ok = false;
        break;
      }
      (*v.object)[key.text] = parse_value(depth + 1);
      if (consume(',')) continue;
      ok = ok && consume('}');
      break;
    }
    return v;
  }

  Value parse_array(int depth) {
    Value v;
    v.kind = Kind::kArray;
    v.array = std::make_shared<Array>();
    ++pos;  // '['
    if (consume(']')) return v;
    while (ok) {
      v.array->push_back(parse_value(depth + 1));
      if (consume(',')) continue;
      ok = ok && consume(']');
      break;
    }
    return v;
  }

  Value parse_string() {
    Value v;
    v.kind = Kind::kString;
    ++pos;  // '"'
    while (pos < in.size()) {
      const char c = in[pos++];
      if (c == '"') return v;
      if (c != '\\') {
        v.text.push_back(c);
        continue;
      }
      if (pos >= in.size()) break;
      const char e = in[pos++];
      switch (e) {
        case '"': v.text.push_back('"'); break;
        case '\\': v.text.push_back('\\'); break;
        case '/': v.text.push_back('/'); break;
        case 'b': v.text.push_back('\b'); break;
        case 'f': v.text.push_back('\f'); break;
        case 'n': v.text.push_back('\n'); break;
        case 'r': v.text.push_back('\r'); break;
        case 't': v.text.push_back('\t'); break;
        case 'u': {
          // Profiles are ASCII; decode the BMP escape to one byte when it
          // fits and reject anything wider.
          if (pos + 4 > in.size()) {
            ok = false;
            return v;
          }
          char buf[5] = {in[pos], in[pos + 1], in[pos + 2], in[pos + 3], 0};
          char* end = nullptr;
          const long code = std::strtol(buf, &end, 16);
          if (end != buf + 4 || code > 0x7f) {
            ok = false;
            return v;
          }
          v.text.push_back(char(code));
          pos += 4;
          break;
        }
        default:
          ok = false;
          return v;
      }
    }
    ok = false;  // unterminated string
    return v;
  }

  Value parse_number() {
    Value v;
    const std::size_t start = pos;
    if (pos < in.size() && (in[pos] == '-' || in[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < in.size()) {
      const char c = in[pos];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        digits = digits || (c >= '0' && c <= '9');
        ++pos;
      } else {
        break;
      }
    }
    if (!digits) {
      ok = false;
      return v;
    }
    const std::string tok(in.substr(start, pos - start));
    char* end = nullptr;
    v.number = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      ok = false;
      return v;
    }
    v.kind = Kind::kNumber;
    return v;
  }
};

}  // namespace detail

/// Parse one JSON document; nullopt on any syntax error or trailing junk.
inline std::optional<Value> parse(std::string_view text) {
  detail::Parser p{text};
  Value v = p.parse_value(0);
  p.skip_ws();
  if (!p.ok || p.pos != text.size()) return std::nullopt;
  return v;
}

/// Escape `s` as a JSON string literal (quotes included).
inline std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace chase::tune::json
