// Solve-start profile resolution and provenance (DESIGN.md §15).
//
// core::solve / core::solve_lms call resolve_at_solve_start() on entry:
//
//   1. Once per process, the CHASE_PROFILE / CHASE_TUNE_REPLAY env knobs are
//      resolved: the named profile is loaded, schema/fingerprint-checked and
//      installed (tune::install_profile). A rejected profile — unreadable,
//      corrupt, wrong version, wrong machine — bumps "tune.profile.rejected"
//      and the process falls back to built-in defaults; it never aborts a
//      solve. CHASE_TUNE_REPLAY additionally re-derives the dispatch tables
//      from the profile's recorded measurement log (tune::derive_selections)
//      instead of trusting the stored tables — the deterministic-replay
//      contract.
//   2. Per solve, per policy domain (gemm / factor / coll / chunk), one
//      provenance counter is bumped on the calling thread's tracker:
//      "tune.source.env" when an explicit override is pinned,
//      "tune.source.profile" when a loaded profile supplies the entry,
//      "tune.source.default" otherwise — so a perf report always says where
//      the policies that shaped it came from.
#pragma once

namespace chase::tune {

/// Process-once env resolution (step 1 above). Idempotent and thread-safe;
/// exposed separately so the C API and tests can force it.
void ensure_profile_from_env();

/// Bump the per-domain provenance counters on the calling thread's tracker
/// (no-op without a tracker).
void record_provenance();

/// Both steps; called by the solver drivers at solve start.
void resolve_at_solve_start();

/// Test hook: forget that env resolution ran (so the next
/// ensure_profile_from_env() re-reads CHASE_PROFILE / CHASE_TUNE_REPLAY)
/// and uninstall any loaded profile.
void reset_runtime_for_testing();

}  // namespace chase::tune
