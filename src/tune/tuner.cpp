#include "tune/tuner.hpp"

#include <algorithm>
#include <complex>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "coll/engine.hpp"
#include "comm/communicator.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "la/gemm.hpp"
#include "la/gemm_policy.hpp"
#include "la/potrf.hpp"
#include "la/trsm.hpp"
#include "tune/measure.hpp"

namespace chase::tune {

namespace {

using la::Index;

// A kernel whose small-size rate trails the small-size winner by more than
// this factor is not re-measured at the larger classes (the seed naive GEMM
// runs minutes-per-call at n ~ 1000; the pruning keeps full tuning runs in
// seconds while the measurement log stays honest about what was probed).
constexpr double kPruneFactor = 4.0;

template <typename T>
la::Matrix<T> random_mat(Index m, Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix<T> a(m, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) a(i, j) = rng.gaussian<T>();
  }
  return a;
}

std::string size_token(const char* prefix, long long v) {
  return std::string(prefix) + std::to_string(v);
}

// --- GEMM probes: gemm.<tag>.n<size>.<kernel> = flop/s -------------------

template <typename T>
void probe_gemm(const TuneOptions& opts, const char* tag,
                std::vector<RawMeasurement>& out) {
  constexpr la::GemmKernel kKernels[] = {la::GemmKernel::kNaive,
                                         la::GemmKernel::kBlocked,
                                         la::GemmKernel::kMicro};
  const double z = kIsComplex<T> ? 8.0 : 2.0;
  double small_best = 0;
  double small_rate[3] = {0, 0, 0};
  for (std::size_t si = 0; si < opts.gemm_sizes.size(); ++si) {
    const Index n = Index(opts.gemm_sizes[si]);
    auto a = random_mat<T>(n, n, 1);
    auto b = random_mat<T>(n, n, 2);
    la::Matrix<T> c(n, n);
    const double flops = z * double(n) * double(n) * double(n);
    for (const la::GemmKernel kern : kKernels) {
      if (si > 0 && small_rate[int(kern)] * kPruneFactor < small_best) {
        continue;  // pruned: decisively lost at the small size already
      }
      la::ScopedGemmKernel scoped(kern);
      const double rate = measured_rate(flops, opts.warmup, opts.repeats, [&] {
        la::gemm(T(1), a.cview(), b.cview(), T(0), c.view());
      });
      if (si == 0) {
        small_rate[int(kern)] = rate;
        small_best = std::max(small_best, rate);
      }
      out.push_back({std::string("gemm.") + tag + "." + size_token("n", n) +
                         "." + std::string(la::gemm_kernel_name(kern)),
                     rate, "flop/s"});
    }
  }
}

// --- factorization probes: factor.n<size>.<kernel> = flop/s --------------
//
// One composite per size: POTRF of a shifted Gram matrix plus the TRSM that
// CholeskyQR applies afterwards — the level-3 path both kernels disagree on.

void probe_factor(const TuneOptions& opts, std::vector<RawMeasurement>& out) {
  using T = double;
  constexpr la::FactorKernel kKernels[] = {la::FactorKernel::kNaive,
                                           la::FactorKernel::kBlocked};
  double small_best = 0;
  double small_rate[2] = {0, 0};
  for (std::size_t si = 0; si < opts.factor_sizes.size(); ++si) {
    const Index n = Index(opts.factor_sizes[si]);
    auto g = random_mat<T>(n, n, 3);
    // Symmetrize and shift: diagonally dominant, so POTRF never breaks down.
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < j; ++i) g(i, j) = g(j, i) = (g(i, j) + g(j, i)) / 2;
      g(j, j) = std::abs(g(j, j)) + double(n);
    }
    auto b = random_mat<T>(n, n, 4);
    la::Matrix<T> work(n, n), x(n, n);
    // POTRF ~ n^3/3, TRSM ~ n^3: nominal composite flop count.
    const double flops = (1.0 / 3.0 + 1.0) * double(n) * double(n) * double(n);
    for (const la::FactorKernel kern : kKernels) {
      if (si > 0 && small_rate[int(kern)] * kPruneFactor < small_best) {
        continue;
      }
      la::ScopedFactorKernel scoped(kern);
      const double rate = measured_rate(flops, opts.warmup, opts.repeats, [&] {
        la::copy(g.cview(), work.view());
        la::copy(b.cview(), x.view());
        la::potrf_upper(work.view());
        la::trsm_right_upper(work.cview(), x.view());
      });
      if (si == 0) {
        small_rate[int(kern)] = rate;
        small_best = std::max(small_best, rate);
      }
      out.push_back({std::string("factor.") + size_token("n", n) + "." +
                         std::string(la::factor_kernel_name(kern)),
                     rate, "flop/s"});
    }
  }
}

// --- collective probes: coll.<kind>.b<bytes>.p<ranks>.<algo> = seconds ---

const char* kind_token(perf::CollKind k) {
  switch (k) {
    case perf::CollKind::kAllReduce:
      return "allreduce";
    case perf::CollKind::kBroadcast:
      return "broadcast";
    case perf::CollKind::kAllGather:
    default:
      return "allgather";
  }
}

double time_collective(perf::CollKind kind, int p, std::size_t bytes,
                       const TuneOptions& opts) {
  const Index count = Index(std::max<std::size_t>(1, bytes / sizeof(double)));
  double per_op = 0;
  comm::Team team(p);
  team.run([&](comm::Communicator& comm) {
    // `bytes` follows the Tracker convention: total gathered payload for
    // allgather, per-rank payload otherwise.
    const Index send = kind == perf::CollKind::kAllGather
                           ? std::max<Index>(1, count / p)
                           : count;
    std::vector<double> x(std::size_t(send), double(comm.rank() + 1));
    std::vector<double> recv;
    if (kind == perf::CollKind::kAllGather) {
      recv.resize(std::size_t(send) * std::size_t(p));
    }
    const auto once = [&] {
      switch (kind) {
        case perf::CollKind::kAllReduce:
          comm.all_reduce(x.data(), send);
          break;
        case perf::CollKind::kBroadcast:
          comm.broadcast(x.data(), send, 0);
          break;
        case perf::CollKind::kAllGather:
          comm.all_gather(x.data(), send, recv.data());
          break;
      }
      comm.barrier();
    };
    const Measurement m = measure(opts.warmup, opts.repeats, once);
    if (comm.rank() == 0) per_op = m.best;
  });
  return per_op;
}

void probe_collectives(const TuneOptions& opts,
                       std::vector<RawMeasurement>& out) {
  constexpr perf::CollKind kKinds[] = {perf::CollKind::kAllReduce,
                                       perf::CollKind::kBroadcast,
                                       perf::CollKind::kAllGather};
  // Policies probed in enum order (the tie-break order of the replay).
  constexpr coll::Algorithm kAlgos[] = {coll::Algorithm::kNaive,
                                        coll::Algorithm::kRing,
                                        coll::Algorithm::kTree};
  const int p = std::max(2, opts.coll_ranks);
  // Pin the chunk size during the algorithm race so the two sweeps stay
  // independent (the chunk sweep below varies it with the ring pinned).
  for (const perf::CollKind kind : kKinds) {
    for (const std::size_t bytes : opts.coll_bytes) {
      for (const coll::Algorithm algo : kAlgos) {
        coll::ScopedAlgorithm scoped(algo);
        coll::ScopedChunkBytes chunk(std::size_t(64) << 10);
        const double sec = time_collective(kind, p, bytes, opts);
        out.push_back({std::string("coll.") + kind_token(kind) + "." +
                           size_token("b", (long long)(bytes)) + "." +
                           size_token("p", p) + "." +
                           std::string(coll::algorithm_name(algo)),
                       sec, "s"});
      }
    }
  }
  // Chunk-bytes sweep: the largest allreduce payload under the ring policy,
  // the path the chunk size actually pipelines.
  if (!opts.coll_bytes.empty() && !opts.chunk_candidates.empty()) {
    const std::size_t bytes =
        *std::max_element(opts.coll_bytes.begin(), opts.coll_bytes.end());
    for (const std::size_t chunk : opts.chunk_candidates) {
      coll::ScopedAlgorithm scoped(coll::Algorithm::kRing);
      coll::ScopedChunkBytes chunk_scope(chunk);
      const double sec =
          time_collective(perf::CollKind::kAllReduce, p, bytes, opts);
      out.push_back({std::string("chunk.allreduce.") +
                         size_token("b", (long long)(bytes)) + "." +
                         size_token("c", (long long)(chunk)),
                     sec, "s"});
    }
  }
}

// --- measurement-name parsing for derive_selections ----------------------

std::vector<std::string> split_dots(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = s.find('.', start);
    if (dot == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, dot - start));
    start = dot + 1;
  }
}

// "n384" -> 384; -1 on anything else.
long long numeric_token(const std::string& tok, char prefix) {
  if (tok.size() < 2 || tok[0] != prefix) return -1;
  long long v = 0;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (tok[i] < '0' || tok[i] > '9') return -1;
    v = v * 10 + (tok[i] - '0');
  }
  return v;
}

int tag_index(const std::string& name) {
  for (int i = 0; i < perf::kScalarTagCount; ++i) {
    if (name == perf::scalar_tag_name(perf::ScalarTag(i))) return i;
  }
  return -1;
}

int kind_index(const std::string& name) {
  for (int i = 0; i < perf::kCollKindCount; ++i) {
    if (name == kind_token(perf::CollKind(i))) return i;
  }
  return -1;
}

}  // namespace

TuneOptions TuneOptions::with_defaults() const {
  TuneOptions o = *this;
  if (o.gemm_sizes.empty()) {
    // One representative per shape class (boundaries 192 / 640).
    o.gemm_sizes = o.quick ? std::vector<long long>{64, 224, 672}
                           : std::vector<long long>{96, 384, 768};
  }
  if (o.factor_sizes.empty()) {
    // One per factorization class (boundaries 128 / 512). The small probe
    // stays above the blocked kernel's n<=64 naive fallback so the two
    // policies actually differ at the measured size.
    o.factor_sizes = o.quick ? std::vector<long long>{96, 256, 640}
                             : std::vector<long long>{96, 320, 768};
  }
  if (o.coll_bytes.empty()) {
    // One per message-size class (boundaries 64 KiB / 1 MiB).
    o.coll_bytes = o.quick
                       ? std::vector<std::size_t>{std::size_t(16) << 10,
                                                  std::size_t(256) << 10,
                                                  std::size_t(2) << 20}
                       : std::vector<std::size_t>{std::size_t(16) << 10,
                                                  std::size_t(256) << 10,
                                                  std::size_t(4) << 20};
  }
  if (o.chunk_candidates.empty()) {
    o.chunk_candidates = {std::size_t(16) << 10, std::size_t(64) << 10,
                          std::size_t(256) << 10};
  }
  return o;
}

TuneOptions options_from_env() {
  TuneOptions o;
  if (const auto v = env::positive_env("CHASE_TUNE_REPS")) {
    o.repeats = int(env::ranged_int("CHASE_TUNE_REPS", std::to_string(*v), 1,
                                    1000));
  }
  if (const auto v = env::text_env("CHASE_TUNE_WARMUP")) {
    o.warmup = int(env::ranged_int("CHASE_TUNE_WARMUP", *v, 0, 1000));
  }
  if (const auto v = env::positive_env("CHASE_TUNE_RANKS")) {
    o.coll_ranks = int(env::ranged_int("CHASE_TUNE_RANKS",
                                       std::to_string(*v), 2, 256));
  }
  if (const auto v = env::text_env("CHASE_TUNE_QUICK")) {
    if (*v == "1" || *v == "true" || *v == "yes") {
      o.quick = true;
    } else if (*v == "0" || *v == "false" || *v == "no") {
      o.quick = false;
    } else {
      env::reject("CHASE_TUNE_QUICK", *v, "not a boolean",
                  "0 | 1 | true | false | yes | no");
    }
  }
  return o;
}

MachineProfile run_tuning(const TuneOptions& opts_in) {
  const TuneOptions opts = opts_in.with_defaults();
  MachineProfile p;
  p.fingerprint = local_fingerprint();
  probe_gemm<float>(opts, "f", p.measurements);
  probe_gemm<double>(opts, "d", p.measurements);
  probe_gemm<std::complex<float>>(opts, "c", p.measurements);
  probe_gemm<std::complex<double>>(opts, "z", p.measurements);
  probe_factor(opts, p.measurements);
  if (!opts.skip_collectives) probe_collectives(opts, p.measurements);
  p.tables = derive_selections(p.measurements);
  return p;
}

perf::TunedTables derive_selections(
    const std::vector<RawMeasurement>& measurements) {
  perf::TunedTables t;
  // Winner accumulators: first-measured strictly-better wins, so replaying
  // the same log reproduces the same tables.
  double gemm_best[perf::kScalarTagCount][perf::kNClassCount];
  double factor_best[perf::kNClassCount];
  double coll_best[perf::kCollKindCount][perf::kMsgClassCount];
  for (auto& row : gemm_best) {
    for (double& v : row) v = 0;
  }
  for (double& v : factor_best) v = 0;
  for (auto& row : coll_best) {
    for (double& v : row) v = std::numeric_limits<double>::infinity();
  }
  double chunk_best = std::numeric_limits<double>::infinity();
  // The largest measured size per domain carries the model rates.
  long long gemm_rate_size = -1, factor_rate_size = -1;
  double gemm_d_rate = 0, gemm_f_rate = 0, factor_rate = 0;

  for (const RawMeasurement& m : measurements) {
    const auto parts = split_dots(m.name);
    if (parts.size() == 4 && parts[0] == "gemm") {
      const int tag = tag_index(parts[1]);
      const long long n = numeric_token(parts[2], 'n');
      const auto kern = la::parse_gemm_kernel(parts[3]);
      if (tag < 0 || n <= 0 || !kern) continue;
      const int cls =
          int(perf::gemm_n_class(double(n), double(n), double(n)));
      if (m.value > gemm_best[tag][cls]) {
        gemm_best[tag][cls] = m.value;
        t.gemm_kernel[tag][cls] = int(*kern);
      }
      const bool is_d = parts[1] == "d";
      const bool is_f = parts[1] == "f";
      if (is_d || is_f) {
        if (n > gemm_rate_size) {
          gemm_rate_size = n;
          gemm_d_rate = gemm_f_rate = 0;
        }
        if (n == gemm_rate_size) {
          if (is_d) gemm_d_rate = std::max(gemm_d_rate, m.value);
          if (is_f) gemm_f_rate = std::max(gemm_f_rate, m.value);
        }
      }
    } else if (parts.size() == 3 && parts[0] == "factor") {
      const long long n = numeric_token(parts[1], 'n');
      const auto kern = la::parse_factor_kernel(parts[2]);
      if (n <= 0 || !kern) continue;
      const int cls = int(perf::factor_n_class(n));
      if (m.value > factor_best[cls]) {
        factor_best[cls] = m.value;
        t.factor_kernel[cls] = int(*kern);
      }
      if (n > factor_rate_size) {
        factor_rate_size = n;
        factor_rate = 0;
      }
      if (n == factor_rate_size) factor_rate = std::max(factor_rate, m.value);
    } else if (parts.size() == 5 && parts[0] == "coll") {
      const int kind = kind_index(parts[1]);
      const long long bytes = numeric_token(parts[2], 'b');
      const auto algo = coll::parse_algorithm(parts[4]);
      if (kind < 0 || bytes < 0 || !algo) continue;
      const int cls = int(perf::msg_class(std::size_t(bytes)));
      if (m.value >= 0 && m.value < coll_best[kind][cls]) {
        coll_best[kind][cls] = m.value;
        t.coll_algo[kind][cls] = int(*algo);
      }
    } else if (parts.size() == 4 && parts[0] == "chunk") {
      const long long chunk = numeric_token(parts[3], 'c');
      if (chunk <= 0) continue;
      if (m.value >= 0 && m.value < chunk_best) {
        chunk_best = m.value;
        t.chunk_bytes = chunk;
      }
    }
  }

  t.gemm_flops = gemm_d_rate;
  t.factor_flops = factor_rate;
  if (gemm_d_rate > 0 && gemm_f_rate > 0) {
    t.single_speedup = gemm_f_rate / gemm_d_rate;
  }
  return t;
}

}  // namespace chase::tune
