// Shared micro-benchmark timing harness.
//
// Every timing loop in the repo — the autotuner's kernel/collective probes
// (src/tune/tuner.cpp) and the micro benches (bench/micro_kernels,
// bench/micro_collectives, bench/micro_hierarchy) — runs the same
// warmup-then-repeat discipline through measure(), so a rate recorded in a
// machine profile is directly comparable to the one a bench reports.
//
// best-of semantics: micro kernels are quiet-machine measurements, so the
// minimum over repeats is the estimator (mean and total are kept for
// diagnostics and for the profile's raw measurement log).
#pragma once

#include <limits>

#include "common/timer.hpp"

namespace chase::tune {

/// One measured section: `iters` timed runs after `warmup` untimed ones.
struct Measurement {
  double best = 0;   // fastest single run (seconds) — the estimator
  double mean = 0;   // arithmetic mean over the timed runs
  double total = 0;  // wall-clock of all timed runs
  int iters = 0;     // number of timed runs
};

/// Run `fn()` `warmup` times untimed, then `iters` times timed.
/// Negative counts clamp to 0 / 1 so a Measurement always has one run.
template <typename Fn>
Measurement measure(int warmup, int iters, Fn&& fn) {
  if (warmup < 0) warmup = 0;
  if (iters < 1) iters = 1;
  for (int i = 0; i < warmup; ++i) fn();
  Measurement m;
  m.iters = iters;
  m.best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iters; ++i) {
    WallTimer timer;
    fn();
    const double s = timer.seconds();
    if (s < m.best) m.best = s;
    m.total += s;
  }
  m.mean = m.total / iters;
  return m;
}

/// Rate helper: `work` units (flops, bytes) over the best repeat of `fn`.
/// Returns 0 when the best time is not positive (degenerate clocks).
template <typename Fn>
double measured_rate(double work, int warmup, int iters, Fn&& fn) {
  const Measurement m = measure(warmup, iters, static_cast<Fn&&>(fn));
  return m.best > 0 ? work / m.best : 0.0;
}

}  // namespace chase::tune
