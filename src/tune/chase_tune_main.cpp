// chase_tune: probe this machine once, persist the winners.
//
//   chase_tune [--out <path>] [--quick] [--reps N] [--warmup N] [--ranks P]
//              [--kernels-only] [--check <path>]
//
// Runs the autotuner (src/tune/tuner.hpp) and writes the machine profile
// JSON to --out (default: $CHASE_PROFILE when set, else
// machine_profile.json). Point CHASE_PROFILE at the written file and every
// subsequent solve dispatches from the tuned tables; CHASE_* env overrides
// still win per the precedence contract.
//
// --check validates an existing profile instead of tuning: schema/version,
// fingerprint-vs-this-host, and that the stored tables match what
// derive_selections re-derives from the recorded measurements (the replay
// invariant). Exit 0 iff all three hold.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm_policy.hpp"
#include "perf/tuned.hpp"
#include "tune/profile.hpp"
#include "tune/tuner.hpp"

namespace {

using namespace chase;

void print_tables(const perf::TunedTables& t) {
  std::printf("tuned dispatch tables:\n");
  for (int tag = 0; tag < perf::kScalarTagCount; ++tag) {
    for (int c = 0; c < perf::kNClassCount; ++c) {
      const int k = t.gemm_kernel[tag][c];
      if (k < 0) continue;
      std::printf("  gemm   %-2s %-7s -> %s\n",
                  perf::scalar_tag_name(perf::ScalarTag(tag)),
                  perf::n_class_name(perf::NClass(c)),
                  la::gemm_kernel_name(la::GemmKernel(k)).data());
    }
  }
  for (int c = 0; c < perf::kNClassCount; ++c) {
    const int k = t.factor_kernel[c];
    if (k < 0) continue;
    std::printf("  factor    %-7s -> %s\n",
                perf::n_class_name(perf::NClass(c)),
                la::factor_kernel_name(la::FactorKernel(k)).data());
  }
  static const char* kKinds[] = {"allreduce", "broadcast", "allgather"};
  static const char* kAlgos[] = {"naive", "ring", "tree", "hier", "auto"};
  for (int k = 0; k < perf::kCollKindCount; ++k) {
    for (int c = 0; c < perf::kMsgClassCount; ++c) {
      const int a = t.coll_algo[k][c];
      if (a < 0) continue;
      std::printf("  coll   %-9s %-7s -> %s\n", kKinds[k],
                  perf::msg_class_name(perf::MsgClass(c)),
                  a <= 4 ? kAlgos[a] : "?");
    }
  }
  if (t.chunk_bytes > 0) {
    std::printf("  chunk_bytes -> %lld\n", t.chunk_bytes);
  }
  std::printf("  rates: gemm %.3g flop/s, factor %.3g flop/s, fp32 speedup "
              "%.2fx\n",
              t.gemm_flops, t.factor_flops, t.single_speedup);
}

bool tables_equal(const perf::TunedTables& a, const perf::TunedTables& b) {
  for (int t = 0; t < perf::kScalarTagCount; ++t) {
    for (int c = 0; c < perf::kNClassCount; ++c) {
      if (a.gemm_kernel[t][c] != b.gemm_kernel[t][c]) return false;
    }
  }
  for (int c = 0; c < perf::kNClassCount; ++c) {
    if (a.factor_kernel[c] != b.factor_kernel[c]) return false;
  }
  for (int k = 0; k < perf::kCollKindCount; ++k) {
    for (int c = 0; c < perf::kMsgClassCount; ++c) {
      if (a.coll_algo[k][c] != b.coll_algo[k][c]) return false;
    }
  }
  return a.chunk_bytes == b.chunk_bytes;
}

int check_profile(const std::string& path) {
  std::string error;
  const auto p = tune::load_profile(path, &error);
  if (!p) {
    std::fprintf(stderr, "chase_tune --check: %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  int failures = 0;
  if (!p->fingerprint.matches(tune::local_fingerprint())) {
    std::fprintf(stderr,
                 "chase_tune --check: fingerprint mismatch (profile measured "
                 "on %s)\n",
                 p->fingerprint.host.c_str());
    ++failures;
  }
  if (!tables_equal(p->tables, tune::derive_selections(p->measurements))) {
    std::fprintf(stderr,
                 "chase_tune --check: stored tables do not match the "
                 "measurement log (replay invariant violated)\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("%s: valid profile for this machine (%zu measurements)\n",
                path.c_str(), p->measurements.size());
  }
  return failures == 0 ? 0 : 1;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out <path>] [--quick] [--reps N] [--warmup N] "
               "[--ranks P] [--kernels-only] [--check <path>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tune::TuneOptions opts = tune::options_from_env();
  std::string out_path;
  if (const auto env = env::text_env("CHASE_PROFILE")) out_path = *env;
  if (out_path.empty()) out_path = "machine_profile.json";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0 && i + 1 < argc) {
      return check_profile(argv[++i]);
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(arg, "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(arg, "--kernels-only") == 0) {
      opts.skip_collectives = true;
    } else if (std::strcmp(arg, "--reps") == 0 && i + 1 < argc) {
      opts.repeats = int(env::ranged_int("--reps", argv[++i], 1, 1000));
    } else if (std::strcmp(arg, "--warmup") == 0 && i + 1 < argc) {
      opts.warmup = int(env::ranged_int("--warmup", argv[++i], 0, 1000));
    } else if (std::strcmp(arg, "--ranks") == 0 && i + 1 < argc) {
      opts.coll_ranks = int(env::ranged_int("--ranks", argv[++i], 2, 256));
    } else {
      return usage(argv[0]);
    }
  }

  std::printf("chase_tune: probing this machine (%s mode, %d warmup + %d "
              "timed reps per probe)...\n",
              opts.quick ? "quick" : "full", opts.warmup, opts.repeats);
  const tune::MachineProfile profile = tune::run_tuning(opts);
  std::printf("fingerprint: %s / %s / %d threads\n",
              profile.fingerprint.host.c_str(),
              profile.fingerprint.cpu.c_str(), profile.fingerprint.threads);
  std::printf("%zu measurements recorded\n", profile.measurements.size());
  print_tables(profile.tables);

  std::string error;
  if (!tune::save_profile(profile, out_path, &error)) {
    std::fprintf(stderr, "chase_tune: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\nexport CHASE_PROFILE=%s to use it\n",
              out_path.c_str(), out_path.c_str());
  return 0;
}
