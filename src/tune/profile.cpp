#include "tune/profile.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "coll/engine.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm_policy.hpp"
#include "perf/machine.hpp"
#include "perf/tracker.hpp"
#include "tune/json.hpp"

namespace chase::tune {

namespace {

const char* coll_kind_name(perf::CollKind k) {
  switch (k) {
    case perf::CollKind::kAllReduce:
      return "allreduce";
    case perf::CollKind::kBroadcast:
      return "broadcast";
    case perf::CollKind::kAllGather:
    default:
      return "allgather";
  }
}

// Name -> index parsers for the class enums. Unknown names return -1: the
// entry is skipped, so profiles from builds with more classes still load.
int parse_named(const std::string& name, const char* (*namer)(int),
                int count) {
  for (int i = 0; i < count; ++i) {
    if (name == namer(i)) return i;
  }
  return -1;
}

const char* tag_namer(int i) {
  return perf::scalar_tag_name(perf::ScalarTag(i));
}
const char* nclass_namer(int i) { return perf::n_class_name(perf::NClass(i)); }
const char* msg_namer(int i) {
  return perf::msg_class_name(perf::MsgClass(i));
}
const char* kind_namer(int i) { return coll_kind_name(perf::CollKind(i)); }

void append_number(std::string& out, double v) {
  char buf[64];
  // %.17g round-trips doubles; trim to a plain integer form when exact.
  if (v >= -1e15 && v <= 1e15 && v == double((long long)(v))) {
    std::snprintf(buf, sizeof buf, "%lld", (long long)(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void bump_rejected() {
  if (auto* t = perf::thread_tracker()) t->bump("tune.profile.rejected", 1.0);
}

}  // namespace

double MachineProfile::measurement(std::string_view name) const {
  for (const RawMeasurement& m : measurements) {
    if (m.name == name) return m.value;
  }
  return 0;
}

Fingerprint local_fingerprint() {
  Fingerprint fp;
  char host[256] = {0};
  if (gethostname(host, sizeof host - 1) == 0) fp.host = host;
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto key = line.find("model name");
    if (key == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto start = line.find_first_not_of(" \t", colon + 1);
    if (start != std::string::npos) fp.cpu = line.substr(start);
    break;
  }
  if (fp.cpu.empty()) fp.cpu = "unknown-cpu";
  fp.threads = int(std::thread::hardware_concurrency());
  return fp;
}

std::string encode_profile(const MachineProfile& p) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": ";
  out += json::quote(kProfileSchema);
  out += ",\n  \"version\": ";
  append_number(out, kProfileVersion);
  out += ",\n  \"fingerprint\": {\"host\": ";
  out += json::quote(p.fingerprint.host);
  out += ", \"cpu\": ";
  out += json::quote(p.fingerprint.cpu);
  out += ", \"threads\": ";
  append_number(out, p.fingerprint.threads);
  out += "},\n  \"measurements\": [";
  for (std::size_t i = 0; i < p.measurements.size(); ++i) {
    const RawMeasurement& m = p.measurements[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    out += json::quote(m.name);
    out += ", \"value\": ";
    append_number(out, m.value);
    out += ", \"unit\": ";
    out += json::quote(m.unit);
    out += "}";
  }
  out += "\n  ],\n  \"tables\": {\n    \"gemm_kernel\": [";
  bool first = true;
  for (int t = 0; t < perf::kScalarTagCount; ++t) {
    for (int c = 0; c < perf::kNClassCount; ++c) {
      const int k = p.tables.gemm_kernel[t][c];
      if (k < 0) continue;
      out += first ? "\n" : ",\n";
      first = false;
      out += "      {\"type\": ";
      out += json::quote(tag_namer(t));
      out += ", \"nclass\": ";
      out += json::quote(nclass_namer(c));
      out += ", \"kernel\": ";
      out += json::quote(la::gemm_kernel_name(la::GemmKernel(k)));
      out += "}";
    }
  }
  out += "\n    ],\n    \"factor_kernel\": [";
  first = true;
  for (int c = 0; c < perf::kNClassCount; ++c) {
    const int k = p.tables.factor_kernel[c];
    if (k < 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "      {\"nclass\": ";
    out += json::quote(nclass_namer(c));
    out += ", \"kernel\": ";
    out += json::quote(la::factor_kernel_name(la::FactorKernel(k)));
    out += "}";
  }
  out += "\n    ],\n    \"coll_algo\": [";
  first = true;
  for (int k = 0; k < perf::kCollKindCount; ++k) {
    for (int c = 0; c < perf::kMsgClassCount; ++c) {
      const int a = p.tables.coll_algo[k][c];
      if (a < 0) continue;
      out += first ? "\n" : ",\n";
      first = false;
      out += "      {\"kind\": ";
      out += json::quote(kind_namer(k));
      out += ", \"msgclass\": ";
      out += json::quote(msg_namer(c));
      out += ", \"algo\": ";
      out += json::quote(coll::algorithm_name(coll::Algorithm(a)));
      out += "}";
    }
  }
  out += "\n    ],\n    \"chunk_bytes\": ";
  append_number(out, double(p.tables.chunk_bytes));
  out += ",\n    \"rates\": {\"gemm_flops\": ";
  append_number(out, p.tables.gemm_flops);
  out += ", \"factor_flops\": ";
  append_number(out, p.tables.factor_flops);
  out += ", \"single_speedup\": ";
  append_number(out, p.tables.single_speedup);
  out += "}\n  }\n}\n";
  return out;
}

std::optional<MachineProfile> decode_profile(std::string_view text,
                                             std::string* error) {
  const auto fail = [&](const char* why) -> std::optional<MachineProfile> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  const auto doc = json::parse(text);
  if (!doc || !doc->is_object()) return fail("not a JSON object");
  const auto schema = doc->get_string("schema");
  if (!schema || *schema != kProfileSchema) {
    return fail("missing or unknown schema tag");
  }
  const auto version = doc->get_number("version");
  if (!version) return fail("missing version");
  if (int(*version) != kProfileVersion) {
    return fail("unsupported profile version");
  }

  MachineProfile p;
  const json::Value* fp = doc->get("fingerprint");
  if (fp == nullptr || !fp->is_object()) return fail("missing fingerprint");
  p.fingerprint.host = fp->get_string("host").value_or("");
  p.fingerprint.cpu = fp->get_string("cpu").value_or("");
  p.fingerprint.threads = int(fp->get_number("threads").value_or(0));
  if (p.fingerprint.host.empty() || p.fingerprint.threads <= 0) {
    return fail("incomplete fingerprint");
  }

  if (const json::Value* ms = doc->get("measurements")) {
    if (!ms->is_array()) return fail("measurements is not an array");
    for (const json::Value& m : *ms->array) {
      if (!m.is_object()) return fail("malformed measurement entry");
      RawMeasurement raw;
      const auto name = m.get_string("name");
      const auto value = m.get_number("value");
      if (!name || !value) return fail("malformed measurement entry");
      raw.name = *name;
      raw.value = *value;
      raw.unit = m.get_string("unit").value_or("");
      p.measurements.push_back(std::move(raw));
    }
  }

  const json::Value* tables = doc->get("tables");
  if (tables == nullptr || !tables->is_object()) return fail("missing tables");
  if (const json::Value* g = tables->get("gemm_kernel")) {
    if (!g->is_array()) return fail("tables.gemm_kernel is not an array");
    for (const json::Value& e : *g->array) {
      if (!e.is_object()) return fail("malformed gemm_kernel entry");
      const int t = parse_named(e.get_string("type").value_or(""), tag_namer,
                                perf::kScalarTagCount);
      const int c = parse_named(e.get_string("nclass").value_or(""),
                                nclass_namer, perf::kNClassCount);
      const auto k = la::parse_gemm_kernel(e.get_string("kernel").value_or(""));
      if (t < 0 || c < 0 || !k) continue;  // unknown name: leave untuned
      p.tables.gemm_kernel[t][c] = int(*k);
    }
  }
  if (const json::Value* f = tables->get("factor_kernel")) {
    if (!f->is_array()) return fail("tables.factor_kernel is not an array");
    for (const json::Value& e : *f->array) {
      if (!e.is_object()) return fail("malformed factor_kernel entry");
      const int c = parse_named(e.get_string("nclass").value_or(""),
                                nclass_namer, perf::kNClassCount);
      const auto k =
          la::parse_factor_kernel(e.get_string("kernel").value_or(""));
      if (c < 0 || !k) continue;
      p.tables.factor_kernel[c] = int(*k);
    }
  }
  if (const json::Value* a = tables->get("coll_algo")) {
    if (!a->is_array()) return fail("tables.coll_algo is not an array");
    for (const json::Value& e : *a->array) {
      if (!e.is_object()) return fail("malformed coll_algo entry");
      const int k = parse_named(e.get_string("kind").value_or(""), kind_namer,
                                perf::kCollKindCount);
      const int c = parse_named(e.get_string("msgclass").value_or(""),
                                msg_namer, perf::kMsgClassCount);
      const auto algo =
          coll::parse_algorithm(e.get_string("algo").value_or(""));
      if (k < 0 || c < 0 || !algo) continue;
      p.tables.coll_algo[k][c] = int(*algo);
    }
  }
  const double chunk = tables->get_number("chunk_bytes").value_or(0);
  if (chunk < 0) return fail("negative chunk_bytes");
  p.tables.chunk_bytes = (long long)(chunk);
  if (const json::Value* rates = tables->get("rates")) {
    if (!rates->is_object()) return fail("tables.rates is not an object");
    p.tables.gemm_flops = rates->get_number("gemm_flops").value_or(0);
    p.tables.factor_flops = rates->get_number("factor_flops").value_or(0);
    p.tables.single_speedup = rates->get_number("single_speedup").value_or(0);
  }
  return p;
}

bool save_profile(const MachineProfile& p, const std::string& path,
                  std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << encode_profile(p);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

std::optional<MachineProfile> load_profile(const std::string& path,
                                           std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_profile(buf.str(), error);
}

bool install_profile(const MachineProfile& p, bool check_fingerprint) {
  if (check_fingerprint && !p.fingerprint.matches(local_fingerprint())) {
    bump_rejected();
    return false;
  }
  perf::set_tuned_tables(p.tables);
  perf::MachineModel model;  // built-in defaults for everything unmeasured
  model.calibrate_from_tables(p.tables);
  perf::set_selection_model(model);
  return true;
}

void uninstall_profile() {
  perf::clear_tuned_tables();
  perf::reset_selection_model();
}

}  // namespace chase::tune
