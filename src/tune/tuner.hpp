// The micro-benchmark driver behind `chase_tune` (DESIGN.md §15).
//
// run_tuning() probes every registered implementation choice the runtime
// can dispatch on — GEMM kernels per scalar type and shape class,
// factorization kernels per triangular size class, collective algorithms
// per message-size class, the pipelining chunk size — through the shared
// tune::measure warmup+repeat harness, records every probe in the profile's
// raw measurement log, and derives the dispatch tables from that log.
//
// derive_selections() is a *pure function* of the measurement log
// (argmax rate / argmin seconds per class, first-measured wins ties, and
// the tuner emits probes in enum order). That is what makes
// CHASE_TUNE_REPLAY deterministic: replaying a persisted profile re-derives
// bit-identical tables from the recorded numbers without re-benchmarking.
#pragma once

#include <cstddef>
#include <vector>

#include "tune/profile.hpp"

namespace chase::tune {

struct TuneOptions {
  int warmup = 1;   // untimed runs per probe (CHASE_TUNE_WARMUP)
  int repeats = 3;  // timed runs per probe, best-of (CHASE_TUNE_REPS)
  int coll_ranks = 4;  // in-process team size for collective probes
                       // (CHASE_TUNE_RANKS)
  bool quick = false;  // CHASE_TUNE_QUICK=1: smaller representative sizes
  bool skip_collectives = false;  // kernel-only tuning (unit tests)

  // Representative problem sizes, one (or more) per class; filled by
  // with_defaults() from `quick` when left empty.
  std::vector<long long> gemm_sizes;
  std::vector<long long> factor_sizes;
  std::vector<std::size_t> coll_bytes;
  std::vector<std::size_t> chunk_candidates;

  /// Copy with the empty size lists replaced by the built-in (quick or
  /// full) representative sizes.
  TuneOptions with_defaults() const;
};

/// TuneOptions from the CHASE_TUNE_* env knobs (typed: a set-but-invalid
/// value throws env::ConfigError naming the variable).
TuneOptions options_from_env();

/// Probe the machine and return a complete profile: local fingerprint, raw
/// measurement log, and the tables derived from it.
MachineProfile run_tuning(const TuneOptions& opts);

/// Deterministically derive the dispatch tables from a raw measurement log
/// (see the header comment). Unmeasured classes stay -1/unset.
perf::TunedTables derive_selections(
    const std::vector<RawMeasurement>& measurements);

}  // namespace chase::tune
