#include "tune/runtime.hpp"

#include <mutex>
#include <string>

#include "coll/engine.hpp"
#include "common/env.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm_policy.hpp"
#include "perf/tracker.hpp"
#include "perf/tuned.hpp"
#include "tune/profile.hpp"
#include "tune/tuner.hpp"

namespace chase::tune {

namespace {

struct RuntimeState {
  std::mutex mu;
  bool resolved = false;
};

RuntimeState& state() {
  static RuntimeState s;
  return s;
}

void bump(const char* counter) {
  if (auto* t = perf::thread_tracker()) t->bump(counter, 1.0);
}

void load_and_install(const std::string& path, bool replay) {
  std::string error;
  auto profile = load_profile(path, &error);
  if (!profile) {
    bump("tune.profile.rejected");
    return;
  }
  if (replay) {
    // Deterministic replay: selections are a pure function of the recorded
    // measurement log, so re-deriving them here reproduces exactly what the
    // tuner persisted — without re-benchmarking.
    profile->tables = derive_selections(profile->measurements);
  }
  if (!install_profile(*profile)) {
    // install_profile bumped tune.profile.rejected (fingerprint mismatch).
    return;
  }
}

// One provenance bump for a policy domain: explicit override > profile
// entry > default.
void bump_domain(bool overridden, bool profiled) {
  if (overridden) {
    bump("tune.source.env");
  } else if (profiled) {
    bump("tune.source.profile");
  } else {
    bump("tune.source.default");
  }
}

bool any_gemm_entry(const perf::TunedTables& t) {
  for (const auto& row : t.gemm_kernel) {
    for (const int v : row) {
      if (v >= 0) return true;
    }
  }
  return false;
}

bool any_factor_entry(const perf::TunedTables& t) {
  for (const int v : t.factor_kernel) {
    if (v >= 0) return true;
  }
  return false;
}

bool any_coll_entry(const perf::TunedTables& t) {
  for (const auto& row : t.coll_algo) {
    for (const int v : row) {
      if (v >= 0) return true;
    }
  }
  return false;
}

}  // namespace

void ensure_profile_from_env() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.resolved) return;
  s.resolved = true;
  if (const auto replay = env::text_env("CHASE_TUNE_REPLAY")) {
    load_and_install(*replay, /*replay=*/true);
  } else if (const auto path = env::text_env("CHASE_PROFILE")) {
    load_and_install(*path, /*replay=*/false);
  }
}

void record_provenance() {
  if (perf::thread_tracker() == nullptr) return;
  const perf::TunedTables* t = perf::tuned_tables();
  bump_domain(la::gemm_kernel_overridden(), t != nullptr && any_gemm_entry(*t));
  bump_domain(la::factor_kernel_overridden(),
              t != nullptr && any_factor_entry(*t));
  bump_domain(coll::algorithm_overridden(),
              t != nullptr && any_coll_entry(*t));
  bump_domain(coll::raw_chunk_override() > 0,
              t != nullptr && t->chunk_bytes > 0);
}

void resolve_at_solve_start() {
  ensure_profile_from_env();
  record_provenance();
}

void reset_runtime_for_testing() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.resolved = false;
  uninstall_profile();
}

}  // namespace chase::tune
