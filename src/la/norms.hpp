// Matrix norms and distance helpers used throughout the tests and the
// shifted-CholeskyQR shift computation.
#pragma once

#include <algorithm>
#include <cmath>

#include "la/blas1.hpp"
#include "la/matrix.hpp"

namespace chase::la {

/// Squared Frobenius norm.
template <typename T>
RealType<T> frobenius_norm_squared(ConstMatrixView<T> a) {
  RealType<T> acc(0);
  for (Index j = 0; j < a.cols(); ++j) {
    acc += nrm2_squared(a.rows(), a.col(j));
  }
  return acc;
}

template <typename T>
RealType<T> frobenius_norm(ConstMatrixView<T> a) {
  return std::sqrt(frobenius_norm_squared(a));
}

/// Largest absolute entry.
template <typename T>
RealType<T> max_abs(ConstMatrixView<T> a) {
  RealType<T> best(0);
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      best = std::max(best, abs_value(a(i, j)));
    }
  }
  return best;
}

/// max_ij |a_ij - b_ij| (shape-checked elementwise distance).
template <typename T>
RealType<T> max_abs_diff(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  CHASE_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  RealType<T> best(0);
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      best = std::max(best, abs_value(T(a(i, j) - b(i, j))));
    }
  }
  return best;
}

/// Departure from orthonormality ||Q^H Q - I||_F — the quantity the
/// CholeskyQR stability discussion of Section 3.2 is about.
template <typename T>
RealType<T> orthogonality_error(ConstMatrixView<T> q);

}  // namespace chase::la

#include "la/gemm.hpp"

namespace chase::la {

template <typename T>
RealType<T> orthogonality_error(ConstMatrixView<T> q) {
  Matrix<T> g(q.cols(), q.cols());
  gemm(T(1), Op::kConjTrans, q, Op::kNoTrans, q, T(0), g.view());
  for (Index j = 0; j < g.cols(); ++j) g(j, j) -= T(1);
  return frobenius_norm(g.cview());
}

}  // namespace chase::la
