// Five-loop BLIS-style GEMM engine: register-tiled micro-kernel, micro-panel
// packing, and the per-thread packing-buffer pool.
//
// Loop structure (outermost to innermost), following the micro-kernel
// discipline of BLIS/DBCSR-class libraries:
//
//   jc over n in nc   — B/C column panels
//   pc over k in kc   — k panels; op(B) panel packed into kc x nr micro-panels
//   ic over m in mc   — op(A) panel packed into mr x kc micro-panels (L2)
//   jr over nc in nr  ┐ macro-kernel: every (mr x nr) register tile of C is
//   ir over mc in mr  ┘ produced by one micro-kernel call
//
// The micro-kernel keeps the full mr x nr tile of C in registers across the
// whole kc loop (one load/store of the tile per k panel instead of the
// rank-1-update kernel's one reload per two k steps), with A and B streamed
// from L1-resident packed micro-panels. Remainder tiles are handled by
// zero-padding the packed panels to full mr/nr width and masking the store,
// so the hot loop is branch-free for every shape.
//
// beta is folded into the store of the *first* k panel (pc == 0): the tile
// store computes C = beta C + acc there and C += acc afterwards, which
// removes the separate full read-modify-write sweep over C that a
// pre-scaling pass costs.
#pragma once

#include <complex>
#include <cstdint>
#include <cstring>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "la/matrix.hpp"

namespace chase::la {

/// BLAS-style operation applied to an input operand.
enum class Op { kNoTrans, kTrans, kConjTrans };

/// Rows of op(A) for an m x n view A.
template <typename T>
inline Index op_rows(Op op, ConstMatrixView<T> a) {
  return op == Op::kNoTrans ? a.rows() : a.cols();
}

/// Columns of op(A) for an m x n view A.
template <typename T>
inline Index op_cols(Op op, ConstMatrixView<T> a) {
  return op == Op::kNoTrans ? a.cols() : a.rows();
}

namespace detail {

/// Element (i, j) of op(A).
template <typename T>
inline T op_elem(Op op, ConstMatrixView<T> a, Index i, Index j) {
  switch (op) {
    case Op::kNoTrans:
      return a(i, j);
    case Op::kTrans:
      return a(j, i);
    case Op::kConjTrans:
    default:
      return conjugate(a(j, i));
  }
}

/// Register-tile and cache-block sizes per scalar type.
///
/// mr x nr is sized so the C accumulator tile plus one A column and one B row
/// fit the architectural vector registers (the -march=native build
/// autovectorizes the unit-stride mr direction); kc keeps one mr x kc A
/// micro-panel plus one kc x nr B micro-panel L1-resident; mc x kc is the
/// L2-resident packed A panel; nc bounds the packed B panel.
template <typename T>
struct MicroTile;

template <>
struct MicroTile<float> {
  static constexpr Index mr = 32, nr = 6, mc = 256, kc = 256, nc = 480;
};
template <>
struct MicroTile<double> {
  static constexpr Index mr = 16, nr = 6, mc = 256, kc = 256, nc = 480;
};
template <>
struct MicroTile<std::complex<float>> {
  static constexpr Index mr = 16, nr = 6, mc = 192, kc = 224, nc = 480;
};
template <>
struct MicroTile<std::complex<double>> {
  static constexpr Index mr = 8, nr = 6, mc = 192, kc = 192, nc = 384;
};

inline constexpr Index round_up(Index v, Index unit) {
  return ((v + unit - 1) / unit) * unit;
}

/// Ask the kernel to back a buffer with transparent huge pages. hemm's
/// whole-triangle pack cache spans many megabytes and its replay sweeps walk
/// it front to back; on 4 KiB pages that walk turns into a dTLB miss every
/// page, which is measurable once the micro-kernel runs near FMA peak.
inline void advise_huge_pages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::size_t kHuge = 2u << 20;
  auto lo = (reinterpret_cast<std::uintptr_t>(p) + kHuge - 1) & ~(kHuge - 1);
  auto hi = (reinterpret_cast<std::uintptr_t>(p) + bytes) & ~(kHuge - 1);
  if (hi > lo) madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
#else
  (void)p;
  (void)bytes;
#endif
}

/// Per-thread (per-SPMD-rank) reusable packing buffers. The filter's inner
/// HEMM loop calls gemm once per recurrence step per column block; growing
/// these monotonically means it stops allocating after the first call.
template <typename T>
struct PackPool {
  std::vector<T> a, b;

  T* buf_a(std::size_t n) {
    if (a.size() < n) {
      a.resize(n);
      advise_huge_pages(a.data(), a.size() * sizeof(T));
    }
    return a.data();
  }
  T* buf_b(std::size_t n) {
    if (b.size() < n) {
      b.resize(n);
      advise_huge_pages(b.data(), b.size() * sizeof(T));
    }
    return b.data();
  }
};

template <typename T>
inline PackPool<T>& pack_pool() {
  thread_local PackPool<T> pool;
  return pool;
}

template <typename T>
inline constexpr bool kIsComplexScalar = false;
template <typename U>
inline constexpr bool kIsComplexScalar<std::complex<U>> = true;

/// Width in bytes of the micro-kernel's accumulator vectors. 64 maps to one
/// zmm register on AVX-512 hosts (-march=native builds); on narrower ISAs the
/// compiler legalizes each operation into register pairs, which costs nothing
/// relative to writing the pairs out by hand.
inline constexpr int kVecBytes = 64;

/// Complex packed-A micro-panels use a *planar* layout — per k step the MR
/// real parts then the MR imaginary parts — whenever one plane is a whole
/// number of accumulator vectors. The planar form lets the complex
/// micro-kernel run the real/imag cross terms as four plain vector FMAs per
/// register row with no lane shuffles; real types always pack interleaved
/// (trivially).
template <typename T, Index MR>
inline constexpr bool kPlanarPackA =
    kIsComplexScalar<T> && (MR * sizeof(T) / 2) % kVecBytes == 0;

/// Store element (i, l) of one packed mr x kc A micro-panel, honoring the
/// planar layout for complex types. Every producer of packed A panels
/// (gemm's pack_a_micro, hemm's diagonal densifier) must write through this.
template <typename T, Index MR>
inline void packed_a_store(T* panel, Index l, Index i, T v) {
  if constexpr (kPlanarPackA<T, MR>) {
    auto* d = reinterpret_cast<typename T::value_type*>(panel) + l * 2 * MR;
    d[i] = v.real();
    d[MR + i] = v.imag();
  } else {
    panel[l * MR + i] = v;
  }
}

/// Pack block [r0, r0+rows) x [c0, c0+kc) of op(A) into mr-row micro-panels:
/// panel p holds rows [p*mr, (p+1)*mr) starting at p*mr*kc, element (i, l)
/// placed by packed_a_store (interleaved for real types, planar for complex),
/// rows beyond `rows` zero-padded so the micro-kernel never branches on m.
template <typename T, Index MR>
inline void pack_a_micro(Op op, ConstMatrixView<T> a, Index r0, Index c0,
                         Index rows, Index kc, T* buf) {
  for (Index p0 = 0; p0 < rows; p0 += MR) {
    const Index pr = std::min<Index>(MR, rows - p0);
    T* dst = buf + p0 * kc;
    if (op == Op::kNoTrans) {
      for (Index l = 0; l < kc; ++l) {
        const T* src = a.col(c0 + l) + r0 + p0;
        for (Index i = 0; i < pr; ++i) packed_a_store<T, MR>(dst, l, i, src[i]);
        for (Index i = pr; i < MR; ++i) packed_a_store<T, MR>(dst, l, i, T(0));
      }
    } else {
      // op(A)(i, l) = a(c0+l, r0+i) (conjugated for kConjTrans): for a fixed
      // i the l loop walks down one column of A, so keep it innermost — but
      // tiled, so the strided destination window (one line per k step) stays
      // L1-resident while the i loop revisits it.
      const bool conj = op == Op::kConjTrans;
      constexpr Index kLTile = 64;
      for (Index l0 = 0; l0 < kc; l0 += kLTile) {
        const Index lt = std::min<Index>(kLTile, kc - l0);
        for (Index i = 0; i < pr; ++i) {
          const T* src = &a(c0 + l0, r0 + p0 + i);
          for (Index l = 0; l < lt; ++l) {
            packed_a_store<T, MR>(dst, l0 + l, i,
                                  conj ? conjugate(src[l]) : src[l]);
          }
        }
        for (Index i = pr; i < MR; ++i) {
          for (Index l = 0; l < lt; ++l) {
            packed_a_store<T, MR>(dst, l0 + l, i, T(0));
          }
        }
      }
    }
  }
}

/// Pack block [r0, r0+kc) x [c0, c0+cols) of op(B), scaled by alpha, into
/// nr-column micro-panels: panel q holds columns [q*nr, (q+1)*nr), element
/// (l, j) at q*nr*kc + l*nr + j, columns beyond `cols` zero-padded.
template <typename T, Index NR>
inline void pack_b_micro(Op op, ConstMatrixView<T> b, Index r0, Index c0,
                         Index kc, Index cols, T alpha, T* buf) {
  for (Index q0 = 0; q0 < cols; q0 += NR) {
    const Index qn = std::min<Index>(NR, cols - q0);
    T* dst = buf + q0 * kc;
    if (op == Op::kNoTrans) {
      for (Index j = 0; j < qn; ++j) {
        const T* src = b.col(c0 + q0 + j) + r0;
        T* d = dst + j;
        for (Index l = 0; l < kc; ++l) d[l * NR] = alpha * src[l];
      }
    } else {
      const bool conj = op == Op::kConjTrans;
      // op(B)(l, j) = b(c0+j, r0+l): for a fixed l the j loop walks down one
      // column of B; keep the contiguous direction innermost per column.
      for (Index j = 0; j < qn; ++j) {
        const T* src = &b(c0 + q0 + j, r0);
        const Index ld = b.ld();
        T* d = dst + j;
        for (Index l = 0; l < kc; ++l) {
          const T v = src[l * ld];
          d[l * NR] = alpha * (conj ? conjugate(v) : v);
        }
      }
    }
    for (Index j = qn; j < NR; ++j) {
      T* d = dst + j;
      for (Index l = 0; l < kc; ++l) d[l * NR] = T(0);
    }
  }
}

/// The register-tiled micro-kernel: acc(mr x nr) = sum_l Ap(:, l) Bp(l, :)
/// over one packed k panel, then one store to C.
///
/// `first_panel` selects the store mode: the pc == 0 panel writes
/// C = beta C + acc (folding the beta pre-scale into work that touches the
/// tile anyway), later panels accumulate C += acc. Edge tiles (mrem < MR or
/// nrem < NR) compute the full padded tile — the padding rows/columns are
/// zero — and mask only the store.
/// Rank-kc accumulation acc(MR x NR) = sum_l Ap(:, l) Bp(l, :) over packed
/// panels, written with GCC vector extensions: the accumulator tile is held
/// in explicit kVecBytes-wide vector variables, which pins it to
/// architectural registers (the scalar formulation trips a pathology —
/// the compiler spills the tile into chains of register-register copies and
/// the kernel runs at memory speed instead of FMA speed).
///
/// Complex types consume the planar packed-A layout (see kPlanarPackA): with
/// the real and imaginary planes in separate vectors, the complex
/// multiply-accumulate acc += a b is four shuffle-free vector FMAs
///   accr += ar br;  accr -= ai bi;  acci += ar bi;  acci += ai br,
/// the same FMA utilization as the real kernel. B panels stay interleaved —
/// only the two scalars b_r, b_i are broadcast per register column.
template <typename T, Index MR, Index NR>
inline void micro_accumulate(Index kc, const T* __restrict ap,
                             const T* __restrict bp, T* __restrict acc) {
  if constexpr (kPlanarPackA<T, MR>) {
    using R = typename T::value_type;
    constexpr int VB = kVecBytes;
    constexpr int VL = VB / int(sizeof(R));
    constexpr int RU = int(MR) / VL;  // vectors per plane
    typedef R V __attribute__((vector_size(VB)));
    const R* apr = reinterpret_cast<const R*>(ap);
    const R* bpr = reinterpret_cast<const R*>(bp);
    V accr[RU][NR], acci[RU][NR];
    for (int r = 0; r < RU; ++r)
      for (int j = 0; j < int(NR); ++j) {
        accr[r][j] = V{};
        acci[r][j] = V{};
      }
    for (Index l = 0; l < kc; ++l) {
      const R* a = apr + l * 2 * MR;
      const R* b = bpr + l * 2 * NR;
      V ar[RU], ai[RU];
      for (int r = 0; r < RU; ++r) {
        std::memcpy(&ar[r], a + r * VL, VB);
        std::memcpy(&ai[r], a + MR + r * VL, VB);
      }
      for (int j = 0; j < int(NR); ++j) {
        const R br = b[2 * j], bi = b[2 * j + 1];
        for (int r = 0; r < RU; ++r) {
          accr[r][j] += ar[r] * br;
          accr[r][j] -= ai[r] * bi;
          acci[r][j] += ar[r] * bi;
          acci[r][j] += ai[r] * br;
        }
      }
    }
    R* out = reinterpret_cast<R*>(acc);
    for (int j = 0; j < int(NR); ++j)
      for (int r = 0; r < RU; ++r)
        for (int v = 0; v < VL; ++v) {
          out[(j * MR + r * VL + v) * 2] = accr[r][j][v];
          out[(j * MR + r * VL + v) * 2 + 1] = acci[r][j][v];
        }
  } else if constexpr (!kIsComplexScalar<T> &&
                       (MR * sizeof(T)) % kVecBytes == 0) {
    constexpr int VB = kVecBytes;  // MR spans a whole number of vectors
    constexpr int VL = VB / int(sizeof(T));
    constexpr int RU = int(MR) / VL;
    typedef T V __attribute__((vector_size(VB)));
    V vacc[RU][NR];
    for (int r = 0; r < RU; ++r)
      for (int j = 0; j < int(NR); ++j) vacc[r][j] = V{};
    for (Index l = 0; l < kc; ++l) {
      const T* a = ap + l * MR;
      const T* b = bp + l * NR;
      V av[RU];
      for (int r = 0; r < RU; ++r) std::memcpy(&av[r], a + r * VL, VB);
      for (int j = 0; j < int(NR); ++j) {
        const T bj = b[j];
        for (int r = 0; r < RU; ++r) vacc[r][j] += av[r] * bj;
      }
    }
    for (int j = 0; j < int(NR); ++j)
      for (int r = 0; r < RU; ++r)
        std::memcpy(acc + j * MR + r * VL, &vacc[r][j], VB);
  } else {
    for (Index l = 0; l < kc; ++l) {
      const T* a = ap + l * MR;
      const T* b = bp + l * NR;
      for (Index j = 0; j < NR; ++j) {
        const T bj = b[j];
        T* accj = acc + j * MR;
        for (Index i = 0; i < MR; ++i) accj[i] += a[i] * bj;
      }
    }
  }
}

template <typename T, Index MR, Index NR>
inline void micro_kernel(Index kc, const T* ap, const T* bp, T* c, Index ldc,
                         Index mrem, Index nrem, T beta, bool first_panel) {
  T acc[MR * NR] = {};
  micro_accumulate<T, MR, NR>(kc, ap, bp, acc);
  if (mrem == MR && nrem == NR) {
    if (!first_panel) {
      for (Index j = 0; j < NR; ++j) {
        T* cj = c + j * ldc;
        const T* accj = acc + j * MR;
        for (Index i = 0; i < MR; ++i) cj[i] += accj[i];
      }
    } else if (beta == T(0)) {
      for (Index j = 0; j < NR; ++j) {
        T* cj = c + j * ldc;
        const T* accj = acc + j * MR;
        for (Index i = 0; i < MR; ++i) cj[i] = accj[i];
      }
    } else {
      for (Index j = 0; j < NR; ++j) {
        T* cj = c + j * ldc;
        const T* accj = acc + j * MR;
        for (Index i = 0; i < MR; ++i) cj[i] = beta * cj[i] + accj[i];
      }
    }
    return;
  }
  for (Index j = 0; j < nrem; ++j) {
    T* cj = c + j * ldc;
    const T* accj = acc + j * MR;
    if (!first_panel) {
      for (Index i = 0; i < mrem; ++i) cj[i] += accj[i];
    } else if (beta == T(0)) {
      for (Index i = 0; i < mrem; ++i) cj[i] = accj[i];
    } else {
      for (Index i = 0; i < mrem; ++i) cj[i] = beta * cj[i] + accj[i];
    }
  }
}

/// Macro-kernel: sweep the packed mc x kc A panel against the packed
/// kc x nc B panel, one micro-kernel call per register tile of C.
template <typename T>
inline void macro_kernel(Index mc, Index nc, Index kc, const T* pa,
                         const T* pb, T* c, Index ldc, T beta,
                         bool first_panel) {
  constexpr Index MR = MicroTile<T>::mr;
  constexpr Index NR = MicroTile<T>::nr;
  for (Index jr = 0; jr < nc; jr += NR) {
    const Index nrem = std::min<Index>(NR, nc - jr);
    const T* bpanel = pb + jr * kc;
    for (Index ir = 0; ir < mc; ir += MR) {
      const Index mrem = std::min<Index>(MR, mc - ir);
      micro_kernel<T, MR, NR>(kc, pa + ir * kc, bpanel, c + ir + jr * ldc,
                              ldc, mrem, nrem, beta, first_panel);
    }
  }
}

/// Five-loop driver. Preconditions (enforced by the gemm() dispatcher):
/// m, n, k > 0 and alpha != 0; beta is applied by the first k panel.
template <typename T>
void gemm_micro(T alpha, Op opa, ConstMatrixView<T> a, Op opb,
                ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  using Tile = MicroTile<T>;
  const Index m = c.rows();
  const Index n = c.cols();
  const Index k = op_cols(opa, a);

  auto& pool = pack_pool<T>();
  T* pa = pool.buf_a(std::size_t(round_up(Tile::mc, Tile::mr)) * Tile::kc);
  T* pb = pool.buf_b(std::size_t(round_up(Tile::nc, Tile::nr)) * Tile::kc);

  for (Index jc = 0; jc < n; jc += Tile::nc) {
    const Index nc = std::min<Index>(Tile::nc, n - jc);
    for (Index pc = 0; pc < k; pc += Tile::kc) {
      const Index kc = std::min<Index>(Tile::kc, k - pc);
      const bool first_panel = pc == 0;
      pack_b_micro<T, Tile::nr>(opb, b, pc, jc, kc, nc, alpha, pb);
      for (Index ic = 0; ic < m; ic += Tile::mc) {
        const Index mc = std::min<Index>(Tile::mc, m - ic);
        pack_a_micro<T, Tile::mr>(opa, a, ic, pc, mc, kc, pa);
        macro_kernel<T>(mc, nc, kc, pa, pb, c.data() + ic + jc * c.ld(),
                        c.ld(), beta, first_panel);
      }
    }
  }
}

}  // namespace detail

}  // namespace chase::la
