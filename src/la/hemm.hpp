// Hermitian matrix-matrix multiply: C = alpha * A * B + beta * C with A
// Hermitian — the shape of the Chebyshev filter's hot loop (H times a block
// of vectors) and of every diagonal-rank panel in the distributed HEMM.
//
// Under the `micro` kernel policy this runs a symmetry-aware variant of the
// five-loop engine (gemm_micro.hpp): only the *upper* triangle of A's
// storage is read. The symmetric dimension is tiled into kc-deep k blocks;
// for k block q the stored upper blocks supply the direct products
// C_r += A_rq B_q (r < q0) straight, the diagonal block densified, and the
// mirrored products C_r += A_qr^H B_q (r > q0) conjugate-transposed while
// packing. Because every packed A panel derives from the one triangle, A is
// packed exactly once per call and the packed panels are replayed for every
// B column panel — gemm must re-pack op(A) per column panel, and that saved
// re-pack (plus needing only one triangle valid) is the Hermitian engine's
// advantage.
//
// Per output element the contributions arrive in ascending k order through
// the same macro-kernel as gemm, so results are bitwise independent of how
// B's columns are split — the property the dist-layer overlap pipeline
// relies on. (Equality with gemm() on an exactly Hermitian operand holds to
// rounding, not bitwise: the compiler may contract the complex
// multiply-accumulates differently in the two inlined instantiations.)
//
// Under the `naive`/`blocked` policies hemm() simply forwards to gemm() so
// those oracles stay byte-for-byte the seed behaviour.
#pragma once

#include <algorithm>

#include "la/gemm.hpp"

namespace chase::la {

namespace detail {

/// Symmetric-dimension block size: the engine's k-panel depth for the type,
/// so each output row block sees exactly as many C-tile read-modify-write
/// sweeps as gemm() would use for the same k — any smaller block inflates C
/// traffic, any larger one pushes the packed pair blocks out of L2.
template <typename T>
inline constexpr Index kHemmBlock = MicroTile<T>::kc;

/// Pack the diagonal block [d0, d0+nd)^2 of Hermitian A into mr micro-panels,
/// reading only the upper triangle and mirroring conjugates below it.
template <typename T, Index MR>
inline void pack_a_herm_diag(ConstMatrixView<T> a, Index d0, Index nd,
                             T* buf) {
  for (Index p0 = 0; p0 < nd; p0 += MR) {
    const Index pr = std::min<Index>(MR, nd - p0);
    T* dst = buf + p0 * nd;
    for (Index l = 0; l < nd; ++l) {
      // Rows on/above the diagonal stream from column l; rows below it walk
      // row l of the upper triangle (stride ld) and conjugate.
      const Index up = std::clamp<Index>(l - p0 + 1, 0, pr);
      const T* src = a.col(d0 + l) + d0 + p0;
      for (Index i = 0; i < up; ++i) packed_a_store<T, MR>(dst, l, i, src[i]);
      const T* mirror = &a(d0 + l, d0 + p0 + up);
      const Index ld = a.ld();
      for (Index i = up; i < pr; ++i) {
        packed_a_store<T, MR>(dst, l, i, conjugate(mirror[(i - up) * ld]));
      }
      for (Index i = pr; i < MR; ++i) packed_a_store<T, MR>(dst, l, i, T(0));
    }
  }
}

template <typename T>
void hemm_micro(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                MatrixView<T> c) {
  using Tile = MicroTile<T>;
  constexpr Index MR = Tile::mr;
  constexpr Index NR = Tile::nr;
  constexpr Index NB = kHemmBlock<T>;
  static_assert(NB % MR == 0, "hemm block must hold whole register tiles");
  const Index n = a.rows();
  const Index ncols = c.cols();
  const Index nblocks = (n + NB - 1) / NB;

  // With more than one B column panel, A's packed panels are cached across
  // panels: both packed layouts derive from the one stored triangle, so jc
  // panel 0 packs every panel once and later panels replay the identical
  // panel sequence straight out of the cache. gemm has to re-pack op(A) for
  // every column panel; skipping that re-pack is where the Hermitian
  // engine's measured advantage comes from (on top of needing only one
  // triangle of A to be valid). The replay only pays where the micro-kernel
  // does enough arithmetic per packed byte to hide the first jr sweep's
  // trip to the cache hierarchy — complex types run four times the flops of
  // real types per packed element, so they replay while real types (whose
  // macro-kernel would stall on the cold panel reads) re-pack through one
  // small L2-hot buffer exactly like gemm's. A single column panel never
  // replays either: streaming the cold cache pages costs more than it saves.
  const bool cache_packs = kIsComplexScalar<T> && ncols > Tile::nc;
  std::size_t cache_elems = std::size_t(NB) * NB;
  if (cache_packs) {
    // Per k block q: one micro-panel run (rows padded to mr) for every mc
    // row chunk of the direct region [0, q0), the diagonal block, and the
    // mirrored region [q0+nq, n). The chunk sequence is identical on every
    // jc panel, so the offsets assigned by next_panel line up exactly.
    cache_elems = 0;
    for (Index q = 0; q < nblocks; ++q) {
      const Index q0 = q * NB;
      const Index nq = std::min<Index>(NB, n - q0);
      for (Index r0 = 0; r0 < q0; r0 += Tile::mc) {
        const Index mc = std::min<Index>(Tile::mc, q0 - r0);
        cache_elems += std::size_t(round_up(mc, MR)) * nq;
      }
      cache_elems += std::size_t(round_up(nq, MR)) * nq;
      for (Index r0 = q0 + nq; r0 < n; r0 += Tile::mc) {
        const Index mc = std::min<Index>(Tile::mc, n - r0);
        cache_elems += std::size_t(round_up(mc, MR)) * nq;
      }
    }
  }

  auto& pool = pack_pool<T>();
  T* pcache = pool.buf_a(cache_elems);

  for (Index jc = 0; jc < ncols; jc += Tile::nc) {
    const Index nc = std::min<Index>(Tile::nc, ncols - jc);
    const Index nc_pad = round_up(nc, NR);
    T* pb = pool.buf_b(std::size_t(NB) * nc_pad);

    const bool pack_now = !cache_packs || jc == 0;
    std::size_t cache_off = 0;
    auto next_panel = [&](Index rows, Index kdim) {
      if (!cache_packs) return pcache;
      T* p = pcache + cache_off;
      cache_off += std::size_t(round_up(rows, MR)) * kdim;
      return p;
    };

    // Sweep k blocks: pack B block q once (it stays L2-hot for every macro
    // sweep that consumes it) and immediately apply every contribution with
    // k block q, all sourced from the upper triangle:
    //   rows r < q0        direct products  C_r += A_rq B_q   (stored block)
    //   rows in [q0,q0+nq) diagonal         C_q += A_qq B_q   (densified)
    //   rows r >= q0+nq    mirrored         C_r += A_qr^H B_q (conj-trans)
    // The row dimension runs in the engine's mc chunks, so the live packed
    // slice keeps gemm's L2 footprint. Per output row the contributions
    // arrive in ascending k order (mirrored side for q below the row's
    // block, then the diagonal, then direct sides), and the q == 0
    // contribution — diagonal for the first row block, mirrored otherwise —
    // folds the beta scaling into its tile store.
    for (Index q = 0; q < nblocks; ++q) {
      const Index q0 = q * NB;
      const Index nq = std::min<Index>(NB, n - q0);
      pack_b_micro<T, NR>(Op::kNoTrans, b, q0, jc, nq, nc, alpha, pb);
      for (Index r0 = 0; r0 < q0; r0 += Tile::mc) {
        const Index mc = std::min<Index>(Tile::mc, q0 - r0);
        T* pa = next_panel(mc, nq);
        if (pack_now) pack_a_micro<T, MR>(Op::kNoTrans, a, r0, q0, mc, nq, pa);
        macro_kernel<T>(mc, nc, nq, pa, pb, c.data() + r0 + jc * c.ld(),
                        c.ld(), T(1), /*first_panel=*/false);
      }
      {
        T* pa = next_panel(nq, nq);
        if (pack_now) pack_a_herm_diag<T, MR>(a, q0, nq, pa);
        for (Index ic = 0; ic < nq; ic += Tile::mc) {
          const Index mc = std::min<Index>(Tile::mc, nq - ic);
          macro_kernel<T>(mc, nc, nq, pa + ic * nq, pb,
                          c.data() + q0 + ic + jc * c.ld(), c.ld(), beta,
                          /*first_panel=*/q == 0);
        }
      }
      for (Index r0 = q0 + nq; r0 < n; r0 += Tile::mc) {
        const Index mc = std::min<Index>(Tile::mc, n - r0);
        T* pa = next_panel(mc, nq);
        if (pack_now) {
          pack_a_micro<T, MR>(Op::kConjTrans, a, r0, q0, mc, nq, pa);
        }
        macro_kernel<T>(mc, nc, nq, pa, pb, c.data() + r0 + jc * c.ld(),
                        c.ld(), beta, /*first_panel=*/q == 0);
      }
    }
  }
}

}  // namespace detail

/// C = alpha * A * B + beta * C with A Hermitian (full storage; under the
/// micro policy only the upper triangle is read — see the header comment).
template <typename T>
void hemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
          MatrixView<T> c) {
  const Index n = a.rows();
  CHASE_CHECK_MSG(a.cols() == n, "hemm: A must be square");
  CHASE_CHECK_MSG(b.rows() == n, "hemm: inner dimensions differ");
  CHASE_CHECK_MSG(c.rows() == n && c.cols() == b.cols(),
                  "hemm: output shape");
  if (n == 0 || c.cols() == 0) return;
  if (alpha == T(0)) {
    detail::scale_tile(beta, n, c.cols(), c.data(), c.ld());
    return;
  }
  if (gemm_kernel_for(scalar_tag<T>(), n, c.cols(), n) != GemmKernel::kMicro) {
    // Non-micro effective policies read the full storage through the plain
    // engine (shape-aware, so a tuned profile routes small products the same
    // way an explicit override would).
    gemm(alpha, Op::kNoTrans, a, Op::kNoTrans, b, beta, c);
    return;
  }
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  detail::hemm_micro(alpha, a, b, beta, c);
  if (tracked) {
    detail::record_gemm_call("la.kernel.hemm.calls",
                             sizeof(RealType<T>) == 4,
                             detail::gemm_flop_count<T>(n, c.cols(), n),
                             timer.seconds());
  }
}

}  // namespace chase::la
