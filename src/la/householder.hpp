// Elementary Householder reflector generation and application (LAPACK
// zlarfg/zlarf equivalents), shared by the QR factorizations and the
// Hermitian tridiagonalization.
#pragma once

#include <cmath>

#include "la/blas1.hpp"
#include "la/matrix.hpp"

namespace chase::la {

/// Generate an elementary reflector H = I - tau * v v^H such that
/// H^H * [alpha; x] = [beta; 0], with v = [1; v_tail] and beta real.
///
/// On entry `alpha` is the pivot element and x points to the n-1 tail
/// elements. On exit x holds v_tail, and beta (real) plus tau are returned.
/// Follows the LAPACK zlarfg construction, so beta is always real — which is
/// what makes the Hermitian tridiagonal form real-valued for complex input.
template <typename T>
struct Reflector {
  RealType<T> beta;
  T tau;
};

template <typename T>
Reflector<T> larfg(T& alpha, Index n_tail, T* x) {
  using R = RealType<T>;
  const R xnorm = nrm2(n_tail, x);
  const R alphr = real_part(alpha);
  const R alphi = imag_part(alpha);

  if (xnorm == R(0) && alphi == R(0)) {
    // Already in the desired form; H = I.
    return {alphr, T(0)};
  }

  // beta takes the sign opposite to Re(alpha) so that alpha - beta never
  // cancels (LAPACK zlarfg convention).
  const R norm = std::hypot(std::hypot(alphr, alphi), xnorm);
  const R beta = (alphr >= R(0)) ? -norm : norm;

  T tau;
  if constexpr (kIsComplex<T>) {
    tau = T((beta - alphr) / beta, -alphi / beta);
  } else {
    tau = (beta - alphr) / beta;
  }
  const T inv = T(1) / (alpha - T(beta));
  scal(n_tail, inv, x);
  alpha = T(beta);
  return {beta, tau};
}

/// Apply H = I - tau v v^H from the left to C (m x n), with v = [1; v_tail]
/// of length m. work must hold n scalars.
template <typename T>
void larf_left(T tau, const T* v_tail, Index m, MatrixView<T> c, T* work) {
  if (tau == T(0) || c.cols() == 0) return;
  CHASE_CHECK(c.rows() == m);
  const Index n = c.cols();
  // work = v^H C
  for (Index j = 0; j < n; ++j) {
    T acc = c(0, j);
    const T* cj = c.col(j);
    for (Index i = 1; i < m; ++i) acc += conjugate(v_tail[i - 1]) * cj[i];
    work[j] = acc;
  }
  // C -= tau * v * work^T
  for (Index j = 0; j < n; ++j) {
    T* cj = c.col(j);
    const T f = tau * work[j];
    cj[0] -= f;
    for (Index i = 1; i < m; ++i) cj[i] -= f * v_tail[i - 1];
  }
}

/// Apply H = I - tau v v^H from the right to C (m x n), with v = [1; v_tail]
/// of length n: C <- C - tau (C v) v^H. work must hold m scalars.
template <typename T>
void larf_right(T tau, const T* v_tail, Index n, MatrixView<T> c, T* work) {
  if (tau == T(0) || c.rows() == 0) return;
  CHASE_CHECK(c.cols() == n);
  const Index m = c.rows();
  // work = C v
  for (Index i = 0; i < m; ++i) work[i] = c(i, 0);
  for (Index j = 1; j < n; ++j) {
    const T vj = v_tail[j - 1];
    const T* cj = c.col(j);
    for (Index i = 0; i < m; ++i) work[i] += cj[i] * vj;
  }
  // C -= tau * work * v^H
  {
    T* c0 = c.col(0);
    for (Index i = 0; i < m; ++i) c0[i] -= tau * work[i];
  }
  for (Index j = 1; j < n; ++j) {
    const T f = tau * conjugate(v_tail[j - 1]);
    T* cj = c.col(j);
    for (Index i = 0; i < m; ++i) cj[i] -= f * work[i];
  }
}

}  // namespace chase::la
