// Matrix I/O: a simple binary container plus MatrixMarket interchange.
//
// The application matrices ChASE consumes (FLEUR Hamiltonians, BSE blocks)
// arrive as files; these routines let the examples and the CLI solve from
// disk. The binary format is a 40-byte header (magic, dtype, rows, cols)
// followed by column-major data — the layout ChASE's own test drivers use.
// MatrixMarket covers interchange with other tools (dense `array` format,
// real or complex, general or hermitian symmetry).
#pragma once

#include <complex>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "la/matrix.hpp"

namespace chase::la {

namespace detail {

template <typename T>
struct DtypeCode;
template <>
struct DtypeCode<float> {
  static constexpr std::uint32_t value = 1;
};
template <>
struct DtypeCode<double> {
  static constexpr std::uint32_t value = 2;
};
template <>
struct DtypeCode<std::complex<float>> {
  static constexpr std::uint32_t value = 3;
};
template <>
struct DtypeCode<std::complex<double>> {
  static constexpr std::uint32_t value = 4;
};

inline constexpr std::uint32_t kMagic = 0x43484153;  // "CHAS"

}  // namespace detail

/// Write a matrix to the binary container format.
template <typename T>
void save_binary(ConstMatrixView<T> a, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  CHASE_CHECK_MSG(out.good(), "cannot open " + path + " for writing");
  const std::uint32_t magic = detail::kMagic;
  const std::uint32_t dtype = detail::DtypeCode<T>::value;
  const std::int64_t rows = a.rows();
  const std::int64_t cols = a.cols();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&dtype), sizeof(dtype));
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  for (Index j = 0; j < a.cols(); ++j) {
    out.write(reinterpret_cast<const char*>(a.col(j)),
              std::streamsize(sizeof(T)) * a.rows());
  }
  CHASE_CHECK_MSG(out.good(), "short write to " + path);
}

/// Read a matrix from the binary container format (type must match).
template <typename T>
Matrix<T> load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CHASE_CHECK_MSG(in.good(), "cannot open " + path);
  std::uint32_t magic = 0, dtype = 0;
  std::int64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&dtype), sizeof(dtype));
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  CHASE_CHECK_MSG(in.good() && magic == detail::kMagic,
                  path + " is not a chase binary matrix");
  CHASE_CHECK_MSG(dtype == detail::DtypeCode<T>::value,
                  path + ": stored scalar type differs from the requested one");
  CHASE_CHECK_MSG(rows >= 0 && cols >= 0, "corrupt header in " + path);
  Matrix<T> a(rows, cols);
  in.read(reinterpret_cast<char*>(a.data()),
          std::streamsize(sizeof(T)) * rows * cols);
  CHASE_CHECK_MSG(in.good() || (rows * cols == 0), "short read from " + path);
  return a;
}

/// Write a dense MatrixMarket file (`array` format). Hermitian matrices may
/// be written with `hermitian` symmetry (lower triangle only).
template <typename T>
void save_matrix_market(ConstMatrixView<T> a, const std::string& path,
                        bool hermitian = false) {
  CHASE_CHECK(!hermitian || a.rows() == a.cols());
  std::ofstream out(path);
  CHASE_CHECK_MSG(out.good(), "cannot open " + path + " for writing");
  out << "%%MatrixMarket matrix array "
      << (kIsComplex<T> ? "complex " : "real ")
      << (hermitian ? (kIsComplex<T> ? "hermitian" : "symmetric")
                    : "general")
      << "\n";
  out.precision(17);
  out << a.rows() << " " << a.cols() << "\n";
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = hermitian ? j : 0; i < a.rows(); ++i) {
      if constexpr (kIsComplex<T>) {
        out << real_part(a(i, j)) << " " << imag_part(a(i, j)) << "\n";
      } else {
        out << a(i, j) << "\n";
      }
    }
  }
  CHASE_CHECK_MSG(out.good(), "short write to " + path);
}

/// Read a dense MatrixMarket `array` file into a full matrix (symmetric /
/// hermitian storage is expanded).
template <typename T>
Matrix<T> load_matrix_market(const std::string& path) {
  using R = RealType<T>;
  std::ifstream in(path);
  CHASE_CHECK_MSG(in.good(), "cannot open " + path);
  std::string header;
  std::getline(in, header);
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  CHASE_CHECK_MSG(banner == "%%MatrixMarket" && object == "matrix" &&
                      format == "array",
                  path + ": expected a dense MatrixMarket array file");
  const bool file_complex = field == "complex";
  CHASE_CHECK_MSG(file_complex == kIsComplex<T>,
                  path + ": scalar field does not match the requested type");
  const bool sym = symmetry == "hermitian" || symmetry == "symmetric";

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream ds(line);
  Index rows = 0, cols = 0;
  ds >> rows >> cols;
  CHASE_CHECK_MSG(rows > 0 && cols > 0, path + ": bad dimension line");
  CHASE_CHECK(!sym || rows == cols);

  Matrix<T> a(rows, cols);
  for (Index j = 0; j < cols; ++j) {
    for (Index i = sym ? j : 0; i < rows; ++i) {
      R re = 0, im = 0;
      in >> re;
      if (file_complex) in >> im;
      CHASE_CHECK_MSG(!in.fail(), path + ": truncated data section");
      T value;
      if constexpr (kIsComplex<T>) {
        value = T(re, im);
      } else {
        value = re;
      }
      a(i, j) = value;
      if (sym && i != j) a(j, i) = conjugate(value);
    }
  }
  return a;
}

}  // namespace chase::la
