// One-sided Jacobi SVD for tall matrices.
//
// Used to compute the exact l2 condition number kappa_2(C) of the filtered
// vectors — the reference value the paper's Figure 1 compares the Algorithm-5
// estimator against (the paper uses LAPACK SVD on the gathered matrix).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "la/blas1.hpp"
#include "la/matrix.hpp"

namespace chase::la {

/// Singular values of X (m x n, m >= n), descending. X is overwritten with
/// U * diag(sigma) (i.e. its columns are rotated until mutually orthogonal).
template <typename T>
std::vector<RealType<T>> singular_values_jacobi(MatrixView<T> x,
                                                int max_sweeps = 40) {
  using R = RealType<T>;
  const Index m = x.rows();
  const Index n = x.cols();
  CHASE_CHECK_MSG(m >= n, "one-sided Jacobi expects a tall matrix");
  const R eps = std::numeric_limits<R>::epsilon();
  const R tol = std::sqrt(R(m)) * eps;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const R app = nrm2_squared(m, x.col(p));
        const R aqq = nrm2_squared(m, x.col(q));
        const T apq = dotc(m, x.col(p), x.col(q));
        const R off = abs_value(apq);
        if (off <= tol * std::sqrt(app * aqq) || off == R(0)) continue;
        rotated = true;

        // Complex one-sided Jacobi: x_q is de-phased so the 2x2 Gram block
        // becomes real symmetric, then the classic real rotation that
        // annihilates its off-diagonal entry is applied.
        const T phase = apq / T(off);
        const R zeta = (aqq - app) / (R(2) * off);
        const R t = std::copysign(R(1), zeta) /
                    (std::abs(zeta) + std::sqrt(R(1) + zeta * zeta));
        const R c = R(1) / std::sqrt(R(1) + t * t);
        const R s = c * t;

        T* xp = x.col(p);
        T* xq = x.col(q);
        const T cphase = conjugate(phase);
        for (Index i = 0; i < m; ++i) {
          const T vp = xp[i];
          const T vq = xq[i];
          xp[i] = T(c) * vp - T(s) * (cphase * vq);
          xq[i] = T(s) * (phase * vp) + T(c) * vq;
        }
      }
    }
    if (!rotated) break;
  }

  std::vector<R> sigma(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    sigma[std::size_t(j)] = nrm2(m, x.col(j));
  }
  std::sort(sigma.begin(), sigma.end(), std::greater<R>());
  return sigma;
}

/// l2 condition number sigma_max / sigma_min of a copy of X.
template <typename T>
RealType<T> cond2(ConstMatrixView<T> x) {
  using R = RealType<T>;
  Matrix<T> work = clone(x);
  auto sigma = singular_values_jacobi(work.view());
  const R smin = sigma.back();
  if (smin == R(0)) return std::numeric_limits<R>::infinity();
  return sigma.front() / smin;
}

}  // namespace chase::la
