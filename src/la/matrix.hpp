// Column-major dense matrix container and non-owning views.
//
// Every kernel in src/la, src/qr and src/core operates on these views, which
// mirror the (pointer, leading-dimension) convention of BLAS/LAPACK so the
// code reads like the library calls it replaces (cuBLAS/MKL in the paper).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/scalar.hpp"

namespace chase::la {

using Index = std::int64_t;

template <typename T>
class MatrixView;

/// Non-owning read-only view of a column-major matrix block.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, Index rows, Index cols, Index ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    CHASE_CHECK(rows >= 0 && cols >= 0 && ld >= std::max<Index>(rows, 1));
  }

  const T* data() const noexcept { return data_; }
  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }
  Index ld() const noexcept { return ld_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  const T& operator()(Index i, Index j) const noexcept {
    return data_[i + j * ld_];
  }

  /// Sub-block of size nr x nc with top-left corner (r0, c0).
  ConstMatrixView block(Index r0, Index c0, Index nr, Index nc) const {
    CHASE_CHECK(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_);
    return ConstMatrixView(data_ + r0 + c0 * ld_, nr, nc, ld_);
  }

  ConstMatrixView cols_range(Index c0, Index nc) const {
    return block(0, c0, rows_, nc);
  }

  const T* col(Index j) const noexcept { return data_ + j * ld_; }

 private:
  const T* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
  Index ld_ = 1;
};

/// Non-owning mutable view of a column-major matrix block.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, Index rows, Index cols, Index ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    CHASE_CHECK(rows >= 0 && cols >= 0 && ld >= std::max<Index>(rows, 1));
  }

  T* data() const noexcept { return data_; }
  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }
  Index ld() const noexcept { return ld_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  T& operator()(Index i, Index j) const noexcept { return data_[i + j * ld_]; }

  MatrixView block(Index r0, Index c0, Index nr, Index nc) const {
    CHASE_CHECK(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_);
    return MatrixView(data_ + r0 + c0 * ld_, nr, nc, ld_);
  }

  MatrixView cols_range(Index c0, Index nc) const {
    return block(0, c0, rows_, nc);
  }

  T* col(Index j) const noexcept { return data_ + j * ld_; }

  operator ConstMatrixView<T>() const noexcept {
    return ConstMatrixView<T>(data_, rows_, cols_, ld_);
  }
  ConstMatrixView<T> as_const() const noexcept { return *this; }

 private:
  T* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
  Index ld_ = 1;
};

/// Owning column-major matrix (leading dimension == rows).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols) : rows_(rows), cols_(cols) {
    CHASE_CHECK(rows >= 0 && cols >= 0);
    storage_.assign(std::size_t(rows) * std::size_t(cols), T(0));
  }

  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }
  Index ld() const noexcept { return std::max<Index>(rows_, 1); }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  T* data() noexcept { return storage_.data(); }
  const T* data() const noexcept { return storage_.data(); }

  T& operator()(Index i, Index j) noexcept { return storage_[i + j * ld()]; }
  const T& operator()(Index i, Index j) const noexcept {
    return storage_[i + j * ld()];
  }

  T* col(Index j) noexcept { return data() + j * ld(); }
  const T* col(Index j) const noexcept { return data() + j * ld(); }

  MatrixView<T> view() noexcept {
    return MatrixView<T>(data(), rows_, cols_, ld());
  }
  ConstMatrixView<T> view() const noexcept {
    return ConstMatrixView<T>(data(), rows_, cols_, ld());
  }
  ConstMatrixView<T> cview() const noexcept { return view(); }

  MatrixView<T> block(Index r0, Index c0, Index nr, Index nc) {
    return view().block(r0, c0, nr, nc);
  }
  ConstMatrixView<T> block(Index r0, Index c0, Index nr, Index nc) const {
    return view().block(r0, c0, nr, nc);
  }

  void set_zero() { std::fill(storage_.begin(), storage_.end(), T(0)); }

  void resize(Index rows, Index cols) {
    CHASE_CHECK(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    storage_.assign(std::size_t(rows) * std::size_t(cols), T(0));
  }

 private:
  std::vector<T> storage_;
  Index rows_ = 0;
  Index cols_ = 0;
};

/// Deep copy src into dst (shapes must match, leading dimensions may differ).
template <typename T>
void copy(ConstMatrixView<T> src, MatrixView<T> dst) {
  CHASE_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  for (Index j = 0; j < src.cols(); ++j) {
    std::copy(src.col(j), src.col(j) + src.rows(), dst.col(j));
  }
}

template <typename T>
Matrix<T> clone(ConstMatrixView<T> src) {
  Matrix<T> out(src.rows(), src.cols());
  copy(src, out.view());
  return out;
}

/// dst = I (rectangular identity).
template <typename T>
void set_identity(MatrixView<T> dst) {
  for (Index j = 0; j < dst.cols(); ++j) {
    for (Index i = 0; i < dst.rows(); ++i) dst(i, j) = (i == j) ? T(1) : T(0);
  }
}

template <typename T>
void set_zero(MatrixView<T> dst) {
  for (Index j = 0; j < dst.cols(); ++j) {
    std::fill(dst.col(j), dst.col(j) + dst.rows(), T(0));
  }
}

/// Conjugate transpose (plain transpose for real T): dst = op(src)^H.
template <typename T>
void conj_transpose(ConstMatrixView<T> src, MatrixView<T> dst) {
  CHASE_CHECK(src.rows() == dst.cols() && src.cols() == dst.rows());
  for (Index j = 0; j < src.cols(); ++j) {
    for (Index i = 0; i < src.rows(); ++i) dst(j, i) = conjugate(src(i, j));
  }
}

}  // namespace chase::la
