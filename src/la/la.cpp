// Explicit instantiations of the heavyweight templated kernels for the four
// scalar types ChASE supports, so downstream targets link against compiled
// code instead of re-instantiating per translation unit.
#include <complex>

#include "la/gemm.hpp"
#include "la/heevd.hpp"
#include "la/norms.hpp"
#include "la/potrf.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "la/trsm.hpp"

namespace chase::la {

#define CHASE_INSTANTIATE_LA(T)                                               \
  template void gemm<T>(T, Op, ConstMatrixView<T>, Op, ConstMatrixView<T>, T, \
                        MatrixView<T>);                                       \
  template void gram<T>(ConstMatrixView<T>, MatrixView<T>);                   \
  template void herk_upper<T>(T, ConstMatrixView<T>, T, MatrixView<T>);       \
  template int potrf_upper<T>(MatrixView<T>, RealType<T>);                    \
  template void trsm_right_upper<T>(ConstMatrixView<T>, MatrixView<T>);       \
  template void trsm_left_lower<T>(ConstMatrixView<T>, MatrixView<T>);        \
  template void trsm_left_upper_conj<T>(ConstMatrixView<T>, MatrixView<T>);   \
  template void trmm_right_upper<T>(ConstMatrixView<T>, MatrixView<T>);       \
  template void trmm_left_upper<T>(ConstMatrixView<T>, MatrixView<T>);        \
  template void trmm_left_upper_conj<T>(ConstMatrixView<T>, MatrixView<T>);   \
  template void geqrf<T>(MatrixView<T>, std::vector<T>&);                     \
  template void ungqr<T>(MatrixView<T>, const std::vector<T>&);               \
  template void heevd<T>(MatrixView<T>, std::vector<RealType<T>>&,            \
                         MatrixView<T>);                                      \
  template std::vector<RealType<T>> singular_values_jacobi<T>(MatrixView<T>,  \
                                                              int);           \
  template RealType<T> orthogonality_error<T>(ConstMatrixView<T>);

CHASE_INSTANTIATE_LA(float)
CHASE_INSTANTIATE_LA(double)
CHASE_INSTANTIATE_LA(std::complex<float>)
CHASE_INSTANTIATE_LA(std::complex<double>)

#undef CHASE_INSTANTIATE_LA

}  // namespace chase::la
