// fp64 <-> fp32 conversion helpers for the mixed-precision filter pipeline.
//
// The mixed backend (core/dla_mixed.hpp) keeps a low-precision shadow of H
// and of the active subspace panel; these helpers define the precision pair
// (LowPrecision<T>) and the demote/promote copies between the two storages.
// Demotion is a plain narrowing cast per element: values below the fp32
// normal range land on denormals or +-0, values above it on +-inf, and NaNs
// propagate — all of which the solver's existing consensus guard and the
// promotion policy handle (a non-finite filtered column is re-randomized,
// a stalled one is promoted back to fp64). Promotion is exact.
#pragma once

#include <complex>

#include "common/check.hpp"
#include "la/matrix.hpp"

namespace chase::la {

/// The low-precision partner of a working scalar type: float for double,
/// complex<float> for complex<double>. Single-precision types are their own
/// partner (a "mixed" solve over fp32 data has nothing lower to drop to;
/// the driver gates on this).
template <typename T>
struct LowPrecisionOf {
  using type = T;
};
template <>
struct LowPrecisionOf<double> {
  using type = float;
};
template <>
struct LowPrecisionOf<std::complex<double>> {
  using type = std::complex<float>;
};

template <typename T>
using LowPrecision = typename LowPrecisionOf<T>::type;

/// True when T actually has a lower precision to demote into.
template <typename T>
inline constexpr bool kHasLowPrecision =
    !std::is_same_v<T, LowPrecision<T>>;

/// Narrow one scalar to the low-precision partner type.
inline float demote_value(double x) { return float(x); }
inline std::complex<float> demote_value(std::complex<double> x) {
  return {float(x.real()), float(x.imag())};
}

/// Widen one scalar back; exact (every fp32 value is representable in fp64).
inline double promote_value(float x) { return double(x); }
inline std::complex<double> promote_value(std::complex<float> x) {
  return {double(x.real()), double(x.imag())};
}

/// Elementwise narrowing copy src -> dst (equal shapes).
template <typename T>
void demote(ConstMatrixView<T> src, MatrixView<LowPrecision<T>> dst) {
  CHASE_CHECK_MSG(src.rows() == dst.rows() && src.cols() == dst.cols(),
                  "demote: shape mismatch");
  for (Index j = 0; j < src.cols(); ++j) {
    const T* s = src.col(j);
    LowPrecision<T>* d = dst.col(j);
    for (Index i = 0; i < src.rows(); ++i) d[i] = demote_value(s[i]);
  }
}

/// Elementwise widening copy src -> dst (equal shapes); exact.
template <typename T>
void promote(ConstMatrixView<LowPrecision<T>> src, MatrixView<T> dst) {
  CHASE_CHECK_MSG(src.rows() == dst.rows() && src.cols() == dst.cols(),
                  "promote: shape mismatch");
  for (Index j = 0; j < src.cols(); ++j) {
    const LowPrecision<T>* s = src.col(j);
    T* d = dst.col(j);
    for (Index i = 0; i < src.rows(); ++i) d[i] = promote_value(s[i]);
  }
}

}  // namespace chase::la
