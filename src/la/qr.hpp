// Sequential Householder QR factorization (LAPACK geqrf/ungqr equivalents).
//
// Used (a) as the per-rank building block of the distributed ScaLAPACK-style
// HHQR that ChASE falls back to when shifted CholeskyQR2 fails (Algorithm 4,
// line 9), and (b) to draw Haar-distributed orthonormal matrices for the
// artificial test-matrix generator (Section 4.1.2).
#pragma once

#include <vector>

#include "la/householder.hpp"
#include "la/matrix.hpp"

namespace chase::la {

/// In-place unblocked Householder QR of an m x n matrix (m >= n).
/// On exit the upper triangle holds R, the lower part the reflector tails,
/// and tau[0..n) the reflector scales.
template <typename T>
void geqrf(MatrixView<T> a, std::vector<T>& tau) {
  const Index m = a.rows();
  const Index n = a.cols();
  CHASE_CHECK_MSG(m >= n, "geqrf expects a tall matrix");
  tau.assign(std::size_t(n), T(0));
  std::vector<T> work(static_cast<std::size_t>(n));
  for (Index k = 0; k < n; ++k) {
    T alpha = a(k, k);
    auto refl = larfg(alpha, m - k - 1, a.col(k) + k + 1);
    a(k, k) = alpha;
    tau[std::size_t(k)] = refl.tau;
    if (k + 1 < n) {
      // The trailing matrix is updated with H^H = I - conj(tau) v v^H so that
      // A = Q R with Q = H_0 H_1 ... H_{n-1} (LAPACK zgeqr2 convention).
      auto trailing = a.block(k, k + 1, m - k, n - k - 1);
      larf_left(conjugate(refl.tau), a.col(k) + k + 1, m - k, trailing,
                work.data());
    }
  }
}

/// Form the thin Q factor (m x n) from the output of geqrf.
template <typename T>
void ungqr(MatrixView<T> a, const std::vector<T>& tau) {
  const Index m = a.rows();
  const Index n = a.cols();
  CHASE_CHECK(Index(tau.size()) == n);
  std::vector<T> work(static_cast<std::size_t>(n));
  // Backward accumulation: Q = H_0 ... H_{n-1} * I_{m x n}.
  // Save reflector tails, then overwrite with identity columns.
  std::vector<std::vector<T>> tails(static_cast<std::size_t>(n));
  for (Index k = 0; k < n; ++k) {
    tails[std::size_t(k)].assign(a.col(k) + k + 1, a.col(k) + m);
  }
  set_zero(a);
  for (Index j = 0; j < n; ++j) a(j, j) = T(1);
  for (Index k = n - 1; k >= 0; --k) {
    auto trailing = a.block(k, k, m - k, n - k);
    larf_left(tau[std::size_t(k)], tails[std::size_t(k)].data(), m - k,
              trailing, work.data());
  }
}

/// Convenience: factor X = QR, overwriting X with the thin Q and writing the
/// n x n upper-triangular R into `r` (which must be n x n).
template <typename T>
void householder_qr(MatrixView<T> x, MatrixView<T> r) {
  const Index n = x.cols();
  CHASE_CHECK(r.rows() == n && r.cols() == n);
  std::vector<T> tau;
  geqrf(x, tau);
  set_zero(r);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) r(i, j) = x(i, j);
  }
  ungqr(x, tau);
}

/// Convenience: orthonormalize X in place (discard R).
template <typename T>
void householder_orthonormalize(MatrixView<T> x) {
  std::vector<T> tau;
  geqrf(x, tau);
  ungqr(x, tau);
}

}  // namespace chase::la
