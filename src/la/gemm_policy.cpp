#include "la/gemm_policy.hpp"

#include <atomic>
#include <cstdlib>

// Build-time default policy, plumbed through the CMake cache variable
// CHASE_DEFAULT_GEMM_KERNEL (CMakePresets.json).
#ifndef CHASE_GEMM_DEFAULT_KERNEL
#define CHASE_GEMM_DEFAULT_KERNEL "micro"
#endif

namespace chase::la {

namespace {

std::atomic<int>& kernel_slot() {
  static std::atomic<int> slot = [] {
    GemmKernel k = parse_gemm_kernel(CHASE_GEMM_DEFAULT_KERNEL)
                       .value_or(GemmKernel::kMicro);
    if (const char* env = std::getenv("CHASE_GEMM_KERNEL")) {
      if (auto parsed = parse_gemm_kernel(env)) k = *parsed;
    }
    return std::atomic<int>(int(k));
  }();
  return slot;
}

}  // namespace

std::string_view gemm_kernel_name(GemmKernel k) {
  switch (k) {
    case GemmKernel::kNaive:
      return "naive";
    case GemmKernel::kBlocked:
      return "blocked";
    case GemmKernel::kMicro:
    default:
      return "micro";
  }
}

std::string_view gemm_kernel_counter(GemmKernel k) {
  switch (k) {
    case GemmKernel::kNaive:
      return "la.kernel.naive.calls";
    case GemmKernel::kBlocked:
      return "la.kernel.blocked.calls";
    case GemmKernel::kMicro:
    default:
      return "la.kernel.micro.calls";
  }
}

std::optional<GemmKernel> parse_gemm_kernel(std::string_view name) {
  if (name == "naive") return GemmKernel::kNaive;
  if (name == "blocked") return GemmKernel::kBlocked;
  if (name == "micro") return GemmKernel::kMicro;
  return std::nullopt;
}

GemmKernel gemm_kernel() {
  return GemmKernel(kernel_slot().load(std::memory_order_relaxed));
}

void set_gemm_kernel(GemmKernel k) {
  kernel_slot().store(int(k), std::memory_order_relaxed);
}

}  // namespace chase::la
