#include "la/gemm_policy.hpp"

#include <atomic>
#include <cstdlib>

// Build-time default policy, plumbed through the CMake cache variable
// CHASE_DEFAULT_GEMM_KERNEL (CMakePresets.json).
#ifndef CHASE_GEMM_DEFAULT_KERNEL
#define CHASE_GEMM_DEFAULT_KERNEL "micro"
#endif

namespace chase::la {

namespace {

constexpr int kNoOverride = -1;

GemmKernel build_default_kernel() {
  return parse_gemm_kernel(CHASE_GEMM_DEFAULT_KERNEL)
      .value_or(GemmKernel::kMicro);
}

// Explicit override slot: kNoOverride until the CHASE_GEMM_KERNEL env var
// (read once, at first use) or set_gemm_kernel() pins a kernel.
std::atomic<int>& override_slot() {
  static std::atomic<int> slot = [] {
    int raw = kNoOverride;
    if (const char* env = std::getenv("CHASE_GEMM_KERNEL")) {
      if (auto parsed = parse_gemm_kernel(env)) raw = int(*parsed);
    }
    return std::atomic<int>(raw);
  }();
  return slot;
}

}  // namespace

std::string_view gemm_kernel_name(GemmKernel k) {
  switch (k) {
    case GemmKernel::kNaive:
      return "naive";
    case GemmKernel::kBlocked:
      return "blocked";
    case GemmKernel::kMicro:
    default:
      return "micro";
  }
}

std::string_view gemm_kernel_counter(GemmKernel k) {
  switch (k) {
    case GemmKernel::kNaive:
      return "la.kernel.naive.calls";
    case GemmKernel::kBlocked:
      return "la.kernel.blocked.calls";
    case GemmKernel::kMicro:
    default:
      return "la.kernel.micro.calls";
  }
}

std::optional<GemmKernel> parse_gemm_kernel(std::string_view name) {
  if (name == "naive") return GemmKernel::kNaive;
  if (name == "blocked") return GemmKernel::kBlocked;
  if (name == "micro") return GemmKernel::kMicro;
  return std::nullopt;
}

GemmKernel gemm_kernel() {
  const int raw = override_slot().load(std::memory_order_relaxed);
  return raw == kNoOverride ? build_default_kernel() : GemmKernel(raw);
}

void set_gemm_kernel(GemmKernel k) {
  override_slot().store(int(k), std::memory_order_relaxed);
}

bool gemm_kernel_overridden() {
  return override_slot().load(std::memory_order_relaxed) != kNoOverride;
}

int raw_gemm_kernel_override() {
  return override_slot().load(std::memory_order_relaxed);
}

void set_raw_gemm_kernel_override(int raw) {
  override_slot().store(raw, std::memory_order_relaxed);
}

GemmKernel gemm_kernel_for(perf::ScalarTag tag, Index m, Index n, Index k) {
  const int raw = override_slot().load(std::memory_order_relaxed);
  if (raw != kNoOverride) return GemmKernel(raw);
  if (const perf::TunedTables* t = perf::tuned_tables()) {
    const perf::NClass cls =
        perf::gemm_n_class(double(m), double(n), double(k));
    const int tuned = t->gemm_kernel[int(tag)][int(cls)];
    if (tuned >= 0) return GemmKernel(tuned);
  }
  return build_default_kernel();
}

}  // namespace chase::la
