// General matrix-matrix multiply and the Hermitian rank-k update, the
// computational workhorses of ChASE (Filter, Rayleigh-Ritz, Residuals,
// CholeskyQR Gram matrices all reduce to these kernels).
//
// gemm() is a policy-dispatched engine (CHASE_GEMM_KERNEL, gemm_policy.hpp):
//
//   naive   — unblocked triple loop, the reference oracle;
//   blocked — the seed path: L2 cache blocking, packed operand panels,
//             two-way-unrolled rank-1-update inner kernel;
//   micro   — five-loop BLIS-style engine with a register-tiled mr x nr
//             micro-kernel over packed micro-panels (gemm_micro.hpp).
//
// All three fold the beta pre-scale of C into the first k-panel pass instead
// of a separate full sweep, and the packing paths draw from a per-thread
// reusable buffer pool, so the filter's inner HEMM loop neither re-reads C
// an extra time nor allocates per call. Every call records its flop count,
// wall time and kernel choice on the thread's perf::Tracker ("la.gemm.flops",
// "la.gemm.seconds", "la.kernel.<name>.calls") — the measured Gflop/s feed
// the machine-model calibration (perf::calibrate_gemm_rate).
#pragma once

#include <vector>

#include "common/timer.hpp"
#include "la/blas1.hpp"
#include "la/gemm_micro.hpp"
#include "la/gemm_policy.hpp"
#include "la/matrix.hpp"
#include "perf/tracker.hpp"

namespace chase::la {

namespace detail {

// Blocking parameters of the seed `blocked` path: a (kc x nc) panel of B
// plus an (mc x kc) panel of A stay resident in L2 while the inner kernel
// streams C.
inline constexpr Index kBlockM = 192;
inline constexpr Index kBlockN = 96;
inline constexpr Index kBlockK = 224;

/// Pack block [r0, r0+nr) x [c0, c0+nc) of op(A) column-major into buf.
template <typename T>
inline void pack_block(Op op, ConstMatrixView<T> a, Index r0, Index c0,
                       Index nr, Index nc, T* buf) {
  if (op == Op::kNoTrans) {
    for (Index j = 0; j < nc; ++j) {
      const T* src = a.col(c0 + j) + r0;
      T* dst = buf + j * nr;
      for (Index i = 0; i < nr; ++i) dst[i] = src[i];
    }
  } else if (op == Op::kTrans) {
    for (Index j = 0; j < nc; ++j) {
      T* dst = buf + j * nr;
      for (Index i = 0; i < nr; ++i) dst[i] = a(c0 + j, r0 + i);
    }
  } else {
    for (Index j = 0; j < nc; ++j) {
      T* dst = buf + j * nr;
      for (Index i = 0; i < nr; ++i) dst[i] = conjugate(a(c0 + j, r0 + i));
    }
  }
}

/// C(mc x nc) += packed A(mc x kc) * packed B(kc x nc); unit-stride in i.
template <typename T>
inline void kernel_nn(Index mc, Index nc, Index kc, const T* pa, const T* pb,
                      T* c, Index ldc) {
  for (Index j = 0; j < nc; ++j) {
    T* cj = c + j * ldc;
    const T* bj = pb + j * kc;
    Index l = 0;
    // Two-way unrolled rank-1 updates amortize the column reload of C.
    for (; l + 1 < kc; l += 2) {
      const T b0 = bj[l];
      const T b1 = bj[l + 1];
      const T* a0 = pa + l * mc;
      const T* a1 = pa + (l + 1) * mc;
      for (Index i = 0; i < mc; ++i) cj[i] += a0[i] * b0 + a1[i] * b1;
    }
    for (; l < kc; ++l) {
      const T b0 = bj[l];
      const T* a0 = pa + l * mc;
      for (Index i = 0; i < mc; ++i) cj[i] += a0[i] * b0;
    }
  }
}

/// C tile = beta * C tile (beta == 1 is a no-op; the dispatcher never routes
/// beta == 1 here pointlessly because scaling is cheap to skip inline).
template <typename T>
inline void scale_tile(T beta, Index mc, Index nc, T* c, Index ldc) {
  if (beta == T(1)) return;
  for (Index j = 0; j < nc; ++j) {
    T* cj = c + j * ldc;
    if (beta == T(0)) {
      for (Index i = 0; i < mc; ++i) cj[i] = T(0);
    } else {
      for (Index i = 0; i < mc; ++i) cj[i] *= beta;
    }
  }
}

/// Reference oracle: unblocked triple loop, no packing, no blocking. Slow by
/// design — every other kernel policy is validated against it and the bench
/// trajectory measures speedups from it.
template <typename T>
void gemm_naive(T alpha, Op opa, ConstMatrixView<T> a, Op opb,
                ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  const Index m = c.rows();
  const Index n = c.cols();
  const Index k = op_cols(opa, a);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      T acc(0);
      for (Index l = 0; l < k; ++l) {
        acc += op_elem(opa, a, i, l) * op_elem(opb, b, l, j);
      }
      c(i, j) = alpha * acc + (beta == T(0) ? T(0) : beta * c(i, j));
    }
  }
}

/// The seed cache-blocked path. beta is folded into the first k panel: each
/// C tile is scaled right before the l0 == 0 rank-1 updates touch it, so the
/// pre-scale rides on a pass that loads the tile anyway.
template <typename T>
void gemm_blocked(T alpha, Op opa, ConstMatrixView<T> a, Op opb,
                  ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  const Index m = c.rows();
  const Index n = c.cols();
  const Index k = op_cols(opa, a);

  auto& pool = pack_pool<T>();
  T* pa = pool.buf_a(std::size_t(kBlockM) * kBlockK);
  T* pb = pool.buf_b(std::size_t(kBlockK) * kBlockN);

  for (Index j0 = 0; j0 < n; j0 += kBlockN) {
    const Index nc = std::min<Index>(kBlockN, n - j0);
    for (Index l0 = 0; l0 < k; l0 += kBlockK) {
      const Index kc = std::min<Index>(kBlockK, k - l0);
      pack_block(opb, b, l0, j0, kc, nc, pb);
      // Fold alpha into the packed B panel once per (k, n) tile.
      if (alpha != T(1)) {
        scal(kc * nc, alpha, pb);
      }
      for (Index i0 = 0; i0 < m; i0 += kBlockM) {
        const Index mc = std::min<Index>(kBlockM, m - i0);
        T* ctile = c.data() + i0 + j0 * c.ld();
        if (l0 == 0) scale_tile(beta, mc, nc, ctile, c.ld());
        pack_block(opa, a, i0, l0, mc, kc, pa);
        kernel_nn(mc, nc, kc, pa, pb, ctile, c.ld());
      }
    }
  }
}

/// Flop count of one gemm/hemm-shaped product (the classic 2mnk, x4 for the
/// complex multiply-add).
template <typename T>
inline double gemm_flop_count(Index m, Index n, Index k) {
  return (kIsComplex<T> ? 8.0 : 2.0) * double(m) * double(n) * double(k);
}

/// Record one engine call on the thread tracker: cumulative flops and wall
/// seconds (their ratio is the achieved Gflop/s that calibrates the machine
/// model) plus the per-kernel call counter.
/// `single` splits the cumulative rate counters by storage precision
/// ("la.gemm32.*" for fp32/complex<float> calls), so the machine model can
/// calibrate its double rate and its single-precision speedup independently
/// (perf::MachineModel::calibrate_gemm / calibrate_single).
inline void record_gemm_call(std::string_view kernel_counter, bool single,
                             double flops, double seconds) {
  if (auto* t = perf::thread_tracker()) {
    t->bump(single ? "la.gemm32.flops" : "la.gemm.flops", flops);
    t->bump(single ? "la.gemm32.seconds" : "la.gemm.seconds", seconds);
    t->bump(kernel_counter, 1.0);
  }
}

}  // namespace detail

/// C = alpha * op(A) * op(B) + beta * C.
template <typename T>
void gemm(T alpha, Op opa, ConstMatrixView<T> a, Op opb, ConstMatrixView<T> b,
          T beta, MatrixView<T> c) {
  const Index m = op_rows(opa, a);
  const Index k = op_cols(opa, a);
  const Index n = op_cols(opb, b);
  CHASE_CHECK_MSG(op_rows(opb, b) == k, "gemm: inner dimensions differ");
  CHASE_CHECK_MSG(c.rows() == m && c.cols() == n, "gemm: output shape");

  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == T(0)) {
    // Degenerate product: only the beta scaling of C remains.
    detail::scale_tile(beta, m, n, c.data(), c.ld());
    return;
  }

  const GemmKernel kernel = gemm_kernel_for(scalar_tag<T>(), m, n, k);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  switch (kernel) {
    case GemmKernel::kNaive:
      detail::gemm_naive(alpha, opa, a, opb, b, beta, c);
      break;
    case GemmKernel::kBlocked:
      detail::gemm_blocked(alpha, opa, a, opb, b, beta, c);
      break;
    case GemmKernel::kMicro:
    default:
      detail::gemm_micro(alpha, opa, a, opb, b, beta, c);
      break;
  }
  if (tracked) {
    detail::record_gemm_call(gemm_kernel_counter(kernel),
                             sizeof(RealType<T>) == 4,
                             detail::gemm_flop_count<T>(m, n, k),
                             timer.seconds());
  }
}

/// C = alpha * A * B + beta * C (convenience for the common case).
template <typename T>
inline void gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                 MatrixView<T> c) {
  gemm(alpha, Op::kNoTrans, a, Op::kNoTrans, b, beta, c);
}

}  // namespace chase::la

// The HERK kernels consume gemm(); the include is placed after the engine so
// the pragma-once guard resolves the mutual include in either order.
#include "la/factor/herk_kernels.hpp"
#include "la/factor/policy.hpp"

namespace chase::la {

/// Hermitian rank-k update, upper triangle only:
/// C_upper = alpha X^H X + beta C_upper.
///
/// Policy dispatcher (CHASE_FACTOR_KERNEL): `naive` computes conjugated dot
/// products, `blocked` lowers the off-diagonal tiles onto gemm
/// (la/factor/herk_kernels.hpp). The lower triangle is never written — the
/// HERK saving of half the GEMM flops. Callers that need the full matrix
/// (la::gram) mirror afterwards; CholeskyQR consumes the upper triangle
/// directly. Tracked calls record "la.herk.flops" / "la.herk.seconds" for
/// the machine-model factorization-rate calibration.
template <typename T>
void herk_upper(T alpha, ConstMatrixView<T> x, T beta, MatrixView<T> c) {
  const Index n = x.cols();
  CHASE_CHECK(c.rows() == n && c.cols() == n);
  const FactorKernel kernel = factor_kernel_for(n);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  if (kernel == FactorKernel::kBlocked) {
    factor::blocked_herk_upper(alpha, x, beta, c);
  } else {
    factor::naive_herk_upper(alpha, x, beta, c);
  }
  if (tracked && perf::thread_tracker() != nullptr) {
    auto* t = perf::thread_tracker();
    t->bump("la.herk.flops",
            (kIsComplex<T> ? 4.0 : 1.0) * double(x.rows()) * double(n) *
                double(n));
    t->bump("la.herk.seconds", timer.seconds());
    t->bump(factor_kernel_counter(kernel), 1.0);
  }
}

/// Hermitian rank-k update used to form Gram matrices: C = X^H X.
///
/// The upper triangle comes from herk_upper and the lower triangle is
/// mirrored; the full n x n result is stored because ChASE's Rayleigh-Ritz
/// consumes the full matrix after an allreduce, matching how the paper
/// assembles A redundantly on every rank. (CholeskyQR calls herk_upper
/// directly and never materializes the mirror.)
template <typename T>
inline void gram(ConstMatrixView<T> x, MatrixView<T> c) {
  const Index n = x.cols();
  CHASE_CHECK(c.rows() == n && c.cols() == n);
  herk_upper(T(1), x, T(0), c);
  // Mirror and enforce exact Hermitian symmetry so POTRF sees a numerically
  // Hermitian input regardless of rounding.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      c(j, i) = conjugate(c(i, j));
    }
    c(j, j) = T(real_part(c(j, j)));
  }
}

}  // namespace chase::la
