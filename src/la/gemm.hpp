// Cache-blocked general matrix-matrix multiply and the Hermitian rank-k
// update, the computational workhorses of ChASE (Filter, Rayleigh-Ritz,
// Residuals, CholeskyQR Gram matrices all reduce to these two kernels).
//
// The implementation packs tiles of op(A) and op(B) into contiguous buffers —
// handling transposition/conjugation during packing — and runs a
// non-transposed inner kernel whose unit-stride column updates autovectorize.
#pragma once

#include <vector>

#include "la/blas1.hpp"
#include "la/matrix.hpp"

namespace chase::la {

/// BLAS-style operation applied to an input operand.
enum class Op { kNoTrans, kTrans, kConjTrans };

/// Rows of op(A) for an m x n view A.
template <typename T>
inline Index op_rows(Op op, ConstMatrixView<T> a) {
  return op == Op::kNoTrans ? a.rows() : a.cols();
}

/// Columns of op(A) for an m x n view A.
template <typename T>
inline Index op_cols(Op op, ConstMatrixView<T> a) {
  return op == Op::kNoTrans ? a.cols() : a.rows();
}

namespace detail {

// Blocking parameters: a (kc x nc) panel of B plus an (mc x kc) panel of A
// stay resident in L2 while the inner kernel streams C.
inline constexpr Index kBlockM = 192;
inline constexpr Index kBlockN = 96;
inline constexpr Index kBlockK = 224;

/// Element (i, j) of op(A).
template <typename T>
inline T op_elem(Op op, ConstMatrixView<T> a, Index i, Index j) {
  switch (op) {
    case Op::kNoTrans:
      return a(i, j);
    case Op::kTrans:
      return a(j, i);
    case Op::kConjTrans:
    default:
      return conjugate(a(j, i));
  }
}

/// Pack block [r0, r0+nr) x [c0, c0+nc) of op(A) column-major into buf.
template <typename T>
inline void pack_block(Op op, ConstMatrixView<T> a, Index r0, Index c0,
                       Index nr, Index nc, T* buf) {
  if (op == Op::kNoTrans) {
    for (Index j = 0; j < nc; ++j) {
      const T* src = a.col(c0 + j) + r0;
      T* dst = buf + j * nr;
      for (Index i = 0; i < nr; ++i) dst[i] = src[i];
    }
  } else if (op == Op::kTrans) {
    for (Index j = 0; j < nc; ++j) {
      T* dst = buf + j * nr;
      for (Index i = 0; i < nr; ++i) dst[i] = a(c0 + j, r0 + i);
    }
  } else {
    for (Index j = 0; j < nc; ++j) {
      T* dst = buf + j * nr;
      for (Index i = 0; i < nr; ++i) dst[i] = conjugate(a(c0 + j, r0 + i));
    }
  }
}

/// C(mc x nc) += packed A(mc x kc) * packed B(kc x nc); unit-stride in i.
template <typename T>
inline void kernel_nn(Index mc, Index nc, Index kc, const T* pa, const T* pb,
                      T* c, Index ldc) {
  for (Index j = 0; j < nc; ++j) {
    T* cj = c + j * ldc;
    const T* bj = pb + j * kc;
    Index l = 0;
    // Two-way unrolled rank-1 updates amortize the column reload of C.
    for (; l + 1 < kc; l += 2) {
      const T b0 = bj[l];
      const T b1 = bj[l + 1];
      const T* a0 = pa + l * mc;
      const T* a1 = pa + (l + 1) * mc;
      for (Index i = 0; i < mc; ++i) cj[i] += a0[i] * b0 + a1[i] * b1;
    }
    for (; l < kc; ++l) {
      const T b0 = bj[l];
      const T* a0 = pa + l * mc;
      for (Index i = 0; i < mc; ++i) cj[i] += a0[i] * b0;
    }
  }
}

}  // namespace detail

/// C = alpha * op(A) * op(B) + beta * C.
template <typename T>
void gemm(T alpha, Op opa, ConstMatrixView<T> a, Op opb, ConstMatrixView<T> b,
          T beta, MatrixView<T> c) {
  const Index m = op_rows(opa, a);
  const Index k = op_cols(opa, a);
  const Index n = op_cols(opb, b);
  CHASE_CHECK_MSG(op_rows(opb, b) == k, "gemm: inner dimensions differ");
  CHASE_CHECK_MSG(c.rows() == m && c.cols() == n, "gemm: output shape");

  if (beta != T(1)) {
    for (Index j = 0; j < n; ++j) {
      T* cj = c.col(j);
      if (beta == T(0)) {
        for (Index i = 0; i < m; ++i) cj[i] = T(0);
      } else {
        for (Index i = 0; i < m; ++i) cj[i] *= beta;
      }
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;

  using detail::kBlockK;
  using detail::kBlockM;
  using detail::kBlockN;
  std::vector<T> pa(std::size_t(kBlockM) * kBlockK);
  std::vector<T> pb(std::size_t(kBlockK) * kBlockN);

  for (Index j0 = 0; j0 < n; j0 += kBlockN) {
    const Index nc = std::min<Index>(kBlockN, n - j0);
    for (Index l0 = 0; l0 < k; l0 += kBlockK) {
      const Index kc = std::min<Index>(kBlockK, k - l0);
      detail::pack_block(opb, b, l0, j0, kc, nc, pb.data());
      // Fold alpha into the packed B panel once per (k, n) tile.
      if (alpha != T(1)) {
        scal(kc * nc, alpha, pb.data());
      }
      for (Index i0 = 0; i0 < m; i0 += kBlockM) {
        const Index mc = std::min<Index>(kBlockM, m - i0);
        detail::pack_block(opa, a, i0, l0, mc, kc, pa.data());
        detail::kernel_nn(mc, nc, kc, pa.data(), pb.data(),
                          c.data() + i0 + j0 * c.ld(), c.ld());
      }
    }
  }
}

/// C = alpha * A * B + beta * C (convenience for the common case).
template <typename T>
inline void gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                 MatrixView<T> c) {
  gemm(alpha, Op::kNoTrans, a, Op::kNoTrans, b, beta, c);
}

/// Hermitian rank-k update used to form Gram matrices: C = X^H X.
///
/// Only the upper-triangular column blocks are computed (the HERK saving:
/// half the GEMM flops, the reason the BLAS has a dedicated routine) and the
/// lower triangle is mirrored. The full n x n result is stored because
/// ChASE's CholeskyQR and Rayleigh-Ritz consume the full matrix after an
/// allreduce, matching how the paper assembles A and R redundantly on every
/// rank.
template <typename T>
inline void gram(ConstMatrixView<T> x, MatrixView<T> c) {
  const Index n = x.cols();
  CHASE_CHECK(c.rows() == n && c.cols() == n);
  constexpr Index kBlock = 48;
  for (Index j0 = 0; j0 < n; j0 += kBlock) {
    const Index nj = std::min(kBlock, n - j0);
    for (Index i0 = 0; i0 <= j0; i0 += kBlock) {
      const Index ni = std::min(kBlock, n - i0);
      auto cij = c.block(i0, j0, ni, nj);
      gemm(T(1), Op::kConjTrans, x.cols_range(i0, ni), Op::kNoTrans,
           x.cols_range(j0, nj), T(0), cij);
    }
  }
  // Mirror and enforce exact Hermitian symmetry so POTRF sees a numerically
  // Hermitian input regardless of rounding.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      c(j, i) = conjugate(c(i, j));
    }
    c(j, j) = T(real_part(c(j, j)));
  }
}

}  // namespace chase::la
