// General matrix-matrix multiply and the Hermitian rank-k update, the
// computational workhorses of ChASE (Filter, Rayleigh-Ritz, Residuals,
// CholeskyQR Gram matrices all reduce to these kernels).
//
// gemm() is a policy-dispatched engine (CHASE_GEMM_KERNEL, gemm_policy.hpp):
//
//   naive   — unblocked triple loop, the reference oracle;
//   blocked — the seed path: L2 cache blocking, packed operand panels,
//             two-way-unrolled rank-1-update inner kernel;
//   micro   — five-loop BLIS-style engine with a register-tiled mr x nr
//             micro-kernel over packed micro-panels (gemm_micro.hpp).
//
// All three fold the beta pre-scale of C into the first k-panel pass instead
// of a separate full sweep, and the packing paths draw from a per-thread
// reusable buffer pool, so the filter's inner HEMM loop neither re-reads C
// an extra time nor allocates per call. Every call records its flop count,
// wall time and kernel choice on the thread's perf::Tracker ("la.gemm.flops",
// "la.gemm.seconds", "la.kernel.<name>.calls") — the measured Gflop/s feed
// the machine-model calibration (perf::calibrate_gemm_rate).
#pragma once

#include <vector>

#include "common/timer.hpp"
#include "la/blas1.hpp"
#include "la/gemm_micro.hpp"
#include "la/gemm_policy.hpp"
#include "la/matrix.hpp"
#include "perf/tracker.hpp"

namespace chase::la {

namespace detail {

// Blocking parameters of the seed `blocked` path: a (kc x nc) panel of B
// plus an (mc x kc) panel of A stay resident in L2 while the inner kernel
// streams C.
inline constexpr Index kBlockM = 192;
inline constexpr Index kBlockN = 96;
inline constexpr Index kBlockK = 224;

/// Pack block [r0, r0+nr) x [c0, c0+nc) of op(A) column-major into buf.
template <typename T>
inline void pack_block(Op op, ConstMatrixView<T> a, Index r0, Index c0,
                       Index nr, Index nc, T* buf) {
  if (op == Op::kNoTrans) {
    for (Index j = 0; j < nc; ++j) {
      const T* src = a.col(c0 + j) + r0;
      T* dst = buf + j * nr;
      for (Index i = 0; i < nr; ++i) dst[i] = src[i];
    }
  } else if (op == Op::kTrans) {
    for (Index j = 0; j < nc; ++j) {
      T* dst = buf + j * nr;
      for (Index i = 0; i < nr; ++i) dst[i] = a(c0 + j, r0 + i);
    }
  } else {
    for (Index j = 0; j < nc; ++j) {
      T* dst = buf + j * nr;
      for (Index i = 0; i < nr; ++i) dst[i] = conjugate(a(c0 + j, r0 + i));
    }
  }
}

/// C(mc x nc) += packed A(mc x kc) * packed B(kc x nc); unit-stride in i.
template <typename T>
inline void kernel_nn(Index mc, Index nc, Index kc, const T* pa, const T* pb,
                      T* c, Index ldc) {
  for (Index j = 0; j < nc; ++j) {
    T* cj = c + j * ldc;
    const T* bj = pb + j * kc;
    Index l = 0;
    // Two-way unrolled rank-1 updates amortize the column reload of C.
    for (; l + 1 < kc; l += 2) {
      const T b0 = bj[l];
      const T b1 = bj[l + 1];
      const T* a0 = pa + l * mc;
      const T* a1 = pa + (l + 1) * mc;
      for (Index i = 0; i < mc; ++i) cj[i] += a0[i] * b0 + a1[i] * b1;
    }
    for (; l < kc; ++l) {
      const T b0 = bj[l];
      const T* a0 = pa + l * mc;
      for (Index i = 0; i < mc; ++i) cj[i] += a0[i] * b0;
    }
  }
}

/// C tile = beta * C tile (beta == 1 is a no-op; the dispatcher never routes
/// beta == 1 here pointlessly because scaling is cheap to skip inline).
template <typename T>
inline void scale_tile(T beta, Index mc, Index nc, T* c, Index ldc) {
  if (beta == T(1)) return;
  for (Index j = 0; j < nc; ++j) {
    T* cj = c + j * ldc;
    if (beta == T(0)) {
      for (Index i = 0; i < mc; ++i) cj[i] = T(0);
    } else {
      for (Index i = 0; i < mc; ++i) cj[i] *= beta;
    }
  }
}

/// Reference oracle: unblocked triple loop, no packing, no blocking. Slow by
/// design — every other kernel policy is validated against it and the bench
/// trajectory measures speedups from it.
template <typename T>
void gemm_naive(T alpha, Op opa, ConstMatrixView<T> a, Op opb,
                ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  const Index m = c.rows();
  const Index n = c.cols();
  const Index k = op_cols(opa, a);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      T acc(0);
      for (Index l = 0; l < k; ++l) {
        acc += op_elem(opa, a, i, l) * op_elem(opb, b, l, j);
      }
      c(i, j) = alpha * acc + (beta == T(0) ? T(0) : beta * c(i, j));
    }
  }
}

/// The seed cache-blocked path. beta is folded into the first k panel: each
/// C tile is scaled right before the l0 == 0 rank-1 updates touch it, so the
/// pre-scale rides on a pass that loads the tile anyway.
template <typename T>
void gemm_blocked(T alpha, Op opa, ConstMatrixView<T> a, Op opb,
                  ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  const Index m = c.rows();
  const Index n = c.cols();
  const Index k = op_cols(opa, a);

  auto& pool = pack_pool<T>();
  T* pa = pool.buf_a(std::size_t(kBlockM) * kBlockK);
  T* pb = pool.buf_b(std::size_t(kBlockK) * kBlockN);

  for (Index j0 = 0; j0 < n; j0 += kBlockN) {
    const Index nc = std::min<Index>(kBlockN, n - j0);
    for (Index l0 = 0; l0 < k; l0 += kBlockK) {
      const Index kc = std::min<Index>(kBlockK, k - l0);
      pack_block(opb, b, l0, j0, kc, nc, pb);
      // Fold alpha into the packed B panel once per (k, n) tile.
      if (alpha != T(1)) {
        scal(kc * nc, alpha, pb);
      }
      for (Index i0 = 0; i0 < m; i0 += kBlockM) {
        const Index mc = std::min<Index>(kBlockM, m - i0);
        T* ctile = c.data() + i0 + j0 * c.ld();
        if (l0 == 0) scale_tile(beta, mc, nc, ctile, c.ld());
        pack_block(opa, a, i0, l0, mc, kc, pa);
        kernel_nn(mc, nc, kc, pa, pb, ctile, c.ld());
      }
    }
  }
}

/// Flop count of one gemm/hemm-shaped product (the classic 2mnk, x4 for the
/// complex multiply-add).
template <typename T>
inline double gemm_flop_count(Index m, Index n, Index k) {
  return (kIsComplex<T> ? 8.0 : 2.0) * double(m) * double(n) * double(k);
}

/// Record one engine call on the thread tracker: cumulative flops and wall
/// seconds (their ratio is the achieved Gflop/s that calibrates the machine
/// model) plus the per-kernel call counter.
inline void record_gemm_call(std::string_view kernel_counter, double flops,
                             double seconds) {
  if (auto* t = perf::thread_tracker()) {
    t->bump("la.gemm.flops", flops);
    t->bump("la.gemm.seconds", seconds);
    t->bump(kernel_counter, 1.0);
  }
}

}  // namespace detail

/// C = alpha * op(A) * op(B) + beta * C.
template <typename T>
void gemm(T alpha, Op opa, ConstMatrixView<T> a, Op opb, ConstMatrixView<T> b,
          T beta, MatrixView<T> c) {
  const Index m = op_rows(opa, a);
  const Index k = op_cols(opa, a);
  const Index n = op_cols(opb, b);
  CHASE_CHECK_MSG(op_rows(opb, b) == k, "gemm: inner dimensions differ");
  CHASE_CHECK_MSG(c.rows() == m && c.cols() == n, "gemm: output shape");

  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == T(0)) {
    // Degenerate product: only the beta scaling of C remains.
    detail::scale_tile(beta, m, n, c.data(), c.ld());
    return;
  }

  const GemmKernel kernel = gemm_kernel();
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  switch (kernel) {
    case GemmKernel::kNaive:
      detail::gemm_naive(alpha, opa, a, opb, b, beta, c);
      break;
    case GemmKernel::kBlocked:
      detail::gemm_blocked(alpha, opa, a, opb, b, beta, c);
      break;
    case GemmKernel::kMicro:
    default:
      detail::gemm_micro(alpha, opa, a, opb, b, beta, c);
      break;
  }
  if (tracked) {
    detail::record_gemm_call(gemm_kernel_counter(kernel),
                             detail::gemm_flop_count<T>(m, n, k),
                             timer.seconds());
  }
}

/// C = alpha * A * B + beta * C (convenience for the common case).
template <typename T>
inline void gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                 MatrixView<T> c) {
  gemm(alpha, Op::kNoTrans, a, Op::kNoTrans, b, beta, c);
}

namespace detail {

/// Upper triangle of the diagonal Gram block C = X^H X for a narrow column
/// slice X (m x nb). Splits recursively: the top-right quadrant is a full
/// GEMM, the two diagonal quadrants recurse, and small blocks finish as
/// conjugated dot products — so only the ~nb^2/2 upper entries are computed,
/// instead of the full nb^2 tile the seed evaluated before mirroring.
template <typename T>
void gram_diag_upper(ConstMatrixView<T> x, MatrixView<T> c) {
  const Index nb = x.cols();
  constexpr Index kLeaf = 12;
  if (nb <= kLeaf) {
    for (Index j = 0; j < nb; ++j) {
      for (Index i = 0; i <= j; ++i) {
        c(i, j) = dotc(x.rows(), x.col(i), x.col(j));
      }
    }
    return;
  }
  const Index h = nb / 2;
  gram_diag_upper(x.cols_range(0, h), c.block(0, 0, h, h));
  auto topright = c.block(0, h, h, nb - h);
  gemm(T(1), Op::kConjTrans, x.cols_range(0, h), Op::kNoTrans,
       x.cols_range(h, nb - h), T(0), topright);
  gram_diag_upper(x.cols_range(h, nb - h), c.block(h, h, nb - h, nb - h));
}

}  // namespace detail

/// Hermitian rank-k update used to form Gram matrices: C = X^H X.
///
/// Only the upper-triangular column blocks are computed (the HERK saving:
/// half the GEMM flops, the reason the BLAS has a dedicated routine) and the
/// lower triangle is mirrored; diagonal blocks likewise compute only their
/// upper triangle (detail::gram_diag_upper). The full n x n result is stored
/// because ChASE's CholeskyQR and Rayleigh-Ritz consume the full matrix
/// after an allreduce, matching how the paper assembles A and R redundantly
/// on every rank.
template <typename T>
inline void gram(ConstMatrixView<T> x, MatrixView<T> c) {
  const Index n = x.cols();
  CHASE_CHECK(c.rows() == n && c.cols() == n);
  constexpr Index kBlock = 48;
  for (Index j0 = 0; j0 < n; j0 += kBlock) {
    const Index nj = std::min(kBlock, n - j0);
    for (Index i0 = 0; i0 < j0; i0 += kBlock) {
      const Index ni = std::min(kBlock, n - i0);
      auto cij = c.block(i0, j0, ni, nj);
      gemm(T(1), Op::kConjTrans, x.cols_range(i0, ni), Op::kNoTrans,
           x.cols_range(j0, nj), T(0), cij);
    }
    detail::gram_diag_upper(x.cols_range(j0, nj), c.block(j0, j0, nj, nj));
  }
  // Mirror and enforce exact Hermitian symmetry so POTRF sees a numerically
  // Hermitian input regardless of rounding.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      c(j, i) = conjugate(c(i, j));
    }
    c(j, j) = T(real_part(c(j, j)));
  }
}

}  // namespace chase::la
