// Cholesky factorization of a Hermitian positive-definite matrix.
//
// Policy dispatcher (CHASE_FACTOR_KERNEL, la/factor/policy.hpp): `naive`
// runs the seed left-looking scalar kernel, `blocked` the LAPACK
// right-looking panel + TRSM + HERK shape (la/factor/potrf_kernels.hpp).
// Tracked calls record "la.potrf.flops" / "la.potrf.seconds" for the
// machine-model factorization-rate calibration.
#pragma once

#include "common/timer.hpp"
#include "la/factor/policy.hpp"
#include "la/factor/potrf_kernels.hpp"
#include "la/matrix.hpp"
#include "la/trsm.hpp"

namespace chase::la {

/// In-place upper Cholesky factorization A = R^H R.
///
/// On success returns 0 and the upper triangle of `a` holds R (the strict
/// lower triangle is zeroed). If the leading minor of order j+1 is not
/// positive definite, returns j+1 — the LAPACK `info` convention that
/// Algorithm 4 uses to trigger the Householder-QR fallback.
///
/// `rel_pivot_tol` > 0 additionally treats pivots below
/// rel_pivot_tol * max_diag as breakdowns: a Gram matrix of a numerically
/// rank-deficient block can round to barely-positive pivots that plain
/// LAPACK POTRF would accept while the resulting triangular solve is
/// useless. CholeskyQR passes n*u here so the fallback engages
/// deterministically. Both policies derive the floor from the original
/// diagonal, so structured breakdowns report the same index.
template <typename T>
int potrf_upper(MatrixView<T> a, RealType<T> rel_pivot_tol = RealType<T>(0)) {
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n);
  const FactorKernel kernel = factor_kernel_for(n);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  const int info = kernel == FactorKernel::kBlocked
                       ? factor::blocked_potrf_upper(a, rel_pivot_tol)
                       : factor::naive_potrf_upper(a, rel_pivot_tol);
  if (tracked) {
    const double z = kIsComplex<T> ? 4.0 : 1.0;
    detail::record_factor_call(
        "la.potrf.flops", "la.potrf.seconds", kernel,
        z * double(n) * double(n) * double(n) / 3.0, timer.seconds());
  }
  return info;
}

}  // namespace chase::la
