// Cholesky factorization of a Hermitian positive-definite matrix.
#pragma once

#include <cmath>

#include "la/matrix.hpp"

namespace chase::la {

/// In-place upper Cholesky factorization A = R^H R.
///
/// On success returns 0 and the upper triangle of `a` holds R (the strict
/// lower triangle is zeroed). If the leading minor of order j+1 is not
/// positive definite, returns j+1 — the LAPACK `info` convention that
/// Algorithm 4 uses to trigger the Householder-QR fallback.
///
/// `rel_pivot_tol` > 0 additionally treats pivots below
/// rel_pivot_tol * max_diag as breakdowns: a Gram matrix of a numerically
/// rank-deficient block can round to barely-positive pivots that plain
/// LAPACK POTRF would accept while the resulting triangular solve is
/// useless. CholeskyQR passes n*u here so the fallback engages
/// deterministically.
template <typename T>
int potrf_upper(MatrixView<T> a, RealType<T> rel_pivot_tol = RealType<T>(0)) {
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n);
  using R = RealType<T>;
  R max_diag(0);
  for (Index j = 0; j < n; ++j) {
    max_diag = std::max(max_diag, real_part(a(j, j)));
  }
  const R floor = rel_pivot_tol * max_diag;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      T acc = a(i, j);
      for (Index k = 0; k < i; ++k) acc -= conjugate(a(k, i)) * a(k, j);
      a(i, j) = acc / a(i, i);
    }
    R diag = real_part(a(j, j));
    for (Index k = 0; k < j; ++k) {
      diag -= real_part(conjugate(a(k, j)) * a(k, j));
    }
    if (!(diag > floor) || !(diag > R(0)) || !std::isfinite(diag)) {
      return int(j) + 1;
    }
    a(j, j) = T(std::sqrt(diag));
    for (Index i = j + 1; i < n; ++i) a(i, j) = T(0);
  }
  return 0;
}

}  // namespace chase::la
