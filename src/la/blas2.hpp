// BLAS-2 kernels used by the tridiagonalization and the Lanczos process.
#pragma once

#include "la/blas1.hpp"
#include "la/matrix.hpp"

namespace chase::la {

/// y = alpha * A x + beta * y (A not transposed).
template <typename T>
void gemv(T alpha, ConstMatrixView<T> a, const T* x, T beta, T* y) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (beta == T(0)) {
    for (Index i = 0; i < m; ++i) y[i] = T(0);
  } else if (beta != T(1)) {
    scal(m, beta, y);
  }
  for (Index j = 0; j < n; ++j) {
    axpy(m, alpha * x[j], a.col(j), y);
  }
}

/// y = alpha * A^H x + beta * y.
template <typename T>
void gemv_conj(T alpha, ConstMatrixView<T> a, const T* x, T beta, T* y) {
  const Index m = a.rows();
  const Index n = a.cols();
  for (Index j = 0; j < n; ++j) {
    T acc = dotc(m, a.col(j), x);
    y[j] = (beta == T(0) ? T(0) : beta * y[j]) + alpha * acc;
  }
}

/// Hermitian rank-2 update on full storage: A -= v w^H + w v^H
/// (the trailing-matrix update of the Householder tridiagonalization).
template <typename T>
void her2_minus(MatrixView<T> a, const T* v, const T* w) {
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n);
  for (Index j = 0; j < n; ++j) {
    T* aj = a.col(j);
    const T wj = conjugate(w[j]);
    const T vj = conjugate(v[j]);
    for (Index i = 0; i < n; ++i) {
      aj[i] -= v[i] * wj + w[i] * vj;
    }
  }
}

}  // namespace chase::la
