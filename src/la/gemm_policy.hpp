// Runtime policy for the dense matrix-multiply engine.
//
// Mirrors the collective-engine policy (src/coll/engine.hpp): the process
// picks one of three kernel implementations for every gemm()/hemm() call,
//
//   CHASE_GEMM_KERNEL = naive | blocked | micro   (default: the CMake cache
//       variable CHASE_DEFAULT_GEMM_KERNEL baked into the build)
//
//   naive   — unblocked triple loop; the reference oracle every other kernel
//             is validated against (tests/la) and the Gflop/s floor the bench
//             trajectory measures speedups from.
//   blocked — the seed path: L2 cache blocking with packed operand panels and
//             a two-way-unrolled rank-1-update inner kernel.
//   micro   — five-loop BLIS-style engine: the cache blocking of `blocked`,
//             but the packed panels are laid out as mr x kc / kc x nr
//             micro-panels consumed by a register-tiled mr x nr micro-kernel
//             (src/la/gemm_micro.hpp). This is the only policy that engages
//             the Hermitian-aware hemm() engine.
//
// The policy is process-global and cheap to read (one relaxed atomic load);
// ScopedGemmKernel lets benches and tests flip it per section.
#pragma once

#include <optional>
#include <string_view>

namespace chase::la {

enum class GemmKernel : int { kNaive = 0, kBlocked, kMicro };

std::string_view gemm_kernel_name(GemmKernel k);
std::optional<GemmKernel> parse_gemm_kernel(std::string_view name);

/// Per-call Tracker counter name for a kernel ("la.kernel.<name>.calls").
std::string_view gemm_kernel_counter(GemmKernel k);

/// Process-global policy; initialized from CHASE_GEMM_KERNEL (falling back
/// to the build-time default) on first use.
GemmKernel gemm_kernel();
void set_gemm_kernel(GemmKernel k);

/// RAII policy override for benches and tests.
class ScopedGemmKernel {
 public:
  explicit ScopedGemmKernel(GemmKernel k) : prev_(gemm_kernel()) {
    set_gemm_kernel(k);
  }
  ~ScopedGemmKernel() { set_gemm_kernel(prev_); }
  ScopedGemmKernel(const ScopedGemmKernel&) = delete;
  ScopedGemmKernel& operator=(const ScopedGemmKernel&) = delete;

 private:
  GemmKernel prev_;
};

}  // namespace chase::la
