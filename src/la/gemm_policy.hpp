// Runtime policy for the dense matrix-multiply engine.
//
// Mirrors the collective-engine policy (src/coll/engine.hpp): the process
// picks one of three kernel implementations for every gemm()/hemm() call,
//
//   CHASE_GEMM_KERNEL = naive | blocked | micro   (default: the CMake cache
//       variable CHASE_DEFAULT_GEMM_KERNEL baked into the build)
//
//   naive   — unblocked triple loop; the reference oracle every other kernel
//             is validated against (tests/la) and the Gflop/s floor the bench
//             trajectory measures speedups from.
//   blocked — the seed path: L2 cache blocking with packed operand panels and
//             a two-way-unrolled rank-1-update inner kernel.
//   micro   — five-loop BLIS-style engine: the cache blocking of `blocked`,
//             but the packed panels are laid out as mr x kc / kc x nr
//             micro-panels consumed by a register-tiled mr x nr micro-kernel
//             (src/la/gemm_micro.hpp). This is the only policy that engages
//             the Hermitian-aware hemm() engine.
//
// Resolution order per call (the autotuner contract, DESIGN.md §15):
//   1. explicit override — the CHASE_GEMM_KERNEL env var or a
//      set_gemm_kernel()/ScopedGemmKernel guard pins one kernel process-wide;
//   2. loaded machine profile — the per-(scalar type, shape class) winner
//      from perf::tuned_tables() (installed by tune::install_profile);
//   3. built-in default — the build-time CHASE_DEFAULT_GEMM_KERNEL.
// A process with no override and no profile behaves exactly as before the
// autotuner existed.
//
// The policy is process-global and cheap to read (one relaxed atomic load);
// ScopedGemmKernel lets benches and tests flip it per section.
#pragma once

#include <optional>
#include <string_view>

#include "common/scalar.hpp"
#include "la/matrix.hpp"
#include "perf/tuned.hpp"

namespace chase::la {

enum class GemmKernel : int { kNaive = 0, kBlocked, kMicro };

std::string_view gemm_kernel_name(GemmKernel k);
std::optional<GemmKernel> parse_gemm_kernel(std::string_view name);

/// Per-call Tracker counter name for a kernel ("la.kernel.<name>.calls").
std::string_view gemm_kernel_counter(GemmKernel k);

/// perf::ScalarTag of a kernel instantiation (the tuned-table row key).
template <typename T>
constexpr perf::ScalarTag scalar_tag() {
  if constexpr (kIsComplex<T>) {
    return sizeof(RealType<T>) == 4 ? perf::ScalarTag::kC32
                                    : perf::ScalarTag::kC64;
  } else {
    return sizeof(T) == 4 ? perf::ScalarTag::kF32 : perf::ScalarTag::kF64;
  }
}

/// Effective process-wide policy: the explicit override when one is set
/// (env or set_gemm_kernel), else the build-time default. Shape-oblivious —
/// the dispatchers use gemm_kernel_for().
GemmKernel gemm_kernel();

/// Pin an explicit override (what the CHASE_GEMM_KERNEL env var does at
/// first use). Overrides beat any loaded profile.
void set_gemm_kernel(GemmKernel k);

/// True when an explicit override (env or set_gemm_kernel) is pinned.
bool gemm_kernel_overridden();

/// Raw override slot for exact save/restore (-1 = no override). Scoped
/// guards use these so that unwinding restores "no override" instead of
/// freezing the default as an override.
int raw_gemm_kernel_override();
void set_raw_gemm_kernel_override(int raw);

/// Shape-aware kernel choice for one m x n x k product of scalar class
/// `tag`: override > profile table entry > built-in default.
GemmKernel gemm_kernel_for(perf::ScalarTag tag, Index m, Index n, Index k);

/// RAII policy override for benches and tests. Restores the previous raw
/// override state (including "none") on exit.
class ScopedGemmKernel {
 public:
  explicit ScopedGemmKernel(GemmKernel k) : prev_(raw_gemm_kernel_override()) {
    set_gemm_kernel(k);
  }
  ~ScopedGemmKernel() { set_raw_gemm_kernel_override(prev_); }
  ScopedGemmKernel(const ScopedGemmKernel&) = delete;
  ScopedGemmKernel& operator=(const ScopedGemmKernel&) = delete;

 private:
  int prev_;
};

}  // namespace chase::la
