// Blocked Householder QR with compact-WY block reflectors (LAPACK
// geqrf/larft/larfb structure): panels are factored with the unblocked
// kernel, then the trailing matrix is updated with GEMM-class operations
// I - V T V^H. This is the shape vendor geqrf implementations (MKL,
// cuSOLVER) use, and what makes Householder QR GEMM-rich enough to be the
// robust fallback of Algorithm 4 without being hopeless on large panels.
#pragma once

#include "la/factor/policy.hpp"
#include "la/gemm.hpp"
#include "la/qr.hpp"
#include "la/trsm.hpp"

namespace chase::la {

namespace detail {

/// Forward compact-WY T factor: H_0 ... H_{k-1} = I - V T V^H, with V the
/// m x k unit-lower-trapezoidal reflector matrix and tau the scales.
///
/// Policy dispatcher: the naive path accumulates V^H v_j column by column —
/// starting the reduction at row j, where v_j's unit head sits, because the
/// trapezoid is exactly zero above it — and the blocked path forms the full
/// Gram block S = V^H V with one GEMM and reads the columns out of it.
template <typename T>
void larft(ConstMatrixView<T> v, const std::vector<T>& tau,
           MatrixView<T> t_out) {
  const Index k = v.cols();
  CHASE_CHECK(t_out.rows() == k && t_out.cols() == k);
  set_zero(t_out);
  if (k == 0) return;
  const bool blocked = factor_kernel_for(k) == FactorKernel::kBlocked;
  Matrix<T> s;
  if (blocked) {
    s.resize(k, k);
    gemm(T(1), Op::kConjTrans, v, Op::kNoTrans, v, T(0), s.view());
  }
  for (Index j = 0; j < k; ++j) {
    const T tj = tau[std::size_t(j)];
    if (tj == T(0)) continue;
    // t(0:j, j) = -tau_j * T(0:j, 0:j) * (V(:, 0:j)^H v_j)
    if (blocked) {
      for (Index i = 0; i < j; ++i) t_out(i, j) = -tj * s(i, j);
    } else {
      for (Index i = 0; i < j; ++i) {
        // v_j is zero above its unit head at row j, so the reduction starts
        // there: acc = conj(v(j, i)) * 1 + sum_{r > j} conj(v(r, i)) v(r, j).
        T acc = conjugate(v(j, i));
        for (Index r = j + 1; r < v.rows(); ++r) {
          acc += conjugate(v(r, i)) * v(r, j);
        }
        t_out(i, j) = -tj * acc;
      }
    }
    // multiply by the leading triangle of T (in place, back to front)
    for (Index i = 0; i < j; ++i) {
      T acc(0);
      for (Index r = i; r < j; ++r) acc += t_out(i, r) * t_out(r, j);
      t_out(i, j) = acc;
    }
    t_out(j, j) = tj;
  }
}

}  // namespace detail

/// C <- (I - V T V^H)^(H?) C: applies the block reflector (conj = false) or
/// its conjugate transpose (conj = true) from the left. work must be a
/// k x C.cols() buffer.
template <typename T>
void larfb_left(ConstMatrixView<T> v, ConstMatrixView<T> t, bool conj,
                MatrixView<T> c, MatrixView<T> work) {
  const Index k = v.cols();
  CHASE_CHECK(v.rows() == c.rows());
  CHASE_CHECK(work.rows() == k && work.cols() >= c.cols());
  auto w = work.block(0, 0, k, c.cols());
  // W = V^H C
  gemm(T(1), Op::kConjTrans, v, Op::kNoTrans, c.as_const(), T(0), w);
  // W <- T W or T^H W: in-place triangular multiply (no scratch matrix; the
  // sweep direction only reads not-yet-overwritten rows).
  if (conj) {
    trmm_left_upper_conj(t, w);
  } else {
    trmm_left_upper(t, w);
  }
  // C -= V (T W)
  gemm(T(-1), Op::kNoTrans, v, Op::kNoTrans, w.as_const(), T(1), c);
}

/// Blocked in-place QR factorization (panel width nb); output layout matches
/// geqrf (R in the upper triangle, reflector tails below, scales in tau).
template <typename T>
void geqrf_blocked(MatrixView<T> a, std::vector<T>& tau, Index nb = 32) {
  const Index m = a.rows();
  const Index n = a.cols();
  CHASE_CHECK_MSG(m >= n, "geqrf expects a tall matrix");
  CHASE_CHECK(nb >= 1);
  tau.assign(static_cast<std::size_t>(n), T(0));

  Matrix<T> vwork, twork(nb, nb), bwork(nb, n);
  for (Index j0 = 0; j0 < n; j0 += nb) {
    const Index k = std::min(nb, n - j0);
    // Factor the panel with the unblocked kernel.
    auto panel = a.block(j0, j0, m - j0, k);
    std::vector<T> panel_tau;
    geqrf(panel, panel_tau);
    std::copy(panel_tau.begin(), panel_tau.end(),
              tau.begin() + std::size_t(j0));

    if (j0 + k < n) {
      // Materialize V (unit lower trapezoidal) from the panel.
      vwork.resize(m - j0, k);
      for (Index j = 0; j < k; ++j) {
        for (Index i = 0; i < m - j0; ++i) {
          vwork(i, j) = i < j ? T(0) : (i == j ? T(1) : panel(i, j));
        }
      }
      auto t_blk = twork.block(0, 0, k, k);
      detail::larft(vwork.cview(), panel_tau, t_blk);
      // Trailing update with (I - V T V^H)^H.
      auto trailing = a.block(j0, j0 + k, m - j0, n - j0 - k);
      auto w = bwork.block(0, 0, k, n - j0 - k);
      larfb_left(vwork.cview(), t_blk.as_const(), /*conj=*/true, trailing, w);
    }
  }
}

/// Form the thin Q from geqrf_blocked output (backward block accumulation).
template <typename T>
void ungqr_blocked(MatrixView<T> a, const std::vector<T>& tau,
                   Index nb = 32) {
  const Index m = a.rows();
  const Index n = a.cols();
  CHASE_CHECK(Index(tau.size()) == n);

  // Save all reflector panels first (Q formation overwrites the storage).
  Matrix<T> v_all(m, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      v_all(i, j) = i < j ? T(0) : (i == j ? T(1) : a(i, j));
    }
  }
  set_zero(a);
  for (Index j = 0; j < n; ++j) a(j, j) = T(1);

  Matrix<T> twork(nb, nb), bwork(nb, n);
  const Index nblocks = (n + nb - 1) / nb;
  for (Index blk = nblocks - 1; blk >= 0; --blk) {
    const Index j0 = blk * nb;
    const Index k = std::min(nb, n - j0);
    auto v = v_all.block(j0, j0, m - j0, k);
    std::vector<T> blk_tau(tau.begin() + std::size_t(j0),
                           tau.begin() + std::size_t(j0 + k));
    auto t_blk = twork.block(0, 0, k, k);
    detail::larft(v.as_const(), blk_tau, t_blk);
    auto target = a.block(j0, j0, m - j0, n - j0);
    auto w = bwork.block(0, 0, k, n - j0);
    larfb_left(v.as_const(), t_blk.as_const(), /*conj=*/false, target, w);
  }
}

/// Convenience: blocked orthonormalization in place.
template <typename T>
void householder_orthonormalize_blocked(MatrixView<T> x, Index nb = 32) {
  std::vector<T> tau;
  geqrf_blocked(x, tau, nb);
  ungqr_blocked(x, tau, nb);
}

}  // namespace chase::la
