// Partial tridiagonal eigensolver: bisection on Sturm-sequence counts for
// selected eigenvalues (LAPACK stebz) and inverse iteration for their
// eigenvectors (LAPACK stein).
//
// The direct baselines only need the nev lowest pairs (the Figure 3b ELPA
// runs request 1200 of 115459); computing the full eigenvector matrix and
// truncating wastes an O(n^3) back-transform. Bisection finds the k lowest
// eigenvalues in O(n k log(1/eps)) and inverse iteration delivers their
// vectors in O(n k) — the classic partial-spectrum path.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "la/blas1.hpp"
#include "la/matrix.hpp"

namespace chase::la {

namespace stebz_detail {

/// Number of eigenvalues of the tridiagonal (d, e) strictly below x
/// (Sturm sequence / LDL^T inertia count, with the standard pivot guard).
template <typename R>
Index sturm_count(const std::vector<R>& d, const std::vector<R>& e, R x) {
  const Index n = Index(d.size());
  const R safe = std::numeric_limits<R>::min() /
                 std::numeric_limits<R>::epsilon();
  Index count = 0;
  R q = d[0] - x;
  if (q < R(0)) ++count;
  for (Index i = 1; i < n; ++i) {
    if (std::abs(q) < safe) q = std::copysign(safe, q == R(0) ? R(-1) : q);
    q = d[std::size_t(i)] - x - e[std::size_t(i - 1)] * e[std::size_t(i - 1)] / q;
    if (q < R(0)) ++count;
  }
  return count;
}

}  // namespace stebz_detail

/// The k lowest eigenvalues of the symmetric tridiagonal (d, e), ascending,
/// each located by bisection to relative precision ~eps.
template <typename R>
std::vector<R> tridiag_lowest_eigenvalues(const std::vector<R>& d,
                                          const std::vector<R>& e, Index k) {
  const Index n = Index(d.size());
  CHASE_CHECK(k >= 1 && k <= n);
  CHASE_CHECK(Index(e.size()) >= std::max<Index>(n - 1, 0));

  // Gershgorin bounds.
  R lo = d[0], hi = d[0];
  for (Index i = 0; i < n; ++i) {
    R radius = R(0);
    if (i > 0) radius += std::abs(e[std::size_t(i - 1)]);
    if (i + 1 < n) radius += std::abs(e[std::size_t(i)]);
    lo = std::min(lo, d[std::size_t(i)] - radius);
    hi = std::max(hi, d[std::size_t(i)] + radius);
  }
  const R eps = std::numeric_limits<R>::epsilon();
  const R span = std::max(hi - lo, R(1));

  std::vector<R> out(static_cast<std::size_t>(k));
  for (Index idx = 0; idx < k; ++idx) {
    // Find lambda_{idx}: smallest x with count(x) >= idx + 1.
    R a = lo, b = hi;
    while (b - a > R(4) * eps * (std::abs(a) + std::abs(b)) + eps * span * eps) {
      const R mid = (a + b) / R(2);
      if (stebz_detail::sturm_count(d, e, mid) >= idx + 1) {
        b = mid;
      } else {
        a = mid;
      }
      if (b - a < R(8) * eps * std::max(std::abs(a), std::abs(b)) + eps) break;
    }
    out[std::size_t(idx)] = (a + b) / R(2);
  }
  return out;
}

/// Eigenvector of the tridiagonal for a computed eigenvalue, by inverse
/// iteration: (T - lambda I) x_{k+1} = x_k solved with partially pivoted
/// Gaussian elimination on the tridiagonal (allowing one superdiagonal of
/// fill). The result is normalized; callers orthogonalize clusters.
template <typename R>
std::vector<R> tridiag_inverse_iteration(const std::vector<R>& d,
                                         const std::vector<R>& e, R lambda,
                                         std::uint64_t seed = 7) {
  const Index n = Index(d.size());
  std::vector<R> x(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (auto& v : x) v = rng.gaussian<R>();

  // Factor (T - lambda I) once: banded LU with partial pivoting.
  // Diagonals: dl (sub), dd (main), du (super), du2 (fill).
  std::vector<R> dl(static_cast<std::size_t>(n), R(0));
  std::vector<R> dd(static_cast<std::size_t>(n));
  std::vector<R> du(static_cast<std::size_t>(n), R(0));
  std::vector<R> du2(static_cast<std::size_t>(n), R(0));
  std::vector<int> piv(static_cast<std::size_t>(n), 0);
  for (Index i = 0; i < n; ++i) {
    dd[std::size_t(i)] = d[std::size_t(i)] - lambda;
    if (i + 1 < n) {
      dl[std::size_t(i)] = e[std::size_t(i)];  // A(i+1, i)
      du[std::size_t(i)] = e[std::size_t(i)];  // A(i, i+1)
    }
  }
  const R eps = std::numeric_limits<R>::epsilon();
  R tnorm = R(0);
  for (Index i = 0; i < n; ++i) {
    tnorm = std::max(tnorm, std::abs(dd[std::size_t(i)]) +
                                (i + 1 < n ? std::abs(du[std::size_t(i)]) : R(0)));
  }
  const R pert = std::max(tnorm, R(1)) * eps;

  for (Index i = 0; i + 1 < n; ++i) {
    if (std::abs(dl[std::size_t(i)]) > std::abs(dd[std::size_t(i)])) {
      // Swap rows i and i+1.
      piv[std::size_t(i)] = 1;
      std::swap(dd[std::size_t(i)], dl[std::size_t(i)]);
      std::swap(du[std::size_t(i)], dd[std::size_t(i + 1)]);
      if (i + 2 < n) {
        du2[std::size_t(i)] = du[std::size_t(i + 1)];
        du[std::size_t(i + 1)] = R(0);
      }
    }
    if (std::abs(dd[std::size_t(i)]) < pert) {
      dd[std::size_t(i)] = std::copysign(pert, dd[std::size_t(i)] == R(0)
                                                   ? R(1)
                                                   : dd[std::size_t(i)]);
    }
    const R m = dl[std::size_t(i)] / dd[std::size_t(i)];
    dl[std::size_t(i)] = m;  // store the multiplier
    dd[std::size_t(i + 1)] -= m * du[std::size_t(i)];
    if (i + 2 < n) du[std::size_t(i + 1)] -= m * du2[std::size_t(i)];
  }
  if (std::abs(dd[std::size_t(n - 1)]) < pert) {
    dd[std::size_t(n - 1)] = std::copysign(
        pert, dd[std::size_t(n - 1)] == R(0) ? R(1) : dd[std::size_t(n - 1)]);
  }

  auto solve = [&](std::vector<R>& rhs) {
    // Forward: apply the recorded row operations.
    for (Index i = 0; i + 1 < n; ++i) {
      if (piv[std::size_t(i)] != 0) {
        std::swap(rhs[std::size_t(i)], rhs[std::size_t(i + 1)]);
      }
      rhs[std::size_t(i + 1)] -= dl[std::size_t(i)] * rhs[std::size_t(i)];
    }
    // Back substitution with the two superdiagonals.
    for (Index i = n - 1; i >= 0; --i) {
      R acc = rhs[std::size_t(i)];
      if (i + 1 < n) acc -= du[std::size_t(i)] * rhs[std::size_t(i + 1)];
      if (i + 2 < n) acc -= du2[std::size_t(i)] * rhs[std::size_t(i + 2)];
      rhs[std::size_t(i)] = acc / dd[std::size_t(i)];
    }
  };

  for (int it = 0; it < 3; ++it) {
    solve(x);
    const R nrm = nrm2(n, x.data());
    CHASE_CHECK_MSG(nrm > R(0) && std::isfinite(nrm),
                    "inverse iteration broke down");
    for (auto& v : x) v /= nrm;
  }
  return x;
}

/// The k lowest eigenpairs of the symmetric tridiagonal: bisection for the
/// values, inverse iteration for the vectors, Gram-Schmidt inside clusters
/// (gap below cluster_tol * ||T||) to restore orthogonality of repeated
/// eigenvalues. z must be n x k.
template <typename R>
void tridiag_lowest_eigenpairs(const std::vector<R>& d,
                               const std::vector<R>& e, Index k,
                               std::vector<R>& w, MatrixView<R> z) {
  const Index n = Index(d.size());
  CHASE_CHECK(z.rows() == n && z.cols() == k);
  w = tridiag_lowest_eigenvalues(d, e, k);

  R tnorm = R(0);
  for (Index i = 0; i < n; ++i) tnorm = std::max(tnorm, std::abs(d[std::size_t(i)]));
  for (Index i = 0; i + 1 < n; ++i) {
    tnorm = std::max(tnorm, std::abs(e[std::size_t(i)]));
  }
  // Grouping criterion: inverse iteration cannot separate eigenvalues
  // closer than ~eps/gap allows, so vectors whose eigenvalues lie within a
  // relative 1e-5 of ||T|| are orthogonalized as one cluster (the LAPACK
  // stein strategy, with its usual consequence: intra-cluster residuals are
  // bounded by the cluster width, which is what invariant-subspace
  // consumers need).
  const R cluster_tol = R(1e-5) * std::max(tnorm, R(1));

  Index cluster_start = 0;
  for (Index j = 0; j < k; ++j) {
    auto x = tridiag_inverse_iteration(d, e, w[std::size_t(j)],
                                       11 + std::uint64_t(j));
    if (j > 0 &&
        w[std::size_t(j)] - w[std::size_t(j - 1)] > cluster_tol) {
      cluster_start = j;
    }
    // Orthogonalize against the current cluster (twice, for safety).
    for (int pass = 0; pass < 2; ++pass) {
      for (Index c = cluster_start; c < j; ++c) {
        const R proj = dotc(n, z.col(c), x.data());
        axpy(n, -proj, z.col(c), x.data());
      }
      const R nrm = nrm2(n, x.data());
      CHASE_CHECK_MSG(nrm > R(0), "cluster orthogonalization collapsed");
      for (Index i = 0; i < n; ++i) x[std::size_t(i)] /= nrm;
    }
    std::copy(x.begin(), x.end(), z.col(j));
  }
}

}  // namespace chase::la
