// Hermitian rank-k update kernels: C_upper = alpha X^H X + beta C_upper.
//
// Only the upper triangle of C is computed — the HERK saving (half the GEMM
// flops, the reason the BLAS has a dedicated routine). Two shapes:
//
//   naive_herk_upper   — conjugated dot products over the upper entries, the
//                        reference oracle;
//   blocked_herk_upper — the structure la::gram has used since the gemm
//                        micro-kernel engine landed, generalized to
//                        alpha/beta: kHerkBlock-wide column blocks whose
//                        off-diagonal tiles are plain GEMMs and whose
//                        diagonal tiles split recursively down to dotc
//                        leaves. The alpha == 1 / beta == 0 instance is
//                        bitwise the old gram path.
//
// The generalized beta lets the blocked right-looking POTRF express its
// trailing update as C_upper -= P^H P without a scratch matrix or a mirror.
#pragma once

#include "la/blas1.hpp"
#include "la/gemm.hpp"
#include "la/matrix.hpp"

namespace chase::la::factor {

/// Upper-triangle scale C_upper = beta * C_upper (beta == 0 overwrites, so
/// NaN/Inf garbage in C never propagates — same contract as gemm).
template <typename T>
inline void scale_upper(T beta, MatrixView<T> c) {
  if (beta == T(1)) return;
  for (Index j = 0; j < c.cols(); ++j) {
    for (Index i = 0; i <= j; ++i) {
      c(i, j) = beta == T(0) ? T(0) : beta * c(i, j);
    }
  }
}

template <typename T>
void naive_herk_upper(T alpha, ConstMatrixView<T> x, T beta, MatrixView<T> c) {
  const Index n = x.cols();
  const Index m = x.rows();
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) {
      const T acc = dotc(m, x.col(i), x.col(j));
      c(i, j) = alpha * acc + (beta == T(0) ? T(0) : beta * c(i, j));
    }
  }
}

namespace detail {

/// Upper triangle of a diagonal block: recursive split, GEMM top-right
/// quadrant, dotc leaves — only the ~nb^2/2 upper entries are computed.
template <typename T>
void herk_diag_upper(T alpha, ConstMatrixView<T> x, T beta, MatrixView<T> c) {
  const Index nb = x.cols();
  constexpr Index kLeaf = 12;
  if (nb <= kLeaf) {
    for (Index j = 0; j < nb; ++j) {
      for (Index i = 0; i <= j; ++i) {
        const T acc = dotc(x.rows(), x.col(i), x.col(j));
        c(i, j) = alpha * acc + (beta == T(0) ? T(0) : beta * c(i, j));
      }
    }
    return;
  }
  const Index h = nb / 2;
  herk_diag_upper(alpha, x.cols_range(0, h), beta, c.block(0, 0, h, h));
  auto topright = c.block(0, h, h, nb - h);
  gemm(alpha, Op::kConjTrans, x.cols_range(0, h), Op::kNoTrans,
       x.cols_range(h, nb - h), beta, topright);
  herk_diag_upper(alpha, x.cols_range(h, nb - h), beta,
                  c.block(h, h, nb - h, nb - h));
}

}  // namespace detail

/// Column-block width of the blocked HERK (matches the pre-engine la::gram).
inline constexpr Index kHerkBlock = 48;

template <typename T>
void blocked_herk_upper(T alpha, ConstMatrixView<T> x, T beta,
                        MatrixView<T> c) {
  const Index n = x.cols();
  for (Index j0 = 0; j0 < n; j0 += kHerkBlock) {
    const Index nj = std::min(kHerkBlock, n - j0);
    for (Index i0 = 0; i0 < j0; i0 += kHerkBlock) {
      const Index ni = std::min(kHerkBlock, n - i0);
      auto cij = c.block(i0, j0, ni, nj);
      gemm(alpha, Op::kConjTrans, x.cols_range(i0, ni), Op::kNoTrans,
           x.cols_range(j0, nj), beta, cij);
    }
    detail::herk_diag_upper(alpha, x.cols_range(j0, nj), beta,
                            c.block(j0, j0, nj, nj));
  }
}

}  // namespace chase::la::factor
