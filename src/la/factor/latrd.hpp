// Blocked Hermitian tridiagonalization (LAPACK latrd/hetrd shape, lower
// variant) and the matching Q back-accumulation.
//
//   naive_hetrd_reduce   — the seed kernel: one reflector per column, each
//                          followed by a full rank-2 (her2) update of the
//                          trailing matrix; O(n^3) BLAS-2 traffic.
//   blocked_hetrd_reduce — latrd panels: within a kFactorBlock panel each
//                          column is updated against the accumulated V/W
//                          panels (BLAS-1/2 on nb vectors), and the trailing
//                          matrix receives one rank-2k update
//                          A -= V W^H + W V^H as two GEMMs per panel — the
//                          HER2K lowering that moves two thirds of the
//                          reduction onto the micro-kernel engine.
//
// Both kernels leave the identical storage contract the seed established:
// reflector tails in the strict lower triangle (a(k+2.., k)), scales in
// `taus`, diagonal/subdiagonal of T in d/e — so either Q formation below can
// consume either reduction's output.
//
//   naive_hetrd_form_q   — backward per-reflector larf application (seed);
//   blocked_hetrd_form_q — compact-WY: per panel build V, form the T factor
//                          (larft) and apply I - V T V^H with GEMMs (larfb),
//                          making the Rayleigh-Ritz back-transform GEMM-rich
//                          as well.
#pragma once

#include <vector>

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm.hpp"
#include "la/householder.hpp"
#include "la/matrix.hpp"
#include "la/qr_blocked.hpp"

namespace chase::la::factor {

/// Seed reduction: per-column reflector + full her2 trailing update. The
/// caller guarantees n >= 2 and pre-sized d/e/taus.
template <typename T>
void naive_hetrd_reduce(MatrixView<T> a, std::vector<RealType<T>>& d,
                        std::vector<RealType<T>>& e, std::vector<T>& taus) {
  const Index n = a.rows();
  std::vector<T> x(static_cast<std::size_t>(n));
  std::vector<T> v(static_cast<std::size_t>(n));

  for (Index k = 0; k < n - 1; ++k) {
    const Index nv = n - k - 1;  // reflector length (rows k+1 .. n-1)
    T alpha = a(k + 1, k);
    auto refl = larfg(alpha, nv - 1, a.col(k) + k + 2);
    e[std::size_t(k)] = refl.beta;
    const T tau = refl.tau;
    taus[std::size_t(k)] = tau;

    if (tau != T(0)) {
      // v = [1; stored tail]
      v[0] = T(1);
      for (Index i = 1; i < nv; ++i) v[std::size_t(i)] = a(k + 1 + i, k);
      auto a22 = a.block(k + 1, k + 1, nv, nv);
      // x = tau * A22 * v
      gemv(tau, a22.as_const(), v.data(), T(0), x.data());
      // w = x - (tau/2) (x^H v) v
      const T corr = -tau * dotc(nv, x.data(), v.data()) / RealType<T>(2);
      axpy(nv, corr, v.data(), x.data());
      // A22 -= v w^H + w v^H
      her2_minus(a22, v.data(), x.data());
    }
    d[std::size_t(k)] = real_part(a(k, k));
  }
  d[std::size_t(n - 1)] = real_part(a(n - 1, n - 1));
}

/// latrd panel reduction. Panel rows are indexed relative to the panel's
/// first reflector row (global row k0+1 <-> local row 0); column j of V/W
/// holds reflector k0+j with its unit head at local row j.
template <typename T>
void blocked_hetrd_reduce(MatrixView<T> a, std::vector<RealType<T>>& d,
                          std::vector<RealType<T>>& e, std::vector<T>& taus) {
  const Index n = a.rows();
  const Index nref = n - 1;
  Matrix<T> vp(nref, std::min(kFactorBlock, nref));
  Matrix<T> wp(nref, std::min(kFactorBlock, nref));

  for (Index k0 = 0; k0 < nref; k0 += kFactorBlock) {
    const Index kb = std::min(kFactorBlock, nref - k0);
    const Index pr = nref - k0;  // panel rows (global rows k0+1 .. n-1)
    for (Index j = 0; j < kb; ++j) {
      const Index k = k0 + j;      // global column / reflector index
      const Index nv = n - k - 1;  // reflector length
      if (j > 0) {
        // Fold the panel's previous reflectors into column k (rows k..n-1):
        // a(k.., k) -= V conj(W(k,:)) + W conj(V(k,:)). Global row k sits at
        // local row j-1.
        T* ak = a.col(k) + k;
        const Index off = j - 1;
        const Index len = n - k;
        for (Index p = 0; p < j; ++p) {
          const T wk = conjugate(wp(off, p));
          const T vk = conjugate(vp(off, p));
          const T* vcol = vp.col(p) + off;
          const T* wcol = wp.col(p) + off;
          for (Index rr = 0; rr < len; ++rr) {
            ak[rr] -= vcol[rr] * wk + wcol[rr] * vk;
          }
        }
      }
      T alpha = a(k + 1, k);
      auto refl = larfg(alpha, nv - 1, a.col(k) + k + 2);
      e[std::size_t(k)] = refl.beta;
      const T tau = refl.tau;
      taus[std::size_t(k)] = tau;

      T* vj = vp.col(j);
      for (Index i = 0; i < j; ++i) vj[i] = T(0);
      vj[j] = T(1);
      for (Index i = j + 1; i < pr; ++i) vj[i] = a(k0 + 1 + i, k);

      T* wj = wp.col(j);
      for (Index i = 0; i < j; ++i) wj[i] = T(0);
      if (tau != T(0)) {
        // w = tau (A0 v - V (W^H v) - W (V^H v)) - (tau/2)(w^H v) v, where
        // A0 is the stored trailing block: the panel's rank-2k update has
        // not been applied to it yet, the V/W terms supply exactly that
        // correction restricted to v's support.
        auto a22 = a.block(k + 1, k + 1, nv, nv);
        gemv(tau, a22.as_const(), vj + j, T(0), wj + j);
        for (Index p = 0; p < j; ++p) {
          const T wv = dotc(nv, wp.col(p) + j, vj + j);
          axpy(nv, -tau * wv, vp.col(p) + j, wj + j);
          const T vv = dotc(nv, vp.col(p) + j, vj + j);
          axpy(nv, -tau * vv, wp.col(p) + j, wj + j);
        }
        const T corr = -tau * dotc(nv, wj + j, vj + j) / RealType<T>(2);
        axpy(nv, corr, vj + j, wj + j);
      } else {
        for (Index i = j; i < pr; ++i) wj[i] = T(0);
      }
      d[std::size_t(k)] = real_part(a(k, k));
    }

    // Rank-2k trailing update A22 -= V W^H + W V^H (global rows/cols >= k1;
    // global row k1 sits at local row kb-1). Both triangles are written so
    // the next panel's gemv sees a consistent Hermitian block, exactly as
    // the seed's her2 updates maintained.
    const Index k1 = k0 + kb;
    if (k1 < n) {
      const Index nt = n - k1;
      const Index off = kb - 1;
      auto a22 = a.block(k1, k1, nt, nt);
      auto vt = vp.block(off, 0, nt, kb);
      auto wt = wp.block(off, 0, nt, kb);
      gemm(T(-1), Op::kNoTrans, vt.as_const(), Op::kConjTrans, wt.as_const(),
           T(1), a22);
      gemm(T(-1), Op::kNoTrans, wt.as_const(), Op::kConjTrans, vt.as_const(),
           T(1), a22);
    }
  }
  d[std::size_t(n - 1)] = real_part(a(n - 1, n - 1));
}

/// Seed Q formation: Q = H_0 H_1 ... H_{n-2} by backward accumulation of one
/// reflector at a time on the identity.
template <typename T>
void naive_hetrd_form_q(ConstMatrixView<T> a, const std::vector<T>& taus,
                        MatrixView<T> q) {
  const Index n = a.rows();
  set_identity(q);
  std::vector<T> v(static_cast<std::size_t>(n));
  std::vector<T> work(static_cast<std::size_t>(n));
  for (Index k = n - 2; k >= 0; --k) {
    const Index nv = n - k - 1;
    v[0] = T(1);
    for (Index i = 1; i < nv; ++i) v[std::size_t(i)] = a(k + 1 + i, k);
    auto qblk = q.block(k + 1, k + 1, nv, nv);
    larf_left(taus[std::size_t(k)], v.data() + 1, nv, qblk, work.data());
  }
}

/// Compact-WY Q formation: per descending panel materialize the unit-lower-
/// trapezoidal V from the stored tails, build the forward T factor and apply
/// the block reflector I - V T V^H to the trailing block of Q with GEMMs.
/// Columns <= k0 of Q are still identity columns with no overlap with V's
/// row support, so restricting the application to the trailing block matches
/// the per-reflector accumulation.
template <typename T>
void blocked_hetrd_form_q(ConstMatrixView<T> a, const std::vector<T>& taus,
                          MatrixView<T> q) {
  const Index n = a.rows();
  set_identity(q);
  const Index nref = n - 1;
  const Index nb = std::min(kFactorBlock, nref);
  Matrix<T> vwork(nref, nb), twork(nb, nb), bwork(nb, nref);
  const Index nblocks = (nref + nb - 1) / nb;
  for (Index blk = nblocks - 1; blk >= 0; --blk) {
    const Index k0 = blk * nb;
    const Index kb = std::min(nb, nref - k0);
    const Index nrows = nref - k0;  // global rows k0+1 .. n-1
    auto v = vwork.block(0, 0, nrows, kb);
    for (Index j = 0; j < kb; ++j) {
      const Index k = k0 + j;
      for (Index i = 0; i < nrows; ++i) {
        v(i, j) = i < j ? T(0) : (i == j ? T(1) : a(k0 + 1 + i, k));
      }
    }
    std::vector<T> blk_tau(taus.begin() + std::size_t(k0),
                           taus.begin() + std::size_t(k0 + kb));
    auto t_blk = twork.block(0, 0, kb, kb);
    la::detail::larft(v.as_const(), blk_tau, t_blk);
    auto target = q.block(k0 + 1, k0 + 1, nrows, nrows);
    auto w = bwork.block(0, 0, kb, nrows);
    larfb_left(v.as_const(), t_blk.as_const(), /*conj=*/false, target, w);
  }
}

}  // namespace chase::la::factor
