// Cholesky factorization kernels.
//
//   unblocked_potrf_upper — the seed left-looking scalar kernel, with the
//       pivot floor passed in so the blocked algorithm can reuse it on
//       diagonal blocks without re-deriving the tolerance from a partially
//       factored diagonal.
//   blocked_potrf_upper   — LAPACK right-looking shape: factor a
//       kFactorBlock diagonal block, triangular-solve the block row
//       (R_jj^H R_jk = A_jk), then fold the block row into the trailing
//       matrix with an upper-triangle HERK. All but O(n^2 nb) of the n^3/3
//       work is the HERK/GEMM lowering.
//
// Both kernels preserve the seed contract: on success the strict lower
// triangle is exactly zero; on breakdown the LAPACK info index (j+1, global)
// of the first non-positive-definite pivot is returned, with the relative
// floor computed from the *original* diagonal in both shapes so structured
// breakdowns report the same index under either policy.
#pragma once

#include <cmath>

#include "la/factor/herk_kernels.hpp"
#include "la/factor/policy.hpp"
#include "la/factor/trsm_kernels.hpp"
#include "la/matrix.hpp"

namespace chase::la::factor {

/// Seed left-looking kernel on one (diagonal) block; `pivot_floor` is the
/// absolute breakdown threshold. Returns the local LAPACK info.
template <typename T>
int unblocked_potrf_upper(MatrixView<T> a, RealType<T> pivot_floor) {
  using R = RealType<T>;
  const Index n = a.rows();
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      T acc = a(i, j);
      for (Index k = 0; k < i; ++k) acc -= conjugate(a(k, i)) * a(k, j);
      a(i, j) = acc / a(i, i);
    }
    R diag = real_part(a(j, j));
    for (Index k = 0; k < j; ++k) {
      diag -= real_part(conjugate(a(k, j)) * a(k, j));
    }
    if (!(diag > pivot_floor) || !(diag > R(0)) || !std::isfinite(diag)) {
      return int(j) + 1;
    }
    a(j, j) = T(std::sqrt(diag));
    for (Index i = j + 1; i < n; ++i) a(i, j) = T(0);
  }
  return 0;
}

/// The relative pivot floor of the seed kernel: rel_pivot_tol times the
/// largest original diagonal entry.
template <typename T>
RealType<T> potrf_pivot_floor(ConstMatrixView<T> a,
                              RealType<T> rel_pivot_tol) {
  using R = RealType<T>;
  R max_diag(0);
  for (Index j = 0; j < a.rows(); ++j) {
    max_diag = std::max(max_diag, real_part(a(j, j)));
  }
  return rel_pivot_tol * max_diag;
}

template <typename T>
int naive_potrf_upper(MatrixView<T> a, RealType<T> rel_pivot_tol) {
  return unblocked_potrf_upper(a, potrf_pivot_floor(a.as_const(),
                                                    rel_pivot_tol));
}

template <typename T>
int blocked_potrf_upper(MatrixView<T> a, RealType<T> rel_pivot_tol) {
  const Index n = a.rows();
  const RealType<T> floor_val =
      potrf_pivot_floor(a.as_const(), rel_pivot_tol);
  if (n <= kFactorBlock) {
    return unblocked_potrf_upper(a, floor_val);
  }
  for (Index j0 = 0; j0 < n; j0 += kFactorBlock) {
    const Index jb = std::min(kFactorBlock, n - j0);
    const int info =
        unblocked_potrf_upper(a.block(j0, j0, jb, jb), floor_val);
    if (info != 0) return info + int(j0);
    const Index j1 = j0 + jb;
    if (j1 < n) {
      // Block-row solve R_jj^H R_jk = A_jk; the panel is only jb rows tall,
      // so the scalar substitution is O(nb^2) per column of the GEMM-rich
      // remainder.
      auto panel = a.block(j0, j1, jb, n - j1);
      naive_trsm_left_upper_conj(a.block(j0, j0, jb, jb).as_const(), panel);
      // Trailing update A_kk -= R_jk^H R_jk, upper triangle only: the
      // factorization never reads below the diagonal.
      blocked_herk_upper(T(-1), panel.as_const(), T(1),
                         a.block(j1, j1, n - j1, n - j1));
    }
  }
  // The unblocked kernel zeroes within diagonal blocks; clear the rest of
  // the strict lower triangle so the seed contract (exact zeros) holds.
  for (Index j = 0; j < n; ++j) {
    for (Index i = j + 1; i < n; ++i) a(i, j) = T(0);
  }
  return 0;
}

}  // namespace chase::la::factor
