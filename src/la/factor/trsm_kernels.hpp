// Triangular solve / multiply kernels of the factorization engine.
//
// Each operation comes in two shapes (la/factor/policy.hpp):
//
//   naive_*   — the seed scalar kernels, kept verbatim as oracles;
//   blocked_* — the triangle split into kFactorBlock-wide panels: the
//               diagonal blocks run the naive kernel and every off-diagonal
//               block is one GEMM, so all but O(n m nb) of the O(n^2 m) work
//               rides the register-tiled micro engine.
//
// The public dispatchers live in la/trsm.hpp; these kernels are also called
// directly by the blocked POTRF (panel solves) and the compact-WY larfb.
#pragma once

#include "la/blas1.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm.hpp"
#include "la/matrix.hpp"

namespace chase::la::factor {

/// X <- X * R^{-1}, R upper triangular (seed kernel: per-column axpy).
template <typename T>
void naive_trsm_right_upper(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  const Index m = x.rows();
  for (Index j = 0; j < n; ++j) {
    T* xj = x.col(j);
    for (Index l = 0; l < j; ++l) {
      axpy(m, -r(l, j), x.col(l), xj);
    }
    const T inv = T(1) / r(j, j);
    scal(m, inv, xj);
  }
}

/// X <- X * R^{-1}, column panels: X_j already-solved columns enter through
/// one GEMM, then the diagonal block back-substitutes.
template <typename T>
void blocked_trsm_right_upper(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  if (n <= kFactorBlock) {
    naive_trsm_right_upper(r, x);
    return;
  }
  for (Index j0 = 0; j0 < n; j0 += kFactorBlock) {
    const Index jb = std::min(kFactorBlock, n - j0);
    auto xj = x.cols_range(j0, jb);
    if (j0 > 0) {
      gemm(T(-1), Op::kNoTrans, x.cols_range(0, j0).as_const(), Op::kNoTrans,
           r.block(0, j0, j0, jb), T(1), xj);
    }
    naive_trsm_right_upper(r.block(j0, j0, jb, jb), xj);
  }
}

/// X <- L^{-1} X, L lower triangular (seed kernel: forward substitution).
template <typename T>
void naive_trsm_left_lower(ConstMatrixView<T> l, MatrixView<T> x) {
  const Index n = l.rows();
  for (Index j = 0; j < x.cols(); ++j) {
    T* xj = x.col(j);
    for (Index i = 0; i < n; ++i) {
      T acc = xj[i];
      for (Index k = 0; k < i; ++k) acc -= l(i, k) * xj[k];
      xj[i] = acc / l(i, i);
    }
  }
}

/// X <- L^{-1} X, row panels: the contribution of already-solved row blocks
/// is one GEMM, then the diagonal block forward-substitutes.
template <typename T>
void blocked_trsm_left_lower(ConstMatrixView<T> l, MatrixView<T> x) {
  const Index n = l.rows();
  if (n <= kFactorBlock) {
    naive_trsm_left_lower(l, x);
    return;
  }
  const Index ncols = x.cols();
  for (Index i0 = 0; i0 < n; i0 += kFactorBlock) {
    const Index ib = std::min(kFactorBlock, n - i0);
    auto xi = x.block(i0, 0, ib, ncols);
    if (i0 > 0) {
      gemm(T(-1), Op::kNoTrans, l.block(i0, 0, ib, i0), Op::kNoTrans,
           x.block(0, 0, i0, ncols).as_const(), T(1), xi);
    }
    naive_trsm_left_lower(l.block(i0, i0, ib, ib), xi);
  }
}

/// X <- R^{-H} X, R upper triangular (seed kernel: forward substitution on
/// the implicitly-conjugated lower factor R^H).
template <typename T>
void naive_trsm_left_upper_conj(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  for (Index j = 0; j < x.cols(); ++j) {
    T* xj = x.col(j);
    for (Index i = 0; i < n; ++i) {
      T acc = xj[i];
      for (Index k = 0; k < i; ++k) acc -= conjugate(r(k, i)) * xj[k];
      xj[i] = acc / conjugate(r(i, i));
    }
  }
}

/// X <- R^{-H} X, row panels: solved row blocks fold in through one
/// conjugate-transposed GEMM against the upper rectangle of R.
template <typename T>
void blocked_trsm_left_upper_conj(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  if (n <= kFactorBlock) {
    naive_trsm_left_upper_conj(r, x);
    return;
  }
  const Index ncols = x.cols();
  for (Index i0 = 0; i0 < n; i0 += kFactorBlock) {
    const Index ib = std::min(kFactorBlock, n - i0);
    auto xi = x.block(i0, 0, ib, ncols);
    if (i0 > 0) {
      // (R^H)(i0:, 0:i0) = conj(R(0:i0, i0:))^T.
      gemm(T(-1), Op::kConjTrans, r.block(0, i0, i0, ib), Op::kNoTrans,
           x.block(0, 0, i0, ncols).as_const(), T(1), xi);
    }
    naive_trsm_left_upper_conj(r.block(i0, i0, ib, ib), xi);
  }
}

/// X <- X * R, R upper triangular (seed kernel: backward per-column axpy).
template <typename T>
void naive_trmm_right_upper(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  const Index m = x.rows();
  for (Index j = n - 1; j >= 0; --j) {
    T* xj = x.col(j);
    scal(m, r(j, j), xj);
    for (Index l = 0; l < j; ++l) {
      axpy(m, r(l, j), x.col(l), xj);
    }
  }
}

/// X <- X * R, column panels right-to-left: the diagonal block multiplies in
/// place, then the not-yet-overwritten left columns enter through one GEMM.
template <typename T>
void blocked_trmm_right_upper(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  if (n <= kFactorBlock) {
    naive_trmm_right_upper(r, x);
    return;
  }
  const Index nblocks = (n + kFactorBlock - 1) / kFactorBlock;
  for (Index blk = nblocks - 1; blk >= 0; --blk) {
    const Index j0 = blk * kFactorBlock;
    const Index jb = std::min(kFactorBlock, n - j0);
    auto xj = x.cols_range(j0, jb);
    naive_trmm_right_upper(r.block(j0, j0, jb, jb), xj);
    if (j0 > 0) {
      gemm(T(1), Op::kNoTrans, x.cols_range(0, j0).as_const(), Op::kNoTrans,
           r.block(0, j0, j0, jb), T(1), xj);
    }
  }
}

/// W <- U W in place, U upper triangular (the T-factor multiply of the
/// compact-WY larfb). Ascending rows read only not-yet-overwritten entries,
/// so the result is bitwise what a separate-output multiply produces.
template <typename T>
void naive_trmm_left_upper(ConstMatrixView<T> u, MatrixView<T> w) {
  const Index k = u.rows();
  for (Index j = 0; j < w.cols(); ++j) {
    T* wj = w.col(j);
    for (Index i = 0; i < k; ++i) {
      T acc(0);
      for (Index r = i; r < k; ++r) acc += u(i, r) * wj[r];
      wj[i] = acc;
    }
  }
}

/// W <- U W in place, row panels top-down: the diagonal block multiplies in
/// place after one GEMM folds in the (still untouched) rows below.
template <typename T>
void blocked_trmm_left_upper(ConstMatrixView<T> u, MatrixView<T> w) {
  const Index k = u.rows();
  if (k <= kFactorBlock) {
    naive_trmm_left_upper(u, w);
    return;
  }
  const Index ncols = w.cols();
  for (Index i0 = 0; i0 < k; i0 += kFactorBlock) {
    const Index ib = std::min(kFactorBlock, k - i0);
    auto wi = w.block(i0, 0, ib, ncols);
    naive_trmm_left_upper(u.block(i0, i0, ib, ib), wi);
    if (i0 + ib < k) {
      gemm(T(1), Op::kNoTrans, u.block(i0, i0 + ib, ib, k - i0 - ib),
           Op::kNoTrans, w.block(i0 + ib, 0, k - i0 - ib, ncols).as_const(),
           T(1), wi);
    }
  }
}

/// W <- U^H W in place, U upper triangular (so U^H is lower). Descending rows
/// read only not-yet-overwritten entries.
template <typename T>
void naive_trmm_left_upper_conj(ConstMatrixView<T> u, MatrixView<T> w) {
  const Index k = u.rows();
  for (Index j = 0; j < w.cols(); ++j) {
    T* wj = w.col(j);
    for (Index i = k - 1; i >= 0; --i) {
      T acc(0);
      for (Index r = 0; r <= i; ++r) acc += conjugate(u(r, i)) * wj[r];
      wj[i] = acc;
    }
  }
}

/// W <- U^H W in place, row panels bottom-up with one GEMM per panel against
/// the rows above (still untouched in the descending sweep).
template <typename T>
void blocked_trmm_left_upper_conj(ConstMatrixView<T> u, MatrixView<T> w) {
  const Index k = u.rows();
  if (k <= kFactorBlock) {
    naive_trmm_left_upper_conj(u, w);
    return;
  }
  const Index ncols = w.cols();
  const Index nblocks = (k + kFactorBlock - 1) / kFactorBlock;
  for (Index blk = nblocks - 1; blk >= 0; --blk) {
    const Index i0 = blk * kFactorBlock;
    const Index ib = std::min(kFactorBlock, k - i0);
    auto wi = w.block(i0, 0, ib, ncols);
    naive_trmm_left_upper_conj(u.block(i0, i0, ib, ib), wi);
    if (i0 > 0) {
      gemm(T(1), Op::kConjTrans, u.block(0, i0, i0, ib), Op::kNoTrans,
           w.block(0, 0, i0, ncols).as_const(), T(1), wi);
    }
  }
}

}  // namespace chase::la::factor
