#include "la/factor/policy.hpp"

#include <atomic>
#include <cstdlib>

// Build-time default policy, plumbed through the CMake cache variable
// CHASE_DEFAULT_FACTOR_KERNEL (CMakePresets.json).
#ifndef CHASE_FACTOR_DEFAULT_KERNEL
#define CHASE_FACTOR_DEFAULT_KERNEL "blocked"
#endif

namespace chase::la {

namespace {

std::atomic<int>& kernel_slot() {
  static std::atomic<int> slot = [] {
    FactorKernel k = parse_factor_kernel(CHASE_FACTOR_DEFAULT_KERNEL)
                         .value_or(FactorKernel::kBlocked);
    if (const char* env = std::getenv("CHASE_FACTOR_KERNEL")) {
      if (auto parsed = parse_factor_kernel(env)) k = *parsed;
    }
    return std::atomic<int>(int(k));
  }();
  return slot;
}

}  // namespace

std::string_view factor_kernel_name(FactorKernel k) {
  switch (k) {
    case FactorKernel::kNaive:
      return "naive";
    case FactorKernel::kBlocked:
    default:
      return "blocked";
  }
}

std::string_view factor_kernel_counter(FactorKernel k) {
  switch (k) {
    case FactorKernel::kNaive:
      return "la.factor.naive.calls";
    case FactorKernel::kBlocked:
    default:
      return "la.factor.blocked.calls";
  }
}

std::optional<FactorKernel> parse_factor_kernel(std::string_view name) {
  if (name == "naive") return FactorKernel::kNaive;
  if (name == "blocked") return FactorKernel::kBlocked;
  return std::nullopt;
}

FactorKernel factor_kernel() {
  return FactorKernel(kernel_slot().load(std::memory_order_relaxed));
}

void set_factor_kernel(FactorKernel k) {
  kernel_slot().store(int(k), std::memory_order_relaxed);
}

}  // namespace chase::la
