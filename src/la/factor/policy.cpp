#include "la/factor/policy.hpp"

#include <atomic>
#include <cstdlib>

// Build-time default policy, plumbed through the CMake cache variable
// CHASE_DEFAULT_FACTOR_KERNEL (CMakePresets.json).
#ifndef CHASE_FACTOR_DEFAULT_KERNEL
#define CHASE_FACTOR_DEFAULT_KERNEL "blocked"
#endif

namespace chase::la {

namespace {

constexpr int kNoOverride = -1;

FactorKernel build_default_kernel() {
  return parse_factor_kernel(CHASE_FACTOR_DEFAULT_KERNEL)
      .value_or(FactorKernel::kBlocked);
}

// Explicit override slot: kNoOverride until the CHASE_FACTOR_KERNEL env var
// (read once, at first use) or set_factor_kernel() pins a kernel.
std::atomic<int>& override_slot() {
  static std::atomic<int> slot = [] {
    int raw = kNoOverride;
    if (const char* env = std::getenv("CHASE_FACTOR_KERNEL")) {
      if (auto parsed = parse_factor_kernel(env)) raw = int(*parsed);
    }
    return std::atomic<int>(raw);
  }();
  return slot;
}

}  // namespace

std::string_view factor_kernel_name(FactorKernel k) {
  switch (k) {
    case FactorKernel::kNaive:
      return "naive";
    case FactorKernel::kBlocked:
    default:
      return "blocked";
  }
}

std::string_view factor_kernel_counter(FactorKernel k) {
  switch (k) {
    case FactorKernel::kNaive:
      return "la.factor.naive.calls";
    case FactorKernel::kBlocked:
    default:
      return "la.factor.blocked.calls";
  }
}

std::optional<FactorKernel> parse_factor_kernel(std::string_view name) {
  if (name == "naive") return FactorKernel::kNaive;
  if (name == "blocked") return FactorKernel::kBlocked;
  return std::nullopt;
}

FactorKernel factor_kernel() {
  const int raw = override_slot().load(std::memory_order_relaxed);
  return raw == kNoOverride ? build_default_kernel() : FactorKernel(raw);
}

void set_factor_kernel(FactorKernel k) {
  override_slot().store(int(k), std::memory_order_relaxed);
}

bool factor_kernel_overridden() {
  return override_slot().load(std::memory_order_relaxed) != kNoOverride;
}

int raw_factor_kernel_override() {
  return override_slot().load(std::memory_order_relaxed);
}

void set_raw_factor_kernel_override(int raw) {
  override_slot().store(raw, std::memory_order_relaxed);
}

FactorKernel factor_kernel_for(Index n) {
  const int raw = override_slot().load(std::memory_order_relaxed);
  if (raw != kNoOverride) return FactorKernel(raw);
  if (const perf::TunedTables* t = perf::tuned_tables()) {
    const int tuned = t->factor_kernel[int(perf::factor_n_class(n))];
    if (tuned >= 0) return FactorKernel(tuned);
  }
  return build_default_kernel();
}

}  // namespace chase::la
