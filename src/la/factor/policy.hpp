// Runtime policy for the blocked factorization engine (src/la/factor/).
//
// Mirrors the gemm policy (src/la/gemm_policy.hpp): the process picks one of
// two kernel implementations for every TRSM/TRMM/POTRF/HERK/HETRD and
// compact-WY (larft/larfb) call,
//
//   CHASE_FACTOR_KERNEL = naive | blocked   (default: the CMake cache
//       variable CHASE_DEFAULT_FACTOR_KERNEL baked into the build)
//
//   naive   — the seed scalar kernels: per-column axpy substitution,
//             left-looking scalar POTRF, dotc Gram loops, per-reflector
//             rank-2 HETRD updates. Kept verbatim as the reference oracle
//             every blocked kernel is validated against (tests/la) and the
//             floor the bench trajectory measures speedups from.
//   blocked — LAPACK-shaped blocked algorithms: the triangle is split into
//             kFactorBlock-wide panels, the diagonal blocks run the naive
//             kernel, and all off-diagonal work is lowered onto la::gemm —
//             which the GEMM policy in turn routes to the register-tiled
//             micro engine. This converts the O(n^3) factorization paths of
//             CholeskyQR and the Rayleigh-Ritz HEEVD from cache-hostile
//             scalar loops into micro-kernel flops.
//
// Resolution order per call (the autotuner contract, DESIGN.md §15):
//   1. explicit override — the CHASE_FACTOR_KERNEL env var or a
//      set_factor_kernel()/ScopedFactorKernel guard;
//   2. loaded machine profile — the per-triangular-size-class winner from
//      perf::tuned_tables() (installed by tune::install_profile);
//   3. built-in default — the build-time CHASE_DEFAULT_FACTOR_KERNEL.
//
// The policy is process-global and cheap to read (one relaxed atomic load);
// ScopedFactorKernel lets benches and tests flip it per section.
#pragma once

#include <optional>
#include <string_view>

#include "la/matrix.hpp"
#include "perf/tuned.hpp"

namespace chase::la {

enum class FactorKernel : int { kNaive = 0, kBlocked };

/// Panel width of every blocked factorization kernel. Blocked kernels fall
/// back to the naive path whenever the triangular dimension fits in one
/// panel, so small subspace factorizations (n_e <= 64) are bitwise identical
/// across policies and the blocked machinery only engages where the GEMM
/// lowering pays.
inline constexpr Index kFactorBlock = 64;

std::string_view factor_kernel_name(FactorKernel k);
std::optional<FactorKernel> parse_factor_kernel(std::string_view name);

/// Per-call Tracker counter name for a kernel ("la.factor.<name>.calls").
std::string_view factor_kernel_counter(FactorKernel k);

/// Effective process-wide policy: the explicit override when one is set
/// (CHASE_FACTOR_KERNEL at first use, or set_factor_kernel), else the
/// build-time default. Shape-oblivious — the dispatchers use
/// factor_kernel_for().
FactorKernel factor_kernel();

/// Pin an explicit override. Overrides beat any loaded profile.
void set_factor_kernel(FactorKernel k);

/// True when an explicit override (env or set_factor_kernel) is pinned.
bool factor_kernel_overridden();

/// Raw override slot for exact save/restore (-1 = no override).
int raw_factor_kernel_override();
void set_raw_factor_kernel_override(int raw);

/// Shape-aware kernel choice for one factorization over an n x n triangle:
/// override > profile table entry > built-in default.
FactorKernel factor_kernel_for(Index n);

/// RAII policy override for benches and tests. Restores the previous raw
/// override state (including "none") on exit.
class ScopedFactorKernel {
 public:
  explicit ScopedFactorKernel(FactorKernel k)
      : prev_(raw_factor_kernel_override()) {
    set_factor_kernel(k);
  }
  ~ScopedFactorKernel() { set_raw_factor_kernel_override(prev_); }
  ScopedFactorKernel(const ScopedFactorKernel&) = delete;
  ScopedFactorKernel& operator=(const ScopedFactorKernel&) = delete;

 private:
  int prev_;
};

}  // namespace chase::la
