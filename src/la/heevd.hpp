// Dense Hermitian eigensolver: Householder tridiagonalization followed by
// the implicit-shift QL iteration with accumulated transformations.
//
// This is the LAPACK HE(SY)EVD equivalent that ChASE calls redundantly on
// every rank to diagonalize the n_e x n_e Rayleigh-Ritz quotient (Algorithm 2
// line 18), and the core of the one-stage direct-solver baseline.
#pragma once

#include <cmath>
#include <numeric>
#include <vector>

#include "common/timer.hpp"
#include "la/blas2.hpp"
#include "la/factor/latrd.hpp"
#include "la/factor/policy.hpp"
#include "la/householder.hpp"
#include "la/matrix.hpp"
#include "la/trsm.hpp"

namespace chase::la {

/// Reduce the Hermitian matrix `a` (full storage, lower triangle referenced
/// and updated both triangles) to real symmetric tridiagonal form
/// A = Q T Q^H. On exit d/e hold the diagonal and subdiagonal of T and `q`
/// holds the unitary back-transform Q (zhetrd + zungtr, lower variant).
///
/// Policy dispatcher (CHASE_FACTOR_KERNEL, la/factor/policy.hpp): `naive`
/// runs the seed per-reflector rank-2 updates, `blocked` the latrd panel
/// reduction with a rank-2k GEMM trailing update plus a compact-WY Q
/// back-accumulation (la/factor/latrd.hpp). Tracked calls record
/// "la.hetrd.flops" / "la.hetrd.seconds" for the machine-model
/// factorization-rate calibration.
template <typename T>
void hetrd_lower(MatrixView<T> a, std::vector<RealType<T>>& d,
                 std::vector<RealType<T>>& e, MatrixView<T> q) {
  using R = RealType<T>;
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n && q.rows() == n && q.cols() == n);
  d.assign(std::size_t(n), R(0));
  e.assign(std::size_t(std::max<Index>(n - 1, 0)), R(0));
  if (n == 0) return;
  if (n == 1) {
    d[0] = real_part(a(0, 0));
    set_identity(q);
    return;
  }

  std::vector<T> taus(std::size_t(n - 1), T(0));
  const FactorKernel kernel = factor_kernel_for(n);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  // Like the other blocked kernels, subspace-sized problems (a single panel
  // or less) take the seed path so both policies agree bitwise there.
  if (kernel == FactorKernel::kBlocked && n > kFactorBlock) {
    factor::blocked_hetrd_reduce(a, d, e, taus);
    factor::blocked_hetrd_form_q(a.as_const(), taus, q);
  } else {
    factor::naive_hetrd_reduce(a, d, e, taus);
    factor::naive_hetrd_form_q(a.as_const(), taus, q);
  }
  if (tracked) {
    // Reduction (4/3 n^3) + Q formation (4/3 n^3), x4 complex.
    detail::record_factor_call(
        "la.hetrd.flops", "la.hetrd.seconds", kernel,
        (kIsComplex<T> ? 4.0 : 1.0) * 8.0 / 3.0 * double(n) * double(n) *
            double(n),
        timer.seconds());
  }
}

/// Implicit-shift QL iteration on a real symmetric tridiagonal (d, e) with
/// rotations accumulated into the columns of z (EISPACK tql2). Returns false
/// if an eigenvalue failed to converge within the iteration cap.
template <typename T>
bool steql(std::vector<RealType<T>>& d, std::vector<RealType<T>>& e,
           MatrixView<T> z) {
  using R = RealType<T>;
  const Index n = Index(d.size());
  if (n <= 1) return true;
  // e needs a guard slot: e[n-1] is written when an l-iteration terminates
  // with no interior split (classic tql2 storage convention).
  CHASE_CHECK(Index(e.size()) >= n);
  const R eps = std::numeric_limits<R>::epsilon();
  constexpr int kMaxIter = 60;

  for (Index l = 0; l < n; ++l) {
    int iter = 0;
    while (true) {
      // Look for a negligible off-diagonal element to split the problem.
      Index m = l;
      for (; m < n - 1; ++m) {
        const R dd = std::abs(d[std::size_t(m)]) + std::abs(d[std::size_t(m + 1)]);
        if (std::abs(e[std::size_t(m)]) <= eps * dd) break;
      }
      if (m == l) break;
      if (iter++ == kMaxIter) return false;

      // Wilkinson-like shift from the 2x2 block at l.
      R g = (d[std::size_t(l + 1)] - d[std::size_t(l)]) /
            (R(2) * e[std::size_t(l)]);
      R r = std::hypot(g, R(1));
      g = d[std::size_t(m)] - d[std::size_t(l)] +
          e[std::size_t(l)] / (g + std::copysign(r, g));
      R s = R(1), c = R(1), p = R(0);
      bool underflow = false;

      for (Index i = m - 1; i >= l; --i) {
        const R f = s * e[std::size_t(i)];
        const R b = c * e[std::size_t(i)];
        r = std::hypot(f, g);
        e[std::size_t(i + 1)] = r;
        if (r == R(0)) {
          // Recover from underflow by restarting this l-iteration.
          d[std::size_t(i + 1)] -= p;
          e[std::size_t(m)] = R(0);
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[std::size_t(i + 1)] - p;
        r = (d[std::size_t(i)] - g) * s + R(2) * c * b;
        p = s * r;
        d[std::size_t(i + 1)] = g + p;
        g = c * r - b;

        // Accumulate the (real) rotation into eigenvector columns i, i+1.
        T* zi = z.col(i);
        T* zi1 = z.col(i + 1);
        for (Index k = 0; k < z.rows(); ++k) {
          const T f2 = zi1[k];
          zi1[k] = T(s) * zi[k] + T(c) * f2;
          zi[k] = T(c) * zi[k] - T(s) * f2;
        }
      }
      if (underflow) continue;
      d[std::size_t(l)] -= p;
      e[std::size_t(l)] = g;
      e[std::size_t(m)] = R(0);
    }
  }
  return true;
}

/// Sort eigenpairs ascending in place (selection sort with column swaps; n
/// is small — the subspace size n_e — so the O(n^2) swap cost is negligible).
template <typename T>
void sort_eigenpairs(std::vector<RealType<T>>& w, MatrixView<T> z) {
  const Index n = Index(w.size());
  CHASE_CHECK(z.cols() == n);
  for (Index i = 0; i < n; ++i) {
    Index best = i;
    for (Index j = i + 1; j < n; ++j) {
      if (w[std::size_t(j)] < w[std::size_t(best)]) best = j;
    }
    if (best != i) {
      std::swap(w[std::size_t(i)], w[std::size_t(best)]);
      for (Index k = 0; k < z.rows(); ++k) std::swap(z(k, i), z(k, best));
    }
  }
}

/// Full Hermitian eigendecomposition: on exit w holds the eigenvalues in
/// ascending order and z the corresponding orthonormal eigenvectors; the
/// input matrix is destroyed. Throws on (exceedingly rare) QL non-convergence.
template <typename T>
void heevd(MatrixView<T> a, std::vector<RealType<T>>& w, MatrixView<T> z) {
  using R = RealType<T>;
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n && z.rows() == n && z.cols() == n);
  std::vector<R> d, e;
  hetrd_lower(a, d, e, z);
  e.push_back(R(0));  // tql2-style guard slot
  CHASE_CHECK_MSG(steql(d, e, z), "heevd: QL iteration failed to converge");
  w.assign(d.begin(), d.end());
  sort_eigenpairs(w, z);
}

}  // namespace chase::la
