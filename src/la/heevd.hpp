// Dense Hermitian eigensolver: Householder tridiagonalization followed by
// the implicit-shift QL iteration with accumulated transformations.
//
// This is the LAPACK HE(SY)EVD equivalent that ChASE calls redundantly on
// every rank to diagonalize the n_e x n_e Rayleigh-Ritz quotient (Algorithm 2
// line 18), and the core of the one-stage direct-solver baseline.
#pragma once

#include <cmath>
#include <numeric>
#include <vector>

#include "la/blas2.hpp"
#include "la/householder.hpp"
#include "la/matrix.hpp"

namespace chase::la {

/// Reduce the Hermitian matrix `a` (full storage, lower triangle referenced
/// and updated both triangles) to real symmetric tridiagonal form
/// A = Q T Q^H. On exit d/e hold the diagonal and subdiagonal of T and `q`
/// holds the unitary back-transform Q (zhetrd + zungtr, lower variant).
template <typename T>
void hetrd_lower(MatrixView<T> a, std::vector<RealType<T>>& d,
                 std::vector<RealType<T>>& e, MatrixView<T> q) {
  using R = RealType<T>;
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n && q.rows() == n && q.cols() == n);
  d.assign(std::size_t(n), R(0));
  e.assign(std::size_t(std::max<Index>(n - 1, 0)), R(0));
  if (n == 0) return;
  if (n == 1) {
    d[0] = real_part(a(0, 0));
    set_identity(q);
    return;
  }

  std::vector<T> taus(std::size_t(n - 1), T(0));
  std::vector<T> x(static_cast<std::size_t>(n));
  std::vector<T> v(static_cast<std::size_t>(n));

  for (Index k = 0; k < n - 1; ++k) {
    const Index nv = n - k - 1;  // reflector length (rows k+1 .. n-1)
    T alpha = a(k + 1, k);
    auto refl = larfg(alpha, nv - 1, a.col(k) + k + 2);
    e[std::size_t(k)] = refl.beta;
    const T tau = refl.tau;
    taus[std::size_t(k)] = tau;

    if (tau != T(0)) {
      // v = [1; stored tail]
      v[0] = T(1);
      for (Index i = 1; i < nv; ++i) v[std::size_t(i)] = a(k + 1 + i, k);
      auto a22 = a.block(k + 1, k + 1, nv, nv);
      // x = tau * A22 * v
      gemv(tau, a22.as_const(), v.data(), T(0), x.data());
      // w = x - (tau/2) (x^H v) v
      const T corr = -tau * dotc(nv, x.data(), v.data()) / RealType<T>(2);
      axpy(nv, corr, v.data(), x.data());
      // A22 -= v w^H + w v^H
      her2_minus(a22, v.data(), x.data());
    }
    d[std::size_t(k)] = real_part(a(k, k));
  }
  d[std::size_t(n - 1)] = real_part(a(n - 1, n - 1));

  // Form Q = H_0 H_1 ... H_{n-2} by backward accumulation on the identity.
  set_identity(q);
  std::vector<T> work(static_cast<std::size_t>(n));
  for (Index k = n - 2; k >= 0; --k) {
    const Index nv = n - k - 1;
    v[0] = T(1);
    for (Index i = 1; i < nv; ++i) v[std::size_t(i)] = a(k + 1 + i, k);
    auto qblk = q.block(k + 1, k + 1, nv, nv);
    larf_left(taus[std::size_t(k)], v.data() + 1, nv, qblk, work.data());
  }
}

/// Implicit-shift QL iteration on a real symmetric tridiagonal (d, e) with
/// rotations accumulated into the columns of z (EISPACK tql2). Returns false
/// if an eigenvalue failed to converge within the iteration cap.
template <typename T>
bool steql(std::vector<RealType<T>>& d, std::vector<RealType<T>>& e,
           MatrixView<T> z) {
  using R = RealType<T>;
  const Index n = Index(d.size());
  if (n <= 1) return true;
  // e needs a guard slot: e[n-1] is written when an l-iteration terminates
  // with no interior split (classic tql2 storage convention).
  CHASE_CHECK(Index(e.size()) >= n);
  const R eps = std::numeric_limits<R>::epsilon();
  constexpr int kMaxIter = 60;

  for (Index l = 0; l < n; ++l) {
    int iter = 0;
    while (true) {
      // Look for a negligible off-diagonal element to split the problem.
      Index m = l;
      for (; m < n - 1; ++m) {
        const R dd = std::abs(d[std::size_t(m)]) + std::abs(d[std::size_t(m + 1)]);
        if (std::abs(e[std::size_t(m)]) <= eps * dd) break;
      }
      if (m == l) break;
      if (iter++ == kMaxIter) return false;

      // Wilkinson-like shift from the 2x2 block at l.
      R g = (d[std::size_t(l + 1)] - d[std::size_t(l)]) /
            (R(2) * e[std::size_t(l)]);
      R r = std::hypot(g, R(1));
      g = d[std::size_t(m)] - d[std::size_t(l)] +
          e[std::size_t(l)] / (g + std::copysign(r, g));
      R s = R(1), c = R(1), p = R(0);
      bool underflow = false;

      for (Index i = m - 1; i >= l; --i) {
        const R f = s * e[std::size_t(i)];
        const R b = c * e[std::size_t(i)];
        r = std::hypot(f, g);
        e[std::size_t(i + 1)] = r;
        if (r == R(0)) {
          // Recover from underflow by restarting this l-iteration.
          d[std::size_t(i + 1)] -= p;
          e[std::size_t(m)] = R(0);
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[std::size_t(i + 1)] - p;
        r = (d[std::size_t(i)] - g) * s + R(2) * c * b;
        p = s * r;
        d[std::size_t(i + 1)] = g + p;
        g = c * r - b;

        // Accumulate the (real) rotation into eigenvector columns i, i+1.
        T* zi = z.col(i);
        T* zi1 = z.col(i + 1);
        for (Index k = 0; k < z.rows(); ++k) {
          const T f2 = zi1[k];
          zi1[k] = T(s) * zi[k] + T(c) * f2;
          zi[k] = T(c) * zi[k] - T(s) * f2;
        }
      }
      if (underflow) continue;
      d[std::size_t(l)] -= p;
      e[std::size_t(l)] = g;
      e[std::size_t(m)] = R(0);
    }
  }
  return true;
}

/// Sort eigenpairs ascending in place (selection sort with column swaps; n
/// is small — the subspace size n_e — so the O(n^2) swap cost is negligible).
template <typename T>
void sort_eigenpairs(std::vector<RealType<T>>& w, MatrixView<T> z) {
  const Index n = Index(w.size());
  CHASE_CHECK(z.cols() == n);
  for (Index i = 0; i < n; ++i) {
    Index best = i;
    for (Index j = i + 1; j < n; ++j) {
      if (w[std::size_t(j)] < w[std::size_t(best)]) best = j;
    }
    if (best != i) {
      std::swap(w[std::size_t(i)], w[std::size_t(best)]);
      for (Index k = 0; k < z.rows(); ++k) std::swap(z(k, i), z(k, best));
    }
  }
}

/// Full Hermitian eigendecomposition: on exit w holds the eigenvalues in
/// ascending order and z the corresponding orthonormal eigenvectors; the
/// input matrix is destroyed. Throws on (exceedingly rare) QL non-convergence.
template <typename T>
void heevd(MatrixView<T> a, std::vector<RealType<T>>& w, MatrixView<T> z) {
  using R = RealType<T>;
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n && z.rows() == n && z.cols() == n);
  std::vector<R> d, e;
  hetrd_lower(a, d, e, z);
  e.push_back(R(0));  // tql2-style guard slot
  CHASE_CHECK_MSG(steql(d, e, z), "heevd: QL iteration failed to converge");
  w.assign(d.begin(), d.end());
  sort_eigenpairs(w, z);
}

}  // namespace chase::la
