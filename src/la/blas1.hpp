// BLAS-1 style vector kernels on contiguous ranges and matrix columns.
#pragma once

#include <cmath>

#include "la/matrix.hpp"

namespace chase::la {

/// y += alpha * x over n contiguous elements.
template <typename T>
inline void axpy(Index n, T alpha, const T* x, T* y) {
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// x *= alpha over n contiguous elements.
template <typename T, typename S>
inline void scal(Index n, S alpha, T* x) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

/// Conjugated dot product x^H y over n contiguous elements.
template <typename T>
inline T dotc(Index n, const T* x, const T* y) {
  T acc(0);
  for (Index i = 0; i < n; ++i) acc += conjugate(x[i]) * y[i];
  return acc;
}

/// Squared Euclidean norm of n contiguous elements.
template <typename T>
inline RealType<T> nrm2_squared(Index n, const T* x) {
  RealType<T> acc(0);
  for (Index i = 0; i < n; ++i) {
    const RealType<T> re = real_part(x[i]);
    const RealType<T> im = imag_part(x[i]);
    acc += re * re + im * im;
  }
  return acc;
}

template <typename T>
inline RealType<T> nrm2(Index n, const T* x) {
  return std::sqrt(nrm2_squared(n, x));
}

/// Squared Euclidean norm of column j of A.
template <typename T>
inline RealType<T> col_nrm2_squared(ConstMatrixView<T> a, Index j) {
  return nrm2_squared(a.rows(), a.col(j));
}

/// Euclidean norms of all columns of A, written to out[0..cols).
template <typename T>
inline void col_nrm2(ConstMatrixView<T> a, RealType<T>* out) {
  for (Index j = 0; j < a.cols(); ++j) {
    out[j] = std::sqrt(col_nrm2_squared(a, j));
  }
}

}  // namespace chase::la
