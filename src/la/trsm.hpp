// Triangular solves and multiplies needed by the CholeskyQR family, the
// compact-WY block reflectors and the direct solvers.
//
// Every entry point is a policy dispatcher (CHASE_FACTOR_KERNEL,
// la/factor/policy.hpp): `naive` runs the seed scalar kernels, `blocked`
// lowers the off-diagonal work onto la::gemm (la/factor/trsm_kernels.hpp).
// Tracked calls record cumulative flops and wall seconds ("la.trsm.flops" /
// "la.trsm.seconds", "la.trmm.*" for the multiplies) plus the per-policy
// call counter — the measured Gflop/s feed MachineModel::calibrate_factor.
#pragma once

#include "common/timer.hpp"
#include "la/factor/policy.hpp"
#include "la/factor/trsm_kernels.hpp"
#include "la/matrix.hpp"
#include "perf/tracker.hpp"

namespace chase::la {

namespace detail {

/// Flop count of one triangular solve/multiply touching the full triangle
/// against `m` right-hand-side rows/columns (n^2 m multiply-adds, x4 for the
/// complex multiply-add).
template <typename T>
inline double trsm_flop_count(Index n, Index m) {
  return (kIsComplex<T> ? 4.0 : 1.0) * double(n) * double(n) * double(m);
}

inline void record_factor_call(std::string_view flops_counter,
                               std::string_view seconds_counter,
                               FactorKernel kernel, double flops,
                               double seconds) {
  if (auto* t = perf::thread_tracker()) {
    t->bump(flops_counter, flops);
    t->bump(seconds_counter, seconds);
    t->bump(factor_kernel_counter(kernel), 1.0);
  }
}

}  // namespace detail

/// X <- X * R^{-1} with R upper triangular (right-side solve).
///
/// This is the back-substitution step of CholeskyQR: Q = X R^{-1} where
/// R is the Cholesky factor of the Gram matrix (Algorithm 3, line 6).
template <typename T>
void trsm_right_upper(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  CHASE_CHECK(r.cols() == n && x.cols() == n);
  const FactorKernel kernel = factor_kernel_for(n);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  if (kernel == FactorKernel::kBlocked) {
    factor::blocked_trsm_right_upper(r, x);
  } else {
    factor::naive_trsm_right_upper(r, x);
  }
  if (tracked) {
    detail::record_factor_call("la.trsm.flops", "la.trsm.seconds", kernel,
                               detail::trsm_flop_count<T>(n, x.rows()),
                               timer.seconds());
  }
}

/// X <- L^{-1} * X with L lower triangular (left-side forward substitution).
template <typename T>
void trsm_left_lower(ConstMatrixView<T> l, MatrixView<T> x) {
  const Index n = l.rows();
  CHASE_CHECK(l.cols() == n && x.rows() == n);
  const FactorKernel kernel = factor_kernel_for(n);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  if (kernel == FactorKernel::kBlocked) {
    factor::blocked_trsm_left_lower(l, x);
  } else {
    factor::naive_trsm_left_lower(l, x);
  }
  if (tracked) {
    detail::record_factor_call("la.trsm.flops", "la.trsm.seconds", kernel,
                               detail::trsm_flop_count<T>(n, x.cols()),
                               timer.seconds());
  }
}

/// X <- R^{-H} * X with R upper triangular (left-side solve by the conjugate
/// transpose; R^H is lower triangular so this is forward substitution).
template <typename T>
void trsm_left_upper_conj(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  CHASE_CHECK(r.cols() == n && x.rows() == n);
  const FactorKernel kernel = factor_kernel_for(n);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  if (kernel == FactorKernel::kBlocked) {
    factor::blocked_trsm_left_upper_conj(r, x);
  } else {
    factor::naive_trsm_left_upper_conj(r, x);
  }
  if (tracked) {
    detail::record_factor_call("la.trsm.flops", "la.trsm.seconds", kernel,
                               detail::trsm_flop_count<T>(n, x.cols()),
                               timer.seconds());
  }
}

/// X <- X * R with R upper triangular (right-side multiply, used to rebuild
/// composite R factors in CholeskyQR2: R = R2 * R1).
template <typename T>
void trmm_right_upper(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  CHASE_CHECK(r.cols() == n && x.cols() == n);
  const FactorKernel kernel = factor_kernel_for(n);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  if (kernel == FactorKernel::kBlocked) {
    factor::blocked_trmm_right_upper(r, x);
  } else {
    factor::naive_trmm_right_upper(r, x);
  }
  if (tracked) {
    detail::record_factor_call("la.trmm.flops", "la.trmm.seconds", kernel,
                               detail::trsm_flop_count<T>(n, x.rows()),
                               timer.seconds());
  }
}

/// W <- U * W in place with U upper triangular (the T-factor multiply of the
/// compact-WY larfb; replaces the scratch-matrix scalar multiply the seed
/// allocated per call).
template <typename T>
void trmm_left_upper(ConstMatrixView<T> u, MatrixView<T> w) {
  const Index k = u.rows();
  CHASE_CHECK(u.cols() == k && w.rows() == k);
  const FactorKernel kernel = factor_kernel_for(k);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  if (kernel == FactorKernel::kBlocked) {
    factor::blocked_trmm_left_upper(u, w);
  } else {
    factor::naive_trmm_left_upper(u, w);
  }
  if (tracked) {
    detail::record_factor_call("la.trmm.flops", "la.trmm.seconds", kernel,
                               detail::trsm_flop_count<T>(k, w.cols()),
                               timer.seconds());
  }
}

/// W <- U^H * W in place with U upper triangular.
template <typename T>
void trmm_left_upper_conj(ConstMatrixView<T> u, MatrixView<T> w) {
  const Index k = u.rows();
  CHASE_CHECK(u.cols() == k && w.rows() == k);
  const FactorKernel kernel = factor_kernel_for(k);
  const bool tracked = perf::thread_tracker() != nullptr;
  WallTimer timer;
  if (kernel == FactorKernel::kBlocked) {
    factor::blocked_trmm_left_upper_conj(u, w);
  } else {
    factor::naive_trmm_left_upper_conj(u, w);
  }
  if (tracked) {
    detail::record_factor_call("la.trmm.flops", "la.trmm.seconds", kernel,
                               detail::trsm_flop_count<T>(k, w.cols()),
                               timer.seconds());
  }
}

}  // namespace chase::la
