// Triangular solves needed by the CholeskyQR family and the direct solvers.
#pragma once

#include "la/blas1.hpp"
#include "la/matrix.hpp"

namespace chase::la {

/// X <- X * R^{-1} with R upper triangular (right-side solve).
///
/// This is the back-substitution step of CholeskyQR: Q = X R^{-1} where
/// R is the Cholesky factor of the Gram matrix (Algorithm 3, line 6).
template <typename T>
void trsm_right_upper(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  CHASE_CHECK(r.cols() == n && x.cols() == n);
  const Index m = x.rows();
  for (Index j = 0; j < n; ++j) {
    T* xj = x.col(j);
    for (Index l = 0; l < j; ++l) {
      axpy(m, -r(l, j), x.col(l), xj);
    }
    const T inv = T(1) / r(j, j);
    scal(m, inv, xj);
  }
}

/// X <- L^{-1} * X with L lower triangular (left-side forward substitution).
template <typename T>
void trsm_left_lower(ConstMatrixView<T> l, MatrixView<T> x) {
  const Index n = l.rows();
  CHASE_CHECK(l.cols() == n && x.rows() == n);
  for (Index j = 0; j < x.cols(); ++j) {
    T* xj = x.col(j);
    for (Index i = 0; i < n; ++i) {
      T acc = xj[i];
      for (Index k = 0; k < i; ++k) acc -= l(i, k) * xj[k];
      xj[i] = acc / l(i, i);
    }
  }
}

/// X <- R^{-H} * X with R upper triangular (left-side solve by the conjugate
/// transpose; R^H is lower triangular so this is forward substitution).
template <typename T>
void trsm_left_upper_conj(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  CHASE_CHECK(r.cols() == n && x.rows() == n);
  for (Index j = 0; j < x.cols(); ++j) {
    T* xj = x.col(j);
    for (Index i = 0; i < n; ++i) {
      T acc = xj[i];
      for (Index k = 0; k < i; ++k) acc -= conjugate(r(k, i)) * xj[k];
      xj[i] = acc / conjugate(r(i, i));
    }
  }
}

/// X <- X * R with R upper triangular (right-side multiply, used to rebuild
/// composite R factors in CholeskyQR2: R = R2 * R1).
template <typename T>
void trmm_right_upper(ConstMatrixView<T> r, MatrixView<T> x) {
  const Index n = r.rows();
  CHASE_CHECK(r.cols() == n && x.cols() == n);
  const Index m = x.rows();
  for (Index j = n - 1; j >= 0; --j) {
    T* xj = x.col(j);
    scal(m, r(j, j), xj);
    for (Index l = 0; l < j; ++l) {
      axpy(m, r(l, j), x.col(l), xj);
    }
  }
}

}  // namespace chase::la
