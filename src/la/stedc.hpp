// Divide & Conquer eigensolver for real symmetric tridiagonal matrices —
// the "standard dense solver such as Divide&Conquer" the paper names for
// ChASE's reduced Rayleigh-Ritz problem (Section 2.1, reference [14]).
//
// Structure (Cuppen / Gu-Eisenstat, the LAPACK stedc family):
//   1. split T = diag(T1', T2') + rho w w^T with w = [e_k; sgn(beta) e_1]
//      and the two corner diagonal entries reduced by |beta|;
//   2. solve the halves recursively (implicit-QL below a cutoff);
//   3. merge: eigenvalues of D + rho v v^T via the secular equation
//      1 + rho sum v_i^2 / (d_i - lambda) = 0, one root per interlacing
//      interval, after deflating negligible or duplicate components;
//   4. eigenvectors via the Gu-Eisenstat reconstructed v-hat (the Loewner
//      identity), which restores orthogonality that the naive formula
//      loses for close eigenvalues.
//
// This is a correctness-first reference: the secular solver is a
// safeguarded bisection/Newton hybrid rather than LAPACK's laed4 rational
// interpolation, and roots are stored absolutely rather than relative to
// the nearest pole. Eigenvalues are accurate to O(eps * ||T||); eigenvector
// residuals can reach O(eps * ||T|| / gap) for close eigenvalues (~1e-8 on
// random matrices) because the d_i - lambda_k differences are formed by
// subtraction. The QL path (heevd) remains the default; validation against
// it lives in tests/la/test_stedc.cpp.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "la/gemm.hpp"
#include "la/heevd.hpp"
#include "la/matrix.hpp"

namespace chase::la {

namespace stedc_detail {

/// Secular function f(x) = 1 + rho * sum v2[i] / (d[i] - x) over the
/// undeflated entries, plus its derivative.
template <typename R>
void secular_eval(const std::vector<R>& d, const std::vector<R>& v2, R rho,
                  R x, R& f, R& df) {
  f = R(1);
  df = R(0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const R del = d[i] - x;
    const R t = v2[i] / del;
    f += rho * t;
    df += rho * t / del;
  }
}

/// Root of the secular equation in (lo, hi) where f(lo^+) -> -inf and
/// f(hi^-) -> +inf for rho > 0 (lo = d_k, hi = d_{k+1} or the upper bound).
/// Safeguarded Newton started from the midpoint; falls back to bisection
/// whenever Newton leaves the bracket.
template <typename R>
R secular_root(const std::vector<R>& d, const std::vector<R>& v2, R rho,
               R lo, R hi) {
  R a = lo, b = hi;
  R x = (a + b) / R(2);
  const R eps = std::numeric_limits<R>::epsilon();
  for (int it = 0; it < 200; ++it) {
    R f, df;
    secular_eval(d, v2, rho, x, f, df);
    if (!std::isfinite(f)) {
      x = (a + b) / R(2);
      continue;
    }
    // f is increasing in x on the interval (for rho > 0): f < 0 means the
    // root lies to the right.
    if (f < R(0)) {
      a = x;
    } else {
      b = x;
    }
    R step = df > R(0) ? -f / df : R(0);
    R next = x + step;
    if (!(next > a && next < b) || step == R(0)) {
      next = (a + b) / R(2);  // bisection fallback
    }
    if (std::abs(next - x) <=
        eps * std::max(std::abs(next), std::abs(x)) + eps) {
      return next;
    }
    x = next;
  }
  return x;
}

/// Merge step: eigen decomposition of D + rho v v^T (D ascending).
/// On exit lambda (ascending) and the eigenvector matrix U (n x n).
template <typename R>
void rank_one_update(std::vector<R> d, std::vector<R> v, R rho,
                     std::vector<R>& lambda, Matrix<R>& u) {
  const Index n = Index(d.size());
  lambda.assign(d.size(), R(0));
  u.resize(n, n);
  set_zero(u.view());

  // Scale so that ||v|| = 1 (fold the norm into rho).
  R vnorm2 = 0;
  for (R x : v) vnorm2 += x * x;
  if (vnorm2 > R(0)) {
    const R vn = std::sqrt(vnorm2);
    for (R& x : v) x /= vn;
    rho *= vnorm2;
  }

  // Deflation. Spread of the problem for the tolerance.
  const R eps = std::numeric_limits<R>::epsilon();
  R dmax = std::abs(d.empty() ? R(0) : d.back());
  for (R x : d) dmax = std::max(dmax, std::abs(x));
  const R tol = R(16) * eps * std::max(dmax, std::abs(rho));

  std::vector<Index> active;   // undeflated indices
  std::vector<Index> deflated;
  // Givens rotations applied for duplicate d's: (i, j, c, s).
  struct Rot {
    Index i, j;
    R c, s;
  };
  std::vector<Rot> rots;

  // Rotate away components of (nearly) equal diagonal entries: for adjacent
  // i < j with d_j - d_i <= tol, zero v_i into v_j.
  for (Index i = 0; i + 1 < n; ++i) {
    const Index j = i + 1;
    if (std::abs(v[std::size_t(i)]) <= tol / std::max(std::abs(rho), R(1)))
      continue;
    if (d[std::size_t(j)] - d[std::size_t(i)] <= tol) {
      const R r = std::hypot(v[std::size_t(i)], v[std::size_t(j)]);
      if (r == R(0)) continue;
      const R c = v[std::size_t(j)] / r;
      const R s = v[std::size_t(i)] / r;
      v[std::size_t(j)] = r;
      v[std::size_t(i)] = R(0);
      rots.push_back({i, j, c, s});
    }
  }
  for (Index i = 0; i < n; ++i) {
    if (std::abs(rho) * v[std::size_t(i)] * v[std::size_t(i)] <= tol) {
      deflated.push_back(i);
    } else {
      active.push_back(i);
    }
  }

  if (active.empty()) {
    // Fully deflated: D itself is the answer.
    for (Index i = 0; i < n; ++i) {
      lambda[std::size_t(i)] = d[std::size_t(i)];
      u(i, i) = R(1);
    }
  } else {
    // Secular equation on the active set.
    std::vector<R> da, v2a;
    for (Index i : active) {
      da.push_back(d[std::size_t(i)]);
      v2a.push_back(v[std::size_t(i)] * v[std::size_t(i)]);
    }
    const Index m = Index(active.size());
    R v2sum = 0;
    for (R x : v2a) v2sum += x;

    std::vector<R> mu(static_cast<std::size_t>(m));
    for (Index k = 0; k < m; ++k) {
      const R lo = da[std::size_t(k)];
      const R hi = k + 1 < m ? da[std::size_t(k + 1)]
                             : da[std::size_t(m - 1)] + rho * v2sum;
      mu[std::size_t(k)] = secular_root(da, v2a, rho, lo, hi);
    }

    // Gu-Eisenstat reconstruction: |vhat_i|^2 =
    //   prod_k (mu_k - da_i) / (rho * prod_{k != i} (da_k - da_i)).
    std::vector<R> vhat(static_cast<std::size_t>(m));
    for (Index i = 0; i < m; ++i) {
      R prod = (mu[std::size_t(m - 1)] - da[std::size_t(i)]) / rho;
      for (Index k = 0; k + 1 < m; ++k) {
        prod *= (mu[std::size_t(k)] - da[std::size_t(i)]) /
                (da[std::size_t(k < i ? k : k + 1)] - da[std::size_t(i)]);
      }
      const R mag = std::sqrt(std::abs(prod));
      vhat[std::size_t(i)] =
          std::copysign(mag, v[std::size_t(active[std::size_t(i)])]);
    }

    // Eigenvectors of the active block: u_k(i) = vhat_i / (da_i - mu_k).
    for (Index k = 0; k < m; ++k) {
      R nrm = 0;
      std::vector<R> col(static_cast<std::size_t>(m));
      for (Index i = 0; i < m; ++i) {
        const R del = da[std::size_t(i)] - mu[std::size_t(k)];
        col[std::size_t(i)] = vhat[std::size_t(i)] / del;
        nrm += col[std::size_t(i)] * col[std::size_t(i)];
      }
      nrm = std::sqrt(nrm);
      for (Index i = 0; i < m; ++i) {
        u(active[std::size_t(i)], active[std::size_t(k)]) =
            col[std::size_t(i)] / nrm;
      }
      lambda[std::size_t(active[std::size_t(k)])] = mu[std::size_t(k)];
    }
    for (Index i : deflated) {
      lambda[std::size_t(i)] = d[std::size_t(i)];
      u(i, i) = R(1);
    }
  }

  // Undo the deflation rotations. v was transformed as v' = R v with
  // R = [[c, -s], [s, c]] on rows (i, j), so the eigenvectors of the
  // original system are R^T U: row_i <- c*U_i + s*U_j,
  // row_j <- -s*U_i + c*U_j, applied in reverse creation order.
  for (auto it = rots.rbegin(); it != rots.rend(); ++it) {
    for (Index col = 0; col < n; ++col) {
      const R a = u(it->i, col);
      const R b = u(it->j, col);
      u(it->i, col) = it->c * a + it->s * b;
      u(it->j, col) = -it->s * a + it->c * b;
    }
  }

  // Sort ascending (deflated values may interleave the secular roots).
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index(0));
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return lambda[std::size_t(x)] < lambda[std::size_t(y)];
  });
  std::vector<R> lam_sorted(static_cast<std::size_t>(n));
  Matrix<R> u_sorted(n, n);
  for (Index k = 0; k < n; ++k) {
    lam_sorted[std::size_t(k)] = lambda[std::size_t(order[std::size_t(k)])];
    for (Index i = 0; i < n; ++i) {
      u_sorted(i, k) = u(i, order[std::size_t(k)]);
    }
  }
  lambda = std::move(lam_sorted);
  u = std::move(u_sorted);
}

template <typename R>
void stedc_rec(std::vector<R>& d, std::vector<R>& e, Index l, Index n,
               Matrix<R>& q) {
  constexpr Index kCutoff = 24;
  q.resize(n, n);
  if (n <= kCutoff) {
    // Base case: implicit QL with accumulated rotations, then sort.
    std::vector<R> db(d.begin() + l, d.begin() + l + n);
    std::vector<R> eb(e.begin() + l, e.begin() + l + n);  // incl. guard slot
    set_identity(q.view());
    CHASE_CHECK_MSG(steql(db, eb, q.view()),
                    "stedc: QL base case failed to converge");
    sort_eigenpairs(db, q.view());
    std::copy(db.begin(), db.end(), d.begin() + l);
    return;
  }

  const Index k = n / 2;
  const R beta = e[std::size_t(l + k - 1)];
  const R abeta = std::abs(beta);
  const R sgn = beta < R(0) ? R(-1) : R(1);

  // Corner corrections, then recurse on decoupled halves.
  d[std::size_t(l + k - 1)] -= abeta;
  d[std::size_t(l + k)] -= abeta;
  Matrix<R> q1, q2;
  stedc_rec(d, e, l, k, q1);
  stedc_rec(d, e, l + k, n - k, q2);

  // v = [last row of Q1; sgn * first row of Q2], with the combined diagonal
  // already sorted half-by-half; merge-sort the two ascending runs.
  std::vector<R> dm(static_cast<std::size_t>(n)), vm(static_cast<std::size_t>(n));
  std::vector<Index> src(static_cast<std::size_t>(n));  // combined index -> original pos
  {
    Index a = 0, b = 0;
    for (Index t = 0; t < n; ++t) {
      const bool take_a =
          b >= n - k ||
          (a < k && d[std::size_t(l + a)] <= d[std::size_t(l + k + b)]);
      if (take_a) {
        dm[std::size_t(t)] = d[std::size_t(l + a)];
        vm[std::size_t(t)] = q1(k - 1, a);
        src[std::size_t(t)] = a;
        ++a;
      } else {
        dm[std::size_t(t)] = d[std::size_t(l + k + b)];
        vm[std::size_t(t)] = sgn * q2(0, b);
        src[std::size_t(t)] = k + b;
        ++b;
      }
    }
  }

  std::vector<R> lambda;
  Matrix<R> u;
  rank_one_update(dm, vm, abeta, lambda, u);

  // Q = [Q1 0; 0 Q2] * P * U, where P maps merged positions to halves.
  // Build PU (n x n) by scattering U's rows back to the half layout.
  Matrix<R> pu(n, n);
  for (Index t = 0; t < n; ++t) {
    for (Index c = 0; c < n; ++c) {
      pu(src[std::size_t(t)], c) = u(t, c);
    }
  }
  set_zero(q.view());
  auto qtop = q.block(0, 0, k, n);
  auto qbot = q.block(k, 0, n - k, n);
  gemm(R(1), q1.view().as_const(), pu.block(0, 0, k, n).as_const(), R(0),
       qtop);
  gemm(R(1), q2.view().as_const(), pu.block(k, 0, n - k, n).as_const(), R(0),
       qbot);
  std::copy(lambda.begin(), lambda.end(), d.begin() + l);
}

}  // namespace stedc_detail

/// Divide & Conquer eigendecomposition of the real symmetric tridiagonal
/// (d, e): on exit d holds the eigenvalues ascending and q the orthonormal
/// eigenvectors. e needs the usual guard slot (size >= n).
template <typename R>
void stedc(std::vector<R>& d, std::vector<R>& e, Matrix<R>& q) {
  const Index n = Index(d.size());
  CHASE_CHECK(Index(e.size()) >= n);
  if (n == 0) {
    q.resize(0, 0);
    return;
  }
  stedc_detail::stedc_rec(d, e, 0, n, q);
}

/// Hermitian eigensolver through the D&C tridiagonal path (the HE(SY)EVD
/// variant the paper's Rayleigh-Ritz references): tridiagonalize, stedc,
/// back-transform.
template <typename T>
void heevd_dc(MatrixView<T> a, std::vector<RealType<T>>& w, MatrixView<T> z) {
  using R = RealType<T>;
  const Index n = a.rows();
  CHASE_CHECK(a.cols() == n && z.rows() == n && z.cols() == n);
  std::vector<R> d, e;
  Matrix<T> qh(n, n);
  hetrd_lower(a, d, e, qh.view());
  e.push_back(R(0));
  Matrix<R> qt;
  stedc(d, e, qt);
  w = d;
  // z = Q_hetrd * Q_trid (promote the real tridiagonal eigenvectors).
  Matrix<T> qt_promoted(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) qt_promoted(i, j) = T(qt(i, j));
  }
  gemm(T(1), qh.view().as_const(), qt_promoted.view().as_const(), T(0), z);
}

}  // namespace chase::la
