#include "model/chase_model.hpp"

#include <algorithm>
#include <cmath>

#include "coll/engine.hpp"
#include "comm/topology.hpp"
#include "common/check.hpp"

namespace chase::model {

namespace {

using perf::CollKind;
using perf::FlopClass;
using perf::Region;
using perf::Tracker;

/// The modeled grid's communicator topologies, from rank 0's perspective
/// (whose event stream the replay emits). Ranks are laid out row-major
/// (comm::Grid2d: rank = row * npcol + col) and assigned to nodes in blocks
/// of `ranks_per_node`, exactly like a contiguous CHASE_TOPO spec. Rank 0's
/// column communicator holds world ranks {0, npcol, 2*npcol, ...}; its row
/// communicator holds {0 .. npcol-1}.
perf::TopoInfo model_topo(const ChaseModelSetup& s, bool col_comm) {
  const int rpn = s.ranks_per_node;
  if (rpn <= 1) return {};
  std::vector<int> nodes;
  if (col_comm) {
    nodes.reserve(std::size_t(s.nprow));
    for (int r = 0; r < s.nprow; ++r) {
      nodes.push_back((r * s.npcol) / rpn);
    }
  } else {
    nodes.reserve(std::size_t(s.npcol));
    for (int c = 0; c < s.npcol; ++c) nodes.push_back(c / rpn);
  }
  return comm::topo_info_of(nodes, /*inter_bw=*/0.0, /*inter_latency=*/0.0);
}

/// Mirrors comm::Communicator's accounting: one collective event plus, for
/// the STD backend, the two staging copies around it. Self-communicators
/// record nothing (the real collectives early-return). Each call consults
/// the same coll::select the real dispatcher runs, so on a grouped
/// communicator the replay emits the hierarchical per-phase decomposition
/// (coll::hier_phases) instead of the single flat event.
struct ModelComm {
  Tracker& t;
  Backend backend;
  perf::TopoInfo col_topo;  // column communicators (nprow ranks)
  perf::TopoInfo row_topo;  // row communicators (npcol ranks)

  ModelComm(Tracker& tracker, const ChaseModelSetup& s)
      : t(tracker),
        backend(s.backend),
        col_topo(model_topo(s, /*col_comm=*/true)),
        row_topo(model_topo(s, /*col_comm=*/false)) {}

  void collective(CollKind kind, std::size_t bytes, int nranks,
                  const perf::TopoInfo& topo) {
    if (nranks <= 1) return;
    const coll::Routine r = coll::select(kind, bytes, nranks, backend, topo);
    if (coll::is_hierarchical(r)) {
      t.begin_collective();
      coll::account_phases(&t, backend, coll::hier_phases(kind, bytes, nranks, topo),
                           /*bracketed=*/true);
      return;
    }
    if (backend == Backend::kStdGpu) t.record_memcpy(bytes, false);
    t.begin_collective();
    t.end_collective(kind, bytes, nranks);
    if (backend == Backend::kStdGpu) t.record_memcpy(bytes, true);
  }
  void all_reduce(std::size_t bytes, int nranks,
                  const perf::TopoInfo& topo) {
    collective(CollKind::kAllReduce, bytes, nranks, topo);
  }
  void broadcast(std::size_t bytes, int nranks, const perf::TopoInfo& topo) {
    collective(CollKind::kBroadcast, bytes, nranks, topo);
  }
  /// `local_bytes` is one rank's contribution; the event records the total
  /// gathered payload, and the STD staging is asymmetric (D2H the local
  /// share, H2D the whole gathered buffer) — mirroring
  /// Communicator::all_gather's accounting.
  void all_gather(std::size_t local_bytes, int nranks,
                  const perf::TopoInfo& topo) {
    if (nranks <= 1) return;
    const std::size_t total = std::size_t(nranks) * local_bytes;
    const coll::Routine r =
        coll::select(CollKind::kAllGather, total, nranks, backend, topo);
    if (coll::is_hierarchical(r)) {
      t.begin_collective();
      coll::account_phases(
          &t, backend,
          coll::hier_phases(CollKind::kAllGather, total, nranks, topo),
          /*bracketed=*/true);
      return;
    }
    if (backend == Backend::kStdGpu) t.record_memcpy(local_bytes, false);
    t.begin_collective();
    t.end_collective(CollKind::kAllGather, total, nranks);
    if (backend == Backend::kStdGpu) t.record_memcpy(total, true);
  }
};

struct Sizes {
  Index mloc;  // C-layout rows on rank 0 (row map)
  Index bloc;  // B-layout rows on rank 0 (col map)
  double z1;   // herk/potrf-class flop multiplier (4 complex, 1 real)
  double z2;   // gemm-class flop multiplier (8 complex, 2 real)
};

Sizes sizes_of(const ChaseModelSetup& s) {
  const auto rmap = IndexMap::block(s.n, s.nprow);
  const auto cmap = IndexMap::block(s.n, s.npcol);
  return {rmap.local_size(0), cmap.local_size(0),
          s.complex_scalar ? 4.0 : 1.0, s.complex_scalar ? 8.0 : 2.0};
}

/// One distributed HEMM application on `ncols` columns (matches
/// DistHermitianMatrix::apply_impl): local GEMM flops plus the partial-sum
/// allreduce over the reducing communicator. The local multiply is priced at
/// the model's kGemm rate whether the real rank runs la::gemm or (on
/// diagonal ranks) la::hemm — the two engines sustain the same Gflop/s by
/// construction, and MachineModel::calibrate_gemm can pin that rate to what
/// the engine measured on the build host.
/// `low` replays the apply on the mixed backend's fp32 shadow: same flop
/// count priced at the single-precision rate, allreduce payload halved.
void hemm_apply(const ChaseModelSetup& s, const Sizes& sz, ModelComm& comm,
                Tracker& t, Index ncols, bool c2b, bool low = false) {
  t.add_flops(low ? FlopClass::kGemmSingle : FlopClass::kGemm,
              sz.z2 / 2.0 * 2.0 * double(sz.mloc) * double(sz.bloc) *
                  double(ncols));
  const Index out_rows = c2b ? sz.bloc : sz.mloc;
  const int nranks = c2b ? s.nprow : s.npcol;
  const std::size_t elem_bytes =
      low ? std::size_t(s.scalar_bytes) / 2 : std::size_t(s.scalar_bytes);
  comm.all_reduce(std::size_t(out_rows) * std::size_t(ncols) * elem_bytes,
                  nranks, c2b ? comm.col_topo : comm.row_topo);
}

/// The "B2 <- Bcast(C2)" redistribution on a square grid with equal maps:
/// one full-block broadcast within the column communicator.
void redistribute_c2b(const ChaseModelSetup& s, const Sizes& sz,
                      ModelComm& comm, Index ncols) {
  CHASE_CHECK_MSG(s.nprow == s.npcol,
                  "the replay models square grids (the paper's optimal "
                  "configuration); non-square grids run for real");
  comm.broadcast(std::size_t(sz.bloc) * std::size_t(ncols) *
                     std::size_t(s.scalar_bytes),
                 s.nprow, comm.col_topo);
}

/// One CholeskyQR repetition (matches qr::cholqr_step + the flop accounting
/// of account_cholqr_flops).
void cholqr_rep(const ChaseModelSetup& s, const Sizes& sz, ModelComm& comm,
                Tracker& t) {
  const Index ne = s.subspace();
  // The real cholqr_step reduces only the packed upper triangle of the Gram
  // matrix: ne(ne+1)/2 scalars instead of ne^2.
  comm.all_reduce(std::size_t(ne) * std::size_t(ne + 1) / 2 *
                      std::size_t(s.scalar_bytes),
                  s.nprow, comm.col_topo);
  t.add_flops(FlopClass::kFactor,
              2.0 * sz.z1 * double(sz.mloc) * double(ne) * double(ne));
  t.add_flops(FlopClass::kSmall,
              sz.z1 * double(ne) * double(ne) * double(ne) / 3.0);
}

/// Distributed Householder QR (matches qr::hhqr_dist): per column one tail
/// allreduce, one pivot broadcast and one trailing-update allreduce, then
/// the backward Q accumulation.
void hhqr(const ChaseModelSetup& s, const Sizes& sz, ModelComm& comm,
          Tracker& t) {
  const Index ne = s.subspace();
  for (Index k = 0; k < ne; ++k) {
    comm.all_reduce(std::size_t(s.real_bytes), s.nprow, comm.col_topo);
    comm.broadcast(std::size_t(s.scalar_bytes), s.nprow, comm.col_topo);
    if (k + 1 < ne) {
      comm.all_reduce(std::size_t(ne - k - 1) * std::size_t(s.scalar_bytes),
                      s.nprow, comm.col_topo);
    }
  }
  for (Index k = ne - 1; k >= 0; --k) {
    comm.all_reduce(std::size_t(ne - k) * std::size_t(s.scalar_bytes),
                    s.nprow, comm.col_topo);
  }
  t.add_flops(FlopClass::kPanel,
              4.0 * sz.z1 * double(sz.mloc) * double(ne) * double(ne));
}

/// v1.2 collection: one broadcast per part of the map (matches
/// dist::gather_rows).
void gather(const ChaseModelSetup& s, ModelComm& comm, const IndexMap& map,
            Index ncols, int comm_size, const perf::TopoInfo& topo) {
  if (comm_size <= 1) return;
  for (int part = 0; part < map.parts(); ++part) {
    const Index count = map.local_size(part);
    if (count == 0) continue;
    comm.broadcast(std::size_t(count) * std::size_t(ncols) *
                       std::size_t(s.scalar_bytes),
                   comm_size, topo);
  }
}

void lms_roundtrip(Tracker& t, std::size_t bytes) {
  t.record_memcpy(bytes, false);
  t.record_memcpy(bytes, true);
}

}  // namespace

IterationShape uniform_iteration(Index ne, int degree, qr::QrVariant qr) {
  IterationShape it;
  it.locked = 0;
  it.degrees.assign(std::size_t(ne), degree);
  it.qr = qr;
  return it;
}

std::vector<IterationShape> rescale_history(
    const std::vector<MeasuredIteration>& history, Index ne_small,
    Index ne_big) {
  std::vector<IterationShape> out;
  out.reserve(history.size());
  for (const auto& m : history) {
    IterationShape it;
    const double locked_frac = double(m.locked_before) / double(ne_small);
    it.locked = std::min<Index>(Index(std::lround(locked_frac * double(ne_big))),
                                ne_big - 1);
    const Index act_big = ne_big - it.locked;
    const Index act_small = Index(m.degrees.size());
    CHASE_CHECK(act_small > 0);
    it.degrees.resize(std::size_t(act_big));
    for (Index j = 0; j < act_big; ++j) {
      it.degrees[std::size_t(j)] =
          m.degrees[std::size_t((j * act_small) / act_big)];
    }
    it.qr = m.qr;
    out.push_back(std::move(it));
  }
  return out;
}

void replay_lanczos(const ChaseModelSetup& s, int steps, int nvec,
                    Tracker& t) {
  const auto sz = sizes_of(s);
  ModelComm comm(t, s);
  const Region prev = t.set_region(Region::kLanczos);
  for (int run = 0; run < nvec; ++run) {
    // Initial normalization dot product.
    comm.all_reduce(std::size_t(s.scalar_bytes), s.nprow, comm.col_topo);
    for (int j = 0; j < steps; ++j) {
      hemm_apply(s, sz, comm, t, 1, /*c2b=*/true);
      // B -> C redistribution of the single column (row communicator).
      comm.broadcast(std::size_t(sz.mloc) * std::size_t(s.scalar_bytes),
                     s.npcol, comm.row_topo);
      comm.all_reduce(std::size_t(s.scalar_bytes), s.nprow,
                      comm.col_topo);  // alpha
      comm.all_reduce(std::size_t(s.scalar_bytes), s.nprow,
                      comm.col_topo);  // beta
    }
  }
  t.set_region(prev);
}

void replay_iteration(const ChaseModelSetup& s, const IterationShape& it,
                      Tracker& t) {
  const auto sz = sizes_of(s);
  ModelComm comm(t, s);
  const Index ne = s.subspace();
  const Index act = Index(it.degrees.size());
  CHASE_CHECK(it.locked + act == ne);
  CHASE_CHECK(std::is_sorted(it.degrees.begin(), it.degrees.end()));

  // ---- Filter ----
  {
    const Region prev = t.set_region(Region::kFilter);
    const int max_deg = it.degrees.empty() ? 0 : it.degrees.back();
    hemm_apply(s, sz, comm, t, act, /*c2b=*/true, s.mixed_filter);  // step 1
    for (int step = 2; step <= max_deg; ++step) {
      const auto first = std::lower_bound(it.degrees.begin(),
                                          it.degrees.end(), step) -
                         it.degrees.begin();
      const Index ncols = act - Index(first);
      if (ncols == 0) break;
      hemm_apply(s, sz, comm, t, ncols, /*c2b=*/step % 2 != 0,
                 s.mixed_filter);
    }
    if (s.mixed_filter) {
      // Demote the active panel into the fp32 shadow before filtering and
      // promote the result back: streaming copies over C-layout rows.
      t.add_mem_bytes(2.0 * double(sz.mloc) * double(act) * 1.5 *
                      double(s.scalar_bytes));
    }
    // Divergence-guard consensus: per-column finiteness flags (one real per
    // active column) reduced over the column communicator each iteration.
    comm.all_reduce(std::size_t(act) * std::size_t(s.real_bytes), s.nprow,
                    comm.col_topo);
    t.set_region(prev);
  }

  // ---- QR ----
  {
    const Region prev = t.set_region(Region::kQr);
    if (s.scheme == Scheme::kLms) {
      // v1.2: collect, redundant Householder QR on the full buffer, copy the
      // result back to the host.
      gather(s, comm, IndexMap::block(s.n, s.nprow), ne, s.nprow,
             comm.col_topo);
      t.add_flops(FlopClass::kPanel,
                  4.0 * sz.z1 * double(s.n) * double(ne) * double(ne));
      lms_roundtrip(t, std::size_t(s.n) * std::size_t(ne) *
                           std::size_t(s.scalar_bytes));
    } else {
      switch (it.qr) {
        case qr::QrVariant::kCholQr1:
          cholqr_rep(s, sz, comm, t);
          break;
        case qr::QrVariant::kCholQr2:
          cholqr_rep(s, sz, comm, t);
          cholqr_rep(s, sz, comm, t);
          break;
        case qr::QrVariant::kShiftedCholQr2:
          // Shifted pass: packed-triangle Gram allreduce + Frobenius-norm
          // allreduce, then CholeskyQR2.
          comm.all_reduce(std::size_t(ne) * std::size_t(ne + 1) / 2 *
                              std::size_t(s.scalar_bytes),
                          s.nprow, comm.col_topo);
          comm.all_reduce(std::size_t(s.real_bytes), s.nprow, comm.col_topo);
          t.add_flops(FlopClass::kFactor, 2.0 * sz.z1 * double(sz.mloc) *
                                              double(ne) * double(ne));
          t.add_flops(FlopClass::kSmall,
                      sz.z1 * double(ne) * double(ne) * double(ne) / 3.0);
          cholqr_rep(s, sz, comm, t);
          cholqr_rep(s, sz, comm, t);
          break;
        case qr::QrVariant::kHouseholder:
          hhqr(s, sz, comm, t);
          break;
        case qr::QrVariant::kTsqr: {
          // Local panel QR + Q formation, one R-factor allgather, the
          // redundant stacked-R factorization, and the combine GEMM
          // (matches qr::tsqr's accounting).
          const Index ne = s.subspace();
          t.add_flops(FlopClass::kPanel, 4.0 * sz.z1 * double(sz.mloc) *
                                             double(ne) * double(ne));
          t.add_flops(FlopClass::kSmall,
                      4.0 * sz.z1 * double(s.nprow) * double(ne) *
                          double(ne) * double(ne));
          if (s.nprow > 1) {
            comm.all_gather(std::size_t(ne) * std::size_t(ne) *
                                std::size_t(s.scalar_bytes),
                            s.nprow, comm.col_topo);
          }
          break;
        }
      }
    }
    t.set_region(prev);
  }

  // ---- Rayleigh-Ritz ----
  {
    const Region prev = t.set_region(Region::kRayleighRitz);
    if (s.scheme == Scheme::kLms) {
      hemm_apply(s, sz, comm, t, act, /*c2b=*/true);
      gather(s, comm, IndexMap::block(s.n, s.npcol), act, s.npcol,
             comm.row_topo);
      // Redundant full-height products (A = C^H W and the back-transform),
      // executed on a single device per rank in v1.2: panel-rated.
      t.add_flops(FlopClass::kPanel,
                  2.0 * sz.z2 * double(s.n) * double(act) * double(act));
      t.add_flops(FlopClass::kSmall,
                  sz.z1 * 9.0 * double(act) * double(act) * double(act));
      lms_roundtrip(t, std::size_t(s.n) * std::size_t(act) *
                           std::size_t(s.scalar_bytes));
    } else {
      redistribute_c2b(s, sz, comm, act);
      hemm_apply(s, sz, comm, t, act, /*c2b=*/true);
      t.add_flops(FlopClass::kGemm,
                  sz.z2 * double(sz.bloc) * double(act) * double(act));
      comm.all_reduce(std::size_t(act) * std::size_t(act) *
                          std::size_t(s.scalar_bytes),
                      s.npcol, comm.row_topo);
      t.add_flops(FlopClass::kSmall,
                  sz.z1 * 9.0 * double(act) * double(act) * double(act));
      t.add_flops(FlopClass::kGemm,
                  sz.z2 * double(sz.mloc) * double(act) * double(act));
    }
    t.set_region(prev);
  }

  // ---- Residuals ----
  {
    const Region prev = t.set_region(Region::kResidual);
    if (s.scheme == Scheme::kLms) {
      hemm_apply(s, sz, comm, t, act, /*c2b=*/true);
      gather(s, comm, IndexMap::block(s.n, s.npcol), act, s.npcol,
             comm.row_topo);
      lms_roundtrip(t, std::size_t(s.n) * std::size_t(act) *
                           std::size_t(s.scalar_bytes));
      t.add_mem_bytes(3.0 * double(s.n) * double(act) *
                      double(s.scalar_bytes));
    } else {
      redistribute_c2b(s, sz, comm, act);
      hemm_apply(s, sz, comm, t, act, /*c2b=*/true);
      t.add_mem_bytes(3.0 * double(sz.bloc) * double(act) *
                      double(s.scalar_bytes));
      comm.all_reduce(std::size_t(act) * std::size_t(s.real_bytes), s.npcol,
                      comm.row_topo);
    }
    t.set_region(prev);
  }
}

perf::KernelCosts model_chase(const perf::MachineModel& m,
                              const ChaseModelSetup& s,
                              const std::vector<IterationShape>& iterations,
                              int lanczos_steps, int lanczos_vectors) {
  perf::Tracker t;
  replay_lanczos(s, lanczos_steps, lanczos_vectors, t);
  for (const auto& it : iterations) {
    replay_iteration(s, it, t);
  }
  t.flush();
  // Extra GPUs per rank (the LMS node configuration) accelerate the
  // GEMM-class local work only.
  perf::MachineModel adjusted = m;
  adjusted.gemm_flops *= double(std::max(s.gpus_per_rank, 1));
  return perf::price_tracker(adjusted, s.backend, t);
}

std::size_t memory_bytes_new(const ChaseModelSetup& s) {
  const auto sz = sizes_of(s);
  const Index ne = s.subspace();
  // Eq. (2): H panel + C/C2 + B/B2 + A.
  std::size_t bytes = std::size_t(s.scalar_bytes) *
                      (std::size_t(sz.mloc) * std::size_t(sz.bloc) +
                       2 * std::size_t(sz.mloc) * std::size_t(ne) +
                       2 * std::size_t(sz.bloc) * std::size_t(ne) +
                       std::size_t(ne) * std::size_t(ne));
  if (s.mixed_filter) {
    // The mixed backend adds the fp32 shadow of H and the packed low
    // panels (half-width), plus the fp64 pack scratch for promoted columns.
    bytes += std::size_t(s.scalar_bytes) / 2 *
             (std::size_t(sz.mloc) * std::size_t(sz.bloc) +
              std::size_t(sz.mloc) * std::size_t(ne) +
              std::size_t(sz.bloc) * std::size_t(ne));
    bytes += std::size_t(s.scalar_bytes) *
             (std::size_t(sz.mloc) * std::size_t(ne) +
              std::size_t(sz.bloc) * std::size_t(ne));
  }
  return bytes;
}

std::size_t memory_bytes_lms(const ChaseModelSetup& s) {
  const auto sz = sizes_of(s);
  const Index ne = s.subspace();
  // v1.2: H panel + distributed C/B + two redundant full N x n_e buffers.
  return std::size_t(s.scalar_bytes) *
         (std::size_t(sz.mloc) * std::size_t(sz.bloc) +
          std::size_t(sz.mloc) * std::size_t(ne) +
          std::size_t(sz.bloc) * std::size_t(ne) +
          2 * std::size_t(s.n) * std::size_t(ne));
}

}  // namespace chase::model
