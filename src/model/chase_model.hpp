// Analytic replay of the ChASE event stream at arbitrary cluster scale.
//
// The Figure 2/3 experiments run on up to 900 nodes with matrices up to
// N = 900k — 13 TB of dense data, far beyond this machine. The model below
// walks the exact control flow of the real drivers (core/chase.hpp,
// core/legacy_lms.hpp) and emits the identical sequence of flop counts,
// collectives and staging copies into a perf::Tracker; pricing that stream
// with the MachineModel then produces cluster-scale time estimates whose
// *structure* is the real algorithm's. Fidelity is enforced by tests that
// compare, region by region, the model's event stream against what a real
// small-scale run records.
#pragma once

#include "dist/index_map.hpp"
#include "perf/backend.hpp"
#include "perf/cost_model.hpp"
#include "perf/tracker.hpp"
#include "qr/qr_selector.hpp"

namespace chase::model {

using dist::IndexMap;
using la::Index;
using perf::Backend;

/// Which parallelization scheme is replayed.
enum class Scheme { kNew, kLms };

/// Problem and machine-layout description for the replay.
struct ChaseModelSetup {
  Index n = 0;              // matrix size
  Index nev = 0;
  Index nex = 0;
  bool complex_scalar = true;
  int scalar_bytes = 16;    // sizeof(std::complex<double>)
  int real_bytes = 8;

  /// Replay the CHASE_PRECISION=mixed pipeline: the filter's HEMMs run on
  /// the fp32 shadow of H (priced at the machine's single-precision GEMM
  /// rate, allreduce payloads halved); Lanczos, QR, Rayleigh-Ritz and
  /// residuals stay in working precision, exactly as in the real backend
  /// (core/dla_mixed.hpp). memory_bytes_new grows by the shadow storage.
  bool mixed_filter = false;

  int nprow = 1;            // 2D grid shape
  int npcol = 1;
  Scheme scheme = Scheme::kNew;
  Backend backend = Backend::kNcclGpu;
  /// ChASE(LMS) runs 1 rank per node with 4 GPUs; the extra GPUs accelerate
  /// only the GEMM-class work of that rank (Section 4, configuration note).
  int gpus_per_rank = 1;
  /// Ranks per node of the modeled cluster (row-major grid order, matching
  /// comm::Grid2d and the CHASE_TOPO assignment). <= 1 models a flat layout;
  /// larger values give the row/column communicators the same grouped
  /// TopoInfo the runtime derives, so the replay routes collectives through
  /// coll::select and emits hierarchical per-phase events exactly when the
  /// real dispatcher would.
  int ranks_per_node = 0;

  Index subspace() const { return nev + nex; }
};

/// One outer iteration's shape: how many columns are locked and the
/// (ascending) per-vector filter degrees of the active columns.
struct IterationShape {
  Index locked = 0;
  std::vector<int> degrees;                       // active columns, ascending
  qr::QrVariant qr = qr::QrVariant::kCholQr2;
};

/// Uniform-degree helper (the weak-scaling experiments filter every column
/// with the same degree and run exactly one iteration).
IterationShape uniform_iteration(Index ne, int degree,
                                 qr::QrVariant qr = qr::QrVariant::kCholQr2);

/// Rescale a measured iteration history (locked counts, per-vector degree
/// lists, QR variants) from a real run with subspace ne_small to a replay
/// subspace ne_big: locked fractions are preserved and the degree profile is
/// resampled. This is how the strong-scaling and Table-2 benches transport
/// real convergence behaviour to the paper's problem sizes.
struct MeasuredIteration {
  Index locked_before = 0;
  std::vector<int> degrees;  // active columns, ascending
  qr::QrVariant qr = qr::QrVariant::kCholQr2;
};

std::vector<IterationShape> rescale_history(
    const std::vector<MeasuredIteration>& history, Index ne_small,
    Index ne_big);

/// Emit the event stream of one ChASE iteration into `t`.
void replay_iteration(const ChaseModelSetup& s, const IterationShape& it,
                      perf::Tracker& t);

/// Emit the Lanczos spectral-estimation events (steps x vectors matvecs).
void replay_lanczos(const ChaseModelSetup& s, int steps, int nvec,
                    perf::Tracker& t);

/// Convenience: replay a full solve (Lanczos + the given iterations) and
/// price it.
perf::KernelCosts model_chase(const perf::MachineModel& m,
                              const ChaseModelSetup& s,
                              const std::vector<IterationShape>& iterations,
                              int lanczos_steps = 25, int lanczos_vectors = 4);

/// Eq. (2): per-rank memory footprint in bytes of the new scheme, and the
/// v1.2 footprint with its two redundant N x n_e buffers.
std::size_t memory_bytes_new(const ChaseModelSetup& s);
std::size_t memory_bytes_lms(const ChaseModelSetup& s);

}  // namespace chase::model
