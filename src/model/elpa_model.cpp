#include "model/elpa_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace chase::model {

ElpaCosts model_elpa(const perf::MachineModel& m, const ElpaModelSetup& s,
                     const ElpaCostParams& p) {
  CHASE_CHECK(s.n > 0 && s.nev > 0 && s.nranks >= 1);
  const double n = double(s.n);
  const double nev = double(s.nev);
  const double z1 = s.complex_scalar ? 4.0 : 1.0;  // one-sided flop factor
  const double z2 = s.complex_scalar ? 8.0 : 2.0;  // gemm flop factor
  const double ranks = double(s.nranks);
  const double sqrt_p = std::sqrt(ranks);

  ElpaCosts out;

  if (s.stages == 2) {
    // Full -> band: (4/3) n^3 one-sided flops, GEMM-rich.
    out.stage1 = z1 * (4.0 / 3.0) * n * n * n /
                 (ranks * p.stage1_rate_elpa2);
    // Band -> tridiagonal bulge chasing: ~6 n^2 b flops; the chase is a
    // pipeline with only logarithmic usable parallelism, which is what caps
    // ELPA2's strong scaling in Figure 3b.
    out.stage2 = z1 * 6.0 * n * n * double(s.band) /
                 ((1.0 + std::log2(ranks)) * p.stage2_rate);
    // Two back-transforms (tridiag -> band -> full).
    out.back_transform =
        2.0 * z2 * n * n * nev / (ranks * p.back_transform_rate);
    // Panel-granular collectives: n / band panels.
    out.latency = (n / double(s.band)) * p.collectives_per_column *
                  m.mpi_allreduce_seconds(
                      std::size_t(n / sqrt_p) * (s.complex_scalar ? 16 : 8),
                      int(sqrt_p));
  } else {
    // Full -> tridiagonal directly: same flops, BLAS-2 bound rate.
    out.stage1 = z1 * (4.0 / 3.0) * n * n * n /
                 (ranks * p.stage1_rate_elpa1);
    out.back_transform =
        z2 * n * n * nev / (ranks * p.back_transform_rate);
    // Column-granular collectives: n reflector steps.
    out.latency = n * p.collectives_per_column *
                  m.mpi_allreduce_seconds(
                      std::size_t(n / sqrt_p) * (s.complex_scalar ? 16 : 8) /
                          64,
                      int(sqrt_p));
  }

  // Divide & conquer on the tridiagonal matrix (real arithmetic, partially
  // parallel).
  out.tridiag_solve = 4.0 * n * n * std::log2(n) /
                      (sqrt_p * p.tridiag_solve_rate);
  return out;
}

}  // namespace chase::model
