// Analytic cost model of the ELPA direct eigensolver on a GPU cluster — the
// Figure 3b comparison baseline.
//
// ELPA is not re-implemented at cluster scale here (the sequential
// reference algorithms live in src/baseline); instead its distributed cost
// is modeled with the standard structure of one-stage/two-stage direct
// solvers:
//   stage 1  — full -> tridiagonal (ELPA1) or full -> band (ELPA2):
//              O(n^3) flops; GEMM-rich and GPU-efficient only for ELPA2;
//   stage 2  — band -> tridiagonal bulge chasing (ELPA2 only): O(n^2 b)
//              flops with limited parallelism (~sqrt(p));
//   latency  — one or more collectives per column/panel: the O(n log p)
//              term that caps strong scaling (the paper's ELPA curves gain
//              only ~6x from 36x more nodes);
//   back-transform(s) — O(n^2 nev) GEMMs (doubled for ELPA2).
// The effective rates are calibrated against the absolute ELPA2-GPU numbers
// the paper reports for the 115k problem (Section 4.5.2); the calibration is
// recorded in EXPERIMENTS.md.
#pragma once

#include "la/matrix.hpp"
#include "perf/machine.hpp"

namespace chase::model {

using la::Index;

struct ElpaModelSetup {
  Index n = 0;
  Index nev = 0;           // eigenvectors requested (back-transform size)
  bool complex_scalar = true;
  int nranks = 1;          // 1 rank per GPU
  int stages = 2;          // 1 = ELPA1, 2 = ELPA2
  Index band = 64;         // ELPA2 intermediate bandwidth
};

struct ElpaCostParams {
  // Effective per-GPU rates (flops/s), far below kernel peaks: they absorb
  // the CPU-resident portions and intra-kernel communication of each stage.
  double stage1_rate_elpa2 = 1.6e12;  // band reduction (GEMM-rich)
  double stage1_rate_elpa1 = 0.55e12; // full tridiagonalization (BLAS-2 heavy)
  double stage2_rate = 2.4e10;        // bulge chasing, per sqrt(p) "lane"
  double back_transform_rate = 3.0e12;
  // Collectives per column/panel step (reduction + broadcast pairs).
  double collectives_per_column = 7.0;
  double tridiag_solve_rate = 0.5e12;  // divide & conquer on the tridiagonal
};

struct ElpaCosts {
  double stage1 = 0;
  double stage2 = 0;
  double tridiag_solve = 0;
  double back_transform = 0;
  double latency = 0;
  double total() const {
    return stage1 + stage2 + tridiag_solve + back_transform + latency;
  }
};

ElpaCosts model_elpa(const perf::MachineModel& m, const ElpaModelSetup& s,
                     const ElpaCostParams& p = {});

}  // namespace chase::model
