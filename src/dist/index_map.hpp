// 1D distribution maps: how a global index range [0, n) is partitioned over
// the parts of a communicator.
//
// ChASE supports both a plain block distribution and a block-cyclic
// distribution of the Hermitian matrix H (Section 2.2); the same maps
// describe how the C/B multivector buffers split N rows over the column/row
// communicators. A block map is the special case of a block-cyclic map whose
// block size is ceil(n / parts).
#pragma once

#include <vector>

#include "common/check.hpp"
#include "la/matrix.hpp"

namespace chase::dist {

using la::Index;

class IndexMap {
 public:
  IndexMap() = default;

  /// Contiguous block distribution: part k owns rows [k*b, (k+1)*b) with
  /// b = ceil(n / parts) (trailing parts may own fewer or zero rows).
  static IndexMap block(Index n, int parts);

  /// ScaLAPACK-style block-cyclic distribution with the given block size.
  static IndexMap block_cyclic(Index n, int parts, Index block_size);

  Index global_size() const { return n_; }
  int parts() const { return parts_; }
  Index block_size() const { return b_; }
  bool is_block() const { return b_ * Index(parts_) >= n_; }

  /// Part owning global index g.
  int owner(Index g) const {
    CHASE_CHECK(g >= 0 && g < n_);
    return int((g / b_) % parts_);
  }

  /// Local position of global index g within its owner part.
  Index local_index(Index g) const {
    CHASE_CHECK(g >= 0 && g < n_);
    return (g / (b_ * parts_)) * b_ + g % b_;
  }

  /// Global index of local position `loc` in `part`.
  Index global_index(int part, Index loc) const {
    CHASE_CHECK(part >= 0 && part < parts_ && loc >= 0);
    const Index g = (loc / b_) * (b_ * parts_) + Index(part) * b_ + loc % b_;
    CHASE_CHECK(g < n_);
    return g;
  }

  /// Number of global indices owned by `part`.
  Index local_size(int part) const;

  /// Maximal local size over all parts (buffer sizing).
  Index max_local_size() const;

  /// Globally contiguous index runs owned by `part`, in ascending global
  /// order; local positions are contiguous within each run as well.
  struct Run {
    Index global_begin;
    Index local_begin;
    Index length;
  };
  std::vector<Run> runs(int part) const;

  friend bool operator==(const IndexMap& a, const IndexMap& b) {
    return a.n_ == b.n_ && a.parts_ == b.parts_ && a.b_ == b.b_;
  }

 private:
  IndexMap(Index n, int parts, Index b) : n_(n), parts_(parts), b_(b) {}

  Index n_ = 0;
  int parts_ = 1;
  Index b_ = 1;
};

}  // namespace chase::dist
