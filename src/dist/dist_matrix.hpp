// Distributed Hermitian matrix H on a 2D process grid, with the custom
// alternating HEMM scheme of Section 2.2/3.1.
//
// Rank (i, j) holds the local block H(rows owned by grid-row i, cols owned by
// grid-col j) under a pair of 1D index maps (block or block-cyclic). The two
// multivector layouts are:
//   C layout — rows split by the *row* map over the grid rows, i.e.
//     distributed within each column communicator (buffers C, C2);
//   B layout — rows split by the *col* map over the grid columns, i.e.
//     distributed within each row communicator (buffers B, B2).
//
// Because H is Hermitian, applying H in the C->B direction uses the local
// H_loc^H panels and reduces over the column communicator, while the B->C
// direction uses H_loc and reduces over the row communicator — the
// re-distribution between filter steps is thereby avoided entirely, which is
// why ChASE enforces even Chebyshev degrees (the filtered vectors always end
// in the C layout).
#pragma once

#include <vector>

#include "coll/abft.hpp"
#include "coll/engine.hpp"
#include "coll/request.hpp"
#include "comm/communicator.hpp"
#include "coll/plan.hpp"  // requires communicator.hpp (glue header)
#include "dist/index_map.hpp"
#include "la/gemm.hpp"
#include "la/hemm.hpp"
#include "perf/tracker.hpp"

namespace chase::dist {

template <typename T>
class DistHermitianMatrix {
 public:
  using Scalar = T;

  DistHermitianMatrix(const comm::Grid2d& grid, IndexMap row_map,
                      IndexMap col_map)
      : grid_(&grid),
        row_map_(std::move(row_map)),
        col_map_(std::move(col_map)),
        local_(row_map_.local_size(grid.my_row()),
               col_map_.local_size(grid.my_col())) {
    CHASE_CHECK(row_map_.global_size() == col_map_.global_size());
    CHASE_CHECK(row_map_.parts() == grid.nprow());
    CHASE_CHECK(col_map_.parts() == grid.npcol());
    // A rank whose row share and column share cover the same global indices
    // (in the same local order) holds a diagonal block of H, which is itself
    // Hermitian — its local multiply can run through the symmetry-aware
    // la::hemm engine in both apply directions. On a 1x1 grid this is the
    // whole matrix; on square grids with matching maps it is every diagonal
    // rank of the grid.
    const auto rr = row_map_.runs(grid.my_row());
    const auto cr = col_map_.runs(grid.my_col());
    local_hermitian_ = rr.size() == cr.size();
    for (std::size_t i = 0; local_hermitian_ && i < rr.size(); ++i) {
      local_hermitian_ = rr[i].global_begin == cr[i].global_begin &&
                         rr[i].local_begin == cr[i].local_begin &&
                         rr[i].length == cr[i].length;
    }
  }

  Index global_size() const { return row_map_.global_size(); }
  Index local_rows() const { return local_.rows(); }
  Index local_cols() const { return local_.cols(); }
  const IndexMap& row_map() const { return row_map_; }
  const IndexMap& col_map() const { return col_map_; }
  const comm::Grid2d& grid() const { return *grid_; }

  la::MatrixView<T> local() { return local_.view(); }
  la::ConstMatrixView<T> local() const { return local_.view(); }

  /// Fill the local block from a global element functor f(i, j). The functor
  /// must describe a Hermitian matrix; this is not re-checked here.
  template <typename F>
  void fill(F&& f) {
    diag_base_.clear();  // re-capture the pristine diagonal on next shift
    shift_ = RealType<T>(0);
    const auto row_runs = row_map_.runs(grid_->my_row());
    const auto col_runs = col_map_.runs(grid_->my_col());
    for (const auto& cr : col_runs) {
      for (Index jc = 0; jc < cr.length; ++jc) {
        const Index gj = cr.global_begin + jc;
        const Index lj = cr.local_begin + jc;
        for (const auto& rr : row_runs) {
          for (Index ir = 0; ir < rr.length; ++ir) {
            local_(rr.local_begin + ir, lj) = f(rr.global_begin + ir, gj);
          }
        }
      }
    }
  }

  /// Extract the local block from a replicated global matrix.
  void fill_from_global(la::ConstMatrixView<T> global) {
    CHASE_CHECK(global.rows() == global_size() &&
                global.cols() == global_size());
    fill([&](Index i, Index j) { return global(i, j); });
  }

  /// H += s I on the locally held part of the global diagonal. The Chebyshev
  /// filter applies the center shift -c this way before filtering and undoes
  /// it afterwards (the cuBLAS build of ChASE shifts the device copy of H the
  /// same way).
  void shift_diagonal(RealType<T> s) {
    // The shift accumulates in a scalar and the diagonal is rewritten as
    // pristine + shift, so a paired shift(-c)/shift(+c) restores the exact
    // stored entries: naive `+= s` would leave ((d - c) + c) != d in the
    // last ulp, and that drift is what the checkpoint/restart bitwise-resume
    // guarantee (src/ckpt) cannot tolerate — a resumed solve refills H from
    // the source while an uninterrupted one would carry the drifted copy.
    if (diag_base_.empty()) {
      for_each_diag([&](T& d) { diag_base_.push_back(d); });
    }
    shift_ += s;
    std::size_t k = 0;
    if (shift_ == RealType<T>(0)) {
      for_each_diag([&](T& d) { d = diag_base_[k++]; });
    } else {
      for_each_diag([&](T& d) { d = diag_base_[k++] + T(shift_); });
    }
  }

  /// y_B = alpha * H^H x_C + beta * y_B over `ncols` columns.
  ///
  /// x is a C-layout block (local rows = row map part of my grid row), y is a
  /// B-layout block (local rows = col map part of my grid col); the partial
  /// products are summed with an allreduce over the *column* communicator.
  void apply_c2b(T alpha, la::ConstMatrixView<T> x, T beta,
                 la::MatrixView<T> y) {
    apply_impl(la::Op::kConjTrans, alpha, x, beta, y, grid_->col_comm());
  }

  /// y_C = alpha * H x_B + beta * y_C; reduction over the *row* communicator.
  void apply_b2c(T alpha, la::ConstMatrixView<T> x, T beta,
                 la::MatrixView<T> y) {
    apply_impl(la::Op::kNoTrans, alpha, x, beta, y, grid_->row_comm());
  }

  /// Pre-build the persistent reduction plans both apply directions replay
  /// (routine selection, channel state machines, grouped sub-communicators)
  /// for `ncols`-column applies. The solver backend calls this at setup so
  /// the filter loop starts with warm plans; lazy builds on first use cover
  /// any other width. Collective. No-op under ABFT (the checked reduction
  /// path is never planned).
  void warm_plans(Index ncols) {
    if (ncols <= 0 || coll::abft_enabled()) return;
    warm_direction(/*c2b=*/true, ncols, grid_->col_comm());
    warm_direction(/*c2b=*/false, ncols, grid_->row_comm());
  }

 private:
  /// Visit the locally held entries of the global diagonal, in a fixed
  /// (row-run, offset) order shared by the capture and rewrite passes of
  /// shift_diagonal.
  template <typename Fn>
  void for_each_diag(Fn&& fn) {
    for (const auto& rr : row_map_.runs(grid_->my_row())) {
      for (Index k = 0; k < rr.length; ++k) {
        const Index g = rr.global_begin + k;
        if (col_map_.owner(g) != grid_->my_col()) continue;
        fn(local_(rr.local_begin + k, col_map_.local_index(g)));
      }
    }
  }

  void apply_impl(la::Op op, T alpha, la::ConstMatrixView<T> x, T beta,
                  la::MatrixView<T> y, const comm::Communicator& reduce_comm) {
    const Index ncols = x.cols();
    const Index out_rows = op == la::Op::kNoTrans ? local_.rows() : local_.cols();
    CHASE_CHECK_MSG(
        x.rows() == (op == la::Op::kNoTrans ? local_.cols() : local_.rows()),
        "apply: input rows do not match the local H panel");
    CHASE_CHECK_MSG(y.rows() == out_rows && y.cols() == ncols,
                    "apply: output shape mismatch");

    // The workspace must have ld == out_rows so the allreduce sees one
    // contiguous payload; keep one exact-height workspace per direction.
    const bool c2b = op != la::Op::kNoTrans;
    la::Matrix<T>& ws = op == la::Op::kNoTrans ? ws_b2c_ : ws_c2b_;
    if (ws.rows() != out_rows || ws.cols() < ncols) {
      ws.resize(out_rows, std::max(ws.cols(), ncols));
      // Plans hold raw pointers into the workspace; a reallocation voids
      // every plan of this direction.
      invalidate_plans(c2b);
    }
    auto partial = ws.block(0, 0, out_rows, ncols);
    const double flop_mul =
        (kIsComplex<T> ? 8.0 : 2.0) * double(local_.rows()) *
        double(local_.cols());
    // fp32 storage (the mixed-precision filter's shadow) is priced at the
    // machine model's single-precision rate.
    const perf::FlopClass flop_class = sizeof(RealType<T>) == 4
                                           ? perf::FlopClass::kGemmSingle
                                           : perf::FlopClass::kGemm;
    const auto write_back = [&](Index j0, Index bn) {
      for (Index j = j0; j < j0 + bn; ++j) {
        T* yj = y.col(j);
        const T* pj = partial.col(j);
        if (beta == T(0)) {
          for (Index i = 0; i < out_rows; ++i) yj[i] = pj[i];
        } else {
          for (Index i = 0; i < out_rows; ++i) yj[i] = pj[i] + beta * yj[i];
        }
      }
    };

    // Local multiply for one column block. Diagonal ranks dispatch to
    // la::hemm — the local panel is Hermitian, so H_loc^H == H_loc and both
    // apply directions read only one triangle under the micro policy;
    // off-diagonal ranks run the plain policy-selected gemm.
    const auto multiply = [&](la::ConstMatrixView<T> xin,
                              la::MatrixView<T> out) {
      if (local_hermitian_) {
        la::hemm(alpha, local_.view().as_const(), xin, T(0), out);
      } else {
        la::gemm(alpha, op, local_.view().as_const(), la::Op::kNoTrans, xin,
                 T(0), out);
      }
    };

    // Overlap pipeline (v1.4 scheme, armed by CHASE_COLL_ALGO=auto): split
    // the HEMM into column blocks and run block k's allreduce while block
    // k+1 multiplies. Bitwise-safe: both the gemm and the hemm engines
    // compute each output column with a fixed k-loop order regardless of how
    // columns are grouped, and per-column reductions are independent.
    // ABFT forces the synchronous path: the checksum lane must ride next to
    // the full payload, and replaying an in-flight overlapped block would
    // tangle with the pipeline's outstanding requests.
    const bool abft = coll::abft_enabled();
    const Index nblk = abft ? 1 : plan_blocks(reduce_comm, ncols);
    if (nblk <= 1) {
      multiply(x, partial);
      if (auto* t = perf::thread_tracker()) {
        t->add_flops(flop_class, flop_mul * double(ncols));
      }
      if (abft) {
        coll::checked_block_reduce(reduce_comm, partial);
      } else {
        // Persistent-plan replay: selection + algorithm construction
        // happened once (plan_for), this iteration only re-arms and runs.
        plan_for(c2b, ncols, out_rows, reduce_comm).run(0);
      }
      write_back(0, ncols);
      return;
    }
    coll::CollPlan& plan = plan_for(c2b, ncols, out_rows, reduce_comm);
    const Index bcols = (ncols + nblk - 1) / nblk;
    coll::CollRequest pending;
    Index pj0 = 0;
    Index pbn = 0;
    std::size_t bi = 0;
    for (Index j0 = 0; j0 < ncols; j0 += bcols, ++bi) {
      const Index bn = std::min(bcols, ncols - j0);
      auto pblk = ws.block(0, j0, out_rows, bn);
      multiply(x.block(0, j0, x.rows(), bn), pblk);
      if (auto* t = perf::thread_tracker()) {
        t->add_flops(flop_class, flop_mul * double(bn));
      }
      // Replay this block's planned reduction nonblocking; entries whose
      // frozen routine has no channel op (naive) complete eagerly instead.
      coll::CollRequest req;
      if (plan.async_capable(bi)) {
        req = plan.start(bi);
      } else {
        plan.run(bi);
      }
      if (pbn > 0) {
        pending.wait();
        write_back(pj0, pbn);
      }
      pending = std::move(req);
      pj0 = j0;
      pbn = bn;
    }
    pending.wait();
    write_back(pj0, pbn);
    perf::bump_counter("coll.overlap.blocks",
                       double((ncols + bcols - 1) / bcols));
  }

  /// Column blocks the (possibly overlapped) reduction pipeline uses for an
  /// `ncols`-wide apply — must be identical for plan build and replay.
  Index plan_blocks(const comm::Communicator& comm, Index ncols) const {
    return coll::overlap_enabled() && comm.size() > 1 && ncols > 1
               ? std::min<Index>(ncols, 4)
               : 1;
  }

  /// The persistent plan for one apply direction and width under the current
  /// collective policy; built on first use. The key carries a policy
  /// fingerprint (algorithm, chunk size) so a policy change between solves
  /// rebuilds instead of replaying a stale routine choice.
  coll::CollPlan& plan_for(bool c2b, Index ncols, Index out_rows,
                           const comm::Communicator& reduce_comm) {
    const int algo = int(coll::algorithm());
    const std::size_t chunk = coll::chunk_bytes();
    for (auto& s : plans_) {
      if (s.c2b == c2b && s.ncols == ncols && s.algo == algo &&
          s.chunk == chunk) {
        return s.plan;
      }
    }
    PlanSlot s;
    s.c2b = c2b;
    s.ncols = ncols;
    s.algo = algo;
    s.chunk = chunk;
    la::Matrix<T>& ws = c2b ? ws_c2b_ : ws_b2c_;
    const Index nblk = plan_blocks(reduce_comm, ncols);
    const Index bcols = (ncols + nblk - 1) / nblk;
    for (Index j0 = 0; j0 < ncols; j0 += bcols) {
      const Index bn = std::min(bcols, ncols - j0);
      s.plan.add_all_reduce(reduce_comm, ws.block(0, j0, out_rows, bn).data(),
                            out_rows * bn);
    }
    plans_.push_back(std::move(s));
    return plans_.back().plan;
  }

  void invalidate_plans(bool c2b) {
    for (std::size_t i = plans_.size(); i > 0; --i) {
      if (plans_[i - 1].c2b == c2b) {
        plans_.erase(plans_.begin() + long(i - 1));
      }
    }
  }

  void warm_direction(bool c2b, Index ncols,
                      const comm::Communicator& reduce_comm) {
    const Index out_rows = c2b ? local_.cols() : local_.rows();
    la::Matrix<T>& ws = c2b ? ws_c2b_ : ws_b2c_;
    if (ws.rows() != out_rows || ws.cols() < ncols) {
      ws.resize(out_rows, std::max(ws.cols(), ncols));
      invalidate_plans(c2b);
    }
    (void)plan_for(c2b, ncols, out_rows, reduce_comm);
  }

  const comm::Grid2d* grid_;
  IndexMap row_map_;
  IndexMap col_map_;
  bool local_hermitian_ = false;  // this rank holds a diagonal block of H
  la::Matrix<T> local_;
  std::vector<T> diag_base_;      // pristine owned diagonal (lazy capture)
  RealType<T> shift_ = RealType<T>(0);  // cumulative diagonal shift
  la::Matrix<T> ws_c2b_;  // partial-product workspaces, grown on demand
  la::Matrix<T> ws_b2c_;

  // Persistent communication plans, keyed by apply direction, width, and the
  // collective-policy fingerprint; invalidated when the workspace they point
  // into reallocates.
  struct PlanSlot {
    bool c2b = false;
    Index ncols = 0;
    int algo = -1;
    std::size_t chunk = 0;
    coll::CollPlan plan;
  };
  std::vector<PlanSlot> plans_;
};

}  // namespace chase::dist
