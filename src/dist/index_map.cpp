#include "dist/index_map.hpp"

#include <algorithm>

namespace chase::dist {

IndexMap IndexMap::block(Index n, int parts) {
  CHASE_CHECK(n >= 0 && parts >= 1);
  const Index b = std::max<Index>((n + parts - 1) / parts, 1);
  return IndexMap(n, parts, b);
}

IndexMap IndexMap::block_cyclic(Index n, int parts, Index block_size) {
  CHASE_CHECK(n >= 0 && parts >= 1 && block_size >= 1);
  return IndexMap(n, parts, block_size);
}

Index IndexMap::local_size(int part) const {
  CHASE_CHECK(part >= 0 && part < parts_);
  const Index cycle = b_ * parts_;
  const Index full_cycles = n_ / cycle;
  const Index rem = n_ % cycle;
  Index size = full_cycles * b_;
  // Within the partial cycle, this part owns [part*b, part*b + b).
  const Index start = Index(part) * b_;
  size += std::clamp<Index>(rem - start, 0, b_);
  return size;
}

Index IndexMap::max_local_size() const {
  Index best = 0;
  for (int p = 0; p < parts_; ++p) best = std::max(best, local_size(p));
  return best;
}

std::vector<IndexMap::Run> IndexMap::runs(int part) const {
  CHASE_CHECK(part >= 0 && part < parts_);
  std::vector<Run> out;
  const Index cycle = b_ * parts_;
  for (Index g0 = Index(part) * b_; g0 < n_; g0 += cycle) {
    const Index len = std::min(b_, n_ - g0);
    out.push_back(Run{g0, local_index(g0), len});
  }
  return out;
}

}  // namespace chase::dist
