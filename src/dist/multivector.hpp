// Redistribution and collection of distributed multivectors.
//
// redistribute_c2b implements the "B2 <- Bcast(C2, ccomm)" step of
// Algorithm 2 (lines 14/21): the C-layout rows (row map over the column
// communicator) are rearranged into the B layout (col map). On a square grid
// with matching maps this is a single full-block broadcast per column
// communicator; otherwise the B rows are assembled from per-segment
// broadcasts — exactly the paper's remark that non-square grids or
// block-cyclic maps "may require multiple broadcasting operations".
//
// gather_rows reproduces the v1.2 collection pattern (Section 2.3): the
// distributed rows are collected into a *redundant* full matrix on every
// rank via one broadcast per owner part — the message count that doubles
// when the task count quadruples, which is what limited ChASE(LMS).
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "dist/index_map.hpp"
#include "la/matrix.hpp"

namespace chase::dist {

namespace detail {

/// Pack rows [r0, r0+len) of all ncols columns of src into a contiguous
/// column-major buffer of shape len x ncols.
template <typename T>
void pack_rows(la::ConstMatrixView<T> src, Index r0, Index len, T* buf) {
  for (Index j = 0; j < src.cols(); ++j) {
    const T* col = src.col(j) + r0;
    std::copy(col, col + len, buf + j * len);
  }
}

template <typename T>
void unpack_rows(const T* buf, Index len, la::MatrixView<T> dst, Index r0) {
  for (Index j = 0; j < dst.cols(); ++j) {
    std::copy(buf + j * len, buf + (j + 1) * len, dst.col(j) + r0);
  }
}

}  // namespace detail

/// Generic within-communicator row redistribution: `src_local` is the block
/// of rows that `comm`-rank r owns under `src_map`; every rank of the
/// communicator assembles the rows of `dst_map` part `dst_part` into
/// `dst_local` (the same dst_part on all ranks — the destination layout is
/// replicated across this communicator).
template <typename T>
void redistribute_rows(const comm::Communicator& comm, const IndexMap& src_map,
                       la::ConstMatrixView<T> src_local,
                       const IndexMap& dst_map, int dst_part,
                       la::MatrixView<T> dst_local) {
  CHASE_CHECK_MSG(src_local.cols() == dst_local.cols(),
                  "redistribute: column count mismatch");
  CHASE_CHECK_MSG(src_map.parts() == comm.size(),
                  "redistribute: src map does not match communicator");
  const Index ncols = src_local.cols();
  if (ncols == 0) return;

  // Fast path (identical maps): destination part dst_part is exactly the
  // source block of comm-rank dst_part — one broadcast of the whole block.
  if (src_map == dst_map) {
    const int root = dst_part;
    if (comm.rank() == root) {
      la::copy(src_local, dst_local);
    }
    if (dst_local.rows() > 0) {
      if (dst_local.ld() == dst_local.rows()) {
        comm.broadcast(dst_local.data(), dst_local.rows() * ncols, root);
      } else {
        std::vector<T> buf(std::size_t(dst_local.rows()) * std::size_t(ncols));
        if (comm.rank() == root) {
          detail::pack_rows(dst_local.as_const(), 0, dst_local.rows(),
                            buf.data());
        }
        comm.broadcast(buf.data(), dst_local.rows() * ncols, root);
        detail::unpack_rows(buf.data(), dst_local.rows(), dst_local, 0);
      }
    }
    return;
  }

  // General path: walk the destination rows in global order and broadcast
  // each segment from the rank owning it under the source map. Every rank
  // iterates the identical segment sequence (dst_part is shared).
  std::vector<T> buf;
  for (const auto& run : dst_map.runs(dst_part)) {
    Index done = 0;
    while (done < run.length) {
      const Index g = run.global_begin + done;
      const int owner = src_map.owner(g);
      // Segment ends at the run end or at the next src-map block boundary,
      // whichever comes first (local indices stay contiguous within it).
      const Index block_end =
          (g / src_map.block_size() + 1) * src_map.block_size();
      const Index len = std::min(run.length - done, block_end - g);
      buf.resize(std::size_t(len) * std::size_t(ncols));
      if (comm.rank() == owner) {
        detail::pack_rows(src_local, src_map.local_index(g), len, buf.data());
      }
      comm.broadcast(buf.data(), len * ncols, owner);
      detail::unpack_rows(buf.data(), len, dst_local, run.local_begin + done);
      done += len;
    }
  }
}

/// "B2 <- Bcast(C2, ccomm)": C layout (row map over the column communicator)
/// into B layout (col map, replicated across the column communicator).
template <typename T>
void redistribute_c2b(const comm::Grid2d& grid, const IndexMap& row_map,
                      const IndexMap& col_map, la::ConstMatrixView<T> c_local,
                      la::MatrixView<T> b_local) {
  redistribute_rows(grid.col_comm(), row_map, c_local, col_map, grid.my_col(),
                    b_local);
}

/// The reverse direction (used by Lanczos): B layout (col map over the row
/// communicator) back into the C layout.
template <typename T>
void redistribute_b2c(const comm::Grid2d& grid, const IndexMap& row_map,
                      const IndexMap& col_map, la::ConstMatrixView<T> b_local,
                      la::MatrixView<T> c_local) {
  redistribute_rows(grid.row_comm(), col_map, b_local, row_map, grid.my_row(),
                    c_local);
}

/// Collect a distributed multivector into a redundant full matrix on every
/// rank of `comm` (one broadcast per part, the v1.2 collection pattern).
/// `full` must be global_size x ncols.
template <typename T>
void gather_rows(const comm::Communicator& comm, const IndexMap& map,
                 la::ConstMatrixView<T> local, la::MatrixView<T> full) {
  CHASE_CHECK_MSG(map.parts() == comm.size(), "gather: map/comm mismatch");
  CHASE_CHECK_MSG(full.rows() == map.global_size() &&
                      full.cols() == local.cols(),
                  "gather: output shape mismatch");
  const Index ncols = local.cols();
  std::vector<T> buf;
  for (int part = 0; part < comm.size(); ++part) {
    const Index count = map.local_size(part);
    if (count == 0) continue;
    buf.resize(std::size_t(count) * std::size_t(ncols));
    if (comm.rank() == part) {
      // Pack the owner's rows in local order (matches run order below).
      Index pos = 0;
      for (const auto& run : map.runs(part)) {
        for (Index j = 0; j < ncols; ++j) {
          const T* col = local.col(j) + run.local_begin;
          std::copy(col, col + run.length, buf.data() + pos + j * count);
        }
        pos += run.length;
      }
    }
    comm.broadcast(buf.data(), count * ncols, part);
    Index pos = 0;
    for (const auto& run : map.runs(part)) {
      for (Index j = 0; j < ncols; ++j) {
        std::copy(buf.data() + pos + j * count,
                  buf.data() + pos + j * count + run.length,
                  full.col(j) + run.global_begin);
      }
      pos += run.length;
    }
  }
}

/// Extract this part's rows of a replicated full matrix into the local block
/// (pure local operation).
template <typename T>
void scatter_rows(const IndexMap& map, int part, la::ConstMatrixView<T> full,
                  la::MatrixView<T> local) {
  CHASE_CHECK_MSG(full.rows() == map.global_size() &&
                      full.cols() == local.cols() &&
                      local.rows() == map.local_size(part),
                  "scatter: shape mismatch");
  for (const auto& run : map.runs(part)) {
    for (Index j = 0; j < full.cols(); ++j) {
      const T* src = full.col(j) + run.global_begin;
      std::copy(src, src + run.length, local.col(j) + run.local_begin);
    }
  }
}

}  // namespace chase::dist
