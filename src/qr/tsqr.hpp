// Tall-Skinny QR (TSQR) — the communication-avoiding alternative the paper
// weighs against CholeskyQR (Section 3.2).
//
// TSQR has the same communication volume as CholeskyQR but its reduction
// operator is the QR of a small stacked matrix instead of an addition, which
// is why the paper prefers CholeskyQR (additions map onto allreduce
// hardware/NCCL directly). Unlike CholeskyQR, TSQR is unconditionally stable
// — it orthonormalizes blocks with kappa up to u^{-1} without shifts or
// repetitions. It is provided here as a library feature and an ablation
// point; ChASE's Algorithm 4 heuristic never needs it because shifted
// CholeskyQR2 plus the HHQR fallback covers the same range.
//
// The implementation is the flat-tree ("allgather") TSQR:
//   1. each rank factors its local block: X_r = Q_r R_r;
//   2. the p small R_r factors are allgathered (n^2 scalars each — the same
//      wire volume as CholeskyQR's Gram allreduce);
//   3. every rank redundantly factors the stacked [R_0; ...; R_{p-1}] =
//      Q_stack R and keeps its n x n slice of Q_stack;
//   4. Q_r <- Q_r * Q_stack(r), giving the global thin Q in place.
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "la/gemm.hpp"
#include "la/qr.hpp"
#include "perf/tracker.hpp"

namespace chase::qr {

/// Orthonormalize the row-distributed tall matrix X in place; `r_out`, if
/// non-null, receives the n x n R factor (identical on every rank).
template <typename T>
void tsqr(la::MatrixView<T> x, const comm::Communicator& comm,
          la::Matrix<T>* r_out = nullptr) {
  using la::Index;
  const Index n = x.cols();
  const int p = comm.size();

  if (auto* t = perf::thread_tracker()) {
    const double z = kIsComplex<T> ? 4.0 : 1.0;
    // Local panel factorization + Q formation + the stacked-R factorization.
    t->add_flops(perf::FlopClass::kPanel,
                 4.0 * z * double(x.rows()) * double(n) * double(n));
    t->add_flops(perf::FlopClass::kSmall,
                 4.0 * z * double(p) * double(n) * double(n) * double(n));
  }

  // 1. Local QR. Ranks can own fewer rows than columns (ragged block maps);
  // pad the local block with zero rows so the panel stays factorizable.
  const Index rows = std::max(x.rows(), n);
  la::Matrix<T> local(rows, n);
  la::copy(x.as_const(), local.block(0, 0, x.rows(), n));
  la::Matrix<T> r_local(n, n);
  la::householder_qr(local.view(), r_local.view());

  if (p == 1) {
    la::copy(local.block(0, 0, x.rows(), n).as_const(), x);
    if (r_out != nullptr) *r_out = std::move(r_local);
    return;
  }

  // 2. Allgather the small R factors (flat reduction tree).
  la::Matrix<T> stacked(Index(p) * n, n);
  {
    // Pack column-major n x n blocks; allgather concatenates rank blocks.
    std::vector<T> send(static_cast<std::size_t>(n * n));
    std::vector<T> recv(static_cast<std::size_t>(Index(p) * n * n));
    for (Index j = 0; j < n; ++j) {
      std::copy(r_local.col(j), r_local.col(j) + n, send.data() + j * n);
    }
    comm.all_gather(send.data(), n * n, recv.data());
    for (int rank = 0; rank < p; ++rank) {
      for (Index j = 0; j < n; ++j) {
        const T* src = recv.data() + Index(rank) * n * n + j * n;
        std::copy(src, src + n, stacked.col(j) + Index(rank) * n);
      }
    }
  }

  // 3. Redundant QR of the stacked R factors.
  la::Matrix<T> r_final(n, n);
  la::householder_qr(stacked.view(), r_final.view());

  // 4. Combine: X <- Q_local * Q_stack(my slice).
  auto my_slice = stacked.block(Index(comm.rank()) * n, 0, n, n);
  la::gemm(T(1), local.block(0, 0, x.rows(), n).as_const(),
           my_slice.as_const(), T(0), x);

  if (r_out != nullptr) *r_out = std::move(r_final);
}

}  // namespace chase::qr
