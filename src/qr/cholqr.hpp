// Communication-avoiding CholeskyQR variants (Section 3.2, Algorithms 3/4).
//
// All functions orthonormalize a (possibly distributed) tall matrix X in
// place and discard R — ChASE only consumes the Q factor. In the distributed
// case X is the local row block of a 1D distribution over `comm` and the only
// communication per repetition is one n x n allreduce of the Gram matrix,
// which is what makes CholeskyQR communication-avoiding compared to the one
// allreduce *per column* of Householder QR.
#pragma once

#include <cmath>
#include <optional>

#include "comm/communicator.hpp"
#include "common/faultinject.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "la/potrf.hpp"
#include "la/trsm.hpp"
#include "perf/tracker.hpp"

namespace chase::qr {

using comm::Communicator;
using la::ConstMatrixView;
using la::Index;
using la::Matrix;
using la::MatrixView;

namespace detail {

/// Record the analytic flop counts of one CholeskyQR repetition (what the
/// cuBLAS/cuSOLVER kernels of the paper's implementation would execute).
/// SYRK and TRSM on a tall block with thousands of columns run at GEMM-class
/// rates on the GPU — the very reason CholeskyQR wins over the BLAS-2-bound
/// Householder panels.
template <typename T>
void account_cholqr_flops(Index m_local, Index n) {
  if (auto* t = perf::thread_tracker()) {
    const double z = kIsComplex<T> ? 4.0 : 1.0;
    // SYRK (Gram) + TRSM (back substitution): m n^2 each.
    t->add_flops(perf::FlopClass::kGemm,
                 2.0 * z * double(m_local) * double(n) * double(n));
    // Redundant POTRF of the n x n Gram matrix.
    t->add_flops(perf::FlopClass::kSmall,
                 z * double(n) * double(n) * double(n) / 3.0);
  }
}

}  // namespace detail

/// One CholeskyQR repetition: X <- X * chol(X^H X)^{-1}.
///
/// Returns the LAPACK-style info of the Cholesky factorization (0 on
/// success); on failure X is left partially unmodified and the caller is
/// expected to fall back (Algorithm 4 line 9).
template <typename T>
int cholqr_step(MatrixView<T> x, const Communicator* comm) {
  const Index n = x.cols();
  Matrix<T> gram(n, n);
  la::gram(x.as_const(), gram.view());
  if (comm != nullptr) {
    comm->all_reduce(gram.data(), n * n);
  }
  // Simulated breakdown before the factorization: X is untouched (no trsm),
  // exactly like a real POTRF failure, so the recovery ladder restarts from
  // an intact X.
  if (fault::fired("potrf.breakdown")) return int(n);
  // Near-breakdown pivots mean kappa(X) exceeded what CholeskyQR can handle;
  // report failure so Algorithm 4's fallback engages.
  const int info =
      la::potrf_upper(gram.view(), RealType<T>(n) * unit_roundoff<T>());
  if (info != 0) return info;
  la::trsm_right_upper(gram.view().as_const(), x);
  detail::account_cholqr_flops<T>(x.rows(), n);
  return 0;
}

/// CholeskyQR with `repetitions` passes (Algorithm 3); repetitions == 2 is
/// CholeskyQR2, the variant with full O(u) orthogonality for kappa_2(X) up
/// to about u^{-1/2}.
template <typename T>
int cholqr(MatrixView<T> x, const Communicator* comm, int repetitions) {
  for (int rep = 0; rep < repetitions; ++rep) {
    const int info = cholqr_step(x, comm);
    if (info != 0) return info;
  }
  return 0;
}

/// Shifted CholeskyQR (the preconditioning pass of s-CholeskyQR2, [Fukaya et
/// al. 2020]): factor X^H X + s I with s = 11 (m n + n (n+1)) u ||X||_F^2,
/// then back-substitute. Handles kappa_2(X) up to about u^{-1}.
///
/// `m_global` is the global row count of the distributed X. Returns potrf
/// info; a nonzero value means even the shifted Gram matrix failed and the
/// caller must fall back to Householder QR.
template <typename T>
int shifted_cholqr_step(MatrixView<T> x, const Communicator* comm,
                        Index m_global) {
  using R = RealType<T>;
  const Index n = x.cols();
  Matrix<T> gram(n, n);
  la::gram(x.as_const(), gram.view());
  R norm2 = la::frobenius_norm_squared(x.as_const());
  if (comm != nullptr) {
    comm->all_reduce(gram.data(), n * n);
    comm->all_reduce(&norm2, 1);
  }
  const R u = unit_roundoff<T>();
  const R shift =
      R(11) * (R(m_global) * R(n) + R(n) * R(n + 1)) * u * norm2;
  for (Index j = 0; j < n; ++j) gram(j, j) += T(shift);
  if (fault::fired("potrf.breakdown")) return int(n);
  const int info = la::potrf_upper(gram.view());
  if (info != 0) return info;
  la::trsm_right_upper(gram.view().as_const(), x);
  detail::account_cholqr_flops<T>(x.rows(), n);
  return 0;
}

}  // namespace chase::qr
