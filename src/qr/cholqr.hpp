// Communication-avoiding CholeskyQR variants (Section 3.2, Algorithms 3/4).
//
// All functions orthonormalize a (possibly distributed) tall matrix X in
// place and discard R — ChASE only consumes the Q factor. In the distributed
// case X is the local row block of a 1D distribution over `comm` and the only
// communication per repetition is one allreduce of the Gram matrix's upper
// triangle — n(n+1)/2 entries, half the wire volume of the full matrix the
// seed reduced — which is what makes CholeskyQR communication-avoiding
// compared to the one allreduce *per column* of Householder QR.
//
// The Gram matrix is formed with la::herk_upper (upper triangle only, the
// HERK flop saving) and never mirrored: POTRF and the TRSM back-substitution
// read only the upper triangle.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "comm/communicator.hpp"
#include "common/faultinject.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "la/potrf.hpp"
#include "la/trsm.hpp"
#include "perf/tracker.hpp"

namespace chase::qr {

using comm::Communicator;
using la::ConstMatrixView;
using la::Index;
using la::Matrix;
using la::MatrixView;

namespace detail {

/// Record the analytic flop counts of one CholeskyQR repetition (what the
/// cuBLAS/cuSOLVER kernels of the paper's implementation would execute).
/// The HERK and TRSM on a tall block are kFactor work — priced at the
/// measured factorization rate (MachineModel::factor_flops, calibrated from
/// the la.trsm/la.herk counters) rather than assumed to hit the GEMM peak.
template <typename T>
void account_cholqr_flops(Index m_local, Index n) {
  if (auto* t = perf::thread_tracker()) {
    const double z = kIsComplex<T> ? 4.0 : 1.0;
    // HERK (Gram) + TRSM (back substitution): m n^2 each.
    t->add_flops(perf::FlopClass::kFactor,
                 2.0 * z * double(m_local) * double(n) * double(n));
    // Redundant POTRF of the n x n Gram matrix.
    t->add_flops(perf::FlopClass::kSmall,
                 z * double(n) * double(n) * double(n) / 3.0);
  }
}

/// Column-major upper-triangle pack: n(n+1)/2 entries, diagonal last per
/// column.
template <typename T>
void pack_upper(ConstMatrixView<T> a, T* buf) {
  const Index n = a.rows();
  Index idx = 0;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) buf[idx++] = a(i, j);
  }
}

/// Inverse of pack_upper; the diagonal is forced real (the reduced imaginary
/// parts are exact zeros — every rank's Gram diagonal is a sum of squared
/// moduli — so this only strips representation noise, matching the seed's
/// post-mirror normalization).
template <typename T>
void unpack_upper(const T* buf, MatrixView<T> a) {
  const Index n = a.rows();
  Index idx = 0;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) a(i, j) = buf[idx++];
    a(j, j) = T(real_part(buf[idx++]));
  }
}

/// Allreduce of the Gram matrix's upper triangle (no-op without a
/// communicator): pack, reduce n(n+1)/2 scalars, unpack.
template <typename T>
void all_reduce_upper(MatrixView<T> gram, const Communicator* comm) {
  if (comm == nullptr) return;
  const Index n = gram.rows();
  const Index packed = n * (n + 1) / 2;
  std::vector<T> tri(static_cast<std::size_t>(packed));
  pack_upper(gram.as_const(), tri.data());
  comm->all_reduce(tri.data(), packed);
  unpack_upper(tri.data(), gram);
}

}  // namespace detail

/// One CholeskyQR repetition: X <- X * chol(X^H X)^{-1}.
///
/// Returns the LAPACK-style info of the Cholesky factorization (0 on
/// success); on failure X is left partially unmodified and the caller is
/// expected to fall back (Algorithm 4 line 9).
template <typename T>
int cholqr_step(MatrixView<T> x, const Communicator* comm) {
  const Index n = x.cols();
  Matrix<T> gram(n, n);
  la::herk_upper(T(1), x.as_const(), T(0), gram.view());
  detail::all_reduce_upper(gram.view(), comm);
  // Simulated breakdown before the factorization: X is untouched (no trsm),
  // exactly like a real POTRF failure, so the recovery ladder restarts from
  // an intact X.
  if (fault::fired("potrf.breakdown")) return int(n);
  // Near-breakdown pivots mean kappa(X) exceeded what CholeskyQR can handle;
  // report failure so Algorithm 4's fallback engages.
  const int info =
      la::potrf_upper(gram.view(), RealType<T>(n) * unit_roundoff<T>());
  if (info != 0) return info;
  la::trsm_right_upper(gram.view().as_const(), x);
  detail::account_cholqr_flops<T>(x.rows(), n);
  return 0;
}

/// CholeskyQR with `repetitions` passes (Algorithm 3); repetitions == 2 is
/// CholeskyQR2, the variant with full O(u) orthogonality for kappa_2(X) up
/// to about u^{-1/2}.
template <typename T>
int cholqr(MatrixView<T> x, const Communicator* comm, int repetitions) {
  for (int rep = 0; rep < repetitions; ++rep) {
    const int info = cholqr_step(x, comm);
    if (info != 0) return info;
  }
  return 0;
}

/// Shifted CholeskyQR (the preconditioning pass of s-CholeskyQR2, [Fukaya et
/// al. 2020]): factor X^H X + s I with s = 11 (m n + n (n+1)) u ||X||_F^2,
/// then back-substitute. Handles kappa_2(X) up to about u^{-1}.
///
/// `m_global` is the global row count of the distributed X. Returns potrf
/// info; a nonzero value means even the shifted Gram matrix failed and the
/// caller must fall back to Householder QR.
template <typename T>
int shifted_cholqr_step(MatrixView<T> x, const Communicator* comm,
                        Index m_global) {
  using R = RealType<T>;
  const Index n = x.cols();
  Matrix<T> gram(n, n);
  la::herk_upper(T(1), x.as_const(), T(0), gram.view());
  R norm2 = la::frobenius_norm_squared(x.as_const());
  detail::all_reduce_upper(gram.view(), comm);
  if (comm != nullptr) {
    comm->all_reduce(&norm2, 1);
  }
  const R u = unit_roundoff<T>();
  const R shift =
      R(11) * (R(m_global) * R(n) + R(n) * R(n + 1)) * u * norm2;
  for (Index j = 0; j < n; ++j) gram(j, j) += T(shift);
  if (fault::fired("potrf.breakdown")) return int(n);
  const int info = la::potrf_upper(gram.view());
  if (info != 0) return info;
  la::trsm_right_upper(gram.view().as_const(), x);
  detail::account_cholqr_flops<T>(x.rows(), n);
  return 0;
}

}  // namespace chase::qr
