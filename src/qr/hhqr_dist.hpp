// Distributed 1D Householder QR — the robust fallback of Algorithm 4 and the
// baseline of the Table 2 comparison.
//
// X is row-distributed over `comm` by `map` (the C layout of ChASE). Each of
// the n reflectors needs one allreduce for the tail norm, one broadcast of
// the pivot element and one allreduce of v^H X over the trailing columns —
// the per-column message pattern that makes Householder QR communication-
// bound at scale, in contrast to the single Gram allreduce of CholeskyQR.
// This mirrors the ScaLAPACK HHQR the paper calls over each column
// communicator (Section 4.3).
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "dist/index_map.hpp"
#include "la/factor/policy.hpp"
#include "la/householder.hpp"
#include "la/qr.hpp"
#include "la/qr_blocked.hpp"
#include "perf/tracker.hpp"

namespace chase::qr {

using dist::IndexMap;

/// Orthonormalize the distributed tall matrix X in place (Q overwrites X,
/// R is discarded as ChASE does not consume it).
template <typename T>
void hhqr_dist(la::MatrixView<T> x, const IndexMap& map,
               const comm::Communicator& comm) {
  using R = RealType<T>;
  const Index n = x.cols();
  const Index m = map.global_size();
  CHASE_CHECK_MSG(m >= n, "hhqr_dist expects a tall matrix");
  CHASE_CHECK_MSG(x.rows() == map.local_size(comm.rank()),
                  "hhqr_dist: local rows do not match the map");
  if (comm.size() == 1) {
    // Single-rank fallback path: under the blocked factorization policy use
    // the compact-WY blocked QR (panel + larft/larfb GEMM updates) instead
    // of the per-reflector unblocked kernel.
    if (la::factor_kernel_for(x.cols()) == la::FactorKernel::kBlocked) {
      la::householder_orthonormalize_blocked(x);
    } else {
      la::householder_orthonormalize(x);
    }
    return;
  }

  const int me = comm.rank();
  const auto runs = map.runs(me);
  // Global index of each local row, for pivot/tail membership tests.
  std::vector<Index> gidx(static_cast<std::size_t>(x.rows()));
  for (const auto& run : runs) {
    for (Index k = 0; k < run.length; ++k) {
      gidx[std::size_t(run.local_begin + k)] = run.global_begin + k;
    }
  }

  // Reflector tails are accumulated in V (local rows x n); the implicit
  // "1" lives at global row k of reflector k.
  la::Matrix<T> v(x.rows(), n);
  std::vector<T> taus(static_cast<std::size_t>(n));
  std::vector<T> work(static_cast<std::size_t>(n + 1));

  auto apply_reflector = [&](Index k, la::MatrixView<T> cols, T tau,
                             bool conj_tau) {
    // cols := (I - tau v_k v_k^H) cols, restricted to global rows >= k.
    const Index nc = cols.cols();
    if (nc == 0 || tau == T(0)) return;
    std::vector<T>& w = work;
    for (Index j = 0; j < nc; ++j) {
      T acc(0);
      const T* cj = cols.col(j);
      const T* vk = v.col(k);
      for (Index i = 0; i < cols.rows(); ++i) {
        if (gidx[std::size_t(i)] >= k) acc += conjugate(vk[i]) * cj[i];
      }
      w[std::size_t(j)] = acc;
    }
    comm.all_reduce(w.data(), nc);
    const T t = conj_tau ? conjugate(tau) : tau;
    for (Index j = 0; j < nc; ++j) {
      T* cj = cols.col(j);
      const T* vk = v.col(k);
      const T f = t * w[std::size_t(j)];
      for (Index i = 0; i < cols.rows(); ++i) {
        if (gidx[std::size_t(i)] >= k) cj[i] -= f * vk[i];
      }
    }
  };

  for (Index k = 0; k < n; ++k) {
    // Tail norm ||x(k+1:m, k)||^2 and pivot alpha = x(k, k).
    R tail2 = R(0);
    T alpha(0);
    const int owner = map.owner(k);
    for (Index i = 0; i < x.rows(); ++i) {
      const Index g = gidx[std::size_t(i)];
      if (g > k) {
        tail2 += real_part(conjugate(x(i, k)) * x(i, k));
      } else if (g == k) {
        alpha = x(i, k);
      }
    }
    comm.all_reduce(&tail2, 1);
    comm.broadcast(&alpha, 1, owner);

    // Reflector parameters, computed redundantly (deterministic).
    const R xnorm = std::sqrt(tail2);
    const R alphr = real_part(alpha);
    const R alphi = imag_part(alpha);
    T tau(0);
    R beta = alphr;
    if (xnorm != R(0) || alphi != R(0)) {
      const R norm = std::hypot(std::hypot(alphr, alphi), xnorm);
      beta = (alphr >= R(0)) ? -norm : norm;
      if constexpr (kIsComplex<T>) {
        tau = T((beta - alphr) / beta, -alphi / beta);
      } else {
        tau = (beta - alphr) / beta;
      }
    }
    taus[std::size_t(k)] = tau;

    // v_k: 1 at global row k, x / (alpha - beta) below, 0 above.
    const T inv = tau == T(0) ? T(0) : T(1) / (alpha - T(beta));
    for (Index i = 0; i < x.rows(); ++i) {
      const Index g = gidx[std::size_t(i)];
      if (g > k) {
        v(i, k) = x(i, k) * inv;
      } else if (g == k) {
        v(i, k) = T(1);
      } else {
        v(i, k) = T(0);
      }
    }

    // Update the trailing columns with H_k^H (zgeqr2 convention).
    if (k + 1 < n) {
      apply_reflector(k, x.block(0, k + 1, x.rows(), n - k - 1), tau,
                      /*conj_tau=*/true);
    }
  }

  // Form the thin Q in place: X := H_0 ... H_{n-1} * I_{m x n}.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < x.rows(); ++i) {
      x(i, j) = gidx[std::size_t(i)] == j ? T(1) : T(0);
    }
  }
  for (Index k = n - 1; k >= 0; --k) {
    apply_reflector(k, x.block(0, k, x.rows(), n - k), taus[std::size_t(k)],
                    /*conj_tau=*/false);
  }

  if (auto* t = perf::thread_tracker()) {
    const double z = kIsComplex<T> ? 4.0 : 1.0;
    // geqrf (2mn^2) + ungqr (2mn^2) panel work, split across ranks.
    t->add_flops(perf::FlopClass::kPanel,
                 4.0 * z * double(x.rows()) * double(n) * double(n));
  }
}

}  // namespace chase::qr
