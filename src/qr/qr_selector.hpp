// The QR variant selector of Algorithm 4 (1D-CAQR).
//
// Based on the estimated condition number of the filtered vectors:
//   est >  u^{-1/2} (~1e8 in double)  -> shifted CholeskyQR + CholeskyQR2,
//                                        with Householder QR as the fallback
//                                        if even the shifted POTRF fails;
//   est <  20                         -> a single CholeskyQR pass;
//   otherwise                         -> CholeskyQR2.
#pragma once

#include "dist/index_map.hpp"
#include "qr/cholqr.hpp"
#include "qr/hhqr_dist.hpp"
#include "qr/tsqr.hpp"

namespace chase::qr {

enum class QrVariant : int {
  kCholQr1 = 0,
  kCholQr2,
  kShiftedCholQr2,
  kHouseholder,
  kTsqr,
};

inline std::string_view qr_variant_name(QrVariant v) {
  switch (v) {
    case QrVariant::kCholQr1:
      return "CholQR1";
    case QrVariant::kCholQr2:
      return "CholQR2";
    case QrVariant::kShiftedCholQr2:
      return "sCholQR2";
    case QrVariant::kTsqr:
      return "TSQR";
    case QrVariant::kHouseholder:
    default:
      return "HHQR";
  }
}

struct QrReport {
  QrVariant selected = QrVariant::kCholQr2;  // what the heuristic picked
  bool hhqr_fallback = false;                // POTRF failed, reverted to HHQR
};

struct QrOptions {
  /// Force Householder QR regardless of the estimate (the Table 2 baseline).
  bool force_householder = false;
  /// Force TSQR (ablation only: Section 3.2 argues CholeskyQR's allreduce
  /// beats TSQR's QR-reduction operator at scale; this switch lets the
  /// claim be tested).
  bool force_tsqr = false;
  /// Threshold below which one CholeskyQR pass suffices (Algorithm 4).
  double cholqr1_threshold = 20.0;
};

/// Orthonormalize the distributed tall matrix X in place, choosing the
/// variant per Algorithm 4. `map`/`comm` describe the 1D row distribution
/// (comm may be a self-communicator for the sequential build); `est_cond` is
/// the Algorithm 5 estimate for the current iteration.
template <typename T>
QrReport caqr_1d(la::MatrixView<T> x, const dist::IndexMap& map,
                 const comm::Communicator& comm, double est_cond,
                 const QrOptions& opts = {}) {
  perf::RegionScope scope(perf::Region::kQr);
  QrReport report;
  const Communicator* reduce = comm.size() > 1 ? &comm : nullptr;
  const double shift_threshold = 1.0 / std::sqrt(double(unit_roundoff<T>()));

  if (opts.force_householder) {
    report.selected = QrVariant::kHouseholder;
    hhqr_dist(x, map, comm);
    return report;
  }
  if (opts.force_tsqr) {
    report.selected = QrVariant::kTsqr;
    tsqr(x, comm);
    return report;
  }

  if (est_cond > shift_threshold) {
    report.selected = QrVariant::kShiftedCholQr2;
    if (shifted_cholqr_step(x, reduce, map.global_size()) != 0 ||
        cholqr(x, reduce, 2) != 0) {
      // Corner-case safety net (Algorithm 4 line 9).
      report.hhqr_fallback = true;
      hhqr_dist(x, map, comm);
    }
    return report;
  }

  const int reps = est_cond < opts.cholqr1_threshold ? 1 : 2;
  report.selected = reps == 1 ? QrVariant::kCholQr1 : QrVariant::kCholQr2;
  if (cholqr(x, reduce, reps) != 0) {
    report.hhqr_fallback = true;
    hhqr_dist(x, map, comm);
  }
  return report;
}

}  // namespace chase::qr
