// The QR variant selector of Algorithm 4 (1D-CAQR).
//
// Based on the estimated condition number of the filtered vectors:
//   est >  u^{-1/2} (~1e8 in double)  -> shifted CholeskyQR + CholeskyQR2,
//                                        with Householder QR as the fallback
//                                        if even the shifted POTRF fails;
//   est <  20                         -> a single CholeskyQR pass;
//   otherwise                         -> CholeskyQR2.
//
// A runtime POTRF breakdown escalates the initial pick one rung at a time —
// CholQR1/CholQR2 -> shifted CholQR2 -> HHQR — because a failed repetition
// leaves X untouched (trsm is never applied on failure), so each rung
// restarts from an intact X. Every escalation is observable: the report
// records the rung that actually produced Q and the breakdown count, and the
// thread tracker carries qr.potrf_breakdown / qr.hhqr_fallback /
// qr.variant.<name> counters.
#pragma once

#include "dist/index_map.hpp"
#include "qr/cholqr.hpp"
#include "qr/hhqr_dist.hpp"
#include "qr/tsqr.hpp"

namespace chase::qr {

enum class QrVariant : int {
  kCholQr1 = 0,
  kCholQr2,
  kShiftedCholQr2,
  kHouseholder,
  kTsqr,
};

inline std::string_view qr_variant_name(QrVariant v) {
  switch (v) {
    case QrVariant::kCholQr1:
      return "CholQR1";
    case QrVariant::kCholQr2:
      return "CholQR2";
    case QrVariant::kShiftedCholQr2:
      return "sCholQR2";
    case QrVariant::kTsqr:
      return "TSQR";
    case QrVariant::kHouseholder:
    default:
      return "HHQR";
  }
}

struct QrReport {
  QrVariant selected = QrVariant::kCholQr2;  // what the heuristic picked
  QrVariant used = QrVariant::kCholQr2;      // the rung that produced Q
  bool hhqr_fallback = false;                // POTRF failed, reverted to HHQR
  int potrf_failures = 0;                    // breakdowns along the ladder
  double est_cond = 0;  // the Algorithm 5 estimate the selection was based on
};

struct QrOptions {
  /// Force Householder QR regardless of the estimate (the Table 2 baseline).
  bool force_householder = false;
  /// Force TSQR (ablation only: Section 3.2 argues CholeskyQR's allreduce
  /// beats TSQR's QR-reduction operator at scale; this switch lets the
  /// claim be tested).
  bool force_tsqr = false;
  /// Threshold below which one CholeskyQR pass suffices (Algorithm 4).
  double cholqr1_threshold = 20.0;
};

/// Orthonormalize the distributed tall matrix X in place, choosing the
/// variant per Algorithm 4. `map`/`comm` describe the 1D row distribution
/// (comm may be a self-communicator for the sequential build); `est_cond` is
/// the Algorithm 5 estimate for the current iteration.
namespace detail {

inline void account_qr_report(const QrReport& report) {
  if (auto* t = perf::thread_tracker()) {
    t->bump(std::string("qr.variant.") +
            std::string(qr_variant_name(report.used)));
    if (report.potrf_failures > 0) {
      t->bump("qr.potrf_breakdown", report.potrf_failures);
    }
    if (report.hhqr_fallback) t->bump("qr.hhqr_fallback");
  }
}

}  // namespace detail

template <typename T>
QrReport caqr_1d(la::MatrixView<T> x, const dist::IndexMap& map,
                 const comm::Communicator& comm, double est_cond,
                 const QrOptions& opts = {}) {
  perf::RegionScope scope(perf::Region::kQr);
  QrReport report;
  report.est_cond = est_cond;
  const Communicator* reduce = comm.size() > 1 ? &comm : nullptr;
  const double shift_threshold = 1.0 / std::sqrt(double(unit_roundoff<T>()));

  if (opts.force_householder) {
    report.selected = report.used = QrVariant::kHouseholder;
    hhqr_dist(x, map, comm);
    detail::account_qr_report(report);
    return report;
  }
  if (opts.force_tsqr) {
    report.selected = report.used = QrVariant::kTsqr;
    tsqr(x, comm);
    detail::account_qr_report(report);
    return report;
  }

  if (est_cond > shift_threshold) {
    report.selected = QrVariant::kShiftedCholQr2;
  } else if (est_cond < opts.cholqr1_threshold) {
    report.selected = QrVariant::kCholQr1;
  } else {
    report.selected = QrVariant::kCholQr2;
  }

  // Escalation ladder (Algorithm 4 line 9 generalized to every rung): a
  // breakdown in a CholQR1/CholQR2 repetition escalates to the shifted
  // variant — its first repetition factors the *same* Gram matrix, so
  // retrying the unshifted rung could only fail again — and a breakdown in
  // the shifted variant falls back to Householder QR, which cannot break.
  QrVariant rung = report.selected;
  for (;;) {
    if (rung == QrVariant::kHouseholder) {
      report.hhqr_fallback = true;
      hhqr_dist(x, map, comm);
      break;
    }
    int info = 0;
    switch (rung) {
      case QrVariant::kCholQr1:
        info = cholqr(x, reduce, 1);
        break;
      case QrVariant::kCholQr2:
        info = cholqr(x, reduce, 2);
        break;
      case QrVariant::kShiftedCholQr2:
        info = shifted_cholqr_step(x, reduce, map.global_size());
        if (info == 0) info = cholqr(x, reduce, 2);
        break;
      default:
        break;
    }
    if (info == 0) break;
    ++report.potrf_failures;
    rung = rung == QrVariant::kShiftedCholQr2 ? QrVariant::kHouseholder
                                              : QrVariant::kShiftedCholQr2;
  }
  report.used = rung;
  detail::account_qr_report(report);
  return report;
}

}  // namespace chase::qr
