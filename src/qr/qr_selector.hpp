// The QR variant selector of Algorithm 4 (1D-CAQR).
//
// Based on the estimated condition number of the filtered vectors:
//   est >  u^{-1/2} (~1e8 in double)  -> shifted CholeskyQR + CholeskyQR2,
//                                        with Householder QR as the fallback
//                                        if even the shifted POTRF fails;
//   est <  20                         -> a single CholeskyQR pass;
//   otherwise                         -> CholeskyQR2.
//
// A runtime POTRF breakdown escalates the initial pick one rung at a time —
// CholQR1/CholQR2 -> shifted CholQR2 -> HHQR — because a failed repetition
// leaves X untouched (trsm is never applied on failure), so each rung
// restarts from an intact X. Every escalation is observable: the report
// records the rung that actually produced Q and the breakdown count, and the
// thread tracker carries qr.potrf_breakdown / qr.hhqr_fallback /
// qr.variant.<name> counters.
#pragma once

#include "dist/index_map.hpp"
#include "perf/machine.hpp"
#include "qr/cholqr.hpp"
#include "qr/hhqr_dist.hpp"
#include "qr/tsqr.hpp"

namespace chase::qr {

enum class QrVariant : int {
  kCholQr1 = 0,
  kCholQr2,
  kShiftedCholQr2,
  kHouseholder,
  kTsqr,
};

inline std::string_view qr_variant_name(QrVariant v) {
  switch (v) {
    case QrVariant::kCholQr1:
      return "CholQR1";
    case QrVariant::kCholQr2:
      return "CholQR2";
    case QrVariant::kShiftedCholQr2:
      return "sCholQR2";
    case QrVariant::kTsqr:
      return "TSQR";
    case QrVariant::kHouseholder:
    default:
      return "HHQR";
  }
}

struct QrReport {
  QrVariant selected = QrVariant::kCholQr2;  // what the heuristic picked
  QrVariant used = QrVariant::kCholQr2;      // the rung that produced Q
  bool hhqr_fallback = false;                // POTRF failed, reverted to HHQR
  int potrf_failures = 0;                    // breakdowns along the ladder
  double est_cond = 0;  // the Algorithm 5 estimate the selection was based on
  double modeled_seconds = 0;  // analytic cost of `selected`, priced with
                               // QrOptions::machine when set, else the
                               // process-global perf::selection_model()
};

struct QrOptions {
  /// Force Householder QR regardless of the estimate (the Table 2 baseline).
  bool force_householder = false;
  /// Force TSQR (ablation only: Section 3.2 argues CholeskyQR's allreduce
  /// beats TSQR's QR-reduction operator at scale; this switch lets the
  /// claim be tested).
  bool force_tsqr = false;
  /// Threshold below which one CholeskyQR pass suffices (Algorithm 4).
  double cholqr1_threshold = 20.0;
  /// Optional machine model: when set, caqr_1d prices the selected variant
  /// analytically (QrReport::modeled_seconds) using the model's calibrated
  /// factorization rate (MachineModel::calibrate_factor) — the hook the
  /// autotuner and EXPERIMENTS.md projections use to cost CholeskyQR from
  /// measured TRSM/HERK/POTRF throughput instead of an assumed GEMM peak.
  const perf::MachineModel* machine = nullptr;
};

/// Analytic per-call wall-clock of one QR variant on an m_global x n matrix
/// row-distributed over nranks (MPI collective pricing). Compute terms use
/// the model's per-class rates: the tall HERK/TRSM bulk of CholeskyQR at
/// factor_flops, the redundant POTRF at small_flops, Householder panel work
/// at panel_flops. Communication mirrors what the implementations actually
/// send: a packed n(n+1)/2 Gram triangle per CholeskyQR repetition versus
/// Householder QR's per-column message ladder.
inline double modeled_qr_seconds(const perf::MachineModel& m, QrVariant v,
                                 Index m_global, Index n, int nranks,
                                 bool complex_scalar,
                                 std::size_t scalar_bytes) {
  if (n <= 0) return 0;
  const double z = complex_scalar ? 4.0 : 1.0;
  const double nd = double(n);
  const double mloc = double(m_global) / double(nranks < 1 ? 1 : nranks);
  const std::size_t real_bytes = complex_scalar ? scalar_bytes / 2
                                                : scalar_bytes;
  // One CholeskyQR repetition: HERK + TRSM (2 m n^2), redundant POTRF
  // (n^3 / 3), one packed-triangle allreduce.
  const std::size_t tri_bytes =
      std::size_t(n) * std::size_t(n + 1) / 2 * scalar_bytes;
  const double rep = 2.0 * z * mloc * nd * nd / m.factor_flops +
                     z * nd * nd * nd / 3.0 / m.small_flops +
                     m.mpi_allreduce_seconds(tri_bytes, nranks);
  switch (v) {
    case QrVariant::kCholQr1:
      return rep;
    case QrVariant::kCholQr2:
      return 2.0 * rep;
    case QrVariant::kShiftedCholQr2:
      // Shifted pass (same shape plus the Frobenius-norm allreduce) followed
      // by CholeskyQR2.
      return 3.0 * rep + m.mpi_allreduce_seconds(real_bytes, nranks);
    case QrVariant::kTsqr: {
      const double p = double(nranks < 1 ? 1 : nranks);
      double t = 4.0 * z * mloc * nd * nd / m.panel_flops +
                 4.0 * z * p * nd * nd * nd / m.small_flops;
      if (nranks > 1) {
        t += m.mpi_allgather_seconds(
            std::size_t(nranks) * std::size_t(n) * std::size_t(n) *
                scalar_bytes,
            nranks);
      }
      return t;
    }
    case QrVariant::kHouseholder:
    default: {
      double t = 4.0 * z * mloc * nd * nd / m.panel_flops;
      if (nranks > 1) {
        for (Index k = 0; k < n; ++k) {
          t += m.mpi_allreduce_seconds(real_bytes, nranks);
          t += m.mpi_broadcast_seconds(scalar_bytes, nranks);
          if (k + 1 < n) {
            t += m.mpi_allreduce_seconds(
                std::size_t(n - k - 1) * scalar_bytes, nranks);
          }
          t += m.mpi_allreduce_seconds(std::size_t(n - k) * scalar_bytes,
                                       nranks);
        }
      }
      return t;
    }
  }
}

/// Orthonormalize the distributed tall matrix X in place, choosing the
/// variant per Algorithm 4. `map`/`comm` describe the 1D row distribution
/// (comm may be a self-communicator for the sequential build); `est_cond` is
/// the Algorithm 5 estimate for the current iteration.
namespace detail {

inline void account_qr_report(const QrReport& report) {
  if (auto* t = perf::thread_tracker()) {
    t->bump(std::string("qr.variant.") +
            std::string(qr_variant_name(report.used)));
    if (report.potrf_failures > 0) {
      t->bump("qr.potrf_breakdown", report.potrf_failures);
    }
    if (report.hhqr_fallback) t->bump("qr.hhqr_fallback");
  }
}

}  // namespace detail

template <typename T>
QrReport caqr_1d(la::MatrixView<T> x, const dist::IndexMap& map,
                 const comm::Communicator& comm, double est_cond,
                 const QrOptions& opts = {}) {
  perf::RegionScope scope(perf::Region::kQr);
  QrReport report;
  report.est_cond = est_cond;
  const Communicator* reduce = comm.size() > 1 ? &comm : nullptr;
  const double shift_threshold = 1.0 / std::sqrt(double(unit_roundoff<T>()));
  const auto price_selected = [&](QrVariant v) {
    // Explicit QrOptions::machine wins; otherwise price with the
    // process-global selection model, which a loaded machine profile
    // recalibrates (tune::install_profile).
    const perf::MachineModel model =
        opts.machine != nullptr ? *opts.machine : perf::selection_model();
    report.modeled_seconds =
        modeled_qr_seconds(model, v, map.global_size(), x.cols(),
                           comm.size(), kIsComplex<T>, sizeof(T));
  };

  if (opts.force_householder) {
    report.selected = report.used = QrVariant::kHouseholder;
    price_selected(report.selected);
    hhqr_dist(x, map, comm);
    detail::account_qr_report(report);
    return report;
  }
  if (opts.force_tsqr) {
    report.selected = report.used = QrVariant::kTsqr;
    price_selected(report.selected);
    tsqr(x, comm);
    detail::account_qr_report(report);
    return report;
  }

  if (est_cond > shift_threshold) {
    report.selected = QrVariant::kShiftedCholQr2;
  } else if (est_cond < opts.cholqr1_threshold) {
    report.selected = QrVariant::kCholQr1;
  } else {
    report.selected = QrVariant::kCholQr2;
  }
  price_selected(report.selected);

  // Escalation ladder (Algorithm 4 line 9 generalized to every rung): a
  // breakdown in a CholQR1/CholQR2 repetition escalates to the shifted
  // variant — its first repetition factors the *same* Gram matrix, so
  // retrying the unshifted rung could only fail again — and a breakdown in
  // the shifted variant falls back to Householder QR, which cannot break.
  QrVariant rung = report.selected;
  for (;;) {
    if (rung == QrVariant::kHouseholder) {
      report.hhqr_fallback = true;
      hhqr_dist(x, map, comm);
      break;
    }
    int info = 0;
    switch (rung) {
      case QrVariant::kCholQr1:
        info = cholqr(x, reduce, 1);
        break;
      case QrVariant::kCholQr2:
        info = cholqr(x, reduce, 2);
        break;
      case QrVariant::kShiftedCholQr2:
        info = shifted_cholqr_step(x, reduce, map.global_size());
        if (info == 0) info = cholqr(x, reduce, 2);
        break;
      default:
        break;
    }
    if (info == 0) break;
    ++report.potrf_failures;
    rung = rung == QrVariant::kShiftedCholQr2 ? QrVariant::kHouseholder
                                              : QrVariant::kShiftedCholQr2;
  }
  report.used = rung;
  detail::account_qr_report(report);
  return report;
}

}  // namespace chase::qr
