// Condition-number estimation for the filtered vectors (Algorithm 5).
//
// The Chebyshev filter amplifies the component along eigenvector i by
// roughly |rho(t_i)|^deg with t_i = (lambda_i - c)/e the eigenvalue mapped
// onto the filter's reference interval and rho(t) = max |t -+ sqrt(t^2 - 1)|
// the Chebyshev growth factor (|rho| = 1 inside [-1, 1], > 1 outside). The
// ratio between the amplification of the most extremal Ritz value (Lambda[0])
// and the first unconverged one (Lambda[locked]) therefore bounds kappa_2 of
// the filtered block — the cost-free estimate the paper uses to pick a
// CholeskyQR variant (the derivation is referenced as an upcoming
// manuscript; Algorithm 5 is implemented as printed).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/scalar.hpp"

namespace chase::qr {

/// Chebyshev growth factor |rho(t)|: 1 inside [-1, 1], |t| + sqrt(t^2-1)
/// outside.
template <typename R>
R chebyshev_growth(R t) {
  const R t2 = t * t;
  if (t2 <= R(1)) return R(1);
  const R root = std::sqrt(t2 - R(1));
  return std::max(std::abs(std::abs(t) - root), std::abs(std::abs(t) + root));
}

/// Algorithm 5: estimate kappa_2 of the filtered matrix of vectors.
///
/// `ritz`    — current Ritz values, ascending (Lambda of Algorithm 2);
/// `c`, `e`  — center and half-width of the damped interval;
/// `degs`    — per-vector filter degrees (same indexing as ritz);
/// `locked`  — number of locked (converged) leading vectors.
template <typename R>
R estimate_filtered_cond(const std::vector<R>& ritz, R c, R e,
                         const std::vector<int>& degs, int locked) {
  CHASE_CHECK(!ritz.empty() && ritz.size() == degs.size());
  CHASE_CHECK(locked >= 0 && std::size_t(locked) < ritz.size());
  CHASE_CHECK(e > R(0));

  const R tp = (ritz.front() - c) / e;          // most extremal Ritz value
  const R t = (ritz[std::size_t(locked)] - c) / e;  // first unconverged
  const R rho = chebyshev_growth(t);
  const R rho_p = chebyshev_growth(tp);

  const int d = degs[std::size_t(locked)];
  int d_max = d;
  for (std::size_t i = std::size_t(locked); i < degs.size(); ++i) {
    d_max = std::max(d_max, degs[i]);
  }
  // cond = |rho|^d * |rho'|^(d_M - d); guard against overflow for very high
  // degrees by capping at the largest finite value.
  const R log_cond =
      R(d) * std::log(rho) + R(d_max - d) * std::log(rho_p);
  if (log_cond > std::log(std::numeric_limits<R>::max()) - R(2)) {
    return std::numeric_limits<R>::max();
  }
  return std::exp(log_cond);
}

}  // namespace chase::qr
