// Wall-clock parity of the layered solver engine against the frozen seed
// drivers (bench/seed_driver.hpp), plus the zero-allocation evidence.
//
// The layered refactor (DLA backend + staged pipeline + workspace arena)
// must not tax the hot path: the staged solve has to stay within a few
// percent of the monolith it replaced, for both the v1.4 scheme and the
// legacy LMS scheme. Each case runs best-of-N on the same matrix and team,
// and records the steady-state allocation counters the workspace maintains
// ("workspace.steady_growth" must be zero, and every iteration's
// workspace_allocs must be zero). Results land in
// results/bench_engine.json for scripts/compare_bench.py to gate.
//
// Also prints the per-stage timing table (perf/stage_report.hpp) of one
// instrumented staged run — the paper's time-per-stage view.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/seed_driver.hpp"
#include "perf/stage_report.hpp"

namespace {

using namespace chase;
using core::ChaseConfig;
using la::Index;

struct Case {
  std::string scheme;  // "v1.4" | "lms"
  std::string grid;    // "1x1", "2x2", ...
  Index n = 0;
  int iterations = 0;
  double staged_seconds = 0;
  double seed_seconds = 0;
  double ratio = 0;  // staged / seed, best-of-N over best-of-N
  double steady_growth = 0;
  long workspace_allocs = 0;  // summed over all recorded iterations
};

/// Best-of-N wall time of one full solve on a fresh operator each repeat
/// (the filter restores its diagonal shifts, but independence is cheaper
/// than an argument). Returns rank-0 time; the ranks run in lock step.
template <typename T, typename Solver>
double best_of(int reps, comm::Communicator& world, Solver&& run_once) {
  double best = 1e99;
  for (int r = 0; r < reps; ++r) {
    world.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    run_once();
    world.barrier();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < best) best = s;
  }
  return best;
}

template <typename T>
Case run_case(const std::string& scheme, int nprow, int npcol, Index n,
              const ChaseConfig& cfg, int reps) {
  auto h = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 7), 7);

  Case out;
  out.scheme = scheme;
  out.grid = std::to_string(nprow) + "x" + std::to_string(npcol);
  out.n = n;
  const bool lms = scheme == "lms";

  std::vector<perf::Tracker> trackers(std::size_t(nprow) * std::size_t(npcol));
  comm::Team team(nprow * npcol);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, nprow, npcol);
        auto rmap = dist::IndexMap::block(n, nprow);
        auto cmap = dist::IndexMap::block(n, npcol);
        dist::DistHermitianMatrix<T> hd(grid, rmap, cmap);
        hd.fill_from_global(h.cview());

        // One instrumented staged run for the allocation evidence.
        auto probe = lms ? core::solve_lms(hd, cfg) : core::solve(hd, cfg);
        long allocs = 0;
        for (const auto& s : probe.stats) allocs += s.workspace_allocs;

        const double staged = best_of<T>(reps, world, [&] {
          auto r = lms ? core::solve_lms(hd, cfg) : core::solve(hd, cfg);
          (void)r;
        });
        const double seed = best_of<T>(reps, world, [&] {
          auto r =
              lms ? seeddrv::solve_lms(hd, cfg) : seeddrv::solve(hd, cfg);
          (void)r;
        });
        if (world.rank() == 0) {
          out.iterations = probe.iterations;
          out.workspace_allocs = allocs;
          out.staged_seconds = staged;
          out.seed_seconds = seed;
          out.ratio = staged / seed;
        }
      },
      &trackers);
  for (const auto& t : trackers) {
    out.steady_growth += t.counter("workspace.steady_growth");
  }
  return out;
}

void print_stage_table(Index n, const ChaseConfig& cfg) {
  using T = std::complex<double>;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 7), 7);
  std::vector<perf::Tracker> trackers(4);
  comm::Team team(4);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, 2, 2);
        auto map = dist::IndexMap::block(n, 2);
        dist::DistHermitianMatrix<T> hd(grid, map, map);
        hd.fill_from_global(h.cview());
        core::solve(hd, cfg);
      },
      &trackers);
  std::printf("\nPer-stage wall clock, v1.4 staged solve on 2x2 "
              "(complex<double>, n=%ld, rank 0):\n%s",
              long(n), perf::format_stage_table(trackers[0]).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode();
  const std::string out_path =
      argc > 1 ? argv[1] : "results/bench_engine.json";

  const Index n = quick ? 96 : 256;
  // Quick-mode solves are tiny (~tens of ms), so extra repetitions are
  // cheap — and needed: best-of-2 jitter at that scale exceeds the 5%
  // parity budget compare_bench.py enforces.
  const int reps = quick ? 8 : 5;
  ChaseConfig cfg;
  cfg.nev = quick ? 8 : 24;
  cfg.nex = quick ? 6 : 12;
  cfg.tol = 1e-10;

  std::printf("Staged engine vs seed-driver parity "
              "(best of %d, n=%ld, nev=%ld, nex=%ld)\n\n",
              reps, long(n), long(cfg.nev), long(cfg.nex));
  std::printf("%-6s %-5s %5s %6s %12s %12s %8s %8s %8s\n", "scheme", "grid",
              "n", "iters", "staged (s)", "seed (s)", "ratio", "growth",
              "allocs");

  std::vector<Case> cases;
  cases.push_back(run_case<double>("v1.4", 1, 1, n, cfg, reps));
  cases.push_back(run_case<double>("v1.4", 2, 2, n, cfg, reps));
  cases.push_back(
      run_case<std::complex<double>>("v1.4", 2, 2, n, cfg, reps));
  cases.push_back(run_case<double>("lms", 2, 2, n, cfg, reps));
  cases.push_back(run_case<std::complex<double>>("lms", 2, 2, n, cfg, reps));

  for (const auto& c : cases) {
    std::printf("%-6s %-5s %5ld %6d %12.4f %12.4f %8.3f %8.0f %8ld\n",
                c.scheme.c_str(), c.grid.c_str(), long(c.n), c.iterations,
                c.staged_seconds, c.seed_seconds, c.ratio, c.steady_growth,
                c.workspace_allocs);
  }

  print_stage_table(n, cfg);

  std::filesystem::create_directories(
      std::filesystem::path(out_path).parent_path());
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n \"cases\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    std::fprintf(f,
                 "  {\"scheme\": \"%s\", \"grid\": \"%s\", \"n\": %ld, "
                 "\"iterations\": %d, \"staged_seconds\": %.6f, "
                 "\"seed_seconds\": %.6f, \"ratio\": %.4f, "
                 "\"steady_growth\": %.0f, \"workspace_allocs\": %ld}%s\n",
                 c.scheme.c_str(), c.grid.c_str(), long(c.n), c.iterations,
                 c.staged_seconds, c.seed_seconds, c.ratio, c.steady_growth,
                 c.workspace_allocs, i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, " ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
