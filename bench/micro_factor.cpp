// Microbenchmark of the CHASE_FACTOR_KERNEL policy engine (src/la/factor/):
// naive (seed scalar) vs blocked (panel + GEMM lowering) rates for the four
// factorization families — TRSM, POTRF, HERK, HETRD — over the sizes where
// the solver actually runs them, plus the end-to-end effect on the two
// consumers: a CholeskyQR2 orthonormalization and the Rayleigh-Ritz HEEVD.
//
// Writes results/bench_factor.json (first argument overrides the path);
// scripts/compare_bench.py enforces the engine's requirements: blocked must
// reach >= 2x naive on TRSM/POTRF/HERK at n=1024 for double and
// complex<double>, and the end-to-end consumers must not regress under the
// blocked policy.
#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm.hpp"
#include "la/heevd.hpp"
#include "la/potrf.hpp"
#include "la/trsm.hpp"
#include "qr/cholqr.hpp"

namespace {

using namespace chase;
using la::Index;

template <typename T>
la::Matrix<T> random_mat(Index m, Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix<T> a(m, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) a(i, j) = rng.gaussian<T>();
  }
  return a;
}

template <typename T>
la::Matrix<T> random_herm(Index n, std::uint64_t seed) {
  auto g = random_mat<T>(n, n, seed);
  la::Matrix<T> h(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      h(i, j) = (g(i, j) + conjugate(g(j, i))) / RealType<T>(2);
    }
  }
  return h;
}

/// Well-conditioned positive definite matrix (Gram + diagonal boost), built
/// with the micro GEMM so setup stays cheap at n=1024.
template <typename T>
la::Matrix<T> random_posdef(Index n, std::uint64_t seed) {
  auto x = random_mat<T>(n + 16, n, seed);
  la::Matrix<T> g(n, n);
  la::gemm(T(1), la::Op::kConjTrans, x.cview(), la::Op::kNoTrans, x.cview(),
           T(0), g.view());
  for (Index j = 0; j < n; ++j) g(j, j) += T(RealType<T>(n));
  return g;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` seconds of one thunk (host noise is one-sided).
template <typename F>
double best_seconds(int reps, F&& run) {
  double best = 1e99;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    run();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

struct FactorRow {
  const char* op;
  const char* kernel;
  const char* type;
  Index n;
  double seconds;
  double gflops;
};

struct EndToEndRow {
  const char* name;
  const char* type;
  Index m;
  Index n;
  double naive_seconds;
  double blocked_seconds;
  double ratio;  // blocked / naive
};

constexpr la::FactorKernel kPolicies[] = {la::FactorKernel::kNaive,
                                          la::FactorKernel::kBlocked};

int reps_for(la::FactorKernel kern, Index n) {
  // The naive paths run seconds-per-call at n=1024; one repetition is plenty
  // at that duration, while the blocked kernels take best-of-5.
  if (kern == la::FactorKernel::kNaive) return n >= 1024 ? 1 : 2;
  return 5;
}

template <typename T>
void sweep_factor(const char* type_name, const std::vector<Index>& ns,
                  const std::vector<Index>& hetrd_ns,
                  std::vector<FactorRow>& out) {
  const double z = kIsComplex<T> ? 4.0 : 1.0;
  auto record = [&](const char* op, la::FactorKernel kern, Index n,
                    double flops, double secs) {
    out.push_back({op, la::factor_kernel_name(kern).data(), type_name, n,
                   secs, flops / secs / 1e9});
    std::printf("  %-6s %-7s %-15s n=%-5lld %10.4fs %9.2f Gflop/s\n", op,
                la::factor_kernel_name(kern).data(), type_name, (long long)n,
                secs, flops / secs / 1e9);
  };

  for (Index n : ns) {
    // TRSM: solve X R^{-1} with an n x n rhs block (the CholeskyQR shape).
    {
      auto r = random_posdef<T>(n, 1);
      {
        la::ScopedFactorKernel scoped(la::FactorKernel::kBlocked);
        la::potrf_upper(r.view());
      }
      auto x = random_mat<T>(n, n, 2);
      const double flops = z * double(n) * double(n) * double(n);
      for (la::FactorKernel kern : kPolicies) {
        la::ScopedFactorKernel scoped(kern);
        const double s = best_seconds(reps_for(kern, n), [&] {
          auto work = la::clone(x.cview());
          la::trsm_right_upper(r.view().as_const(), work.view());
        });
        record("trsm", kern, n, flops, s);
      }
    }
    // POTRF.
    {
      auto a = random_posdef<T>(n, 3);
      const double flops = z * double(n) * double(n) * double(n) / 3.0;
      for (la::FactorKernel kern : kPolicies) {
        la::ScopedFactorKernel scoped(kern);
        const double s = best_seconds(reps_for(kern, n), [&] {
          auto work = la::clone(a.cview());
          const int info = la::potrf_upper(work.view());
          if (info != 0) std::abort();
        });
        record("potrf", kern, n, flops, s);
      }
    }
    // HERK: upper-triangle Gram of an n x n block.
    {
      auto x = random_mat<T>(n, n, 4);
      la::Matrix<T> c(n, n);
      const double flops = z * double(n) * double(n) * double(n);
      for (la::FactorKernel kern : kPolicies) {
        la::ScopedFactorKernel scoped(kern);
        const double s = best_seconds(reps_for(kern, n), [&] {
          la::herk_upper(T(1), x.cview(), T(0), c.view());
        });
        record("herk", kern, n, flops, s);
      }
    }
  }

  for (Index n : hetrd_ns) {
    auto a = random_herm<T>(n, 5);
    std::vector<RealType<T>> d, e;
    la::Matrix<T> q(n, n);
    const double flops = z * 8.0 / 3.0 * double(n) * double(n) * double(n);
    for (la::FactorKernel kern : kPolicies) {
      la::ScopedFactorKernel scoped(kern);
      const double s = best_seconds(reps_for(kern, n), [&] {
        auto work = la::clone(a.cview());
        la::hetrd_lower(work.view(), d, e, q.view());
      });
      record("hetrd", kern, n, flops, s);
    }
  }
}

template <typename T>
void end_to_end(const char* type_name, Index m, Index n, Index rr_n,
                int reps, std::vector<EndToEndRow>& out) {
  auto print_row = [&](const EndToEndRow& r) {
    std::printf("  %-9s %-15s m=%-6lld n=%-5lld naive %8.4fs  blocked "
                "%8.4fs  ratio %.3f\n",
                r.name, r.type, (long long)r.m, (long long)r.n,
                r.naive_seconds, r.blocked_seconds, r.ratio);
  };
  // CholeskyQR2 on a tall block — HERK + POTRF + TRSM end to end.
  {
    auto x = random_mat<T>(m, n, 6);
    double secs[2] = {0, 0};
    for (int p = 0; p < 2; ++p) {
      la::ScopedFactorKernel scoped(kPolicies[p]);
      secs[p] = best_seconds(reps, [&] {
        auto work = la::clone(x.cview());
        const int info = qr::cholqr(work.view(), nullptr, 2);
        if (info != 0) std::abort();
      });
    }
    out.push_back({"cholqr2", type_name, m, n, secs[0], secs[1],
                   secs[1] / secs[0]});
    print_row(out.back());
  }
  // Rayleigh-Ritz HEEVD on the subspace quotient — HETRD dominates.
  {
    auto a = random_herm<T>(rr_n, 7);
    std::vector<RealType<T>> w;
    la::Matrix<T> zv(rr_n, rr_n);
    double secs[2] = {0, 0};
    for (int p = 0; p < 2; ++p) {
      la::ScopedFactorKernel scoped(kPolicies[p]);
      secs[p] = best_seconds(reps, [&] {
        auto work = la::clone(a.cview());
        la::heevd(work.view(), w, zv.view());
      });
    }
    out.push_back({"rr_heevd", type_name, rr_n, rr_n, secs[0], secs[1],
                   secs[1] / secs[0]});
    print_row(out.back());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode();
  const char* path = argc > 1 ? argv[1] : "results/bench_factor.json";

  const std::vector<Index> ns =
      quick ? std::vector<Index>{64, 128} : std::vector<Index>{256, 512, 1024};
  // Naive HETRD is BLAS-2 bound and runs minutes at n=1024; the solver only
  // ever tridiagonalizes subspace-sized matrices, so the sweep stops at 512.
  const std::vector<Index> hetrd_ns =
      quick ? std::vector<Index>{64} : std::vector<Index>{256, 512};

  std::printf("factorization policy sweep (writes %s)\n", path);
  std::vector<FactorRow> rows;
  sweep_factor<double>("double", ns, hetrd_ns, rows);
  sweep_factor<std::complex<double>>("complex<double>", ns, hetrd_ns, rows);

  std::printf("end-to-end consumers (naive vs blocked policy)\n");
  std::vector<EndToEndRow> e2e;
  if (quick) {
    end_to_end<double>("double", 512, 64, 96, 3, e2e);
    end_to_end<std::complex<double>>("complex<double>", 512, 64, 96, 3, e2e);
  } else {
    end_to_end<double>("double", 4096, 256, 512, 3, e2e);
    end_to_end<std::complex<double>>("complex<double>", 4096, 256, 512, 3,
                                     e2e);
  }

  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"factor\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"kernel\": \"%s\", \"type\": \"%s\", "
                 "\"n\": %lld, \"seconds\": %.6f, \"gflops\": %.3f}%s\n",
                 r.op, r.kernel, r.type, (long long)r.n, r.seconds, r.gflops,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"end_to_end\": [\n");
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const auto& r = e2e[i];
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"type\": \"%s\", \"m\": %lld, "
                 "\"n\": %lld, \"naive_seconds\": %.6f, "
                 "\"blocked_seconds\": %.6f, \"ratio\": %.4f}%s\n",
                 r.name, r.type, (long long)r.m, (long long)r.n,
                 r.naive_seconds, r.blocked_seconds, r.ratio,
                 i + 1 < e2e.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}
