// Hierarchical-collective and persistent-plan acceptance bench.
//
// Runs on the emulated 2-node x 4-rank topology (CHASE_TOPO-style override):
// the slow inter-node link is a calibrated delay charged per cross-node
// chunk transfer, so the flat ring pays for dragging the full payload across
// the boundary twice while the two-level routine crosses once per direction.
// Measures and gates, via results/bench_hierarchy.json:
//
//   hierarchy_speedup     — flat ring vs hierarchical allreduce wall time on
//                           the slow-inter topology (gate: >= 1.3x)
//   plan_replay_speedup   — per-call dispatch (selection + algorithm
//                           construction every iteration) vs CollPlan replay
//                           of the identical collective (gate: >= 1.1x)
//   bitwise_identical     — hierarchical allreduce/broadcast/allgather
//                           against the naive reference, byte for byte
//   auto_matches_model    — CHASE_COLL_ALGO=auto picks a hierarchical
//                           routine exactly when the per-link cost model
//                           prices it cheapest
#include <chrono>
#include <complex>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <vector>

#include "coll/engine.hpp"
#include "comm/communicator.hpp"
#include "coll/plan.hpp"
#include "comm/topology.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"
#include "tune/measure.hpp"

namespace {

using chase::comm::Communicator;
using chase::comm::Reduction;
using chase::comm::ScopedTopology;
using chase::comm::Team;
using chase::la::Index;

constexpr int kNodes = 2;
constexpr int kPerNode = 4;
constexpr int kRanks = kNodes * kPerNode;

double seeded(int rank, Index i) {
  // Deterministic, rank- and index-dependent values with non-trivial
  // mantissas so summation order shows up bitwise.
  return 1.0 + double((rank * 131 + int(i % 977)) % 1009) / 1009.0;
}

/// Seconds per allreduce under the current policy/topology: best of several
/// passes (scheduler noise on an oversubscribed host can double a single
/// pass, and the emulated link delay we are measuring is deterministic).
double time_allreduce(std::size_t bytes, int iters) {
  constexpr int kPasses = 3;
  const Index count = Index(bytes / sizeof(double));
  double per_op = 0;
  Team team(kRanks);
  team.run([&](Communicator& comm) {
    std::vector<double> x(static_cast<std::size_t>(count));
    for (Index i = 0; i < count; ++i) x[std::size_t(i)] = seeded(comm.rank(), i);
    // One barrier-bracketed pass of `iters` ops is the measured unit; the
    // shared tune::measure harness keeps the best of kPasses (one warmup op
    // folded into the warmup run).
    const chase::tune::Measurement m =
        chase::tune::measure(/*warmup=*/1, kPasses, [&] {
          comm.barrier();
          for (int it = 0; it < iters; ++it) {
            comm.all_reduce(x.data(), count, Reduction::kMin);
          }
          comm.barrier();
        });
    if (comm.rank() == 0) per_op = m.best;
  });
  return per_op / iters;
}

/// Per-call dispatch vs plan replay of one filter-iteration's collective
/// pair (allreduce of the residual block + broadcast of the ritz block);
/// returns {percall_seconds, replay_seconds} per iteration. The two loops
/// alternate over several passes and each approach keeps its fastest pass —
/// scheduler noise on an oversubscribed host otherwise swamps the planning
/// cost being measured.
std::pair<double, double> time_plan_replay(std::size_t bytes, int iters) {
  constexpr int kPasses = 9;
  const Index count = Index(bytes / sizeof(double));
  double percall = std::numeric_limits<double>::infinity();
  double replay = std::numeric_limits<double>::infinity();
  Team team(kRanks);
  team.run([&](Communicator& comm) {
    std::vector<double> x(static_cast<std::size_t>(count));
    std::vector<double> b(static_cast<std::size_t>(count));
    for (Index i = 0; i < count; ++i) {
      x[std::size_t(i)] = seeded(comm.rank(), i);
      b[std::size_t(i)] = seeded(comm.rank(), i + 1);
    }

    chase::coll::CollPlan plan;
    plan.add_all_reduce(comm, x.data(), count, Reduction::kMin);
    plan.add_broadcast(comm, b.data(), count, /*root=*/0);

    comm.all_reduce(x.data(), count, Reduction::kMin);  // warmup
    comm.broadcast(b.data(), count, /*root=*/0);        // warmup
    plan.execute();                                     // warmup
    // The two approaches alternate pass by pass (scheduler noise hits both
    // sides equally); each keeps its fastest barrier-bracketed pass via the
    // shared tune::measure harness.
    for (int pass = 0; pass < kPasses; ++pass) {
      const chase::tune::Measurement mp =
          chase::tune::measure(/*warmup=*/0, 1, [&] {
            comm.barrier();
            for (int it = 0; it < iters; ++it) {
              comm.all_reduce(x.data(), count, Reduction::kMin);
              comm.broadcast(b.data(), count, /*root=*/0);
            }
            comm.barrier();
          });
      if (comm.rank() == 0) percall = std::min(percall, mp.best);

      const chase::tune::Measurement mr =
          chase::tune::measure(/*warmup=*/0, 1, [&] {
            comm.barrier();
            for (int it = 0; it < iters; ++it) plan.execute();
            comm.barrier();
          });
      if (comm.rank() == 0) replay = std::min(replay, mr.best);
    }
  });
  return {percall / iters, replay / iters};
}

/// Bitwise comparison of every hierarchical routine against the naive
/// reference on the grouped topology, for T in {double, complex<double>}.
template <typename T>
bool bitwise_vs_naive(Index count) {
  bool ok = true;
  // Naive reference streams, computed first.
  std::vector<std::vector<T>> ref_reduce(kRanks), ref_bcast(kRanks),
      ref_gather(kRanks);
  for (int pass = 0; pass < 2; ++pass) {
    chase::coll::ScopedAlgorithm policy(pass == 0
                                            ? chase::coll::Algorithm::kNaive
                                            : chase::coll::Algorithm::kHier);
    Team team(kRanks);
    team.run([&](Communicator& comm) {
      const int r = comm.rank();
      std::vector<T> x(static_cast<std::size_t>(count));
      for (Index i = 0; i < count; ++i) {
        x[std::size_t(i)] = T(seeded(r, i));
      }
      comm.all_reduce(x.data(), count);
      std::vector<T> b(static_cast<std::size_t>(count), T(seeded(r, 7)));
      comm.broadcast(b.data(), count, /*root=*/2);
      std::vector<T> g(static_cast<std::size_t>(count) * kRanks);
      std::vector<T> mine(static_cast<std::size_t>(count), T(seeded(r, 3)));
      comm.all_gather(mine.data(), count, g.data());
      if (pass == 0) {
        ref_reduce[std::size_t(r)] = x;
        ref_bcast[std::size_t(r)] = b;
        ref_gather[std::size_t(r)] = g;
      } else {
        const bool same =
            std::memcmp(x.data(), ref_reduce[std::size_t(r)].data(),
                        x.size() * sizeof(T)) == 0 &&
            std::memcmp(b.data(), ref_bcast[std::size_t(r)].data(),
                        b.size() * sizeof(T)) == 0 &&
            std::memcmp(g.data(), ref_gather[std::size_t(r)].data(),
                        g.size() * sizeof(T)) == 0;
        if (!same) ok = false;
      }
    });
  }
  return ok;
}

/// auto's pick agrees with the per-link cost model across payload decades.
bool auto_matches_model(const chase::perf::TopoInfo& topo) {
  using chase::coll::Routine;
  using chase::perf::CollAlgo;
  chase::coll::ScopedAlgorithm policy(chase::coll::Algorithm::kAuto);
  const chase::perf::MachineModel m;
  const auto backend = chase::perf::Backend::kHostMpi;
  const std::size_t chunk = chase::coll::chunk_bytes();
  bool ok = true;
  for (std::size_t bytes = 1 << 10; bytes <= (std::size_t(16) << 20);
       bytes <<= 2) {
    const double hier = chase::perf::coll_algo_seconds(
        m, backend, chase::perf::CollKind::kAllReduce, CollAlgo::kHierAlgo,
        bytes, kRanks, chunk, topo);
    double flat = std::numeric_limits<double>::infinity();
    for (const CollAlgo a : {CollAlgo::kNaiveAlgo, CollAlgo::kRingAlgo,
                             CollAlgo::kRabenseifner}) {
      flat = std::min(flat, chase::perf::coll_algo_seconds(
                                m, backend, chase::perf::CollKind::kAllReduce,
                                a, bytes, kRanks, chunk, topo));
    }
    const Routine chosen =
        chase::coll::select(chase::perf::CollKind::kAllReduce, bytes, kRanks,
                            backend, topo);
    const bool model_says_hier = hier < flat;
    if (chase::coll::is_hierarchical(chosen) != model_says_hier) {
      std::printf("  auto mismatch at %zu bytes: model says %s, auto picked "
                  "%s\n",
                  bytes, model_says_hier ? "hier" : "flat",
                  std::string(chase::coll::routine_name(chosen)).c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  const char* emulated_spec = "2x4@inter_mbps=150@inter_us=120";
  const chase::comm::Topology emulated =
      chase::comm::parse_topology("CHASE_TOPO", emulated_spec);
  const chase::comm::Topology grouped =
      chase::comm::parse_topology("CHASE_TOPO", "2x4");

  std::printf("Hierarchical collectives on the emulated %d-node x %d-rank "
              "topology (%s)\n\n",
              kNodes, kPerNode, emulated_spec);

  // ---- bitwise agreement (grouping without link delays: fast) ----
  bool bitwise;
  {
    ScopedTopology topo(grouped);
    bitwise = bitwise_vs_naive<double>(1024) &&
              bitwise_vs_naive<std::complex<double>>(512);
  }
  std::printf("bitwise hier vs naive (allreduce/broadcast/allgather, "
              "double + complex): %s\n",
              bitwise ? "identical" : "MISMATCH");

  // ---- hierarchy vs flat ring under the slow inter link ----
  const std::size_t hier_bytes = std::size_t(512) << 10;
  double ring_sec, hier_sec;
  {
    ScopedTopology topo(emulated);
    {
      chase::coll::ScopedAlgorithm policy(chase::coll::Algorithm::kRing);
      ring_sec = time_allreduce(hier_bytes, 6);
    }
    {
      chase::coll::ScopedAlgorithm policy(chase::coll::Algorithm::kHier);
      hier_sec = time_allreduce(hier_bytes, 6);
    }
  }
  const double hierarchy_speedup = ring_sec / hier_sec;
  std::printf("allreduce %zu KiB x %d ranks: flat ring %.3f ms, hier %.3f "
              "ms -> %.2fx\n",
              hier_bytes >> 10, kRanks, ring_sec * 1e3, hier_sec * 1e3,
              hierarchy_speedup);

  // ---- plan replay vs per-call dispatch (grouping, no delay emulation,
  // so the saved planning work is what's measured). Pinned to the
  // hierarchical routine: that is the planned path in the filter loop, and
  // its per-call cost (group lookup, phase table, scratch allocation) is
  // exactly what a plan amortises. Auto would pick naive at this payload and
  // the comparison would measure nothing.
  double percall_sec, replay_sec;
  {
    ScopedTopology topo(grouped);
    chase::coll::ScopedAlgorithm policy(chase::coll::Algorithm::kHier);
    std::tie(percall_sec, replay_sec) =
        time_plan_replay(std::size_t(2) << 10, 400);
  }
  const double plan_replay_speedup = percall_sec / replay_sec;
  std::printf("plan replay, 2 KiB allreduce+broadcast: per-call %.1f us, "
              "replay %.1f us -> %.2fx\n",
              percall_sec * 1e6, replay_sec * 1e6, plan_replay_speedup);

  // ---- auto vs the per-link cost model ----
  const auto topo_info = chase::comm::topo_info_of(
      chase::comm::node_assignment(emulated, kRanks), emulated.inter_bw,
      emulated.inter_latency);
  const bool auto_ok = auto_matches_model(topo_info);
  std::printf("auto selection matches per-link cost model: %s\n",
              auto_ok ? "yes" : "NO");

  std::filesystem::create_directories("results");
  std::FILE* f = std::fopen("results/bench_hierarchy.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open results/bench_hierarchy.json\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"topology\": \"%s\",\n"
      "  \"ranks\": %d,\n"
      "  \"allreduce_bytes\": %zu,\n"
      "  \"ring_seconds_per_op\": %.9f,\n"
      "  \"hier_seconds_per_op\": %.9f,\n"
      "  \"hierarchy_speedup\": %.3f,\n"
      "  \"percall_seconds_per_op\": %.9f,\n"
      "  \"replay_seconds_per_op\": %.9f,\n"
      "  \"plan_replay_speedup\": %.3f,\n"
      "  \"bitwise_identical\": %s,\n"
      "  \"auto_matches_model\": %s\n"
      "}\n",
      emulated_spec, kRanks, hier_bytes, ring_sec, hier_sec,
      hierarchy_speedup, percall_sec, replay_sec, plan_replay_speedup,
      bitwise ? "true" : "false", auto_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote results/bench_hierarchy.json\n");
  return (bitwise && auto_ok) ? 0 : 1;
}
