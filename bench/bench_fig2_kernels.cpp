// Figure 2 — weak-scaling kernel profile: computation / communication /
// host-device movement inside Filter, QR, Rayleigh-Ritz and Residuals for
// ChASE(LMS), ChASE(STD) and ChASE(NCCL).
//
// Setup as in Section 4.4: nodes 1 -> 64, N = 30k -> 240k (30k per sqrt of
// the node count), nev = 2250, nex = 750, a single iteration with fixed
// degree 20. STD/NCCL run 4 ranks per node (1 GPU each, rank grid
// 2sqrt(nodes) x 2sqrt(nodes)); LMS runs 1 rank per node with 4 GPUs.
// The costs come from the analytic replay of the real event stream priced on
// the A100/HDR machine model (the replay is validated event-for-event
// against real runs in tests/model). Claims to check:
//   * STD removes most of LMS's communication; NCCL removes all movement;
//   * LMS communication grows with the node count, NCCL stays flat;
//   * at 64 nodes, per-kernel speedups in the ballpark of the paper's
//     LMS->STD 1.6/22/10/8 and LMS->NCCL 3.8/1149/23/33.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "model/chase_model.hpp"
#include "perf/report.hpp"

namespace {

using namespace chase;
using model::ChaseModelSetup;
using model::Scheme;
using perf::Backend;
using perf::Region;

struct Variant {
  const char* name;
  Scheme scheme;
  Backend backend;
};

const Variant kVariants[] = {
    {"LMS", Scheme::kLms, Backend::kStdGpu},
    {"STD", Scheme::kNew, Backend::kStdGpu},
    {"NCCL", Scheme::kNew, Backend::kNcclGpu},
};

perf::KernelCosts run_variant(const perf::MachineModel& m, int nodes,
                              la::Index n_size, const Variant& v) {
  ChaseModelSetup s;
  s.n = n_size;
  s.nev = 2250;
  s.nex = 750;
  // The Uniform artificial matrices of the weak-scaling experiments are
  // real symmetric (LAPACK-style D conjugated by a real orthogonal factor).
  s.complex_scalar = false;
  s.scalar_bytes = 8;
  s.scheme = v.scheme;
  s.backend = v.backend;
  if (v.scheme == Scheme::kLms) {
    const int k = int(std::lround(std::sqrt(double(nodes))));
    s.nprow = s.npcol = k;
    s.gpus_per_rank = 4;
  } else {
    const int k = 2 * int(std::lround(std::sqrt(double(nodes))));
    s.nprow = s.npcol = k;
    s.gpus_per_rank = 1;
  }
  auto it = model::uniform_iteration(
      s.subspace(), 20,
      v.scheme == Scheme::kLms ? qr::QrVariant::kHouseholder
                               : qr::QrVariant::kCholQr2);
  perf::Tracker t;
  model::replay_iteration(s, it, t);
  t.flush();
  perf::MachineModel adjusted = m;
  adjusted.gemm_flops *= s.gpus_per_rank;
  return perf::price_tracker(adjusted, s.backend, t);
}

}  // namespace

int main() {
  perf::MachineModel m;
  const Region kRegions[] = {Region::kFilter, Region::kQr,
                             Region::kRayleighRitz, Region::kResidual};
  const char* kRegionNames[] = {"Filter", "QR", "RR", "Resid"};

  std::printf("Figure 2: kernel cost decomposition, weak scaling "
              "(modeled A100/HDR cluster, 1 iteration, deg 20, ne=3000)\n");
  std::printf("columns: compute / communication / movement in seconds\n\n");

  perf::CsvWriter csv("fig2_kernels.csv");
  csv.header({"nodes", "N", "variant", "kernel", "compute_s", "comm_s",
              "movement_s"});
  perf::KernelCosts at64[3];
  for (int nodes : {1, 4, 16, 64}) {
    const la::Index n_size =
        30000 * la::Index(std::lround(std::sqrt(double(nodes))));
    std::printf("nodes=%-3d  N=%-7lld\n", nodes, (long long)n_size);
    std::printf("  %-6s", "");
    for (const char* rn : kRegionNames) std::printf(" | %-26s", rn);
    std::printf("\n");
    bench::print_rule(122);
    for (int vi = 0; vi < 3; ++vi) {
      auto costs = run_variant(m, nodes, n_size, kVariants[vi]);
      if (nodes == 64) at64[vi] = costs;
      std::printf("  %-6s", kVariants[vi].name);
      for (Region r : kRegions) {
        const auto& c = costs[std::size_t(int(r))];
        std::printf(" | %7.3f %8.4f %8.4f ", c.compute, c.comm, c.movement);
        csv.row(nodes, n_size, kVariants[vi].name,
                std::string(perf::region_name(r)), c.compute, c.comm,
                c.movement);
      }
      std::printf("\n");
    }
    bench::print_rule(122);
  }

  std::printf("\nPer-kernel total-time speedups over LMS at 64 nodes "
              "(paper: STD 1.6/22/10/8, NCCL 3.8/1149/23/33):\n");
  for (int vi = 1; vi < 3; ++vi) {
    std::printf("  %-5s", kVariants[vi].name);
    for (Region r : kRegions) {
      const double lms = at64[0][std::size_t(int(r))].total();
      const double v = at64[vi][std::size_t(int(r))].total();
      std::printf("  %s %.1fx", kRegionNames[int(r) - int(Region::kFilter)],
                  v > 0 ? lms / v : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}
