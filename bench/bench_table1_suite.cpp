// Table 1 — the test-matrix suite.
//
// Prints the scaled synthetic analogues of the paper's DFT/BSE problems and
// verifies each generated matrix against its prescribed spectrum (lowest
// nev+nex eigenvalues via the direct solver), so the downstream experiments
// run on validated inputs.
#include <complex>
#include <cstdio>

#include "baseline/direct.hpp"
#include "bench/bench_common.hpp"
#include "gen/suite.hpp"

int main() {
  using namespace chase;
  using T = std::complex<double>;

  std::printf("Table 1: DFT/BSE test suite (scaled synthetic analogues)\n");
  std::printf("Paper problem -> this repro; spectra mimic the source "
              "application (see DESIGN.md)\n");
  bench::print_rule(96);
  std::printf("%-12s %9s %6s %5s | %6s %5s %5s %-9s %-10s %s\n", "Name",
              "paper N", "p.nev", "p.nex", "N", "nev", "nex", "Source",
              "Type", "spectrum check");
  bench::print_rule(96);

  const auto& suite = bench::quick_mode() ? gen::table1_suite_small()
                                          : gen::table1_suite_medium();
  for (const auto& p : suite) {
    auto eigs = gen::suite_spectrum<double>(p);
    auto h = gen::hermitian_with_spectrum<T>(eigs, p.seed + 1);

    // Validate the generator: the direct solver must recover the prescribed
    // lowest nev+nex eigenvalues.
    auto direct = baseline::solve_lowest<T>(h.cview(), p.nev + p.nex, 1);
    double max_err = 0;
    for (la::Index j = 0; j < p.nev + p.nex; ++j) {
      max_err = std::max(max_err,
                         std::abs(direct.eigenvalues[std::size_t(j)] -
                                  eigs[std::size_t(j)]));
    }
    std::printf("%-12s %9lld %6lld %5lld | %6lld %5lld %5lld %-9s %-10s "
                "max|dev|=%.1e %s\n",
                p.name.c_str(), (long long)p.paper_n, (long long)p.paper_nev,
                (long long)p.paper_nex, (long long)p.n, (long long)p.nev,
                (long long)p.nex, p.source.c_str(),
                p.kind == gen::SpectrumKind::kDft ? "Hermitian" : "Hermitian",
                max_err, max_err < 1e-8 ? "OK" : "FAIL");
  }
  bench::print_rule(96);
  std::printf("All matrices are dense complex Hermitian, built as Q^H D Q "
              "with prescribed D (Section 4.1).\n");
  return 0;
}
