// Figure 1 — estimated vs. computed condition number of the filtered vectors.
//
// For every suite problem, ChASE runs to convergence twice (degree
// optimization on and off); after every filter call the Algorithm-5 estimate
// kappa_est is printed next to the exact kappa_com of the filtered block
// (one-sided Jacobi SVD, the stand-in for the paper's LAPACK SVD on the
// gathered matrix). The paper's claims to check:
//   * kappa_est >= kappa_com at every iteration (upper bound), except for a
//     possible tiny first-iteration undershoot;
//   * the ratio is usually < 2, with opt-case overshoots up to ~1e4 in the
//     first iterations;
//   * no-opt peaks at iteration 1, opt can peak later (larger max degree).
#include <complex>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/sequential.hpp"
#include "gen/suite.hpp"
#include "la/svd.hpp"

namespace {

using namespace chase;
using T = std::complex<double>;

struct CondProbe : core::ChaseObserver<T> {
  struct Row {
    int iteration;
    double est;
    double computed;
  };
  std::vector<Row> rows;

  void after_filter(int iteration, int locked, la::ConstMatrixView<T> c,
                    double est) override {
    // kappa_2 of the freshly filtered (active) block.
    const auto active = c.block(0, locked, c.rows(), c.cols() - locked);
    rows.push_back({iteration, est, double(la::cond2(active))});
  }
};

}  // namespace

int main() {
  std::printf("Figure 1: estimated (Algorithm 5) vs computed kappa_2 of the "
              "filtered vectors\n");
  std::printf("no-opt: fixed degree 20; opt: optimized degrees, max 36 "
              "(Section 4.2)\n\n");

  const auto& suite = bench::quick_mode() ? gen::table1_suite_small()
                                          : gen::table1_suite_medium();
  for (const auto& p : suite) {
    auto h = gen::suite_matrix<T>(p);
    std::printf("%s (N=%lld nev=%lld nex=%lld)\n", p.name.c_str(),
                (long long)p.n, (long long)p.nev, (long long)p.nex);
    std::printf("  %-6s | %-35s | %-35s\n", "", "no-opt (deg=20)",
                "opt (max deg 36)");
    std::printf("  %-6s | %12s %12s %8s | %12s %12s %8s\n", "iter", "est",
                "computed", "ratio", "est", "computed", "ratio");
    bench::print_rule(96);

    CondProbe probe_noopt, probe_opt;
    core::ChaseConfig cfg;
    cfg.nev = p.nev;
    cfg.nex = p.nex;
    cfg.tol = 1e-10;
    cfg.initial_degree = 20;
    cfg.max_degree = 36;

    cfg.optimize_degree = false;
    auto r0 = core::solve_sequential<T>(h.cview(), cfg, &probe_noopt);
    cfg.optimize_degree = true;
    auto r1 = core::solve_sequential<T>(h.cview(), cfg, &probe_opt);

    const std::size_t iters =
        std::max(probe_noopt.rows.size(), probe_opt.rows.size());
    int bound_violations = 0;
    for (std::size_t i = 0; i < iters; ++i) {
      auto cell = [&](const std::vector<CondProbe::Row>& rows) {
        if (i >= rows.size()) {
          std::printf("%12s %12s %8s", "-", "-", "-");
          return;
        }
        const auto& r = rows[i];
        std::printf("%12.3e %12.3e %8.1e", r.est, r.computed,
                    r.computed > 0 ? r.est / r.computed : 0.0);
        if (r.est < r.computed * 0.999 && i > 0) ++bound_violations;
      };
      std::printf("  %-6zu | ", i + 1);
      cell(probe_noopt.rows);
      std::printf(" | ");
      cell(probe_opt.rows);
      std::printf("\n");
    }
    std::printf("  converged: no-opt %s in %d iters (%ld MatVecs), opt %s in "
                "%d iters (%ld MatVecs)\n",
                r0.converged ? "yes" : "NO", r0.iterations, r0.matvecs,
                r1.converged ? "yes" : "NO", r1.iterations, r1.matvecs);
    std::printf("  upper-bound violations after iteration 1: %d\n\n",
                bound_violations);
  }
  std::printf("Expected (paper): est bounds computed from above at every "
              "iteration (first-iteration\nundershoot possible); opt "
              "converges in fewer MatVecs than no-opt.\n");
  return 0;
}
