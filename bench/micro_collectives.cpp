// Ablation: collective cost models across communicator sizes and payloads.
//
// Prints the modeled MPI-tree vs NCCL-ring costs that drive Figures 2/3:
// the power-of-two dips of the tree allreduce, the staging penalty of the
// STD path, and where NCCL's ring overtakes host-staged MPI. (This is a
// model study, not a wall-clock benchmark: the in-process transport of the
// SPMD runtime has no wire to measure.)
#include <cstdio>

#include "perf/cost_model.hpp"
#include "perf/machine.hpp"

int main() {
  using namespace chase::perf;
  MachineModel m;

  std::printf("Collective cost models (A100/HDR machine description)\n\n");

  std::printf("allreduce of 64 MiB payload vs communicator size "
              "(the Fig. 3a power-of-two dips):\n");
  std::printf("%8s %14s %14s %16s\n", "ranks", "MPI tree (ms)",
              "NCCL ring (ms)", "STD = MPI+staging");
  const std::size_t big = std::size_t(64) << 20;
  for (int p : {2, 3, 4, 8, 12, 16, 24, 32, 48, 64, 60, 120}) {
    const double mpi = m.mpi_allreduce_seconds(big, p) * 1e3;
    const double nccl = m.nccl_allreduce_seconds(big, p) * 1e3;
    const double std_total = mpi + 2 * m.memcpy_seconds(big) * 1e3;
    std::printf("%8d %14.2f %14.2f %16.2f\n", p, mpi, nccl, std_total);
  }

  std::printf("\nallreduce crossover vs payload at 16 ranks:\n");
  std::printf("%12s %14s %14s %10s\n", "bytes", "MPI+staging", "NCCL ring",
              "winner");
  for (std::size_t bytes = 1 << 10; bytes <= (std::size_t(256) << 20);
       bytes <<= 4) {
    const double std_total = m.mpi_allreduce_seconds(bytes, 16) +
                             2 * m.memcpy_seconds(bytes);
    const double nccl = m.nccl_allreduce_seconds(bytes, 16);
    std::printf("%12zu %14.6f %14.6f %10s\n", bytes, std_total, nccl,
                nccl < std_total ? "NCCL" : "MPI");
  }

  std::printf("\nbroadcast (the C2 -> B2 redistribution) of 32 MiB:\n");
  std::printf("%8s %14s %14s\n", "ranks", "MPI tree (ms)", "NCCL ring (ms)");
  const std::size_t mid = std::size_t(32) << 20;
  for (int p : {2, 4, 8, 16, 32, 60}) {
    std::printf("%8d %14.2f %14.2f\n", p,
                m.mpi_broadcast_seconds(mid, p) * 1e3,
                m.nccl_broadcast_seconds(mid, p) * 1e3);
  }
  return 0;
}
