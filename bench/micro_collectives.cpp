// Ablation: collective cost models, plus a wall-clock sweep of the src/coll
// algorithmic engine.
//
// Part 1 prints the modeled MPI-tree vs NCCL-ring costs that drive Figures
// 2/3: the power-of-two dips of the tree allreduce, the staging penalty of
// the STD path, and where NCCL's ring overtakes host-staged MPI (a model
// study — the in-process transport has no wire).
//
// Part 2 *measures* the in-process engine: allreduce wall time per
// CHASE_COLL_ALGO policy x team size x payload x chunk size, emitted to
// results/bench_collectives.json so the algorithm crossover points are
// tracked across PRs. The channel algorithms move O(bytes) per rank versus
// the naive path's O(P * bytes) reads + folds, which is the crossover the
// auto policy's alpha-beta-gamma model predicts.
// Pass --topo <spec> (a CHASE_TOPO grammar spec, e.g. 2x4@inter_mbps=800)
// to run the measured sweep on an emulated two-level topology instead of
// the flat default; the spec is recorded in the JSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coll/engine.hpp"
#include "comm/communicator.hpp"
#include "comm/topology.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"
#include "tune/measure.hpp"

namespace {

using chase::comm::Communicator;
using chase::comm::Team;
using chase::la::Index;

struct Point {
  const char* collective;
  std::string algo;   // policy + chunk, e.g. "ring/32KiB"
  chase::coll::Algorithm policy;
  std::size_t chunk_bytes;  // 0: irrelevant (naive)
  int ranks;
  std::size_t bytes;
  double seconds_per_op;
};

double time_allreduce(int p, std::size_t bytes, int iters) {
  const Index count = Index(bytes / sizeof(double));
  double per_op = 0;
  Team team(p);
  team.run([&](Communicator& comm) {
    std::vector<double> x(std::size_t(count), double(comm.rank() + 1));
    // Shared warmup+repeat harness (tune::measure): 1 untimed warmup, then
    // `iters` timed ops; every rank runs the same op sequence and rank 0
    // reads the mean per-op time.
    const chase::tune::Measurement m = chase::tune::measure(
        /*warmup=*/1, iters, [&] { comm.all_reduce(x.data(), count); });
    comm.barrier();
    if (comm.rank() == 0) per_op = m.mean;
  });
  return per_op;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace chase::perf;
  MachineModel m;

  std::string topo_spec = "flat";
  std::optional<chase::comm::ScopedTopology> topo_scope;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--topo") == 0 && i + 1 < argc) {
      topo_spec = argv[++i];
      topo_scope.emplace(
          chase::comm::parse_topology("--topo", topo_spec));
    } else {
      std::fprintf(stderr, "usage: %s [--topo <spec>]\n", argv[0]);
      return 2;
    }
  }
  if (topo_scope) {
    std::printf("emulated topology: %s\n\n", topo_spec.c_str());
  }

  std::printf("Collective cost models (A100/HDR machine description)\n\n");

  std::printf("allreduce of 64 MiB payload vs communicator size "
              "(the Fig. 3a power-of-two dips):\n");
  std::printf("%8s %14s %14s %16s\n", "ranks", "MPI tree (ms)",
              "NCCL ring (ms)", "STD = MPI+staging");
  const std::size_t big = std::size_t(64) << 20;
  for (int p : {2, 3, 4, 8, 12, 16, 24, 32, 48, 64, 60, 120}) {
    const double mpi = m.mpi_allreduce_seconds(big, p) * 1e3;
    const double nccl = m.nccl_allreduce_seconds(big, p) * 1e3;
    const double std_total = mpi + 2 * m.memcpy_seconds(big) * 1e3;
    std::printf("%8d %14.2f %14.2f %16.2f\n", p, mpi, nccl, std_total);
  }

  std::printf("\nallreduce crossover vs payload at 16 ranks:\n");
  std::printf("%12s %14s %14s %10s\n", "bytes", "MPI+staging", "NCCL ring",
              "winner");
  for (std::size_t bytes = 1 << 10; bytes <= (std::size_t(256) << 20);
       bytes <<= 4) {
    const double std_total = m.mpi_allreduce_seconds(bytes, 16) +
                             2 * m.memcpy_seconds(bytes);
    const double nccl = m.nccl_allreduce_seconds(bytes, 16);
    std::printf("%12zu %14.6f %14.6f %10s\n", bytes, std_total, nccl,
                nccl < std_total ? "NCCL" : "MPI");
  }

  std::printf("\nbroadcast (the C2 -> B2 redistribution) of 32 MiB:\n");
  std::printf("%8s %14s %14s\n", "ranks", "MPI tree (ms)", "NCCL ring (ms)");
  const std::size_t mid = std::size_t(32) << 20;
  for (int p : {2, 4, 8, 16, 32, 60}) {
    std::printf("%8d %14.2f %14.2f\n", p,
                m.mpi_broadcast_seconds(mid, p) * 1e3,
                m.nccl_broadcast_seconds(mid, p) * 1e3);
  }

  // ---- wall-clock sweep of the src/coll engine ----

  std::printf("\nMeasured in-process allreduce (seconds/op) by "
              "CHASE_COLL_ALGO policy:\n");
  std::printf("%6s %12s %18s %14s\n", "ranks", "bytes", "algo/chunk",
              "sec/op");

  std::vector<Point> points;
  const std::size_t sizes[] = {std::size_t(16) << 10, std::size_t(256) << 10,
                               std::size_t(4) << 20};
  const std::size_t chunks[] = {std::size_t(32) << 10, std::size_t(256) << 10};
  for (const int p : {2, 4, 8}) {
    for (const std::size_t bytes : sizes) {
      const int iters =
          int(std::clamp<std::size_t>((std::size_t(8) << 20) / bytes, 3, 24));
      const std::size_t group_start = points.size();
      {
        chase::coll::ScopedAlgorithm policy(chase::coll::Algorithm::kNaive);
        points.push_back({"allreduce", "naive", chase::coll::Algorithm::kNaive,
                          0, p, bytes, time_allreduce(p, bytes, iters)});
      }
      std::vector<chase::coll::Algorithm> policies = {
          chase::coll::Algorithm::kRing, chase::coll::Algorithm::kTree};
      if (topo_scope) policies.push_back(chase::coll::Algorithm::kHier);
      for (const auto policy_kind : policies) {
        for (const std::size_t chunk : chunks) {
          chase::coll::ScopedAlgorithm policy(policy_kind);
          chase::coll::ScopedChunkBytes chunk_scope(chunk);
          std::string label(chase::coll::algorithm_name(policy_kind));
          label += "/" + std::to_string(chunk >> 10) + "KiB";
          points.push_back({"allreduce", label, policy_kind, chunk, p, bytes,
                            time_allreduce(p, bytes, iters)});
        }
      }
      for (std::size_t i = group_start; i < points.size(); ++i) {
        std::printf("%6d %12zu %18s %14.6f\n", points[i].ranks,
                    points[i].bytes, points[i].algo.c_str(),
                    points[i].seconds_per_op);
      }
    }
  }

  // JSON emission: every point, plus the per-(ranks, bytes) winner and its
  // margin over naive — the acceptance signal tracked across PRs.
  std::filesystem::create_directories("results");
  std::FILE* f = std::fopen("results/bench_collectives.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open results/bench_collectives.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"collective\": \"allreduce\",\n  \"topology\": "
               "\"%s\",\n  \"points\": [\n",
               topo_spec.c_str());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    std::fprintf(f,
                 "    {\"algo\": \"%s\", \"ranks\": %d, \"bytes\": %zu, "
                 "\"chunk_bytes\": %zu, \"seconds_per_op\": %.9f}%s\n",
                 pt.algo.c_str(), pt.ranks, pt.bytes, pt.chunk_bytes,
                 pt.seconds_per_op, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"winners\": [\n");
  bool first = true;
  for (const int p : {2, 4, 8}) {
    for (const std::size_t bytes : sizes) {
      const Point* naive = nullptr;
      const Point* best = nullptr;
      for (const auto& pt : points) {
        if (pt.ranks != p || pt.bytes != bytes) continue;
        if (pt.policy == chase::coll::Algorithm::kNaive) {
          naive = &pt;
        } else if (best == nullptr ||
                   pt.seconds_per_op < best->seconds_per_op) {
          best = &pt;
        }
      }
      if (naive == nullptr || best == nullptr) continue;
      const double speedup = naive->seconds_per_op / best->seconds_per_op;
      std::fprintf(f,
                   "%s    {\"ranks\": %d, \"bytes\": %zu, \"best_algo\": "
                   "\"%s\", \"naive_seconds\": %.9f, \"best_seconds\": %.9f, "
                   "\"speedup_vs_naive\": %.3f}",
                   first ? "" : ",\n", p, bytes, best->algo.c_str(),
                   naive->seconds_per_op, best->seconds_per_op, speedup);
      first = false;
      std::printf("p=%d bytes=%zu: best=%s speedup %.2fx vs naive\n", p,
                  bytes, best->algo.c_str(), speedup);
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote results/bench_collectives.json\n");
  return 0;
}
