// Microbenchmarks of the dense kernels underlying every experiment:
// GEMM (the HEMM workhorse), the Gram matrix, POTRF, TRSM, the Hermitian
// eigensolver and the Jacobi SVD. Reported Gflop/s calibrate this host
// against the A100 rates in the machine model.
#include <benchmark/benchmark.h>

#include <complex>

#include "common/rng.hpp"
#include "la/gemm.hpp"
#include "la/heevd.hpp"
#include "la/potrf.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "la/trsm.hpp"

namespace {

using namespace chase;
using la::Index;

template <typename T>
la::Matrix<T> random_mat(Index m, Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix<T> a(m, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) a(i, j) = rng.gaussian<T>();
  }
  return a;
}

template <typename T>
void BM_Gemm(benchmark::State& state) {
  const Index n = state.range(0);
  const Index k = state.range(1);
  auto a = random_mat<T>(n, n, 1);
  auto b = random_mat<T>(n, k, 2);
  la::Matrix<T> c(n, k);
  for (auto _ : state) {
    la::gemm(T(1), a.cview(), b.cview(), T(0), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  const double z = kIsComplex<T> ? 8.0 : 2.0;
  state.counters["Gflop/s"] = benchmark::Counter(
      z * double(n) * double(n) * double(k) * double(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm<double>)->Args({512, 64})->Args({1024, 128});
BENCHMARK(BM_Gemm<std::complex<double>>)->Args({512, 64})->Args({1024, 128});

template <typename T>
void BM_Gram(benchmark::State& state) {
  const Index m = state.range(0), n = state.range(1);
  auto x = random_mat<T>(m, n, 3);
  la::Matrix<T> g(n, n);
  for (auto _ : state) {
    la::gram(x.cview(), g.view());
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_Gram<std::complex<double>>)->Args({4096, 64})->Args({4096, 256});

template <typename T>
void BM_Potrf(benchmark::State& state) {
  const Index n = state.range(0);
  auto x = random_mat<T>(2 * n, n, 4);
  la::Matrix<T> g(n, n);
  la::gram(x.cview(), g.view());
  for (Index j = 0; j < n; ++j) g(j, j) += T(RealType<T>(n));
  for (auto _ : state) {
    auto work = la::clone(g.cview());
    const int info = la::potrf_upper(work.view());
    benchmark::DoNotOptimize(info);
  }
}
BENCHMARK(BM_Potrf<std::complex<double>>)->Arg(64)->Arg(256);

template <typename T>
void BM_TrsmRightUpper(benchmark::State& state) {
  const Index m = state.range(0), n = state.range(1);
  auto x = random_mat<T>(2 * n, n, 5);
  la::Matrix<T> g(n, n);
  la::gram(x.cview(), g.view());
  for (Index j = 0; j < n; ++j) g(j, j) += T(RealType<T>(n));
  la::potrf_upper(g.view());
  auto b = random_mat<T>(m, n, 6);
  for (auto _ : state) {
    auto work = la::clone(b.cview());
    la::trsm_right_upper(g.view().as_const(), work.view());
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_TrsmRightUpper<std::complex<double>>)->Args({4096, 128});

template <typename T>
void BM_Heevd(benchmark::State& state) {
  const Index n = state.range(0);
  auto g = random_mat<T>(n, n, 7);
  la::Matrix<T> a(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      a(i, j) = (g(i, j) + conjugate(g(j, i))) / RealType<T>(2);
    }
  }
  std::vector<RealType<T>> w;
  la::Matrix<T> z(n, n);
  for (auto _ : state) {
    auto work = la::clone(a.cview());
    la::heevd(work.view(), w, z.view());
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_Heevd<double>)->Arg(128)->Arg(256);
BENCHMARK(BM_Heevd<std::complex<double>>)->Arg(128);

template <typename T>
void BM_JacobiCond(benchmark::State& state) {
  const Index m = state.range(0), n = state.range(1);
  auto x = random_mat<T>(m, n, 8);
  for (auto _ : state) {
    auto k = la::cond2(x.cview());
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_JacobiCond<std::complex<double>>)->Args({1024, 32});

}  // namespace

BENCHMARK_MAIN();
