// Microbenchmarks of the dense kernels underlying every experiment:
// GEMM (the HEMM workhorse), the Gram matrix, POTRF, TRSM, the Hermitian
// eigensolver and the Jacobi SVD. Reported Gflop/s calibrate this host
// against the A100 rates in the machine model.
//
// Default invocation runs the CHASE_GEMM_KERNEL policy sweep — every kernel
// policy x scalar type x size, plus the paired hemm-vs-gemm comparison on a
// Hermitian operand — and writes results/bench_kernels.json (first argument
// overrides the path); scripts/compare_bench.py checks the invariants the
// engine must uphold. Pass --gbench to run the google-benchmark microbenches
// instead (all the usual --benchmark_* flags apply).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "la/gemm.hpp"
#include "la/gemm_policy.hpp"
#include "la/heevd.hpp"
#include "la/hemm.hpp"
#include "la/potrf.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "la/trsm.hpp"
#include "tune/measure.hpp"

namespace {

using namespace chase;
using la::Index;

template <typename T>
la::Matrix<T> random_mat(Index m, Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix<T> a(m, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) a(i, j) = rng.gaussian<T>();
  }
  return a;
}

template <typename T>
void BM_Gemm(benchmark::State& state) {
  const Index n = state.range(0);
  const Index k = state.range(1);
  auto a = random_mat<T>(n, n, 1);
  auto b = random_mat<T>(n, k, 2);
  la::Matrix<T> c(n, k);
  for (auto _ : state) {
    la::gemm(T(1), a.cview(), b.cview(), T(0), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  const double z = kIsComplex<T> ? 8.0 : 2.0;
  state.counters["Gflop/s"] = benchmark::Counter(
      z * double(n) * double(n) * double(k) * double(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm<double>)->Args({512, 64})->Args({1024, 128});
BENCHMARK(BM_Gemm<std::complex<double>>)->Args({512, 64})->Args({1024, 128});

template <typename T>
void BM_Gram(benchmark::State& state) {
  const Index m = state.range(0), n = state.range(1);
  auto x = random_mat<T>(m, n, 3);
  la::Matrix<T> g(n, n);
  for (auto _ : state) {
    la::gram(x.cview(), g.view());
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_Gram<std::complex<double>>)->Args({4096, 64})->Args({4096, 256});

template <typename T>
void BM_Potrf(benchmark::State& state) {
  const Index n = state.range(0);
  auto x = random_mat<T>(2 * n, n, 4);
  la::Matrix<T> g(n, n);
  la::gram(x.cview(), g.view());
  for (Index j = 0; j < n; ++j) g(j, j) += T(RealType<T>(n));
  for (auto _ : state) {
    auto work = la::clone(g.cview());
    const int info = la::potrf_upper(work.view());
    benchmark::DoNotOptimize(info);
  }
}
BENCHMARK(BM_Potrf<std::complex<double>>)->Arg(64)->Arg(256);

template <typename T>
void BM_TrsmRightUpper(benchmark::State& state) {
  const Index m = state.range(0), n = state.range(1);
  auto x = random_mat<T>(2 * n, n, 5);
  la::Matrix<T> g(n, n);
  la::gram(x.cview(), g.view());
  for (Index j = 0; j < n; ++j) g(j, j) += T(RealType<T>(n));
  la::potrf_upper(g.view());
  auto b = random_mat<T>(m, n, 6);
  for (auto _ : state) {
    auto work = la::clone(b.cview());
    la::trsm_right_upper(g.view().as_const(), work.view());
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_TrsmRightUpper<std::complex<double>>)->Args({4096, 128});

template <typename T>
void BM_Heevd(benchmark::State& state) {
  const Index n = state.range(0);
  auto g = random_mat<T>(n, n, 7);
  la::Matrix<T> a(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      a(i, j) = (g(i, j) + conjugate(g(j, i))) / RealType<T>(2);
    }
  }
  std::vector<RealType<T>> w;
  la::Matrix<T> z(n, n);
  for (auto _ : state) {
    auto work = la::clone(a.cview());
    la::heevd(work.view(), w, z.view());
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_Heevd<double>)->Arg(128)->Arg(256);
BENCHMARK(BM_Heevd<std::complex<double>>)->Arg(128);

template <typename T>
void BM_JacobiCond(benchmark::State& state) {
  const Index m = state.range(0), n = state.range(1);
  auto x = random_mat<T>(m, n, 8);
  for (auto _ : state) {
    auto k = la::cond2(x.cview());
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_JacobiCond<std::complex<double>>)->Args({1024, 32});

// ---------------------------------------------------------------------------
// Kernel-policy sweep -> results/bench_kernels.json
// ---------------------------------------------------------------------------

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` Gflop/s of one thunk through the shared tune::measure
/// harness (noise on a shared host is one-sided — interference only ever
/// slows a run down — so the best repeat is the estimator closest to the
/// kernel's true rate, the same convention the autotuner records).
template <typename F>
double best_gflops(double flops, int reps, F&& run) {
  return chase::tune::measured_rate(flops, /*warmup=*/0, reps,
                                    static_cast<F&&>(run)) /
         1e9;
}

struct GemmRow {
  const char* kernel;
  const char* type;
  la::Index n;
  double gflops;
};

struct HemmRow {
  const char* type;
  la::Index n;
  la::Index ncols;
  double gemm_gflops;
  double hemm_gflops;
  double ratio;  // median of the per-repetition hemm/gemm ratios
};

template <typename T>
void sweep_gemm(const char* type_name, std::vector<GemmRow>& out) {
  const double z = kIsComplex<T> ? 8.0 : 2.0;
  for (la::Index n : {la::Index(256), la::Index(512), la::Index(1024)}) {
    auto a = random_mat<T>(n, n, 1);
    auto b = random_mat<T>(n, n, 2);
    la::Matrix<T> c(n, n);
    const double flops = z * double(n) * double(n) * double(n);
    for (la::GemmKernel kern :
         {la::GemmKernel::kNaive, la::GemmKernel::kBlocked,
          la::GemmKernel::kMicro}) {
      la::ScopedGemmKernel scoped(kern);
      // The seed path runs minutes-per-call at n=1024; one repetition is
      // plenty at that duration, while the fast kernels take best-of-5.
      const int reps = kern == la::GemmKernel::kNaive ? (n >= 1024 ? 1 : 2) : 5;
      const double g = best_gflops(flops, reps, [&] {
        la::gemm(T(1), a.cview(), b.cview(), T(0), c.view());
        benchmark::DoNotOptimize(c.data());
      });
      out.push_back({la::gemm_kernel_name(kern).data(), type_name, n, g});
      std::printf("  gemm %-7s %-15s n=%-5lld %8.2f Gflop/s\n",
                  la::gemm_kernel_name(kern).data(), type_name,
                  (long long)n, g);
    }
  }
}

template <typename T>
la::Matrix<T> random_herm(la::Index n, std::uint64_t seed) {
  auto g = random_mat<T>(n, n, seed);
  la::Matrix<T> h(n, n);
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i < n; ++i) {
      h(i, j) = (g(i, j) + conjugate(g(j, i))) / RealType<T>(2);
    }
  }
  return h;
}

template <typename T>
void sweep_hemm(const char* type_name, std::vector<HemmRow>& out) {
  const double z = kIsComplex<T> ? 8.0 : 2.0;
  la::ScopedGemmKernel scoped(la::GemmKernel::kMicro);
  for (la::Index n : {la::Index(512), la::Index(1024)}) {
    const la::Index ncols = n;
    auto h = random_herm<T>(n, 10);
    auto b = random_mat<T>(n, ncols, 11);
    la::Matrix<T> c(n, ncols);
    const double flops = z * double(n) * double(n) * double(ncols);
    // Paired protocol: strictly alternate gemm/hemm repetitions so slow
    // phases of a noisy shared host hit both sides equally, then take the
    // median of the per-repetition ratios (robust against any single
    // corrupted repetition) alongside each side's best rate.
    const int reps = 9;
    std::vector<double> ratios;
    double best_g = 0, best_h = 0;
    for (int r = 0; r < reps; ++r) {
      double t0 = now_seconds();
      la::gemm(T(1), h.cview(), b.cview(), T(0), c.view());
      benchmark::DoNotOptimize(c.data());
      const double g = flops / (now_seconds() - t0) / 1e9;
      t0 = now_seconds();
      la::hemm(T(1), h.cview(), b.cview(), T(0), c.view());
      benchmark::DoNotOptimize(c.data());
      const double hh = flops / (now_seconds() - t0) / 1e9;
      best_g = std::max(best_g, g);
      best_h = std::max(best_h, hh);
      ratios.push_back(hh / g);
    }
    std::nth_element(ratios.begin(), ratios.begin() + reps / 2, ratios.end());
    const double med = ratios[reps / 2];
    out.push_back({type_name, n, ncols, best_g, best_h, med});
    std::printf("  hemm/gemm %-15s n=%-5lld gemm %7.2f  hemm %7.2f  "
                "median ratio %.3f\n",
                type_name, (long long)n, best_g, best_h, med);
  }
}

int run_kernel_sweep(const char* path) {
  std::vector<GemmRow> gemm_rows;
  std::vector<HemmRow> hemm_rows;
  std::printf("kernel policy sweep (writes %s)\n", path);
  sweep_gemm<float>("float", gemm_rows);
  sweep_gemm<double>("double", gemm_rows);
  sweep_gemm<std::complex<float>>("complex<float>", gemm_rows);
  sweep_gemm<std::complex<double>>("complex<double>", gemm_rows);
  sweep_hemm<double>("double", hemm_rows);
  sweep_hemm<std::complex<double>>("complex<double>", hemm_rows);

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"gemm\": [\n");
  for (std::size_t i = 0; i < gemm_rows.size(); ++i) {
    const auto& r = gemm_rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"type\": \"%s\", \"n\": %lld, "
                 "\"gflops\": %.3f}%s\n",
                 r.kernel, r.type, (long long)r.n, r.gflops,
                 i + 1 < gemm_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"hemm_vs_gemm\": [\n");
  for (std::size_t i = 0; i < hemm_rows.size(); ++i) {
    const auto& r = hemm_rows[i];
    std::fprintf(f,
                 "    {\"type\": \"%s\", \"n\": %lld, \"ncols\": %lld, "
                 "\"gemm_gflops\": %.3f, \"hemm_gflops\": %.3f, "
                 "\"median_ratio\": %.4f}%s\n",
                 r.type, (long long)r.n, (long long)r.ncols, r.gemm_gflops,
                 r.hemm_gflops, r.ratio,
                 i + 1 < hemm_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  const char* json_path = "results/bench_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gbench") == 0) {
      gbench = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (!gbench) {
    if (argc > 1) json_path = argv[1];
    return run_kernel_sweep(json_path);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
