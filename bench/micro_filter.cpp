// Chebyshev filter economics: the degree/column ablation the per-vector
// degree optimization trades on, plus the mixed-precision filter gates.
//
// The mixed section records the evidence compare_bench.py enforces
// (results/bench_mixed.json, JSON key "mixed"):
//   * fp32 filtering of a 64-column panel at n=1024 — including the
//     demote/promote boundary copies — must run >= 1.5x faster than the
//     same filter in fp64 (the tensor-core economics of the paper's
//     mixed-precision pipeline, reproduced by the width-doubled fp32
//     micro-kernel tiles);
//   * on a 2x2 grid the filter's allreduce payload must halve (ratio
//     <= 0.55 measured from the tracker's coll_bytes, exactly 0.5 for a
//     pure fp32 apply);
//   * CHASE_PRECISION=double solves must stay bitwise identical across an
//     intervening mixed solve — the policy must not leak state;
//   * the mixed solve's eigenvalues must match the fp64 solve's.
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/dla_mixed.hpp"
#include "core/filter.hpp"
#include "core/precision.hpp"
#include "gen/spectrum.hpp"
#include "la/convert.hpp"

namespace {

using namespace chase;
using la::Index;

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_of(int reps, const std::function<void()>& fn) {
  double best = 1e99;
  for (int r = 0; r < reps; ++r) best = std::min(best, wall_seconds(fn));
  return best;
}

/// Sequential (1x1 grid) operator + panel for filter timing.
template <typename T>
struct SeqFilter {
  comm::Communicator self;
  comm::Grid2d grid{self, 1, 1};
  dist::DistHermitianMatrix<T> h;
  la::Matrix<T> c, b, c0;
  std::vector<int> degs;

  SeqFilter(Index n, Index ncols, int degree, int seed)
      : h(grid, dist::IndexMap::block(n, 1), dist::IndexMap::block(n, 1)),
        c(n, ncols),
        b(n, ncols),
        c0(n, ncols),
        degs(std::size_t(ncols), degree) {
    auto h_full = gen::uniform_matrix<T>(n, -1.0, 1.0, seed);
    h.fill_from_global(h_full.cview());
    Rng rng(seed + 1);
    for (Index j = 0; j < ncols; ++j) {
      for (Index i = 0; i < n; ++i) c0(i, j) = rng.gaussian<T>();
    }
  }

  void reset_panel() { la::copy(c0.cview(), c.view()); }
};

struct MixedResult {
  Index n = 0, cols = 0;
  int degree = 0;
  double fp64_seconds = 0, fp32_seconds = 0, speedup = 0;
  Index grid_n = 0;
  double coll_bytes_fp64 = 0, coll_bytes_fp32 = 0, coll_ratio = 0;
  Index solve_n = 0;
  double tol = 0, max_eig_diff = 0;
  bool double_identical = false;
  double fp32_cols = 0, fp64_cols = 0;  // promotion counters, mixed solve
};

/// Gate 1: wall-clock of the low-precision filter (demote + fp32 filter +
/// promote, the exact boundary the mixed backend pays) vs the fp64 filter.
void bench_filter_speedup(MixedResult& out, Index n, Index ncols, int degree,
                          int reps) {
  using T = double;
  using L = float;
  SeqFilter<T> f64(n, ncols, degree, 5);

  SeqFilter<T> src(n, ncols, degree, 5);
  dist::DistHermitianMatrix<L> h32(src.grid, dist::IndexMap::block(n, 1),
                                   dist::IndexMap::block(n, 1));
  la::demote<T>(src.h.local().as_const(), h32.local());
  la::Matrix<L> c32(n, ncols), b32(n, ncols);

  out.fp64_seconds = best_of(reps, [&] {
    f64.reset_panel();
    core::chebyshev_filter(f64.h, f64.c.view(), f64.b.view(), f64.degs, 0.5,
                           0.45, -0.99);
  });
  out.fp32_seconds = best_of(reps, [&] {
    src.reset_panel();
    la::demote<T>(src.c.cview(), c32.view());
    core::chebyshev_filter(h32, c32.view(), b32.view(), src.degs, 0.5f, 0.45f,
                           -0.99f);
    la::promote<T>(c32.cview(), src.c.view());
  });
  out.n = n;
  out.cols = ncols;
  out.degree = degree;
  out.speedup = out.fp64_seconds / out.fp32_seconds;
}

/// Gate 2: filter-region allreduce payload on a 2x2 grid, fp64 vs fp32
/// apply — the halved collective bytes of the mixed pipeline.
void bench_coll_bytes(MixedResult& out, Index n, Index ncols, int degree) {
  auto run = [&](auto scalar_tag) -> double {
    using S = decltype(scalar_tag);
    auto h_full = gen::uniform_matrix<double>(n, -1.0, 1.0, 9);
    la::Matrix<S> h_s(n, n);
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < n; ++i) h_s(i, j) = S(h_full(i, j));
    }
    std::vector<perf::Tracker> trackers(4);
    comm::Team team(4);
    team.run(
        [&](comm::Communicator& world) {
          comm::Grid2d grid(world, 2, 2);
          auto map = dist::IndexMap::block(n, 2);
          dist::DistHermitianMatrix<S> hd(grid, map, map);
          hd.fill_from_global(h_s.cview());
          const Index mloc = map.local_size(grid.my_row());
          const Index bloc = map.local_size(grid.my_col());
          la::Matrix<S> c(mloc, ncols), b(bloc, ncols);
          Rng rng(11);
          for (Index j = 0; j < ncols; ++j) {
            for (Index i = 0; i < mloc; ++i) c(i, j) = rng.gaussian<S>();
          }
          std::vector<int> degs(std::size_t(ncols), degree);
          core::chebyshev_filter(hd, c.view(), b.view(), degs, S(0.5),
                                 S(0.45), S(-0.99));
        },
        &trackers);
    double bytes = 0;
    for (const auto& t : trackers) {
      bytes += double(t.costs(perf::Region::kFilter).coll_bytes);
    }
    return bytes;
  };
  out.grid_n = n;
  out.coll_bytes_fp64 = run(double{});
  out.coll_bytes_fp32 = run(float{});
  out.coll_ratio = out.coll_bytes_fp32 / out.coll_bytes_fp64;
}

/// Gates 3+4: the mixed solve converges to the fp64 eigenvalues, and
/// CHASE_PRECISION=double results are bitwise identical across an
/// intervening mixed solve.
void bench_solve_equivalence(MixedResult& out, Index n, int reps_unused) {
  (void)reps_unused;
  using T = double;
  auto h_full = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 7), 7);
  core::ChaseConfig cfg;
  cfg.nev = 12;
  cfg.nex = 8;
  cfg.tol = 1e-10;
  out.solve_n = n;
  out.tol = cfg.tol;

  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  auto map = dist::IndexMap::block(n, 1);
  auto solve_once = [&]() {
    dist::DistHermitianMatrix<T> hd(grid, map, map);
    hd.fill_from_global(h_full.cview());
    return core::solve(hd, cfg);
  };

  core::ChaseResult<T> ref, mixed, again;
  {
    core::ScopedPrecision p(core::Precision::kDouble);
    ref = solve_once();
  }
  {
    core::ScopedPrecision p(core::Precision::kMixed);
    perf::Tracker t;
    perf::set_thread_tracker(&t);
    mixed = solve_once();
    perf::set_thread_tracker(nullptr);
    t.flush();
    out.fp32_cols = t.counter("precision.filter.cols.fp32");
    out.fp64_cols = t.counter("precision.filter.cols.fp64");
  }
  {
    core::ScopedPrecision p(core::Precision::kDouble);
    again = solve_once();
  }

  for (std::size_t j = 0; j < ref.eigenvalues.size(); ++j) {
    out.max_eig_diff = std::max(
        out.max_eig_diff, std::abs(ref.eigenvalues[j] - mixed.eigenvalues[j]));
  }
  bool identical = ref.eigenvalues.size() == again.eigenvalues.size();
  if (identical) {
    identical = std::memcmp(ref.eigenvalues.data(), again.eigenvalues.data(),
                            ref.eigenvalues.size() * sizeof(double)) == 0 &&
                ref.eigenvectors.rows() == again.eigenvectors.rows() &&
                ref.eigenvectors.cols() == again.eigenvectors.cols();
    for (Index j = 0; identical && j < ref.eigenvectors.cols(); ++j) {
      identical = std::memcmp(ref.eigenvectors.col(j), again.eigenvectors.col(j),
                              std::size_t(ref.eigenvectors.rows()) *
                                  sizeof(T)) == 0;
    }
  }
  out.double_identical = identical;
}

/// Informational: the classic degree/column ablation (the shrinking-suffix
/// MatVec economics), fp64.
void print_degree_ablation(bool quick) {
  using T = double;
  const Index n = quick ? 256 : 768;
  std::printf("Filter MatVec economics (n=%ld, fp64):\n", long(n));
  for (Index ncols : {Index(16), Index(64)}) {
    for (int degree : {10, 20, 36}) {
      SeqFilter<T> f(n, ncols, degree, 5);
      long matvecs = 0;
      const double s = wall_seconds([&] {
        f.reset_panel();
        matvecs = core::chebyshev_filter(f.h, f.c.view(), f.b.view(), f.degs,
                                         0.5, 0.45, -0.99);
      });
      std::printf("  cols=%-3ld deg=%-3d %8.4fs  %10.0f MatVec/s\n",
                  long(ncols), degree, s, double(matvecs) / s);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode();
  const std::string out_path =
      argc > 1 ? argv[1] : "results/bench_mixed.json";

  print_degree_ablation(quick);

  MixedResult r;
  const Index n_filter = quick ? 384 : 1024;
  const Index cols = quick ? 32 : 64;
  const int reps = quick ? 3 : 5;
  bench_filter_speedup(r, n_filter, cols, 20, reps);
  std::printf("mixed filter n=%ld cols=%ld deg=%d: fp64 %.4fs  fp32 %.4fs  "
              "speedup %.2fx\n",
              long(r.n), long(r.cols), r.degree, r.fp64_seconds,
              r.fp32_seconds, r.speedup);

  bench_coll_bytes(r, quick ? 128 : 256, quick ? 16 : 32, 16);
  std::printf("2x2 filter coll bytes: fp64 %.0f  fp32 %.0f  ratio %.3f\n",
              r.coll_bytes_fp64, r.coll_bytes_fp32, r.coll_ratio);

  bench_solve_equivalence(r, quick ? 128 : 192, reps);
  std::printf("mixed solve n=%ld: max |eig diff| %.2e (tol %.0e)  "
              "fp32 cols %.0f  fp64 cols %.0f  double bitwise identical: %s\n",
              long(r.solve_n), r.max_eig_diff, r.tol, r.fp32_cols, r.fp64_cols,
              r.double_identical ? "yes" : "NO");

  std::filesystem::create_directories(
      std::filesystem::path(out_path).parent_path());
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n \"mixed\": {\n"
      "  \"n\": %ld, \"cols\": %ld, \"degree\": %d,\n"
      "  \"fp64_seconds\": %.6f, \"fp32_seconds\": %.6f, "
      "\"speedup\": %.4f,\n"
      "  \"grid_n\": %ld, \"coll_bytes_fp64\": %.0f, "
      "\"coll_bytes_fp32\": %.0f, \"coll_ratio\": %.4f,\n"
      "  \"solve_n\": %ld, \"tol\": %.1e, \"max_eig_diff\": %.3e,\n"
      "  \"fp32_cols\": %.0f, \"fp64_cols\": %.0f,\n"
      "  \"double_identical\": %s\n"
      " }\n}\n",
      long(r.n), long(r.cols), r.degree, r.fp64_seconds, r.fp32_seconds,
      r.speedup, long(r.grid_n), r.coll_bytes_fp64, r.coll_bytes_fp32,
      r.coll_ratio, long(r.solve_n), r.tol, r.max_eig_diff, r.fp32_cols,
      r.fp64_cols, r.double_identical ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
