// Ablation: Chebyshev filter cost vs degree and active-column count — the
// MatVec economics the per-vector degree optimization trades on.
#include <benchmark/benchmark.h>

#include <complex>

#include "core/filter.hpp"
#include "gen/spectrum.hpp"

namespace {

using namespace chase;
using la::Index;

void BM_Filter(benchmark::State& state) {
  using T = double;
  const Index n = 768;
  const Index ncols = state.range(0);
  const int degree = int(state.range(1));

  auto h_full = gen::uniform_matrix<T>(n, -1.0, 1.0, 5);
  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  dist::DistHermitianMatrix<T> h(grid, dist::IndexMap::block(n, 1),
                                 dist::IndexMap::block(n, 1));
  h.fill_from_global(h_full.cview());

  la::Matrix<T> c(n, ncols), b(n, ncols);
  Rng rng(6);
  for (Index j = 0; j < ncols; ++j) {
    for (Index i = 0; i < n; ++i) c(i, j) = rng.gaussian<T>();
  }
  std::vector<int> degs(std::size_t(ncols), degree);

  long matvecs = 0;
  for (auto _ : state) {
    matvecs += core::chebyshev_filter(h, c.view(), b.view(), degs, 0.5, 0.45,
                                      -0.99);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["MatVec/s"] =
      benchmark::Counter(double(matvecs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Filter)->Args({16, 10})->Args({16, 20})->Args({64, 20})->Args(
    {64, 36});

/// Mixed-degree filtering: the shrinking-suffix optimization vs filtering
/// everything at the maximal degree.
void BM_FilterMixedDegrees(benchmark::State& state) {
  using T = double;
  const Index n = 768, ncols = 64;
  const bool uniform = state.range(0) != 0;

  auto h_full = gen::uniform_matrix<T>(n, -1.0, 1.0, 7);
  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  dist::DistHermitianMatrix<T> h(grid, dist::IndexMap::block(n, 1),
                                 dist::IndexMap::block(n, 1));
  h.fill_from_global(h_full.cview());

  la::Matrix<T> c(n, ncols), b(n, ncols);
  Rng rng(8);
  for (Index j = 0; j < ncols; ++j) {
    for (Index i = 0; i < n; ++i) c(i, j) = rng.gaussian<T>();
  }
  std::vector<int> degs(static_cast<std::size_t>(ncols));
  for (Index j = 0; j < ncols; ++j) {
    degs[std::size_t(j)] = uniform ? 36 : 4 + 2 * int(j / 2);
  }
  std::sort(degs.begin(), degs.end());

  long matvecs = 0;
  for (auto _ : state) {
    matvecs += core::chebyshev_filter(h, c.view(), b.view(), degs, 0.5, 0.45,
                                      -0.99);
  }
  state.counters["MatVec/s"] =
      benchmark::Counter(double(matvecs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FilterMixedDegrees)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
