// Shared plumbing for the experiment benches: instrumented distributed runs
// (result + merged per-rank cost tracker) and table formatting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/chase.hpp"
#include "core/legacy_lms.hpp"
#include "gen/suite.hpp"
#include "perf/cost_model.hpp"
#include "tune/measure.hpp"

namespace chase::bench {

// The warmup+repeat timing discipline every bench uses lives in
// tune::measure (shared with the autotuner, so bench rates and profile
// rates are directly comparable); re-exported here for bench writers.
using tune::measure;
using tune::Measurement;
using tune::measured_rate;

using core::ChaseConfig;
using core::ChaseResult;
using perf::Backend;

/// True when CHASE_BENCH_QUICK=1: benches shrink their workloads (used to
/// smoke-test the harness).
inline bool quick_mode() {
  const char* env = std::getenv("CHASE_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

template <typename T>
struct InstrumentedRun {
  ChaseResult<T> result;
  perf::Tracker tracker;  // rank-0 events, max-over-ranks timings
};

/// Run the given solver variant on a p x p grid with per-rank trackers, and
/// merge them (max compute times over ranks, rank-0 event stream).
template <typename T>
InstrumentedRun<T> run_distributed(la::ConstMatrixView<T> h_full, int p,
                                   const ChaseConfig& cfg, Backend backend,
                                   bool lms = false) {
  const la::Index n = h_full.rows();
  InstrumentedRun<T> out;
  std::vector<perf::Tracker> trackers(std::size_t(p) * std::size_t(p));
  comm::Team team(p * p, backend);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, p, p);
        auto map = dist::IndexMap::block(n, p);
        dist::DistHermitianMatrix<T> hd(grid, map, map);
        hd.fill_from_global(h_full);
        auto r = lms ? core::solve_lms(hd, cfg) : core::solve(hd, cfg);
        if (world.rank() == 0) out.result = std::move(r);
      },
      &trackers);
  out.tracker = std::move(trackers[0]);
  for (std::size_t r = 1; r < trackers.size(); ++r) {
    out.tracker.merge_max_times(trackers[r]);
  }
  return out;
}

/// Measured per-region seconds of a run on this host (thread CPU clock,
/// max over ranks): compute plus the CPU spent inside collectives.
inline double region_seconds(const perf::Tracker& t, perf::Region r) {
  const auto& c = t.costs(r);
  return c.compute_seconds + c.comm_cpu_seconds;
}

inline double total_seconds(const perf::Tracker& t) {
  double s = 0;
  for (int r = 0; r < perf::kRegionCount; ++r) {
    s += region_seconds(t, perf::Region(r));
  }
  return s;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace chase::bench
