// Autotuner end-to-end gate (DESIGN.md §15).
//
// Runs an in-process quick tuning pass (tune::run_tuning), persists the
// profile to results/machine_profile.json, then times the same sequential
// solve under (a) the installed tuned dispatch tables and (b) every fixed
// single-policy configuration (GEMM {naive, blocked, micro} x factor
// {naive, blocked} pinned for the whole solve). The acceptance signals,
// emitted to results/bench_tune.json and gated by scripts/compare_bench.py:
//
//   * tuned <= 1.05x the best fixed configuration — consulting per-class
//     tables must not tax the hot path;
//   * worst fixed >= 1.3x tuned — the tuner must actually protect the solve
//     from a bad global policy choice;
//   * replay determinism — derive_selections over the persisted measurement
//     log must reproduce the persisted tables bit-for-bit, after a save and
//     load round trip.
//
// `--schema <path>` instead validates an existing profile JSON (schema,
// version, structure and the replay invariant) without benchmarking:
// exit 0 if the file is a loadable profile, 1 otherwise.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "gen/spectrum.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm_policy.hpp"
#include "core/sequential.hpp"
#include "tune/profile.hpp"
#include "tune/runtime.hpp"
#include "tune/tuner.hpp"

namespace {

using chase::la::Index;
namespace tune = chase::tune;

struct FixedConfig {
  chase::la::GemmKernel gemm;
  chase::la::FactorKernel factor;
  double seconds = 0;
};

bool tables_equal(const chase::perf::TunedTables& a,
                  const chase::perf::TunedTables& b) {
  for (int t = 0; t < chase::perf::kScalarTagCount; ++t) {
    for (int c = 0; c < chase::perf::kNClassCount; ++c) {
      if (a.gemm_kernel[t][c] != b.gemm_kernel[t][c]) return false;
    }
  }
  for (int c = 0; c < chase::perf::kNClassCount; ++c) {
    if (a.factor_kernel[c] != b.factor_kernel[c]) return false;
  }
  for (int k = 0; k < chase::perf::kCollKindCount; ++k) {
    for (int c = 0; c < chase::perf::kMsgClassCount; ++c) {
      if (a.coll_algo[k][c] != b.coll_algo[k][c]) return false;
    }
  }
  return a.chunk_bytes == b.chunk_bytes;
}

int schema_check(const char* path) {
  std::string error;
  const auto p = tune::load_profile(path, &error);
  if (!p) {
    std::fprintf(stderr, "%s: invalid profile: %s\n", path, error.c_str());
    return 1;
  }
  if (!tables_equal(p->tables, tune::derive_selections(p->measurements))) {
    std::fprintf(stderr,
                 "%s: stored tables do not match the measurement log "
                 "(replay invariant violated)\n",
                 path);
    return 1;
  }
  std::printf("%s: valid %s v%d profile (%zu measurements)\n", path,
              tune::kProfileSchema, tune::kProfileVersion,
              p->measurements.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
      return schema_check(argv[i + 1]);
    }
    std::fprintf(stderr, "usage: %s [--schema <profile.json>]\n", argv[0]);
    return 2;
  }

  const bool quick = chase::bench::quick_mode();

  // ---- tune (quick sizes: the probes, not the solve, dominate otherwise)
  tune::TuneOptions opts;
  opts.quick = true;
  opts.coll_ranks = 2;
  if (quick) {
    opts.repeats = 1;
    opts.skip_collectives = true;
  }
  std::printf("tuning (quick probe sizes, %d repeat%s)...\n", opts.repeats,
              opts.repeats == 1 ? "" : "s");
  const tune::MachineProfile profile = tune::run_tuning(opts);

  std::filesystem::create_directories("results");
  const std::string profile_path = "results/machine_profile.json";
  std::string error;
  if (!tune::save_profile(profile, profile_path, &error)) {
    std::fprintf(stderr, "cannot save %s: %s\n", profile_path.c_str(),
                 error.c_str());
    return 1;
  }

  // Replay determinism, through the persisted file: load it back and
  // re-derive the tables from the recorded measurement log alone.
  bool replay_deterministic = false;
  if (const auto back = tune::load_profile(profile_path, &error)) {
    replay_deterministic =
        tables_equal(back->tables, tune::derive_selections(back->measurements));
  } else {
    std::fprintf(stderr, "round-trip load failed: %s\n", error.c_str());
  }
  std::printf("profile: %s (%zu measurements, replay %s)\n",
              profile_path.c_str(), profile.measurements.size(),
              replay_deterministic ? "deterministic" : "NON-DETERMINISTIC");

  // ---- end-to-end solve under tuned vs fixed policies
  const Index n = quick ? 192 : 384;
  chase::core::ChaseConfig cfg;
  cfg.nev = n / 8;
  cfg.nex = n / 16;
  cfg.tol = 1e-9;
  const auto h = chase::gen::uniform_matrix<double>(n, 0.1, 10.0, 2023);
  const int reps = quick ? 1 : 3;

  const auto time_solve = [&] {
    const chase::tune::Measurement m = chase::bench::measure(
        /*warmup=*/0, reps, [&] {
          auto r = chase::core::solve_sequential<double>(h.view(), cfg);
          if (!r.converged) {
            std::fprintf(stderr, "solve did not converge\n");
            std::exit(1);
          }
        });
    return m.best;
  };

  std::vector<FixedConfig> fixed;
  for (const auto g : {chase::la::GemmKernel::kNaive,
                       chase::la::GemmKernel::kBlocked,
                       chase::la::GemmKernel::kMicro}) {
    for (const auto f :
         {chase::la::FactorKernel::kNaive, chase::la::FactorKernel::kBlocked}) {
      fixed.push_back({g, f, 0});
    }
  }

  std::printf("\nend-to-end solve n=%lld nev=%lld nex=%lld (best of %d):\n",
              (long long)n, (long long)cfg.nev, (long long)cfg.nex, reps);

  tune::uninstall_profile();
  for (FixedConfig& c : fixed) {
    chase::la::ScopedGemmKernel gemm_pin(c.gemm);
    chase::la::ScopedFactorKernel factor_pin(c.factor);
    c.seconds = time_solve();
    std::printf("  fixed gemm=%-8s factor=%-8s %10.4f s\n",
                std::string(chase::la::gemm_kernel_name(c.gemm)).c_str(),
                std::string(chase::la::factor_kernel_name(c.factor)).c_str(),
                c.seconds);
  }

  if (!tune::install_profile(profile)) {
    std::fprintf(stderr, "freshly tuned profile rejected on this machine\n");
    return 1;
  }
  const double tuned_seconds = time_solve();
  tune::uninstall_profile();
  std::printf("  tuned (profile dispatch tables)   %10.4f s\n", tuned_seconds);

  const FixedConfig* best = &fixed[0];
  const FixedConfig* worst = &fixed[0];
  for (const FixedConfig& c : fixed) {
    if (c.seconds < best->seconds) best = &c;
    if (c.seconds > worst->seconds) worst = &c;
  }
  const double tuned_vs_best = tuned_seconds / best->seconds;
  const double worst_vs_tuned = worst->seconds / tuned_seconds;
  std::printf("\ntuned/best_fixed %.3f (gate <= 1.05)  worst/tuned %.2fx "
              "(gate >= 1.3)\n",
              tuned_vs_best, worst_vs_tuned);

  std::FILE* out = std::fopen("results/bench_tune.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open results/bench_tune.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"tune\": {\n    \"n\": %lld,\n    \"nev\": %lld,\n"
               "    \"nex\": %lld,\n    \"reps\": %d,\n"
               "    \"profile_path\": \"%s\",\n"
               "    \"measurements\": %zu,\n"
               "    \"replay_deterministic\": %s,\n    \"configs\": [\n",
               (long long)n, (long long)cfg.nev, (long long)cfg.nex, reps,
               profile_path.c_str(), profile.measurements.size(),
               replay_deterministic ? "true" : "false");
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    const FixedConfig& c = fixed[i];
    std::fprintf(out,
                 "      {\"gemm\": \"%s\", \"factor\": \"%s\", "
                 "\"seconds\": %.6f}%s\n",
                 std::string(chase::la::gemm_kernel_name(c.gemm)).c_str(),
                 std::string(chase::la::factor_kernel_name(c.factor)).c_str(),
                 c.seconds, i + 1 < fixed.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n    \"tuned_seconds\": %.6f,\n"
               "    \"best_fixed_seconds\": %.6f,\n"
               "    \"worst_fixed_seconds\": %.6f,\n"
               "    \"tuned_vs_best\": %.4f,\n"
               "    \"worst_vs_tuned\": %.4f\n  }\n}\n",
               tuned_seconds, best->seconds, worst->seconds, tuned_vs_best,
               worst_vs_tuned);
  std::fclose(out);
  std::printf("wrote results/bench_tune.json\n");
  return 0;
}
