// Table 2 — ChASE(NCCL) with HHQR vs with CholeskyQR (auto-selected) on the
// Table 1 suite, 4 JUWELS-Booster nodes (4x4 rank grid).
//
// Two layers, matching the repository's general method:
//   1. REAL runs of the scaled analogues on a 2x2 grid verify the paper's
//      numerical claim: the QR variant does not change the convergence
//      history (identical MatVecs and iterations), because every variant
//      returns an orthonormal basis of the same filtered subspace.
//   2. The measured iteration history is replayed at the paper's problem
//      sizes through the validated event-stream model and priced on the
//      A100/HDR machine description — producing the Table 2 columns
//      (MatVecs, Iters, All (s), QR (s)) at the paper's scale, where the
//      BLAS-2-bound Householder panels lose badly to CholeskyQR's
//      GEMM-class SYRK/TRSM (most dramatically for the >= 1000-eigenpair
//      problems, TiO2 and AuAg).
#include <complex>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "gen/suite.hpp"
#include "model/chase_model.hpp"

namespace {

using namespace chase;
using T = std::complex<double>;

std::vector<model::MeasuredIteration> to_history(
    const std::vector<core::IterationStats>& stats, bool force_hhqr) {
  std::vector<model::MeasuredIteration> out;
  for (const auto& s : stats) {
    model::MeasuredIteration m;
    m.locked_before = s.locked_before;
    m.degrees = s.degrees;
    m.qr = force_hhqr ? qr::QrVariant::kHouseholder : s.qr_variant;
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

int main() {
  perf::MachineModel machine;

  std::printf("Table 2: ChASE(NCCL) with HHQR vs CholeskyQR\n");
  std::printf("convergence measured on the scaled analogues (2x2 grid, this "
              "host); times replayed at the\npaper's sizes on the modeled "
              "4-node A100 cluster (16 GPUs, 4x4 grid)\n");
  bench::print_rule(92);
  std::printf("%-12s %-10s %10s %6s %9s %9s   %s\n", "Type", "QR Impl.",
              "MatVecs", "Iters", "All (s)", "QR (s)", "(paper All/QR)");
  bench::print_rule(92);

  const auto& suite = bench::quick_mode() ? gen::table1_suite_small()
                                          : gen::table1_suite_medium();
  const double paper_all[6][2] = {{1.49, 0.43},  {24.68, 10.92}, {167.39, 8.80},
                                  {9.81, 7.64},  {23.83, 20.16}, {14.11, 10.92}};
  const double paper_qr[6][2] = {{1.05, 0.03},  {22.71, 0.20}, {157.02, 0.48},
                                 {2.26, 0.13},  {3.92, 0.22},  {3.38, 0.20}};

  int row = 0;
  for (const auto& p : suite) {
    auto h = gen::suite_matrix<T>(p);
    core::ChaseConfig cfg;
    cfg.nev = p.nev;
    cfg.nex = p.nex;
    cfg.tol = 1e-10;

    // --- real runs: verify identical convergence across QR variants ---
    core::ChaseResult<T> results[2];
    for (int variant = 0; variant < 2; ++variant) {
      cfg.qr.force_householder = (variant == 0);
      auto run = bench::run_distributed<T>(h.cview(), 2, cfg,
                                           perf::Backend::kNcclGpu);
      results[variant] = std::move(run.result);
    }
    const bool identical =
        results[0].matvecs == results[1].matvecs &&
        results[0].iterations == results[1].iterations;

    // --- replay at the paper's scale ---
    for (int variant = 0; variant < 2; ++variant) {
      model::ChaseModelSetup s;
      s.n = p.paper_n;
      s.nev = p.paper_nev;
      s.nex = p.paper_nex;
      s.nprow = s.npcol = 4;  // 4 nodes x 4 GPUs
      s.backend = perf::Backend::kNcclGpu;
      auto history = model::rescale_history(
          to_history(results[variant].stats, variant == 0), cfg.subspace(),
          s.subspace());
      long matvecs = 0;
      for (const auto& it : history) {
        for (int d : it.degrees) matvecs += d;
      }
      auto costs = model::model_chase(machine, s, history);
      const double all_s = perf::sum_costs(costs).total();
      const double qr_s =
          costs[std::size_t(int(perf::Region::kQr))].total();
      std::printf("%-12s %-10s %10ld %6d %9.2f %9.3f   (%.2f / %.2f)%s\n",
                  variant == 0 ? p.name.c_str() : "",
                  variant == 0 ? "HHQR" : "CholeskyQR", matvecs,
                  results[variant].iterations, all_s, qr_s,
                  paper_all[row][variant], paper_qr[row][variant],
                  results[variant].converged ? "" : "  (real run: not conv.)");
    }
    std::printf("%-12s real-run convergence identical across variants: %s "
                "(%ld MatVecs, %d iters measured)\n",
                "", identical ? "yes" : "NO", results[1].matvecs,
                results[1].iterations);
    bench::print_rule(92);
    ++row;
  }
  std::printf("Expected (paper): same convergence for both variants; "
              "CholeskyQR removes nearly the entire\nQR cost (e.g. TiO2: "
              "157 s -> 0.5 s), with the largest total gains at large nev.\n");
  return 0;
}
