// Checkpoint overhead and ABFT sentinel cost (the fault-tolerance budget).
//
// The checkpoint engine captures a full solver snapshot (basis + Ritz
// bookkeeping + bounds, CRC-guarded) at every iteration boundary; the cost
// of that capture must stay a footnote next to the Chebyshev filter the
// iteration exists to run. This bench measures both from the perf counters
// of one instrumented solve ("ckpt.capture.seconds" vs
// "engine.stage.filter.seconds") and gates their ratio at 5% in
// scripts/compare_bench.py. Also recorded: snapshot size, decode (resume)
// latency, and the wall-clock cost of arming the ABFT checksummed
// collectives on a distributed solve — informational, since the paper's
// hot path runs with the sentinels off.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_common.hpp"
#include "ckpt/engine.hpp"
#include "ckpt/sink.hpp"
#include "coll/abft.hpp"
#include "core/sequential.hpp"

namespace {

using namespace chase;
using core::ChaseConfig;
using la::Index;

double wall_solve_distributed(la::ConstMatrixView<double> h, int p,
                              const ChaseConfig& cfg) {
  const Index n = h.rows();
  double seconds = 0;
  comm::Team team(p * p);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, p, p);
    auto map = dist::IndexMap::block(n, p);
    dist::DistHermitianMatrix<double> hd(grid, map, map);
    hd.fill_from_global(h);
    world.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    auto r = core::solve(hd, cfg);
    world.barrier();
    if (world.rank() == 0) {
      seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (!r.converged) std::fprintf(stderr, "warning: abft case not converged\n");
    }
  });
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode();
  const std::string out_path =
      argc > 1 ? argv[1] : "results/bench_checkpoint.json";

  const Index n = quick ? 256 : 1024;
  ChaseConfig cfg;
  cfg.nev = quick ? 16 : 40;
  cfg.nex = quick ? 8 : 24;
  cfg.tol = 1e-10;

  auto h = gen::hermitian_with_spectrum<double>(
      gen::dft_like_spectrum<double>(n, 11), 11);

  // Instrumented solve with per-iteration checkpointing into a memory sink.
  ckpt::MemorySink sink;
  perf::Tracker tracker;
  perf::set_thread_tracker(&tracker);
  ckpt::CheckpointEngine<double> engine(&sink, /*interval=*/1);
  ckpt::SolveCkpt<double> ck;
  ck.engine = &engine;
  auto r = core::solve_sequential<double>(h.cview(), cfg, nullptr, {}, ck);
  perf::set_thread_tracker(nullptr);
  if (!r.converged) {
    std::fprintf(stderr, "checkpointed solve did not converge\n");
    return 1;
  }

  const double captures = tracker.counter("ckpt.capture.calls");
  const double snapshot_seconds = tracker.counter("ckpt.capture.seconds");
  const double filter_seconds =
      tracker.counter("engine.stage.filter.seconds");
  const double snapshot_bytes =
      captures > 0 ? tracker.counter("ckpt.snapshot.bytes") / captures : 0;
  const double overhead_ratio =
      filter_seconds > 0 ? snapshot_seconds / filter_seconds : 0;

  // Resume latency: decode the newest snapshot back into a Snapshot.
  WallTimer decode_timer;
  ckpt::Snapshot<double> snap;
  const bool decoded = ckpt::load_last_good(sink, snap);
  const double resume_decode_seconds = decode_timer.seconds();
  if (!decoded) {
    std::fprintf(stderr, "no decodable snapshot after the solve\n");
    return 1;
  }

  std::printf("Checkpoint overhead (n=%ld, ne=%ld, %d iterations)\n", long(n),
              long(cfg.subspace()), r.iterations);
  std::printf("  captures            %8.0f\n", captures);
  std::printf("  snapshot bytes      %8.0f\n", snapshot_bytes);
  std::printf("  capture seconds     %8.4f\n", snapshot_seconds);
  std::printf("  filter seconds      %8.4f\n", filter_seconds);
  std::printf("  overhead ratio      %8.4f  (budget 0.05)\n", overhead_ratio);
  std::printf("  resume decode (s)   %8.4f\n", resume_decode_seconds);

  // ABFT sentinels on a distributed solve: wall-clock with the checksummed
  // collectives off vs on (informational — the sentinels are opt-in).
  const Index n_abft = quick ? 96 : 256;
  ChaseConfig abft_cfg;
  abft_cfg.nev = quick ? 8 : 24;
  abft_cfg.nex = quick ? 6 : 12;
  abft_cfg.tol = 1e-10;
  auto h_abft = gen::hermitian_with_spectrum<double>(
      gen::dft_like_spectrum<double>(n_abft, 12), 12);
  double abft_off = 0, abft_on = 0;
  {
    coll::ScopedAbft off(false);
    abft_off = wall_solve_distributed(h_abft.cview(), 2, abft_cfg);
  }
  {
    coll::ScopedAbft on(true);
    abft_on = wall_solve_distributed(h_abft.cview(), 2, abft_cfg);
  }
  const double abft_ratio = abft_off > 0 ? abft_on / abft_off : 0;
  std::printf("\nABFT sentinels (2x2, n=%ld): off %.4fs  on %.4fs  "
              "ratio %.3f\n",
              long(n_abft), abft_off, abft_on, abft_ratio);

  std::filesystem::create_directories(
      std::filesystem::path(out_path).parent_path());
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n \"checkpoint\": {\n"
               "  \"n\": %ld, \"ne\": %ld, \"iterations\": %d,\n"
               "  \"captures\": %.0f, \"snapshot_bytes\": %.0f,\n"
               "  \"snapshot_seconds\": %.6f, \"filter_seconds\": %.6f,\n"
               "  \"overhead_ratio\": %.6f,\n"
               "  \"resume_decode_seconds\": %.6f,\n"
               "  \"abft\": {\"n\": %ld, \"off_seconds\": %.6f, "
               "\"on_seconds\": %.6f, \"ratio\": %.4f}\n"
               " }\n}\n",
               long(n), long(cfg.subspace()), r.iterations, captures,
               snapshot_bytes, snapshot_seconds, filter_seconds,
               overhead_ratio, resume_decode_seconds, long(n_abft), abft_off,
               abft_on, abft_ratio);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
