// Ablation (design-choice study, not a paper figure): sensitivity of ChASE
// to the extra search directions nex.
//
// The paper fixes nex at 10-40% of nev throughout (Table 1, Section 4.5).
// This bench shows why: too few extra directions leave the damped-interval
// edge unresolved (mu_ne estimates poorly, convergence stalls); too many
// waste MatVecs filtering columns that are discarded. The sweet spot sits
// around nex/nev ~ 1/4 - 1/3 for the suite spectra.
#include <complex>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/sequential.hpp"
#include "gen/suite.hpp"
#include "perf/report.hpp"

int main() {
  using namespace chase;
  using T = std::complex<double>;

  std::printf("Ablation: MatVecs vs nex/nev (sequential runs of the scaled "
              "suite problems)\n");
  bench::print_rule(84);
  std::printf("%-12s %6s | %8s %8s %8s %8s %8s\n", "problem", "nev",
              "nex=8%", "nex=16%", "nex=33%", "nex=50%", "nex=100%");
  bench::print_rule(84);

  perf::CsvWriter csv("ablation_nex.csv");
  csv.header({"problem", "nev", "nex", "converged", "iters", "matvecs"});

  const double fractions[] = {0.08, 0.16, 0.33, 0.5, 1.0};
  const auto& suite = bench::quick_mode() ? gen::table1_suite_small()
                                          : gen::table1_suite_medium();
  for (std::size_t pi : {std::size_t(1), std::size_t(4)}) {  // AuAg + In2O3
    const auto& p = suite[pi];
    auto h = gen::suite_matrix<T>(p);
    std::printf("%-12s %6lld |", p.name.c_str(), (long long)p.nev);
    for (double frac : fractions) {
      core::ChaseConfig cfg;
      cfg.nev = p.nev;
      cfg.nex = std::max<la::Index>(la::Index(double(p.nev) * frac), 2);
      cfg.tol = 1e-9;
      auto r = core::solve_sequential<T>(h.cview(), cfg);
      csv.row(p.name, p.nev, cfg.nex, r.converged ? 1 : 0, r.iterations,
              r.matvecs);
      if (r.converged) {
        std::printf(" %8ld", r.matvecs);
      } else {
        std::printf(" %7s*", "-");
      }
    }
    std::printf("\n");
  }
  bench::print_rule(84);
  std::printf("(* = no convergence within the iteration cap; MatVec counts "
              "include the filter only.)\n");
  return 0;
}
