// Figure 3a — weak scaling: one ChASE iteration, N = 30k per sqrt(node),
// node counts 1, 4, 9, ..., 900 (square grids), nev = 2250, nex = 750.
//
// Claims to check (Section 4.5.1):
//   * ChASE(NCCL) is nearly flat: the paper measures 2.3 s -> 3.9 s (1.8x)
//     from 1 to 900 nodes;
//   * ChASE(STD) grows ~3.1x (5.1 s -> 16 s) with dips at power-of-two
//     row/column communicator sizes (the binary-tree MPI_Allreduce);
//   * ChASE(LMS) stops at 144 nodes: its two redundant N x n_e buffers
//     exceed the 40 GB A100 memory beyond that (Eq. 2).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "model/chase_model.hpp"
#include "perf/report.hpp"

namespace {

using namespace chase;
using model::ChaseModelSetup;
using model::Scheme;
using perf::Backend;

constexpr double kA100Bytes = 40.0 * (1ull << 30);

double variant_time(const perf::MachineModel& m, int nodes, Scheme scheme,
                    Backend backend, bool* oom = nullptr) {
  const int k = int(std::lround(std::sqrt(double(nodes))));
  ChaseModelSetup s;
  s.n = la::Index(30000) * k;
  s.nev = 2250;
  s.nex = 750;
  // Real symmetric Uniform matrices, as in the paper's scaling workloads.
  s.complex_scalar = false;
  s.scalar_bytes = 8;
  s.scheme = scheme;
  s.backend = backend;
  if (scheme == Scheme::kLms) {
    s.nprow = s.npcol = k;
    s.gpus_per_rank = 4;
    if (oom != nullptr) {
      // The paper reports that the v1.2 memory footprint (redundant
      // N x n_e buffers plus solver workspace, Eq. 2 discussion and [18])
      // caps ChASE(LMS) at 144 nodes on JUWELS-Booster.
      *oom = nodes > 144;
    }
  } else {
    s.nprow = s.npcol = 2 * k;
    if (oom != nullptr) {
      *oom = double(model::memory_bytes_new(s)) > kA100Bytes;
    }
  }
  auto it = model::uniform_iteration(
      s.subspace(), 20,
      scheme == Scheme::kLms ? qr::QrVariant::kHouseholder
                             : qr::QrVariant::kCholQr2);
  perf::Tracker t;
  model::replay_iteration(s, it, t);
  t.flush();
  perf::MachineModel adjusted = m;
  adjusted.gemm_flops *= s.gpus_per_rank;
  return perf::sum_costs(perf::price_tracker(adjusted, s.backend, t)).total();
}

}  // namespace

int main() {
  perf::MachineModel m;
  std::printf("Figure 3a: weak scaling, single ChASE iteration "
              "(modeled A100/HDR cluster)\n");
  std::printf("N = 30k * sqrt(nodes), nev=2250, nex=750, deg=20\n");
  bench::print_rule(70);
  std::printf("%6s %9s %6s | %10s %10s %10s\n", "nodes", "N", "GPUs",
              "LMS (s)", "STD (s)", "NCCL (s)");
  bench::print_rule(70);

  perf::CsvWriter csv("fig3a_weak.csv");
  csv.header({"nodes", "N", "gpus", "lms_s", "std_s", "nccl_s"});
  double nccl_first = 0, nccl_last = 0, std_first = 0, std_last = 0;
  double lms144 = 0, std144 = 0, nccl144 = 0;
  for (int nodes : {1, 4, 9, 16, 25, 36, 49, 64, 81, 100, 121, 144, 256, 400,
                    625, 900}) {
    const int k = int(std::lround(std::sqrt(double(nodes))));
    bool lms_oom = false;
    const double t_lms =
        variant_time(m, nodes, Scheme::kLms, Backend::kStdGpu, &lms_oom);
    const double t_std =
        variant_time(m, nodes, Scheme::kNew, Backend::kStdGpu);
    const double t_nccl =
        variant_time(m, nodes, Scheme::kNew, Backend::kNcclGpu);
    if (nodes == 1) {
      nccl_first = t_nccl;
      std_first = t_std;
    }
    nccl_last = t_nccl;
    std_last = t_std;
    if (nodes == 144) {
      lms144 = t_lms;
      std144 = t_std;
      nccl144 = t_nccl;
    }
    csv.row(nodes, 30000LL * k, 4 * nodes, lms_oom ? -1.0 : t_lms, t_std,
            t_nccl);
    if (lms_oom) {
      std::printf("%6d %9lld %6d | %10s %10.2f %10.2f\n", nodes,
                  30000LL * k, 4 * nodes, "OOM", t_std, t_nccl);
    } else {
      std::printf("%6d %9lld %6d | %10.2f %10.2f %10.2f\n", nodes,
                  30000LL * k, 4 * nodes, t_lms, t_std, t_nccl);
    }
  }
  bench::print_rule(70);
  std::printf("\nNCCL growth 1 -> 900 nodes: %.2fx (paper: 1.8x, "
              "2.3 s -> 3.9 s)\n",
              nccl_last / nccl_first);
  std::printf("STD  growth 1 -> 900 nodes: %.2fx (paper: 3.1x, "
              "5.1 s -> 16 s)\n",
              std_last / std_first);
  std::printf("Speedup over LMS at 144 nodes: NCCL %.1fx (paper 14.1x), "
              "STD %.1fx (paper 4.6x)\n",
              lms144 / nccl144, lms144 / std144);
  std::printf("LMS rows marked OOM: the Eq. (2) v1.2 footprint exceeds the "
              "40 GB A100 memory.\n");
  return 0;
}
